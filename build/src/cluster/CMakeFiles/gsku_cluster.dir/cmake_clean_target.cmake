file(REMOVE_RECURSE
  "libgsku_cluster.a"
)
