
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/allocator.cc" "src/cluster/CMakeFiles/gsku_cluster.dir/allocator.cc.o" "gcc" "src/cluster/CMakeFiles/gsku_cluster.dir/allocator.cc.o.d"
  "/root/repo/src/cluster/demand.cc" "src/cluster/CMakeFiles/gsku_cluster.dir/demand.cc.o" "gcc" "src/cluster/CMakeFiles/gsku_cluster.dir/demand.cc.o.d"
  "/root/repo/src/cluster/trace_gen.cc" "src/cluster/CMakeFiles/gsku_cluster.dir/trace_gen.cc.o" "gcc" "src/cluster/CMakeFiles/gsku_cluster.dir/trace_gen.cc.o.d"
  "/root/repo/src/cluster/trace_io.cc" "src/cluster/CMakeFiles/gsku_cluster.dir/trace_io.cc.o" "gcc" "src/cluster/CMakeFiles/gsku_cluster.dir/trace_io.cc.o.d"
  "/root/repo/src/cluster/trace_stats.cc" "src/cluster/CMakeFiles/gsku_cluster.dir/trace_stats.cc.o" "gcc" "src/cluster/CMakeFiles/gsku_cluster.dir/trace_stats.cc.o.d"
  "/root/repo/src/cluster/vm.cc" "src/cluster/CMakeFiles/gsku_cluster.dir/vm.cc.o" "gcc" "src/cluster/CMakeFiles/gsku_cluster.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gsku_common.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/gsku_carbon.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/gsku_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
