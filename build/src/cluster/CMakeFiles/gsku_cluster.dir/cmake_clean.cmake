file(REMOVE_RECURSE
  "CMakeFiles/gsku_cluster.dir/allocator.cc.o"
  "CMakeFiles/gsku_cluster.dir/allocator.cc.o.d"
  "CMakeFiles/gsku_cluster.dir/demand.cc.o"
  "CMakeFiles/gsku_cluster.dir/demand.cc.o.d"
  "CMakeFiles/gsku_cluster.dir/trace_gen.cc.o"
  "CMakeFiles/gsku_cluster.dir/trace_gen.cc.o.d"
  "CMakeFiles/gsku_cluster.dir/trace_io.cc.o"
  "CMakeFiles/gsku_cluster.dir/trace_io.cc.o.d"
  "CMakeFiles/gsku_cluster.dir/trace_stats.cc.o"
  "CMakeFiles/gsku_cluster.dir/trace_stats.cc.o.d"
  "CMakeFiles/gsku_cluster.dir/vm.cc.o"
  "CMakeFiles/gsku_cluster.dir/vm.cc.o.d"
  "libgsku_cluster.a"
  "libgsku_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsku_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
