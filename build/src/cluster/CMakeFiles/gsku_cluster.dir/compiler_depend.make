# Empty compiler generated dependencies file for gsku_cluster.
# This may be replaced when dependencies are built.
