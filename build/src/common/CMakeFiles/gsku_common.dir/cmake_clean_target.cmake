file(REMOVE_RECURSE
  "libgsku_common.a"
)
