file(REMOVE_RECURSE
  "CMakeFiles/gsku_common.dir/chart.cc.o"
  "CMakeFiles/gsku_common.dir/chart.cc.o.d"
  "CMakeFiles/gsku_common.dir/csv.cc.o"
  "CMakeFiles/gsku_common.dir/csv.cc.o.d"
  "CMakeFiles/gsku_common.dir/distributions.cc.o"
  "CMakeFiles/gsku_common.dir/distributions.cc.o.d"
  "CMakeFiles/gsku_common.dir/error.cc.o"
  "CMakeFiles/gsku_common.dir/error.cc.o.d"
  "CMakeFiles/gsku_common.dir/rng.cc.o"
  "CMakeFiles/gsku_common.dir/rng.cc.o.d"
  "CMakeFiles/gsku_common.dir/solver.cc.o"
  "CMakeFiles/gsku_common.dir/solver.cc.o.d"
  "CMakeFiles/gsku_common.dir/stats.cc.o"
  "CMakeFiles/gsku_common.dir/stats.cc.o.d"
  "CMakeFiles/gsku_common.dir/table.cc.o"
  "CMakeFiles/gsku_common.dir/table.cc.o.d"
  "libgsku_common.a"
  "libgsku_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsku_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
