# Empty dependencies file for gsku_common.
# This may be replaced when dependencies are built.
