
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/failure_sim.cc" "src/reliability/CMakeFiles/gsku_reliability.dir/failure_sim.cc.o" "gcc" "src/reliability/CMakeFiles/gsku_reliability.dir/failure_sim.cc.o.d"
  "/root/repo/src/reliability/maintenance.cc" "src/reliability/CMakeFiles/gsku_reliability.dir/maintenance.cc.o" "gcc" "src/reliability/CMakeFiles/gsku_reliability.dir/maintenance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gsku_common.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/gsku_carbon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
