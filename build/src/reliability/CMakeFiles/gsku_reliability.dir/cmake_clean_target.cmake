file(REMOVE_RECURSE
  "libgsku_reliability.a"
)
