# Empty dependencies file for gsku_reliability.
# This may be replaced when dependencies are built.
