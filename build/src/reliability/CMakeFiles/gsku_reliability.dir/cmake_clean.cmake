file(REMOVE_RECURSE
  "CMakeFiles/gsku_reliability.dir/failure_sim.cc.o"
  "CMakeFiles/gsku_reliability.dir/failure_sim.cc.o.d"
  "CMakeFiles/gsku_reliability.dir/maintenance.cc.o"
  "CMakeFiles/gsku_reliability.dir/maintenance.cc.o.d"
  "libgsku_reliability.a"
  "libgsku_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsku_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
