file(REMOVE_RECURSE
  "libgsku_gsf.a"
)
