file(REMOVE_RECURSE
  "CMakeFiles/gsku_gsf.dir/adoption.cc.o"
  "CMakeFiles/gsku_gsf.dir/adoption.cc.o.d"
  "CMakeFiles/gsku_gsf.dir/alternatives.cc.o"
  "CMakeFiles/gsku_gsf.dir/alternatives.cc.o.d"
  "CMakeFiles/gsku_gsf.dir/design_space.cc.o"
  "CMakeFiles/gsku_gsf.dir/design_space.cc.o.d"
  "CMakeFiles/gsku_gsf.dir/evaluator.cc.o"
  "CMakeFiles/gsku_gsf.dir/evaluator.cc.o.d"
  "CMakeFiles/gsku_gsf.dir/hetero.cc.o"
  "CMakeFiles/gsku_gsf.dir/hetero.cc.o.d"
  "CMakeFiles/gsku_gsf.dir/lifetime.cc.o"
  "CMakeFiles/gsku_gsf.dir/lifetime.cc.o.d"
  "CMakeFiles/gsku_gsf.dir/portfolio.cc.o"
  "CMakeFiles/gsku_gsf.dir/portfolio.cc.o.d"
  "CMakeFiles/gsku_gsf.dir/report.cc.o"
  "CMakeFiles/gsku_gsf.dir/report.cc.o.d"
  "CMakeFiles/gsku_gsf.dir/sizing.cc.o"
  "CMakeFiles/gsku_gsf.dir/sizing.cc.o.d"
  "CMakeFiles/gsku_gsf.dir/tco.cc.o"
  "CMakeFiles/gsku_gsf.dir/tco.cc.o.d"
  "CMakeFiles/gsku_gsf.dir/tiering.cc.o"
  "CMakeFiles/gsku_gsf.dir/tiering.cc.o.d"
  "libgsku_gsf.a"
  "libgsku_gsf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsku_gsf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
