# Empty dependencies file for gsku_gsf.
# This may be replaced when dependencies are built.
