
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gsf/adoption.cc" "src/gsf/CMakeFiles/gsku_gsf.dir/adoption.cc.o" "gcc" "src/gsf/CMakeFiles/gsku_gsf.dir/adoption.cc.o.d"
  "/root/repo/src/gsf/alternatives.cc" "src/gsf/CMakeFiles/gsku_gsf.dir/alternatives.cc.o" "gcc" "src/gsf/CMakeFiles/gsku_gsf.dir/alternatives.cc.o.d"
  "/root/repo/src/gsf/design_space.cc" "src/gsf/CMakeFiles/gsku_gsf.dir/design_space.cc.o" "gcc" "src/gsf/CMakeFiles/gsku_gsf.dir/design_space.cc.o.d"
  "/root/repo/src/gsf/evaluator.cc" "src/gsf/CMakeFiles/gsku_gsf.dir/evaluator.cc.o" "gcc" "src/gsf/CMakeFiles/gsku_gsf.dir/evaluator.cc.o.d"
  "/root/repo/src/gsf/hetero.cc" "src/gsf/CMakeFiles/gsku_gsf.dir/hetero.cc.o" "gcc" "src/gsf/CMakeFiles/gsku_gsf.dir/hetero.cc.o.d"
  "/root/repo/src/gsf/lifetime.cc" "src/gsf/CMakeFiles/gsku_gsf.dir/lifetime.cc.o" "gcc" "src/gsf/CMakeFiles/gsku_gsf.dir/lifetime.cc.o.d"
  "/root/repo/src/gsf/portfolio.cc" "src/gsf/CMakeFiles/gsku_gsf.dir/portfolio.cc.o" "gcc" "src/gsf/CMakeFiles/gsku_gsf.dir/portfolio.cc.o.d"
  "/root/repo/src/gsf/report.cc" "src/gsf/CMakeFiles/gsku_gsf.dir/report.cc.o" "gcc" "src/gsf/CMakeFiles/gsku_gsf.dir/report.cc.o.d"
  "/root/repo/src/gsf/sizing.cc" "src/gsf/CMakeFiles/gsku_gsf.dir/sizing.cc.o" "gcc" "src/gsf/CMakeFiles/gsku_gsf.dir/sizing.cc.o.d"
  "/root/repo/src/gsf/tco.cc" "src/gsf/CMakeFiles/gsku_gsf.dir/tco.cc.o" "gcc" "src/gsf/CMakeFiles/gsku_gsf.dir/tco.cc.o.d"
  "/root/repo/src/gsf/tiering.cc" "src/gsf/CMakeFiles/gsku_gsf.dir/tiering.cc.o" "gcc" "src/gsf/CMakeFiles/gsku_gsf.dir/tiering.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gsku_common.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/gsku_carbon.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/gsku_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/gsku_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/gsku_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
