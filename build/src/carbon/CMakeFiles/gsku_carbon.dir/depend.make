# Empty dependencies file for gsku_carbon.
# This may be replaced when dependencies are built.
