file(REMOVE_RECURSE
  "libgsku_carbon.a"
)
