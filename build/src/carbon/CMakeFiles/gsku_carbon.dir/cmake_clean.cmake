file(REMOVE_RECURSE
  "CMakeFiles/gsku_carbon.dir/catalog.cc.o"
  "CMakeFiles/gsku_carbon.dir/catalog.cc.o.d"
  "CMakeFiles/gsku_carbon.dir/component.cc.o"
  "CMakeFiles/gsku_carbon.dir/component.cc.o.d"
  "CMakeFiles/gsku_carbon.dir/datacenter.cc.o"
  "CMakeFiles/gsku_carbon.dir/datacenter.cc.o.d"
  "CMakeFiles/gsku_carbon.dir/embodied_estimator.cc.o"
  "CMakeFiles/gsku_carbon.dir/embodied_estimator.cc.o.d"
  "CMakeFiles/gsku_carbon.dir/intensity_profile.cc.o"
  "CMakeFiles/gsku_carbon.dir/intensity_profile.cc.o.d"
  "CMakeFiles/gsku_carbon.dir/model.cc.o"
  "CMakeFiles/gsku_carbon.dir/model.cc.o.d"
  "CMakeFiles/gsku_carbon.dir/sku.cc.o"
  "CMakeFiles/gsku_carbon.dir/sku.cc.o.d"
  "CMakeFiles/gsku_carbon.dir/sku_parser.cc.o"
  "CMakeFiles/gsku_carbon.dir/sku_parser.cc.o.d"
  "libgsku_carbon.a"
  "libgsku_carbon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsku_carbon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
