
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/carbon/catalog.cc" "src/carbon/CMakeFiles/gsku_carbon.dir/catalog.cc.o" "gcc" "src/carbon/CMakeFiles/gsku_carbon.dir/catalog.cc.o.d"
  "/root/repo/src/carbon/component.cc" "src/carbon/CMakeFiles/gsku_carbon.dir/component.cc.o" "gcc" "src/carbon/CMakeFiles/gsku_carbon.dir/component.cc.o.d"
  "/root/repo/src/carbon/datacenter.cc" "src/carbon/CMakeFiles/gsku_carbon.dir/datacenter.cc.o" "gcc" "src/carbon/CMakeFiles/gsku_carbon.dir/datacenter.cc.o.d"
  "/root/repo/src/carbon/embodied_estimator.cc" "src/carbon/CMakeFiles/gsku_carbon.dir/embodied_estimator.cc.o" "gcc" "src/carbon/CMakeFiles/gsku_carbon.dir/embodied_estimator.cc.o.d"
  "/root/repo/src/carbon/intensity_profile.cc" "src/carbon/CMakeFiles/gsku_carbon.dir/intensity_profile.cc.o" "gcc" "src/carbon/CMakeFiles/gsku_carbon.dir/intensity_profile.cc.o.d"
  "/root/repo/src/carbon/model.cc" "src/carbon/CMakeFiles/gsku_carbon.dir/model.cc.o" "gcc" "src/carbon/CMakeFiles/gsku_carbon.dir/model.cc.o.d"
  "/root/repo/src/carbon/sku.cc" "src/carbon/CMakeFiles/gsku_carbon.dir/sku.cc.o" "gcc" "src/carbon/CMakeFiles/gsku_carbon.dir/sku.cc.o.d"
  "/root/repo/src/carbon/sku_parser.cc" "src/carbon/CMakeFiles/gsku_carbon.dir/sku_parser.cc.o" "gcc" "src/carbon/CMakeFiles/gsku_carbon.dir/sku_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gsku_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
