file(REMOVE_RECURSE
  "libgsku_perf.a"
)
