# Empty dependencies file for gsku_perf.
# This may be replaced when dependencies are built.
