
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/app.cc" "src/perf/CMakeFiles/gsku_perf.dir/app.cc.o" "gcc" "src/perf/CMakeFiles/gsku_perf.dir/app.cc.o.d"
  "/root/repo/src/perf/autoscaler.cc" "src/perf/CMakeFiles/gsku_perf.dir/autoscaler.cc.o" "gcc" "src/perf/CMakeFiles/gsku_perf.dir/autoscaler.cc.o.d"
  "/root/repo/src/perf/cpu.cc" "src/perf/CMakeFiles/gsku_perf.dir/cpu.cc.o" "gcc" "src/perf/CMakeFiles/gsku_perf.dir/cpu.cc.o.d"
  "/root/repo/src/perf/des.cc" "src/perf/CMakeFiles/gsku_perf.dir/des.cc.o" "gcc" "src/perf/CMakeFiles/gsku_perf.dir/des.cc.o.d"
  "/root/repo/src/perf/model.cc" "src/perf/CMakeFiles/gsku_perf.dir/model.cc.o" "gcc" "src/perf/CMakeFiles/gsku_perf.dir/model.cc.o.d"
  "/root/repo/src/perf/queueing.cc" "src/perf/CMakeFiles/gsku_perf.dir/queueing.cc.o" "gcc" "src/perf/CMakeFiles/gsku_perf.dir/queueing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gsku_common.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/gsku_carbon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
