file(REMOVE_RECURSE
  "CMakeFiles/gsku_perf.dir/app.cc.o"
  "CMakeFiles/gsku_perf.dir/app.cc.o.d"
  "CMakeFiles/gsku_perf.dir/autoscaler.cc.o"
  "CMakeFiles/gsku_perf.dir/autoscaler.cc.o.d"
  "CMakeFiles/gsku_perf.dir/cpu.cc.o"
  "CMakeFiles/gsku_perf.dir/cpu.cc.o.d"
  "CMakeFiles/gsku_perf.dir/des.cc.o"
  "CMakeFiles/gsku_perf.dir/des.cc.o.d"
  "CMakeFiles/gsku_perf.dir/model.cc.o"
  "CMakeFiles/gsku_perf.dir/model.cc.o.d"
  "CMakeFiles/gsku_perf.dir/queueing.cc.o"
  "CMakeFiles/gsku_perf.dir/queueing.cc.o.d"
  "libgsku_perf.a"
  "libgsku_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsku_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
