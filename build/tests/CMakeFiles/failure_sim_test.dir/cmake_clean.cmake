file(REMOVE_RECURSE
  "CMakeFiles/failure_sim_test.dir/reliability/failure_sim_test.cc.o"
  "CMakeFiles/failure_sim_test.dir/reliability/failure_sim_test.cc.o.d"
  "failure_sim_test"
  "failure_sim_test.pdb"
  "failure_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
