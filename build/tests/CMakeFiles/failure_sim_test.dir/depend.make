# Empty dependencies file for failure_sim_test.
# This may be replaced when dependencies are built.
