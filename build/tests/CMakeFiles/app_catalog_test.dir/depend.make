# Empty dependencies file for app_catalog_test.
# This may be replaced when dependencies are built.
