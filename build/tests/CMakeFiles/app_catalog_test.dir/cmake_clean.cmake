file(REMOVE_RECURSE
  "CMakeFiles/app_catalog_test.dir/perf/app_catalog_test.cc.o"
  "CMakeFiles/app_catalog_test.dir/perf/app_catalog_test.cc.o.d"
  "app_catalog_test"
  "app_catalog_test.pdb"
  "app_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
