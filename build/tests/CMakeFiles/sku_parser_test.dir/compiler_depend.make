# Empty compiler generated dependencies file for sku_parser_test.
# This may be replaced when dependencies are built.
