file(REMOVE_RECURSE
  "CMakeFiles/savings_table_test.dir/carbon/savings_table_test.cc.o"
  "CMakeFiles/savings_table_test.dir/carbon/savings_table_test.cc.o.d"
  "savings_table_test"
  "savings_table_test.pdb"
  "savings_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/savings_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
