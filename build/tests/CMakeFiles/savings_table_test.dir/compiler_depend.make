# Empty compiler generated dependencies file for savings_table_test.
# This may be replaced when dependencies are built.
