file(REMOVE_RECURSE
  "CMakeFiles/cluster_property_test.dir/cluster/property_test.cc.o"
  "CMakeFiles/cluster_property_test.dir/cluster/property_test.cc.o.d"
  "cluster_property_test"
  "cluster_property_test.pdb"
  "cluster_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
