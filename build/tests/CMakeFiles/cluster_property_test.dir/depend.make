# Empty dependencies file for cluster_property_test.
# This may be replaced when dependencies are built.
