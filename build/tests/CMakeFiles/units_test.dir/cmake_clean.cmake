file(REMOVE_RECURSE
  "CMakeFiles/units_test.dir/common/units_test.cc.o"
  "CMakeFiles/units_test.dir/common/units_test.cc.o.d"
  "units_test"
  "units_test.pdb"
  "units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
