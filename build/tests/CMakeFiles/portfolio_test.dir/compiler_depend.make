# Empty compiler generated dependencies file for portfolio_test.
# This may be replaced when dependencies are built.
