file(REMOVE_RECURSE
  "CMakeFiles/portfolio_test.dir/gsf/portfolio_test.cc.o"
  "CMakeFiles/portfolio_test.dir/gsf/portfolio_test.cc.o.d"
  "portfolio_test"
  "portfolio_test.pdb"
  "portfolio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portfolio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
