# Empty compiler generated dependencies file for autoscaler_test.
# This may be replaced when dependencies are built.
