file(REMOVE_RECURSE
  "CMakeFiles/autoscaler_test.dir/perf/autoscaler_test.cc.o"
  "CMakeFiles/autoscaler_test.dir/perf/autoscaler_test.cc.o.d"
  "autoscaler_test"
  "autoscaler_test.pdb"
  "autoscaler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscaler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
