file(REMOVE_RECURSE
  "CMakeFiles/datacenter_test.dir/carbon/datacenter_test.cc.o"
  "CMakeFiles/datacenter_test.dir/carbon/datacenter_test.cc.o.d"
  "datacenter_test"
  "datacenter_test.pdb"
  "datacenter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
