# Empty compiler generated dependencies file for datacenter_test.
# This may be replaced when dependencies are built.
