file(REMOVE_RECURSE
  "CMakeFiles/adoption_test.dir/gsf/adoption_test.cc.o"
  "CMakeFiles/adoption_test.dir/gsf/adoption_test.cc.o.d"
  "adoption_test"
  "adoption_test.pdb"
  "adoption_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adoption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
