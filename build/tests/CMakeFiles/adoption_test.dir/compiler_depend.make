# Empty compiler generated dependencies file for adoption_test.
# This may be replaced when dependencies are built.
