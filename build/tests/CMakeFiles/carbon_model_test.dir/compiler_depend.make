# Empty compiler generated dependencies file for carbon_model_test.
# This may be replaced when dependencies are built.
