file(REMOVE_RECURSE
  "CMakeFiles/carbon_model_test.dir/carbon/model_test.cc.o"
  "CMakeFiles/carbon_model_test.dir/carbon/model_test.cc.o.d"
  "carbon_model_test"
  "carbon_model_test.pdb"
  "carbon_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carbon_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
