file(REMOVE_RECURSE
  "CMakeFiles/tco_test.dir/gsf/tco_test.cc.o"
  "CMakeFiles/tco_test.dir/gsf/tco_test.cc.o.d"
  "tco_test"
  "tco_test.pdb"
  "tco_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tco_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
