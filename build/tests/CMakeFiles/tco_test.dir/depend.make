# Empty dependencies file for tco_test.
# This may be replaced when dependencies are built.
