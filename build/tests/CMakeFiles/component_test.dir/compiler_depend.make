# Empty compiler generated dependencies file for component_test.
# This may be replaced when dependencies are built.
