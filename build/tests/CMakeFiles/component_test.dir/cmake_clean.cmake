file(REMOVE_RECURSE
  "CMakeFiles/component_test.dir/carbon/component_test.cc.o"
  "CMakeFiles/component_test.dir/carbon/component_test.cc.o.d"
  "component_test"
  "component_test.pdb"
  "component_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/component_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
