file(REMOVE_RECURSE
  "CMakeFiles/intensity_profile_test.dir/carbon/intensity_profile_test.cc.o"
  "CMakeFiles/intensity_profile_test.dir/carbon/intensity_profile_test.cc.o.d"
  "intensity_profile_test"
  "intensity_profile_test.pdb"
  "intensity_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intensity_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
