# Empty dependencies file for intensity_profile_test.
# This may be replaced when dependencies are built.
