# Empty dependencies file for trace_gen_test.
# This may be replaced when dependencies are built.
