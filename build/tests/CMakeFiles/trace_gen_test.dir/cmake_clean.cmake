file(REMOVE_RECURSE
  "CMakeFiles/trace_gen_test.dir/cluster/trace_gen_test.cc.o"
  "CMakeFiles/trace_gen_test.dir/cluster/trace_gen_test.cc.o.d"
  "trace_gen_test"
  "trace_gen_test.pdb"
  "trace_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
