# Empty compiler generated dependencies file for hetero_test.
# This may be replaced when dependencies are built.
