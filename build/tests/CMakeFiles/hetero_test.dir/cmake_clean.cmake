file(REMOVE_RECURSE
  "CMakeFiles/hetero_test.dir/gsf/hetero_test.cc.o"
  "CMakeFiles/hetero_test.dir/gsf/hetero_test.cc.o.d"
  "hetero_test"
  "hetero_test.pdb"
  "hetero_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
