# Empty compiler generated dependencies file for worked_example_test.
# This may be replaced when dependencies are built.
