file(REMOVE_RECURSE
  "CMakeFiles/worked_example_test.dir/carbon/worked_example_test.cc.o"
  "CMakeFiles/worked_example_test.dir/carbon/worked_example_test.cc.o.d"
  "worked_example_test"
  "worked_example_test.pdb"
  "worked_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worked_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
