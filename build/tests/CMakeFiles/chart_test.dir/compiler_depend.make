# Empty compiler generated dependencies file for chart_test.
# This may be replaced when dependencies are built.
