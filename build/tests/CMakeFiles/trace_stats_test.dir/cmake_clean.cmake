file(REMOVE_RECURSE
  "CMakeFiles/trace_stats_test.dir/cluster/trace_stats_test.cc.o"
  "CMakeFiles/trace_stats_test.dir/cluster/trace_stats_test.cc.o.d"
  "trace_stats_test"
  "trace_stats_test.pdb"
  "trace_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
