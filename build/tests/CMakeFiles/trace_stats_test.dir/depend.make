# Empty dependencies file for trace_stats_test.
# This may be replaced when dependencies are built.
