# Empty compiler generated dependencies file for queueing_test.
# This may be replaced when dependencies are built.
