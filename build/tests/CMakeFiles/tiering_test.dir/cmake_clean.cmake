file(REMOVE_RECURSE
  "CMakeFiles/tiering_test.dir/gsf/tiering_test.cc.o"
  "CMakeFiles/tiering_test.dir/gsf/tiering_test.cc.o.d"
  "tiering_test"
  "tiering_test.pdb"
  "tiering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
