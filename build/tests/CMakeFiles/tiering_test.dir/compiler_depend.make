# Empty compiler generated dependencies file for tiering_test.
# This may be replaced when dependencies are built.
