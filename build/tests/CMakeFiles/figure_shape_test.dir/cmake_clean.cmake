file(REMOVE_RECURSE
  "CMakeFiles/figure_shape_test.dir/gsf/figure_shape_test.cc.o"
  "CMakeFiles/figure_shape_test.dir/gsf/figure_shape_test.cc.o.d"
  "figure_shape_test"
  "figure_shape_test.pdb"
  "figure_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
