# Empty compiler generated dependencies file for figure_shape_test.
# This may be replaced when dependencies are built.
