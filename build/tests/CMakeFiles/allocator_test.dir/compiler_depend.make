# Empty compiler generated dependencies file for allocator_test.
# This may be replaced when dependencies are built.
