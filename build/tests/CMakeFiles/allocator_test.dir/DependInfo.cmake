
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/allocator_test.cc" "tests/CMakeFiles/allocator_test.dir/cluster/allocator_test.cc.o" "gcc" "tests/CMakeFiles/allocator_test.dir/cluster/allocator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gsf/CMakeFiles/gsku_gsf.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/gsku_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/gsku_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/gsku_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/gsku_carbon.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gsku_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
