# Empty dependencies file for allocator_test.
# This may be replaced when dependencies are built.
