file(REMOVE_RECURSE
  "CMakeFiles/perf_property_test.dir/perf/property_test.cc.o"
  "CMakeFiles/perf_property_test.dir/perf/property_test.cc.o.d"
  "perf_property_test"
  "perf_property_test.pdb"
  "perf_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
