# Empty compiler generated dependencies file for perf_property_test.
# This may be replaced when dependencies are built.
