file(REMOVE_RECURSE
  "CMakeFiles/cpu_test.dir/perf/cpu_test.cc.o"
  "CMakeFiles/cpu_test.dir/perf/cpu_test.cc.o.d"
  "cpu_test"
  "cpu_test.pdb"
  "cpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
