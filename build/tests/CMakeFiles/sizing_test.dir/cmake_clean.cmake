file(REMOVE_RECURSE
  "CMakeFiles/sizing_test.dir/gsf/sizing_test.cc.o"
  "CMakeFiles/sizing_test.dir/gsf/sizing_test.cc.o.d"
  "sizing_test"
  "sizing_test.pdb"
  "sizing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sizing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
