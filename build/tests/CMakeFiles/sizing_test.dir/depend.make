# Empty dependencies file for sizing_test.
# This may be replaced when dependencies are built.
