# Empty compiler generated dependencies file for demand_test.
# This may be replaced when dependencies are built.
