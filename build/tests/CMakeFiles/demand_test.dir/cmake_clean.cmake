file(REMOVE_RECURSE
  "CMakeFiles/demand_test.dir/cluster/demand_test.cc.o"
  "CMakeFiles/demand_test.dir/cluster/demand_test.cc.o.d"
  "demand_test"
  "demand_test.pdb"
  "demand_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demand_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
