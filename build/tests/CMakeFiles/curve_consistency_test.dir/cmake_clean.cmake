file(REMOVE_RECURSE
  "CMakeFiles/curve_consistency_test.dir/perf/curve_consistency_test.cc.o"
  "CMakeFiles/curve_consistency_test.dir/perf/curve_consistency_test.cc.o.d"
  "curve_consistency_test"
  "curve_consistency_test.pdb"
  "curve_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curve_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
