# Empty compiler generated dependencies file for curve_consistency_test.
# This may be replaced when dependencies are built.
