file(REMOVE_RECURSE
  "CMakeFiles/design_space_test.dir/gsf/design_space_test.cc.o"
  "CMakeFiles/design_space_test.dir/gsf/design_space_test.cc.o.d"
  "design_space_test"
  "design_space_test.pdb"
  "design_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
