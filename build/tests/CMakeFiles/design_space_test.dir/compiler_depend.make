# Empty compiler generated dependencies file for design_space_test.
# This may be replaced when dependencies are built.
