file(REMOVE_RECURSE
  "CMakeFiles/solver_test.dir/common/solver_test.cc.o"
  "CMakeFiles/solver_test.dir/common/solver_test.cc.o.d"
  "solver_test"
  "solver_test.pdb"
  "solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
