# Empty dependencies file for carbon_property_test.
# This may be replaced when dependencies are built.
