file(REMOVE_RECURSE
  "CMakeFiles/carbon_property_test.dir/carbon/property_test.cc.o"
  "CMakeFiles/carbon_property_test.dir/carbon/property_test.cc.o.d"
  "carbon_property_test"
  "carbon_property_test.pdb"
  "carbon_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carbon_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
