file(REMOVE_RECURSE
  "CMakeFiles/sku_test.dir/carbon/sku_test.cc.o"
  "CMakeFiles/sku_test.dir/carbon/sku_test.cc.o.d"
  "sku_test"
  "sku_test.pdb"
  "sku_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sku_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
