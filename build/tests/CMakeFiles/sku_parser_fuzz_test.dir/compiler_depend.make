# Empty compiler generated dependencies file for sku_parser_fuzz_test.
# This may be replaced when dependencies are built.
