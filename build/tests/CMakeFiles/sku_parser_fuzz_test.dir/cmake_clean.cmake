file(REMOVE_RECURSE
  "CMakeFiles/sku_parser_fuzz_test.dir/carbon/sku_parser_fuzz_test.cc.o"
  "CMakeFiles/sku_parser_fuzz_test.dir/carbon/sku_parser_fuzz_test.cc.o.d"
  "sku_parser_fuzz_test"
  "sku_parser_fuzz_test.pdb"
  "sku_parser_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sku_parser_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
