# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for second_gen_test.
