# Empty compiler generated dependencies file for second_gen_test.
# This may be replaced when dependencies are built.
