file(REMOVE_RECURSE
  "CMakeFiles/second_gen_test.dir/carbon/second_gen_test.cc.o"
  "CMakeFiles/second_gen_test.dir/carbon/second_gen_test.cc.o.d"
  "second_gen_test"
  "second_gen_test.pdb"
  "second_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/second_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
