# Empty dependencies file for scaling_factor_test.
# This may be replaced when dependencies are built.
