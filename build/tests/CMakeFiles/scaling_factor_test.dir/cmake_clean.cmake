file(REMOVE_RECURSE
  "CMakeFiles/scaling_factor_test.dir/perf/scaling_factor_test.cc.o"
  "CMakeFiles/scaling_factor_test.dir/perf/scaling_factor_test.cc.o.d"
  "scaling_factor_test"
  "scaling_factor_test.pdb"
  "scaling_factor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_factor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
