file(REMOVE_RECURSE
  "CMakeFiles/embodied_estimator_test.dir/carbon/embodied_estimator_test.cc.o"
  "CMakeFiles/embodied_estimator_test.dir/carbon/embodied_estimator_test.cc.o.d"
  "embodied_estimator_test"
  "embodied_estimator_test.pdb"
  "embodied_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embodied_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
