# Empty compiler generated dependencies file for embodied_estimator_test.
# This may be replaced when dependencies are built.
