file(REMOVE_RECURSE
  "CMakeFiles/multi_sku_test.dir/cluster/multi_sku_test.cc.o"
  "CMakeFiles/multi_sku_test.dir/cluster/multi_sku_test.cc.o.d"
  "multi_sku_test"
  "multi_sku_test.pdb"
  "multi_sku_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_sku_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
