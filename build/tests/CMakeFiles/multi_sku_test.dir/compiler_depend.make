# Empty compiler generated dependencies file for multi_sku_test.
# This may be replaced when dependencies are built.
