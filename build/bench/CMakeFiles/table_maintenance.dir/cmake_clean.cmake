file(REMOVE_RECURSE
  "CMakeFiles/table_maintenance.dir/table_maintenance.cc.o"
  "CMakeFiles/table_maintenance.dir/table_maintenance.cc.o.d"
  "table_maintenance"
  "table_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
