# Empty dependencies file for table_maintenance.
# This may be replaced when dependencies are built.
