file(REMOVE_RECURSE
  "CMakeFiles/fig07_tail_latency.dir/fig07_tail_latency.cc.o"
  "CMakeFiles/fig07_tail_latency.dir/fig07_tail_latency.cc.o.d"
  "fig07_tail_latency"
  "fig07_tail_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
