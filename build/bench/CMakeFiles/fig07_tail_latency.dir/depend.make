# Empty dependencies file for fig07_tail_latency.
# This may be replaced when dependencies are built.
