file(REMOVE_RECURSE
  "CMakeFiles/ablation_component_sweep.dir/ablation_component_sweep.cc.o"
  "CMakeFiles/ablation_component_sweep.dir/ablation_component_sweep.cc.o.d"
  "ablation_component_sweep"
  "ablation_component_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_component_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
