# Empty compiler generated dependencies file for ablation_component_sweep.
# This may be replaced when dependencies are built.
