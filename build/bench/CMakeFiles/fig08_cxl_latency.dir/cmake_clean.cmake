file(REMOVE_RECURSE
  "CMakeFiles/fig08_cxl_latency.dir/fig08_cxl_latency.cc.o"
  "CMakeFiles/fig08_cxl_latency.dir/fig08_cxl_latency.cc.o.d"
  "fig08_cxl_latency"
  "fig08_cxl_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cxl_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
