# Empty compiler generated dependencies file for fig08_cxl_latency.
# This may be replaced when dependencies are built.
