# Empty compiler generated dependencies file for ablation_growth_buffer.
# This may be replaced when dependencies are built.
