file(REMOVE_RECURSE
  "CMakeFiles/ablation_growth_buffer.dir/ablation_growth_buffer.cc.o"
  "CMakeFiles/ablation_growth_buffer.dir/ablation_growth_buffer.cc.o.d"
  "ablation_growth_buffer"
  "ablation_growth_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_growth_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
