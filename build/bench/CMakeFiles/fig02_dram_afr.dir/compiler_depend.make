# Empty compiler generated dependencies file for fig02_dram_afr.
# This may be replaced when dependencies are built.
