file(REMOVE_RECURSE
  "CMakeFiles/fig02_dram_afr.dir/fig02_dram_afr.cc.o"
  "CMakeFiles/fig02_dram_afr.dir/fig02_dram_afr.cc.o.d"
  "fig02_dram_afr"
  "fig02_dram_afr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_dram_afr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
