file(REMOVE_RECURSE
  "CMakeFiles/ablation_multi_sku.dir/ablation_multi_sku.cc.o"
  "CMakeFiles/ablation_multi_sku.dir/ablation_multi_sku.cc.o.d"
  "ablation_multi_sku"
  "ablation_multi_sku.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_sku.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
