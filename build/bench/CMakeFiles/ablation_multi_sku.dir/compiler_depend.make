# Empty compiler generated dependencies file for ablation_multi_sku.
# This may be replaced when dependencies are built.
