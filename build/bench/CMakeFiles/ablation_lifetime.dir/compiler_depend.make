# Empty compiler generated dependencies file for ablation_lifetime.
# This may be replaced when dependencies are built.
