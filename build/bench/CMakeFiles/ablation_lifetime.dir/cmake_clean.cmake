file(REMOVE_RECURSE
  "CMakeFiles/ablation_lifetime.dir/ablation_lifetime.cc.o"
  "CMakeFiles/ablation_lifetime.dir/ablation_lifetime.cc.o.d"
  "ablation_lifetime"
  "ablation_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
