# Empty compiler generated dependencies file for ablation_tco.
# This may be replaced when dependencies are built.
