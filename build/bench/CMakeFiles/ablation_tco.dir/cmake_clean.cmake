file(REMOVE_RECURSE
  "CMakeFiles/ablation_tco.dir/ablation_tco.cc.o"
  "CMakeFiles/ablation_tco.dir/ablation_tco.cc.o.d"
  "ablation_tco"
  "ablation_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
