# Empty dependencies file for ablation_temporal.
# This may be replaced when dependencies are built.
