file(REMOVE_RECURSE
  "CMakeFiles/ablation_temporal.dir/ablation_temporal.cc.o"
  "CMakeFiles/ablation_temporal.dir/ablation_temporal.cc.o.d"
  "ablation_temporal"
  "ablation_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
