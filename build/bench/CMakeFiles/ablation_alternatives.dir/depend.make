# Empty dependencies file for ablation_alternatives.
# This may be replaced when dependencies are built.
