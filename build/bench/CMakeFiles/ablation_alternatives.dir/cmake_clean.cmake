file(REMOVE_RECURSE
  "CMakeFiles/ablation_alternatives.dir/ablation_alternatives.cc.o"
  "CMakeFiles/ablation_alternatives.dir/ablation_alternatives.cc.o.d"
  "ablation_alternatives"
  "ablation_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
