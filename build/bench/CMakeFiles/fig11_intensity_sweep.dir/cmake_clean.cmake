file(REMOVE_RECURSE
  "CMakeFiles/fig11_intensity_sweep.dir/fig11_intensity_sweep.cc.o"
  "CMakeFiles/fig11_intensity_sweep.dir/fig11_intensity_sweep.cc.o.d"
  "fig11_intensity_sweep"
  "fig11_intensity_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_intensity_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
