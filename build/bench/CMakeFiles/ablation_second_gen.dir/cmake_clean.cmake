file(REMOVE_RECURSE
  "CMakeFiles/ablation_second_gen.dir/ablation_second_gen.cc.o"
  "CMakeFiles/ablation_second_gen.dir/ablation_second_gen.cc.o.d"
  "ablation_second_gen"
  "ablation_second_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_second_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
