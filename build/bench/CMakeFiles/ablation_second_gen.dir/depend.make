# Empty dependencies file for ablation_second_gen.
# This may be replaced when dependencies are built.
