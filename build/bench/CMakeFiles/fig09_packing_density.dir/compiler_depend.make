# Empty compiler generated dependencies file for fig09_packing_density.
# This may be replaced when dependencies are built.
