file(REMOVE_RECURSE
  "CMakeFiles/fig09_packing_density.dir/fig09_packing_density.cc.o"
  "CMakeFiles/fig09_packing_density.dir/fig09_packing_density.cc.o.d"
  "fig09_packing_density"
  "fig09_packing_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_packing_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
