# Empty compiler generated dependencies file for ablation_placement.
# This may be replaced when dependencies are built.
