file(REMOVE_RECURSE
  "CMakeFiles/ablation_portfolio.dir/ablation_portfolio.cc.o"
  "CMakeFiles/ablation_portfolio.dir/ablation_portfolio.cc.o.d"
  "ablation_portfolio"
  "ablation_portfolio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
