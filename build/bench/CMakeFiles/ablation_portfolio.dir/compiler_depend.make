# Empty compiler generated dependencies file for ablation_portfolio.
# This may be replaced when dependencies are built.
