# Empty compiler generated dependencies file for table_tiering.
# This may be replaced when dependencies are built.
