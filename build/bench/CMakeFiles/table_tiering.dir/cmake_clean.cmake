file(REMOVE_RECURSE
  "CMakeFiles/table_tiering.dir/table_tiering.cc.o"
  "CMakeFiles/table_tiering.dir/table_tiering.cc.o.d"
  "table_tiering"
  "table_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
