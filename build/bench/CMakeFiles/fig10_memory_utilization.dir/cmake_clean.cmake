file(REMOVE_RECURSE
  "CMakeFiles/fig10_memory_utilization.dir/fig10_memory_utilization.cc.o"
  "CMakeFiles/fig10_memory_utilization.dir/fig10_memory_utilization.cc.o.d"
  "fig10_memory_utilization"
  "fig10_memory_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_memory_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
