# Empty dependencies file for fig10_memory_utilization.
# This may be replaced when dependencies are built.
