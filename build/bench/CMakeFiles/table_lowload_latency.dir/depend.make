# Empty dependencies file for table_lowload_latency.
# This may be replaced when dependencies are built.
