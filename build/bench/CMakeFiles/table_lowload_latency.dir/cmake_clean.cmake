file(REMOVE_RECURSE
  "CMakeFiles/table_lowload_latency.dir/table_lowload_latency.cc.o"
  "CMakeFiles/table_lowload_latency.dir/table_lowload_latency.cc.o.d"
  "table_lowload_latency"
  "table_lowload_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_lowload_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
