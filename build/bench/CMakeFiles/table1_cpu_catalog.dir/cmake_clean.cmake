file(REMOVE_RECURSE
  "CMakeFiles/table1_cpu_catalog.dir/table1_cpu_catalog.cc.o"
  "CMakeFiles/table1_cpu_catalog.dir/table1_cpu_catalog.cc.o.d"
  "table1_cpu_catalog"
  "table1_cpu_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cpu_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
