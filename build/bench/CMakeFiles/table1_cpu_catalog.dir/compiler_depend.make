# Empty compiler generated dependencies file for table1_cpu_catalog.
# This may be replaced when dependencies are built.
