# Empty dependencies file for table2_devops.
# This may be replaced when dependencies are built.
