file(REMOVE_RECURSE
  "CMakeFiles/table2_devops.dir/table2_devops.cc.o"
  "CMakeFiles/table2_devops.dir/table2_devops.cc.o.d"
  "table2_devops"
  "table2_devops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_devops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
