# Empty compiler generated dependencies file for table4_percore_savings.
# This may be replaced when dependencies are built.
