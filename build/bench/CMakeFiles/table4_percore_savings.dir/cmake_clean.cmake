file(REMOVE_RECURSE
  "CMakeFiles/table4_percore_savings.dir/table4_percore_savings.cc.o"
  "CMakeFiles/table4_percore_savings.dir/table4_percore_savings.cc.o.d"
  "table4_percore_savings"
  "table4_percore_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_percore_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
