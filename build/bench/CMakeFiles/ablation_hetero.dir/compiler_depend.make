# Empty compiler generated dependencies file for ablation_hetero.
# This may be replaced when dependencies are built.
