file(REMOVE_RECURSE
  "CMakeFiles/ablation_hetero.dir/ablation_hetero.cc.o"
  "CMakeFiles/ablation_hetero.dir/ablation_hetero.cc.o.d"
  "ablation_hetero"
  "ablation_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
