# Empty compiler generated dependencies file for table3_scaling_factors.
# This may be replaced when dependencies are built.
