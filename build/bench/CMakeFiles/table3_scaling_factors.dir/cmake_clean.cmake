file(REMOVE_RECURSE
  "CMakeFiles/table3_scaling_factors.dir/table3_scaling_factors.cc.o"
  "CMakeFiles/table3_scaling_factors.dir/table3_scaling_factors.cc.o.d"
  "table3_scaling_factors"
  "table3_scaling_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_scaling_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
