file(REMOVE_RECURSE
  "CMakeFiles/table5_table6_inputs.dir/table5_table6_inputs.cc.o"
  "CMakeFiles/table5_table6_inputs.dir/table5_table6_inputs.cc.o.d"
  "table5_table6_inputs"
  "table5_table6_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_table6_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
