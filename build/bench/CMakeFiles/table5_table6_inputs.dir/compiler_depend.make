# Empty compiler generated dependencies file for table5_table6_inputs.
# This may be replaced when dependencies are built.
