# Empty compiler generated dependencies file for fig01_carbon_breakdown.
# This may be replaced when dependencies are built.
