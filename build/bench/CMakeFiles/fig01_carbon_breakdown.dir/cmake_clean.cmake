file(REMOVE_RECURSE
  "CMakeFiles/fig01_carbon_breakdown.dir/fig01_carbon_breakdown.cc.o"
  "CMakeFiles/fig01_carbon_breakdown.dir/fig01_carbon_breakdown.cc.o.d"
  "fig01_carbon_breakdown"
  "fig01_carbon_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_carbon_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
