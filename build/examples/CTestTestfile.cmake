# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_smoke_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_smoke_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;gsku_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_design_space "/root/repo/build/examples/design_space")
set_tests_properties(example_smoke_design_space PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;gsku_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_region_planner "/root/repo/build/examples/region_planner")
set_tests_properties(example_smoke_region_planner PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;gsku_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_trace_explorer "/root/repo/build/examples/trace_explorer")
set_tests_properties(example_smoke_trace_explorer PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;gsku_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_sku_eval_cli "/root/repo/build/examples/sku_eval_cli")
set_tests_properties(example_smoke_sku_eval_cli PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;gsku_example;/root/repo/examples/CMakeLists.txt;0;")
