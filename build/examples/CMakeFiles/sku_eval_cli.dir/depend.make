# Empty dependencies file for sku_eval_cli.
# This may be replaced when dependencies are built.
