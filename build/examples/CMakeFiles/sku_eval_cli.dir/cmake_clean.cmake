file(REMOVE_RECURSE
  "CMakeFiles/sku_eval_cli.dir/sku_eval_cli.cc.o"
  "CMakeFiles/sku_eval_cli.dir/sku_eval_cli.cc.o.d"
  "sku_eval_cli"
  "sku_eval_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sku_eval_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
