# Empty dependencies file for region_planner.
# This may be replaced when dependencies are built.
