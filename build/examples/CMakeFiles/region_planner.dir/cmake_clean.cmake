file(REMOVE_RECURSE
  "CMakeFiles/region_planner.dir/region_planner.cc.o"
  "CMakeFiles/region_planner.dir/region_planner.cc.o.d"
  "region_planner"
  "region_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
