/**
 * @file
 * Tests of the `gsku-profile-v1` deterministic work-unit profiler:
 * scope/work attribution into the domain trie, the canonical snapshot
 * and checksum, write/read round trips through the strict reader
 * (common/profile_read.h), the flamegraph collapsed sidecar, and
 * offset-naming rejection of corrupt profiles — mirroring the
 * timeseries_test suite for gsku-tsdb-v1.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/parallel.h"
#include "common/profile_read.h"
#include "obs/profile.h"

namespace gsku::obs {
namespace {

namespace fs = std::filesystem;

/** Per-test scratch directory under the system temp dir. */
class ProfileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("gsku_profile_test_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        stopProfile();
        fs::remove_all(dir_);
    }

    std::string path(const std::string &name) const
    {
        return (fs::path(dir_) / name).string();
    }

    std::string dir_;
};

std::string
slurp(const std::string &file)
{
    std::ifstream in(file, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Record a small three-domain workload (17 units) on this thread. */
void
recordSmallWorkload()
{
    {
        ProfileScope outer("alpha");
        profileWork(5);
        {
            ProfileScope inner("beta");
            profileWork(7);
        }
        profileWork("gamma", 3);
    }
    profileWork(2);    // Outside any scope: "(unscoped)".
}

TEST_F(ProfileTest, AttributesWorkToTheInnermostDomain)
{
    startProfile();
    recordSmallWorkload();
    const ProfileSnapshot snap = snapshotProfile();

    ASSERT_EQ(snap.entries.size(), 4u);
    EXPECT_EQ(snap.total_units, 17u);
    EXPECT_FALSE(snap.wall_lane);

    // Sorted by path; "(unscoped)" sorts before the letters.
    EXPECT_EQ(snap.entries[0].path, "(unscoped)");
    EXPECT_EQ(snap.entries[0].self_units, 2u);
    EXPECT_EQ(snap.entries[0].total_units, 2u);

    EXPECT_EQ(snap.entries[1].path, "alpha");
    EXPECT_EQ(snap.entries[1].self_units, 5u);
    EXPECT_EQ(snap.entries[1].total_units, 15u);    // 5 + 7 + 3.
    EXPECT_EQ(snap.entries[1].scopes, 1u);

    EXPECT_EQ(snap.entries[2].path, "alpha;beta");
    EXPECT_EQ(snap.entries[2].self_units, 7u);
    EXPECT_EQ(snap.entries[2].scopes, 1u);

    EXPECT_EQ(snap.entries[3].path, "alpha;gamma");
    EXPECT_EQ(snap.entries[3].self_units, 3u);
    EXPECT_EQ(snap.entries[3].scopes, 0u);    // Leaf tick, no scope.
}

TEST_F(ProfileTest, StartResetsAndStopFreezes)
{
    startProfile();
    recordSmallWorkload();
    stopProfile();

    // Stopped: new work does not land...
    profileWork(100);
    {
        ProfileScope scope("omega");
        profileWork(100);
    }
    EXPECT_EQ(snapshotProfile().total_units, 17u);

    // ...and a fresh start() resets the accumulated units.
    startProfile();
    EXPECT_EQ(snapshotProfile().total_units, 0u);
    profileWork(4);
    EXPECT_EQ(snapshotProfile().total_units, 4u);
}

TEST_F(ProfileTest, RoundTripsThroughWriterAndReader)
{
    startProfile();
    setProfileProgram("profile_test");
    recordSmallWorkload();

    const std::string file = path("run.profile.json");
    ASSERT_TRUE(writeProfile(file));

    // The strict reader re-validates totals and the checksum.
    const ProfileData data = readProfile(file);
    EXPECT_EQ(data.program, "profile_test");
    EXPECT_FALSE(data.wall_lane);
    EXPECT_EQ(data.total_units, 17u);
    ASSERT_EQ(data.entries.size(), 4u);
    EXPECT_EQ(data.entries[1].path, "alpha");
    EXPECT_EQ(data.entries[1].total_units, 15u);
    EXPECT_EQ(data.checksum, profileChecksum(snapshotProfile()));

    // The collapsed flamegraph sidecar lists exactly the domains with
    // nonzero self units, in path order.
    EXPECT_EQ(slurp(file + ".collapsed"),
              "(unscoped) 2\n"
              "alpha 5\n"
              "alpha;beta 7\n"
              "alpha;gamma 3\n");
}

TEST_F(ProfileTest, PoolTasksInheritTheSubmittersDomain)
{
    startProfile();
    const int original = ThreadPool::global().threads();
    ThreadPool::resetGlobal(4);
    {
        ProfileScope scope("fanout");
        parallelMap<int>(8, [](std::size_t i) {
            profileWork("tasks", static_cast<std::uint64_t>(i) + 1);
            return static_cast<int>(i);
        });
    }
    ThreadPool::resetGlobal(original);

    const ProfileSnapshot snap = snapshotProfile();
    ASSERT_EQ(snap.entries.size(), 2u);
    EXPECT_EQ(snap.entries[0].path, "fanout");
    EXPECT_EQ(snap.entries[1].path, "fanout;tasks");
    EXPECT_EQ(snap.entries[1].self_units, 36u);    // 1+2+...+8.
}

TEST_F(ProfileTest, ChecksumCoversExactlyTheDeterministicLane)
{
    ProfileSnapshot snap;
    snap.entries = {{"a", 1, 3, 1, 0}, {"a;b", 2, 2, 1, 0}};
    const std::uint64_t base = profileChecksum(snap);

    // Wall time is volatile: it never moves the checksum.
    snap.entries[0].wall_ns = 123456789;
    snap.entries[1].wall_ns = 42;
    EXPECT_EQ(profileChecksum(snap), base);

    // Units, scope counts, and paths all do.
    snap.entries[1].self_units = 3;
    EXPECT_NE(profileChecksum(snap), base);
    snap.entries[1].self_units = 2;
    snap.entries[1].scopes = 2;
    EXPECT_NE(profileChecksum(snap), base);
    snap.entries[1].scopes = 1;
    snap.entries[1].path = "a;c";
    EXPECT_NE(profileChecksum(snap), base);
}

/** A syntactically well-formed document whose two-entry domain list
 *  and checksum the corrupt-profile tests below mutate. */
std::string
validDoc()
{
    ProfileSnapshot snap;
    snap.entries = {{"a", 1, 3, 1, 0}, {"a;b", 2, 2, 1, 0}};
    return std::string("{\"schema\": \"gsku-profile-v1\", ") +
           "\"program\": \"t\", \"wall_lane\": false, " +
           "\"total_units\": 3, \"domains\": [" +
           "{\"path\": \"a\", \"self_units\": 1, \"total_units\": 3, " +
           "\"scopes\": 1}, " +
           "{\"path\": \"a;b\", \"self_units\": 2, \"total_units\": 2, " +
           "\"scopes\": 1}], \"checksum_fnv1a64\": \"" +
           hex16(profileChecksum(snap)) + "\"}";
}

TEST_F(ProfileTest, ReaderAcceptsTheHandcraftedDocument)
{
    const std::string file = path("ok.profile.json");
    std::ofstream(file) << validDoc();
    const ProfileData data = readProfile(file);
    EXPECT_EQ(data.program, "t");
    EXPECT_EQ(data.total_units, 3u);
    ASSERT_EQ(data.entries.size(), 2u);
}

TEST_F(ProfileTest, RejectsCorruptProfilesNamingTheOffset)
{
    auto expect_reject = [this](const std::string &content,
                                const std::string &needle) {
        const std::string file = path("bad.profile.json");
        std::ofstream(file, std::ios::trunc) << content;
        try {
            readProfile(file);
            FAIL() << "accepted a corrupt profile; wanted error "
                   << "containing: " << needle;
        } catch (const UserError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << "error was: " << e.what();
        }
    };
    const std::string good = validDoc();
    auto replace = [&](const std::string &from, const std::string &to) {
        std::string out = good;
        const std::size_t at = out.find(from);
        EXPECT_NE(at, std::string::npos) << from;
        return out.replace(at, from.size(), to);
    };

    expect_reject("", "expected '{' at offset 0");
    expect_reject(good.substr(0, 14), "unterminated string");
    expect_reject(replace("gsku-profile-v1", "gsku-profile-v9"),
                  "unsupported schema \"gsku-profile-v9\"");
    expect_reject(replace("\"program\"", "\"prog\""),
                  "expected key \"program\", found \"prog\"");
    expect_reject(replace("\"path\": \"a\"", "\"path\": \"\""),
                  "empty domain path at offset");
    expect_reject(replace("\"a\"", "\"z\""),
                  "unsorted domain path \"a;b\" at offset");
    expect_reject(replace("\"total_units\": 3, \"scopes\": 1}",
                          "\"total_units\": 0, \"scopes\": 1}"),
                  "total_units below self_units for \"a\"");
    expect_reject(replace("\"scopes\": 1}, ",
                          "\"scopes\": 1, \"wall_ns\": 5}, "),
                  "wall_ns present without wall_lane");
    expect_reject(replace("\"wall_lane\": false", "\"wall_lane\": true"),
                  "missing wall_ns under wall_lane");
    expect_reject(replace("\"self_units\": 2",
                          "\"self_units\": 99999999999999999999"),
                  "integer overflows u64");
    expect_reject(replace("\"checksum_fnv1a64\": \"",
                          "\"checksum_fnv1a64\": \"zz"),
                  "checksum must be 16 hex digits");
    expect_reject(good + "x", "trailing bytes");
    expect_reject(replace("\"total_units\": 3, \"domains\"",
                          "\"total_units\": 99, \"domains\""),
                  "total_units 99 does not match the sum of "
                  "self_units 3");
    expect_reject(replace("\"total_units\": 3, \"scopes\"",
                          "\"total_units\": 5, \"scopes\""),
                  "inconsistent total_units for \"a\": 5 != self 1 + "
                  "children 2");
    std::string wrong_sum = good;
    wrong_sum.replace(wrong_sum.find("checksum_fnv1a64\": \"") +
                          std::string("checksum_fnv1a64\": \"").size(),
                      16, "0000000000000000");
    expect_reject(wrong_sum, "checksum mismatch: file records "
                             "0000000000000000");
}

} // namespace
} // namespace gsku::obs
