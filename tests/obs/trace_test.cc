/**
 * @file
 * Scoped tracing: disabled spans record nothing, enabled spans capture
 * non-negative durations with well-nested intervals per thread, and
 * writeTrace emits a Chrome-trace JSON document.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "obs/trace.h"

namespace gsku::obs {
namespace {

/** Drain-and-discard so tests don't leak events into one another. */
void
clearTraceState()
{
    stopTrace();
    drainTrace();
}

TEST(TraceTest, DisabledSpansRecordNothing)
{
    clearTraceState();
    ASSERT_FALSE(traceEnabled());
    {
        TraceSpan span("test", "disabled");
        span.arg("k", std::int64_t{1});
    }
    EXPECT_TRUE(drainTrace().empty());
}

TEST(TraceTest, SpansCaptureNamesArgsAndNonNegativeDurations)
{
    clearTraceState();
    startTrace();
    {
        TraceSpan outer("test", "outer");
        outer.arg("answer", std::int64_t{42})
            .arg("label", std::string("x"));
        TraceSpan inner("test", "inner");
    }
    stopTrace();

    // stopTrace discards; record again to exercise the drain path.
    startTrace();
    {
        TraceSpan outer("test", "outer");
        outer.arg("answer", std::int64_t{42});
        {
            TraceSpan inner("test", "inner");
        }
    }
    const std::vector<TraceEvent> events = drainTrace();
    stopTrace();

    ASSERT_EQ(events.size(), 2u);
    for (const TraceEvent &e : events) {
        EXPECT_EQ(e.category, "test");
        EXPECT_GE(e.ts_us, 0.0);
        EXPECT_GE(e.dur_us, 0.0);
    }
    // Same thread: sorted by start time, the outer span comes first and
    // fully contains the inner one.
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_LE(events[0].ts_us, events[1].ts_us);
    EXPECT_GE(events[0].ts_us + events[0].dur_us,
              events[1].ts_us + events[1].dur_us);
    EXPECT_NE(events[0].args_json.find("\"answer\": 42"),
              std::string::npos);
}

TEST(TraceTest, EventsAreWellNestedPerThread)
{
    clearTraceState();
    startTrace();
    const int original = ThreadPool::global().threads();
    ThreadPool::resetGlobal(4);
    parallelFor(64, [](std::size_t) {
        TraceSpan outer("test", "work");
        TraceSpan inner("test", "inner_work");
    });
    ThreadPool::resetGlobal(original);
    const std::vector<TraceEvent> events = drainTrace();
    stopTrace();

    ASSERT_FALSE(events.empty());
    // drainTrace sorts by (tid, ts, -dur): replay each thread's events
    // against a stack; every span must close inside its parent.
    std::vector<const TraceEvent *> stack;
    std::uint64_t tid = events.front().tid;
    for (const TraceEvent &e : events) {
        EXPECT_GE(e.dur_us, 0.0);
        if (e.tid != tid) {
            tid = e.tid;
            stack.clear();
        }
        while (!stack.empty() &&
               stack.back()->ts_us + stack.back()->dur_us < e.ts_us) {
            stack.pop_back();
        }
        if (!stack.empty()) {
            EXPECT_LE(e.ts_us + e.dur_us,
                      stack.back()->ts_us + stack.back()->dur_us)
                << "span partially overlaps its enclosing span";
        }
        stack.push_back(&e);
    }
}

TEST(TraceTest, WriteTraceEmitsChromeJson)
{
    clearTraceState();
    startTrace();
    {
        TraceSpan span("test", "file_span");
        span.arg("v", 1.25);
    }
    const std::string path = "trace_test_out.json";
    ASSERT_TRUE(writeTrace(path));
    stopTrace();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string json = buffer.str();
    std::remove(path.c_str());

    // Chrome-trace shape: a traceEvents array of complete ("ph": "X")
    // events with the recorded span present.
    EXPECT_EQ(json.rfind("{\"traceEvents\":", 0), 0u);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"file_span\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"test\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
    EXPECT_EQ(json.back(), '\n');
}

TEST(TraceTest, StartTraceIsIdempotentAndStopDiscards)
{
    clearTraceState();
    startTrace();
    startTrace();
    EXPECT_TRUE(traceEnabled());
    {
        TraceSpan span("test", "discarded");
    }
    stopTrace();
    EXPECT_FALSE(traceEnabled());
    EXPECT_TRUE(drainTrace().empty());
}

} // namespace
} // namespace gsku::obs
