/**
 * @file
 * Tests of the `gsku-tsdb-v1` telemetry container: write/read round
 * trips through the logical-clock sampler, delta-by-omission point
 * encoding, the volatile lane (and its exclusion from the frames
 * checksum), tolerant tail reads of a growing file, and offset-naming
 * rejection of corrupt/truncated/version-skewed files — mirroring the
 * trace_binary_test suite for gsku-trace-v1.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/tsdb_read.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace gsku::obs {
namespace {

namespace fs = std::filesystem;

/** Per-test scratch directory under the system temp dir. */
class TimeseriesTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("gsku_timeseries_test_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        finishTimeseries();
        ::unsetenv("GSKU_TSDB_VOLATILE");
        fs::remove_all(dir_);
    }

    std::string path(const std::string &name) const
    {
        return (fs::path(dir_) / name).string();
    }

    std::string dir_;
};

std::string
slurp(const std::string &file)
{
    std::ifstream in(file, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/**
 * Write a small but structurally complete tsdb file: a baseline
 * sample at activation, periodic samples as the counter moves, and a
 * final sample at finish. Returns the counter's final value.
 */
std::uint64_t
writeSmallTsdb(const std::string &file, const std::string &counter_name,
               int samples = 3)
{
    Counter &c = metrics().counter(counter_name);
    startTimeseries(file, /*sample_every=*/4);
    for (int i = 0; i < samples; ++i) {
        c.inc(10);
        telemetryTick(4);    // Crosses the period: one sample per loop.
    }
    // Move the counter and the clock (without crossing the period) so
    // finish() has to take its final catch-up sample.
    c.inc(1);
    telemetryTick(1);
    EXPECT_TRUE(finishTimeseries());
    return c.value();
}

TEST_F(TimeseriesTest, RoundTripsThroughTheSampler)
{
    const std::string file = path("run.gskutsdb");
    const std::uint64_t final_value =
        writeSmallTsdb(file, "tstest.roundtrip");

    const TimeseriesData data = readTsdb(file);
    EXPECT_TRUE(data.complete);
    EXPECT_EQ(data.program, kTsdbSchema);
    EXPECT_EQ(data.sample_every, 4u);
    EXPECT_FALSE(data.volatile_lane);
    // Baseline + 3 periodic + 1 final.
    EXPECT_EQ(data.samples.size(), 5u);

    // Logical clocks strictly increase; seqs are dense from zero.
    for (std::size_t i = 0; i < data.samples.size(); ++i) {
        EXPECT_EQ(data.samples[i].seq, i);
        if (i > 0) {
            EXPECT_GT(data.samples[i].clock,
                      data.samples[i - 1].clock);
        }
        EXPECT_FALSE(data.samples[i].has_wall);
    }

    const TsdbSeries *series = data.findSeries("tstest.roundtrip");
    ASSERT_NE(series, nullptr);
    EXPECT_FALSE(series->is_double);
    EXPECT_FALSE(series->is_volatile);
    const auto finals = data.finalValues();
    EXPECT_EQ(finals.at("tstest.roundtrip"),
              static_cast<double>(final_value));
}

TEST_F(TimeseriesTest, DeltaByOmissionSkipsUnchangedSeries)
{
    // A counter frozen before activation lands exactly one point (the
    // baseline sample); a moving counter lands one per sample.
    Counter &frozen = metrics().counter("tstest.frozen");
    frozen.inc(7);
    const std::string file = path("delta.gskutsdb");
    writeSmallTsdb(file, "tstest.moving");

    const TimeseriesData data = readTsdb(file);
    const TsdbSeries *fs_ = data.findSeries("tstest.frozen");
    const TsdbSeries *ms = data.findSeries("tstest.moving");
    ASSERT_NE(fs_, nullptr);
    ASSERT_NE(ms, nullptr);
    std::size_t frozen_points = 0;
    std::size_t moving_points = 0;
    for (const TsdbSample &sample : data.samples) {
        for (const TsdbPoint &p : sample.points) {
            frozen_points += p.series == fs_->id ? 1 : 0;
            moving_points += p.series == ms->id ? 1 : 0;
        }
    }
    EXPECT_EQ(frozen_points, 1u);
    EXPECT_EQ(moving_points, data.samples.size());
}

TEST_F(TimeseriesTest, SamplingNeverWritesTheRegistry)
{
    // The byte-identity contract: telemetry observes the registry and
    // never feeds back, so a full write cycle with no engine activity
    // leaves every metric exactly where it was.
    const std::string before = metrics().snapshot().toJson();
    startTimeseries(path("silent.gskutsdb"), 2);
    telemetryTick(2);
    telemetryTick(2);
    EXPECT_TRUE(finishTimeseries());
    EXPECT_EQ(metrics().snapshot().toJson(), before);
}

TEST_F(TimeseriesTest, VolatileNameClassification)
{
    EXPECT_TRUE(tsdbSeriesIsVolatile("parallel.pool_threads"));
    EXPECT_TRUE(tsdbSeriesIsVolatile("parallel.stall_events"));
    EXPECT_TRUE(tsdbSeriesIsVolatile("worker.3.busy_seconds"));
    EXPECT_TRUE(tsdbSeriesIsVolatile("wall.seconds"));
    EXPECT_FALSE(tsdbSeriesIsVolatile("parallel.tasks_run"));
    EXPECT_FALSE(tsdbSeriesIsVolatile("replay.vms_placed"));
    EXPECT_FALSE(tsdbSeriesIsVolatile("workers"));   // No dot prefix.
}

TEST_F(TimeseriesTest, VolatileLaneIsOptInAndChecksumExcluded)
{
    // Default: volatile series stay out of the file entirely.
    const std::string plain = path("plain.gskutsdb");
    writeSmallTsdb(plain, "tstest.lane");
    const TimeseriesData off = readTsdb(plain);
    EXPECT_FALSE(off.volatile_lane);
    for (const TsdbSeries &s : off.series)
        EXPECT_FALSE(s.is_volatile) << s.name;

    // Opted in: worker heartbeats, the stall counter, and the wall
    // lane appear, flagged volatile — and the strict reader still
    // verifies both checksums, because volatile frames are excluded
    // from frames_fnv by writer and reader alike.
    ::setenv("GSKU_TSDB_VOLATILE", "1", 1);
    beatTaskStart(1, 42);
    beatTaskEnd(1);
    const std::string vol_file = path("volatile.gskutsdb");
    writeSmallTsdb(vol_file, "tstest.lane");
    const TimeseriesData on = readTsdb(vol_file);
    EXPECT_TRUE(on.volatile_lane);
    EXPECT_TRUE(on.complete);

    bool saw_volatile = false;
    for (const TsdbSeries &s : on.series) {
        EXPECT_EQ(s.is_volatile, tsdbSeriesIsVolatile(s.name))
            << s.name;
        saw_volatile = saw_volatile || s.is_volatile;
    }
    EXPECT_TRUE(saw_volatile);
    ASSERT_NE(on.findSeries("parallel.stall_events"), nullptr);
    ASSERT_FALSE(on.samples.empty());
    EXPECT_TRUE(on.samples.front().has_wall);
    EXPECT_GE(on.samples.front().wall_seconds, 0.0);
}

TEST_F(TimeseriesTest, TailReadFollowsAGrowingFile)
{
    const std::string file = path("grow.gskutsdb");
    writeSmallTsdb(file, "tstest.tail");
    const std::string bytes = slurp(file);
    const TimeseriesData full = readTsdb(file);

    // A complete file tail-reads as complete.
    const TimeseriesData done = readTsdbTail(file);
    EXPECT_TRUE(done.complete);
    EXPECT_EQ(done.samples.size(), full.samples.size());
    EXPECT_EQ(done.bytes_parsed, bytes.size());

    // Strip the footer and some trailing frame bytes: exactly what a
    // follower sees mid-run. The tail read stops at the last whole
    // frame and reports the consumed prefix.
    const std::string partial =
        bytes.substr(0, bytes.size() - kTsdbFooterSize - 3);
    const std::string live = path("live.gskutsdb");
    {
        std::ofstream out(live, std::ios::binary);
        out.write(partial.data(),
                  static_cast<std::streamsize>(partial.size()));
    }
    const TimeseriesData tail = readTsdbTail(live);
    EXPECT_FALSE(tail.complete);
    EXPECT_LE(tail.bytes_parsed, partial.size());
    EXPECT_GT(tail.samples.size(), 0u);
    EXPECT_LE(tail.samples.size(), full.samples.size());
    for (std::size_t i = 0; i < tail.samples.size(); ++i) {
        EXPECT_EQ(tail.samples[i].clock, full.samples[i].clock);
        EXPECT_EQ(tail.samples[i].seq, full.samples[i].seq);
    }

    // The strict reader refuses the same prefix.
    EXPECT_THROW(readTsdb(live), UserError);
}

TEST_F(TimeseriesTest, RejectsCorruptFilesNamingTheOffset)
{
    const std::string good = path("good.gskutsdb");
    writeSmallTsdb(good, "tstest.corrupt");
    const std::string bytes = slurp(good);
    ASSERT_GE(bytes.size(), kTsdbHeaderFixed + kTsdbFooterSize);

    auto expect_reject = [this](const std::string &content,
                                const std::string &needle) {
        const std::string file = path("corrupt.gskutsdb");
        {
            std::ofstream out(file, std::ios::binary | std::ios::trunc);
            out.write(content.data(),
                      static_cast<std::streamsize>(content.size()));
        }
        try {
            readTsdb(file);
            FAIL() << "expected rejection for: " << needle;
        } catch (const UserError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << "needle '" << needle << "' not in: " << e.what();
        }
    };

    expect_reject(bytes.substr(0, 20), "truncated header");

    std::string bad = bytes;
    bad[0] = 'X';
    expect_reject(bad, "bad magic at offset 0");

    bad = bytes;
    bad[8] = 9;     // Version little-endian low byte.
    expect_reject(bad, "unsupported version 9 at offset 8");

    bad = bytes;
    bad[12] = 12;   // header_size 12: below the fixed minimum.
    bad[13] = bad[14] = bad[15] = 0;
    expect_reject(bad, "bad header_size 12 at offset 12");

    bad = bytes;
    for (std::size_t i = 16; i < 24; ++i)
        bad[i] = 0;                 // sample_every 0.
    expect_reject(bad, "bad sample_every 0 at offset 16");

    bad = bytes;
    bad[24] = static_cast<char>(bad[24] | 2);   // Unknown flag bit.
    expect_reject(bad, "unknown header flags");

    const std::size_t header_size = tsdb::loadU32(bytes, 12);
    const std::size_t footer = bytes.size() - kTsdbFooterSize;

    // First frame is the baseline sample-begin: corrupting its seq
    // breaks the dense numbering before any checksum is consulted.
    bad = bytes;
    bad[header_size + 8 + 8] =
        static_cast<char>(bad[header_size + 8 + 8] ^ 0xff);
    expect_reject(bad, "sample seq");

    bad = bytes;
    bad[header_size] = 9;           // Frame kind 2 -> 9.
    expect_reject(bad, "unknown frame kind 9");

    // Flip one payload byte of the first point frame (located by
    // walking the frame tiling): structurally intact, so only the
    // deterministic-lane checksum catches it.
    {
        std::size_t off = header_size;
        std::size_t point_payload = 0;
        while (off + 8 <= footer) {
            const std::uint32_t kind = tsdb::loadU32(bytes, off);
            const std::uint32_t len = tsdb::loadU32(bytes, off + 4);
            if (kind == 3) {
                point_payload = off + 8;
                break;
            }
            off += 8 + ((static_cast<std::size_t>(len) + 7) &
                        ~std::size_t{7});
        }
        ASSERT_GT(point_payload, 0u) << "no point frame found";
        bad = bytes;
        bad[point_payload + 8] =
            static_cast<char>(bad[point_payload + 8] ^ 0x1);
        expect_reject(bad, "frames checksum mismatch at offset");

        // Point at a series id far past the defined table.
        bad = bytes;
        bad[point_payload] = static_cast<char>(0xff);
        bad[point_payload + 1] = 0;
        bad[point_payload + 2] = 0;
        bad[point_payload + 3] = 0;
        expect_reject(bad, "point references undefined series 255");
    }

    // Header tampering past the fixed fields is caught by header_fnv.
    bad = bytes;
    bad[kTsdbHeaderFixed + 2] =
        static_cast<char>(bad[kTsdbHeaderFixed + 2] ^ 0xff);
    expect_reject(bad, "header checksum mismatch at offset");

    // Footer field tampering: counts and both digests.
    bad = bytes;
    bad[footer] = static_cast<char>(bad[footer] ^ 0x1);
    expect_reject(bad, "footer frame_count");

    bad = bytes;
    bad[footer + 8] = static_cast<char>(bad[footer + 8] ^ 0x1);
    expect_reject(bad, "footer sample_count");

    bad = bytes;
    bad[footer + 16] = static_cast<char>(bad[footer + 16] ^ 0x1);
    expect_reject(bad, "frames checksum mismatch at offset");

    bad = bytes;
    bad[footer + 24] = static_cast<char>(bad[footer + 24] ^ 0x1);
    expect_reject(bad, "header checksum mismatch at offset");

    bad = bytes;
    bad[bytes.size() - 1] = 'X';
    expect_reject(bad, "bad end magic");

    expect_reject(bytes + "extra", "bad end magic");
    expect_reject(bytes.substr(0, bytes.size() - 5), "bad end magic");
    expect_reject(bytes.substr(0, header_size + 4),
                  "leave no room for the 40-byte footer");

    EXPECT_THROW(readTsdb(path("missing.gskutsdb")), UserError);
}

} // namespace
} // namespace gsku::obs
