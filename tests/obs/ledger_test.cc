/**
 * @file
 * Decision-provenance ledger: event-name registry, round-trip of every
 * event type through render + parse, fact-set semantics (sorted,
 * deduplicated), non-finite number handling, atomic file publish, and
 * emission from the real models.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <sstream>
#include <string>

#include "carbon/model.h"
#include "carbon/sku.h"
#include "gsf/tco.h"
#include "obs/ledger.h"

namespace gsku::obs {
namespace {

/** RAII ledger session so a failing assertion can't leak an enabled
 *  ledger into later tests. */
struct LedgerSession
{
    LedgerSession() { startLedger(); }
    ~LedgerSession() { stopLedger(); }
};

LedgerFile
parseRendered()
{
    std::istringstream in(renderLedger());
    return parseLedger(in);
}

TEST(LedgerTest, RegistryCoversEveryEventExactlyOnce)
{
    ASSERT_EQ(kLedgerEventCount, 14u);
    std::set<std::string> names;
    for (std::size_t i = 0; i < kLedgerEventCount; ++i) {
        names.insert(kLedgerEventNames[i]);
    }
    // Distinct wire names, and eventName() indexes the same table.
    EXPECT_EQ(names.size(), kLedgerEventCount);
    EXPECT_STREQ(eventName(LedgerEvent::CarbonPerCore),
                 "carbon.per_core");    // lint-ok: ledger-events pins the registry
    EXPECT_STREQ(eventName(LedgerEvent::MaintenanceGate),
                 "maintenance.gate");   // lint-ok: ledger-events pins the registry
    EXPECT_STREQ(eventName(LedgerEvent::CacheEntry),
                 "cache.entry");        // lint-ok: ledger-events pins the registry
    EXPECT_STREQ(eventName(LedgerEvent::SearchMove),
                 "search.move");        // lint-ok: ledger-events pins the registry
}

TEST(LedgerTest, EveryEventTypeRoundTripsThroughRenderAndParse)
{
    LedgerSession session;
    ASSERT_TRUE(ledgerEnabled());

    const LedgerEvent all[] = {
        LedgerEvent::CarbonPerCore,   LedgerEvent::CarbonComponent,
        LedgerEvent::TcoPerCore,      LedgerEvent::TcoComponent,
        LedgerEvent::AdoptionDecision, LedgerEvent::PerfSloMargin,
        LedgerEvent::SizingProbe,     LedgerEvent::SizingResult,
        LedgerEvent::AllocatorOutcome, LedgerEvent::DesignVerdict,
        LedgerEvent::EvaluatorVerdict, LedgerEvent::MaintenanceGate,
        LedgerEvent::CacheEntry,      LedgerEvent::SearchMove,
    };
    for (LedgerEvent event : all) {
        LedgerEntry(event)
            .field("sku", std::string("Test-SKU"))
            .field("count", 42)
            .field("wide", static_cast<std::int64_t>(1) << 40)
            .field("value", 0.30000000000000004)
            .field("met", true)
            .field("adopt", false);
    }

    const LedgerFile file = parseRendered();
    ASSERT_TRUE(file.ok) << file.error;
    EXPECT_EQ(file.schema, kLedgerSchema);
    ASSERT_EQ(file.records.size(), kLedgerEventCount);
    for (LedgerEvent event : all) {
        const auto records = file.of(event);
        ASSERT_EQ(records.size(), 1u) << eventName(event);
        const LedgerRecord &rec = *records.front();
        EXPECT_EQ(rec.event, eventName(event));
        EXPECT_EQ(rec.str("sku"), "Test-SKU");
        EXPECT_EQ(rec.num("count"), 42.0);
        EXPECT_EQ(rec.num("wide"),
                  static_cast<double>(static_cast<std::int64_t>(1) << 40));
        // max_digits10 precision: doubles survive the file exactly.
        EXPECT_EQ(rec.num("value"), 0.30000000000000004);
        ASSERT_EQ(rec.bools.count("met"), 1u);
        EXPECT_TRUE(rec.bools.at("met"));
        ASSERT_EQ(rec.bools.count("adopt"), 1u);
        EXPECT_FALSE(rec.bools.at("adopt"));
    }
}

TEST(LedgerTest, LedgerIsASortedDeduplicatedSetOfFacts)
{
    LedgerSession session;
    // The same decision recorded three times is one fact.
    for (int repeat = 0; repeat < 3; ++repeat) {
        LedgerEntry(LedgerEvent::SizingProbe)
            .field("trace", "t")
            .field("fits", true);
    }
    LedgerEntry(LedgerEvent::AllocatorOutcome).field("trace", "t");

    const std::string rendered = renderLedger();
    const LedgerFile file = parseRendered();
    ASSERT_TRUE(file.ok) << file.error;
    EXPECT_EQ(file.records.size(), 2u);

    // Event lines are sorted lexicographically.
    std::istringstream in(rendered);
    std::string header;
    std::string prev;
    std::string line;
    std::getline(in, header);
    while (std::getline(in, line)) {
        EXPECT_LT(prev, line);
        prev = line;
    }
}

TEST(LedgerTest, NonFiniteNumbersBecomeExplicitStrings)
{
    LedgerSession session;
    const double inf = std::numeric_limits<double>::infinity();
    LedgerEntry(LedgerEvent::PerfSloMargin)
        .field("app", "saturated")
        .field("achieved", inf)
        .field("margin", -inf)
        .field("noise", std::nan(""));

    const LedgerFile file = parseRendered();
    ASSERT_TRUE(file.ok) << file.error;
    ASSERT_EQ(file.records.size(), 1u);
    const LedgerRecord &rec = file.records.front();
    // Rendered as quoted strings so the file stays valid JSONL.
    EXPECT_EQ(rec.str("achieved"), "inf");
    EXPECT_EQ(rec.str("margin"), "-inf");
    EXPECT_EQ(rec.str("noise"), "nan");
    EXPECT_FALSE(rec.hasNum("achieved"));
}

TEST(LedgerTest, DisabledLedgerRecordsNothing)
{
    stopLedger();
    ASSERT_FALSE(ledgerEnabled());
    LedgerEntry(LedgerEvent::DesignVerdict).field("candidate", "x");
    startLedger();
    const LedgerFile file = parseRendered();
    stopLedger();
    ASSERT_TRUE(file.ok) << file.error;
    EXPECT_TRUE(file.records.empty());
}

TEST(LedgerTest, WriteAndReadBackThroughAFile)
{
    LedgerSession session;
    LedgerEntry(LedgerEvent::DesignVerdict)
        .field("candidate", "B/12x64/8x32cxl/2+12ssd")
        .field("feasible", true)
        .field("constraint", "none");

    const std::string path = "ledger_test_roundtrip.jsonl";
    ASSERT_TRUE(writeLedger(path));
    const LedgerFile file = readLedgerFile(path);
    std::remove(path.c_str());

    ASSERT_TRUE(file.ok) << file.error;
    ASSERT_EQ(file.records.size(), 1u);
    EXPECT_EQ(file.records.front().str("candidate"),
              "B/12x64/8x32cxl/2+12ssd");
    EXPECT_EQ(file.records.front().str("constraint"), "none");
}

TEST(LedgerTest, ParserRejectsBadHeadersAndBadLines)
{
    {
        std::istringstream in("{\"schema\": \"something-else\"}\n");
        const LedgerFile file = parseLedger(in);
        EXPECT_FALSE(file.ok);
        EXPECT_NE(file.error.find("schema"), std::string::npos);
    }
    {
        std::istringstream in("");
        EXPECT_FALSE(parseLedger(in).ok);
    }
    {
        std::istringstream in(
            "{\"schema\": \"gsku-ledger-v1\", \"events\": 1}\n"
            "{\"sku\": \"no-event-field\"}\n");
        const LedgerFile file = parseLedger(in);
        EXPECT_FALSE(file.ok);
        EXPECT_NE(file.error.find("event"), std::string::npos);
    }
    {
        std::istringstream in(
            "{\"schema\": \"gsku-ledger-v1\", \"events\": 1}\n"
            "not json\n");
        EXPECT_FALSE(parseLedger(in).ok);
    }
}

TEST(LedgerTest, CarbonModelLeavesSumToTheRecordedHeadline)
{
    LedgerSession session;
    const carbon::CarbonModel model;
    const carbon::ServerSku sku = carbon::StandardSkus::greenFull();
    const CarbonIntensity ci = CarbonIntensity::kgPerKwh(0.1);
    const carbon::PerCoreEmissions per_core = model.perCore(sku, ci);
    const gsf::TcoModel tco;
    const gsf::PerCoreCost cost = tco.perCore(sku);

    const LedgerFile file = parseRendered();
    ASSERT_TRUE(file.ok) << file.error;

    const auto headlines = file.of(LedgerEvent::CarbonPerCore);
    ASSERT_EQ(headlines.size(), 1u);
    EXPECT_EQ(headlines.front()->str("sku"), sku.name);
    EXPECT_EQ(headlines.front()->num("total_kg"),
              per_core.total().asKg());

    double op_sum = 0.0;
    double emb_sum = 0.0;
    for (const LedgerRecord *leaf : file.of(LedgerEvent::CarbonComponent)) {
        op_sum += leaf->num("operational_kg");
        emb_sum += leaf->num("embodied_kg");
    }
    // The acceptance bound for `gsku_explain --why`: leaves reproduce
    // the evaluator-reported per-core carbon to 1e-9 kg.
    EXPECT_NEAR(op_sum, per_core.operational.asKg(), 1e-9);
    EXPECT_NEAR(emb_sum, per_core.embodied.asKg(), 1e-9);

    double capex_sum = 0.0;
    double opex_sum = 0.0;
    for (const LedgerRecord *leaf : file.of(LedgerEvent::TcoComponent)) {
        capex_sum += leaf->num("capex_usd");
        opex_sum += leaf->num("opex_usd");
    }
    EXPECT_NEAR(capex_sum, cost.capex.asUsd(), 1e-9);
    EXPECT_NEAR(opex_sum, cost.opex.asUsd(), 1e-9);
}

} // namespace
} // namespace gsku::obs
