/**
 * @file
 * Tests of worker heartbeats and stall detection (obs/heartbeat.h):
 * the beat lifecycle around task bodies, parallel-region depth for
 * the calling thread, slot clamping above kMaxHeartbeatWorkers, and
 * stall events counted once per (worker, task).
 */
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/heartbeat.h"

namespace gsku::obs {
namespace {

class HeartbeatTest : public ::testing::Test
{
  protected:
    void SetUp() override { resetHeartbeats(); }
    void TearDown() override { resetHeartbeats(); }
};

const WorkerBeat *
findWorker(const std::vector<WorkerBeat> &beats, int worker)
{
    for (const WorkerBeat &b : beats)
        if (b.worker == worker)
            return &b;
    return nullptr;
}

TEST_F(HeartbeatTest, BeatLifecycleTracksTasks)
{
    EXPECT_FALSE(inParallelRegion());
    EXPECT_TRUE(heartbeatSnapshot().empty());

    beatTaskStart(2, 7);
    EXPECT_TRUE(inParallelRegion());
    {
        const auto beats = heartbeatSnapshot();
        const WorkerBeat *w = findWorker(beats, 2);
        ASSERT_NE(w, nullptr);
        EXPECT_TRUE(w->busy);
        EXPECT_EQ(w->task_index, 7u);
        EXPECT_EQ(w->tasks_started, 1u);
        EXPECT_EQ(w->tasks_completed, 0u);
    }

    beatTaskEnd(2);
    EXPECT_FALSE(inParallelRegion());
    {
        const auto beats = heartbeatSnapshot();
        const WorkerBeat *w = findWorker(beats, 2);
        ASSERT_NE(w, nullptr);
        EXPECT_FALSE(w->busy);
        EXPECT_EQ(w->tasks_completed, 1u);
        EXPECT_EQ(w->busy_seconds, 0.0);
    }
}

TEST_F(HeartbeatTest, RegionDepthNests)
{
    beatTaskStart(0, 1);
    beatTaskStart(0, 2);    // Nested region on the same thread.
    EXPECT_TRUE(inParallelRegion());
    beatTaskEnd(0);
    EXPECT_TRUE(inParallelRegion());
    beatTaskEnd(0);
    EXPECT_FALSE(inParallelRegion());
}

TEST_F(HeartbeatTest, WorkersAboveTableShareTheLastSlot)
{
    beatTaskStart(kMaxHeartbeatWorkers + 5, 1);
    beatTaskEnd(kMaxHeartbeatWorkers + 5);
    const auto beats = heartbeatSnapshot();
    const WorkerBeat *w = findWorker(beats, kMaxHeartbeatWorkers - 1);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->tasks_completed, 1u);
}

TEST_F(HeartbeatTest, StallCountedOncePerTask)
{
    EXPECT_EQ(stallEventsTotal(), 0u);
    EXPECT_EQ(stallCheck(1e-9), 0u);    // Nobody busy: no stalls.

    beatTaskStart(1, 3);
    // With a nano threshold the busy worker reads as stalled as soon
    // as any wall time has elapsed on the task.
    std::size_t stalled = 0;
    for (int i = 0; i < 1000 && stalled == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        stalled = stallCheck(1e-9);
    }
    EXPECT_EQ(stalled, 1u);
    EXPECT_EQ(stallEventsTotal(), 1u);

    // Still stalled on the same task: reported, but not re-counted.
    EXPECT_EQ(stallCheck(1e-9), 1u);
    EXPECT_EQ(stallEventsTotal(), 1u);

    // A generous threshold sees no stall at all.
    EXPECT_EQ(stallCheck(3600.0), 0u);

    beatTaskEnd(1);
    EXPECT_EQ(stallCheck(1e-9), 0u);
    EXPECT_EQ(stallEventsTotal(), 1u);

    // The next task on the same worker is a fresh (worker, task) pair.
    beatTaskStart(1, 4);
    stalled = 0;
    for (int i = 0; i < 1000 && stalled == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        stalled = stallCheck(1e-9);
    }
    EXPECT_EQ(stalled, 1u);
    EXPECT_EQ(stallEventsTotal(), 2u);
    beatTaskEnd(1);
}

} // namespace
} // namespace gsku::obs
