/**
 * @file
 * Crash-injection helper for flightrec_test: arms the flight recorder
 * at the path in argv[1], seeds the ring with a couple of notes, then
 * either crashes (argv[2] == "abort", exercising the async-signal-safe
 * handler path end to end) or dumps on demand (argv[2] == "dump").
 * The parent test asserts the recovered artifact is well formed.
 */
#include <cstdlib>
#include <string>

#include "obs/flightrec.h"

int
main(int argc, char **argv)
{
    if (argc < 3)
        return 2;
    gsku::obs::startFlightRecorder(argv[1]);
    gsku::obs::flightRecordProgram("crash_helper");
    gsku::obs::flightRecordNote("test", "first-note");
    gsku::obs::flightRecordNote("test", "before-crash");
    gsku::obs::flightRecordMetricsText("counter helper.runs = 1");

    const std::string mode = argv[2];
    if (mode == "abort")
        std::abort();   // SIGABRT -> handler dumps, then re-raises.
    if (mode == "dump")
        return gsku::obs::dumpFlightRecorder("explicit") ? 0 : 1;
    return 2;
}
