/**
 * @file
 * Metrics registry: exact concurrent counting through the worker pool,
 * snapshot/reset isolation, histogram bucketing, and exporter output.
 */
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "obs/metrics.h"

namespace gsku::obs {
namespace {

TEST(MetricsTest, ConcurrentIncrementsFromParallelForSumExactly)
{
    Counter &c = metrics().counter("test.concurrent_increments");
    c.reset();

    const int original = ThreadPool::global().threads();
    ThreadPool::resetGlobal(4);
    const std::size_t tasks = 1000;
    const std::uint64_t per_task = 37;
    parallelFor(tasks, [&](std::size_t) {
        for (std::uint64_t k = 0; k < per_task; ++k) {
            c.inc();
        }
    });
    ThreadPool::resetGlobal(original);

    // Counters are summed, never sampled: the relaxed adds must land
    // exactly, whatever the pool's schedule was.
    EXPECT_EQ(c.value(), tasks * per_task);
}

TEST(MetricsTest, RegistryReturnsStableReferences)
{
    Counter &a = metrics().counter("test.stable_ref");
    Counter &b = metrics().counter("test.stable_ref");
    EXPECT_EQ(&a, &b);

    Gauge &g1 = metrics().gauge("test.stable_gauge");
    Gauge &g2 = metrics().gauge("test.stable_gauge");
    EXPECT_EQ(&g1, &g2);
}

TEST(MetricsTest, SnapshotAndResetIsolateRuns)
{
    Counter &c = metrics().counter("test.isolation_counter");
    Gauge &g = metrics().gauge("test.isolation_gauge");
    metrics().reset();

    c.inc(5);
    g.set(2.5);
    const MetricsSnapshot before = metrics().snapshot();
    EXPECT_EQ(before.counter("test.isolation_counter"), 5u);
    EXPECT_DOUBLE_EQ(before.gauges.at("test.isolation_gauge"), 2.5);

    metrics().reset();
    const MetricsSnapshot after = metrics().snapshot();
    // Names stay registered; values are zeroed.
    EXPECT_EQ(after.counter("test.isolation_counter"), 0u);
    EXPECT_DOUBLE_EQ(after.gauges.at("test.isolation_gauge"), 0.0);

    // A snapshot is a copy: later increments don't change it.
    c.inc(3);
    EXPECT_EQ(after.counter("test.isolation_counter"), 0u);
    EXPECT_EQ(before.counter("test.isolation_counter"), 5u);
}

TEST(MetricsTest, UnknownCounterReadsAsZero)
{
    const MetricsSnapshot snap = metrics().snapshot();
    EXPECT_EQ(snap.counter("test.never_registered"), 0u);
}

TEST(MetricsTest, HistogramBucketsByUpperBound)
{
    Histogram &h =
        metrics().histogram("test.histogram", {1.0, 2.0, 4.0});
    h.reset();

    h.observe(0.5);     // <= 1 -> bucket 0.
    h.observe(1.0);     // <= 1 -> bucket 0 (bounds are inclusive).
    h.observe(1.5);     // <= 2 -> bucket 1.
    h.observe(4.0);     // <= 4 -> bucket 2.
    h.observe(100.0);   // overflow bucket.

    const std::vector<std::uint64_t> buckets = h.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_EQ(buckets[0], 2u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 1u);
    EXPECT_EQ(buckets[3], 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(MetricsTest, HistogramCountsExactlyUnderConcurrency)
{
    Histogram &h =
        metrics().histogram("test.histogram_concurrent", {10.0, 100.0});
    h.reset();

    const int original = ThreadPool::global().threads();
    ThreadPool::resetGlobal(4);
    const std::size_t tasks = 500;
    parallelFor(tasks,
                [&](std::size_t i) { h.observe(static_cast<double>(i)); });
    ThreadPool::resetGlobal(original);

    EXPECT_EQ(h.count(), tasks);
    const std::vector<std::uint64_t> buckets = h.bucketCounts();
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_EQ(buckets[0] + buckets[1] + buckets[2], tasks);
    EXPECT_EQ(buckets[0], 11u);     // 0..10 inclusive.
    EXPECT_EQ(buckets[1], 90u);     // 11..100.
    EXPECT_EQ(buckets[2], 399u);    // 101..499.
}

TEST(MetricsTest, PercentilesPinLinearInterpolation)
{
    // Hand-built snapshot so every interpolation case is pinned exactly.
    MetricsSnapshot::HistogramValue h;
    h.bounds = {10.0, 20.0, 40.0};
    h.buckets = {5, 3, 2, 0};
    h.count = 10;

    // p50: rank 5 lands exactly on the first bucket's cumulative count;
    // interpolating from the Prometheus-style lower bound of 0 gives the
    // bucket's upper bound.
    EXPECT_DOUBLE_EQ(h.percentile(50), 10.0);
    // p95: rank 9.5 is 1.5 observations into the 2-count (20, 40]
    // bucket: 20 + 20 * 0.75.
    EXPECT_DOUBLE_EQ(h.percentile(95), 35.0);
    // p99: rank 9.9 -> 20 + 20 * 0.95.
    EXPECT_DOUBLE_EQ(h.percentile(99), 39.0);
    // p0 clamps to the bottom of the first occupied bucket's range.
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 40.0);
}

TEST(MetricsTest, PercentileEdgeCases)
{
    // First bucket interpolates from 0, not from -inf.
    MetricsSnapshot::HistogramValue first;
    first.bounds = {10.0};
    first.buckets = {4, 0};
    first.count = 4;
    EXPECT_DOUBLE_EQ(first.percentile(50), 5.0);

    // A rank in the overflow bucket reports the last finite bound: the
    // histogram cannot see beyond it.
    MetricsSnapshot::HistogramValue overflow;
    overflow.bounds = {10.0, 20.0, 40.0};
    overflow.buckets = {0, 0, 0, 5};
    overflow.count = 5;
    EXPECT_DOUBLE_EQ(overflow.percentile(50), 40.0);

    // Empty histogram reads as zero.
    MetricsSnapshot::HistogramValue empty;
    empty.bounds = {10.0};
    empty.buckets = {0, 0};
    EXPECT_DOUBLE_EQ(empty.percentile(99), 0.0);
}

TEST(MetricsTest, PercentileOverflowOnlyIsBoundedAtEveryPercentile)
{
    // Regression: the overflow bucket has no upper edge, so every
    // percentile must report the largest finite bound — never a value
    // interpolated past it, and never one below the occupied range.
    MetricsSnapshot::HistogramValue h;
    h.bounds = {10.0, 20.0, 40.0};
    h.buckets = {0, 0, 0, 7};
    h.count = 7;
    for (double p : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0}) {
        EXPECT_DOUBLE_EQ(h.percentile(p), 40.0) << "p" << p;
    }
}

TEST(MetricsTest, PercentileSingleBucketPins)
{
    // One finite bucket holding everything: interpolation runs from 0
    // to the bound, and the extremes clamp to the bucket edges.
    MetricsSnapshot::HistogramValue h;
    h.bounds = {8.0};
    h.buckets = {4, 0};
    h.count = 4;
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(25), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(75), 6.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 8.0);
}

TEST(MetricsTest, PercentileRankOnBucketBoundaryReturnsTheBound)
{
    // Regression: a rank landing exactly on a bucket's cumulative
    // count is the bucket's upper boundary itself — for interior
    // buckets too, not just the first.
    MetricsSnapshot::HistogramValue h;
    h.bounds = {1.0, 2.0, 3.0};
    h.buckets = {1, 1, 2, 0};
    h.count = 4;
    EXPECT_DOUBLE_EQ(h.percentile(25), 1.0);    // Rank 1 = bucket 0 top.
    EXPECT_DOUBLE_EQ(h.percentile(50), 2.0);    // Rank 2 = bucket 1 top.
    EXPECT_DOUBLE_EQ(h.percentile(100), 3.0);   // Rank 4 = bucket 2 top.
}

TEST(MetricsTest, PercentileNegativeFirstBoundStaysInsideTheBucket)
{
    // Regression: with a negative first bound, interpolating down from
    // a lower edge of 0 walked past the bucket's own upper bound (p50
    // of four samples below -10 came out as -5, above the bound).
    MetricsSnapshot::HistogramValue h;
    h.bounds = {-10.0, 10.0};
    h.buckets = {4, 0, 0};
    h.count = 4;
    const double p50 = h.percentile(50);
    EXPECT_LE(p50, -10.0);
    EXPECT_DOUBLE_EQ(p50, -10.0);
    EXPECT_DOUBLE_EQ(h.percentile(25), -10.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), -10.0);
}

TEST(MetricsTest, PercentilesFlowThroughLiveHistogramsAndExporters)
{
    Histogram &h =
        metrics().histogram("test.percentile_export", {1.0, 2.0, 4.0});
    h.reset();
    for (int i = 0; i < 8; ++i) {
        h.observe(0.5);     // All in the first bucket.
    }
    const MetricsSnapshot snap = metrics().snapshot();
    const auto &value = snap.histograms.at("test.percentile_export");
    EXPECT_DOUBLE_EQ(value.percentile(50), 0.5);

    EXPECT_NE(snap.toText().find("p95="), std::string::npos);
    EXPECT_NE(snap.toJson().find("\"p99\":"), std::string::npos);
}

TEST(MetricsTest, ExportersIncludeRegisteredMetrics)
{
    metrics().counter("test.export_counter").inc(7);
    metrics().gauge("test.export_gauge").set(1.5);

    const MetricsSnapshot snap = metrics().snapshot();
    const std::string text = snap.toText();
    EXPECT_NE(text.find("test.export_counter"), std::string::npos);
    EXPECT_NE(text.find("test.export_gauge"), std::string::npos);

    const std::string json = snap.toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"test.export_counter\": 7"),
              std::string::npos);
}

} // namespace
} // namespace gsku::obs
