/**
 * @file
 * The gsku_explain engine: golden --why output on a hand-built ledger,
 * the 1e-9 leaf-sum re-verification, term-by-term comparison with
 * dominant-term attribution, and ledger diffing (identical runs diff to
 * zero changes; a moved input names the fields that moved).
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "carbon/model.h"
#include "carbon/sku.h"
#include "obs/explain.h"
#include "obs/ledger.h"

namespace gsku::obs {
namespace {

LedgerFile
parse(const std::string &text)
{
    std::istringstream in(text);
    return parseLedger(in);
}

/** A minimal two-component ledger whose leaves sum exactly. */
const char *const kTinyLedger =
    "{\"schema\": \"gsku-ledger-v1\", \"events\": 3}\n"
    "{\"event\": \"carbon.per_core\", \"sku\": \"Tiny\", "
    "\"ci_kg_per_kwh\": 0.1, \"operational_kg\": 30, "
    "\"embodied_kg\": 10, \"total_kg\": 40}\n"
    "{\"event\": \"carbon.component\", \"sku\": \"Tiny\", "
    "\"component\": \"CPU\", \"ci_kg_per_kwh\": 0.1, "
    "\"operational_kg\": 25, \"embodied_kg\": 5}\n"
    "{\"event\": \"carbon.component\", \"sku\": \"Tiny\", "
    "\"component\": \"DRAM\", \"ci_kg_per_kwh\": 0.1, "
    "\"operational_kg\": 5, \"embodied_kg\": 5}\n";

TEST(ExplainTest, WhyRendersTheGoldenAttributionTree)
{
    const LedgerFile ledger = parse(kTinyLedger);
    ASSERT_TRUE(ledger.ok) << ledger.error;

    const ExplainResult why = explainWhy(ledger, "Tiny");
    ASSERT_TRUE(why.ok) << why.error;
    const std::string golden =
        "== why Tiny ==\n"
        "\n"
        "carbon attribution (per core, DC-amortized)\n"
        "  at CI 0.100 kg/kWh: total 40.000 kg = operational 30.000 "
        "+ embodied 10.000\n"
        "    component                       total kg       oper kg"
        "        emb kg    share\n"
        "    CPU                              30.0000       25.0000"
        "        5.0000    75.0%\n"
        "    DRAM                             10.0000        5.0000"
        "        5.0000    25.0%\n"
        "    leaf-sum check: |sum - headline| = 0 kg "
        "(tolerance 1e-09) OK\n";
    EXPECT_EQ(why.text, golden);
}

TEST(ExplainTest, WhyFailsWhenLeavesDoNotReproduceTheHeadline)
{
    // Same ledger but the CPU leaf under-reports by 1 kg.
    std::string broken = kTinyLedger;
    const std::string needle = "\"operational_kg\": 25";
    broken.replace(broken.find(needle), needle.size(),
                   "\"operational_kg\": 24");
    const LedgerFile ledger = parse(broken);
    ASSERT_TRUE(ledger.ok) << ledger.error;

    const ExplainResult why = explainWhy(ledger, "Tiny");
    EXPECT_FALSE(why.ok);
    EXPECT_NE(why.error.find("residual"), std::string::npos);
    // The report is still rendered, with the check marked FAIL.
    EXPECT_NE(why.text.find("FAIL"), std::string::npos);
}

TEST(ExplainTest, WhyReportsUnknownSkus)
{
    const LedgerFile ledger = parse(kTinyLedger);
    const ExplainResult why = explainWhy(ledger, "No-Such-SKU");
    EXPECT_FALSE(why.ok);
    EXPECT_NE(why.error.find("No-Such-SKU"), std::string::npos);
}

TEST(ExplainTest, WhyVerifiesTheRealCarbonModelToTolerance)
{
    startLedger();
    const carbon::CarbonModel model;
    model.perCore(carbon::StandardSkus::greenFull(),
                  CarbonIntensity::kgPerKwh(0.1));
    const LedgerFile ledger = parse(renderLedger());
    stopLedger();
    ASSERT_TRUE(ledger.ok) << ledger.error;

    const ExplainResult why = explainWhy(ledger, "GreenSKU-Full");
    ASSERT_TRUE(why.ok) << why.error;
    EXPECT_NE(why.text.find("OK"), std::string::npos);
    EXPECT_EQ(why.text.find("FAIL"), std::string::npos);
}

TEST(ExplainTest, CompareFindsTheDominantTerm)
{
    const std::string two_skus =
        std::string(kTinyLedger) +
        "{\"event\": \"carbon.per_core\", \"sku\": \"Tiny2\", "
        "\"ci_kg_per_kwh\": 0.1, \"operational_kg\": 20, "
        "\"embodied_kg\": 8, \"total_kg\": 28}\n"
        "{\"event\": \"carbon.component\", \"sku\": \"Tiny2\", "
        "\"component\": \"CPU\", \"ci_kg_per_kwh\": 0.1, "
        "\"operational_kg\": 18, \"embodied_kg\": 4}\n"
        "{\"event\": \"carbon.component\", \"sku\": \"Tiny2\", "
        "\"component\": \"DRAM\", \"ci_kg_per_kwh\": 0.1, "
        "\"operational_kg\": 2, \"embodied_kg\": 4}\n";
    const LedgerFile ledger = parse(two_skus);
    ASSERT_TRUE(ledger.ok) << ledger.error;

    const ExplainResult cmp = compareSkus(ledger, "Tiny", "Tiny2");
    ASSERT_TRUE(cmp.ok) << cmp.error;
    // CPU moves 30 -> 22 (-8), DRAM 10 -> 6 (-4): CPU dominates.
    EXPECT_NE(cmp.text.find("dominant term: CPU"), std::string::npos);
    EXPECT_NE(cmp.text.find("-8.0000"), std::string::npos);

    const ExplainResult missing = compareSkus(ledger, "Tiny", "Absent");
    EXPECT_FALSE(missing.ok);
}

TEST(ExplainTest, IdenticalLedgersDiffToZeroChanges)
{
    const LedgerFile a = parse(kTinyLedger);
    const LedgerFile b = parse(kTinyLedger);
    const DiffResult diff = diffLedgers(a, b);
    ASSERT_TRUE(diff.ok) << diff.error;
    EXPECT_EQ(diff.changes, 0);
    EXPECT_NE(diff.text.find("no differences"), std::string::npos);
}

TEST(ExplainTest, DiffNamesTheFieldsThatMovedAVerdict)
{
    std::string moved = kTinyLedger;
    const std::string needle = "\"embodied_kg\": 10, \"total_kg\": 40";
    moved.replace(moved.find(needle), needle.size(),
                  "\"embodied_kg\": 12, \"total_kg\": 42");
    const LedgerFile a = parse(kTinyLedger);
    const LedgerFile b = parse(moved);
    const DiffResult diff = diffLedgers(a, b);
    ASSERT_TRUE(diff.ok) << diff.error;
    EXPECT_EQ(diff.changes, 1);
    // The changed fact is identified and the moved inputs are named.
    EXPECT_NE(diff.text.find("carbon.per_core sku=Tiny"),
              std::string::npos);
    EXPECT_NE(diff.text.find("embodied_kg: 10 -> 12"),
              std::string::npos);
    EXPECT_NE(diff.text.find("total_kg: 40 -> 42"), std::string::npos);
}

TEST(ExplainTest, DiffReportsFactsOnlyOneRunMade)
{
    const std::string extra =
        std::string(kTinyLedger) +
        "{\"event\": \"design.verdict\", \"candidate\": \"B/6x64\", "
        "\"feasible\": false, \"constraint\": \"min_storage_tb\"}\n";
    const DiffResult diff = diffLedgers(parse(kTinyLedger), parse(extra));
    ASSERT_TRUE(diff.ok) << diff.error;
    EXPECT_EQ(diff.changes, 1);
    EXPECT_NE(diff.text.find("only in B"), std::string::npos);
    EXPECT_NE(diff.text.find("design.verdict"), // lint-ok: ledger-events rendered output
              std::string::npos);
}

} // namespace
} // namespace gsku::obs
