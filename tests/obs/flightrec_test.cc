/**
 * @file
 * Tests of the crash flight recorder (obs/flightrec.h). The crash path
 * cannot run in-process — the handler re-raises and would kill the
 * test runner — so a helper binary (flightrec_crash_helper, path baked
 * in via GSKU_CRASH_HELPER) SIGABRTs under an armed recorder and this
 * test asserts the recovered `gsku-flightrec-v1` artifact is well
 * formed: schema first line, program/reason headers, the seeded ring
 * notes, and the terminating end marker (the atomic-rename contract
 * means a dump is never observed half-written). On-demand dumps are
 * exercised both through the helper and in-process.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flightrec.h"

namespace gsku::obs {
namespace {

namespace fs = std::filesystem;

class FlightRecTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("gsku_flightrec_test_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string &name) const
    {
        return (fs::path(dir_) / name).string();
    }

    std::string dir_;
};

std::string
slurp(const std::string &file)
{
    std::ifstream in(file, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Run the crash helper; returns std::system's status. */
int
runHelper(const std::string &dump, const std::string &mode)
{
    const std::string cmd = std::string(GSKU_CRASH_HELPER) + " '" +
                            dump + "' " + mode + " 2>/dev/null";
    return std::system(cmd.c_str()); // NOLINT(concurrency-mt-unsafe)
}

void
expectWellFormedDump(const std::string &text, const std::string &reason)
{
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.rfind(std::string(kFlightSchema) + "\n", 0), 0u)
        << "dump must open with the schema line";
    EXPECT_NE(text.find("program crash_helper\n"), std::string::npos);
    EXPECT_NE(text.find("reason " + reason + "\n"), std::string::npos);
    EXPECT_NE(text.find("ring_begin "), std::string::npos);
    EXPECT_NE(text.find("first-note"), std::string::npos);
    EXPECT_NE(text.find("before-crash"), std::string::npos);
    EXPECT_NE(text.find("ring_end\n"), std::string::npos);
    EXPECT_NE(text.find("metrics_begin\n"), std::string::npos);
    EXPECT_NE(text.find("counter helper.runs = 1"), std::string::npos);
    // The end marker proves the dump ran to completion before the
    // atomic rename.
    const std::string end = std::string("end ") + kFlightSchema + "\n";
    EXPECT_EQ(text.rfind(end), text.size() - end.size());
}

TEST_F(FlightRecTest, CrashRecoversAWellFormedDump)
{
    const std::string dump = path("crash.flight");
    const int status = runHelper(dump, "abort");
    // The handler re-raises with SA_RESETHAND, so the helper still
    // dies from SIGABRT: crash status is preserved, not swallowed.
    EXPECT_NE(status, 0);
    ASSERT_TRUE(fs::exists(dump))
        << "crash handler left no post-mortem artifact";
    // No half-written temp file survives the atomic rename.
    EXPECT_FALSE(fs::exists(dump + ".tmp"));
    expectWellFormedDump(slurp(dump), "SIGABRT");
}

TEST_F(FlightRecTest, OnDemandDumpMatchesCrashShape)
{
    const std::string dump = path("demand.flight");
    const int status = runHelper(dump, "dump");
    EXPECT_EQ(status, 0);
    ASSERT_TRUE(fs::exists(dump));
    expectWellFormedDump(slurp(dump), "explicit");
}

TEST_F(FlightRecTest, InProcessRecorderDumpsRepeatedly)
{
    const std::string dump = path("local.flight");
    startFlightRecorder(dump);
    EXPECT_TRUE(flightRecorderEnabled());
    const std::uint64_t before = flightRecordCount();
    flightRecordNote("test", "in-process-note");
    EXPECT_EQ(flightRecordCount(), before + 1);

    ASSERT_TRUE(dumpFlightRecorder("unit-test"));
    const std::string first = slurp(dump);
    EXPECT_EQ(first.rfind(std::string(kFlightSchema) + "\n", 0), 0u);
    EXPECT_NE(first.find("reason unit-test\n"), std::string::npos);
    EXPECT_NE(first.find("in-process-note"), std::string::npos);

    // Unlike the crash path, on-demand dumps may repeat; each rewrite
    // reflects the ring at that moment.
    flightRecordNote("test", "second-wave");
    ASSERT_TRUE(dumpFlightRecorder("unit-test"));
    EXPECT_NE(slurp(dump).find("second-wave"), std::string::npos);
}

} // namespace
} // namespace gsku::obs
