/**
 * @file
 * Property tests of the carbon model, parameterized over every standard
 * SKU and a carbon-intensity grid: invariants that must hold for any
 * server design, not just the paper's rows.
 */
#include <gtest/gtest.h>

#include <string>

#include "carbon/model.h"
#include "carbon/sku.h"

namespace gsku::carbon {
namespace {

std::vector<ServerSku>
allSkus()
{
    auto skus = StandardSkus::tableFourRows();
    skus.push_back(StandardSkus::gen1());
    skus.push_back(StandardSkus::gen2());
    skus.push_back(StandardSkus::paperExampleCxl());
    return skus;
}

class SkuPropertyTest : public ::testing::TestWithParam<ServerSku>
{
  protected:
    CarbonModel model_;
};

TEST_P(SkuPropertyTest, PowerAndEmbodiedArePositive)
{
    const ServerSku &sku = GetParam();
    EXPECT_GT(model_.serverPower(sku).asWatts(), 0.0);
    EXPECT_GT(model_.serverEmbodied(sku).asKg(), 0.0);
}

TEST_P(SkuPropertyTest, DeratedPowerBelowTdpSum)
{
    const ServerSku &sku = GetParam();
    double tdp_sum = 0.0;
    for (const auto &slot : sku.slots) {
        tdp_sum += slotTdp(slot).asWatts();
    }
    // Even with the CPU VR loss, 0.44 derating keeps P_s below the
    // nameplate sum (a server never averages above its TDP, §V).
    EXPECT_LT(model_.serverPower(sku).asWatts(), tdp_sum);
}

TEST_P(SkuPropertyTest, RackFitWithinPhysicalLimits)
{
    const ServerSku &sku = GetParam();
    const RackFootprint fp = model_.rackFootprint(sku);
    EXPECT_GE(fp.servers_per_rack, 1);
    EXPECT_LE(fp.servers_per_rack * sku.form_factor_u,
              model_.params().rack_space_u);
    EXPECT_LE(fp.rack_power.asWatts(),
              model_.params().rack_power_capacity.asWatts());
    EXPECT_EQ(fp.cores_per_rack, fp.servers_per_rack * sku.cores);
}

TEST_P(SkuPropertyTest, PerCoreTotalsDecomposeExactly)
{
    const ServerSku &sku = GetParam();
    const PerCoreEmissions pc = model_.perCore(sku);
    EXPECT_NEAR(pc.total().asKg(),
                pc.operational.asKg() + pc.embodied.asKg(), 1e-12);
    EXPECT_GT(pc.operational.asKg(), 0.0);
    EXPECT_GT(pc.embodied.asKg(), 0.0);
}

TEST_P(SkuPropertyTest, OperationalLinearInIntensity)
{
    const ServerSku &sku = GetParam();
    const double base =
        model_.perCore(sku, CarbonIntensity::kgPerKwh(0.1))
            .operational.asKg();
    for (double ci : {0.0, 0.05, 0.2, 0.5, 1.0}) {
        const PerCoreEmissions pc =
            model_.perCore(sku, CarbonIntensity::kgPerKwh(ci));
        EXPECT_NEAR(pc.operational.asKg(), base * ci / 0.1, 1e-9)
            << "CI " << ci;
    }
}

TEST_P(SkuPropertyTest, EmbodiedIndependentOfIntensity)
{
    const ServerSku &sku = GetParam();
    const double at_zero =
        model_.perCore(sku, CarbonIntensity::kgPerKwh(0.0)).embodied.asKg();
    const double at_high =
        model_.perCore(sku, CarbonIntensity::kgPerKwh(0.9)).embodied.asKg();
    EXPECT_DOUBLE_EQ(at_zero, at_high);
}

TEST_P(SkuPropertyTest, ReusedComponentsCarryNoEmbodiedCarbon)
{
    const ServerSku &sku = GetParam();
    for (const auto &slot : sku.slots) {
        if (slot.component.reused) {
            EXPECT_DOUBLE_EQ(slot.component.embodied.asKg(), 0.0)
                << slot.component.name;
        }
    }
}

TEST_P(SkuPropertyTest, HigherDerateRaisesPower)
{
    const ServerSku &sku = GetParam();
    ModelParams hot;
    hot.derate = 0.9;
    const CarbonModel hot_model(hot);
    EXPECT_GT(hot_model.serverPower(sku).asWatts(),
              model_.serverPower(sku).asWatts());
}

TEST_P(SkuPropertyTest, PueScalesOperationalOnly)
{
    const ServerSku &sku = GetParam();
    ModelParams high_pue;
    high_pue.pue = 1.6;
    const CarbonModel high(high_pue);
    const PerCoreEmissions base = model_.perCore(sku);
    const PerCoreEmissions scaled = high.perCore(sku);
    EXPECT_NEAR(scaled.operational.asKg(),
                base.operational.asKg() * 1.6 / 1.25, 1e-9);
    EXPECT_DOUBLE_EQ(scaled.embodied.asKg(), base.embodied.asKg());
}

INSTANTIATE_TEST_SUITE_P(
    AllSkus, SkuPropertyTest, ::testing::ValuesIn(allSkus()),
    [](const auto &info) {
        std::string name = info.param.name;
        std::string out;
        for (char c : name) {
            if (std::isalnum(static_cast<unsigned char>(c))) {
                out += c;
            }
        }
        return out;
    });

class IntensityGridTest : public ::testing::TestWithParam<double>
{
  protected:
    CarbonModel model_;
};

TEST_P(IntensityGridTest, GreenSkusNeverWorseOnEmbodied)
{
    // At any CI, each reuse step strictly reduces per-core embodied
    // emissions (embodied does not depend on CI, but the invariant is
    // checked through the public per-CI API).
    const CarbonIntensity ci = CarbonIntensity::kgPerKwh(GetParam());
    const double eff =
        model_.perCore(StandardSkus::greenEfficient(), ci).embodied.asKg();
    const double cxl =
        model_.perCore(StandardSkus::greenCxl(), ci).embodied.asKg();
    const double full =
        model_.perCore(StandardSkus::greenFull(), ci).embodied.asKg();
    EXPECT_LT(cxl, eff);
    EXPECT_LT(full, cxl);
}

TEST_P(IntensityGridTest, FullBeatsBaselineAcrossTheGrid)
{
    // GreenSKU-Full's per-core total stays below the baseline over the
    // whole realistic CI range (the Fig. 12 sweep's precondition).
    const CarbonIntensity ci = CarbonIntensity::kgPerKwh(GetParam());
    EXPECT_LT(model_.perCore(StandardSkus::greenFull(), ci).total().asKg(),
              model_.perCore(StandardSkus::baseline(), ci).total().asKg());
}

TEST_P(IntensityGridTest, SavingsOrderingFlipsWithIntensity)
{
    // Below the crossover Full leads; far above, Efficient's lower
    // operational footprint wins per core.
    const double ci = GetParam();
    const auto total = [&](const ServerSku &sku) {
        return model_.perCore(sku, CarbonIntensity::kgPerKwh(ci))
            .total()
            .asKg();
    };
    const double eff = total(StandardSkus::greenEfficient());
    const double full = total(StandardSkus::greenFull());
    if (ci < 0.8) {
        EXPECT_LT(full, eff) << "below the crossover";
    } else if (ci > 1.0) {
        EXPECT_LT(eff, full) << "above the crossover";
    }
}

INSTANTIATE_TEST_SUITE_P(Grid, IntensityGridTest,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.35, 0.5,
                                           0.7, 1.1, 1.5),
                         [](const auto &info) {
                             char buf[16];
                             std::snprintf(buf, sizeof(buf), "CI%03d",
                                           int(info.param * 100));
                             return std::string(buf);
                         });

} // namespace
} // namespace gsku::carbon
