/**
 * @file
 * Bottom-up vs top-down embodied-carbon cross-checks: the die-area
 * estimates (§II methodology) must reproduce the Appendix A Table V
 * values the catalog carries, within the tolerance such estimates
 * support (~15%).
 */
#include <gtest/gtest.h>

#include "carbon/catalog.h"
#include "carbon/embodied_estimator.h"
#include "common/error.h"

namespace gsku::carbon {
namespace {

TEST(EmbodiedEstimatorTest, BergamoMatchesTableV)
{
    const CarbonMass estimate = estimateEmbodied(DieCatalog::bergamo());
    EXPECT_NEAR(estimate.asKg(), Catalog::bergamoCpu().embodied.asKg(),
                0.15 * Catalog::bergamoCpu().embodied.asKg());
}

TEST(EmbodiedEstimatorTest, GenoaMatchesCalibratedValue)
{
    const CarbonMass estimate = estimateEmbodied(DieCatalog::genoa());
    EXPECT_NEAR(estimate.asKg(), Catalog::genoaCpu().embodied.asKg(),
                0.15 * Catalog::genoaCpu().embodied.asKg());
}

TEST(EmbodiedEstimatorTest, Ddr5DimmMatchesPerGbValue)
{
    const CarbonMass estimate =
        estimateEmbodied(DieCatalog::ddr5Dimm64());
    const double table_v = 64.0 * 1.65;
    EXPECT_NEAR(estimate.asKg(), table_v, 0.1 * table_v);
}

TEST(EmbodiedEstimatorTest, SsdMatchesPerTbValue)
{
    const CarbonMass estimate = estimateEmbodied(DieCatalog::ssd2tb());
    const double table_v = 2.0 * 17.3;
    EXPECT_NEAR(estimate.asKg(), table_v, 0.1 * table_v);
}

TEST(EmbodiedEstimatorTest, GenoaHasMoreSiliconThanBergamo)
{
    // 10 Zen 4 CCDs vs 8 Zen 4c CCDs: the baseline CPU carries more
    // compute silicon, consistent with its higher calibrated embodied
    // value.
    EXPECT_GT(estimateEmbodied(DieCatalog::genoa()).asKg(),
              estimateEmbodied(DieCatalog::bergamo()).asKg());
}

TEST(EmbodiedEstimatorTest, EstimateScalesWithAreaAndCount)
{
    PackageSpec one{"one", {{"die", ProcessNode::N7, 1.0, 1}}, 0.0};
    PackageSpec two_count{"two", {{"die", ProcessNode::N7, 1.0, 2}}, 0.0};
    PackageSpec two_area{"two", {{"die", ProcessNode::N7, 2.0, 1}}, 0.0};
    const double base = estimateEmbodied(one).asKg();
    EXPECT_DOUBLE_EQ(estimateEmbodied(two_count).asKg(), 2.0 * base);
    EXPECT_DOUBLE_EQ(estimateEmbodied(two_area).asKg(), 2.0 * base);
}

TEST(EmbodiedEstimatorTest, PackagingOverheadApplied)
{
    PackageSpec bare{"bare", {{"die", ProcessNode::N5, 1.0, 1}}, 0.0};
    PackageSpec packaged{"packaged",
                         {{"die", ProcessNode::N5, 1.0, 1}},
                         0.2};
    EXPECT_NEAR(estimateEmbodied(packaged).asKg(),
                1.2 * estimateEmbodied(bare).asKg(), 1e-12);
}

TEST(EmbodiedEstimatorTest, Validation)
{
    PackageSpec empty{"empty", {}, 0.1};
    EXPECT_THROW(estimateEmbodied(empty), UserError);
    PackageSpec bad_area{"bad", {{"die", ProcessNode::N7, 0.0, 1}}, 0.1};
    EXPECT_THROW(estimateEmbodied(bad_area), UserError);
    PackageSpec bad_count{"bad", {{"die", ProcessNode::N7, 1.0, 0}}, 0.1};
    EXPECT_THROW(estimateEmbodied(bad_count), UserError);
}

} // namespace
} // namespace gsku::carbon
