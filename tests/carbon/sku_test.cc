/** @file SKU composition checks against Table IV / Table VIII rows. */
#include <gtest/gtest.h>

#include "carbon/catalog.h"
#include "carbon/sku.h"
#include "common/error.h"

namespace gsku::carbon {
namespace {

TEST(SkuTest, BaselineMatchesTableIv)
{
    const ServerSku sku = StandardSkus::baseline();
    EXPECT_EQ(sku.cores, 80);
    EXPECT_DOUBLE_EQ(sku.local_memory.asGb(), 768.0);
    EXPECT_DOUBLE_EQ(sku.cxl_memory.asGb(), 0.0);
    EXPECT_DOUBLE_EQ(sku.storage.asTb(), 12.0);
    EXPECT_EQ(sku.unitCount(ComponentKind::Dram), 12);
    EXPECT_EQ(sku.unitCount(ComponentKind::Ssd), 6);
    // Memory:core ratio 9.6 (§VI).
    EXPECT_NEAR(sku.memoryPerCore(), 9.6, 1e-9);
}

TEST(SkuTest, BaselineResizedDropsToRatioEight)
{
    const ServerSku sku = StandardSkus::baselineResized();
    EXPECT_EQ(sku.unitCount(ComponentKind::Dram), 10);
    EXPECT_NEAR(sku.memoryPerCore(), 8.0, 1e-9);
}

TEST(SkuTest, GreenEfficientMatchesTableIv)
{
    const ServerSku sku = StandardSkus::greenEfficient();
    EXPECT_EQ(sku.cores, 128);
    EXPECT_DOUBLE_EQ(sku.local_memory.asGb(), 12 * 96.0);
    EXPECT_DOUBLE_EQ(sku.storage.asTb(), 20.0);
    EXPECT_NEAR(sku.memoryPerCore(), 9.0, 1e-9);
    EXPECT_EQ(sku.unitCount(ComponentKind::CxlController), 0);
}

TEST(SkuTest, GreenCxlMatchesTableIv)
{
    const ServerSku sku = StandardSkus::greenCxl();
    EXPECT_DOUBLE_EQ(sku.local_memory.asGb(), 768.0);
    EXPECT_DOUBLE_EQ(sku.cxl_memory.asGb(), 256.0);
    EXPECT_EQ(sku.unitCount(ComponentKind::Dram), 20);
    EXPECT_EQ(sku.unitCount(ComponentKind::CxlController), 2);
    // Memory:core ratio 8 (§VI).
    EXPECT_NEAR(sku.memoryPerCore(), 8.0, 1e-9);
    // §VI: 25% of memory reused via CXL (the Fig. 10 shaded region).
    EXPECT_NEAR(sku.cxlMemoryFraction(), 0.25, 1e-9);
}

TEST(SkuTest, GreenFullMatchesTableIv)
{
    const ServerSku sku = StandardSkus::greenFull();
    EXPECT_EQ(sku.unitCount(ComponentKind::Dram), 20);
    EXPECT_EQ(sku.unitCount(ComponentKind::Ssd), 14);   // 2 new + 12 reused.
    EXPECT_DOUBLE_EQ(sku.storage.asTb(), 20.0);
    EXPECT_EQ(sku.generation, Generation::GreenSku);
}

TEST(SkuTest, TableFourRowsInPaperOrder)
{
    const auto rows = StandardSkus::tableFourRows();
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_EQ(rows[0].name, "Baseline");
    EXPECT_EQ(rows[1].name, "Baseline-Resized");
    EXPECT_EQ(rows[2].name, "GreenSKU-Efficient");
    EXPECT_EQ(rows[3].name, "GreenSKU-CXL");
    EXPECT_EQ(rows[4].name, "GreenSKU-Full");
}

TEST(SkuTest, ValidationCatchesMissingCpu)
{
    ServerSku sku = StandardSkus::baseline();
    sku.slots.erase(sku.slots.begin());     // Drop the CPU.
    EXPECT_THROW(sku.validate(), UserError);
}

TEST(SkuTest, ValidationCatchesCxlMismatch)
{
    ServerSku sku = StandardSkus::greenCxl();
    // CXL memory declared but controllers removed.
    sku.slots.erase(
        std::remove_if(sku.slots.begin(), sku.slots.end(),
                       [](const ComponentSlot &s) {
                           return s.component.kind ==
                                  ComponentKind::CxlController;
                       }),
        sku.slots.end());
    EXPECT_THROW(sku.validate(), UserError);
}

TEST(SkuTest, ValidationCatchesZeroCores)
{
    ServerSku sku = StandardSkus::baseline();
    sku.cores = 0;
    EXPECT_THROW(sku.validate(), UserError);
    EXPECT_THROW(sku.memoryPerCore(), UserError);
}

TEST(SkuTest, GenerationNamesRoundTrip)
{
    EXPECT_EQ(toString(Generation::Gen1), "Gen1");
    EXPECT_EQ(toString(Generation::Gen2), "Gen2");
    EXPECT_EQ(toString(Generation::Gen3), "Gen3");
    EXPECT_EQ(toString(Generation::GreenSku), "GreenSKU");
}

TEST(SkuTest, OldGenerationsHaveFewerCores)
{
    EXPECT_EQ(StandardSkus::gen1().cores, 64);
    EXPECT_EQ(StandardSkus::gen2().cores, 64);
    EXPECT_EQ(StandardSkus::gen1().generation, Generation::Gen1);
    EXPECT_EQ(StandardSkus::gen2().generation, Generation::Gen2);
}

TEST(SkuTest, CxlFractionZeroWithoutCxl)
{
    EXPECT_DOUBLE_EQ(StandardSkus::baseline().cxlMemoryFraction(), 0.0);
    EXPECT_DOUBLE_EQ(StandardSkus::greenEfficient().cxlMemoryFraction(),
                     0.0);
}

} // namespace
} // namespace gsku::carbon
