/** @file Fig. 1 / §II data-center breakdown reproduction and properties. */
#include <gtest/gtest.h>

#include "carbon/datacenter.h"
#include "common/error.h"

namespace gsku::carbon {
namespace {

class DatacenterTest : public ::testing::Test
{
  protected:
    DataCenterModel model_;
    FleetComposition fleet_;            // Azure-like defaults.
    DcBreakdown bd_ = model_.breakdown(fleet_);
};

TEST_F(DatacenterTest, SharesSumToOne)
{
    double op = 0.0;
    for (const auto &[name, share] : bd_.operational_by_category) {
        op += share;
    }
    EXPECT_NEAR(op, 1.0, 1e-9);
    double emb = 0.0;
    for (const auto &[name, share] : bd_.embodied_by_category) {
        emb += share;
    }
    EXPECT_NEAR(emb, 1.0, 1e-9);
    double comp = 0.0;
    for (const auto &[name, share] : bd_.compute_by_component) {
        comp += share;
    }
    EXPECT_NEAR(comp, 1.0, 1e-9);
}

TEST_F(DatacenterTest, OperationalShareNear58Percent)
{
    // §II: operational emissions are about 58% of total at Azure's
    // 40-80% renewable mix.
    EXPECT_NEAR(bd_.operational_share_of_total, 0.58, 0.04);
}

TEST_F(DatacenterTest, ComputeShareNear57Percent)
{
    // §II: compute servers account for 57% of data center emissions.
    EXPECT_NEAR(bd_.compute_share_of_total, 0.57, 0.05);
}

TEST_F(DatacenterTest, ComputeComponentSharesMatchSectionTwo)
{
    // §II: DRAM 35%, SSD 28%, CPU 24% within compute servers.
    EXPECT_NEAR(bd_.compute_by_component.at("DRAM"), 0.35, 0.05);
    EXPECT_NEAR(bd_.compute_by_component.at("SSD"), 0.28, 0.05);
    EXPECT_NEAR(bd_.compute_by_component.at("CPU"), 0.24, 0.06);
}

TEST_F(DatacenterTest, TopThreeComponentsCauseTwoThirds)
{
    // §III: CPU+DRAM+SSD cause 67% of a compute server's net emissions
    // (we tolerate our best-effort misc estimates).
    const double top3 = bd_.compute_by_component.at("DRAM") +
                        bd_.compute_by_component.at("SSD") +
                        bd_.compute_by_component.at("CPU");
    EXPECT_GT(top3, 0.67);
}

TEST_F(DatacenterTest, ComputeDominatesOperational)
{
    // Fig. 1: compute servers consume most of the power.
    const double compute = bd_.operational_by_category.at("compute");
    EXPECT_GT(compute, bd_.operational_by_category.at("storage"));
    EXPECT_GT(compute, bd_.operational_by_category.at("network"));
    EXPECT_GT(compute, bd_.operational_by_category.at("cooling+power"));
    EXPECT_GT(compute, 0.5);
}

TEST_F(DatacenterTest, StorageEmbodiedOutweighsItsOperational)
{
    // Fig. 1: storage servers have a large embodied footprint but
    // consume relatively little power.
    EXPECT_GT(bd_.embodied_by_category.at("storage"),
              bd_.operational_by_category.at("storage"));
}

TEST_F(DatacenterTest, FullRenewablesLeaveSmallOperationalShare)
{
    // §II: with 100% renewables, operational drops to ~9% of total.
    FleetComposition green = fleet_;
    green.renewable_fraction = 1.0;
    const DcBreakdown bd = model_.breakdown(green);
    EXPECT_NEAR(bd.operational_share_of_total, 0.09, 0.04);
}

TEST_F(DatacenterTest, FullRenewablesComputeShareNear44Percent)
{
    // §II: compute drops to ~44% of data center emissions.
    FleetComposition green = fleet_;
    green.renewable_fraction = 1.0;
    const DcBreakdown bd = model_.breakdown(green);
    EXPECT_NEAR(bd.compute_share_of_total, 0.44, 0.08);
}

TEST_F(DatacenterTest, EffectiveIntensityNearPaperAverage)
{
    // Table VI uses 0.1 kg/kWh as the average across Azure regions.
    EXPECT_NEAR(fleet_.effectiveIntensity().asKgPerKwh(), 0.1, 0.05);
}

TEST_F(DatacenterTest, EffectiveIntensityMonotoneInRenewables)
{
    FleetComposition f = fleet_;
    double prev = 1e9;
    for (double r : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        f.renewable_fraction = r;
        const double ci = f.effectiveIntensity().asKgPerKwh();
        ASSERT_LT(ci, prev);
        prev = ci;
    }
}

TEST_F(DatacenterTest, DcSavingsScaleWithComputeShare)
{
    // 14% cluster savings -> ~7-8% DC savings (§VI / Appendix A-F).
    const double dc = model_.dcSavings(fleet_, 0.14);
    EXPECT_NEAR(dc, 0.075, 0.015);
    EXPECT_DOUBLE_EQ(model_.dcSavings(fleet_, 0.0), 0.0);
}

TEST_F(DatacenterTest, InputValidation)
{
    FleetComposition bad = fleet_;
    bad.compute_servers = 0;
    EXPECT_THROW(model_.breakdown(bad), UserError);
    bad = fleet_;
    bad.renewable_fraction = 1.5;
    EXPECT_THROW(bad.effectiveIntensity(), UserError);
    EXPECT_THROW(model_.dcSavings(fleet_, 1.5), UserError);
}

TEST_F(DatacenterTest, StorageAndNetworkSkusValid)
{
    EXPECT_NO_THROW(FleetSkus::storageServer().validate());
    EXPECT_NO_THROW(FleetSkus::networkServer().validate());
    EXPECT_NO_THROW(FleetSkus::fleetComputeServer().validate());
}

} // namespace
} // namespace gsku::carbon
