/**
 * @file
 * Robustness fuzzing of the SKU spec parser: deterministic random token
 * soup must never crash, never throw anything but UserError, and every
 * accepted spec must produce a valid, carbon-evaluable SKU.
 */
#include <gtest/gtest.h>

#include <string>

#include "carbon/model.h"
#include "carbon/sku_parser.h"
#include "common/error.h"
#include "common/rng.h"

namespace gsku::carbon {
namespace {

/** Random token built from grammar fragments and junk. */
std::string
randomToken(Rng &rng)
{
    static const char *const keys[] = {"name", "cpu",  "ddr5",
                                       "lpddr", "cxl_ddr4", "ssd",
                                       "reused_ssd", "nic", "u",
                                       "bogus", ""};
    static const char *const values[] = {
        "bergamo", "genoa", "12x64", "8x32", "0x4",   "2x-4", "x",
        "4x",      "axb",   "new",   "reused", "2",   "1e9x1", "",
        "12x64x2", "nan",   "-3"};
    std::string token = keys[rng.uniformInt(std::size(keys))];
    if (rng.uniform() < 0.9) {
        token += "=";
        token += values[rng.uniformInt(std::size(values))];
    }
    return token;
}

TEST(SkuParserFuzzTest, RandomSpecsNeverCrash)
{
    Rng rng(0xF00D);
    const CarbonModel model;
    int accepted = 0;
    int rejected = 0;
    for (int trial = 0; trial < 3000; ++trial) {
        std::string spec;
        const int tokens = 1 + static_cast<int>(rng.uniformInt(6));
        for (int t = 0; t < tokens; ++t) {
            if (t > 0) {
                spec += ' ';
            }
            spec += randomToken(rng);
        }
        try {
            const ServerSku sku = parseSku(spec);
            // Anything accepted must be fully usable downstream.
            sku.validate();
            EXPECT_GT(model.serverPower(sku).asWatts(), 0.0) << spec;
            EXPECT_GE(model.serverEmbodied(sku).asKg(), 0.0) << spec;
            ++accepted;
        } catch (const UserError &) {
            ++rejected;     // The only acceptable failure mode.
        }
    }
    // The grammar fragments make both outcomes common; if either stops
    // occurring, the generator (or the parser) has degenerated.
    EXPECT_GT(accepted, 3);
    EXPECT_GT(rejected, 1000);
}

TEST(SkuParserFuzzTest, ValidSpecPlusJunkTokenAlwaysRejected)
{
    Rng rng(0xBEEF);
    for (int trial = 0; trial < 200; ++trial) {
        const std::string junk = "bogus" + std::to_string(rng()) + "=1x1";
        EXPECT_THROW(parseSku("cpu=genoa ddr5=12x64 ssd=6x2 " + junk),
                     UserError);
    }
}

TEST(SkuParserFuzzTest, FormatParseStableUnderRepetition)
{
    // format(parse(format(parse(x)))) must be a fixed point.
    const ServerSku sku = parseSku(
        "cpu=bergamo ddr5=12x64 cxl_ddr4=8x32 ssd=2x4 reused_ssd=12x1");
    const std::string once = formatSku(sku);
    const std::string twice = formatSku(parseSku(once));
    EXPECT_EQ(once, twice);
}

} // namespace
} // namespace gsku::carbon
