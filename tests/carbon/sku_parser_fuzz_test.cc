/**
 * @file
 * Robustness fuzzing of the SKU spec parser: deterministic random token
 * soup must never crash, never throw anything but UserError, and every
 * accepted spec must produce a valid, carbon-evaluable SKU.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "carbon/model.h"
#include "carbon/sku_parser.h"
#include "common/error.h"
#include "common/rng.h"

namespace gsku::carbon {
namespace {

/** Random token built from grammar fragments and junk. */
std::string
randomToken(Rng &rng)
{
    static const char *const keys[] = {"name", "cpu",  "ddr5",
                                       "lpddr", "cxl_ddr4", "ssd",
                                       "reused_ssd", "nic", "u",
                                       "bogus", ""};
    static const char *const values[] = {
        "bergamo", "genoa", "12x64", "8x32", "0x4",   "2x-4", "x",
        "4x",      "axb",   "new",   "reused", "2",   "1e9x1", "",
        "12x64x2", "nan",   "-3"};
    std::string token = keys[rng.uniformInt(std::size(keys))];
    if (rng.uniform() < 0.9) {
        token += "=";
        token += values[rng.uniformInt(std::size(values))];
    }
    return token;
}

TEST(SkuParserFuzzTest, RandomSpecsNeverCrash)
{
    Rng rng(0xF00D);
    const CarbonModel model;
    int accepted = 0;
    int rejected = 0;
    for (int trial = 0; trial < 3000; ++trial) {
        std::string spec;
        const int tokens = 1 + static_cast<int>(rng.uniformInt(6));
        for (int t = 0; t < tokens; ++t) {
            if (t > 0) {
                spec += ' ';
            }
            spec += randomToken(rng);
        }
        try {
            const ServerSku sku = parseSku(spec);
            // Anything accepted must be fully usable downstream.
            sku.validate();
            EXPECT_GT(model.serverPower(sku).asWatts(), 0.0) << spec;
            EXPECT_GE(model.serverEmbodied(sku).asKg(), 0.0) << spec;
            ++accepted;
        } catch (const UserError &) {
            ++rejected;     // The only acceptable failure mode.
        }
    }
    // The grammar fragments make both outcomes common; if either stops
    // occurring, the generator (or the parser) has degenerated.
    EXPECT_GT(accepted, 3);
    EXPECT_GT(rejected, 1000);
}

TEST(SkuParserFuzzTest, MalformedCorpusNeverEscapesUserError)
{
    // Regression corpus assembled while running the fuzzer under
    // ASan/UBSan: each entry once probed an overflow, parse ambiguity,
    // or empty-field path. All must be rejected as UserError — no other
    // exception type, no sanitizer report, no acceptance.
    static const char *const corpus[] = {
        // Count/capacity overflow probes.
        "cpu=genoa ddr5=999999999x999999",
        "cpu=genoa ddr5=2147483648x64",
        "cpu=genoa ssd=4x99999999999999999999",
        "cpu=genoa u=99999999999",
        "cpu=genoa u=2147483648",
        // Sign and non-integer probes.
        "cpu=genoa ddr5=-1x64",
        "cpu=genoa ddr5=4x-64",
        "cpu=genoa ddr5=4.5x64",
        "cpu=genoa u=-0",
        // Empty / truncated fields.
        "cpu=",
        "cpu= ddr5=12x64",
        "=genoa",
        "=",
        "cpu==genoa",
        "cpu=genoa ddr5=x",
        "cpu=genoa ddr5=12x",
        "cpu=genoa ddr5=x64",
        // Floating-point special values and huge magnitudes.
        "cpu=genoa ddr5=1e308x64",
        "cpu=genoa ddr5=4xinf",
        "cpu=genoa ddr5=nanx64",
        "cpu=genoa u=inf",
        // Duplicate and conflicting keys.
        "cpu=genoa cpu=bergamo",
        "cpu=genoa ddr5=12x64 ddr5=8x32 ddr5=4x16 ddr5=2x8 ddr5=1x4",
        // Whitespace-only and separator abuse.
        " ",
        "\t",
        "cpu genoa",
        "cpu=genoa,ssd=2x4",
    };
    for (const char *spec : corpus) {
        EXPECT_THROW(parseSku(spec), UserError) << "spec: '" << spec << "'";
    }
}

TEST(SkuParserFuzzTest, AcceptedExtremesStayFiniteDownstream)
{
    // Near-limit but syntactically valid specs must evaluate to finite
    // carbon numbers (no UB on multiply; caught by UBSan builds).
    const CarbonModel model;
    for (const char *spec : {"cpu=genoa ddr5=64x256 u=40",
                             "cpu=bergamo ssd=24x16 u=1",
                             "cpu=milan cxl_ddr4=1x1 u=48"}) {
        try {
            const ServerSku sku = parseSku(spec);
            sku.validate();
            EXPECT_TRUE(std::isfinite(model.serverPower(sku).asWatts()))
                << spec;
            EXPECT_TRUE(std::isfinite(model.serverEmbodied(sku).asKg()))
                << spec;
        } catch (const UserError &) {
            // Rejection is fine; crashing or accepting non-finite is not.
        }
    }
}

TEST(SkuParserFuzzTest, ValidSpecPlusJunkTokenAlwaysRejected)
{
    Rng rng(0xBEEF);
    for (int trial = 0; trial < 200; ++trial) {
        const std::string junk = "bogus" + std::to_string(rng()) + "=1x1";
        EXPECT_THROW(parseSku("cpu=genoa ddr5=12x64 ssd=6x2 " + junk),
                     UserError);
    }
}

TEST(SkuParserFuzzTest, FormatParseStableUnderRepetition)
{
    // format(parse(format(parse(x)))) must be a fixed point.
    const ServerSku sku = parseSku(
        "cpu=bergamo ddr5=12x64 cxl_ddr4=8x32 ssd=2x4 reused_ssd=12x1");
    const std::string once = formatSku(sku);
    const std::string twice = formatSku(parseSku(once));
    EXPECT_EQ(once, twice);
}

} // namespace
} // namespace gsku::carbon
