/**
 * @file
 * Reproduction of the §V worked example — the paper's own validation
 * anchor for the carbon model. All expected values are quoted verbatim
 * from §V; tolerances cover the paper's stated rounding of intermediate
 * outputs ("we ... round intermediate calculations' outputs").
 */
#include <gtest/gtest.h>

#include "carbon/model.h"
#include "carbon/sku.h"

namespace gsku::carbon {
namespace {

class WorkedExampleTest : public ::testing::Test
{
  protected:
    CarbonModel model_;                 // Table VI defaults.
    ServerSku sku_ = StandardSkus::paperExampleCxl();
};

TEST_F(WorkedExampleTest, ServerEmbodiedIs1644Kg)
{
    // CPU 28.3 + DDR5 768*1.65 + DDR4 0 + SSD 20*17.3 + 2 CXL * 2.5.
    EXPECT_NEAR(model_.serverEmbodied(sku_).asKg(), 1644.0, 5.0);
}

TEST_F(WorkedExampleTest, ServerPowerIs403W)
{
    // Derate 0.44 on every component, 5% VR loss on the CPU.
    EXPECT_NEAR(model_.serverPower(sku_).asWatts(), 403.0, 4.0);
}

TEST_F(WorkedExampleTest, RackIsSpaceConstrainedTo16Servers)
{
    const RackFootprint fp = model_.rackFootprint(sku_);
    // Power would allow floor((15000-500)/403) = 35; space allows 16.
    EXPECT_EQ(fp.servers_per_rack, 16);
    EXPECT_TRUE(fp.space_constrained);
}

TEST_F(WorkedExampleTest, RackEmbodiedIs26804Kg)
{
    // 16 * 1644 + 500.
    EXPECT_NEAR(model_.rackFootprint(sku_).rack_embodied.asKg(), 26804.0,
                60.0);
}

TEST_F(WorkedExampleTest, RackPowerIs6953W)
{
    // 16 * 403 + 500.
    EXPECT_NEAR(model_.rackFootprint(sku_).rack_power.asWatts(), 6953.0,
                60.0);
}

TEST_F(WorkedExampleTest, RackOperationalIs36547Kg)
{
    // 6 years * 0.1 kg/kWh * 6953 W.
    EXPECT_NEAR(model_.rackFootprint(sku_).rack_operational.asKg(), 36547.0,
                330.0);
}

TEST_F(WorkedExampleTest, RackTotalIs63351Kg)
{
    EXPECT_NEAR(model_.rackFootprint(sku_).total().asKg(), 63351.0, 400.0);
}

TEST_F(WorkedExampleTest, RackLevelPerCoreIs31Kg)
{
    const RackFootprint fp = model_.rackFootprint(sku_);
    EXPECT_EQ(fp.cores_per_rack, 2048);
    EXPECT_NEAR(fp.perCore().asKg(), 31.0, 0.5);
}

TEST_F(WorkedExampleTest, DeratingBelowOneReducesPower)
{
    ModelParams full_power;
    full_power.derate = 1.0;
    const CarbonModel undeterred(full_power);
    EXPECT_GT(undeterred.serverPower(sku_).asWatts(),
              model_.serverPower(sku_).asWatts());
}

TEST_F(WorkedExampleTest, VrLossOnlyAffectsCpu)
{
    ModelParams no_vr;
    no_vr.cpu_vr_loss = 1.0;
    const CarbonModel model(no_vr);
    // Removing the VR loss removes exactly 5% of the derated CPU power.
    const double delta = model_.serverPower(sku_).asWatts() -
                         model.serverPower(sku_).asWatts();
    EXPECT_NEAR(delta, 400.0 * 0.44 * 0.05, 1e-9);
}

} // namespace
} // namespace gsku::carbon
