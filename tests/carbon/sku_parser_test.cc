/** @file SKU spec-string parser tests, including round-trips. */
#include <gtest/gtest.h>

#include "carbon/model.h"
#include "carbon/sku_parser.h"
#include "common/error.h"

namespace gsku::carbon {
namespace {

TEST(SkuParserTest, ParsesGreenSkuFullSpec)
{
    const ServerSku sku = parseSku(
        "cpu=bergamo ddr5=12x64 cxl_ddr4=8x32 ssd=2x4 reused_ssd=12x1");
    EXPECT_EQ(sku.cores, 128);
    EXPECT_EQ(sku.generation, Generation::GreenSku);
    EXPECT_DOUBLE_EQ(sku.local_memory.asGb(), 768.0);
    EXPECT_DOUBLE_EQ(sku.cxl_memory.asGb(), 256.0);
    EXPECT_DOUBLE_EQ(sku.storage.asTb(), 20.0);
    EXPECT_EQ(sku.unitCount(ComponentKind::CxlController), 2);
}

TEST(SkuParserTest, ParsedSpecMatchesFactoryCarbon)
{
    // The parsed GreenSKU-Full must be carbon-identical to the factory
    // SKU, not just structurally similar.
    const CarbonModel model;
    const ServerSku parsed = parseSku(
        "cpu=bergamo ddr5=12x64 cxl_ddr4=8x32 ssd=2x4 reused_ssd=12x1");
    const ServerSku factory = StandardSkus::greenFull();
    EXPECT_NEAR(model.serverPower(parsed).asWatts(),
                model.serverPower(factory).asWatts(), 1e-9);
    EXPECT_NEAR(model.serverEmbodied(parsed).asKg(),
                model.serverEmbodied(factory).asKg(), 1e-9);
}

TEST(SkuParserTest, BaselineSpecMatchesFactory)
{
    const CarbonModel model;
    const ServerSku parsed = parseSku("cpu=genoa ddr5=12x64 ssd=6x2");
    const ServerSku factory = StandardSkus::baseline();
    EXPECT_EQ(parsed.cores, factory.cores);
    EXPECT_NEAR(model.perCore(parsed).total().asKg(),
                model.perCore(factory).total().asKg(), 1e-9);
}

TEST(SkuParserTest, NameDefaultsToSpec)
{
    const ServerSku named =
        parseSku("name=MySku cpu=genoa ddr5=10x64 ssd=4x2");
    EXPECT_EQ(named.name, "MySku");
    const ServerSku unnamed = parseSku("cpu=genoa ddr5=10x64 ssd=4x2");
    EXPECT_EQ(unnamed.name, "cpu=genoa ddr5=10x64 ssd=4x2");
}

TEST(SkuParserTest, CxlControllersFollowDimmCount)
{
    EXPECT_EQ(parseSku("cpu=bergamo ddr5=8x64 cxl_ddr4=4x32 ssd=2x4")
                  .unitCount(ComponentKind::CxlController),
              1);
    EXPECT_EQ(parseSku("cpu=bergamo ddr5=8x64 cxl_ddr4=5x32 ssd=2x4")
                  .unitCount(ComponentKind::CxlController),
              2);
    EXPECT_EQ(parseSku("cpu=bergamo ddr5=8x64 cxl_ddr4=16x32 ssd=2x4")
                  .unitCount(ComponentKind::CxlController),
              4);
}

TEST(SkuParserTest, NicVariantsParsed)
{
    const ServerSku reused =
        parseSku("cpu=bergamo ddr5=12x64 ssd=2x4 nic=reused");
    EXPECT_EQ(reused.unitCount(ComponentKind::Nic), 1);
    const ServerSku bundled = parseSku("cpu=bergamo ddr5=12x64 ssd=2x4");
    EXPECT_EQ(bundled.unitCount(ComponentKind::Nic), 0);
}

TEST(SkuParserTest, LpddrAndFormFactor)
{
    const ServerSku sku =
        parseSku("cpu=bergamo lpddr=12x96 ssd=5x4 u=1");
    EXPECT_DOUBLE_EQ(sku.local_memory.asGb(), 1152.0);
    EXPECT_EQ(sku.form_factor_u, 1);
}

TEST(SkuParserTest, RejectsMalformedSpecs)
{
    EXPECT_THROW(parseSku(""), UserError);                    // No CPU.
    EXPECT_THROW(parseSku("cpu=sparc ddr5=2x64"), UserError); // Bad CPU.
    EXPECT_THROW(parseSku("cpu=genoa ddr5=64"), UserError);   // No 'x'.
    EXPECT_THROW(parseSku("cpu=genoa ddr5=ax64 ssd=1x1"), UserError);
    EXPECT_THROW(parseSku("cpu=genoa ddr5=2x64 ddr5=4x32"),
                 UserError);                                  // Duplicate.
    EXPECT_THROW(parseSku("cpu=genoa flux=1x1"), UserError);  // Unknown.
    EXPECT_THROW(parseSku("cpu=genoa ddr5=0x64 ssd=1x1"), UserError);
    EXPECT_THROW(parseSku("cpu=genoa ddr5=2x-64 ssd=1x1"), UserError);
    EXPECT_THROW(parseSku("cpu=genoa ddr5=2x64 nic=fast"), UserError);
    EXPECT_THROW(parseSku("cpu=genoa ddr5=2x64 u=zero"), UserError);
}

TEST(SkuParserTest, RejectsTrailingJunkInNumericFields)
{
    // Regression for the std::stoi/stod full-token bug: "12abc" used
    // to parse silently as 12 and "1.5.5" as 1.5. The checked parsers
    // (common/parse.h) reject the whole token as UserError — never a
    // raw std::invalid_argument.
    EXPECT_THROW(parseSku("cpu=genoa ddr5=12abcx64 ssd=1x1"), UserError);
    EXPECT_THROW(parseSku("cpu=genoa ddr5=12x64abc ssd=1x1"), UserError);
    EXPECT_THROW(parseSku("cpu=genoa ddr5=2x64 ssd=1x1.5.5"), UserError);
    EXPECT_THROW(parseSku("cpu=genoa ddr5=2x64 u=2u"), UserError);
    try {
        parseSku("cpu=genoa ddr5=12x64abc ssd=1x1");
        FAIL() << "expected UserError";
    } catch (const UserError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("ddr5 size"), std::string::npos) << what;
        EXPECT_NE(what.find("trailing junk"), std::string::npos) << what;
    }
}

TEST(SkuParserTest, RoundTripsThroughFormat)
{
    const char *specs[] = {
        "cpu=bergamo ddr5=12x64 cxl_ddr4=8x32 ssd=2x4 reused_ssd=12x1",
        "cpu=genoa ddr5=12x64 ssd=6x2",
        "cpu=bergamo lpddr=12x96 ssd=5x4 nic=reused u=1",
    };
    const CarbonModel model;
    for (const char *spec : specs) {
        const ServerSku original = parseSku(spec);
        const ServerSku reparsed = parseSku(formatSku(original));
        EXPECT_EQ(reparsed.cores, original.cores) << spec;
        EXPECT_NEAR(model.serverPower(reparsed).asWatts(),
                    model.serverPower(original).asWatts(), 1e-6)
            << spec;
        EXPECT_NEAR(model.serverEmbodied(reparsed).asKg(),
                    model.serverEmbodied(original).asKg(), 1e-6)
            << spec;
        EXPECT_DOUBLE_EQ(reparsed.totalMemory().asGb(),
                         original.totalMemory().asGb())
            << spec;
    }
}

TEST(SkuParserTest, WhitespaceIsFlexible)
{
    const ServerSku sku =
        parseSku("  cpu=genoa   ddr5=12x64\tssd=6x2  ");
    EXPECT_EQ(sku.cores, 80);
}

} // namespace
} // namespace gsku::carbon
