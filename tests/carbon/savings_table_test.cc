/**
 * @file
 * Reproduction of Appendix A Table VIII: per-core operational, embodied,
 * and total savings of the four GreenSKU configurations relative to the
 * Gen3 baseline, computed from the open-source component data. Expected
 * values are the paper's Table VIII cells; tolerances are +/-2 percentage
 * points (our Genoa/misc estimates are best-effort, DESIGN.md §3).
 */
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "carbon/model.h"
#include "carbon/sku.h"

namespace gsku::carbon {
namespace {

struct ExpectedRow
{
    double op;
    double emb;
    double total;
};

const std::map<std::string, ExpectedRow> kTableViii = {
    {"Baseline-Resized", {0.06, 0.10, 0.08}},
    {"GreenSKU-Efficient", {0.16, 0.14, 0.15}},
    {"GreenSKU-CXL", {0.15, 0.32, 0.24}},
    {"GreenSKU-Full", {0.14, 0.38, 0.26}},
};

constexpr double kTolerance = 0.02;

class SavingsTableTest : public ::testing::Test
{
  protected:
    CarbonModel model_;
    std::vector<SavingsRow> rows_ =
        model_.savingsTable(StandardSkus::tableFourRows());

    const SavingsRow &
    row(const std::string &name) const
    {
        for (const auto &r : rows_) {
            if (r.sku_name == name) {
                return r;
            }
        }
        throw std::runtime_error("missing row " + name);
    }
};

TEST_F(SavingsTableTest, BaselineResizedMatches)
{
    const auto &r = row("Baseline-Resized");
    const auto &e = kTableViii.at("Baseline-Resized");
    EXPECT_NEAR(r.operational_savings, e.op, kTolerance);
    EXPECT_NEAR(r.embodied_savings, e.emb, kTolerance);
    EXPECT_NEAR(r.total_savings, e.total, kTolerance);
}

TEST_F(SavingsTableTest, GreenEfficientMatches)
{
    const auto &r = row("GreenSKU-Efficient");
    const auto &e = kTableViii.at("GreenSKU-Efficient");
    EXPECT_NEAR(r.operational_savings, e.op, kTolerance);
    EXPECT_NEAR(r.embodied_savings, e.emb, kTolerance);
    EXPECT_NEAR(r.total_savings, e.total, kTolerance);
}

TEST_F(SavingsTableTest, GreenCxlMatches)
{
    const auto &r = row("GreenSKU-CXL");
    const auto &e = kTableViii.at("GreenSKU-CXL");
    EXPECT_NEAR(r.operational_savings, e.op, kTolerance);
    EXPECT_NEAR(r.embodied_savings, e.emb, kTolerance);
    EXPECT_NEAR(r.total_savings, e.total, kTolerance);
}

TEST_F(SavingsTableTest, GreenFullMatches)
{
    const auto &r = row("GreenSKU-Full");
    const auto &e = kTableViii.at("GreenSKU-Full");
    EXPECT_NEAR(r.operational_savings, e.op, kTolerance);
    EXPECT_NEAR(r.embodied_savings, e.emb, kTolerance);
    EXPECT_NEAR(r.total_savings, e.total, kTolerance);
}

TEST_F(SavingsTableTest, TotalSavingsRiseWithEachReuseStep)
{
    // Table VIII: 8% -> 15% -> 24% -> 26%.
    EXPECT_LT(row("Baseline-Resized").total_savings,
              row("GreenSKU-Efficient").total_savings);
    EXPECT_LT(row("GreenSKU-Efficient").total_savings,
              row("GreenSKU-CXL").total_savings);
    EXPECT_LT(row("GreenSKU-CXL").total_savings,
              row("GreenSKU-Full").total_savings);
}

TEST_F(SavingsTableTest, EmbodiedSavingsRiseWithReuse)
{
    EXPECT_LT(row("GreenSKU-Efficient").embodied_savings,
              row("GreenSKU-CXL").embodied_savings);
    EXPECT_LT(row("GreenSKU-CXL").embodied_savings,
              row("GreenSKU-Full").embodied_savings);
}

TEST_F(SavingsTableTest, OperationalSavingsFallWithReuse)
{
    // Reused components are less energy efficient (§VI).
    EXPECT_GE(row("GreenSKU-Efficient").operational_savings,
              row("GreenSKU-CXL").operational_savings);
    EXPECT_GT(row("GreenSKU-CXL").operational_savings,
              row("GreenSKU-Full").operational_savings);
}

TEST_F(SavingsTableTest, HeadlinePerCoreSavingsNearPaper)
{
    // §VI/abstract: most carbon-efficient GreenSKU saves 26% (open
    // data) / 28% (internal) per core.
    EXPECT_NEAR(row("GreenSKU-Full").total_savings, 0.26, kTolerance);
}

} // namespace
} // namespace gsku::carbon
