/** @file Component and catalog data integrity (Table V provenance). */
#include <gtest/gtest.h>

#include "carbon/catalog.h"
#include "carbon/component.h"
#include "common/error.h"

namespace gsku::carbon {
namespace {

TEST(ComponentTest, SlotAggregationScalesByCount)
{
    const ComponentSlot slot{Catalog::ddr5Dimm(64.0), 12};
    EXPECT_NEAR(slotTdp(slot).asWatts(), 12 * 64.0 * 0.37, 1e-9);
    EXPECT_NEAR(slotEmbodied(slot).asKg(), 12 * 64.0 * 1.65, 1e-9);
}

TEST(ComponentTest, NegativeCountRejected)
{
    const ComponentSlot slot{Catalog::ddr5Dimm(64.0), -1};
    EXPECT_THROW(slotTdp(slot), UserError);
    EXPECT_THROW(slotEmbodied(slot), UserError);
}

TEST(ComponentTest, KindNamesUnique)
{
    EXPECT_EQ(toString(ComponentKind::Cpu), "CPU");
    EXPECT_EQ(toString(ComponentKind::Dram), "DRAM");
    EXPECT_EQ(toString(ComponentKind::Ssd), "SSD");
    EXPECT_EQ(toString(ComponentKind::Hdd), "HDD");
    EXPECT_EQ(toString(ComponentKind::CxlController), "CXL");
    EXPECT_EQ(toString(ComponentKind::Nic), "NIC");
    EXPECT_EQ(toString(ComponentKind::Misc), "Misc");
}

TEST(CatalogTest, BergamoMatchesTableV)
{
    const Component c = Catalog::bergamoCpu();
    EXPECT_DOUBLE_EQ(c.tdp.asWatts(), 400.0);
    EXPECT_DOUBLE_EQ(c.embodied.asKg(), 28.3);
    EXPECT_EQ(c.kind, ComponentKind::Cpu);
    EXPECT_FALSE(c.reused);
}

TEST(CatalogTest, Ddr5MatchesTableV)
{
    const Component c = Catalog::ddr5Dimm(96.0);
    EXPECT_NEAR(c.tdp.asWatts(), 96.0 * 0.37, 1e-9);
    EXPECT_NEAR(c.embodied.asKg(), 96.0 * 1.65, 1e-9);
}

TEST(CatalogTest, ReusedComponentsHaveZeroEmbodied)
{
    EXPECT_DOUBLE_EQ(Catalog::reusedDdr4Dimm(32.0).embodied.asKg(), 0.0);
    EXPECT_TRUE(Catalog::reusedDdr4Dimm(32.0).reused);
    EXPECT_DOUBLE_EQ(Catalog::reusedSsd(1.0).embodied.asKg(), 0.0);
    EXPECT_TRUE(Catalog::reusedSsd(1.0).reused);
    EXPECT_DOUBLE_EQ(Catalog::paperDdr4Dimm(32.0).embodied.asKg(), 0.0);
}

TEST(CatalogTest, ReusedDdr4DrawsMorePerGbThanDdr5)
{
    // §III: old DIMMs' lower density costs operational energy.
    const double ddr5 = Catalog::ddr5Dimm(32.0).tdp.asWatts();
    const double ddr4 = Catalog::reusedDdr4Dimm(32.0).tdp.asWatts();
    EXPECT_GT(ddr4, ddr5);
}

TEST(CatalogTest, ReusedSsdLessEfficientPerTb)
{
    // 8 W for a 1 TB reused drive vs 5.6 W/TB new (§VI).
    EXPECT_GT(Catalog::reusedSsd(1.0).tdp.asWatts(),
              Catalog::newSsd(1.0).tdp.asWatts());
}

TEST(CatalogTest, CxlControllerIsNotDerated)
{
    const Component c = Catalog::cxlController();
    EXPECT_TRUE(c.hasDerateOverride());
    EXPECT_DOUBLE_EQ(c.derate_override, 1.0);
    EXPECT_DOUBLE_EQ(c.tdp.asWatts(), 5.8);
    EXPECT_DOUBLE_EQ(c.embodied.asKg(), 2.5);
}

TEST(CatalogTest, PaperVariantsMatchTableVExactly)
{
    // The §V worked example uses 0.37 W/GB DDR4 and a derated CXL card.
    EXPECT_NEAR(Catalog::paperDdr4Dimm(32.0).tdp.asWatts(), 32.0 * 0.37,
                1e-9);
    EXPECT_FALSE(Catalog::paperCxlController().hasDerateOverride());
}

TEST(CatalogTest, CpuGenerationsOrderedByTdp)
{
    // Table I: Rome 240 W < Milan 280 W < Genoa 300-350 W < Bergamo 400 W
    // (SKU TDP per Table V).
    EXPECT_LT(Catalog::romeCpu().tdp, Catalog::milanCpu().tdp);
    EXPECT_LT(Catalog::milanCpu().tdp, Catalog::genoaCpu().tdp);
    EXPECT_LT(Catalog::genoaCpu().tdp, Catalog::bergamoCpu().tdp);
}

TEST(CatalogTest, CapacityMustBePositive)
{
    EXPECT_THROW(Catalog::ddr5Dimm(0.0), UserError);
    EXPECT_THROW(Catalog::reusedDdr4Dimm(-4.0), UserError);
    EXPECT_THROW(Catalog::newSsd(0.0), UserError);
    EXPECT_THROW(Catalog::reusedSsd(-1.0), UserError);
}

} // namespace
} // namespace gsku::carbon
