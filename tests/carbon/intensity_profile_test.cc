/** @file Diurnal carbon-intensity and temporal-shifting tests (§IX). */
#include <gtest/gtest.h>

#include "carbon/intensity_profile.h"
#include "carbon/model.h"
#include "common/error.h"

namespace gsku::carbon {
namespace {

TEST(IntensityProfileTest, CleanestHourIsTheTrough)
{
    const IntensityProfile p =
        IntensityProfile::solarHeavy(CarbonIntensity::kgPerKwh(0.2));
    const double trough = p.at(13.0).asKgPerKwh();
    for (double h = 0.0; h <= 24.0; h += 0.5) {
        ASSERT_GE(p.at(h).asKgPerKwh(), trough - 1e-12) << h;
    }
    // Peak is 12 hours away from the trough.
    EXPECT_NEAR(p.at(1.0).asKgPerKwh(), 0.2 * 1.4, 1e-9);
    EXPECT_NEAR(trough, 0.2 * 0.6, 1e-9);
}

TEST(IntensityProfileTest, IntegratesToTheMean)
{
    const IntensityProfile p =
        IntensityProfile::solarHeavy(CarbonIntensity::kgPerKwh(0.3));
    double sum = 0.0;
    const int n = 2400;
    for (int i = 0; i < n; ++i) {
        sum += p.at(24.0 * (i + 0.5) / n).asKgPerKwh();
    }
    EXPECT_NEAR(sum / n, 0.3, 1e-6);
}

TEST(IntensityProfileTest, FlatGridIsFlat)
{
    const IntensityProfile p =
        IntensityProfile::flat(CarbonIntensity::kgPerKwh(0.15));
    for (double h : {0.0, 6.0, 12.0, 23.9}) {
        EXPECT_DOUBLE_EQ(p.at(h).asKgPerKwh(), 0.15);
    }
    EXPECT_NEAR(p.cleanestWindowMean(4.0).asKgPerKwh(), 0.15, 1e-12);
}

TEST(IntensityProfileTest, CleanWindowBelowDailyMean)
{
    const IntensityProfile p =
        IntensityProfile::solarHeavy(CarbonIntensity::kgPerKwh(0.2));
    const double mean = p.dailyMean().asKgPerKwh();
    double prev = 0.0;
    for (double window : {2.0, 6.0, 12.0, 24.0}) {
        const double clean = p.cleanestWindowMean(window).asKgPerKwh();
        ASSERT_LT(clean, mean + 1e-9);
        ASSERT_GE(clean, prev);        // Wider windows are dirtier.
        prev = clean;
    }
    // A full-day window is the daily mean.
    EXPECT_NEAR(p.cleanestWindowMean(24.0).asKgPerKwh(), mean, 1e-4);
}

TEST(TemporalShifterTest, SavingsScaleWithDeferrableFraction)
{
    const IntensityProfile p =
        IntensityProfile::solarHeavy(CarbonIntensity::kgPerKwh(0.2));
    const double s10 = TemporalShifter::operationalSavings(p, 0.1, 6.0);
    const double s20 = TemporalShifter::operationalSavings(p, 0.2, 6.0);
    EXPECT_NEAR(s20, 2.0 * s10, 1e-12);
    EXPECT_GT(s10, 0.0);
}

TEST(TemporalShifterTest, FlatGridYieldsNothing)
{
    const IntensityProfile p =
        IntensityProfile::flat(CarbonIntensity::kgPerKwh(0.2));
    EXPECT_NEAR(TemporalShifter::operationalSavings(p, 0.5, 6.0), 0.0,
                1e-12);
}

TEST(TemporalShifterTest, TotalSavingsDilutedByEmbodied)
{
    // Shifting cannot touch embodied carbon — the §IX composition
    // argument: temporal shifting complements, not replaces, GreenSKUs.
    const IntensityProfile p =
        IntensityProfile::solarHeavy(CarbonIntensity::kgPerKwh(0.2));
    const double op = TemporalShifter::operationalSavings(p, 0.3, 6.0);
    const double total =
        TemporalShifter::totalSavings(p, 0.3, 6.0, 0.52);
    EXPECT_NEAR(total, 0.52 * op, 1e-12);
    EXPECT_LT(total, op);
}

TEST(TemporalShifterTest, ComposesWithGreenSkuSavings)
{
    // A GreenSKU-Full deployment with 20% of work deferrable on a
    // solar-heavy grid stacks a few extra points on top of the SKU's
    // own savings.
    const CarbonModel model;
    const PerCoreEmissions pc =
        model.perCore(StandardSkus::greenFull());
    const double op_share = pc.operational / pc.total();
    const IntensityProfile p =
        IntensityProfile::solarHeavy(CarbonIntensity::kgPerKwh(0.1));
    const double extra =
        TemporalShifter::totalSavings(p, 0.2, 6.0, op_share);
    EXPECT_GT(extra, 0.02);
    EXPECT_LT(extra, 0.08);
}

TEST(TemporalShifterTest, InputValidation)
{
    const IntensityProfile p =
        IntensityProfile::flat(CarbonIntensity::kgPerKwh(0.1));
    EXPECT_THROW(TemporalShifter::operationalSavings(p, -0.1, 6.0),
                 UserError);
    EXPECT_THROW(TemporalShifter::operationalSavings(p, 0.5, 0.0),
                 UserError);
    EXPECT_THROW(TemporalShifter::totalSavings(p, 0.5, 6.0, 1.5),
                 UserError);
    EXPECT_THROW(p.at(25.0), UserError);
    EXPECT_THROW(IntensityProfile(CarbonIntensity::kgPerKwh(0.1), 1.0,
                                  0.0),
                 UserError);
}

} // namespace
} // namespace gsku::carbon
