/** @file Carbon model structural and property tests. */
#include <gtest/gtest.h>

#include "carbon/model.h"
#include "carbon/sku.h"
#include "common/contracts.h"
#include "common/error.h"

namespace gsku::carbon {
namespace {

TEST(CarbonModelTest, ParameterValidation)
{
    ModelParams p;
    p.derate = 0.0;
    EXPECT_THROW(CarbonModel{p}, UserError);
    p = ModelParams{};
    p.cpu_vr_loss = 0.9;
    EXPECT_THROW(CarbonModel{p}, UserError);
    p = ModelParams{};
    p.pue = 0.8;
    EXPECT_THROW(CarbonModel{p}, UserError);
    p = ModelParams{};
    p.rack_misc_power = Power::watts(20000.0);
    EXPECT_THROW(CarbonModel{p}, UserError);
}

TEST(CarbonModelTest, PowerBreakdownSumsToTotal)
{
    const CarbonModel model;
    const ServerSku sku = StandardSkus::greenFull();
    const PowerBreakdown by_kind = model.serverPowerByKind(sku);
    Power sum;
    for (const auto &[kind, watts] : by_kind) {
        sum += watts;
    }
    EXPECT_NEAR(sum.asWatts(), model.serverPower(sku).asWatts(), 1e-9);
}

TEST(CarbonModelTest, EmbodiedBreakdownSumsToTotal)
{
    const CarbonModel model;
    const ServerSku sku = StandardSkus::greenCxl();
    const CarbonBreakdown by_kind = model.serverEmbodiedByKind(sku);
    CarbonMass sum;
    for (const auto &[kind, kg] : by_kind) {
        sum += kg;
    }
    EXPECT_NEAR(sum.asKg(), model.serverEmbodied(sku).asKg(), 1e-9);
}

TEST(CarbonModelTest, OperationalScalesLinearlyWithIntensity)
{
    const CarbonModel model;
    const ServerSku sku = StandardSkus::baseline();
    const PerCoreEmissions at1 =
        model.perCore(sku, CarbonIntensity::kgPerKwh(0.1));
    const PerCoreEmissions at2 =
        model.perCore(sku, CarbonIntensity::kgPerKwh(0.2));
    EXPECT_NEAR(at2.operational.asKg(), 2.0 * at1.operational.asKg(), 1e-9);
    EXPECT_DOUBLE_EQ(at2.embodied.asKg(), at1.embodied.asKg());
}

TEST(CarbonModelTest, ZeroIntensityLeavesOnlyEmbodied)
{
    const CarbonModel model;
    const ServerSku sku = StandardSkus::greenFull();
    const PerCoreEmissions pc =
        model.perCore(sku, CarbonIntensity::kgPerKwh(0.0));
    EXPECT_DOUBLE_EQ(pc.operational.asKg(), 0.0);
    EXPECT_GT(pc.embodied.asKg(), 0.0);
}

TEST(CarbonModelTest, LongerLifetimeRaisesOperationalOnly)
{
    ModelParams p12;
    p12.lifetime = Duration::years(12.0);
    const CarbonModel base_model;
    const CarbonModel long_model(p12);
    const ServerSku sku = StandardSkus::baseline();
    EXPECT_NEAR(long_model.serverOperational(sku).asKg(),
                2.0 * base_model.serverOperational(sku).asKg(), 1e-6);
    EXPECT_DOUBLE_EQ(long_model.serverEmbodied(sku).asKg(),
                     base_model.serverEmbodied(sku).asKg());
}

TEST(CarbonModelTest, PowerConstrainedRackWhenSpaceAbundant)
{
    ModelParams p;
    p.rack_space_u = 200;   // Space no longer binds.
    const CarbonModel model(p);
    const RackFootprint fp = model.rackFootprint(StandardSkus::baseline());
    EXPECT_FALSE(fp.space_constrained);
    // floor((15000 - 500) / P_s) servers fit by power.
    const int expected = static_cast<int>(
        (15000.0 - 500.0) / model.serverPower(StandardSkus::baseline())
                                .asWatts());
    EXPECT_EQ(fp.servers_per_rack, expected);
}

TEST(CarbonModelTest, RackRejectsOversizedServer)
{
    ModelParams p;
    p.rack_space_u = 1;     // Nothing fits a 2U server.
    const CarbonModel model(p);
    EXPECT_THROW(model.rackFootprint(StandardSkus::baseline()), UserError);
}

TEST(CarbonModelTest, PerCoreIncludesPueAndDcOverheads)
{
    ModelParams with;
    ModelParams without;
    without.pue = 1.0;
    without.dc_embodied_per_rack = CarbonMass::kg(1e-9);
    const CarbonModel m_with(with);
    const CarbonModel m_without(without);
    const ServerSku sku = StandardSkus::baseline();
    EXPECT_GT(m_with.perCore(sku).operational.asKg(),
              m_without.perCore(sku).operational.asKg());
    EXPECT_GT(m_with.perCore(sku).embodied.asKg(),
              m_without.perCore(sku).embodied.asKg());
}

TEST(CarbonModelTest, SavingsVsSelfIsZero)
{
    const CarbonModel model;
    const SavingsRow row = model.savingsVs(StandardSkus::baseline(),
                                           StandardSkus::baseline());
    EXPECT_DOUBLE_EQ(row.operational_savings, 0.0);
    EXPECT_DOUBLE_EQ(row.embodied_savings, 0.0);
    EXPECT_DOUBLE_EQ(row.total_savings, 0.0);
}

TEST(CarbonModelTest, TotalSavingsBetweenOpAndEmb)
{
    // Total is an emissions-weighted mix of the two components, so it
    // must lie between them.
    const CarbonModel model;
    const SavingsRow row = model.savingsVs(StandardSkus::baseline(),
                                           StandardSkus::greenFull());
    const double lo =
        std::min(row.operational_savings, row.embodied_savings);
    const double hi =
        std::max(row.operational_savings, row.embodied_savings);
    EXPECT_GE(row.total_savings, lo);
    EXPECT_LE(row.total_savings, hi);
}

TEST(CarbonModelTest, SavingsTableKeepsOrderAndBaselineFirst)
{
    const CarbonModel model;
    const auto rows = model.savingsTable(StandardSkus::tableFourRows());
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_EQ(rows.front().sku_name, "Baseline");
    EXPECT_DOUBLE_EQ(rows.front().total_savings, 0.0);
}

TEST(CarbonModelTest, SavingsTableRejectsEmpty)
{
    const CarbonModel model;
    EXPECT_THROW(model.savingsTable({}), UserError);
}

TEST(CarbonModelTest, ReuseTradeoffDirectionD1)
{
    // Design goal D1: reuse lowers embodied but raises operational.
    const CarbonModel model;
    const PerCoreEmissions eff =
        model.perCore(StandardSkus::greenEfficient());
    const PerCoreEmissions cxl = model.perCore(StandardSkus::greenCxl());
    const PerCoreEmissions full = model.perCore(StandardSkus::greenFull());
    EXPECT_LT(cxl.embodied.asKg(), eff.embodied.asKg());
    EXPECT_GE(cxl.operational.asKg(), eff.operational.asKg());
    EXPECT_LT(full.embodied.asKg(), cxl.embodied.asKg());
    EXPECT_GT(full.operational.asKg(), cxl.operational.asKg());
}

TEST(CarbonModelTest, CorruptRackFootprintViolatesContract)
{
    if (!contracts::enabled()) {
        GTEST_SKIP() << "contracts compiled out (GSKU_CONTRACTS=OFF)";
    }
    const CarbonModel model;
    RackFootprint fp = model.rackFootprint(StandardSkus::baseline());
    EXPECT_NO_THROW(fp.checkInvariants());

    RackFootprint no_servers = fp;
    no_servers.servers_per_rack = 0;
    EXPECT_THROW(no_servers.checkInvariants(), InternalError);

    RackFootprint negative_embodied = fp;
    negative_embodied.rack_embodied = CarbonMass::kg(-1.0);
    EXPECT_THROW(negative_embodied.checkInvariants(), InternalError);

    RackFootprint impossible_power = fp;
    impossible_power.rack_power = Power::watts(0.0);
    EXPECT_THROW(impossible_power.checkInvariants(), InternalError);
}

TEST(CarbonModelTest, CorruptPerCoreEmissionsViolatesContract)
{
    if (!contracts::enabled()) {
        GTEST_SKIP() << "contracts compiled out (GSKU_CONTRACTS=OFF)";
    }
    const CarbonModel model;
    PerCoreEmissions e = model.perCore(StandardSkus::greenFull());
    EXPECT_NO_THROW(e.checkInvariants());

    e.embodied = CarbonMass::kg(-0.5);
    EXPECT_THROW(e.checkInvariants(), InternalError);
}

} // namespace
} // namespace gsku::carbon
