/**
 * @file
 * Second-generation GreenSKU component tests (§III): NIC reuse and
 * low-power DRAM "may be feasible, but yield low returns today" — the
 * carbon model must quantify exactly that.
 */
#include <gtest/gtest.h>

#include "carbon/catalog.h"
#include "carbon/model.h"
#include "carbon/sku.h"

namespace gsku::carbon {
namespace {

/** GreenSKU-Full with the NIC broken out and optionally reused. */
ServerSku
fullWithNic(bool reused_nic)
{
    ServerSku sku = StandardSkus::greenFull();
    sku.name = reused_nic ? "Full + reused NIC" : "Full + explicit NIC";
    for (auto &slot : sku.slots) {
        if (slot.component.kind == ComponentKind::Misc) {
            slot = {Catalog::serverMiscNoNic(), 1};
        }
    }
    sku.slots.push_back(
        {reused_nic ? Catalog::reusedNic() : Catalog::nic(), 1});
    sku.validate();
    return sku;
}

/** GreenSKU-Efficient with LPDDR instead of DDR5. */
ServerSku
efficientWithLpddr()
{
    ServerSku sku = StandardSkus::greenEfficient();
    sku.name = "Efficient + LPDDR";
    for (auto &slot : sku.slots) {
        if (slot.component.kind == ComponentKind::Dram) {
            slot = {Catalog::lpddrDimm(96.0), 12};
        }
    }
    sku.validate();
    return sku;
}

TEST(SecondGenTest, ReusedNicHasZeroEmbodiedButMorePower)
{
    EXPECT_DOUBLE_EQ(Catalog::reusedNic().embodied.asKg(), 0.0);
    EXPECT_TRUE(Catalog::reusedNic().reused);
    EXPECT_GT(Catalog::reusedNic().tdp.asWatts(),
              Catalog::nic().tdp.asWatts());
}

TEST(SecondGenTest, MiscSplitIsConsistent)
{
    // NIC + misc-without-NIC must reproduce the aggregated misc bundle.
    EXPECT_DOUBLE_EQ(Catalog::serverMiscNoNic().tdp.asWatts() +
                         Catalog::nic().tdp.asWatts(),
                     Catalog::serverMisc().tdp.asWatts());
    EXPECT_DOUBLE_EQ(Catalog::serverMiscNoNic().embodied.asKg() +
                         Catalog::nic().embodied.asKg(),
                     Catalog::serverMisc().embodied.asKg());
}

TEST(SecondGenTest, NicReuseYieldsLowReturns)
{
    // §III: NIC reuse "yields low returns today": under 1.5 pp of
    // additional total per-core savings on top of GreenSKU-Full.
    const CarbonModel model;
    const ServerSku baseline = StandardSkus::baseline();
    const double with_new =
        model.savingsVs(baseline, fullWithNic(false)).total_savings;
    const double with_reused =
        model.savingsVs(baseline, fullWithNic(true)).total_savings;
    EXPECT_GT(with_reused, with_new);           // It does help...
    EXPECT_LT(with_reused - with_new, 0.015);   // ...but barely.
}

TEST(SecondGenTest, NicReuseTradesOpForEmbodied)
{
    const CarbonModel model;
    const ServerSku baseline = StandardSkus::baseline();
    const auto new_nic = model.savingsVs(baseline, fullWithNic(false));
    const auto reused = model.savingsVs(baseline, fullWithNic(true));
    EXPECT_GT(reused.embodied_savings, new_nic.embodied_savings);
    EXPECT_LT(reused.operational_savings, new_nic.operational_savings);
}

TEST(SecondGenTest, LpddrYieldsLowReturns)
{
    // Low-power DRAM saves operational but costs embodied; net gain on
    // GreenSKU-Efficient stays under ~3 pp.
    const CarbonModel model;
    const ServerSku baseline = StandardSkus::baseline();
    const auto ddr5 =
        model.savingsVs(baseline, StandardSkus::greenEfficient());
    const auto lpddr = model.savingsVs(baseline, efficientWithLpddr());
    EXPECT_GT(lpddr.operational_savings, ddr5.operational_savings);
    EXPECT_LT(lpddr.embodied_savings, ddr5.embodied_savings);
    EXPECT_LT(std::abs(lpddr.total_savings - ddr5.total_savings), 0.03);
}

TEST(SecondGenTest, LpddrBetterAtHighCarbonIntensity)
{
    // The LPDDR tradeoff flips with grid intensity: its operational
    // advantage matters more where power is dirtier.
    ModelParams dirty;
    dirty.carbon_intensity = CarbonIntensity::kgPerKwh(0.5);
    const CarbonModel model(dirty);
    const ServerSku baseline = StandardSkus::baseline();
    const double ddr5 =
        model.savingsVs(baseline, StandardSkus::greenEfficient())
            .total_savings;
    const double lpddr =
        model.savingsVs(baseline, efficientWithLpddr()).total_savings;
    EXPECT_GT(lpddr, ddr5);
}

} // namespace
} // namespace gsku::carbon
