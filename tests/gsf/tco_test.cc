/** @file TCO model (§VII-A): GSF with dollars instead of kgCO2e. */
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "gsf/tco.h"

namespace gsku::gsf {
namespace {

class TcoTest : public ::testing::Test
{
  protected:
    TcoModel model_;
    carbon::ServerSku baseline_ = carbon::StandardSkus::baseline();
    carbon::ServerSku full_ = carbon::StandardSkus::greenFull();
};

TEST_F(TcoTest, CapexSumsComponentPrices)
{
    // Baseline: Genoa 7200 + 768 GB * 4 + 12 TB * 90 + misc 1400.
    EXPECT_NEAR(model_.serverCapex(baseline_).asUsd(),
                7200.0 + 768.0 * 4.0 + 12.0 * 90.0 + 1400.0, 1.0);
}

TEST_F(TcoTest, ReusedPartsArePricedAtRequalification)
{
    // GreenSKU-CXL vs Efficient: reused DDR4 is cheaper than the DDR5
    // it displaces, even with requalification costs.
    const Cost eff =
        model_.serverCapex(carbon::StandardSkus::greenEfficient());
    const Cost cxl =
        model_.serverCapex(carbon::StandardSkus::greenCxl());
    EXPECT_LT(cxl, eff);
}

TEST_F(TcoTest, OpexScalesWithPower)
{
    // The Full SKU draws more power than Efficient -> more energy cost.
    EXPECT_GT(model_.serverOpex(full_),
              model_.serverOpex(carbon::StandardSkus::greenEfficient()));
}

TEST_F(TcoTest, PerCoreSplitsCapexOpex)
{
    const PerCoreCost cost = model_.perCore(baseline_);
    EXPECT_GT(cost.capex.asUsd(), 0.0);
    EXPECT_GT(cost.opex.asUsd(), 0.0);
    EXPECT_DOUBLE_EQ(cost.total().asUsd(),
                     (cost.capex + cost.opex).asUsd());
}

TEST_F(TcoTest, RelativeCostOfSelfIsOne)
{
    EXPECT_DOUBLE_EQ(model_.relativeCost(baseline_, baseline_), 1.0);
}

TEST_F(TcoTest, GreenSkusCostLessPerCoreThanBaseline)
{
    // High core counts amortize platform cost; the GreenSKUs are not a
    // cost regression relative to the baseline.
    EXPECT_LT(model_.relativeCost(baseline_, full_), 1.0);
    EXPECT_LT(model_.relativeCost(
                  baseline_, carbon::StandardSkus::greenEfficient()),
              1.0);
}

TEST_F(TcoTest, CarbonEfficientSkuWithinFivePercentOfCostOptimal)
{
    // §VII-A: "a cost-efficient server SKU is only 5% less costly
    // compared to our carbon-efficient GreenSKU."
    Cost cost_optimal = Cost::usd(1e18);
    for (const auto &sku : carbon::StandardSkus::tableFourRows()) {
        cost_optimal =
            std::min(cost_optimal, model_.perCore(sku).total());
    }
    const Cost carbon_efficient = model_.perCore(full_).total();
    EXPECT_LE((carbon_efficient - cost_optimal) / carbon_efficient, 0.05);
}

TEST_F(TcoTest, UnknownComponentRejected)
{
    carbon::ServerSku sku = baseline_;
    sku.slots.push_back(
        {carbon::Component{"Mystery accelerator",
                           carbon::ComponentKind::Misc, Power::watts(10.0),
                           CarbonMass::kg(1.0)},
         1});
    EXPECT_THROW(model_.serverCapex(sku), UserError);
}

TEST_F(TcoTest, EnergyPriceValidated)
{
    TcoParams p;
    p.energy_price = EnergyPrice::usdPerKwh(-0.01);
    EXPECT_THROW(TcoModel{p}, UserError);
}

TEST_F(TcoTest, NegativeComponentPriceRejected)
{
    TcoParams p;
    p.component_cost["AMD Genoa 80c"] = Cost::usd(-1.0);
    EXPECT_THROW(TcoModel{p}, UserError);
}

TEST_F(TcoTest, CorruptPerCoreCostViolatesContract)
{
    // A hand-corrupted result must trip the invariant check: negative
    // cost is always a model bug, hence InternalError.
    PerCoreCost cost;
    cost.capex = Cost::usd(-1.0);
    EXPECT_THROW(cost.checkInvariants(), InternalError);
}

} // namespace
} // namespace gsku::gsf
