/** @file TCO model (§VII-A): GSF with dollars instead of kgCO2e. */
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "gsf/tco.h"

namespace gsku::gsf {
namespace {

class TcoTest : public ::testing::Test
{
  protected:
    TcoModel model_;
    carbon::ServerSku baseline_ = carbon::StandardSkus::baseline();
    carbon::ServerSku full_ = carbon::StandardSkus::greenFull();
};

TEST_F(TcoTest, CapexSumsComponentPrices)
{
    // Baseline: Genoa 7200 + 768 GB * 4 + 12 TB * 90 + misc 1400.
    EXPECT_NEAR(model_.serverCapexUsd(baseline_),
                7200.0 + 768.0 * 4.0 + 12.0 * 90.0 + 1400.0, 1.0);
}

TEST_F(TcoTest, ReusedPartsArePricedAtRequalification)
{
    // GreenSKU-CXL vs Efficient: reused DDR4 is cheaper than the DDR5
    // it displaces, even with requalification costs.
    const double eff =
        model_.serverCapexUsd(carbon::StandardSkus::greenEfficient());
    const double cxl =
        model_.serverCapexUsd(carbon::StandardSkus::greenCxl());
    EXPECT_LT(cxl, eff);
}

TEST_F(TcoTest, OpexScalesWithPower)
{
    // The Full SKU draws more power than Efficient -> more energy cost.
    EXPECT_GT(model_.serverOpexUsd(full_),
              model_.serverOpexUsd(carbon::StandardSkus::greenEfficient()));
}

TEST_F(TcoTest, PerCoreSplitsCapexOpex)
{
    const PerCoreCost cost = model_.perCore(baseline_);
    EXPECT_GT(cost.capex_usd, 0.0);
    EXPECT_GT(cost.opex_usd, 0.0);
    EXPECT_DOUBLE_EQ(cost.total(), cost.capex_usd + cost.opex_usd);
}

TEST_F(TcoTest, RelativeCostOfSelfIsOne)
{
    EXPECT_DOUBLE_EQ(model_.relativeCost(baseline_, baseline_), 1.0);
}

TEST_F(TcoTest, GreenSkusCostLessPerCoreThanBaseline)
{
    // High core counts amortize platform cost; the GreenSKUs are not a
    // cost regression relative to the baseline.
    EXPECT_LT(model_.relativeCost(baseline_, full_), 1.0);
    EXPECT_LT(model_.relativeCost(
                  baseline_, carbon::StandardSkus::greenEfficient()),
              1.0);
}

TEST_F(TcoTest, CarbonEfficientSkuWithinFivePercentOfCostOptimal)
{
    // §VII-A: "a cost-efficient server SKU is only 5% less costly
    // compared to our carbon-efficient GreenSKU."
    double cost_optimal = 1e18;
    for (const auto &sku : carbon::StandardSkus::tableFourRows()) {
        cost_optimal =
            std::min(cost_optimal, model_.perCore(sku).total());
    }
    const double carbon_efficient = model_.perCore(full_).total();
    EXPECT_LE((carbon_efficient - cost_optimal) / carbon_efficient, 0.05);
}

TEST_F(TcoTest, UnknownComponentRejected)
{
    carbon::ServerSku sku = baseline_;
    sku.slots.push_back(
        {carbon::Component{"Mystery accelerator",
                           carbon::ComponentKind::Misc, Power::watts(10.0),
                           CarbonMass::kg(1.0)},
         1});
    EXPECT_THROW(model_.serverCapexUsd(sku), UserError);
}

TEST_F(TcoTest, EnergyPriceValidated)
{
    TcoParams p;
    p.energy_usd_per_kwh = -0.01;
    EXPECT_THROW(TcoModel{p}, UserError);
}

} // namespace
} // namespace gsku::gsf
