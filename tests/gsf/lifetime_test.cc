/** @file Lifetime-extension evaluator tests (§VII-B deep dive). */
#include <gtest/gtest.h>

#include "common/error.h"
#include "gsf/lifetime.h"

namespace gsku::gsf {
namespace {

class LifetimeTest : public ::testing::Test
{
  protected:
    LifetimeExtensionModel model_{carbon::ModelParams{},
                                  reliability::AfrParams{}};
    carbon::ServerSku baseline_ = carbon::StandardSkus::baseline();
};

TEST_F(LifetimeTest, AfrFlatUntilWearoutOnset)
{
    // The Fig. 2 regime: flat to 12 years per accelerated aging (§III).
    const double base = model_.afrAtAge(baseline_, 0.0);
    EXPECT_DOUBLE_EQ(model_.afrAtAge(baseline_, 7.0), base);
    EXPECT_DOUBLE_EQ(model_.afrAtAge(baseline_, 12.0), base);
    EXPECT_GT(model_.afrAtAge(baseline_, 15.0), base);
}

TEST_F(LifetimeTest, AfrGrowsLinearlyPastOnset)
{
    const double base = model_.afrAtAge(baseline_, 0.0);
    EXPECT_NEAR(model_.afrAtAge(baseline_, 16.0), base * 2.0, 1e-9);
}

TEST_F(LifetimeTest, EmbodiedAmortizesInversely)
{
    const auto p6 = model_.evaluate(baseline_, 6.0);
    const auto p12 = model_.evaluate(baseline_, 12.0);
    EXPECT_NEAR(p12.embodied_per_core_year.asKg(),
                p6.embodied_per_core_year.asKg() / 2.0, 1e-9);
}

TEST_F(LifetimeTest, OperationalGrowsWithAge)
{
    // Forgone generational improvements make old cores deliver less
    // work per watt.
    const auto p6 = model_.evaluate(baseline_, 6.0);
    const auto p12 = model_.evaluate(baseline_, 12.0);
    EXPECT_GT(p12.operational_per_core_year.asKg(),
              p6.operational_per_core_year.asKg());
}

TEST_F(LifetimeTest, MaintenanceGrowsPastWearout)
{
    const auto p10 = model_.evaluate(baseline_, 10.0);
    const auto p20 = model_.evaluate(baseline_, 20.0);
    EXPECT_GT(p20.maintenance_per_core_year.asKg(),
              p10.maintenance_per_core_year.asKg());
}

TEST_F(LifetimeTest, OptimalLifetimeBeyondSixYears)
{
    // At today's embodied share, extending beyond 6 years still pays;
    // the optimum sits in the 8-16-year range rather than at the cap —
    // §VII-B's point that extension helps but runs into maintenance
    // and performance walls.
    const double optimal = model_.optimalLifetimeYears(baseline_);
    EXPECT_GT(optimal, 6.0);
    EXPECT_LT(optimal, 18.0);

    const auto at_optimal = model_.evaluate(baseline_, optimal);
    const auto at_six = model_.evaluate(baseline_, 6.0);
    EXPECT_LT(at_optimal.total().asKg(), at_six.total().asKg());
}

TEST_F(LifetimeTest, ObjectiveIsUnimodalOnGrid)
{
    const auto points = model_.sweep(baseline_, 2.0, 20.0, 1.0);
    // Strictly decreasing then increasing (allowing flatness).
    bool increasing = false;
    for (std::size_t i = 1; i < points.size(); ++i) {
        const double prev = points[i - 1].total().asKg();
        const double cur = points[i].total().asKg();
        if (cur > prev + 1e-9) {
            increasing = true;
        } else if (increasing) {
            FAIL() << "objective rose then fell at "
                   << points[i].years << " years";
        }
    }
    SUCCEED();
}

TEST_F(LifetimeTest, NoAgingMakesLongerAlwaysBetter)
{
    LifetimeParams no_aging;
    no_aging.afr_growth_per_year = 0.0;
    no_aging.generational_perf_per_year = 0.0;
    const LifetimeExtensionModel model(carbon::ModelParams{},
                                       reliability::AfrParams{},
                                       no_aging);
    const double optimal = model.optimalLifetimeYears(baseline_, 2.0,
                                                      30.0);
    EXPECT_GT(optimal, 29.0);  // Pushes to the search boundary.
}

TEST_F(LifetimeTest, SweepAndEvaluateAgree)
{
    const auto points = model_.sweep(baseline_, 4.0, 8.0, 2.0);
    ASSERT_EQ(points.size(), 3u);
    EXPECT_DOUBLE_EQ(points[1].years, 6.0);
    EXPECT_DOUBLE_EQ(points[1].total().asKg(),
                     model_.evaluate(baseline_, 6.0).total().asKg());
}

TEST_F(LifetimeTest, InputValidation)
{
    EXPECT_THROW(model_.evaluate(baseline_, 0.0), UserError);
    EXPECT_THROW(model_.afrAtAge(baseline_, -1.0), UserError);
    EXPECT_THROW(model_.sweep(baseline_, 8.0, 4.0, 1.0), UserError);
    EXPECT_THROW(model_.optimalLifetimeYears(baseline_, 5.0, 5.0),
                 UserError);
    LifetimeParams bad;
    bad.wearout_onset_years = 0.0;
    EXPECT_THROW(LifetimeExtensionModel(carbon::ModelParams{},
                                        reliability::AfrParams{}, bad),
                 UserError);
}

} // namespace
} // namespace gsku::gsf
