/**
 * @file
 * Persistent evaluation cache: key closure (every ingredient
 * perturbation forces a miss), payload codecs (bit-exact roundtrips),
 * poisoning safety (corrupt/truncated/version-skewed records are silent
 * misses followed by bit-identical recomputes), and ledger parity
 * (cold and warm runs render byte-identical decision ledgers).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "carbon/model.h"
#include "cluster/trace_gen.h"
#include "gsf/adoption.h"
#include "gsf/design_space.h"
#include "gsf/eval_cache.h"
#include "gsf/evaluator.h"
#include "gsf/sizing.h"
#include "obs/ledger.h"
#include "obs/metrics.h"

namespace fs = std::filesystem;

namespace gsku::gsf {
namespace {

// ---------------------------------------------------------------------
// Fixture helpers
// ---------------------------------------------------------------------

cluster::VmTrace
smallTrace(std::uint64_t seed = 5)
{
    cluster::TraceGenParams p;
    p.target_concurrent_vms = 60.0;
    p.duration_h = 24.0 * 3.0;
    return cluster::TraceGenerator(p).generate(seed);
}

void
expectReplayEq(const cluster::ReplayResult &a,
               const cluster::ReplayResult &b)
{
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.green_placed, b.green_placed);
    EXPECT_EQ(a.green_fallbacks, b.green_fallbacks);
    EXPECT_EQ(a.baseline.servers, b.baseline.servers);
    EXPECT_EQ(a.baseline.vms_placed, b.baseline.vms_placed);
    // Bit-exact double comparisons: a warm result must be the cold
    // result, not an approximation of it.
    EXPECT_EQ(a.baseline.mean_core_packing, b.baseline.mean_core_packing);
    EXPECT_EQ(a.baseline.mean_mem_packing, b.baseline.mean_mem_packing);
    EXPECT_EQ(a.baseline.mean_max_mem_utilization,
              b.baseline.mean_max_mem_utilization);
    EXPECT_EQ(a.green.servers, b.green.servers);
    EXPECT_EQ(a.green.vms_placed, b.green.vms_placed);
    EXPECT_EQ(a.green.mean_core_packing, b.green.mean_core_packing);
    EXPECT_EQ(a.green.mean_mem_packing, b.green.mean_mem_packing);
    EXPECT_EQ(a.green.mean_max_mem_utilization,
              b.green.mean_max_mem_utilization);
}

void
expectSizingEq(const SizingResult &a, const SizingResult &b)
{
    EXPECT_EQ(a.baseline_only_servers, b.baseline_only_servers);
    EXPECT_EQ(a.mixed_baselines, b.mixed_baselines);
    EXPECT_EQ(a.mixed_greens, b.mixed_greens);
    expectReplayEq(a.baseline_only_replay, b.baseline_only_replay);
    expectReplayEq(a.mixed_replay, b.mixed_replay);
}

std::uint64_t
counterValue(const char *name)
{
    return obs::metrics().counter(name).value();
}

/** Fresh cache dir per test; disables the global cache on teardown so
 *  other tests in this binary stay uncached. */
class EvalCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("gsku_evalcache_test_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
        fs::remove_all(dir_);
        obs::metrics().reset();
    }

    void TearDown() override
    {
        configureEvalCache("");
        obs::stopLedger();
        fs::remove_all(dir_);
    }

    /** The single .rec file a one-entry cache holds. */
    std::string onlyRecordPath() const
    {
        std::string found;
        for (const auto &entry : fs::directory_iterator(dir_)) {
            const std::string name =
                entry.path().filename().string();
            if (name.size() == 20 && name.substr(16) == ".rec") {
                EXPECT_TRUE(found.empty())
                    << "expected exactly one record";
                found = entry.path().string();
            }
        }
        EXPECT_FALSE(found.empty()) << "no record file under " << dir_;
        return found;
    }

    std::string dir_;
};

// ---------------------------------------------------------------------
// Key hashing
// ---------------------------------------------------------------------

TEST(EvalKeyHasherTest, DigestIsDeterministicAndWellShaped)
{
    EvalKeyHasher a;
    a.mix(std::uint64_t{7}).mix(-3).mix(true).mix(0.25).mix(
        std::string("trace"));
    EvalKeyHasher b;
    b.mix(std::uint64_t{7}).mix(-3).mix(true).mix(0.25).mix(
        std::string("trace"));
    EXPECT_EQ(a.hex(), b.hex());
    ASSERT_EQ(a.hex().size(), 16u);
    for (char c : a.hex()) {
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << c;
    }
}

TEST(EvalKeyHasherTest, EveryIngredientChangesTheDigest)
{
    const auto digest = [](auto fill) {
        EvalKeyHasher h;
        fill(h);
        return h.hex();
    };
    const std::string base =
        digest([](EvalKeyHasher &h) { h.mix(1).mix(0.5).mix(false); });
    EXPECT_NE(base, digest([](EvalKeyHasher &h) {
                  h.mix(2).mix(0.5).mix(false);
              }));
    EXPECT_NE(base, digest([](EvalKeyHasher &h) {
                  h.mix(1).mix(0.50000001).mix(false);
              }));
    EXPECT_NE(base, digest([](EvalKeyHasher &h) {
                  h.mix(1).mix(0.5).mix(true);
              }));
}

TEST(EvalKeyHasherTest, StringMixingIsLengthPrefixed)
{
    // "ab" + "c" must not collide with "a" + "bc".
    EvalKeyHasher a;
    a.mix(std::string("ab")).mix(std::string("c"));
    EvalKeyHasher b;
    b.mix(std::string("a")).mix(std::string("bc"));
    EXPECT_NE(a.hex(), b.hex());
}

TEST(EvalKeyHasherTest, DoubleMixingIsBitExact)
{
    // -0.0 and +0.0 compare equal but are different bit patterns; the
    // key must distinguish them (bit-exactness is the contract).
    EvalKeyHasher pos;
    pos.mix(0.0);
    EvalKeyHasher neg;
    neg.mix(-0.0);
    EXPECT_NE(pos.hex(), neg.hex());
}

// ---------------------------------------------------------------------
// Key closures: any single-ingredient perturbation forces a new key
// ---------------------------------------------------------------------

class KeyClosureTest : public ::testing::Test
{
  protected:
    KeyClosureTest()
        : trace_(smallTrace()),
          baseline_(carbon::StandardSkus::baseline()),
          green_(carbon::StandardSkus::greenFull())
    {
        const AdoptionModel adoption{perf_, carbon_};
        table_ = adoption.buildTable(baseline_, green_,
                                     CarbonIntensity::kgPerKwh(0.1));
    }

    std::string baseKey() const
    {
        return sizingCacheKey(trace_, baseline_, green_, table_,
                              options_);
    }

    cluster::VmTrace trace_;
    carbon::ServerSku baseline_;
    carbon::ServerSku green_;
    perf::PerfModel perf_;
    carbon::CarbonModel carbon_;
    cluster::AdoptionTable table_;
    cluster::ReplayOptions options_;
};

TEST_F(KeyClosureTest, SameInputsSameKey)
{
    EXPECT_EQ(baseKey(), baseKey());
}

TEST_F(KeyClosureTest, TraceContentIsInTheKey)
{
    cluster::VmTrace perturbed = trace_;
    perturbed.vms.at(0).memory_gb += 1.0;
    EXPECT_NE(baseKey(), sizingCacheKey(perturbed, baseline_, green_,
                                        table_, options_));
    // A renamed but otherwise identical trace is a different key too:
    // the name is part of the closure (it lands in ledger lines).
    cluster::VmTrace renamed = trace_;
    renamed.name += "-copy";
    EXPECT_NE(baseKey(), sizingCacheKey(renamed, baseline_, green_,
                                        table_, options_));
}

TEST_F(KeyClosureTest, SkuSerializationIsInTheKey)
{
    carbon::ServerSku perturbed = green_;
    perturbed.cores += 1;
    EXPECT_NE(baseKey(), sizingCacheKey(trace_, baseline_, perturbed,
                                        table_, options_));
    carbon::ServerSku slot_tweak = green_;
    ASSERT_FALSE(slot_tweak.slots.empty());
    slot_tweak.slots.at(0).component.embodied =
        slot_tweak.slots.at(0).component.embodied + CarbonMass::kg(1.0);
    EXPECT_NE(baseKey(), sizingCacheKey(trace_, baseline_, slot_tweak,
                                        table_, options_));
}

TEST_F(KeyClosureTest, AdoptionTableIsInTheKey)
{
    cluster::AdoptionTable perturbed = table_;
    perturbed.set(0, carbon::Generation::Gen1,
                  {!perturbed.get(0, carbon::Generation::Gen1).adopt,
                   1.25});
    EXPECT_NE(baseKey(), sizingCacheKey(trace_, baseline_, green_,
                                        perturbed, options_));
}

TEST_F(KeyClosureTest, ReplayOptionsAreInTheKey)
{
    cluster::ReplayOptions perturbed = options_;
    perturbed.snapshot_interval_h *= 2.0;
    EXPECT_NE(baseKey(), sizingCacheKey(trace_, baseline_, green_,
                                        table_, perturbed));

    cluster::ReplayOptions policy = options_;
    policy.policy = cluster::PlacementPolicy::FirstFit;
    EXPECT_NE(baseKey(), sizingCacheKey(trace_, baseline_, green_,
                                        table_, policy));

    // use_placement_index is deliberately NOT keyed: placements are
    // bit-identical either way (allocator_index_test proves it), so
    // both settings may share cache entries.
    cluster::ReplayOptions index = options_;
    index.use_placement_index = !index.use_placement_index;
    EXPECT_EQ(baseKey(), sizingCacheKey(trace_, baseline_, green_,
                                        table_, index));
}

TEST_F(KeyClosureTest, ModelVersionBumpForcesNewKeys)
{
    EXPECT_NE(baseKey(),
              sizingCacheKey(trace_, baseline_, green_, table_, options_,
                             kEvalCacheModelVersion + 1));
}

TEST_F(KeyClosureTest, LedgerRecordingStateIsInTheKey)
{
    const std::string off = baseKey();
    obs::startLedger();
    const std::string on = baseKey();
    obs::stopLedger();
    EXPECT_NE(off, on);
    EXPECT_EQ(off, baseKey());
}

TEST_F(KeyClosureTest, ClusterEvalKeyCoversCiAndOptions)
{
    const GsfEvaluator::Options opts;
    const std::string base = clusterEvalCacheKey(
        trace_, baseline_, green_, CarbonIntensity::kgPerKwh(0.1), opts);
    EXPECT_EQ(base, clusterEvalCacheKey(trace_, baseline_, green_,
                                        CarbonIntensity::kgPerKwh(0.1),
                                        opts));
    EXPECT_NE(base, clusterEvalCacheKey(trace_, baseline_, green_,
                                        CarbonIntensity::kgPerKwh(0.2),
                                        opts));
    GsfEvaluator::Options buffer = opts;
    buffer.buffer.buffer_fraction += 0.01;
    EXPECT_NE(base, clusterEvalCacheKey(trace_, baseline_, green_,
                                        CarbonIntensity::kgPerKwh(0.1),
                                        buffer));
    GsfEvaluator::Options carbon_params = opts;
    carbon_params.carbon_params.pue += 0.01;
    EXPECT_NE(base, clusterEvalCacheKey(trace_, baseline_, green_,
                                        CarbonIntensity::kgPerKwh(0.1),
                                        carbon_params));
    EXPECT_NE(base, clusterEvalCacheKey(trace_, baseline_, green_,
                                        CarbonIntensity::kgPerKwh(0.1),
                                        opts,
                                        kEvalCacheModelVersion + 1));
}

TEST_F(KeyClosureTest, DesignSpaceKeyCoversRangeConstraintsAndModel)
{
    const DesignRange range;
    const DesignConstraints constraints;
    const carbon::ModelParams params;
    const std::string base =
        designSpaceCacheKey(baseline_, range, constraints, params);
    EXPECT_EQ(base,
              designSpaceCacheKey(baseline_, range, constraints, params));

    DesignRange r2 = range;
    r2.ddr5_dimms.push_back(17);
    EXPECT_NE(base,
              designSpaceCacheKey(baseline_, r2, constraints, params));

    DesignConstraints c2 = constraints;
    c2.max_ssd_units += 1;
    EXPECT_NE(base, designSpaceCacheKey(baseline_, range, c2, params));

    carbon::ModelParams p2 = params;
    p2.pue += 0.01;
    EXPECT_NE(base,
              designSpaceCacheKey(baseline_, range, constraints, p2));
}

// ---------------------------------------------------------------------
// Payload wire format
// ---------------------------------------------------------------------

TEST(PayloadTest, RoundTripsEveryScalarKind)
{
    PayloadWriter w;
    w.u64(0).u64(std::numeric_limits<std::uint64_t>::max());
    w.i64(-1).i64(std::numeric_limits<std::int64_t>::min());
    w.f64(0.1).f64(-0.0).f64(std::numeric_limits<double>::infinity());
    w.f64(std::numeric_limits<double>::quiet_NaN());
    w.boolean(true).boolean(false);
    w.line("a string line");
    w.lines({"one", "two", "three"});

    PayloadReader r(w.str());
    std::uint64_t u = 1;
    ASSERT_TRUE(r.u64(&u));
    EXPECT_EQ(u, 0u);
    ASSERT_TRUE(r.u64(&u));
    EXPECT_EQ(u, std::numeric_limits<std::uint64_t>::max());
    std::int64_t i = 0;
    ASSERT_TRUE(r.i64(&i));
    EXPECT_EQ(i, -1);
    ASSERT_TRUE(r.i64(&i));
    EXPECT_EQ(i, std::numeric_limits<std::int64_t>::min());
    double d = 0.0;
    ASSERT_TRUE(r.f64(&d));
    EXPECT_EQ(d, 0.1);
    ASSERT_TRUE(r.f64(&d));
    EXPECT_TRUE(d == 0.0 && std::signbit(d));    // Exact -0.0 bits.
    ASSERT_TRUE(r.f64(&d));
    EXPECT_TRUE(std::isinf(d));
    ASSERT_TRUE(r.f64(&d));
    EXPECT_TRUE(std::isnan(d));
    bool b = false;
    ASSERT_TRUE(r.boolean(&b));
    EXPECT_TRUE(b);
    ASSERT_TRUE(r.boolean(&b));
    EXPECT_FALSE(b);
    std::string s;
    ASSERT_TRUE(r.line(&s));
    EXPECT_EQ(s, "a string line");
    std::vector<std::string> ls;
    ASSERT_TRUE(r.lines(&ls));
    EXPECT_EQ(ls, (std::vector<std::string>{"one", "two", "three"}));
    EXPECT_TRUE(r.atEnd());
}

TEST(PayloadTest, MalformedReadsFailWithoutThrowing)
{
    // A truncated number, a non-hex line, and reading past the end
    // must all return false (corruption is a miss, never an error).
    PayloadReader truncated(std::string("00000000"));
    std::uint64_t u = 0;
    EXPECT_FALSE(truncated.u64(&u));

    PayloadReader junk(std::string("zzzzzzzzzzzzzzzz\n"));
    EXPECT_FALSE(junk.u64(&u));

    PayloadWriter w;
    w.u64(42);
    PayloadReader exhausted(w.str());
    ASSERT_TRUE(exhausted.u64(&u));
    EXPECT_FALSE(exhausted.u64(&u));
    EXPECT_TRUE(exhausted.atEnd());
}

// ---------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------

TEST(CodecTest, SizingResultRoundTripsBitExactWithLedger)
{
    const cluster::VmTrace trace = smallTrace();
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const perf::PerfModel perf;
    const carbon::CarbonModel carbon;
    const AdoptionModel adoption{perf, carbon};
    const auto table = adoption.buildTable(
        baseline, green, CarbonIntensity::kgPerKwh(0.1));
    const SizingResult cold =
        ClusterSizer{}.size(trace, baseline, green, table);

    const std::vector<std::string> ledger = {"{\"event\": \"a\"}",
                                             "{\"event\": \"b\"}"};
    const std::string payload = encodeSizingResult(cold, ledger);
    SizingResult warm;
    std::vector<std::string> warm_ledger;
    ASSERT_TRUE(decodeSizingResult(payload, &warm, &warm_ledger));
    expectSizingEq(cold, warm);
    EXPECT_EQ(warm_ledger, ledger);
    warm.checkInvariants();
}

TEST(CodecTest, DecodeRejectsTruncationGarbageAndTrailingBytes)
{
    const SizingResult result;    // Zeroed result encodes fine.
    const std::string payload = encodeSizingResult(result, {});
    SizingResult out;
    std::vector<std::string> ledger;
    ASSERT_TRUE(decodeSizingResult(payload, &out, &ledger));

    EXPECT_FALSE(decodeSizingResult(
        payload.substr(0, payload.size() / 2), &out, &ledger));
    EXPECT_FALSE(decodeSizingResult(payload + "extra\n", &out, &ledger));
    EXPECT_FALSE(decodeSizingResult("garbage", &out, &ledger));
    EXPECT_FALSE(decodeSizingResult("", &out, &ledger));
}

TEST(CodecTest, RankedDesignsRoundTripWithConsideredCount)
{
    const carbon::CarbonModel model;
    const DesignSpaceExplorer explorer(model);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    DesignRange range;
    range.ddr5_dimms = {14, 16};
    range.cxl_ddr4_dimms = {0, 8};
    range.new_ssds = {2};
    range.reused_ssds = {0, 2};
    long considered = 0;
    const auto designs = explorer.explore(baseline, range, &considered);
    ASSERT_FALSE(designs.empty());

    const std::string payload =
        encodeRankedDesigns(designs, considered, {"ledger line"});
    std::vector<RankedDesign> decoded;
    long decoded_considered = 0;
    std::vector<std::string> ledger;
    ASSERT_TRUE(decodeRankedDesigns(payload, &decoded,
                                    &decoded_considered, &ledger));
    EXPECT_EQ(decoded_considered, considered);
    EXPECT_EQ(ledger, std::vector<std::string>{"ledger line"});
    ASSERT_EQ(decoded.size(), designs.size());
    for (std::size_t i = 0; i < designs.size(); ++i) {
        EXPECT_EQ(decoded[i].sku.name, designs[i].sku.name);
        EXPECT_EQ(decoded[i].sku.slots.size(),
                  designs[i].sku.slots.size());
        EXPECT_EQ(decoded[i].savings.total_savings,
                  designs[i].savings.total_savings);
        EXPECT_EQ(decoded[i].savings.operational_savings,
                  designs[i].savings.operational_savings);
        EXPECT_EQ(decoded[i].savings.embodied_savings,
                  designs[i].savings.embodied_savings);
    }
}

// ---------------------------------------------------------------------
// End-to-end: cold/warm parity, counters, poisoning
// ---------------------------------------------------------------------

TEST_F(EvalCacheTest, SizingColdThenWarmIsBitIdentical)
{
    configureEvalCache(dir_);
    const cluster::VmTrace trace = smallTrace();
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const perf::PerfModel perf;
    const carbon::CarbonModel carbon;
    const AdoptionModel adoption{perf, carbon};
    const auto table = adoption.buildTable(
        baseline, green, CarbonIntensity::kgPerKwh(0.1));
    const ClusterSizer sizer;

    const std::uint64_t hits0 = counterValue("evalcache.hits");
    const std::uint64_t misses0 = counterValue("evalcache.misses");
    const SizingResult cold = sizer.size(trace, baseline, green, table);
    EXPECT_EQ(counterValue("evalcache.misses"), misses0 + 1);
    EXPECT_EQ(counterValue("evalcache.stores"), 1u);

    const SizingResult warm = sizer.size(trace, baseline, green, table);
    EXPECT_EQ(counterValue("evalcache.hits"), hits0 + 1);
    expectSizingEq(cold, warm);
}

TEST_F(EvalCacheTest, DisabledCacheTouchesNothing)
{
    // No configureEvalCache call, GSKU_EVAL_CACHE unset in tests:
    // evalCache() must stay disabled and the dir untouched.
    ASSERT_EQ(evalCache(), nullptr);
    const cluster::VmTrace trace = smallTrace();
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    ClusterSizer{}.size(trace, baseline, green,
                        cluster::AdoptionTable::none());
    EXPECT_FALSE(fs::exists(dir_));
}

TEST_F(EvalCacheTest, EvaluateClusterColdThenWarmIsBitIdentical)
{
    configureEvalCache(dir_);
    const cluster::VmTrace trace = smallTrace();
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const GsfEvaluator evaluator{GsfEvaluator::Options{}};

    const ClusterEvaluation cold = evaluator.evaluateCluster(
        trace, baseline, carbon::StandardSkus::greenFull(),
        CarbonIntensity::kgPerKwh(0.15));
    const ClusterEvaluation warm = evaluator.evaluateCluster(
        trace, baseline, carbon::StandardSkus::greenFull(),
        CarbonIntensity::kgPerKwh(0.15));

    EXPECT_EQ(cold.trace_name, warm.trace_name);
    expectSizingEq(cold.sizing, warm.sizing);
    EXPECT_EQ(cold.baseline_scenario_buffer,
              warm.baseline_scenario_buffer);
    EXPECT_EQ(cold.mixed_scenario_buffer, warm.mixed_scenario_buffer);
    EXPECT_EQ(cold.baseline_scenario_emissions.asKg(),
              warm.baseline_scenario_emissions.asKg());
    EXPECT_EQ(cold.mixed_scenario_emissions.asKg(),
              warm.mixed_scenario_emissions.asKg());
    EXPECT_EQ(cold.savings, warm.savings);
    EXPECT_GE(counterValue("evalcache.hits"), 1u);
}

TEST_F(EvalCacheTest, ExploreColdThenWarmIsBitIdentical)
{
    configureEvalCache(dir_);
    const carbon::CarbonModel model;
    const DesignSpaceExplorer explorer(model);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    DesignRange range;
    range.ddr5_dimms = {14, 15, 16};
    range.cxl_ddr4_dimms = {0, 8};
    range.new_ssds = {2, 3};
    range.reused_ssds = {0, 2};

    long cold_considered = 0;
    const auto cold = explorer.explore(baseline, range, &cold_considered);
    long warm_considered = 0;
    const auto warm = explorer.explore(baseline, range, &warm_considered);

    EXPECT_GE(counterValue("evalcache.hits"), 1u);
    EXPECT_EQ(cold_considered, warm_considered);
    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(cold[i].sku.name, warm[i].sku.name);
        EXPECT_EQ(cold[i].savings.total_savings,
                  warm[i].savings.total_savings);
    }
}

TEST_F(EvalCacheTest, ColdAndWarmLedgersRenderByteIdentical)
{
    configureEvalCache(dir_);
    const cluster::VmTrace trace = smallTrace();
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const perf::PerfModel perf;
    const carbon::CarbonModel carbon;
    const AdoptionModel adoption{perf, carbon};
    const auto table = adoption.buildTable(
        baseline, green, CarbonIntensity::kgPerKwh(0.1));
    const ClusterSizer sizer;

    obs::startLedger();
    const SizingResult cold = sizer.size(trace, baseline, green, table);
    const std::string cold_ledger = obs::renderLedger();
    obs::stopLedger();

    obs::startLedger();
    const SizingResult warm = sizer.size(trace, baseline, green, table);
    const std::string warm_ledger = obs::renderLedger();
    obs::stopLedger();

    expectSizingEq(cold, warm);
    EXPECT_FALSE(cold_ledger.empty());
    EXPECT_EQ(cold_ledger, warm_ledger);
    // The cache.entry fact is present (same fact on store and hit).
    EXPECT_NE(cold_ledger.find("cache.entry"), std::string::npos);
}

TEST_F(EvalCacheTest, CorruptedRecordIsASilentMissAndRecomputes)
{
    configureEvalCache(dir_);
    const cluster::VmTrace trace = smallTrace();
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const ClusterSizer sizer;
    const auto table = cluster::AdoptionTable::none();

    const SizingResult cold = sizer.size(trace, baseline, green, table);
    const std::string record = onlyRecordPath();

    // Flip a payload byte in place (header line left intact).
    {
        std::fstream file(record,
                          std::ios::in | std::ios::out | std::ios::binary);
        std::string header;
        std::getline(file, header);
        const auto payload_at = file.tellg();
        char byte = 0;
        file.read(&byte, 1);
        file.seekp(payload_at);
        file.put(static_cast<char>(byte ^ 0x20));
    }
    const std::uint64_t stores0 = counterValue("evalcache.stores");
    const SizingResult recomputed =
        sizer.size(trace, baseline, green, table);
    expectSizingEq(cold, recomputed);
    // The poisoned record was rejected (corrupt or undecodable — both
    // are misses) and the recompute re-stored a clean record...
    EXPECT_EQ(counterValue("evalcache.corrupt") +
                  counterValue("evalcache.undecodable"),
              1u);
    EXPECT_EQ(counterValue("evalcache.stores"), stores0 + 1);
    // ...which now serves hits again.
    const SizingResult warm = sizer.size(trace, baseline, green, table);
    expectSizingEq(cold, warm);
    EXPECT_GE(counterValue("evalcache.hits"), 1u);
}

TEST_F(EvalCacheTest, TruncatedRecordIsASilentMissAndRecomputes)
{
    configureEvalCache(dir_);
    const cluster::VmTrace trace = smallTrace();
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const ClusterSizer sizer;
    const auto table = cluster::AdoptionTable::none();

    const SizingResult cold = sizer.size(trace, baseline, green, table);
    const std::string record = onlyRecordPath();
    std::string bytes;
    {
        std::ifstream in(record, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    {
        std::ofstream out(record, std::ios::trunc | std::ios::binary);
        out << bytes.substr(0, bytes.size() - 10);
    }
    const SizingResult recomputed =
        sizer.size(trace, baseline, green, table);
    expectSizingEq(cold, recomputed);
    EXPECT_EQ(counterValue("evalcache.corrupt"), 1u);
}

TEST_F(EvalCacheTest, VersionSkewedRecordIsStaleNotAnError)
{
    configureEvalCache(dir_);
    const cluster::VmTrace trace = smallTrace();
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const ClusterSizer sizer;
    const auto table = cluster::AdoptionTable::none();

    const SizingResult cold = sizer.size(trace, baseline, green, table);
    const std::string record = onlyRecordPath();
    // Rewrite the record as if a future version wrote it: same shape,
    // different schema tag.
    std::string bytes;
    {
        std::ifstream in(record, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    const std::string tag = kEvalCacheSchema;
    const std::size_t at = bytes.find(tag);
    ASSERT_NE(at, std::string::npos);
    bytes.replace(at, tag.size(), "gsku-evalcache-v999");
    {
        std::ofstream out(record, std::ios::trunc | std::ios::binary);
        out << bytes;
    }
    const SizingResult recomputed =
        sizer.size(trace, baseline, green, table);
    expectSizingEq(cold, recomputed);
    EXPECT_EQ(counterValue("evalcache.stale"), 1u);
}

TEST_F(EvalCacheTest, ModelVersionBumpNeverReplaysOldResults)
{
    configureEvalCache(dir_);
    const cluster::VmTrace trace = smallTrace();
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const auto table = cluster::AdoptionTable::none();
    const cluster::ReplayOptions options;

    ClusterSizer{}.size(trace, baseline, green, table);
    // The record stored under today's version is unreachable from a
    // bumped version's key (fetch under the new key misses).
    const std::string bumped_key =
        sizingCacheKey(trace, baseline, green, table, options,
                       kEvalCacheModelVersion + 1);
    EXPECT_FALSE(evalCache()->fetch(bumped_key, "sizing").has_value());
}

} // namespace
} // namespace gsku::gsf
