/** @file Design-space explorer tests (§VIII search loop). */
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.h"
#include "gsf/design_space.h"

namespace gsku::gsf {
namespace {

class DesignSpaceTest : public ::testing::Test
{
  protected:
    carbon::CarbonModel model_;
    DesignSpaceExplorer explorer_{model_};
    carbon::ServerSku baseline_ = carbon::StandardSkus::baseline();
};

TEST_F(DesignSpaceTest, GreenSkuFullIsABuildableCandidate)
{
    const auto sku = explorer_.buildCandidate(12, 8, 2, 12);
    ASSERT_TRUE(sku.has_value());
    // Carbon-identical to the factory GreenSKU-Full.
    EXPECT_NEAR(
        model_.perCore(*sku).total().asKg(),
        model_.perCore(carbon::StandardSkus::greenFull()).total().asKg(),
        1e-9);
}

TEST_F(DesignSpaceTest, ConstraintsRejectBadCandidates)
{
    // Too little memory (6 x 64 = 3 GB/core).
    EXPECT_FALSE(explorer_.buildCandidate(6, 0, 4, 0).has_value());
    // Too much memory (16 x 64 + 16 x 32 = 12 GB/core).
    EXPECT_FALSE(explorer_.buildCandidate(16, 16, 4, 0).has_value());
    // CXL share above the bound (8x64 + 16x32 -> 50%).
    EXPECT_FALSE(explorer_.buildCandidate(8, 16, 4, 0).has_value());
    // Too little storage.
    EXPECT_FALSE(explorer_.buildCandidate(14, 0, 1, 2).has_value());
    // Too many SSD units.
    EXPECT_FALSE(explorer_.buildCandidate(14, 0, 6, 14).has_value());
}

TEST_F(DesignSpaceTest, ExploreSortsBySavings)
{
    long considered = 0;
    const auto designs = explorer_.explore(baseline_, {}, &considered);
    ASSERT_GT(designs.size(), 100u);
    EXPECT_GT(considered, static_cast<long>(designs.size()));
    for (std::size_t i = 1; i < designs.size(); ++i) {
        ASSERT_GE(designs[i - 1].savings.total_savings,
                  designs[i].savings.total_savings);
    }
}

TEST_F(DesignSpaceTest, EveryDesignSatisfiesConstraints)
{
    const DesignConstraints c;
    for (const auto &d : explorer_.explore(baseline_)) {
        ASSERT_GE(d.sku.memoryPerCore(), c.min_mem_per_core);
        ASSERT_LE(d.sku.memoryPerCore(), c.max_mem_per_core);
        ASSERT_LE(d.sku.cxlMemoryFraction(), c.max_cxl_fraction);
        ASSERT_GE(d.sku.storage.asTb(), c.min_storage_tb);
    }
}

TEST_F(DesignSpaceTest, PaperSkuRanksNearTheTop)
{
    // §VIII: the paper's GreenSKU-Full "may not be the optimal
    // configuration" — it should rank well but not first in the wider
    // space.
    const auto designs = explorer_.explore(baseline_);
    const auto full_savings = model_.savingsVs(
        baseline_, carbon::StandardSkus::greenFull());
    const std::size_t rank =
        DesignSpaceExplorer::rankOf(designs, full_savings);
    EXPECT_GT(rank, 1u);
    EXPECT_LT(rank, designs.size() / 2);
}

TEST_F(DesignSpaceTest, TighterConstraintsShrinkTheSpace)
{
    DesignConstraints strict;
    strict.max_cxl_fraction = 0.0;      // No CXL memory allowed.
    const DesignSpaceExplorer no_cxl(model_, strict);
    const auto all = explorer_.explore(baseline_);
    const auto restricted = no_cxl.explore(baseline_);
    EXPECT_LT(restricted.size(), all.size());
    for (const auto &d : restricted) {
        ASSERT_DOUBLE_EQ(d.sku.cxlMemoryFraction(), 0.0);
    }
}

TEST_F(DesignSpaceTest, RankedDesignLessBreaksSavingsTiesByName)
{
    // Regression: the explore() sort used to key on total_savings
    // alone, so equal-savings candidates landed in stdlib-dependent
    // order. rankedDesignLess must order ties by name, ascending.
    RankedDesign a;
    a.sku.name = "B/12x64/0x32cxl/2+4ssd";
    a.savings.total_savings = 0.25;
    RankedDesign b;
    b.sku.name = "B/12x64/0x32cxl/4+0ssd";
    b.savings.total_savings = 0.25;       // Deliberately tied.

    EXPECT_TRUE(rankedDesignLess(a, b));
    EXPECT_FALSE(rankedDesignLess(b, a));
    EXPECT_FALSE(rankedDesignLess(a, a));  // Irreflexive (strict weak).
    // Savings still dominates the name when they differ.
    b.savings.total_savings = 0.30;
    EXPECT_TRUE(rankedDesignLess(b, a));
    EXPECT_FALSE(rankedDesignLess(a, b));

    std::vector<RankedDesign> designs = {a, b};
    std::sort(designs.begin(), designs.end(), rankedDesignLess);
    EXPECT_EQ(designs[0].sku.name, b.sku.name);
}

TEST_F(DesignSpaceTest, RankOfUsesCompetitionRankingOnTies)
{
    // "1224" ranking: ties share the best rank; the next rank skips.
    auto design = [](const char *name, double savings) {
        RankedDesign d;
        d.sku.name = name;
        d.savings.total_savings = savings;
        return d;
    };
    const std::vector<RankedDesign> designs = {
        design("a", 0.30), design("b", 0.20), design("c", 0.20),
        design("d", 0.10)};

    carbon::SavingsRow query;
    query.total_savings = 0.35;    // Beats everything: rank 1.
    EXPECT_EQ(DesignSpaceExplorer::rankOf(designs, query), 1u);
    query.total_savings = 0.30;    // Ties the leader: still rank 1.
    EXPECT_EQ(DesignSpaceExplorer::rankOf(designs, query), 1u);
    query.total_savings = 0.20;    // Ties b and c: shares rank 2.
    EXPECT_EQ(DesignSpaceExplorer::rankOf(designs, query), 2u);
    query.total_savings = 0.15;    // Between the tie block and d.
    EXPECT_EQ(DesignSpaceExplorer::rankOf(designs, query), 4u);
    query.total_savings = 0.05;    // Below everything: rank 5.
    EXPECT_EQ(DesignSpaceExplorer::rankOf(designs, query), 5u);

    // Boundary: an empty ranking always yields rank 1.
    EXPECT_EQ(DesignSpaceExplorer::rankOf({}, query), 1u);

    // Non-finite savings would silently rank 1; both sides must be
    // finite.
    query.total_savings = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(DesignSpaceExplorer::rankOf(designs, query), UserError);
    query.total_savings = 0.2;
    auto poisoned = designs;
    poisoned[1].savings.total_savings =
        std::numeric_limits<double>::infinity();
    EXPECT_THROW(DesignSpaceExplorer::rankOf(poisoned, query), UserError);
}

TEST_F(DesignSpaceTest, Validation)
{
    DesignConstraints bad;
    bad.min_mem_per_core = 10.0;
    bad.max_mem_per_core = 7.0;
    EXPECT_THROW(DesignSpaceExplorer(model_, bad), UserError);
    EXPECT_THROW(explorer_.buildCandidate(-1, 0, 1, 0), UserError);
    DesignRange empty;
    empty.ddr5_dimms.clear();
    EXPECT_THROW(explorer_.explore(baseline_, empty), UserError);
}

} // namespace
} // namespace gsku::gsf
