/**
 * @file
 * End-to-end integration tests: the full GSF pipeline (Fig. 6) wired
 * exactly as the benches run it, checking cross-component consistency
 * rather than any single model.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "carbon/datacenter.h"
#include "cluster/demand.h"
#include "cluster/trace_gen.h"
#include "gsf/evaluator.h"
#include "gsf/tiering.h"
#include "perf/cpu.h"

namespace gsku::gsf {
namespace {

class IntegrationTest : public ::testing::Test
{
  protected:
    IntegrationTest()
    {
        cluster::TraceGenParams p;
        p.target_concurrent_vms = 180.0;
        p.duration_h = 24.0 * 7.0;
        trace_ = cluster::TraceGenerator(p).generate(55);
    }

    cluster::VmTrace trace_;
    GsfEvaluator evaluator_{GsfEvaluator::Options{}};
    carbon::ServerSku baseline_ = carbon::StandardSkus::baseline();
    carbon::ServerSku full_ = carbon::StandardSkus::greenFull();
    CarbonIntensity ci_ = CarbonIntensity::kgPerKwh(0.1);
};

TEST_F(IntegrationTest, PipelineIsFullyDeterministic)
{
    const auto a = evaluator_.evaluateCluster(trace_, baseline_, full_,
                                              ci_);
    const auto b = evaluator_.evaluateCluster(trace_, baseline_, full_,
                                              ci_);
    EXPECT_DOUBLE_EQ(a.savings, b.savings);
    EXPECT_EQ(a.sizing.mixed_greens, b.sizing.mixed_greens);
    EXPECT_EQ(a.sizing.mixed_baselines, b.sizing.mixed_baselines);
}

TEST_F(IntegrationTest, SavingsMatchManualRecomputation)
{
    // Recompute the evaluator's savings by hand from its own outputs:
    // the published pieces must reproduce the published total.
    const auto eval =
        evaluator_.evaluateCluster(trace_, baseline_, full_, ci_);

    const CarbonMass base = evaluator_.deploymentEmissions(
        baseline_,
        eval.sizing.baseline_only_servers + eval.baseline_scenario_buffer,
        ci_);
    const CarbonMass mixed =
        evaluator_.deploymentEmissions(
            baseline_,
            eval.sizing.mixed_baselines + eval.mixed_scenario_buffer,
            ci_) +
        evaluator_.deploymentEmissions(full_, eval.sizing.mixed_greens,
                                       ci_);
    EXPECT_NEAR(eval.savings, 1.0 - mixed / base, 1e-12);
    EXPECT_DOUBLE_EQ(eval.baseline_scenario_emissions.asKg(), base.asKg());
    EXPECT_DOUBLE_EQ(eval.mixed_scenario_emissions.asKg(), mixed.asKg());
}

TEST_F(IntegrationTest, AdoptionTableReflectsScalingFactors)
{
    // Cross-check adoption against the perf model's Table III: apps
    // with infeasible scaling never adopt; apps at factor 1 vs Gen1
    // always adopt at CI=0.1 under GreenSKU-Full.
    const auto table =
        evaluator_.adoptionModel().buildTable(baseline_, full_, ci_);
    const auto &apps = perf::AppCatalog::all();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto sf = evaluator_.perfModel().scalingFactor(
            apps[i], perf::CpuCatalog::rome());
        const auto decision = table.get(i, carbon::Generation::Gen1);
        if (!sf.feasible) {
            EXPECT_FALSE(decision.adopt) << apps[i].name;
        } else if (sf.factor == 1.0) {
            EXPECT_TRUE(decision.adopt) << apps[i].name;
            EXPECT_DOUBLE_EQ(decision.scaling_factor, 1.0)
                << apps[i].name;
        }
    }
}

TEST_F(IntegrationTest, MixedClusterCapacityCoversScaledDemand)
{
    const auto eval =
        evaluator_.evaluateCluster(trace_, baseline_, full_, ci_);
    const int mixed_cores =
        eval.sizing.mixed_baselines * baseline_.cores +
        eval.sizing.mixed_greens * full_.cores;
    // Capacity at least the unscaled peak demand...
    EXPECT_GE(mixed_cores, trace_.peakConcurrentCores());
    // ...and not absurdly above the 1.5x worst-case scaling envelope.
    EXPECT_LE(mixed_cores,
              static_cast<int>(trace_.peakConcurrentCores() * 1.5) +
                  2 * full_.cores + 2 * baseline_.cores);
}

TEST_F(IntegrationTest, ClusterToDcChainIsConsistent)
{
    const auto eval =
        evaluator_.evaluateCluster(trace_, baseline_, full_, ci_);
    const carbon::DataCenterModel dc;
    const carbon::FleetComposition fleet;
    const double dc_savings = dc.dcSavings(fleet, eval.savings);
    EXPECT_NEAR(dc_savings,
                eval.savings *
                    dc.breakdown(fleet).compute_share_of_total,
                1e-12);
}

TEST_F(IntegrationTest, TieringKeepsAdoptedWorkloadFast)
{
    // The CXL SKU the evaluator deploys must keep ~98% of core-hours
    // under 5% slowdown via tiering — otherwise the adoption component's
    // "no CXL penalty for adopters" premise would not hold.
    const MemoryTieringPolicy tiering;
    EXPECT_GT(tiering.fleetShareBelowSlowdown(
                  carbon::StandardSkus::greenCxl()),
              0.95);
}

TEST_F(IntegrationTest, BufferFractionTraceableToDemandModel)
{
    // The evaluator's default buffer fraction is the newsvendor sizing
    // of the default demand process (within rounding slack).
    const cluster::GrowthBufferSizer sizer;
    GsfEvaluator::Options opts;
    EXPECT_NEAR(opts.buffer.buffer_fraction, sizer.bufferFraction(),
                0.02);
}

TEST_F(IntegrationTest, HigherIntensityMonotonicallyErodesSavings)
{
    double prev = 1.0;
    for (double ci : {0.0, 0.05, 0.1, 0.2, 0.4}) {
        const auto eval = evaluator_.evaluateCluster(
            trace_, baseline_, full_, CarbonIntensity::kgPerKwh(ci));
        EXPECT_LE(eval.savings, prev + 1e-9) << "CI " << ci;
        prev = eval.savings;
    }
}

} // namespace
} // namespace gsku::gsf
