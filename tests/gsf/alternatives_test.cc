/** @file §VII-B alternative-strategy solvers. */
#include <gtest/gtest.h>

#include "common/error.h"
#include "gsf/alternatives.h"

namespace gsku::gsf {
namespace {

class AlternativesTest : public ::testing::Test
{
  protected:
    AlternativesAnalysis analysis_{carbon::ModelParams{},
                                   carbon::FleetComposition{}};
    carbon::ServerSku baseline_ = carbon::StandardSkus::baseline();
};

TEST_F(AlternativesTest, LifetimeExtensionMatchesPaper)
{
    // §VII-B: matching GreenSKU-Full's per-core savings (26% open /
    // 28% internal) requires extending lifetime from 6 to ~13 years.
    const double years = analysis_.requiredLifetimeYears(baseline_, 0.26);
    EXPECT_NEAR(years, 13.0, 1.5);
}

TEST_F(AlternativesTest, LifetimeGrowsSuperlinearlyWithTarget)
{
    const double y1 = analysis_.requiredLifetimeYears(baseline_, 0.10);
    const double y2 = analysis_.requiredLifetimeYears(baseline_, 0.20);
    const double y3 = analysis_.requiredLifetimeYears(baseline_, 0.30);
    EXPECT_LT(y1, y2);
    EXPECT_LT(y2, y3);
    EXPECT_GT(y3 - y2, y2 - y1);
}

TEST_F(AlternativesTest, LifetimeInfeasibleBeyondEmbodiedShare)
{
    // Even infinite lifetime cannot remove operational emissions.
    EXPECT_THROW(analysis_.requiredLifetimeYears(baseline_, 0.9),
                 UserError);
}

TEST_F(AlternativesTest, EfficiencyGainNearPaper28Percent)
{
    // §VII-B: ~28% more efficient compute components match the DC-wide
    // savings (~8%).
    const double gain = analysis_.requiredEfficiencyGain(0.08);
    EXPECT_NEAR(gain, 0.28, 0.06);
}

TEST_F(AlternativesTest, EfficiencyGainMonotoneInTarget)
{
    EXPECT_LT(analysis_.requiredEfficiencyGain(0.04),
              analysis_.requiredEfficiencyGain(0.08));
}

TEST_F(AlternativesTest, RenewableIncreaseSolvesTarget)
{
    // Our honest solve lands at ~6-7 pp for the 8% DC-wide savings; the
    // paper reports 2.6 pp with internal data (see EXPERIMENTS.md).
    const double delta = analysis_.requiredRenewableIncrease(0.08);
    EXPECT_GT(delta, 0.02);
    EXPECT_LT(delta, 0.12);

    // Verify the root actually achieves the target.
    carbon::FleetComposition fleet;
    const carbon::DataCenterModel dc{carbon::ModelParams{}};
    const double base = dc.breakdown(fleet).total().asKg();
    fleet.renewable_fraction += delta;
    const double shifted = dc.breakdown(fleet).total().asKg();
    EXPECT_NEAR(1.0 - shifted / base, 0.08, 0.002);
}

TEST_F(AlternativesTest, RenewableIncreaseMonotone)
{
    EXPECT_LT(analysis_.requiredRenewableIncrease(0.03),
              analysis_.requiredRenewableIncrease(0.08));
}

TEST_F(AlternativesTest, TargetsValidated)
{
    EXPECT_THROW(analysis_.requiredRenewableIncrease(0.0), UserError);
    EXPECT_THROW(analysis_.requiredRenewableIncrease(1.0), UserError);
    EXPECT_THROW(analysis_.requiredEfficiencyGain(-0.1), UserError);
    EXPECT_THROW(analysis_.requiredLifetimeYears(baseline_, 0.0),
                 UserError);
}

} // namespace
} // namespace gsku::gsf
