/** @file Adoption component tests (§IV-C / §V): carbon-driven decisions. */
#include <gtest/gtest.h>

#include "gsf/adoption.h"
#include "perf/cpu.h"

namespace gsku::gsf {
namespace {

class AdoptionTest : public ::testing::Test
{
  protected:
    perf::PerfModel perf_;
    carbon::CarbonModel carbon_;
    AdoptionModel model_{perf_, carbon_};
    carbon::ServerSku baseline_ = carbon::StandardSkus::baseline();
    carbon::ServerSku full_ = carbon::StandardSkus::greenFull();
    CarbonIntensity ci_ = CarbonIntensity::kgPerKwh(0.1);
};

TEST_F(AdoptionTest, UnscaledAppsAdopt)
{
    // Redis needs no scaling and the GreenSKU's CO2e/core is lower.
    const auto d = model_.decide(perf::AppCatalog::byName("Redis"),
                                 carbon::Generation::Gen3, baseline_,
                                 full_, ci_);
    EXPECT_TRUE(d.adopt);
    EXPECT_DOUBLE_EQ(d.scaling_factor, 1.0);
}

TEST_F(AdoptionTest, InfeasibleAppsNeverAdopt)
{
    // Silo's scaling factor is >1.5 on every generation (Table III).
    for (auto gen : {carbon::Generation::Gen1, carbon::Generation::Gen2,
                     carbon::Generation::Gen3}) {
        EXPECT_FALSE(model_.decide(perf::AppCatalog::byName("Silo"), gen,
                                   baseline_, full_, ci_)
                         .adopt);
    }
}

TEST_F(AdoptionTest, HighScalingOffsetsCarbonSavings)
{
    // §VI: apps needing 1.5x scaling offset GreenSKU savings at the
    // average CI (1.5 x green per-core exceeds baseline per-core).
    const auto d = model_.decide(perf::AppCatalog::byName("Xapian"),
                                 carbon::Generation::Gen3, baseline_,
                                 full_, ci_);
    EXPECT_FALSE(d.adopt);
}

TEST_F(AdoptionTest, SameAppAdoptsForOlderGenerations)
{
    // Xapian vs Gen1/Gen2 needs no scaling -> adopts.
    for (auto gen :
         {carbon::Generation::Gen1, carbon::Generation::Gen2}) {
        EXPECT_TRUE(model_.decide(perf::AppCatalog::byName("Xapian"), gen,
                                  baseline_, full_, ci_)
                        .adopt);
    }
}

TEST_F(AdoptionTest, LowIntensityFavorsAdoption)
{
    // At CI -> 0 only embodied matters; the GreenSKU-Full advantage is
    // largest, so adoption cannot shrink.
    const auto low = model_.buildTable(baseline_, full_,
                                       CarbonIntensity::kgPerKwh(0.0));
    const auto high = model_.buildTable(baseline_, full_,
                                        CarbonIntensity::kgPerKwh(0.6));
    EXPECT_GE(low.adoptionRate(), high.adoptionRate());
    EXPECT_GT(low.adoptionRate(), 0.8);
}

TEST_F(AdoptionTest, TableConsistentWithDecide)
{
    const auto table = model_.buildTable(baseline_, full_, ci_);
    const auto &apps = perf::AppCatalog::all();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        for (auto gen : {carbon::Generation::Gen1,
                         carbon::Generation::Gen2,
                         carbon::Generation::Gen3}) {
            const auto expected =
                model_.decide(apps[i], gen, baseline_, full_, ci_);
            const auto got = table.get(i, gen);
            ASSERT_EQ(got.adopt, expected.adopt) << apps[i].name;
            if (expected.adopt) {
                ASSERT_DOUBLE_EQ(got.scaling_factor,
                                 expected.scaling_factor)
                    << apps[i].name;
            }
        }
    }
}

TEST_F(AdoptionTest, CoreHourShareWeightsByFleet)
{
    const double gen1 = model_.adoptedCoreHourShare(
        baseline_, full_, carbon::Generation::Gen1, ci_);
    const double gen3 = model_.adoptedCoreHourShare(
        baseline_, full_, carbon::Generation::Gen3, ci_);
    // Vs Gen1 everything but Silo adopts (91% of the 99% accounted).
    EXPECT_NEAR(gen1, 0.91, 0.02);
    // Vs Gen3 the 1.5x/!feasible apps drop out.
    EXPECT_LT(gen3, gen1);
    EXPECT_GT(gen3, 0.4);
}

TEST_F(AdoptionTest, EfficientSkuAdoptsLessThanFullAtModerateCi)
{
    // GreenSKU-Efficient's smaller per-core savings cannot pay for
    // 1.25x scaling with open data, so its adoption is narrower.
    const auto eff = model_.buildTable(
        baseline_, carbon::StandardSkus::greenEfficient(), ci_);
    const auto full = model_.buildTable(baseline_, full_, ci_);
    EXPECT_LT(eff.adoptionRate(), full.adoptionRate());
}

} // namespace
} // namespace gsku::gsf
