/** @file Pond-style memory-tiering policy tests (§III anchors). */
#include <gtest/gtest.h>

#include "common/error.h"
#include "gsf/tiering.h"

namespace gsku::gsf {
namespace {

class TieringTest : public ::testing::Test
{
  protected:
    MemoryTieringPolicy policy_;
    carbon::ServerSku cxl_sku_ = carbon::StandardSkus::greenCxl();
    carbon::ServerSku no_cxl_sku_ =
        carbon::StandardSkus::greenEfficient();
};

TEST_F(TieringTest, NoCxlMemoryMeansNoDecision)
{
    const auto d = policy_.decide(perf::AppCatalog::byName("Moses"), 0.5,
                                  no_cxl_sku_);
    EXPECT_DOUBLE_EQ(d.cxl_fraction, 0.0);
    EXPECT_DOUBLE_EQ(d.slowdown, 1.0);
    EXPECT_FALSE(d.fully_cxl);
}

TEST_F(TieringTest, InsensitiveAppsRunFullyFromCxl)
{
    // Img-DNN (cxl_sens 0.03) is below the 0.05 threshold: hardware
    // counters say it can run entirely from CXL (§III).
    const auto d = policy_.decide(perf::AppCatalog::byName("Img-DNN"),
                                  0.5, cxl_sku_);
    EXPECT_TRUE(d.fully_cxl);
    EXPECT_DOUBLE_EQ(d.cxl_fraction, 1.0);
    EXPECT_LE(d.slowdown, 1.05);
}

TEST_F(TieringTest, UntouchedMemoryAbsorbsCxlWithoutSlowdown)
{
    // Moses touching 55%: untouched 45% x 0.9 claim covers the SKU's
    // 25% CXL share entirely -> zero touched spill, no slowdown.
    const auto d = policy_.decide(perf::AppCatalog::byName("Moses"), 0.55,
                                  cxl_sku_);
    EXPECT_FALSE(d.fully_cxl);
    EXPECT_DOUBLE_EQ(d.touched_on_cxl, 0.0);
    EXPECT_DOUBLE_EQ(d.slowdown, 1.0);
    EXPECT_NEAR(d.cxl_fraction, 0.25, 1e-9);
}

TEST_F(TieringTest, HighTouchVmsSpillAndSlowDown)
{
    // Touching 95%: only 4.5% claimable untouched; ~20.5 pp of touched
    // memory must live on CXL -> sensitivity-scaled slowdown.
    const auto d = policy_.decide(perf::AppCatalog::byName("Moses"), 0.95,
                                  cxl_sku_);
    EXPECT_GT(d.touched_on_cxl, 0.15);
    EXPECT_GT(d.slowdown, 1.05);
    EXPECT_LT(d.slowdown, 1.0 + 0.45);  // Bounded by full-CXL penalty.
}

TEST_F(TieringTest, SlowdownMonotoneInTouchedFraction)
{
    const auto &app = perf::AppCatalog::byName("Masstree");
    double prev = 0.0;
    for (double t = 0.0; t <= 1.0; t += 0.05) {
        const double s = policy_.decide(app, t, cxl_sku_).slowdown;
        ASSERT_GE(s, prev);
        prev = s;
    }
}

TEST_F(TieringTest, FleetShareBelow5PercentIs98Percent)
{
    // §III: "this approach ensures that 98% of applications incur <5%
    // slowdown with CXL" (weighted by fleet core-hours).
    const double share = policy_.fleetShareBelowSlowdown(cxl_sku_);
    EXPECT_NEAR(share, 0.98, 0.015);
}

TEST_F(TieringTest, LooserThresholdCoversEveryone)
{
    EXPECT_NEAR(policy_.fleetShareBelowSlowdown(cxl_sku_, 1.5), 1.0,
                1e-9);
}

TEST_F(TieringTest, NoCxlSkuHasNoSlowdownAnywhere)
{
    EXPECT_DOUBLE_EQ(policy_.fleetShareBelowSlowdown(no_cxl_sku_), 1.0);
}

TEST_F(TieringTest, WithoutPredictorEverythingSpills)
{
    // Disable the untouched-memory predictor: the full CXL share lands
    // on touched memory; sensitive apps slow down even at mean touch.
    TieringConfig cfg;
    cfg.untouched_claim_fraction = 0.0;
    const MemoryTieringPolicy naive(cfg);
    const auto d = naive.decide(perf::AppCatalog::byName("Moses"), 0.55,
                                cxl_sku_);
    EXPECT_GT(d.slowdown, 1.15);
    EXPECT_LT(naive.fleetShareBelowSlowdown(cxl_sku_), 0.7);
}

TEST_F(TieringTest, InputValidation)
{
    EXPECT_THROW(policy_.decide(perf::AppCatalog::byName("Moses"), -0.1,
                                cxl_sku_),
                 UserError);
    EXPECT_THROW(policy_.decide(perf::AppCatalog::byName("Moses"), 1.1,
                                cxl_sku_),
                 UserError);
    EXPECT_THROW(policy_.fleetShareBelowSlowdown(cxl_sku_, 0.9),
                 UserError);
    TieringConfig bad;
    bad.untouched_claim_fraction = 1.5;
    EXPECT_THROW(MemoryTieringPolicy{bad}, UserError);
}

} // namespace
} // namespace gsku::gsf
