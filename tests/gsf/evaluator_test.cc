/** @file End-to-end GSF evaluation: Figs. 11/12 qualitative invariants. */
#include <gtest/gtest.h>

#include "cluster/trace_gen.h"

#include "common/error.h"
#include "gsf/evaluator.h"

namespace gsku::gsf {
namespace {

class EvaluatorTest : public ::testing::Test
{
  protected:
    EvaluatorTest()
    {
        cluster::TraceGenParams p;
        p.target_concurrent_vms = 150.0;
        p.duration_h = 24.0 * 7.0;
        trace_ = cluster::TraceGenerator(p).generate(33);
    }

    cluster::VmTrace trace_;
    GsfEvaluator evaluator_{GsfEvaluator::Options{}};
    carbon::ServerSku baseline_ = carbon::StandardSkus::baseline();
};

TEST_F(EvaluatorTest, FullSavesAtAverageIntensity)
{
    const auto eval = evaluator_.evaluateCluster(
        trace_, baseline_, carbon::StandardSkus::greenFull(),
        CarbonIntensity::kgPerKwh(0.1));
    EXPECT_GT(eval.savings, 0.04);
    EXPECT_LT(eval.savings, 0.26);   // Bounded by per-core savings.
    EXPECT_LT(eval.mixed_scenario_emissions.asKg(),
              eval.baseline_scenario_emissions.asKg());
}

TEST_F(EvaluatorTest, ReuseWinsAtLowIntensity)
{
    // Fig. 11/12: at low CI, embodied dominates; Full > CXL > Efficient.
    const CarbonIntensity low = CarbonIntensity::kgPerKwh(0.0);
    const double full =
        evaluator_
            .evaluateCluster(trace_, baseline_,
                             carbon::StandardSkus::greenFull(), low)
            .savings;
    const double cxl =
        evaluator_
            .evaluateCluster(trace_, baseline_,
                             carbon::StandardSkus::greenCxl(), low)
            .savings;
    const double eff =
        evaluator_
            .evaluateCluster(trace_, baseline_,
                             carbon::StandardSkus::greenEfficient(), low)
            .savings;
    EXPECT_GT(full, cxl);
    EXPECT_GT(cxl, eff);
    EXPECT_GT(full, 0.12);
}

TEST_F(EvaluatorTest, SavingsDeclineWithIntensityForReuseSkus)
{
    // Reuse SKUs save embodied carbon, so their advantage shrinks as
    // operational emissions grow.
    const auto green = carbon::StandardSkus::greenFull();
    double prev = 1.0;
    for (double ci : {0.0, 0.1, 0.3, 0.6}) {
        const double s =
            evaluator_
                .evaluateCluster(trace_, baseline_, green,
                                 CarbonIntensity::kgPerKwh(ci))
                .savings;
        EXPECT_LT(s, prev);
        prev = s;
    }
}

TEST_F(EvaluatorTest, BuffersScaleWithClusterCapacity)
{
    const auto eval = evaluator_.evaluateCluster(
        trace_, baseline_, carbon::StandardSkus::greenFull(),
        CarbonIntensity::kgPerKwh(0.1));
    EXPECT_GT(eval.baseline_scenario_buffer, 0);
    EXPECT_GT(eval.mixed_scenario_buffer, 0);
}

TEST_F(EvaluatorTest, DeploymentEmissionsIncludeOosOverhead)
{
    GsfEvaluator::Options no_failures;
    no_failures.afr_params.other_afr = 1e-9;
    no_failures.afr_params.dimm_afr = 0.0;
    no_failures.afr_params.ssd_afr = 0.0;
    const GsfEvaluator healthy(no_failures);

    const auto sku = carbon::StandardSkus::baseline();
    const CarbonIntensity ci = CarbonIntensity::kgPerKwh(0.1);
    EXPECT_GT(evaluator_.deploymentEmissions(sku, 10, ci).asKg(),
              healthy.deploymentEmissions(sku, 10, ci).asKg());
}

TEST_F(EvaluatorTest, SweepCachesAcrossIntensities)
{
    // A fine CI grid must not blow up runtime: sizing is cached per
    // adoption signature. 12 points over one trace finishes quickly.
    std::vector<double> grid;
    for (int i = 0; i <= 11; ++i) {
        grid.push_back(0.05 * i);
    }
    const auto sweep =
        evaluator_.sweep({trace_}, baseline_,
                         carbon::StandardSkus::greenFull(), grid);
    ASSERT_EQ(sweep.mean_savings.size(), grid.size());
    // Monotone non-increasing in CI for the reuse-heavy SKU.
    for (std::size_t i = 1; i < sweep.mean_savings.size(); ++i) {
        EXPECT_LE(sweep.mean_savings[i], sweep.mean_savings[i - 1] + 1e-9);
    }
    EXPECT_GT(GsfEvaluator::meanSavings(sweep), 0.0);
}

TEST_F(EvaluatorTest, SweepValidatesInputs)
{
    EXPECT_THROW(evaluator_.sweep({}, baseline_,
                                  carbon::StandardSkus::greenFull(),
                                  {0.1}),
                 UserError);
    EXPECT_THROW(evaluator_.sweep({trace_}, baseline_,
                                  carbon::StandardSkus::greenFull(), {}),
                 UserError);
}

TEST_F(EvaluatorTest, OptionsValidated)
{
    GsfEvaluator::Options bad;
    bad.buffer.buffer_fraction = 1.0;
    EXPECT_THROW(GsfEvaluator{bad}, UserError);
}

TEST_F(EvaluatorTest, DcLevelSavingsFromClusterSavings)
{
    // The §VI chain: cluster savings -> DC savings via compute share.
    const auto eval = evaluator_.evaluateCluster(
        trace_, baseline_, carbon::StandardSkus::greenFull(),
        CarbonIntensity::kgPerKwh(0.1));
    const carbon::DataCenterModel dc;
    const double dc_savings =
        dc.dcSavings(carbon::FleetComposition{}, eval.savings);
    EXPECT_GT(dc_savings, 0.0);
    EXPECT_LT(dc_savings, eval.savings);
}

} // namespace
} // namespace gsku::gsf
