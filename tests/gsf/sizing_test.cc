/** @file Cluster-sizing search (§V): minimality and correctness. */
#include <gtest/gtest.h>

#include "cluster/trace_gen.h"
#include "common/contracts.h"
#include "common/error.h"
#include "gsf/adoption.h"
#include "gsf/sizing.h"

namespace gsku::gsf {
namespace {

class SizingTest : public ::testing::Test
{
  protected:
    SizingTest()
    {
        cluster::TraceGenParams p;
        p.target_concurrent_vms = 120.0;
        p.duration_h = 24.0 * 7.0;
        trace_ = cluster::TraceGenerator(p).generate(21);
    }

    cluster::VmTrace trace_;
    ClusterSizer sizer_;
    carbon::ServerSku baseline_ = carbon::StandardSkus::baseline();
    carbon::ServerSku green_ = carbon::StandardSkus::greenFull();
    perf::PerfModel perf_;
    carbon::CarbonModel carbon_;
    AdoptionModel adoption_{perf_, carbon_};
};

TEST_F(SizingTest, BaselineOnlyIsMinimal)
{
    const int n = sizer_.rightSizeBaselineOnly(trace_, baseline_);
    ASSERT_GT(n, 0);

    cluster::VmAllocator alloc;
    const auto fits = alloc.replay(
        trace_, {baseline_, green_, n, 0}, cluster::AdoptionTable::none());
    EXPECT_TRUE(fits.success);
    const auto tight = alloc.replay(trace_, {baseline_, green_, n - 1, 0},
                                    cluster::AdoptionTable::none());
    EXPECT_FALSE(tight.success);
}

TEST_F(SizingTest, BaselineCountCoversPeakDemand)
{
    const int n = sizer_.rightSizeBaselineOnly(trace_, baseline_);
    // Capacity must at least cover the peak concurrent core demand.
    EXPECT_GE(n * baseline_.cores, trace_.peakConcurrentCores());
    // And should not exceed it by more than ~2x (packing is imperfect
    // but not pathological).
    EXPECT_LE(n * baseline_.cores, 2 * trace_.peakConcurrentCores() + 160);
}

TEST_F(SizingTest, MixedClusterHostsTraceMinimally)
{
    const auto table = adoption_.buildTable(baseline_, green_,
                                            CarbonIntensity::kgPerKwh(0.1));
    const SizingResult r = sizer_.size(trace_, baseline_, green_, table);

    EXPECT_TRUE(r.mixed_replay.success);
    EXPECT_TRUE(r.baseline_only_replay.success);
    EXPECT_LE(r.mixed_baselines, r.baseline_only_servers);
    EXPECT_GT(r.mixed_greens, 0);

    // Minimality in greens: one fewer green must fail.
    if (r.mixed_greens > 0) {
        cluster::VmAllocator alloc;
        const auto tight = alloc.replay(
            trace_,
            {baseline_, green_, r.mixed_baselines, r.mixed_greens - 1},
            table);
        EXPECT_FALSE(tight.success);
    }
}

TEST_F(SizingTest, NoAdoptionMeansNoGreens)
{
    const SizingResult r = sizer_.size(trace_, baseline_, green_,
                                       cluster::AdoptionTable::none());
    EXPECT_EQ(r.mixed_greens, 0);
    EXPECT_EQ(r.mixed_baselines, r.baseline_only_servers);
}

TEST_F(SizingTest, MoreAdoptionMeansFewerBaselines)
{
    const auto none = sizer_.size(trace_, baseline_, green_,
                                  cluster::AdoptionTable::none());
    const auto table = adoption_.buildTable(
        baseline_, green_, CarbonIntensity::kgPerKwh(0.0));
    const auto full = sizer_.size(trace_, baseline_, green_, table);
    EXPECT_LT(full.mixed_baselines, none.mixed_baselines);
}

TEST_F(SizingTest, IncrementalProcedureAgreesWithBisection)
{
    // The paper's literal replace-one-baseline-at-a-time walk and the
    // bisection search must right-size to comparable clusters: same
    // residual baselines (both find the non-adopter floor) and green
    // counts within the walk's one-step granularity.
    const auto table = adoption_.buildTable(baseline_, green_,
                                            CarbonIntensity::kgPerKwh(0.1));
    const SizingResult fast = sizer_.size(trace_, baseline_, green_, table);
    const SizingResult slow =
        sizer_.sizeIncremental(trace_, baseline_, green_, table);

    EXPECT_EQ(slow.baseline_only_servers, fast.baseline_only_servers);
    EXPECT_EQ(slow.mixed_baselines, fast.mixed_baselines);
    EXPECT_NEAR(slow.mixed_greens, fast.mixed_greens, 1);
    EXPECT_TRUE(slow.mixed_replay.success);
}

TEST_F(SizingTest, ReplaysExposePackingMetrics)
{
    const auto table = adoption_.buildTable(baseline_, green_,
                                            CarbonIntensity::kgPerKwh(0.1));
    const SizingResult r = sizer_.size(trace_, baseline_, green_, table);
    EXPECT_GT(r.baseline_only_replay.baseline.mean_core_packing, 0.3);
    EXPECT_GT(r.mixed_replay.green.mean_core_packing, 0.3);
    EXPECT_GT(r.mixed_replay.green.mean_max_mem_utilization, 0.0);
}

TEST_F(SizingTest, CorruptSizingResultViolatesContract)
{
    if (!contracts::enabled()) {
        GTEST_SKIP() << "contracts compiled out (GSKU_CONTRACTS=OFF)";
    }
    const auto table = adoption_.buildTable(baseline_, green_,
                                            CarbonIntensity::kgPerKwh(0.1));
    SizingResult r = sizer_.size(trace_, baseline_, green_, table);
    EXPECT_NO_THROW(r.checkInvariants());

    SizingResult empty_cluster = r;
    empty_cluster.baseline_only_servers = 0;
    EXPECT_THROW(empty_cluster.checkInvariants(), InternalError);

    SizingResult grew_baselines = r;
    grew_baselines.mixed_baselines = grew_baselines.baseline_only_servers + 1;
    EXPECT_THROW(grew_baselines.checkInvariants(), InternalError);

    SizingResult failed_replay = r;
    failed_replay.mixed_replay.success = false;
    EXPECT_THROW(failed_replay.checkInvariants(), InternalError);
}

} // namespace
} // namespace gsku::gsf
