/** @file One-call reproduction report tests. */
#include <gtest/gtest.h>

#include "common/error.h"
#include "gsf/report.h"

namespace gsku::gsf {
namespace {

class ReportTest : public ::testing::Test
{
  protected:
    static const ReproductionReport &
    report()
    {
        // Generated once; the pipeline takes a few seconds.
        static const ReproductionReport r = [] {
            ReportOptions options;
            options.traces = 2;
            options.trace_concurrent_vms = 150.0;
            options.ci_grid = {0.0, 0.1, 0.2, 0.3};
            return generateReport(options);
        }();
        return r;
    }
};

TEST_F(ReportTest, WorkedExampleFieldsMatchPaper)
{
    const auto &r = report();
    EXPECT_NEAR(r.example_server_power.asWatts(), 403.0, 4.0);
    EXPECT_NEAR(r.example_server_embodied.asKg(), 1644.0, 5.0);
    EXPECT_EQ(r.example_servers_per_rack, 16);
    EXPECT_NEAR(r.example_rack_per_core.asKg(), 31.0, 0.5);
}

TEST_F(ReportTest, SavingsTableComplete)
{
    const auto &r = report();
    ASSERT_EQ(r.savings_table.size(), 5u);
    EXPECT_NEAR(r.savings_table.back().total_savings, 0.26, 0.02);
}

TEST_F(ReportTest, ScalingDigestMatchesTableIii)
{
    const auto &r = report();
    // 57 cells; 4 infeasible (Silo x3, Masstree vs Gen3); 37 unscaled
    // (19 vs Gen1 minus Silo = 18, 15 vs Gen2, wait — pinned from the
    // exact Table III: Gen1 has 18 ones, Gen2 has 15, Gen3 has 6).
    EXPECT_EQ(r.scaling_cells_feasible, 53);
    EXPECT_EQ(r.scaling_cells_unscaled, 18 + 15 + 6);
}

TEST_F(ReportTest, MaintenanceAndCxlHeadlines)
{
    const auto &r = report();
    EXPECT_NEAR(r.baseline_afr, 4.8, 1e-9);
    EXPECT_NEAR(r.green_full_afr, 7.2, 1e-9);
    EXPECT_NEAR(r.tiering_share_under_5pct, 0.98, 0.015);
    EXPECT_NEAR(r.cxl_tolerant_core_hours, 0.202, 0.015);
}

TEST_F(ReportTest, ClusterAndDcSavingsPlausible)
{
    const auto &r = report();
    // The test config uses tiny traces (150 VMs, 2 clusters) where
    // integer-server granularity dilutes savings; the bench defaults
    // land near the paper's numbers.
    EXPECT_GT(r.cluster_savings_at_mean_ci, 0.015);
    EXPECT_GT(r.mean_cluster_savings, 0.03);
    EXPECT_LT(r.mean_cluster_savings, 0.26);
    EXPECT_GT(r.dc_savings, 0.02);
    EXPECT_LT(r.dc_savings, r.mean_cluster_savings);
}

TEST_F(ReportTest, AlternativesInPaperBallpark)
{
    const auto &r = report();
    EXPECT_NEAR(r.lifetime_equivalent_years, 13.0, 1.5);
    EXPECT_GT(r.efficiency_equivalent, 0.05);
    EXPECT_GT(r.renewables_equivalent_pp, 0.01);
}

TEST_F(ReportTest, RenderMentionsEveryHeadline)
{
    const std::string text = report().render();
    for (const char *needle :
         {"worked example", "Table VIII", "Table III", "Maintenance",
          "CXL", "Cluster", "VII-B", "GreenSKU-Full"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

TEST_F(ReportTest, OptionsValidated)
{
    ReportOptions bad;
    bad.traces = 0;
    EXPECT_THROW(generateReport(bad), UserError);
    bad = ReportOptions{};
    bad.ci_grid.clear();
    EXPECT_THROW(generateReport(bad), UserError);
}

} // namespace
} // namespace gsku::gsf
