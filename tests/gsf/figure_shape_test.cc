/**
 * @file
 * Figure-level integration tests: run the Figs. 9/10 pipelines on a
 * small trace family and assert the *shape claims* the paper draws from
 * those figures. These are the automated versions of the bench
 * binaries' "paper anchor" footnotes.
 */
#include <gtest/gtest.h>

#include "cluster/trace_gen.h"
#include "common/stats.h"
#include "gsf/adoption.h"
#include "gsf/sizing.h"

namespace gsku::gsf {
namespace {

class FigureShapeTest : public ::testing::Test
{
  protected:
    FigureShapeTest()
    {
        cluster::TraceGenParams params;
        params.target_concurrent_vms = 200.0;
        params.duration_h = 24.0 * 10.0;
        traces_ = cluster::TraceGenerator(params).generateFamily(8, 2024);
    }

    std::vector<cluster::VmTrace> traces_;
    carbon::CarbonModel carbon_;
    perf::PerfModel perf_;
    AdoptionModel adoption_{perf_, carbon_};
    ClusterSizer sizer_;
    carbon::ServerSku baseline_ = carbon::StandardSkus::baseline();
};

TEST_F(FigureShapeTest, Fig9PackingTradeoff)
{
    // Fig. 9's claim: GreenSKU-Full trades better memory packing for
    // worse core packing (memory:core 8 vs 9.6), on average across
    // traces.
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const auto table = adoption_.buildTable(baseline_, green,
                                            CarbonIntensity::kgPerKwh(0.1));
    OnlineStats base_core;
    OnlineStats base_mem;
    OnlineStats green_core;
    OnlineStats green_mem;
    for (const auto &trace : traces_) {
        const SizingResult r = sizer_.size(trace, baseline_, green, table);
        base_core.add(r.baseline_only_replay.baseline.mean_core_packing);
        base_mem.add(r.baseline_only_replay.baseline.mean_mem_packing);
        green_core.add(r.mixed_replay.green.mean_core_packing);
        green_mem.add(r.mixed_replay.green.mean_mem_packing);
    }
    EXPECT_LT(green_core.mean(), base_core.mean());
    EXPECT_GT(green_mem.mean(), base_mem.mean());
    // Both clusters pack cores far better than memory (§II
    // underutilization of memory capacity at the 9.6 ratio).
    EXPECT_GT(base_core.mean(), base_mem.mean());
}

TEST_F(FigureShapeTest, Fig10MemoryDemandFitsLocalDdr5)
{
    // Fig. 10's claim: almost all servers can serve their VMs' touched
    // memory from local DDR5; at most a small minority of traces dip
    // into the 25% CXL-backed region.
    const carbon::ServerSku green = carbon::StandardSkus::greenCxl();
    const double local_fraction = 1.0 - green.cxlMemoryFraction();
    const auto table = adoption_.buildTable(baseline_, green,
                                            CarbonIntensity::kgPerKwh(0.1));
    int need_cxl = 0;
    OnlineStats util;
    for (const auto &trace : traces_) {
        const SizingResult r = sizer_.size(trace, baseline_, green, table);
        const double u =
            r.mixed_replay.green.mean_max_mem_utilization;
        util.add(u);
        need_cxl += u > local_fraction ? 1 : 0;
    }
    EXPECT_LT(util.mean(), 0.6);            // "below 60%" anchor.
    EXPECT_LE(need_cxl, 1);                 // "~3% of traces" anchor.
}

TEST_F(FigureShapeTest, MixedClustersAlwaysShrinkTheFleet)
{
    // Across every trace, the mixed cluster must use fewer baselines
    // than the all-baseline cluster, and its total core capacity must
    // stay within the 1.5x scaling envelope.
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const auto table = adoption_.buildTable(baseline_, green,
                                            CarbonIntensity::kgPerKwh(0.1));
    for (const auto &trace : traces_) {
        const SizingResult r = sizer_.size(trace, baseline_, green, table);
        EXPECT_LT(r.mixed_baselines, r.baseline_only_servers)
            << trace.name;
        const int mixed_cores = r.mixed_baselines * baseline_.cores +
                                r.mixed_greens * green.cores;
        const int base_cores =
            r.baseline_only_servers * baseline_.cores;
        EXPECT_LT(mixed_cores, base_cores * 3 / 2) << trace.name;
    }
}

} // namespace
} // namespace gsku::gsf
