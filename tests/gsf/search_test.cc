/**
 * @file
 * Simulated-annealing search engine tests (gsf/search.h + pareto.h):
 * seeded determinism, Pareto dominance-filter properties, agreement
 * with the exhaustive explorer, cold/warm eval-cache parity, and the
 * search.move ledger surface.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "gsf/design_space.h"
#include "gsf/eval_cache.h"
#include "gsf/pareto.h"
#include "gsf/search.h"
#include "obs/ledger.h"

namespace gsku::gsf {
namespace {

/** A small range that keeps each anneal well under a second. */
DesignRange
smallRange()
{
    DesignRange range;
    range.ddr5_dimms = {10, 12, 14};
    range.cxl_ddr4_dimms = {0, 4};
    range.new_ssds = {0, 2};
    range.reused_ssds = {0, 8};
    return range;
}

class SearchTest : public ::testing::Test
{
  protected:
    carbon::ServerSku baseline_ = carbon::StandardSkus::baseline();
    SkuSearch search_;
};

TEST_F(SearchTest, SameSeedIsByteIdentical)
{
    SearchOptions options;
    options.range = smallRange();
    options.seed = 17;

    const SearchResult a = search_.anneal(baseline_, options);
    const SearchResult b = search_.anneal(baseline_, options);
    ASSERT_TRUE(a.found);
    EXPECT_EQ(a.best.sku.name, b.best.sku.name);
    EXPECT_EQ(a.best.savings.total_savings, b.best.savings.total_savings);
    EXPECT_EQ(a.archive.render(), b.archive.render());
    EXPECT_EQ(a.stats.moves, b.stats.moves);
    EXPECT_EQ(a.stats.accepted, b.stats.accepted);
    EXPECT_EQ(a.stats.rejected, b.stats.rejected);
    EXPECT_EQ(a.stats.evaluations, b.stats.evaluations);
}

TEST_F(SearchTest, FindsTheExhaustiveOptimumOnTheDefaultRange)
{
    // The correctness anchor (also gated by bench_search): on the
    // default DesignRange with default options, SA must land on
    // explore()'s rank-1 design exactly — name and savings bits.
    DesignSpaceExplorer explorer(search_.carbonModel(),
                                 search_.constraints());
    const std::vector<RankedDesign> exhaustive =
        explorer.explore(baseline_);
    ASSERT_FALSE(exhaustive.empty());

    const SearchResult result = search_.anneal(baseline_);
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.best.sku.name, exhaustive.front().sku.name);
    EXPECT_EQ(result.best.savings.total_savings,
              exhaustive.front().savings.total_savings);
    EXPECT_GT(result.stats.evaluations, 0);
    EXPECT_GT(result.stats.accepted, 0);
    EXPECT_GE(result.archive.size(), 1u);
    // Every archive point names a design the exhaustive ranking knows.
    for (const ParetoPoint &point : result.archive.points()) {
        const bool known = std::any_of(
            exhaustive.begin(), exhaustive.end(),
            [&](const RankedDesign &d) { return d.sku.name == point.name; });
        EXPECT_TRUE(known) << point.name;
    }
}

TEST_F(SearchTest, InfeasibleRangeReportsNotFound)
{
    // 6 x 64 GB = 3 GB/core with zero storage: every lattice point
    // violates the constraints, so no restart can even start.
    SearchOptions options;
    options.range.ddr5_dimms = {6};
    options.range.cxl_ddr4_dimms = {0};
    options.range.new_ssds = {0};
    options.range.reused_ssds = {0};

    const SearchResult result = search_.anneal(baseline_, options);
    EXPECT_FALSE(result.found);
    EXPECT_EQ(result.archive.size(), 0u);
    EXPECT_EQ(result.stats.evaluations, 0);
    EXPECT_EQ(result.stats.accepted, 0);
}

TEST_F(SearchTest, Validation)
{
    SearchOptions bad;
    bad.restarts = 0;
    EXPECT_THROW(search_.anneal(baseline_, bad), UserError);
    bad = SearchOptions{};
    bad.cooling = 1.0;
    EXPECT_THROW(search_.anneal(baseline_, bad), UserError);
    bad = SearchOptions{};
    bad.initial_temperature = 0.0;
    EXPECT_THROW(search_.anneal(baseline_, bad), UserError);
    bad = SearchOptions{};
    bad.range.new_ssds.clear();
    EXPECT_THROW(search_.anneal(baseline_, bad), UserError);
}

TEST_F(SearchTest, LedgerRecordsSearchMoves)
{
    SearchOptions options;
    options.range = smallRange();
    options.restarts = 2;
    options.steps = 30;

    obs::startLedger();
    search_.anneal(baseline_, options);
    const std::string ledger = obs::renderLedger();
    obs::stopLedger();

    EXPECT_NE(ledger.find("\"event\": \"search.move\""),
              std::string::npos);
    EXPECT_NE(ledger.find("\"move\": \"start\""), std::string::npos);
    // Candidate names in move facts join with design.verdict facts:
    // same naming scheme, including for infeasible candidates.
    EXPECT_NE(ledger.find("\"candidate\": \"B/"), std::string::npos);
    EXPECT_NE(ledger.find("x32cxl/"), std::string::npos);
}

TEST_F(SearchTest, ColdAndWarmEvalCacheRunsAreByteIdentical)
{
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() / "gsku_search_evalcache").string();
    fs::remove_all(dir);
    configureEvalCache(dir);

    SearchOptions options;
    options.range = smallRange();

    struct Run
    {
        std::string best;
        double savings = 0.0;
        std::string archive;
        long evaluations = 0;
        std::string ledger;
    };
    auto run_once = [&] {
        Run r;
        obs::startLedger();
        const SearchResult result = search_.anneal(baseline_, options);
        r.best = result.best.sku.name;
        r.savings = result.best.savings.total_savings;
        r.archive = result.archive.render();
        r.evaluations = result.stats.evaluations;
        r.ledger = obs::renderLedger();
        obs::stopLedger();
        return r;
    };

    const Run cold = run_once();    // Populates the cache.
    const Run warm = run_once();    // Served from disk.
    configureEvalCache("");
    fs::remove_all(dir);

    EXPECT_EQ(cold.best, warm.best);
    EXPECT_EQ(cold.savings, warm.savings);
    EXPECT_EQ(cold.archive, warm.archive);
    EXPECT_EQ(cold.evaluations, warm.evaluations);
    // The ledger must be byte-identical too: payloads replay the
    // captured carbon/tco/perf facts on hits.
    EXPECT_EQ(cold.ledger, warm.ledger);
    EXPECT_FALSE(cold.ledger.empty());
    EXPECT_NE(cold.ledger.find("\"kind\": \"search_eval\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Pareto archive properties.

ParetoPoint
point(const std::string &name, double carbon, double tco, double margin)
{
    ParetoPoint p;
    p.name = name;
    p.objectives.carbon_per_core_kg = carbon;
    p.objectives.tco_per_core_usd = tco;
    p.objectives.slo_margin = margin;
    return p;
}

TEST(ParetoTest, DominanceIsStrictAndDirectional)
{
    const SearchObjectives better = point("", 1.0, 1.0, 0.5).objectives;
    const SearchObjectives worse = point("", 2.0, 2.0, 0.0).objectives;
    const SearchObjectives mixed = point("", 0.5, 3.0, 0.0).objectives;

    EXPECT_TRUE(ParetoArchive::dominates(better, worse));
    EXPECT_FALSE(ParetoArchive::dominates(worse, better));
    // Trade-offs dominate in neither direction.
    EXPECT_FALSE(ParetoArchive::dominates(better, mixed));
    EXPECT_FALSE(ParetoArchive::dominates(mixed, better));
    // Equal objectives: no strict improvement, no dominance.
    EXPECT_FALSE(ParetoArchive::dominates(better, better));
}

TEST(ParetoTest, InsertKeepsOnlyTheFrontier)
{
    ParetoArchive archive;
    EXPECT_TRUE(archive.insert(point("a", 2.0, 2.0, 0.0)));
    // Dominated on arrival: rejected.
    EXPECT_FALSE(archive.insert(point("b", 3.0, 3.0, -0.5)));
    // A trade-off joins.
    EXPECT_TRUE(archive.insert(point("c", 3.0, 1.0, 0.0)));
    EXPECT_EQ(archive.size(), 2u);
    // A dominator evicts what it beats ("a"), keeps the trade-off.
    EXPECT_TRUE(archive.insert(point("d", 1.0, 2.0, 0.5)));
    const std::vector<ParetoPoint> points = archive.points();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].name, "d");
    EXPECT_EQ(points[1].name, "c");
    // Same name resubmitted: collapses, no duplicate.
    EXPECT_FALSE(archive.insert(point("d", 1.0, 2.0, 0.5)));
    EXPECT_EQ(archive.size(), 2u);
}

TEST(ParetoTest, ArchiveIsInsertionOrderIndependent)
{
    // Property test: shuffling the insertion order never changes the
    // rendered frontier — the archive is a set.
    std::vector<ParetoPoint> points;
    Rng gen(123);
    for (int i = 0; i < 40; ++i) {
        points.push_back(point("p" + std::to_string(i),
                               1.0 + gen.uniform(),
                               100.0 + 10.0 * gen.uniform(),
                               gen.uniform() - 0.5));
    }

    ParetoArchive reference;
    for (const ParetoPoint &p : points) {
        reference.insert(p);
    }
    const std::string expected = reference.render();
    EXPECT_FALSE(expected.empty());

    for (int trial = 0; trial < 10; ++trial) {
        // Fisher-Yates with the repo Rng (std <random> is banned in
        // model code; keep tests on the same primitive).
        for (std::size_t i = points.size() - 1; i > 0; --i) {
            std::swap(points[i], points[gen.uniformInt(i + 1)]);
        }
        ParetoArchive shuffled;
        for (const ParetoPoint &p : points) {
            shuffled.insert(p);
        }
        ASSERT_EQ(shuffled.render(), expected);
    }

    // Frontier invariant: no surviving point dominates another.
    const std::vector<ParetoPoint> frontier = reference.points();
    for (const ParetoPoint &a : frontier) {
        for (const ParetoPoint &b : frontier) {
            EXPECT_FALSE(ParetoArchive::dominates(a.objectives,
                                                  b.objectives) &&
                         a.name != b.name)
                << a.name << " dominates " << b.name;
        }
    }
}

TEST(ParetoTest, MergeEqualsBulkInsert)
{
    ParetoArchive left;
    left.insert(point("a", 1.0, 2.0, 0.1));
    left.insert(point("b", 2.0, 1.0, 0.1));
    ParetoArchive right;
    right.insert(point("c", 0.5, 3.0, 0.1));
    right.insert(point("d", 3.0, 3.0, -0.5));   // Dominated by a and b.

    ParetoArchive merged = left;
    merged.merge(right);

    ParetoArchive bulk;
    for (const char *name : {"a", "b", "c", "d"}) {
        const double carbon = name[0] == 'a'   ? 1.0
                              : name[0] == 'b' ? 2.0
                              : name[0] == 'c' ? 0.5
                                               : 3.0;
        const double tco = name[0] == 'a'   ? 2.0
                           : name[0] == 'b' ? 1.0
                           : name[0] == 'c' ? 3.0
                                            : 3.0;
        bulk.insert(point(name, carbon, tco,
                          name[0] == 'd' ? -0.5 : 0.1));
    }
    EXPECT_EQ(merged.render(), bulk.render());
    EXPECT_EQ(merged.size(), 3u);
}

TEST(ParetoTest, RejectsNonFiniteObjectives)
{
    ParetoArchive archive;
    EXPECT_THROW(archive.insert(point(
                     "nan", std::numeric_limits<double>::quiet_NaN(),
                     1.0, 0.0)),
                 UserError);
    EXPECT_THROW(archive.insert(point(
                     "inf", 1.0,
                     std::numeric_limits<double>::infinity(), 0.0)),
                 UserError);
}

} // namespace
} // namespace gsku::gsf
