/**
 * @file
 * Serial-vs-parallel parity: the worker pool's determinism contract
 * (common/parallel.h) says parallel and serial runs are byte-identical.
 * This test runs the three parallelized engines — the GSF intensity
 * sweep, the design-space exploration, and the Monte-Carlo failure
 * trials — at 1 and 4 global-pool threads and requires bit-equal
 * results (EXPECT_EQ on doubles, not EXPECT_NEAR: last-bit differences
 * are failures).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "cluster/allocator.h"
#include "cluster/trace_binary.h"
#include "cluster/trace_gen.h"
#include "cluster/trace_io.h"
#include "common/parallel.h"
#include "gsf/design_space.h"
#include "gsf/eval_cache.h"
#include "gsf/evaluator.h"
#include "gsf/search.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "reliability/failure_sim.h"

namespace gsku {
namespace {

/** Runs @p body at 1 thread and at 4 threads, restoring the global
 *  pool afterwards, and returns both results. */
template <typename T, typename Fn>
std::pair<T, T>
atOneAndFourThreads(const Fn &body)
{
    const int original = ThreadPool::global().threads();
    ThreadPool::resetGlobal(1);
    T serial = body();
    ThreadPool::resetGlobal(4);
    T parallel = body();
    ThreadPool::resetGlobal(original);
    return {std::move(serial), std::move(parallel)};
}

TEST(ParallelParityTest, IntensitySweepIsByteIdentical)
{
    cluster::TraceGenParams params;
    params.target_concurrent_vms = 150.0;
    params.duration_h = 24.0 * 3.0;
    const auto traces =
        cluster::TraceGenerator(params).generateFamily(4, /*base_seed=*/3);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const std::vector<double> grid = {0.05, 0.15, 0.3};

    const auto [serial, parallel] =
        atOneAndFourThreads<gsf::IntensitySweep>([&] {
            const gsf::GsfEvaluator evaluator{gsf::GsfEvaluator::Options{}};
            return evaluator.sweep(traces, baseline, green, grid);
        });

    EXPECT_EQ(serial.sku_name, parallel.sku_name);
    ASSERT_EQ(serial.intensities.size(), parallel.intensities.size());
    ASSERT_EQ(serial.mean_savings.size(), parallel.mean_savings.size());
    for (std::size_t i = 0; i < serial.mean_savings.size(); ++i) {
        EXPECT_EQ(serial.intensities[i], parallel.intensities[i]);
        EXPECT_EQ(serial.mean_savings[i], parallel.mean_savings[i]);
    }
}

TEST(ParallelParityTest, DesignSpaceExplorationIsByteIdentical)
{
    const carbon::CarbonModel model;
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    gsf::DesignRange range;        // Trimmed range to keep the test fast.
    range.ddr5_dimms = {8, 10, 12};
    range.cxl_ddr4_dimms = {0, 8};
    range.new_ssds = {2, 4};
    range.reused_ssds = {0, 8};

    struct Outcome
    {
        std::vector<gsf::RankedDesign> designs;
        long considered = 0;
    };
    const auto [serial, parallel] = atOneAndFourThreads<Outcome>([&] {
        Outcome o;
        const gsf::DesignSpaceExplorer explorer(model);
        o.designs = explorer.explore(baseline, range, &o.considered);
        return o;
    });

    EXPECT_EQ(serial.considered, parallel.considered);
    ASSERT_EQ(serial.designs.size(), parallel.designs.size());
    for (std::size_t i = 0; i < serial.designs.size(); ++i) {
        EXPECT_EQ(serial.designs[i].sku.name, parallel.designs[i].sku.name);
        EXPECT_EQ(serial.designs[i].savings.total_savings,
                  parallel.designs[i].savings.total_savings);
        EXPECT_EQ(serial.designs[i].savings.operational_savings,
                  parallel.designs[i].savings.operational_savings);
        EXPECT_EQ(serial.designs[i].savings.embodied_savings,
                  parallel.designs[i].savings.embodied_savings);
    }
}

TEST(ParallelParityTest, SimulatedAnnealingSearchIsByteIdentical)
{
    // The SA engine pre-forks one Rng stream per restart and merges
    // restart outcomes in restart-index order, so the best design, the
    // rendered Pareto archive, and every move counter must be
    // byte-identical at any thread count.
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    gsf::SearchOptions options;
    options.seed = 29;
    options.range.ddr5_dimms = {10, 12, 14, 16};
    options.range.cxl_ddr4_dimms = {0, 4, 8};
    options.range.new_ssds = {0, 2};
    options.range.reused_ssds = {0, 8};

    struct Outcome
    {
        std::string best;
        double savings = 0.0;
        std::string archive;
        gsf::SearchStats stats;
    };
    const auto [serial, parallel] = atOneAndFourThreads<Outcome>([&] {
        const gsf::SkuSearch search;
        const gsf::SearchResult result = search.anneal(baseline, options);
        return Outcome{result.best.sku.name,
                       result.best.savings.total_savings,
                       result.archive.render(), result.stats};
    });

    EXPECT_FALSE(serial.best.empty());
    EXPECT_EQ(serial.best, parallel.best);
    EXPECT_EQ(serial.savings, parallel.savings);
    EXPECT_EQ(serial.archive, parallel.archive);
    EXPECT_EQ(serial.stats.moves, parallel.stats.moves);
    EXPECT_EQ(serial.stats.accepted, parallel.stats.accepted);
    EXPECT_EQ(serial.stats.rejected, parallel.stats.rejected);
    EXPECT_EQ(serial.stats.infeasible, parallel.stats.infeasible);
    EXPECT_EQ(serial.stats.evaluations, parallel.stats.evaluations);
}

TEST(ParallelParityTest, FailureTrialsAreByteIdentical)
{
    using reliability::MonthlyTrialStat;
    const auto [serial, parallel] =
        atOneAndFourThreads<std::vector<MonthlyTrialStat>>([] {
            reliability::FleetFailureSimulator sim(
                reliability::HazardParams{}, /*fleet_size=*/20000,
                /*seed=*/99);
            return sim.runTrials(/*trials=*/16, /*months=*/48);
        });

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t m = 0; m < serial.size(); ++m) {
        EXPECT_EQ(serial[m].trials, parallel[m].trials);
        EXPECT_EQ(serial[m].mean_failures, parallel[m].mean_failures);
        EXPECT_EQ(serial[m].mean_population, parallel[m].mean_population);
        EXPECT_EQ(serial[m].mean_raw_rate, parallel[m].mean_raw_rate);
        EXPECT_EQ(serial[m].mean_smoothed_rate,
                  parallel[m].mean_smoothed_rate);
        EXPECT_EQ(serial[m].min_smoothed_rate,
                  parallel[m].min_smoothed_rate);
        EXPECT_EQ(serial[m].max_smoothed_rate,
                  parallel[m].max_smoothed_rate);
    }
}

TEST(ParallelParityTest, ClusterSizingIsByteIdenticalAcrossThreads)
{
    cluster::TraceGenParams params;
    params.target_concurrent_vms = 120.0;
    params.duration_h = 24.0 * 3.0;
    const auto trace = cluster::TraceGenerator(params).generate(17);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const gsf::GsfEvaluator evaluator{gsf::GsfEvaluator::Options{}};

    const auto [serial, parallel] =
        atOneAndFourThreads<gsf::ClusterEvaluation>([&] {
            return evaluator.evaluateCluster(trace, baseline, green,
                                             CarbonIntensity::kgPerKwh(0.1));
        });
    EXPECT_EQ(serial.sizing.baseline_only_servers,
              parallel.sizing.baseline_only_servers);
    EXPECT_EQ(serial.sizing.mixed_baselines,
              parallel.sizing.mixed_baselines);
    EXPECT_EQ(serial.sizing.mixed_greens, parallel.sizing.mixed_greens);
    EXPECT_EQ(serial.savings, parallel.savings);
}

TEST(ParallelParityTest, ObservabilityLeavesOutputsByteIdentical)
{
    // Observability is strictly observational: enabling tracing and
    // resetting/snapshotting metrics must leave every model output
    // byte-identical, at 1 thread and at 4 threads.
    cluster::TraceGenParams params;
    params.target_concurrent_vms = 150.0;
    params.duration_h = 24.0 * 3.0;
    const auto traces =
        cluster::TraceGenerator(params).generateFamily(3, /*base_seed=*/5);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const std::vector<double> grid = {0.05, 0.15, 0.3};

    struct Outputs
    {
        gsf::IntensitySweep sweep;
        gsf::SizingResult sizing;
        std::vector<reliability::MonthlyTrialStat> trials;
    };
    auto run_all = [&]() {
        Outputs out;
        const gsf::GsfEvaluator evaluator{gsf::GsfEvaluator::Options{}};
        out.sweep = evaluator.sweep(traces, baseline, green, grid);
        const gsf::ClusterSizer sizer{cluster::ReplayOptions{}};
        out.sizing =
            sizer.size(traces.front(), baseline, green,
                       cluster::AdoptionTable::none());
        reliability::FleetFailureSimulator sim(
            reliability::HazardParams{}, /*fleet_size=*/20000,
            /*seed=*/99);
        out.trials = sim.runTrials(/*trials=*/8, /*months=*/24);
        return out;
    };
    auto expect_equal = [](const Outputs &a, const Outputs &b) {
        ASSERT_EQ(a.sweep.mean_savings.size(),
                  b.sweep.mean_savings.size());
        for (std::size_t i = 0; i < a.sweep.mean_savings.size(); ++i) {
            EXPECT_EQ(a.sweep.mean_savings[i], b.sweep.mean_savings[i]);
        }
        EXPECT_EQ(a.sizing.baseline_only_servers,
                  b.sizing.baseline_only_servers);
        EXPECT_EQ(a.sizing.mixed_baselines, b.sizing.mixed_baselines);
        EXPECT_EQ(a.sizing.mixed_greens, b.sizing.mixed_greens);
        ASSERT_EQ(a.trials.size(), b.trials.size());
        for (std::size_t m = 0; m < a.trials.size(); ++m) {
            EXPECT_EQ(a.trials[m].mean_failures,
                      b.trials[m].mean_failures);
            EXPECT_EQ(a.trials[m].mean_smoothed_rate,
                      b.trials[m].mean_smoothed_rate);
        }
    };

    const int original = ThreadPool::global().threads();
    for (int threads : {1, 4}) {
        ThreadPool::resetGlobal(threads);

        ASSERT_FALSE(obs::traceEnabled());
        const Outputs plain = run_all();

        obs::metrics().reset();
        obs::startTrace();
        const Outputs observed = run_all();
        const auto events = obs::drainTrace();
        obs::stopTrace();
        const obs::MetricsSnapshot snap = obs::metrics().snapshot();

        expect_equal(plain, observed);
        // The instrumentation itself must have fired.
        EXPECT_FALSE(events.empty());
        EXPECT_GT(snap.counter("sizer.replays"), 0u);
        EXPECT_GT(snap.counter("allocator.replays"), 0u);
        EXPECT_GT(snap.counter("failure_sim.trials"), 0u);
    }
    ThreadPool::resetGlobal(original);
}

TEST(ParallelParityTest, DecisionLedgerIsByteIdenticalAcrossThreads)
{
    // The ledger is a sorted set of decision facts, so the rendered
    // file must be byte-identical whatever the pool schedule was —
    // including the full evaluator pipeline with its cached sizings.
    cluster::TraceGenParams params;
    params.target_concurrent_vms = 120.0;
    params.duration_h = 24.0 * 3.0;
    const auto traces =
        cluster::TraceGenerator(params).generateFamily(2, /*base_seed=*/7);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const std::vector<double> grid = {0.05, 0.3};

    const auto [serial, parallel] =
        atOneAndFourThreads<std::string>([&] {
            obs::startLedger();
            const gsf::GsfEvaluator evaluator{gsf::GsfEvaluator::Options{}};
            evaluator.sweep(traces, baseline, green, grid);
            std::string rendered = obs::renderLedger();
            obs::stopLedger();
            return rendered;
        });

    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelParityTest, EvalCacheColdWarmParityAcrossThreads)
{
    // The persistent eval cache must preserve both contracts at once:
    // a warm (cache-served) run is byte-identical to the cold run that
    // populated it — results AND rendered ledger — at 1 and at 4 pool
    // threads.
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() / "gsku_parity_evalcache").string();
    fs::remove_all(dir);
    gsf::configureEvalCache(dir);

    cluster::TraceGenParams params;
    params.target_concurrent_vms = 100.0;
    params.duration_h = 24.0 * 3.0;
    const auto trace = cluster::TraceGenerator(params).generate(11);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const gsf::GsfEvaluator evaluator{gsf::GsfEvaluator::Options{}};

    struct Run
    {
        double savings = 0.0;
        int mixed_greens = 0;
        std::string ledger;
    };
    auto run_once = [&]() {
        Run r;
        obs::startLedger();
        const auto eval = evaluator.evaluateCluster(
            trace, baseline, green, CarbonIntensity::kgPerKwh(0.1));
        r.savings = eval.savings;
        r.mixed_greens = eval.sizing.mixed_greens;
        r.ledger = obs::renderLedger();
        obs::stopLedger();
        return r;
    };

    const int original = ThreadPool::global().threads();
    ThreadPool::resetGlobal(1);
    const Run cold = run_once();     // Populates the cache.
    const Run warm1 = run_once();    // Served from disk, 1 thread.
    ThreadPool::resetGlobal(4);
    const Run warm4 = run_once();    // Served from disk, 4 threads.
    ThreadPool::resetGlobal(original);
    gsf::configureEvalCache("");
    fs::remove_all(dir);

    for (const Run *warm : {&warm1, &warm4}) {
        EXPECT_EQ(cold.savings, warm->savings);
        EXPECT_EQ(cold.mixed_greens, warm->mixed_greens);
        EXPECT_EQ(cold.ledger, warm->ledger);
    }
    EXPECT_FALSE(cold.ledger.empty());
    EXPECT_NE(cold.ledger.find("cache.entry"), std::string::npos);
}

TEST(ParallelParityTest, TraceEncodingsReplayByteIdenticalAcrossThreads)
{
    // The streaming replay engine (trace_binary.h) must not let the
    // trace encoding leak into any output: binary and CSV streaming
    // replays of the same trace content produce byte-identical results,
    // rendered ledgers, and placement-counter deltas as the
    // materialized replay — at 1 and at 4 pool threads.
    namespace fs = std::filesystem;
    cluster::TraceGenParams params;
    params.target_concurrent_vms = 120.0;
    params.duration_h = 24.0 * 3.0;
    const auto trace = cluster::TraceGenerator(params).generate(23);

    const std::string dir =
        (fs::temp_directory_path() / "gsku_parity_trace_enc").string();
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string bin = (fs::path(dir) / "trace.gskutrc").string();
    const std::string csv = (fs::path(dir) / "trace.csv").string();
    cluster::writeTraceBinary(trace, bin);
    {
        std::ofstream out(csv);
        cluster::writeTraceCsv(trace, out);
    }

    cluster::ClusterSpec spec;
    spec.baseline_sku = carbon::StandardSkus::baseline();
    spec.green_sku = carbon::StandardSkus::greenFull();
    spec.baselines = 40;
    spec.greens = 12;
    cluster::AdoptionTable adoption = cluster::AdoptionTable::none();
    for (std::size_t app = 0; app < 10; ++app) {
        adoption.set(app, carbon::Generation::Gen1,
                     cluster::AdoptionDecision{true, 1.05});
    }
    cluster::ReplayOptions options;
    options.stop_on_reject = false;
    const cluster::VmAllocator allocator(options);

    struct Run
    {
        cluster::ReplayResult result;
        std::string ledger;
        std::uint64_t placements = 0;
        std::uint64_t rejections = 0;
    };
    auto run_one = [&](const std::function<cluster::ReplayResult()> &go) {
        Run r;
        const std::uint64_t placements_before =
            obs::metrics().snapshot().counter("allocator.placements");
        const std::uint64_t rejections_before =
            obs::metrics().snapshot().counter("allocator.rejections");
        obs::startLedger();
        r.result = go();
        r.ledger = obs::renderLedger();
        obs::stopLedger();
        const obs::MetricsSnapshot after = obs::metrics().snapshot();
        r.placements =
            after.counter("allocator.placements") - placements_before;
        r.rejections =
            after.counter("allocator.rejections") - rejections_before;
        return r;
    };
    auto expect_equal = [](const Run &a, const Run &b) {
        EXPECT_EQ(a.result.success, b.result.success);
        EXPECT_EQ(a.result.placed, b.result.placed);
        EXPECT_EQ(a.result.rejected, b.result.rejected);
        EXPECT_EQ(a.result.green_placed, b.result.green_placed);
        EXPECT_EQ(a.result.green_fallbacks, b.result.green_fallbacks);
        EXPECT_EQ(a.result.baseline.servers, b.result.baseline.servers);
        EXPECT_EQ(a.result.baseline.vms_placed,
                  b.result.baseline.vms_placed);
        EXPECT_EQ(a.result.baseline.mean_core_packing,
                  b.result.baseline.mean_core_packing);
        EXPECT_EQ(a.result.baseline.mean_mem_packing,
                  b.result.baseline.mean_mem_packing);
        EXPECT_EQ(a.result.baseline.mean_max_mem_utilization,
                  b.result.baseline.mean_max_mem_utilization);
        EXPECT_EQ(a.result.green.vms_placed, b.result.green.vms_placed);
        EXPECT_EQ(a.result.green.mean_core_packing,
                  b.result.green.mean_core_packing);
        EXPECT_EQ(a.ledger, b.ledger);
        EXPECT_EQ(a.placements, b.placements);
        EXPECT_EQ(a.rejections, b.rejections);
    };

    const int original = ThreadPool::global().threads();
    for (int threads : {1, 4}) {
        ThreadPool::resetGlobal(threads);

        const Run materialized = run_one(
            [&] { return allocator.replay(trace, spec, adoption); });
        const Run from_binary = run_one([&] {
            cluster::BinaryTraceReader reader(bin);
            return allocator.replay(reader, spec, adoption);
        });
        const Run from_csv = run_one([&] {
            cluster::CsvTraceReader reader(csv);
            return allocator.replay(reader, spec, adoption);
        });

        expect_equal(materialized, from_binary);
        expect_equal(materialized, from_csv);
        EXPECT_GT(materialized.result.placed, 0);
        EXPECT_FALSE(materialized.ledger.empty());
        EXPECT_EQ(materialized.placements,
                  static_cast<std::uint64_t>(materialized.result.placed));
    }
    ThreadPool::resetGlobal(original);
    fs::remove_all(dir);
}

TEST(ParallelParityTest, WorkUnitProfileIsByteIdenticalAcrossThreads)
{
    // The work-unit profiler (obs/profile.h) counts logical work on a
    // global trie via commutative additions and exports a canonical,
    // timestamp-free document, so the written artifact — JSON and the
    // collapsed flamegraph sidecar — must be byte-identical whatever
    // the pool schedule was.
    namespace fs = std::filesystem;
    cluster::TraceGenParams params;
    params.target_concurrent_vms = 120.0;
    params.duration_h = 24.0 * 3.0;
    const auto traces =
        cluster::TraceGenerator(params).generateFamily(3, /*base_seed=*/9);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const std::vector<double> grid = {0.05, 0.3};

    const std::string dir =
        (fs::temp_directory_path() / "gsku_parity_profile").string();
    fs::remove_all(dir);
    fs::create_directories(dir);
    auto slurp = [](const std::string &file) {
        std::ifstream in(file, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    };

    obs::setProfileProgram("parallel_parity_test");
    const int original = ThreadPool::global().threads();
    std::vector<std::string> jsons;
    std::vector<std::string> collapsed;
    for (int threads : {1, 4}) {
        ThreadPool::resetGlobal(threads);
        obs::startProfile();    // Resets: each leg profiles one sweep.
        const gsf::GsfEvaluator evaluator{gsf::GsfEvaluator::Options{}};
        evaluator.sweep(traces, baseline, green, grid);
        obs::stopProfile();
        const std::string file = (fs::path(dir) / ("profile_" +
                                  std::to_string(threads) + ".json"))
                                     .string();
        ASSERT_TRUE(obs::writeProfile(file));
        jsons.push_back(slurp(file));
        collapsed.push_back(slurp(file + ".collapsed"));
    }
    ThreadPool::resetGlobal(original);
    fs::remove_all(dir);

    EXPECT_FALSE(jsons[0].empty());
    EXPECT_EQ(jsons[0], jsons[1]);
    EXPECT_FALSE(collapsed[0].empty());
    EXPECT_EQ(collapsed[0], collapsed[1]);
    // The profile must actually attribute the sweep's work.
    EXPECT_NE(jsons[0].find("evaluator.sweep;jobs"), std::string::npos);
    EXPECT_NE(jsons[0].find("allocator.replay"), std::string::npos);
}

TEST(ParallelParityTest, ProfilingLeavesOutputsByteIdentical)
{
    // The profiler is strictly observational: enabling it must leave
    // every model output byte-identical, at 1 and at 4 pool threads.
    cluster::TraceGenParams params;
    params.target_concurrent_vms = 120.0;
    params.duration_h = 24.0 * 3.0;
    const auto traces =
        cluster::TraceGenerator(params).generateFamily(2, /*base_seed=*/13);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku green = carbon::StandardSkus::greenFull();
    const std::vector<double> grid = {0.05, 0.3};

    const int original = ThreadPool::global().threads();
    for (int threads : {1, 4}) {
        ThreadPool::resetGlobal(threads);
        const gsf::GsfEvaluator evaluator{gsf::GsfEvaluator::Options{}};

        ASSERT_FALSE(obs::profileEnabled());
        const gsf::IntensitySweep plain =
            evaluator.sweep(traces, baseline, green, grid);

        obs::startProfile();
        const gsf::IntensitySweep profiled =
            evaluator.sweep(traces, baseline, green, grid);
        const obs::ProfileSnapshot snap = obs::snapshotProfile();
        obs::stopProfile();

        ASSERT_EQ(plain.mean_savings.size(), profiled.mean_savings.size());
        for (std::size_t i = 0; i < plain.mean_savings.size(); ++i) {
            EXPECT_EQ(plain.mean_savings[i], profiled.mean_savings[i]);
        }
        // The instrumentation itself must have fired.
        EXPECT_GT(snap.total_units, 0u);
    }
    ThreadPool::resetGlobal(original);
}

} // namespace
} // namespace gsku
