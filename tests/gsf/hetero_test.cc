/** @file Heterogeneous-compute extension tests (§VIII). */
#include <gtest/gtest.h>

#include "common/error.h"
#include "gsf/hetero.h"

namespace gsku::gsf {
namespace {

class HeteroTest : public ::testing::Test
{
  protected:
    perf::PerfModel perf_;
    carbon::CarbonModel carbon_;
    HeteroAdoptionModel model_{perf_, carbon_};
    carbon::ServerSku baseline_ = carbon::StandardSkus::baseline();
    carbon::ServerSku green_ = carbon::StandardSkus::greenFull();
    CarbonIntensity ci_ = CarbonIntensity::kgPerKwh(0.1);
    perf::AppProfile img_dnn_ = perf::AppCatalog::byName("Img-DNN");
};

TEST_F(HeteroTest, AcceleratorCarbonSumsEmbodiedAndOperational)
{
    const AcceleratorSpec fresh = AcceleratorSpec::newInferenceCard();
    const CarbonMass total = model_.acceleratorCarbon(fresh, ci_);
    EXPECT_GT(total.asKg(), fresh.embodied.asKg());
    // At CI = 0 only embodied remains.
    EXPECT_DOUBLE_EQ(
        model_.acceleratorCarbon(fresh, CarbonIntensity::kgPerKwh(0.0))
            .asKg(),
        fresh.embodied.asKg());
    // Reused cards have zero embodied carbon.
    EXPECT_DOUBLE_EQ(
        model_
            .acceleratorCarbon(AcceleratorSpec::reusedInferenceCard(),
                               CarbonIntensity::kgPerKwh(0.0))
            .asKg(),
        0.0);
}

TEST_F(HeteroTest, AllOptionsReported)
{
    const HeteroDecision d = model_.decide(
        img_dnn_, carbon::Generation::Gen3, baseline_, green_,
        {AcceleratorSpec::newInferenceCard(),
         AcceleratorSpec::reusedInferenceCard()},
        ci_);
    ASSERT_EQ(d.options.size(), 4u);
    EXPECT_EQ(d.options[0].label, "baseline CPU");
    EXPECT_TRUE(d.options[0].feasible);
    EXPECT_TRUE(d.options[1].feasible);    // Img-DNN scales at 1.
}

TEST_F(HeteroTest, OffloadToReusedCardWinsForInference)
{
    // §VIII's candidate: accelerator reuse for less compute-intensive
    // ML models beats burning 8+ CPU cores.
    const HeteroDecision d = model_.decide(
        img_dnn_, carbon::Generation::Gen3, baseline_, green_,
        {AcceleratorSpec::reusedInferenceCard()}, ci_);
    EXPECT_TRUE(d.offloads());
    EXPECT_LT(d.chosen().carbon.asKg(), d.options[0].carbon.asKg());
    EXPECT_LT(d.chosen().carbon.asKg(), d.options[1].carbon.asKg());
}

TEST_F(HeteroTest, ReusedCardBeatsNewCardAtLowIntensity)
{
    const HeteroDecision d = model_.decide(
        img_dnn_, carbon::Generation::Gen3, baseline_, green_,
        {AcceleratorSpec::newInferenceCard(),
         AcceleratorSpec::reusedInferenceCard()},
        CarbonIntensity::kgPerKwh(0.0));
    EXPECT_TRUE(d.offloads());
    EXPECT_NE(d.chosen().label.find("reused"), std::string::npos);
}

TEST_F(HeteroTest, NewCardWinsAtVeryHighIntensity)
{
    // The reused card's worse perf/W flips the choice when power is
    // dirty enough — the same D1 tradeoff, now for accelerators.
    const HeteroDecision d = model_.decide(
        img_dnn_, carbon::Generation::Gen3, baseline_, green_,
        {AcceleratorSpec::newInferenceCard(),
         AcceleratorSpec::reusedInferenceCard()},
        CarbonIntensity::kgPerKwh(1.5));
    if (d.offloads()) {
        EXPECT_NE(d.chosen().label.find("new"), std::string::npos);
    }
}

TEST_F(HeteroTest, AcceleratorCountCoversResidualDemand)
{
    const HeteroDecision d = model_.decide(
        img_dnn_, carbon::Generation::Gen3, baseline_, green_,
        {AcceleratorSpec::reusedInferenceCard()}, ci_, /*host_cores=*/2.0);
    const HeteroOption &accel = d.options[2];
    // Demand is 8 Genoa-core units; host covers 2 Bergamo cores worth.
    const double host = 2.0 * perf_.perCorePerf(
                                  img_dnn_, perf::CpuCatalog::bergamo());
    const double residual = 8.0 - host;
    EXPECT_EQ(accel.accelerators,
              static_cast<int>(std::ceil(residual / 8.0)));
}

TEST_F(HeteroTest, BigHostSliceNeedsNoAccelerators)
{
    const HeteroDecision d = model_.decide(
        img_dnn_, carbon::Generation::Gen3, baseline_, green_,
        {AcceleratorSpec::reusedInferenceCard()}, ci_,
        /*host_cores=*/16.0);
    EXPECT_EQ(d.options[2].accelerators, 0);
}

TEST_F(HeteroTest, NonInferenceAppsRejected)
{
    EXPECT_THROW(model_.decide(perf::AppCatalog::byName("Redis"),
                               carbon::Generation::Gen3, baseline_,
                               green_, {}, ci_),
                 UserError);
}

} // namespace
} // namespace gsku::gsf
