/** @file SKU-portfolio (D2) analysis tests. */
#include <gtest/gtest.h>

#include "common/error.h"
#include "gsf/portfolio.h"

namespace gsku::gsf {
namespace {

class PortfolioTest : public ::testing::Test
{
  protected:
    PortfolioAnalysis analysis_{carbon::ModelParams{},
                                cluster::DemandParams{}, 50000.0};
    carbon::ServerSku baseline_ = carbon::StandardSkus::baseline();
    CarbonIntensity ci_ = CarbonIntensity::kgPerKwh(0.1);

    std::vector<PortfolioSlice>
    menu() const
    {
        // Three GreenSKU candidates sharing 75% adoptable demand.
        return {
            {carbon::StandardSkus::greenFull(), 0.25, 1.07},
            {carbon::StandardSkus::greenCxl(), 0.25, 1.07},
            {carbon::StandardSkus::greenEfficient(), 0.25, 1.07},
        };
    }
};

TEST_F(PortfolioTest, BaselineOnlyHasOneType)
{
    const PortfolioResult r =
        analysis_.evaluate(baseline_, {}, ci_, "base");
    EXPECT_EQ(r.sku_types, 1);
    EXPECT_GT(r.demand_emissions.asKg(), 0.0);
    EXPECT_GT(r.buffer_emissions.asKg(), 0.0);
}

TEST_F(PortfolioTest, OneGreenTypeBeatsBaselineOnly)
{
    const auto results =
        analysis_.sweepPortfolioSizes(baseline_, menu(), ci_);
    ASSERT_EQ(results.size(), 4u);
    EXPECT_DOUBLE_EQ(results[0].savings, 0.0);
    EXPECT_GT(results[1].savings, 0.05);
}

TEST_F(PortfolioTest, BufferCostGrowsWithTypes)
{
    const auto results =
        analysis_.sweepPortfolioSizes(baseline_, menu(), ci_);
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_GT(results[i].buffer_emissions.asKg(),
                  results[i - 1].buffer_emissions.asKg())
            << results[i].label;
    }
}

TEST_F(PortfolioTest, MarginalTypeGainsDiminish)
{
    // With a near-homogeneous menu, extra types add buffer cost but no
    // matching gain: savings peak at one GreenSKU type, the paper's
    // "limit how many SKU types they deploy" conclusion.
    const auto results =
        analysis_.sweepPortfolioSizes(baseline_, menu(), ci_);
    EXPECT_GE(results[1].savings, results[2].savings);
    EXPECT_GE(results[2].savings, results[3].savings);
}

TEST_F(PortfolioTest, ScalingInflationCountsAgainstGreens)
{
    const std::vector<PortfolioSlice> lean = {
        {carbon::StandardSkus::greenFull(), 0.5, 1.0}};
    const std::vector<PortfolioSlice> fat = {
        {carbon::StandardSkus::greenFull(), 0.5, 1.3}};
    const auto a = analysis_.evaluate(baseline_, lean, ci_, "lean");
    const auto b = analysis_.evaluate(baseline_, fat, ci_, "fat");
    EXPECT_LT(a.total().asKg(), b.total().asKg());
}

TEST_F(PortfolioTest, InputValidation)
{
    EXPECT_THROW(analysis_.evaluate(
                     baseline_,
                     {{carbon::StandardSkus::greenFull(), 1.2, 1.0}},
                     ci_, "x"),
                 UserError);
    EXPECT_THROW(analysis_.evaluate(
                     baseline_,
                     {{carbon::StandardSkus::greenFull(), 0.5, 0.8}},
                     ci_, "x"),
                 UserError);
    EXPECT_THROW(analysis_.sweepPortfolioSizes(baseline_, {}, ci_),
                 UserError);
    EXPECT_THROW(PortfolioAnalysis(carbon::ModelParams{},
                                   cluster::DemandParams{}, 0.0),
                 UserError);
}

} // namespace
} // namespace gsku::gsf
