/**
 * @file
 * Golden regression tests: pin the exact end-to-end numbers of the
 * calibrated pipeline on fixed seeds. A change to any model, catalog
 * value, or the RNG stream that moves a headline result shows up here
 * first — re-golden deliberately, never accidentally.
 */
#include <gtest/gtest.h>

#include "carbon/model.h"
#include "cluster/trace_gen.h"
#include "gsf/evaluator.h"

namespace gsku::gsf {
namespace {

TEST(GoldenTest, PerCoreEmissionsOfStandardSkus)
{
    const carbon::CarbonModel model;
    const auto pc = [&](const carbon::ServerSku &sku) {
        return model.perCore(sku).total().asKg();
    };
    // kgCO2e per core, lifetime, at CI = 0.1 (tolerance 0.05 kg).
    EXPECT_NEAR(pc(carbon::StandardSkus::baseline()), 55.07, 0.05);
    EXPECT_NEAR(pc(carbon::StandardSkus::baselineResized()), 50.72, 0.05);
    EXPECT_NEAR(pc(carbon::StandardSkus::greenEfficient()), 46.56, 0.05);
    EXPECT_NEAR(pc(carbon::StandardSkus::greenCxl()), 41.68, 0.05);
    EXPECT_NEAR(pc(carbon::StandardSkus::greenFull()), 40.73, 0.05);
}

TEST(GoldenTest, TraceGenerationPinned)
{
    cluster::TraceGenParams params;
    params.target_concurrent_vms = 200.0;
    params.duration_h = 24.0 * 7.0;
    const cluster::VmTrace trace =
        cluster::TraceGenerator(params).generate(12345);
    // Pin structure, not just size: any change to the RNG stream or
    // sampling order shifts these.
    EXPECT_EQ(trace.vms.size(), 961u);
    EXPECT_EQ(trace.peakConcurrentCores(), 1504);
    EXPECT_EQ(trace.vms.front().cores, 4);
    EXPECT_NEAR(trace.vms.front().arrival_h, 0.3024, 1e-3);
}

TEST(GoldenTest, EndToEndClusterEvaluationPinned)
{
    cluster::TraceGenParams params;
    params.target_concurrent_vms = 200.0;
    params.duration_h = 24.0 * 7.0;
    const cluster::VmTrace trace =
        cluster::TraceGenerator(params).generate(12345);

    const GsfEvaluator evaluator{GsfEvaluator::Options{}};
    const auto eval = evaluator.evaluateCluster(
        trace, carbon::StandardSkus::baseline(),
        carbon::StandardSkus::greenFull(),
        CarbonIntensity::kgPerKwh(0.1));

    // Re-golden when a model change is *intended* to move these.
    EXPECT_EQ(eval.sizing.baseline_only_servers, 20);
    EXPECT_EQ(eval.sizing.mixed_baselines, 5);
    EXPECT_EQ(eval.sizing.mixed_greens, 10);
    EXPECT_NEAR(eval.savings, 0.144, 0.005);
}

} // namespace
} // namespace gsku::gsf
