/** @file Multi-GreenSKU cluster replay tests (D2 simulation support). */
#include <gtest/gtest.h>

#include "cluster/allocator.h"
#include "cluster/trace_gen.h"
#include "common/error.h"
#include "perf/app.h"

namespace gsku::cluster {
namespace {

AdoptionTable
adoptAll(double factor)
{
    AdoptionTable t;
    for (std::size_t i = 0; i < perf::AppCatalog::all().size(); ++i) {
        for (auto g : {carbon::Generation::Gen1, carbon::Generation::Gen2,
                       carbon::Generation::Gen3}) {
            t.set(i, g, {true, factor});
        }
    }
    return t;
}

VmRequest
vm(VmId id, double arrive, double depart, int cores, double mem)
{
    VmRequest r;
    r.id = id;
    r.arrival_h = arrive;
    r.departure_h = depart;
    r.cores = cores;
    r.memory_gb = mem;
    r.max_mem_touch_fraction = 0.5;
    return r;
}

VmTrace
makeTrace(std::vector<VmRequest> vms)
{
    VmTrace t;
    t.name = "multi";
    t.duration_h = 100.0;
    t.vms = std::move(vms);
    return t;
}

TEST(MultiSkuTest, SingleGroupMatchesTwoGroupApi)
{
    TraceGenParams params;
    params.target_concurrent_vms = 100.0;
    params.duration_h = 24.0 * 5.0;
    const VmTrace trace = TraceGenerator(params).generate(3);

    const AdoptionTable adoption = adoptAll(1.25);
    const VmAllocator alloc;

    const ClusterSpec two{carbon::StandardSkus::baseline(),
                          carbon::StandardSkus::greenFull(), 10, 8};
    const ReplayResult a = alloc.replay(trace, two, adoption);

    MultiClusterSpec multi;
    multi.baseline_sku = carbon::StandardSkus::baseline();
    multi.baselines = 10;
    multi.greens.push_back(
        GreenGroupSpec{carbon::StandardSkus::greenFull(), 8, adoption});
    const MultiReplayResult b = alloc.replay(trace, multi);

    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.green_placed, b.green_placed);
    EXPECT_DOUBLE_EQ(a.green.mean_core_packing,
                     b.greens.front().mean_core_packing);
    EXPECT_DOUBLE_EQ(a.baseline.mean_max_mem_utilization,
                     b.baseline.mean_max_mem_utilization);
}

TEST(MultiSkuTest, PreferenceOrderRespected)
{
    // Two green groups with room; every adopting VM must land on the
    // first-listed (preferred) group.
    MultiClusterSpec multi;
    multi.baseline_sku = carbon::StandardSkus::baseline();
    multi.baselines = 1;
    multi.greens.push_back(GreenGroupSpec{
        carbon::StandardSkus::greenFull(), 2, adoptAll(1.0)});
    multi.greens.push_back(GreenGroupSpec{
        carbon::StandardSkus::greenEfficient(), 2, adoptAll(1.0)});

    const VmAllocator alloc;
    const auto result = alloc.replay(
        makeTrace({vm(1, 0, 10, 8, 32), vm(2, 1, 10, 8, 32)}), multi);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.greens[0].vms_placed, 2);
    EXPECT_EQ(result.greens[1].vms_placed, 0);
}

TEST(MultiSkuTest, OverflowSpillsToNextGroup)
{
    // First group too small: the second group catches the overflow.
    MultiClusterSpec multi;
    multi.baseline_sku = carbon::StandardSkus::baseline();
    multi.baselines = 1;
    multi.greens.push_back(GreenGroupSpec{
        carbon::StandardSkus::greenFull(), 1, adoptAll(1.0)});
    multi.greens.push_back(GreenGroupSpec{
        carbon::StandardSkus::greenEfficient(), 1, adoptAll(1.0)});

    const VmAllocator alloc;
    const auto result = alloc.replay(
        makeTrace({vm(1, 0, 10, 100, 400), vm(2, 1, 10, 100, 400)}),
        multi);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.greens[0].vms_placed, 1);
    EXPECT_EQ(result.greens[1].vms_placed, 1);
}

TEST(MultiSkuTest, PerGroupAdoptionTablesIndependent)
{
    // Group 1 adopts nothing; group 2 adopts everything — all adopting
    // placements land on group 2.
    MultiClusterSpec multi;
    multi.baseline_sku = carbon::StandardSkus::baseline();
    multi.baselines = 1;
    multi.greens.push_back(GreenGroupSpec{
        carbon::StandardSkus::greenFull(), 2, AdoptionTable::none()});
    multi.greens.push_back(GreenGroupSpec{
        carbon::StandardSkus::greenCxl(), 2, adoptAll(1.0)});

    const VmAllocator alloc;
    const auto result =
        alloc.replay(makeTrace({vm(1, 0, 10, 8, 32)}), multi);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.greens[0].vms_placed, 0);
    EXPECT_EQ(result.greens[1].vms_placed, 1);
}

TEST(MultiSkuTest, NoGreensBehavesLikeBaselineOnly)
{
    MultiClusterSpec multi;
    multi.baseline_sku = carbon::StandardSkus::baseline();
    multi.baselines = 2;
    const VmAllocator alloc;
    const auto result =
        alloc.replay(makeTrace({vm(1, 0, 10, 8, 32)}), multi);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.baseline.vms_placed, 1);
    EXPECT_TRUE(result.greens.empty());
    EXPECT_EQ(result.green_fallbacks, 0);
}

TEST(MultiSkuTest, EmptyClusterRejected)
{
    MultiClusterSpec multi;
    multi.baseline_sku = carbon::StandardSkus::baseline();
    const VmAllocator alloc;
    EXPECT_THROW(alloc.replay(makeTrace({vm(1, 0, 1, 1, 1)}), multi),
                 UserError);
}

TEST(MultiSkuTest, ZeroCountGroupSkipped)
{
    MultiClusterSpec multi;
    multi.baseline_sku = carbon::StandardSkus::baseline();
    multi.baselines = 1;
    multi.greens.push_back(GreenGroupSpec{
        carbon::StandardSkus::greenFull(), 0, adoptAll(1.0)});
    const VmAllocator alloc;
    const auto result =
        alloc.replay(makeTrace({vm(1, 0, 10, 8, 32)}), multi);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.baseline.vms_placed, 1);
    // The VM adopted but had no green capacity: counted as a fallback.
    EXPECT_EQ(result.green_fallbacks, 1);
}

} // namespace
} // namespace gsku::cluster
