/**
 * @file
 * Property tests of the cluster substrate, parameterized over trace
 * seeds: conservation, determinism, monotonicity, and metric bounds
 * that must hold for any workload.
 */
#include <gtest/gtest.h>

#include "cluster/allocator.h"
#include "cluster/trace_gen.h"
#include "perf/app.h"

namespace gsku::cluster {
namespace {

VmTrace
traceFor(std::uint64_t seed)
{
    TraceGenParams params;
    params.target_concurrent_vms = 120.0;
    params.duration_h = 24.0 * 7.0;
    return TraceGenerator(params).generate(seed);
}

class TraceSeedTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceSeedTest, ReplayConservesVms)
{
    const VmTrace trace = traceFor(GetParam());
    ReplayOptions opts;
    opts.stop_on_reject = false;
    const VmAllocator alloc(opts);
    const ClusterSpec spec{carbon::StandardSkus::baseline(),
                           carbon::StandardSkus::greenFull(), 25, 0};
    const auto result = alloc.replay(trace, spec, AdoptionTable::none());
    EXPECT_EQ(result.placed + result.rejected,
              static_cast<long>(trace.vms.size()));
    EXPECT_EQ(result.green.vms_placed, 0);
    EXPECT_EQ(result.placed, result.baseline.vms_placed);
}

TEST_P(TraceSeedTest, MetricsWithinUnitBounds)
{
    const VmTrace trace = traceFor(GetParam());
    ReplayOptions opts;
    opts.stop_on_reject = false;
    const VmAllocator alloc(opts);
    const ClusterSpec spec{carbon::StandardSkus::baseline(),
                           carbon::StandardSkus::greenFull(), 20, 10};
    AdoptionTable adoption;
    for (std::size_t i = 0; i < perf::AppCatalog::all().size(); ++i) {
        adoption.set(i, carbon::Generation::Gen1, {true, 1.25});
        adoption.set(i, carbon::Generation::Gen2, {true, 1.0});
    }
    const auto result = alloc.replay(trace, spec, adoption);
    for (const GroupMetrics *m : {&result.baseline, &result.green}) {
        EXPECT_GE(m->mean_core_packing, 0.0);
        EXPECT_LE(m->mean_core_packing, 1.0);
        EXPECT_GE(m->mean_mem_packing, 0.0);
        EXPECT_LE(m->mean_mem_packing, 1.0);
        EXPECT_GE(m->mean_max_mem_utilization, 0.0);
        EXPECT_LE(m->mean_max_mem_utilization, 1.0 + 1e-9);
    }
}

TEST_P(TraceSeedTest, ReplayIsDeterministic)
{
    const VmTrace trace = traceFor(GetParam());
    const VmAllocator alloc;
    const ClusterSpec spec{carbon::StandardSkus::baseline(),
                           carbon::StandardSkus::greenFull(), 30, 0};
    const auto a = alloc.replay(trace, spec, AdoptionTable::none());
    const auto b = alloc.replay(trace, spec, AdoptionTable::none());
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.success, b.success);
    EXPECT_DOUBLE_EQ(a.baseline.mean_core_packing,
                     b.baseline.mean_core_packing);
    EXPECT_DOUBLE_EQ(a.baseline.mean_max_mem_utilization,
                     b.baseline.mean_max_mem_utilization);
}

TEST_P(TraceSeedTest, MoreServersNeverHurt)
{
    // Placement success is monotone in cluster size.
    const VmTrace trace = traceFor(GetParam());
    ReplayOptions opts;
    opts.stop_on_reject = false;
    const VmAllocator alloc(opts);
    long prev_placed = -1;
    for (int servers : {10, 20, 40, 80}) {
        const ClusterSpec spec{carbon::StandardSkus::baseline(),
                               carbon::StandardSkus::greenFull(), servers,
                               0};
        const auto result =
            alloc.replay(trace, spec, AdoptionTable::none());
        EXPECT_GE(result.placed, prev_placed) << servers << " servers";
        prev_placed = result.placed;
    }
}

TEST_P(TraceSeedTest, ScalingInflationReducesGreenCapacity)
{
    // Raising every scaling factor can only reduce what fits on a
    // fixed green cluster.
    const VmTrace trace = traceFor(GetParam());
    ReplayOptions opts;
    opts.stop_on_reject = false;
    const VmAllocator alloc(opts);
    const ClusterSpec spec{carbon::StandardSkus::baseline(),
                           carbon::StandardSkus::greenFull(), 0, 14};

    auto adopt_all = [](double factor) {
        AdoptionTable t;
        for (std::size_t i = 0; i < perf::AppCatalog::all().size(); ++i) {
            for (auto g :
                 {carbon::Generation::Gen1, carbon::Generation::Gen2,
                  carbon::Generation::Gen3}) {
                t.set(i, g, {true, factor});
            }
        }
        return t;
    };
    const auto lean = alloc.replay(trace, spec, adopt_all(1.0));
    const auto fat = alloc.replay(trace, spec, adopt_all(1.5));
    EXPECT_GE(lean.green_placed, fat.green_placed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceSeedTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u),
                         [](const auto &info) {
                             return "Seed" + std::to_string(info.param);
                         });

} // namespace
} // namespace gsku::cluster
