/** @file Placement-policy variants: best-fit must pack best (§V rule 1). */
#include <gtest/gtest.h>

#include "cluster/allocator.h"
#include "cluster/trace_gen.h"
#include "gsf/sizing.h"

namespace gsku::cluster {
namespace {

VmTrace
denseTrace()
{
    TraceGenParams params;
    params.target_concurrent_vms = 150.0;
    params.duration_h = 24.0 * 7.0;
    return TraceGenerator(params).generate(77);
}

int
rightSize(PlacementPolicy policy, const VmTrace &trace)
{
    ReplayOptions opts;
    opts.policy = policy;
    return gsf::ClusterSizer(opts).rightSizeBaselineOnly(
        trace, carbon::StandardSkus::baseline());
}

TEST(PlacementPolicyTest, NamesRoundTrip)
{
    EXPECT_EQ(toString(PlacementPolicy::BestFit), "best-fit");
    EXPECT_EQ(toString(PlacementPolicy::FirstFit), "first-fit");
    EXPECT_EQ(toString(PlacementPolicy::WorstFit), "worst-fit");
}

TEST(PlacementPolicyTest, BestFitNeedsNoMoreServersThanAlternatives)
{
    const VmTrace trace = denseTrace();
    const int best = rightSize(PlacementPolicy::BestFit, trace);
    const int first = rightSize(PlacementPolicy::FirstFit, trace);
    const int worst = rightSize(PlacementPolicy::WorstFit, trace);
    EXPECT_LE(best, first);
    EXPECT_LE(best, worst);
}

TEST(PlacementPolicyTest, WorstFitSpreadsLoad)
{
    // On an over-provisioned cluster, worst-fit touches more servers
    // than best-fit (which consolidates).
    const VmTrace trace = denseTrace();
    const ClusterSpec spec{carbon::StandardSkus::baseline(),
                           carbon::StandardSkus::greenFull(),
                           rightSize(PlacementPolicy::BestFit, trace) + 10,
                           0};

    ReplayOptions best_opts;
    best_opts.policy = PlacementPolicy::BestFit;
    ReplayOptions worst_opts;
    worst_opts.policy = PlacementPolicy::WorstFit;

    const auto best = VmAllocator(best_opts).replay(
        trace, spec, AdoptionTable::none());
    const auto worst = VmAllocator(worst_opts).replay(
        trace, spec, AdoptionTable::none());
    ASSERT_TRUE(best.success);
    ASSERT_TRUE(worst.success);
    EXPECT_GE(best.baseline.mean_core_packing,
              worst.baseline.mean_core_packing);
}

TEST(PlacementPolicyTest, AllPoliciesConserveVms)
{
    const VmTrace trace = denseTrace();
    for (PlacementPolicy policy :
         {PlacementPolicy::BestFit, PlacementPolicy::FirstFit,
          PlacementPolicy::WorstFit}) {
        ReplayOptions opts;
        opts.policy = policy;
        opts.stop_on_reject = false;
        const ClusterSpec spec{carbon::StandardSkus::baseline(),
                               carbon::StandardSkus::greenFull(), 60, 0};
        const auto result =
            VmAllocator(opts).replay(trace, spec, AdoptionTable::none());
        EXPECT_EQ(result.placed + result.rejected,
                  static_cast<long>(trace.vms.size()))
            << toString(policy);
    }
}

TEST(PlacementPolicyTest, PoliciesAreDeterministic)
{
    const VmTrace trace = denseTrace();
    ReplayOptions opts;
    opts.policy = PlacementPolicy::FirstFit;
    const ClusterSpec spec{carbon::StandardSkus::baseline(),
                           carbon::StandardSkus::greenFull(), 40, 0};
    const auto a =
        VmAllocator(opts).replay(trace, spec, AdoptionTable::none());
    const auto b =
        VmAllocator(opts).replay(trace, spec, AdoptionTable::none());
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_DOUBLE_EQ(a.baseline.mean_core_packing,
                     b.baseline.mean_core_packing);
}

} // namespace
} // namespace gsku::cluster
