/** @file Synthetic trace generator: determinism and target distributions. */
#include <gtest/gtest.h>

#include <map>

#include "cluster/trace_gen.h"
#include "common/error.h"
#include "perf/app.h"

namespace gsku::cluster {
namespace {

TEST(TraceGenTest, DeterministicForSeed)
{
    const TraceGenerator gen;
    const VmTrace a = gen.generate(42);
    const VmTrace b = gen.generate(42);
    ASSERT_EQ(a.vms.size(), b.vms.size());
    for (std::size_t i = 0; i < a.vms.size(); ++i) {
        ASSERT_EQ(a.vms[i].cores, b.vms[i].cores);
        ASSERT_DOUBLE_EQ(a.vms[i].arrival_h, b.vms[i].arrival_h);
        ASSERT_EQ(a.vms[i].app_index, b.vms[i].app_index);
    }
}

TEST(TraceGenTest, DifferentSeedsDiffer)
{
    const TraceGenerator gen;
    const VmTrace a = gen.generate(1);
    const VmTrace b = gen.generate(2);
    EXPECT_NE(a.vms.size(), b.vms.size());
}

TEST(TraceGenTest, ArrivalsSortedAndWithinDuration)
{
    const TraceGenerator gen;
    const VmTrace t = gen.generate(7);
    double prev = 0.0;
    for (const auto &vm : t.vms) {
        ASSERT_GE(vm.arrival_h, prev);
        ASSERT_LT(vm.arrival_h, t.duration_h);
        ASSERT_GT(vm.departure_h, vm.arrival_h);
        prev = vm.arrival_h;
    }
}

TEST(TraceGenTest, SteadyStatePopulationNearTarget)
{
    TraceGenParams p;
    p.target_concurrent_vms = 400.0;
    p.load_jitter = 0.0;        // Disable per-trace diversity.
    p.duration_h = 24.0 * 60.0;
    const TraceGenerator gen(p);
    const VmTrace t = gen.generate(3);

    // Count VMs alive at several mid-trace instants.
    double sum = 0.0;
    int samples = 0;
    for (double at = 400.0; at < 1200.0; at += 100.0) {
        int alive = 0;
        for (const auto &vm : t.vms) {
            alive += vm.arrival_h <= at && vm.departure_h > at ? 1 : 0;
        }
        sum += alive;
        ++samples;
    }
    EXPECT_NEAR(sum / samples, 400.0, 80.0);
}

TEST(TraceGenTest, AppClassMixTracksCoreHourShares)
{
    TraceGenParams p;
    p.duration_h = 24.0 * 120.0;
    const TraceGenerator gen(p);
    const VmTrace t = gen.generate(11);

    std::map<perf::AppClass, int> counts;
    for (const auto &vm : t.vms) {
        counts[perf::AppCatalog::all()[vm.app_index].cls]++;
    }
    const double n = static_cast<double>(t.vms.size());
    EXPECT_NEAR(counts[perf::AppClass::BigData] / n, 0.32, 0.03);
    EXPECT_NEAR(counts[perf::AppClass::WebApp] / n, 0.27, 0.03);
    EXPECT_NEAR(counts[perf::AppClass::RealTimeComms] / n, 0.24, 0.03);
    EXPECT_NEAR(counts[perf::AppClass::MlInference] / n, 0.11, 0.03);
}

TEST(TraceGenTest, TouchFractionMatchesPondMean)
{
    // Pond [81]: untouched memory is about half of allocation.
    const TraceGenerator gen;
    const VmTrace t = gen.generate(5);
    double sum = 0.0;
    for (const auto &vm : t.vms) {
        ASSERT_GE(vm.max_mem_touch_fraction, 0.05);
        ASSERT_LE(vm.max_mem_touch_fraction, 1.0);
        sum += vm.max_mem_touch_fraction;
    }
    EXPECT_NEAR(sum / t.vms.size(), 0.55, 0.04);
}

TEST(TraceGenTest, FullNodeVmsAreRareAndWhole)
{
    TraceGenParams p;
    p.duration_h = 24.0 * 120.0;
    const TraceGenerator gen(p);
    const VmTrace t = gen.generate(13);
    int full = 0;
    for (const auto &vm : t.vms) {
        if (vm.full_node) {
            ++full;
            ASSERT_EQ(vm.cores, 80);
            ASSERT_DOUBLE_EQ(vm.memory_gb, 768.0);
        }
    }
    EXPECT_GT(full, 0);
    EXPECT_LT(static_cast<double>(full) / t.vms.size(), 0.01);
}

TEST(TraceGenTest, GenerationMixRepresented)
{
    const TraceGenerator gen;
    const VmTrace t = gen.generate(17);
    std::map<carbon::Generation, int> counts;
    for (const auto &vm : t.vms) {
        counts[vm.origin_generation]++;
    }
    EXPECT_GT(counts[carbon::Generation::Gen1], 0);
    EXPECT_GT(counts[carbon::Generation::Gen2], 0);
    EXPECT_GT(counts[carbon::Generation::Gen3], 0);
    EXPECT_GT(counts[carbon::Generation::Gen3],
              counts[carbon::Generation::Gen1]);
}

TEST(TraceGenTest, FamilyHasDistinctNamesAndSizes)
{
    const TraceGenerator gen;
    const auto family = gen.generateFamily(5, 100);
    ASSERT_EQ(family.size(), 5u);
    EXPECT_EQ(family[0].name, "cluster-1");
    EXPECT_EQ(family[4].name, "cluster-5");
    // Per-trace load jitter: sizes should not all be equal.
    bool any_diff = false;
    for (std::size_t i = 1; i < family.size(); ++i) {
        any_diff |= family[i].vms.size() != family[0].vms.size();
    }
    EXPECT_TRUE(any_diff);
}

TEST(TraceGenTest, ParameterValidation)
{
    TraceGenParams p;
    p.duration_h = 0.0;
    EXPECT_THROW(TraceGenerator{p}, UserError);
    p = TraceGenParams{};
    p.core_weights.pop_back();
    EXPECT_THROW(TraceGenerator{p}, UserError);
    p = TraceGenParams{};
    p.full_node_fraction = 1.0;
    EXPECT_THROW(TraceGenerator{p}, UserError);
    p = TraceGenParams{};
    const TraceGenerator gen(p);
    EXPECT_THROW(gen.generateFamily(0, 1), UserError);
}

} // namespace
} // namespace gsku::cluster
