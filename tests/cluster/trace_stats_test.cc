/** @file Trace-characterization summary tests. */
#include <gtest/gtest.h>

#include "cluster/trace_gen.h"
#include "cluster/trace_stats.h"
#include "common/error.h"

namespace gsku::cluster {
namespace {

TEST(TraceStatsTest, HandComputedTrace)
{
    VmTrace trace;
    trace.name = "hand";
    trace.duration_h = 10.0;
    VmRequest a;
    a.id = 1;
    a.arrival_h = 0.0;
    a.departure_h = 4.0;
    a.cores = 4;
    a.memory_gb = 16.0;
    a.app_index = 0;    // Redis (BigData).
    a.max_mem_touch_fraction = 0.5;
    VmRequest b = a;
    b.id = 2;
    b.arrival_h = 2.0;
    b.departure_h = 8.0;
    b.cores = 8;
    b.memory_gb = 32.0;
    b.origin_generation = carbon::Generation::Gen1;
    trace.vms = {a, b};

    const TraceStats stats = summarizeTrace(trace);
    EXPECT_EQ(stats.vm_count, 2u);
    EXPECT_DOUBLE_EQ(stats.cores.mean(), 6.0);
    EXPECT_DOUBLE_EQ(stats.memory_gb.mean(), 24.0);
    EXPECT_DOUBLE_EQ(stats.lifetime_h.mean(), 5.0);
    EXPECT_EQ(stats.peak_concurrent_cores, 12);
    // (4h + 6h) of VM time over 10 h -> mean population 1.0.
    EXPECT_DOUBLE_EQ(stats.mean_population, 1.0);
    EXPECT_DOUBLE_EQ(stats.class_shares.at(perf::AppClass::BigData), 1.0);
    EXPECT_DOUBLE_EQ(
        stats.generation_shares.at(carbon::Generation::Gen1), 0.5);
}

TEST(TraceStatsTest, SyntheticTraceMatchesGeneratorTargets)
{
    TraceGenParams params;
    params.target_concurrent_vms = 300.0;
    params.duration_h = 24.0 * 28.0;
    params.load_jitter = 0.0;
    const VmTrace trace = TraceGenerator(params).generate(5);
    const TraceStats stats = summarizeTrace(trace);

    EXPECT_NEAR(stats.touch_fraction.mean(), 0.55, 0.03);
    EXPECT_NEAR(stats.mean_population, 300.0, 60.0);
    // Class mix tracks Table III shares closely on a large trace.
    EXPECT_LT(stats.classMixDeviation(), 0.03);
    EXPECT_LT(static_cast<double>(stats.full_node_vms) /
                  static_cast<double>(stats.vm_count),
              0.01);
}

TEST(TraceStatsTest, DeviationDetectsSkewedMixes)
{
    // A trace of only DevOps builds is maximally off the fleet mix.
    VmTrace trace;
    trace.name = "skewed";
    trace.duration_h = 10.0;
    VmRequest vm;
    vm.id = 1;
    vm.arrival_h = 0.0;
    vm.departure_h = 1.0;
    vm.cores = 2;
    vm.memory_gb = 8.0;
    vm.app_index = perf::AppCatalog::all().size() - 1;  // Build-PHP.
    trace.vms = {vm};
    const TraceStats stats = summarizeTrace(trace);
    EXPECT_GT(stats.classMixDeviation(), 0.3);
}

TEST(TraceStatsTest, EmptyTraceRejected)
{
    VmTrace trace;
    trace.duration_h = 1.0;
    EXPECT_THROW(summarizeTrace(trace), UserError);
}

} // namespace
} // namespace gsku::cluster
