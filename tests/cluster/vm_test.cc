/** @file VM trace data-model tests (peak demand sweeps). */
#include <gtest/gtest.h>

#include "cluster/vm.h"

namespace gsku::cluster {
namespace {

VmRequest
vm(VmId id, double arrive, double depart, int cores, double mem)
{
    VmRequest r;
    r.id = id;
    r.arrival_h = arrive;
    r.departure_h = depart;
    r.cores = cores;
    r.memory_gb = mem;
    return r;
}

TEST(VmTest, LifetimeComputed)
{
    EXPECT_DOUBLE_EQ(vm(1, 2.0, 7.5, 4, 16.0).lifetimeHours(), 5.5);
}

TEST(VmTraceTest, PeakOfDisjointVmsIsMax)
{
    VmTrace t;
    t.vms = {vm(1, 0.0, 1.0, 8, 32.0), vm(2, 2.0, 3.0, 4, 64.0)};
    EXPECT_EQ(t.peakConcurrentCores(), 8);
    EXPECT_DOUBLE_EQ(t.peakConcurrentMemoryGb(), 64.0);
}

TEST(VmTraceTest, PeakOfOverlappingVmsIsSum)
{
    VmTrace t;
    t.vms = {vm(1, 0.0, 10.0, 8, 32.0), vm(2, 5.0, 15.0, 4, 64.0)};
    EXPECT_EQ(t.peakConcurrentCores(), 12);
    EXPECT_DOUBLE_EQ(t.peakConcurrentMemoryGb(), 96.0);
}

TEST(VmTraceTest, BackToBackVmsDoNotStack)
{
    // Departure at t frees resources before an arrival at t.
    VmTrace t;
    t.vms = {vm(1, 0.0, 5.0, 8, 32.0), vm(2, 5.0, 10.0, 8, 32.0)};
    EXPECT_EQ(t.peakConcurrentCores(), 8);
}

TEST(VmTraceTest, PeakIndependentOfVectorOrder)
{
    VmTrace a;
    a.vms = {vm(1, 0.0, 10.0, 2, 8.0), vm(2, 1.0, 4.0, 16, 64.0),
             vm(3, 3.0, 12.0, 8, 16.0)};
    VmTrace b = a;
    std::swap(b.vms[0], b.vms[2]);
    EXPECT_EQ(a.peakConcurrentCores(), b.peakConcurrentCores());
    EXPECT_EQ(a.peakConcurrentCores(), 26);
}

TEST(VmTraceTest, EmptyTraceHasZeroPeak)
{
    VmTrace t;
    EXPECT_EQ(t.peakConcurrentCores(), 0);
    EXPECT_DOUBLE_EQ(t.peakConcurrentMemoryGb(), 0.0);
}

} // namespace
} // namespace gsku::cluster
