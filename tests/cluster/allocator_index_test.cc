/**
 * @file
 * Placement-index equivalence: ReplayOptions::use_placement_index swaps
 * the O(servers) linear scan for an O(log servers) free-capacity index,
 * and the two paths must produce bit-identical replays (the winner is
 * the same lexicographic minimum either way — see allocator.h). These
 * tests replay generated traces under both paths and require exact
 * equality of every count and every metric, for BestFit and WorstFit,
 * with and without stop_on_reject, and for multi-green-group clusters.
 */
#include <gtest/gtest.h>

#include <vector>

#include "cluster/allocator.h"
#include "cluster/trace_gen.h"
#include "perf/app.h"

namespace gsku::cluster {
namespace {

AdoptionTable
adoptAll(double factor)
{
    AdoptionTable t;
    const carbon::Generation gens[] = {carbon::Generation::Gen1,
                                       carbon::Generation::Gen2,
                                       carbon::Generation::Gen3};
    for (std::size_t i = 0; i < perf::AppCatalog::all().size(); ++i) {
        for (auto g : gens) {
            t.set(i, g, {true, factor});
        }
    }
    return t;
}

VmTrace
generatedTrace(double concurrent_vms, std::uint64_t seed)
{
    TraceGenParams params;
    params.target_concurrent_vms = concurrent_vms;
    params.duration_h = 24.0 * 3.0;
    return TraceGenerator(params).generate(seed);
}

void
expectGroupsEqual(const GroupMetrics &a, const GroupMetrics &b)
{
    EXPECT_EQ(a.servers, b.servers);
    EXPECT_EQ(a.vms_placed, b.vms_placed);
    // Exact equality on purpose: the contract is bit-identical, not
    // approximately equal.
    EXPECT_EQ(a.mean_core_packing, b.mean_core_packing);
    EXPECT_EQ(a.mean_mem_packing, b.mean_mem_packing);
    EXPECT_EQ(a.mean_max_mem_utilization, b.mean_max_mem_utilization);
}

void
expectReplaysEqual(const ReplayResult &a, const ReplayResult &b)
{
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.green_placed, b.green_placed);
    EXPECT_EQ(a.green_fallbacks, b.green_fallbacks);
    expectGroupsEqual(a.baseline, b.baseline);
    expectGroupsEqual(a.green, b.green);
}

/** Replays the same scenario with the scan and with the index. */
void
expectScanIndexParity(const VmTrace &trace, const ClusterSpec &cluster,
                      const AdoptionTable &adoption, ReplayOptions opts)
{
    opts.use_placement_index = false;
    const ReplayResult scan =
        VmAllocator(opts).replay(trace, cluster, adoption);
    opts.use_placement_index = true;
    const ReplayResult indexed =
        VmAllocator(opts).replay(trace, cluster, adoption);
    expectReplaysEqual(scan, indexed);
}

TEST(AllocatorIndexTest, BestFitMatchesScanOnGeneratedTraces)
{
    const ClusterSpec cluster{carbon::StandardSkus::baseline(),
                              carbon::StandardSkus::greenFull(), 40, 30};
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        expectScanIndexParity(generatedTrace(120.0, seed), cluster,
                              adoptAll(1.1), ReplayOptions{});
    }
}

TEST(AllocatorIndexTest, WorstFitMatchesScanOnGeneratedTraces)
{
    ReplayOptions opts;
    opts.policy = PlacementPolicy::WorstFit;
    const ClusterSpec cluster{carbon::StandardSkus::baseline(),
                              carbon::StandardSkus::greenFull(), 40, 30};
    for (std::uint64_t seed : {4u, 5u}) {
        expectScanIndexParity(generatedTrace(120.0, seed), cluster,
                              adoptAll(1.1), opts);
    }
}

TEST(AllocatorIndexTest, MatchesScanUnderOverloadWithoutStopOnReject)
{
    // An undersized cluster: many placements fail, servers repeatedly
    // empty and refill, and the replay keeps going past rejections --
    // the index's erase/insert bookkeeping is exercised hardest here.
    ReplayOptions opts;
    opts.stop_on_reject = false;
    const ClusterSpec cluster{carbon::StandardSkus::baseline(),
                              carbon::StandardSkus::greenFull(), 8, 6};
    for (std::uint64_t seed : {6u, 7u}) {
        expectScanIndexParity(generatedTrace(150.0, seed), cluster,
                              adoptAll(1.2), opts);
    }
}

TEST(AllocatorIndexTest, MatchesScanWithoutAdoption)
{
    ReplayOptions opts;
    opts.stop_on_reject = false;
    const ClusterSpec cluster{carbon::StandardSkus::baseline(),
                              carbon::StandardSkus::greenFull(), 30, 0};
    expectScanIndexParity(generatedTrace(100.0, 8), cluster,
                          AdoptionTable::none(), opts);
}

TEST(AllocatorIndexTest, MultiGreenGroupMatchesScan)
{
    MultiClusterSpec cluster;
    cluster.baseline_sku = carbon::StandardSkus::baseline();
    cluster.baselines = 30;
    cluster.greens.push_back(
        {carbon::StandardSkus::greenFull(), 15, adoptAll(1.15)});
    cluster.greens.push_back(
        {carbon::StandardSkus::greenCxl(), 15, adoptAll(1.05)});

    const VmTrace trace = generatedTrace(110.0, 9);
    ReplayOptions opts;
    opts.stop_on_reject = false;

    opts.use_placement_index = false;
    const MultiReplayResult scan = VmAllocator(opts).replay(trace, cluster);
    opts.use_placement_index = true;
    const MultiReplayResult indexed =
        VmAllocator(opts).replay(trace, cluster);

    EXPECT_EQ(scan.success, indexed.success);
    EXPECT_EQ(scan.placed, indexed.placed);
    EXPECT_EQ(scan.rejected, indexed.rejected);
    EXPECT_EQ(scan.green_placed, indexed.green_placed);
    EXPECT_EQ(scan.green_fallbacks, indexed.green_fallbacks);
    expectGroupsEqual(scan.baseline, indexed.baseline);
    ASSERT_EQ(scan.greens.size(), indexed.greens.size());
    for (std::size_t g = 0; g < scan.greens.size(); ++g) {
        expectGroupsEqual(scan.greens[g], indexed.greens[g]);
    }
}

TEST(AllocatorIndexTest, FirstFitIgnoresTheIndexFlag)
{
    // FirstFit always scans (documented in ReplayOptions); flipping the
    // flag must not change anything.
    ReplayOptions opts;
    opts.policy = PlacementPolicy::FirstFit;
    const ClusterSpec cluster{carbon::StandardSkus::baseline(),
                              carbon::StandardSkus::greenFull(), 20, 10};
    expectScanIndexParity(generatedTrace(80.0, 10), cluster, adoptAll(1.1),
                          opts);
}

} // namespace
} // namespace gsku::cluster
