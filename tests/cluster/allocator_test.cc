/**
 * @file
 * VM allocation simulator tests: the three §V placement rules (best-fit,
 * prefer non-empty, placement constraints), adoption-driven inflation,
 * GreenSKU fallback, rejection handling, and packing metrics.
 */
#include <gtest/gtest.h>

#include "cluster/allocator.h"
#include "common/contracts.h"
#include "common/error.h"
#include "perf/app.h"

namespace gsku::cluster {
namespace {

VmRequest
vm(VmId id, double arrive, double depart, int cores, double mem,
   carbon::Generation gen = carbon::Generation::Gen3,
   std::size_t app_index = 0)
{
    VmRequest r;
    r.id = id;
    r.arrival_h = arrive;
    r.departure_h = depart;
    r.cores = cores;
    r.memory_gb = mem;
    r.origin_generation = gen;
    r.app_index = app_index;
    r.max_mem_touch_fraction = 0.5;
    return r;
}

VmTrace
makeTrace(std::vector<VmRequest> vms, double duration = 100.0)
{
    VmTrace t;
    t.name = "test";
    t.duration_h = duration;
    t.vms = std::move(vms);
    return t;
}

ClusterSpec
spec(int baselines, int greens)
{
    return ClusterSpec{carbon::StandardSkus::baseline(),
                       carbon::StandardSkus::greenFull(), baselines,
                       greens};
}

AdoptionTable
adoptAll(double factor)
{
    AdoptionTable t;
    const carbon::Generation gens[] = {carbon::Generation::Gen1,
                                       carbon::Generation::Gen2,
                                       carbon::Generation::Gen3};
    for (std::size_t i = 0; i < perf::AppCatalog::all().size(); ++i) {
        for (auto g : gens) {
            t.set(i, g, {true, factor});
        }
    }
    return t;
}

TEST(AdoptionTableTest, DefaultsToNoAdoption)
{
    const AdoptionTable t = AdoptionTable::none();
    EXPECT_DOUBLE_EQ(t.adoptionRate(), 0.0);
    EXPECT_FALSE(t.get(0, carbon::Generation::Gen1).adopt);
}

TEST(AdoptionTableTest, SetGetRoundTrips)
{
    AdoptionTable t;
    t.set(3, carbon::Generation::Gen2, {true, 1.25});
    const auto d = t.get(3, carbon::Generation::Gen2);
    EXPECT_TRUE(d.adopt);
    EXPECT_DOUBLE_EQ(d.scaling_factor, 1.25);
    EXPECT_FALSE(t.get(3, carbon::Generation::Gen1).adopt);
}

TEST(AdoptionTableTest, Validation)
{
    AdoptionTable t;
    EXPECT_THROW(t.set(1000, carbon::Generation::Gen1, {true, 1.0}),
                 UserError);
    EXPECT_THROW(t.set(0, carbon::Generation::Gen1, {true, 0.5}),
                 UserError);
    EXPECT_THROW(t.get(0, carbon::Generation::GreenSku), UserError);
}

TEST(AllocatorTest, PlacesAllWhenCapacitySuffices)
{
    VmAllocator alloc;
    const auto result = alloc.replay(
        makeTrace({vm(1, 0, 10, 8, 32), vm(2, 1, 11, 16, 64)}), spec(1, 0),
        AdoptionTable::none());
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.placed, 2);
    EXPECT_EQ(result.rejected, 0);
}

TEST(AllocatorTest, RejectsWhenCoresExhausted)
{
    // 80-core baseline cannot host 3 x 32-core concurrent VMs.
    VmAllocator alloc;
    const auto result = alloc.replay(
        makeTrace({vm(1, 0, 10, 32, 64), vm(2, 1, 10, 32, 64),
                   vm(3, 2, 10, 32, 64)}),
        spec(1, 0), AdoptionTable::none());
    EXPECT_FALSE(result.success);
    EXPECT_EQ(result.rejected, 1);
}

TEST(AllocatorTest, RejectsWhenMemoryExhausted)
{
    // Cores fit but memory (768 GB) does not.
    VmAllocator alloc;
    const auto result = alloc.replay(
        makeTrace({vm(1, 0, 10, 8, 700), vm(2, 1, 10, 8, 700)}),
        spec(1, 0), AdoptionTable::none());
    EXPECT_FALSE(result.success);
}

TEST(AllocatorTest, DepartureFreesResources)
{
    // Sequential VMs reuse the same server.
    VmAllocator alloc;
    const auto result = alloc.replay(
        makeTrace({vm(1, 0, 5, 64, 512), vm(2, 6, 10, 64, 512)}),
        spec(1, 0), AdoptionTable::none());
    EXPECT_TRUE(result.success);
}

TEST(AllocatorTest, PrefersNonEmptyServers)
{
    // Two baselines; three small VMs must all land on one server.
    VmAllocator alloc;
    const auto result = alloc.replay(
        makeTrace({vm(1, 0, 60, 4, 16), vm(2, 1, 60, 4, 16),
                   vm(3, 2, 60, 4, 16)}),
        spec(2, 0), AdoptionTable::none());
    EXPECT_TRUE(result.success);
    // Mean max-memory utilization averages only over used servers; with
    // consolidation exactly one server was ever used.
    EXPECT_GT(result.baseline.mean_max_mem_utilization, 0.0);
    // Peak packing on the single non-empty server is 12/80 cores.
    EXPECT_NEAR(result.baseline.mean_core_packing, 12.0 / 80.0, 0.05);
}

TEST(AllocatorTest, FullNodeVmTakesDedicatedBaseline)
{
    VmRequest fn = vm(1, 0, 50, 80, 768);
    fn.full_node = true;
    // A second VM cannot share the dedicated server.
    VmAllocator alloc;
    const auto reject = alloc.replay(makeTrace({fn, vm(2, 1, 10, 2, 8)}),
                                     spec(1, 0), AdoptionTable::none());
    EXPECT_FALSE(reject.success);

    const auto ok = alloc.replay(makeTrace({fn, vm(2, 1, 10, 2, 8)}),
                                 spec(2, 0), AdoptionTable::none());
    EXPECT_TRUE(ok.success);
}

TEST(AllocatorTest, FullNodeVmNeverUsesGreen)
{
    VmRequest fn = vm(1, 0, 50, 80, 768);
    fn.full_node = true;
    VmAllocator alloc;
    // Only green servers available: the full-node VM must be rejected.
    const auto result =
        alloc.replay(makeTrace({fn}), spec(0, 2), adoptAll(1.0));
    EXPECT_FALSE(result.success);
}

TEST(AllocatorTest, AdoptingVmScalesOnGreen)
{
    // One green server (128 cores); a 64-core VM at factor 1.5 consumes
    // 96 cores, so two such VMs cannot share it.
    VmAllocator alloc;
    const auto one = alloc.replay(makeTrace({vm(1, 0, 10, 64, 256)}),
                                  spec(0, 1), adoptAll(1.5));
    EXPECT_TRUE(one.success);
    EXPECT_EQ(one.green_placed, 1);

    const auto two = alloc.replay(
        makeTrace({vm(1, 0, 10, 64, 256), vm(2, 1, 10, 64, 256)}),
        spec(0, 1), adoptAll(1.5));
    EXPECT_FALSE(two.success);
}

TEST(AllocatorTest, AdopterFallsBackToBaselineUnscaled)
{
    // Green full; the adopting VM falls back to the baseline at its
    // original size (the §V fungibility rule).
    VmAllocator alloc;
    const auto result = alloc.replay(
        makeTrace({vm(1, 0, 10, 100, 400), vm(2, 1, 10, 60, 240)}),
        spec(1, 1), adoptAll(1.25));
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.green_placed, 1);
    EXPECT_EQ(result.green_fallbacks, 1);
    EXPECT_EQ(result.baseline.vms_placed, 1);
}

TEST(AllocatorTest, NonAdopterNeverUsesGreen)
{
    VmAllocator alloc;
    const auto result = alloc.replay(makeTrace({vm(1, 0, 10, 8, 32)}),
                                     spec(0, 1), AdoptionTable::none());
    EXPECT_FALSE(result.success);
    EXPECT_EQ(result.green.vms_placed, 0);
}

TEST(AllocatorTest, BestFitMinimizesLeftover)
{
    // Fill one server to 72/80 cores; an 8-core VM should land there
    // (best fit), leaving the second server empty.
    VmAllocator alloc;
    const auto result = alloc.replay(
        makeTrace({vm(1, 0, 20, 72, 288), vm(2, 1, 20, 8, 32)}),
        spec(2, 0), AdoptionTable::none());
    EXPECT_TRUE(result.success);
    // Exactly one server used -> its packing is full at snapshot times.
    EXPECT_GT(result.baseline.mean_core_packing, 0.99);
}

TEST(AllocatorTest, MaxMemUtilizationTracksTouchedMemory)
{
    // One VM touching 50% of 384 GB on a 768 GB server: 25%.
    VmAllocator alloc;
    const auto result = alloc.replay(makeTrace({vm(1, 0, 50, 8, 384)}),
                                     spec(1, 0), AdoptionTable::none());
    EXPECT_TRUE(result.success);
    EXPECT_NEAR(result.baseline.mean_max_mem_utilization, 0.25, 1e-9);
}

TEST(AllocatorTest, StopOnRejectFalseCountsAllRejections)
{
    ReplayOptions opts;
    opts.stop_on_reject = false;
    VmAllocator alloc(opts);
    const auto result = alloc.replay(
        makeTrace({vm(1, 0, 10, 80, 700), vm(2, 1, 10, 80, 700),
                   vm(3, 2, 10, 80, 700)}),
        spec(1, 0), AdoptionTable::none());
    EXPECT_FALSE(result.success);
    EXPECT_EQ(result.placed, 1);
    EXPECT_EQ(result.rejected, 2);
}

TEST(AllocatorTest, EmptyClusterRejected)
{
    VmAllocator alloc;
    EXPECT_THROW(alloc.replay(makeTrace({vm(1, 0, 1, 1, 1)}), spec(0, 0),
                              AdoptionTable::none()),
                 UserError);
}

TEST(AllocatorTest, PackingMetricsWithinBounds)
{
    VmAllocator alloc;
    const auto result = alloc.replay(
        makeTrace({vm(1, 0, 40, 16, 64), vm(2, 5, 60, 24, 96),
                   vm(3, 10, 80, 8, 32)}),
        spec(2, 0), AdoptionTable::none());
    EXPECT_TRUE(result.success);
    EXPECT_GE(result.baseline.mean_core_packing, 0.0);
    EXPECT_LE(result.baseline.mean_core_packing, 1.0);
    EXPECT_GE(result.baseline.mean_mem_packing, 0.0);
    EXPECT_LE(result.baseline.mean_mem_packing, 1.0);
    EXPECT_LE(result.baseline.mean_max_mem_utilization, 1.0);
}

TEST(AllocatorContractTest, CorruptGroupMetricsViolatesContract)
{
    if (!contracts::enabled()) {
        GTEST_SKIP() << "contracts compiled out (GSKU_CONTRACTS=OFF)";
    }
    GroupMetrics m;
    m.servers = 4;
    m.vms_placed = 10;
    m.mean_core_packing = 0.7;
    m.mean_mem_packing = 0.6;
    m.mean_max_mem_utilization = 0.8;
    EXPECT_NO_THROW(m.checkInvariants());

    GroupMetrics negative_servers = m;
    negative_servers.servers = -1;
    EXPECT_THROW(negative_servers.checkInvariants(), InternalError);

    GroupMetrics overpacked = m;
    overpacked.mean_core_packing = 1.2;
    EXPECT_THROW(overpacked.checkInvariants(), InternalError);

    GroupMetrics oversubscribed = m;
    oversubscribed.mean_max_mem_utilization = 1.5;
    EXPECT_THROW(oversubscribed.checkInvariants(), InternalError);
}

} // namespace
} // namespace gsku::cluster
