/** @file Growth-buffer sizing tests (§IV-D, design goal D2). */
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/demand.h"
#include "common/error.h"

namespace gsku::cluster {
namespace {

TEST(NormalQuantileTest, KnownValues)
{
    EXPECT_NEAR(GrowthBufferSizer::normalQuantile(0.5), 0.0, 1e-8);
    EXPECT_NEAR(GrowthBufferSizer::normalQuantile(0.975), 1.959964, 1e-5);
    EXPECT_NEAR(GrowthBufferSizer::normalQuantile(0.999), 3.090232, 1e-5);
    EXPECT_NEAR(GrowthBufferSizer::normalQuantile(0.001), -3.090232,
                1e-5);
}

TEST(NormalQuantileTest, RejectsBoundaries)
{
    EXPECT_THROW(GrowthBufferSizer::normalQuantile(0.0), UserError);
    EXPECT_THROW(GrowthBufferSizer::normalQuantile(1.0), UserError);
}

TEST(GrowthBufferTest, BufferMatchesClosedForm)
{
    DemandParams p;
    p.mean_cores = 1000.0;
    p.weekly_growth = 0.01;
    p.weekly_sigma = 0.02;
    p.lead_time_weeks = 9.0;
    p.service_level = 0.975;
    const GrowthBufferSizer sizer(p);
    // mean growth 1000*0.01*9 = 90; z*sigma = 1.96*1000*0.02*3 = 117.6.
    EXPECT_NEAR(sizer.bufferCores(), 90.0 + 117.598, 0.1);
    EXPECT_NEAR(sizer.bufferFraction(), 0.2076, 0.001);
}

TEST(GrowthBufferTest, DefaultFractionNearEvaluatorSetting)
{
    // The evaluator's default 8% buffer fraction comes from this sizing.
    const GrowthBufferSizer sizer;
    EXPECT_NEAR(sizer.bufferFraction(), 0.08, 0.35 * 0.08 + 0.03);
}

TEST(GrowthBufferTest, HigherServiceLevelNeedsMoreBuffer)
{
    DemandParams p;
    p.service_level = 0.99;
    const GrowthBufferSizer low(p);
    p.service_level = 0.9999;
    const GrowthBufferSizer high(p);
    EXPECT_GT(high.bufferCores(), low.bufferCores());
}

TEST(GrowthBufferTest, LongerLeadTimeNeedsMoreBuffer)
{
    DemandParams p;
    p.lead_time_weeks = 4.0;
    const GrowthBufferSizer fast(p);
    p.lead_time_weeks = 16.0;
    const GrowthBufferSizer slow(p);
    EXPECT_GT(slow.bufferCores(), fast.bufferCores());
}

TEST(GrowthBufferTest, FragmentationGrowsLikeSqrtK)
{
    // Design goal D2: "adding many server options may require larger
    // buffers". With negligible drift the penalty is sqrt(k) - 1.
    DemandParams p;
    p.weekly_growth = 0.0;
    const GrowthBufferSizer sizer(p);
    EXPECT_NEAR(sizer.fragmentationPenalty(1), 0.0, 1e-9);
    EXPECT_NEAR(sizer.fragmentationPenalty(4), 1.0, 1e-6);
    EXPECT_NEAR(sizer.fragmentationPenalty(9), 2.0, 1e-6);
}

TEST(GrowthBufferTest, DriftDilutesFragmentationPenalty)
{
    // The deterministic growth part does not fragment.
    const GrowthBufferSizer sizer;  // Has non-zero drift.
    EXPECT_LT(sizer.fragmentationPenalty(4), 1.0);
    EXPECT_GT(sizer.fragmentationPenalty(4), 0.0);
}

TEST(GrowthBufferTest, SimulationMatchesAnalyticServiceLevel)
{
    DemandParams p;
    p.service_level = 0.95;     // Moderate level keeps the MC cheap.
    const GrowthBufferSizer sizer(p);
    Rng rng(123);
    const double shortfall =
        sizer.simulateShortfallProbability(rng, 40000);
    EXPECT_NEAR(shortfall, 0.05, 0.012);
}

TEST(GrowthBufferTest, ParameterValidation)
{
    DemandParams p;
    p.mean_cores = 0.0;
    EXPECT_THROW(GrowthBufferSizer{p}, UserError);
    p = DemandParams{};
    p.service_level = 0.4;
    EXPECT_THROW(GrowthBufferSizer{p}, UserError);
    p = DemandParams{};
    const GrowthBufferSizer sizer(p);
    EXPECT_THROW(sizer.fragmentedBufferCores(0), UserError);
    Rng rng(1);
    EXPECT_THROW(sizer.simulateShortfallProbability(rng, 0), UserError);
}

} // namespace
} // namespace gsku::cluster
