/** @file Trace CSV round-trip and error-reporting tests. */
#include <gtest/gtest.h>

#include <sstream>

#include "cluster/trace_gen.h"
#include "cluster/trace_io.h"
#include "common/error.h"

namespace gsku::cluster {
namespace {

TEST(TraceIoTest, RoundTripsGeneratedTrace)
{
    TraceGenParams params;
    params.target_concurrent_vms = 80.0;
    params.duration_h = 24.0 * 3.0;
    const VmTrace original = TraceGenerator(params).generate(9);

    std::stringstream buffer;
    writeTraceCsv(original, buffer);
    const VmTrace loaded = readTraceCsv(buffer, original.name);

    ASSERT_EQ(loaded.vms.size(), original.vms.size());
    for (std::size_t i = 0; i < original.vms.size(); ++i) {
        const VmRequest &a = original.vms[i];
        const VmRequest &b = loaded.vms[i];
        ASSERT_EQ(a.id, b.id);
        ASSERT_DOUBLE_EQ(a.arrival_h, b.arrival_h);
        ASSERT_DOUBLE_EQ(a.departure_h, b.departure_h);
        ASSERT_EQ(a.cores, b.cores);
        ASSERT_DOUBLE_EQ(a.memory_gb, b.memory_gb);
        ASSERT_EQ(a.origin_generation, b.origin_generation);
        ASSERT_EQ(a.full_node, b.full_node);
        ASSERT_EQ(a.app_index, b.app_index);
        ASSERT_DOUBLE_EQ(a.max_mem_touch_fraction,
                         b.max_mem_touch_fraction);
    }
    EXPECT_EQ(loaded.peakConcurrentCores(),
              original.peakConcurrentCores());
}

TEST(TraceIoTest, ReadSortsOutOfOrderRows)
{
    std::stringstream in(
        "id,arrival_h,departure_h,cores,memory_gb,generation,full_node,"
        "app,max_mem_touch_fraction\n"
        "2,5.0,6.0,4,16,Gen3,0,Redis,0.5\n"
        "1,1.0,2.0,2,8,Gen1,0,Moses,0.4\n");
    const VmTrace trace = readTraceCsv(in);
    ASSERT_EQ(trace.vms.size(), 2u);
    EXPECT_EQ(trace.vms[0].id, 1u);
    EXPECT_EQ(trace.vms[1].id, 2u);
}

TEST(TraceIoTest, ErrorsNameTheLine)
{
    const char *header =
        "id,arrival_h,departure_h,cores,memory_gb,generation,full_node,"
        "app,max_mem_touch_fraction\n";
    struct Case
    {
        const char *row;
        const char *needle;
    };
    const Case cases[] = {
        {"1,1.0,2.0,4,16,Gen9,0,Redis,0.5\n", "unknown generation"},
        {"1,1.0,2.0,4,16,Gen1,2,Redis,0.5\n", "full_node"},
        {"1,1.0,2.0,4,16,Gen1,0,Postgres,0.5\n", "unknown application"},
        {"1,3.0,2.0,4,16,Gen1,0,Redis,0.5\n", "departure"},
        {"1,1.0,2.0,0,16,Gen1,0,Redis,0.5\n", "positive"},
        {"1,1.0,2.0,4,16,Gen1,0,Redis,1.5\n", "touch fraction"},
        // Checked parsers: malformed cells name source, line, field,
        // and token (common/parse.h), and trailing junk that std::stod
        // silently accepted ("12abc" -> 12) is rejected outright.
        {"1,abc,2.0,4,16,Gen1,0,Redis,0.5\n",
         "field 'arrival_h': cannot parse 'abc' as double"},
        {"1,1.0,2.0,4abc,16,Gen1,0,Redis,0.5\n",
         "field 'cores': cannot parse '4abc' as int"},
        {"1,1.0,2.0,4,16junk,Gen1,0,Redis,0.5\n", "trailing junk"},
        {"-1,1.0,2.0,4,16,Gen1,0,Redis,0.5\n", "sign not allowed"},
        {"1,1.0,2.0,4,16,Gen1,0,Redis\n", "cells"},
    };
    for (const Case &c : cases) {
        std::stringstream in(std::string(header) + c.row);
        try {
            readTraceCsv(in);
            FAIL() << "expected throw for: " << c.row;
        } catch (const UserError &e) {
            EXPECT_NE(std::string(e.what()).find("line 2"),
                      std::string::npos)
                << e.what();
            EXPECT_NE(std::string(e.what()).find(c.needle),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(TraceIoTest, RejectsBadHeaderAndEmptyFile)
{
    std::stringstream empty("");
    EXPECT_THROW(readTraceCsv(empty), UserError);

    std::stringstream bad_header("a,b,c\n1,2,3\n");
    EXPECT_THROW(readTraceCsv(bad_header), UserError);

    std::stringstream no_rows(
        "id,arrival_h,departure_h,cores,memory_gb,generation,full_node,"
        "app,max_mem_touch_fraction\n");
    EXPECT_THROW(readTraceCsv(no_rows), UserError);
}

TEST(TraceIoTest, SkipsBlankLines)
{
    std::stringstream in(
        "id,arrival_h,departure_h,cores,memory_gb,generation,full_node,"
        "app,max_mem_touch_fraction\n"
        "\n"
        "1,1.0,2.0,2,8,Gen2,0,Nginx,0.3\n"
        "\n");
    const VmTrace trace = readTraceCsv(in);
    EXPECT_EQ(trace.vms.size(), 1u);
    EXPECT_EQ(trace.vms[0].origin_generation, carbon::Generation::Gen2);
}

} // namespace
} // namespace gsku::cluster
