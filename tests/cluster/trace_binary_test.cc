/**
 * @file
 * Tests of the `gsku-trace-v1` binary format and the streaming trace
 * engine: bit-exact round trips across encodings, shared content
 * digests, offset-naming rejection of corrupt/truncated/version-skewed
 * files, streaming-vs-materialized replay parity, and the sweep-line
 * peak-demand regression against a brute-force reference.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "carbon/sku.h"
#include "cluster/allocator.h"
#include "cluster/trace_binary.h"
#include "cluster/trace_gen.h"
#include "cluster/trace_io.h"
#include "cluster/trace_stats.h"
#include "common/error.h"

namespace gsku::cluster {
namespace {

namespace fs = std::filesystem;

/** Per-test scratch directory under the system temp dir. */
class TraceBinaryTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("gsku_trace_binary_test_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string &name) const
    {
        return (fs::path(dir_) / name).string();
    }

    std::string dir_;
};

VmTrace
smallTrace(std::uint64_t seed = 9)
{
    TraceGenParams params;
    params.target_concurrent_vms = 80.0;
    params.duration_h = 24.0 * 3.0;
    return TraceGenerator(params).generate(seed);
}

void
expectSameVms(const std::vector<VmRequest> &a,
              const std::vector<VmRequest> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].id, b[i].id) << "vm " << i;
        // Exact equality on purpose: the binary format stores doubles
        // by bit pattern, so the round trip must be bit-exact.
        ASSERT_EQ(a[i].arrival_h, b[i].arrival_h) << "vm " << i;
        ASSERT_EQ(a[i].departure_h, b[i].departure_h) << "vm " << i;
        ASSERT_EQ(a[i].cores, b[i].cores) << "vm " << i;
        ASSERT_EQ(a[i].memory_gb, b[i].memory_gb) << "vm " << i;
        ASSERT_EQ(a[i].origin_generation, b[i].origin_generation)
            << "vm " << i;
        ASSERT_EQ(a[i].full_node, b[i].full_node) << "vm " << i;
        ASSERT_EQ(a[i].app_index, b[i].app_index) << "vm " << i;
        ASSERT_EQ(a[i].max_mem_touch_fraction,
                  b[i].max_mem_touch_fraction)
            << "vm " << i;
    }
}

TEST_F(TraceBinaryTest, RoundTripsBitExact)
{
    const VmTrace original = smallTrace();
    const std::string file = path("trace.gskutrc");
    writeTraceBinary(original, file);
    const VmTrace loaded = readTraceBinary(file);
    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.duration_h, original.duration_h);
    expectSameVms(original.vms, loaded.vms);
}

TEST_F(TraceBinaryTest, CsvToBinaryToCsvIsByteIdentical)
{
    const VmTrace original = smallTrace();
    std::stringstream first_csv;
    writeTraceCsv(original, first_csv);

    std::stringstream parse_in(first_csv.str());
    const VmTrace parsed = readTraceCsv(parse_in);
    const std::string file = path("trace.gskutrc");
    writeTraceBinary(parsed, file);

    std::stringstream second_csv;
    writeTraceCsv(readTraceBinary(file), second_csv);
    EXPECT_EQ(first_csv.str(), second_csv.str());
}

TEST_F(TraceBinaryTest, ContentDigestSharedAcrossEncodings)
{
    const VmTrace trace = smallTrace();
    const std::uint64_t expected = traceContentDigest(trace);

    const std::string bin = path("trace.gskutrc");
    writeTraceBinary(trace, bin);
    BinaryTraceReader binary(bin);
    EXPECT_EQ(binary.contentDigest(), expected);

    const std::string csv = path("trace.csv");
    {
        std::ofstream out(csv);
        writeTraceCsv(trace, out);
    }
    CsvTraceReader csv_reader(csv);
    EXPECT_EQ(csv_reader.contentDigest(), expected);

    VectorTraceReader vec(trace);
    EXPECT_EQ(vec.contentDigest(), expected);

    // Any field perturbation must change the digest.
    VmTrace tweaked = trace;
    tweaked.vms.front().memory_gb += 1.0;
    EXPECT_NE(traceContentDigest(tweaked), expected);
}

TEST_F(TraceBinaryTest, StreamingReadersMatchMaterialized)
{
    const VmTrace trace = smallTrace();
    const std::string bin = path("trace.gskutrc");
    const std::string csv = path("trace.csv");
    writeTraceBinary(trace, bin);
    {
        std::ofstream out(csv);
        writeTraceCsv(trace, out);
    }

    for (int pass = 0; pass < 2; ++pass) {
        BinaryTraceReader binary(bin);
        CsvTraceReader csv_reader(csv);
        EXPECT_TRUE(csv_reader.durationKnown());
        EXPECT_EQ(binary.name(), trace.name);
        EXPECT_EQ(csv_reader.name(), trace.name);
        EXPECT_EQ(binary.durationH(), trace.duration_h);
        EXPECT_EQ(csv_reader.durationH(), trace.duration_h);
        EXPECT_EQ(binary.sizeHint(), trace.vms.size());

        std::vector<VmRequest> from_binary;
        std::vector<VmRequest> from_csv;
        VmRequest vm;
        if (pass == 1) {
            // Exercise reset(): drain one VM first, then rewind.
            ASSERT_TRUE(binary.next(&vm));
            ASSERT_TRUE(csv_reader.next(&vm));
            binary.reset();
            csv_reader.reset();
        }
        while (binary.next(&vm)) {
            from_binary.push_back(vm);
        }
        while (csv_reader.next(&vm)) {
            from_csv.push_back(vm);
        }
        expectSameVms(trace.vms, from_binary);
        expectSameVms(trace.vms, from_csv);
    }
}

TEST_F(TraceBinaryTest, GenerateStreamMatchesGenerate)
{
    TraceGenParams params;
    params.target_concurrent_vms = 60.0;
    params.duration_h = 24.0 * 2.0;
    const TraceGenerator gen(params);
    const VmTrace trace = gen.generate(5);

    std::vector<VmRequest> streamed;
    const std::uint64_t count = gen.generateStream(
        5, [&streamed](const VmRequest &vm) { streamed.push_back(vm); });
    EXPECT_EQ(count, trace.vms.size());
    expectSameVms(trace.vms, streamed);

    const std::string bin = path("gen.gskutrc");
    EXPECT_EQ(gen.generateToBinary(5, bin), count);
    const VmTrace loaded = readTraceBinary(bin);
    EXPECT_EQ(loaded.name, trace.name);
    expectSameVms(trace.vms, loaded.vms);
}

TEST_F(TraceBinaryTest, StreamingStatsMatchesBatch)
{
    const VmTrace trace = smallTrace(21);
    const std::string bin = path("trace.gskutrc");
    writeTraceBinary(trace, bin);

    const TraceStats batch = summarizeTrace(trace);
    BinaryTraceReader reader(bin);
    const TraceStats streamed = summarizeTrace(reader);

    EXPECT_EQ(streamed.trace_name, batch.trace_name);
    EXPECT_EQ(streamed.vm_count, batch.vm_count);
    EXPECT_EQ(streamed.full_node_vms, batch.full_node_vms);
    EXPECT_EQ(streamed.peak_concurrent_cores,
              batch.peak_concurrent_cores);
    EXPECT_EQ(streamed.peak_concurrent_memory_gb,
              batch.peak_concurrent_memory_gb);
    EXPECT_EQ(streamed.mean_population, batch.mean_population);
    EXPECT_EQ(streamed.cores.mean(), batch.cores.mean());
    EXPECT_EQ(streamed.memory_gb.mean(), batch.memory_gb.mean());
    EXPECT_EQ(streamed.class_shares, batch.class_shares);
    EXPECT_EQ(streamed.generation_shares, batch.generation_shares);
}

TEST_F(TraceBinaryTest, StreamingReplayMatchesMaterialized)
{
    const VmTrace trace = smallTrace(33);
    const std::string bin = path("trace.gskutrc");
    const std::string csv = path("trace.csv");
    writeTraceBinary(trace, bin);
    {
        std::ofstream out(csv);
        writeTraceCsv(trace, out);
    }

    ClusterSpec spec;
    spec.baseline_sku = carbon::StandardSkus::baseline();
    spec.green_sku = carbon::StandardSkus::greenFull();
    spec.baselines = 24;
    spec.greens = 8;
    AdoptionTable adoption = AdoptionTable::none();
    for (std::size_t app = 0; app < 8; ++app) {
        adoption.set(app, carbon::Generation::Gen1,
                     AdoptionDecision{true, 1.05});
    }
    ReplayOptions options;
    options.stop_on_reject = false;
    const VmAllocator allocator(options);

    const ReplayResult materialized =
        allocator.replay(trace, spec, adoption);
    BinaryTraceReader bin_reader(bin);
    const ReplayResult from_binary =
        allocator.replay(bin_reader, spec, adoption);
    CsvTraceReader csv_reader(csv);
    const ReplayResult from_csv =
        allocator.replay(csv_reader, spec, adoption);

    auto expect_same = [](const ReplayResult &a, const ReplayResult &b) {
        EXPECT_EQ(a.success, b.success);
        EXPECT_EQ(a.placed, b.placed);
        EXPECT_EQ(a.rejected, b.rejected);
        EXPECT_EQ(a.green_placed, b.green_placed);
        EXPECT_EQ(a.green_fallbacks, b.green_fallbacks);
        auto expect_group = [](const GroupMetrics &x,
                               const GroupMetrics &y) {
            EXPECT_EQ(x.servers, y.servers);
            EXPECT_EQ(x.vms_placed, y.vms_placed);
            EXPECT_EQ(x.mean_core_packing, y.mean_core_packing);
            EXPECT_EQ(x.mean_mem_packing, y.mean_mem_packing);
            EXPECT_EQ(x.mean_max_mem_utilization,
                      y.mean_max_mem_utilization);
        };
        expect_group(a.baseline, b.baseline);
        expect_group(a.green, b.green);
    };
    expect_same(materialized, from_binary);
    expect_same(materialized, from_csv);
    EXPECT_GT(materialized.placed, 0);
}

TEST_F(TraceBinaryTest, SweepMatchesBruteForcePeaks)
{
    // Regression for the peak-demand rewrite: the shared sweep must
    // reproduce the old std::map-of-deltas semantics exactly,
    // including equal-time arrival/departure netting.
    const VmTrace generated = smallTrace(17);

    VmTrace crafted;
    crafted.name = "crafted";
    crafted.duration_h = 10.0;
    // Equal-time handoff: departure at t=2 nets against arrival at t=2.
    crafted.vms.push_back({1, 0.0, 2.0, 4, 16.0});
    crafted.vms.push_back({2, 2.0, 3.0, 4, 16.0});
    // Overlap spike.
    crafted.vms.push_back({3, 2.5, 9.0, 8, 32.0});
    crafted.vms.push_back({4, 2.5, 2.75, 2, 64.0});

    const VmTrace *const traces[] = {&generated, &crafted};
    for (const VmTrace *trace : traces) {
        std::map<double, double> core_deltas;
        std::map<double, double> mem_deltas;
        for (const VmRequest &vm : trace->vms) {
            core_deltas[vm.arrival_h] += vm.cores;
            core_deltas[vm.departure_h] -= vm.cores;
            mem_deltas[vm.arrival_h] += vm.memory_gb;
            mem_deltas[vm.departure_h] -= vm.memory_gb;
        }
        double cur = 0.0;
        double peak_cores = 0.0;
        for (const auto &[t, d] : core_deltas) {
            cur += d;
            peak_cores = std::max(peak_cores, cur);
        }
        cur = 0.0;
        double peak_mem = 0.0;
        for (const auto &[t, d] : mem_deltas) {
            cur += d;
            peak_mem = std::max(peak_mem, cur);
        }
        const PeakDemand peak = trace->peakConcurrentDemand();
        EXPECT_EQ(peak.cores, peak_cores) << trace->name;
        EXPECT_EQ(peak.memory_gb, peak_mem) << trace->name;
        EXPECT_EQ(trace->peakConcurrentCores(),
                  static_cast<int>(peak_cores))
            << trace->name;
        EXPECT_EQ(trace->peakConcurrentMemoryGb(), peak_mem)
            << trace->name;
        EXPECT_GT(peak.max_live_vms, 0u);
    }
    // vm1's departure at t=2 nets against vm2's arrival at t=2, so the
    // population peaks at 3 (vm2 + vm3 + vm4 at t=2.5), never 4.
    EXPECT_EQ(crafted.peakConcurrentDemand().max_live_vms, 3u);
}

TEST_F(TraceBinaryTest, WriterRejectsBadRecords)
{
    const std::string file = path("bad.gskutrc");
    EXPECT_THROW(TraceBinaryWriter(file, "t", 0.0), UserError);

    TraceBinaryWriter writer(file, "t", 10.0);
    VmRequest vm;
    vm.id = 1;
    vm.arrival_h = 5.0;
    vm.departure_h = 6.0;
    vm.cores = 2;
    vm.memory_gb = 8.0;
    writer.add(vm);

    VmRequest unsorted = vm;
    unsorted.id = 2;
    unsorted.arrival_h = 4.0;
    unsorted.departure_h = 4.5;
    EXPECT_THROW(writer.add(unsorted), UserError);

    VmRequest inverted = vm;
    inverted.arrival_h = 7.0;
    inverted.departure_h = 6.5;
    EXPECT_THROW(writer.add(inverted), UserError);

    EXPECT_EQ(writer.finish(), 1u);
    EXPECT_THROW(writer.finish(), UserError);
}

TEST_F(TraceBinaryTest, RejectsCorruptFilesNamingTheOffset)
{
    const VmTrace trace = smallTrace();
    const std::string good = path("good.gskutrc");
    writeTraceBinary(trace, good);
    std::string bytes;
    {
        std::ifstream in(good, std::ios::binary);
        std::stringstream buf;
        buf << in.rdbuf();
        bytes = buf.str();
    }

    auto expect_reject = [this](const std::string &content,
                                const std::string &needle) {
        const std::string file = path("corrupt.gskutrc");
        {
            std::ofstream out(file, std::ios::binary | std::ios::trunc);
            out.write(content.data(),
                      static_cast<std::streamsize>(content.size()));
        }
        try {
            BinaryTraceReader reader(file);
            FAIL() << "expected rejection for: " << needle;
        } catch (const UserError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << "needle '" << needle << "' not in: " << e.what();
        }
    };

    // Truncations: mid-header, mid-records, mid-footer. Every message
    // names the byte offset where validation failed.
    expect_reject(bytes.substr(0, 20), "truncated header at offset");
    expect_reject(bytes.substr(0, bytes.size() / 2),
                  "truncated at offset");
    expect_reject(bytes.substr(0, bytes.size() - 5),
                  "truncated at offset");

    std::string bad = bytes;
    bad[0] = 'X';
    expect_reject(bad, "bad magic at offset 0");

    bad = bytes;
    bad[8] = 9;     // version little-endian low byte.
    expect_reject(bad, "unsupported version 9 at offset 8");

    bad = bytes;
    bad[kTraceBinaryHeaderFixed + 2] ^= 0xff;   // Inside the name.
    expect_reject(bad, "header checksum mismatch at offset");

    auto load_u32 = [&bytes](std::size_t at) {
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i) {
            v = (v << 8) |
                static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]);
        }
        return v;
    };
    const std::size_t header_size = load_u32(12);
    const std::uint32_t name_len = load_u32(32);

    // The app table is parsed (and resolved against the catalog) before
    // the checksum pass, so corrupting an app *name* reports the
    // unknown application rather than a bare checksum failure.
    bad = bytes;
    bad[kTraceBinaryHeaderFixed + name_len + 4] ^= 0xff;
    expect_reject(bad, "unknown application");

    bad = bytes;
    bad[bytes.size() - kTraceBinaryFooterSize + 4] ^= 0x1;
    expect_reject(bad, "record checksum mismatch at offset");

    bad = bytes;
    bad[header_size + 10] ^= 0xff;      // Inside the first record.
    expect_reject(bad, "record checksum mismatch at offset");

    bad = bytes;
    bad[bytes.size() - 1] = 'X';
    expect_reject(bad, "bad end magic");

    expect_reject(bytes + "extra", "trailing data after offset");

    EXPECT_THROW(BinaryTraceReader(path("missing.gskutrc")), UserError);
}

TEST_F(TraceBinaryTest, CsvReaderRequiresSortedRows)
{
    const std::string file = path("unsorted.csv");
    {
        std::ofstream out(file);
        out << "id,arrival_h,departure_h,cores,memory_gb,generation,"
               "full_node,app,max_mem_touch_fraction\n"
               "2,5.0,6.0,4,16,Gen3,0,Redis,0.5\n"
               "1,1.0,2.0,2,8,Gen1,0,Moses,0.4\n";
    }
    CsvTraceReader reader(file);
    EXPECT_FALSE(reader.durationKnown());   // Legacy: no metadata line.
    VmRequest vm;
    ASSERT_TRUE(reader.next(&vm));
    EXPECT_THROW(reader.next(&vm), UserError);

    // The materializing reader still accepts (and sorts) the same file.
    std::ifstream in(file);
    EXPECT_EQ(readTraceCsv(in).vms.size(), 2u);
}

TEST_F(TraceBinaryTest, LegacyCsvDigestInfersDuration)
{
    const std::string file = path("legacy.csv");
    {
        std::ofstream out(file);
        out << "id,arrival_h,departure_h,cores,memory_gb,generation,"
               "full_node,app,max_mem_touch_fraction\n"
               "1,1.0,2.0,2,8,Gen1,0,Moses,0.4\n"
               "2,5.0,6.0,4,16,Gen3,0,Redis,0.5\n";
    }
    CsvTraceReader reader(file, "legacy");
    EXPECT_EQ(reader.name(), "legacy");
    // Digest must match the materialized trace (same inferred
    // duration), and must not disturb the read position.
    std::ifstream in(file);
    const VmTrace materialized = readTraceCsv(in, "legacy");
    EXPECT_EQ(reader.contentDigest(),
              traceContentDigest(materialized));
    VmRequest vm;
    ASSERT_TRUE(reader.next(&vm));
    EXPECT_EQ(vm.id, 1u);
}

} // namespace
} // namespace gsku::cluster
