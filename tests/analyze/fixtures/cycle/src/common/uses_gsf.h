// Fixture: layering violation — common must not reach up into gsf.
#pragma once
#include "gsf/fake_sizing.h"

namespace fx {
struct Uses { int z; };
} // namespace fx
