// Fixture: the gsf-side target of the layering violation.
#pragma once

namespace fx {
struct FakeSizing { int cores; };
} // namespace fx
