// Fixture: the other half of the include cycle.
#pragma once
#include "carbon/cyc_a.h"

namespace fx {
struct B { int y; };
} // namespace fx
