// Fixture: one half of a deliberate include cycle.
#pragma once
#include "carbon/cyc_b.h"

namespace fx {
struct A { int x; };
} // namespace fx
