// Fixture: bench/harness.h is on the timing allow-list.
#pragma once
#include <chrono>

namespace fx {

inline long
wallNow()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

} // namespace fx
