// Fixture: src/obs/ is the timing rule's sanctioned home.
#include <chrono>

namespace fx {

long
traceTimestamp()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

} // namespace fx
