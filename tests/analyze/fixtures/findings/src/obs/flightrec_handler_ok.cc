// Near-miss for the sigsafe rule: a crash-handler TU that stays on
// the async-signal-safe allowlist — raw syscalls, fixed buffers,
// hand-rolled formatting, and _exit (the underscore spelling; plain
// exit() runs atexit handlers and flushes streams). Words like
// malloc or cout in comments must not fire either: rules scan the
// comment-stripped token stream.

namespace gsku::obs::flight {

unsigned long
formatDecimal(unsigned long value, char *out, unsigned long cap)
{
    unsigned long n = 0;
    do {
        if (n < cap)
            out[n++] = static_cast<char>('0' + value % 10);
        value /= 10;
    } while (value != 0);
    for (unsigned long i = 0; i < n / 2; ++i) {
        const char tmp = out[i];
        out[i] = out[n - 1 - i];
        out[n - 1 - i] = tmp;
    }
    return n;
}

void
rawDump(int fd, const char *line, unsigned long len)
{
    ::write(fd, line, len);
    ::fsync(fd);
    if (fd < 0)
        ::_exit(1);
}

} // namespace gsku::obs::flight
