// True positives for the sigsafe rule: this file's basename starts
// with "flightrec_handler", so it is treated as the crash-handler TU
// and every async-signal-unsafe identifier below must be reported.

namespace gsku::obs::flight {

void
dumpWithAllocation()
{
    void *raw = malloc(64);
    free(raw);
    int *heap = new int(7);
    delete heap;
}

void
dumpWithBufferedIo(int value)
{
    char buf[32];
    snprintf(buf, sizeof buf, "%d", value);
    printf("%d", value);
}

void
dumpWithLocking()
{
    static mutex mu;
    lock_guard guard(mu);
    exit(1);
}

} // namespace gsku::obs::flight
