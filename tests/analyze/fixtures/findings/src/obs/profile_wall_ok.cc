// Fixture: the profiler's volatile wall lane (src/obs/profile.cc)
// reads the steady clock inside src/obs/, a sanctioned timing home.
#include <chrono>

namespace fx {

unsigned long long
profileWallNs()
{
    return static_cast<unsigned long long>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}

} // namespace fx
