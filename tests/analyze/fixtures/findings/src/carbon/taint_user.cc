// Fixture: cross-file taint — the chain runs through taint_chain.cc.

namespace fx {

int
crossFileUser()
{
    return scheduleSlot() * 2;
}

} // namespace fx
