// Fixture: rng-usage near-misses. Every line here must stay silent.

namespace fx {

int
useForeignRand(OtherLib *lib)
{
    return lib->rand();
}

int
useMemberRand(Sampler &s)
{
    return s.rand();
}

int
useQualifiedRand()
{
    return acme::rand();
}

int
randomish()
{
    return randSeedHelper(4);
}

} // namespace fx
