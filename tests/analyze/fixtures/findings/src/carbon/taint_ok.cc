// Fixture: a vouched wrapper — the lint-ok on the banned line stops
// both the token finding and taint propagation to callers.
#include <cstdlib>

namespace fx {

int
sanctionedNoise()
{
    return std::rand(); // lint-ok: rng-usage fixture-sanctioned wrapper
}

int
usesSanctioned()
{
    return sanctionedNoise() + 1;
}

} // namespace fx
