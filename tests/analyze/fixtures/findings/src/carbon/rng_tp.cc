// Fixture: rng-usage true positives. Not compiled; lexed only.
#include <cstdlib>

namespace fx {

int
rollDie()
{
    return std::rand() % 6 + 1;
}

int
seedPool()
{
    return rand() % 100;
}

} // namespace fx
