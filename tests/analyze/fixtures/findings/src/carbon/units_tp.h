// Fixture: raw-double-units true positives, including a multi-line
// declaration the line-based regex cannot see.
#pragma once

namespace fx {

struct EmbodiedRow
{
    double embodiedKg;
    double
        totalCostUsd;
    double utilizationFraction;
};

} // namespace fx
