// Fixture: determinism-taint chain. entropyBits() is directly caught
// by rng-usage; jitterMs() and scheduleSlot() only *reach* it.
#include <cstdlib>

namespace fx {

int
entropyBits()
{
    return std::rand() & 0xff;
}

int
jitterMs()
{
    return entropyBits() % 3;
}

int
scheduleSlot()
{
    return jitterMs() + 1;
}

} // namespace fx
