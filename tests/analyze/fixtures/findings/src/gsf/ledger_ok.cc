// Fixture: ledger-events near-misses.

namespace fx {

void
recordProperly(Ledger &ledger)
{
    ledger.append(obs::eventName(obs::LedgerEvent::CarbonPerCore), 1.0);
    ledger.append("carbon.per_core.amortized", 2.0);
}

} // namespace fx
