// Fixture: error-convention near-misses.

namespace fx {

void
rethrow()
{
    try {
        helper();
    } catch (...) {
        throw;
    }
}

} // namespace fx
