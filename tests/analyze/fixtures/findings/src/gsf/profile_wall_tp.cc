// Fixture: timing true positive — an engine hand-rolling profile
// wall time instead of using obs::ProfileScope's volatile lane.
#include <chrono>

namespace fx {

double
sweepWallSeconds()
{
    const auto t0 = std::chrono::high_resolution_clock::now();
    const auto t1 = std::chrono::high_resolution_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace fx
