// Fixture: ledger-events true positives, including a raw-string
// spelling the line-based linter cannot classify.

namespace fx {

void
recordFacts(Ledger &ledger)
{
    ledger.append("carbon.per_core", 12.5);
    ledger.append(R"(adoption.decision)", 1.0);
}

} // namespace fx
