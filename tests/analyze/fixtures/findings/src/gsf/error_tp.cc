// Fixture: error-convention true positive.
#include <stdexcept>

namespace fx {

void
failHard()
{
    throw std::runtime_error("boom");
}

} // namespace fx
