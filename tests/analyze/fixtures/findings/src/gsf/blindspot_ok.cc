// Fixture: every banned pattern below lives in a comment or string
// literal, so a token-aware analyzer must report nothing.
//
// In a comment: std::rand(), throw std::runtime_error("x"),
// std::thread t;, steady_clock::now(), std::stoi(s), and the ledger
// event name carbon.per_core.

namespace fx {

/* Block comment mentioning rand() and srand(42) and ->detach(). */

const char *kDoc =
    "call std::rand() then throw; std::thread spawns; "
    "std::chrono::steady_clock::now(); std::stoi(text)";

const char *kRawDoc = R"doc(
    rand() inside a raw string, std::async(job), atoi(buf),
    steady_clock::now() — none of this is code.
)doc";

char kQuote = '"';

const char *kAfterOddQuote = "rand()"; // the char literal above must not derail lexing

} // namespace fx
