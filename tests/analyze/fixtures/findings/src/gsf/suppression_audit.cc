// Fixture: suppression audit — one stale, one naming an unknown rule.

namespace fx {

int
cleanValue()
{
    return 42; // lint-ok: rng-usage nothing here needs suppressing
}

int
typoSuppression()
{
    return 7; // lint-ok: no-such-rule misspelled rule name
}

} // namespace fx
