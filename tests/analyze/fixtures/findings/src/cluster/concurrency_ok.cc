// Fixture: concurrency near-misses.
#include <thread>

namespace fx {

unsigned
queryWidth()
{
    return std::thread::hardware_concurrency();
}

void
detachAllBuffers(Pool &pool)
{
    pool.detach_all();
}

} // namespace fx
