// Fixture: checked-parse near-misses plus a used suppression.
#include <string>

namespace fx {

int
readViaMember(Parser &parser, const std::string &text)
{
    return parser.atoi(text);
}

long
readViaForeign(const char *p)
{
    return acme::strtol(p);
}

int
readVetted(const std::string &raw)
{
    return std::stoi(raw); // lint-ok: checked-parse fixture exercises a used suppression
}

} // namespace fx
