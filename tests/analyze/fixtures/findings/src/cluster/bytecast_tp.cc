// Fixture: byte-cast true positive — reinterpret_cast outside the
// sanctioned binary trace serializer.

namespace fx {

double
loadDouble(const unsigned char *bytes)
{
    return *reinterpret_cast<const double *>(bytes);
}

} // namespace fx
