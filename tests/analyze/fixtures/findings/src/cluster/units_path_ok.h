// Fixture: raw-double-units is scoped to carbon/gsf/perf headers, so
// the same declaration is silent under src/cluster.
#pragma once

namespace fx {

struct ClusterRow
{
    double embodiedKg;
};

} // namespace fx
