// Fixture: checked-parse true positives.
#include <string>

namespace fx {

int
readCount(const std::string &text)
{
    return std::stoi(text);
}

int
readLegacy(const char *buf)
{
    return atoi(buf);
}

} // namespace fx
