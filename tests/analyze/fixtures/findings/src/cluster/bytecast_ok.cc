// Fixture: byte-cast near-misses. A reinterpret_cast mentioned in a
// comment or string literal is text, not a cast, and memcpy punning
// is the sanctioned alternative.
#include <cstring>

namespace fx {

double
loadDouble(const unsigned char *bytes)
{
    // Not reinterpret_cast<const double *>(bytes): memcpy keeps the
    // layout assumption local and is defined behavior.
    double v = 0.0;
    std::memcpy(&v, bytes, sizeof(v));
    return v;
}

const char *
ruleName()
{
    return "reinterpret_cast<T> is banned here";
}

} // namespace fx
