// Fixture: concurrency true positives, including the ->detach()
// spelling the line-based linter's ".detach(" regex cannot see.
#include <thread>

namespace fx {

void
spawnRaw()
{
    std::thread worker(workBody);
    worker.join();
}

void
fireAndForget(Worker *w)
{
    w->detach();
}

void
launchAsync()
{
    auto f = std::async(computeBody);
    f.get();
}

} // namespace fx
