// Fixture: timing true positive.
#include <chrono>

namespace fx {

long
readWallClock()
{
    auto t0 = std::chrono::steady_clock::now();
    return t0.time_since_epoch().count();
}

} // namespace fx
