// Fixture: timing near-miss — a project clock, not a std one.

namespace fx {

long
readModelClock()
{
    return Stopwatch::now().ticks;
}

} // namespace fx
