// Fixture: header missing #pragma once.

namespace fx {

struct Guardless
{
    int x;
};

} // namespace fx
