// Fixture: properly guarded header.
#pragma once

namespace fx {

struct Guarded
{
    int x;
};

} // namespace fx
