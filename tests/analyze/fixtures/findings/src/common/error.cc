// Fixture: the error-convention allow-list exempts this exact path.

namespace fx {

void
raiseUserError(const char *what)
{
    throw UserError(what);
}

} // namespace fx
