/**
 * @file
 * Golden test for the analyzer's findings on the fixture tree under
 * tests/analyze/fixtures/findings: one true positive and one
 * near-miss per rule, the lint.py blind-spot regressions (banned
 * patterns inside strings, comments, and raw strings), the
 * suppression audit, and the determinism-taint chains. The expected
 * findings JSON is pinned in tests/analyze/golden/findings.json;
 * regenerate it with
 *
 *   cd tests/analyze/fixtures/findings &&
 *   gsku_analyze --root . src bench --quiet --json \
 *       ../../golden/findings.json
 *
 * after verifying every diff line is intended.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "analyze/analyzer.h"

namespace gsku::analyze {
namespace {

const std::string kFixtures = GSKU_TEST_FIXTURES;
const std::string kRepoRoot = GSKU_REPO_ROOT;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

AnalysisResult
analyzeFixtures()
{
    AnalyzerOptions opt;
    opt.root = kFixtures + "/findings";
    opt.paths = {opt.root + "/src", opt.root + "/bench"};
    return analyze(opt);
}

TEST(RulesGoldenTest, FindingsMatchGoldenJson)
{
    AnalysisResult result = analyzeFixtures();
    std::ostringstream got;
    writeFindingsJson(got, result);
    std::string want =
        readFile(kRepoRoot + "/tests/analyze/golden/findings.json");
    EXPECT_EQ(got.str(), want)
        << "fixture findings drifted from the golden file; inspect the "
           "diff and regenerate per the header comment if intended";
}

TEST(RulesGoldenTest, EveryRuleFiresOnItsTruePositive)
{
    AnalysisResult result = analyzeFixtures();
    std::set<std::string> fired;
    for (const Finding &f : result.findings)
        fired.insert(f.rule);
    for (const char *rule :
         {"rng-usage", "error-convention", "concurrency", "timing",
          "ledger-events", "checked-parse", "byte-cast",
          "raw-double-units", "pragma-once", "determinism-taint",
          "sigsafe", "lint-ok"}) {
        EXPECT_TRUE(fired.count(rule)) << "no finding for " << rule;
    }
}

TEST(RulesGoldenTest, NearMissFilesStaySilent)
{
    AnalysisResult result = analyzeFixtures();
    for (const Finding &f : result.findings) {
        EXPECT_EQ(f.relPath.find("_ok."), std::string::npos)
            << "near-miss fixture fired: " << f.relPath << ":" << f.line
            << " [" << f.rule << "] " << f.message;
        EXPECT_EQ(f.relPath.find("blindspot"), std::string::npos)
            << "blind-spot fixture fired: " << f.relPath << ":" << f.line;
    }
}

TEST(RulesGoldenTest, BlindSpotsAreCaughtNotJustSilent)
{
    // The converse of the silence test: the spellings lint.py could
    // not see must actually be reported.
    AnalysisResult result = analyzeFixtures();
    auto has = [&](const std::string &path, int line,
                   const std::string &rule) {
        for (const Finding &f : result.findings)
            if (f.relPath == path && f.line == line && f.rule == rule)
                return true;
        return false;
    };
    // std::rand() — lint.py's lookbehind missed the qualified form.
    EXPECT_TRUE(has("src/carbon/rng_tp.cc", 9, "rng-usage"));
    // ->detach() — the ".detach(" regex missed the arrow spelling.
    EXPECT_TRUE(has("src/cluster/concurrency_tp.cc", 17, "concurrency"));
    // Multi-line `double\n totalCostUsd` declaration.
    EXPECT_TRUE(has("src/carbon/units_tp.h", 11, "raw-double-units"));
    // Raw-string ledger event name.
    EXPECT_TRUE(has("src/gsf/ledger_tp.cc", 10, "ledger-events"));
}

TEST(RulesGoldenTest, UsedSuppressionIsNotStale)
{
    AnalysisResult result = analyzeFixtures();
    for (const Finding &f : result.findings)
        EXPECT_NE(f.relPath, "src/cluster/parse_ok.cc")
            << f.rule << ": " << f.message;
}

TEST(RulesGoldenTest, PerTreeMasksDisableRules)
{
    AnalyzerOptions opt;
    opt.root = kFixtures + "/findings";
    opt.paths = {opt.root + "/src", opt.root + "/bench"};
    opt.extraAllows = {{"rng-usage", "src/carbon/"},
                       {"checked-parse", "src/cluster/parse_tp.cc"}};
    AnalysisResult result = analyze(opt);
    for (const Finding &f : result.findings) {
        if (f.rule == "rng-usage") {
            EXPECT_NE(f.relPath.substr(0, 11), "src/carbon/");
        }
        if (f.rule == "checked-parse") {
            EXPECT_NE(f.relPath, "src/cluster/parse_tp.cc");
        }
    }
}

TEST(RulesGoldenTest, RuleSelectionSubsets)
{
    AnalyzerOptions opt;
    opt.root = kFixtures + "/findings";
    opt.paths = {opt.root + "/src", opt.root + "/bench"};
    opt.enabledRules = {"pragma-once"};
    AnalysisResult result = analyze(opt);
    ASSERT_FALSE(result.findings.empty());
    for (const Finding &f : result.findings) {
        if (f.rule == "lint-ok") {
            // Unknown-rule suppressions are always audited, but a
            // --rules subset must not turn the suppressions of the
            // rules that did not run into stale findings.
            EXPECT_EQ(f.message.find("stale"), std::string::npos)
                << f.relPath << ": " << f.message;
            continue;
        }
        EXPECT_EQ(f.rule, "pragma-once") << f.relPath << ": " << f.message;
    }
}

TEST(RulesGoldenTest, SarifIsWellFormed)
{
    AnalysisResult result = analyzeFixtures();
    std::ostringstream out;
    writeSarif(out, result, kFixtures + "/findings");
    const std::string sarif = out.str();
    EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"gsku_analyze\""), std::string::npos);
    EXPECT_NE(sarif.find("\"SRCROOT\""), std::string::npos);
    EXPECT_NE(sarif.find("src/carbon/rng_tp.cc"), std::string::npos);
}

} // namespace
} // namespace gsku::analyze
