/**
 * @file
 * Include-graph tests: edge resolution against the three quoted-
 * include search forms, the layering DAG, synthetic cycle detection
 * on the tests/analyze/fixtures/cycle tree, and the JSON dump CI
 * archives.
 */
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/include_graph.h"
#include "analyze/source.h"

namespace gsku::analyze {
namespace {

const std::string kFixtures = GSKU_TEST_FIXTURES;

struct CycleTree
{
    std::vector<std::unique_ptr<SourceFile>> owned;
    std::vector<const SourceFile *> files;
    IncludeGraph graph;
};

CycleTree
loadCycleTree()
{
    CycleTree t;
    const std::string root = kFixtures + "/cycle";
    for (const std::string &p : collectFiles({root + "/src"}))
        t.owned.push_back(loadSource(p, root));
    for (const auto &f : t.owned)
        t.files.push_back(f.get());
    t.graph = IncludeGraph::build(t.files);
    return t;
}

TEST(IncludeGraphTest, ResolvesQuotedIncludes)
{
    CycleTree t = loadCycleTree();
    // cyc_a -> cyc_b, cyc_b -> cyc_a, uses_gsf -> fake_sizing: all
    // three quoted includes resolve inside the fixture tree.
    int resolved = 0;
    for (const IncludeGraph::Edge &e : t.graph.edges())
        if (e.to >= 0)
            ++resolved;
    EXPECT_EQ(resolved, 3);
}

TEST(IncludeGraphTest, DetectsTheFixtureCycleOnce)
{
    CycleTree t = loadCycleTree();
    EXPECT_FALSE(t.graph.acyclic());
    std::vector<Finding> fs = t.graph.cycleFindings();
    ASSERT_EQ(fs.size(), 1u) << "each distinct cycle reports exactly once";
    EXPECT_EQ(fs[0].rule, "include-cycle");
    EXPECT_NE(fs[0].message.find("src/carbon/cyc_a.h"), std::string::npos);
    EXPECT_NE(fs[0].message.find("src/carbon/cyc_b.h"), std::string::npos);
}

TEST(IncludeGraphTest, FlagsTheLayeringViolation)
{
    CycleTree t = loadCycleTree();
    std::vector<SuppressionSet *> sups(t.files.size(), nullptr);
    std::vector<Finding> fs = t.graph.layeringFindings(sups);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "include-layering");
    EXPECT_EQ(fs[0].relPath, "src/common/uses_gsf.h");
    EXPECT_NE(fs[0].message.find("'gsf'"), std::string::npos);
}

TEST(IncludeGraphTest, DagMatchesDocumentedLayers)
{
    const auto &dag = IncludeGraph::layeringDag();
    // obs is the bottom layer; gsf the top.
    ASSERT_TRUE(dag.count("obs"));
    EXPECT_TRUE(dag.at("obs").empty());
    ASSERT_TRUE(dag.count("gsf"));
    EXPECT_EQ(dag.at("gsf").size(), 6u);
    // Peers: perf and reliability must not depend on each other.
    for (const std::string &dep : dag.at("perf"))
        EXPECT_NE(dep, "reliability");
    for (const std::string &dep : dag.at("reliability"))
        EXPECT_NE(dep, "perf");
}

TEST(IncludeGraphTest, DumpJsonCarriesTheVerdict)
{
    CycleTree t = loadCycleTree();
    std::ostringstream out;
    t.graph.dumpJson(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"acyclic\":false"), std::string::npos);
    EXPECT_NE(json.find("src/carbon/cyc_a.h"), std::string::npos);
    EXPECT_NE(json.find("\"modules\""), std::string::npos);
}

TEST(IncludeGraphTest, CycleSurfacesThroughAnalyze)
{
    AnalyzerOptions opt;
    opt.root = kFixtures + "/cycle";
    opt.paths = {opt.root + "/src"};
    AnalysisResult result = analyze(opt);
    ASSERT_TRUE(result.graph);
    EXPECT_FALSE(result.graph->acyclic());
    int cycles = 0, layering = 0;
    for (const Finding &f : result.findings) {
        if (f.rule == "include-cycle")
            ++cycles;
        if (f.rule == "include-layering")
            ++layering;
    }
    EXPECT_EQ(cycles, 1);
    EXPECT_EQ(layering, 1);
}

} // namespace
} // namespace gsku::analyze
