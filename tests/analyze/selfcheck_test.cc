/**
 * @file
 * Self-check: the analyzer must be clean on the repository's own
 * tree with every rule enabled — the same invariant the CI analyze
 * job gates on. A finding here means either new code broke a repo
 * invariant or an analyzer change introduced a false positive;
 * both block.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analyze/analyzer.h"

namespace gsku::analyze {
namespace {

const std::string kRepoRoot = GSKU_REPO_ROOT;

AnalysisResult
analyzeRepo()
{
    AnalyzerOptions opt;
    opt.root = kRepoRoot;
    opt.paths = {kRepoRoot + "/src", kRepoRoot + "/bench",
                 kRepoRoot + "/examples", kRepoRoot + "/tools"};
    return analyze(opt);
}

TEST(SelfCheckTest, RepoTreeIsCleanUnderAllRules)
{
    AnalysisResult result = analyzeRepo();
    std::ostringstream text;
    writeText(text, result);
    EXPECT_TRUE(result.clean()) << text.str();
    EXPECT_GT(result.fileCount, 100u)
        << "suspiciously few files: wrong root?";
    EXPECT_EQ(result.ruleCount, ruleCatalog().size());
}

TEST(SelfCheckTest, RepoIncludeGraphIsAcyclic)
{
    AnalysisResult result = analyzeRepo();
    ASSERT_TRUE(result.graph);
    EXPECT_TRUE(result.graph->acyclic());
}

TEST(SelfCheckTest, ModuleCondensationHonorsTheDag)
{
    // Every observed cross-module src/ edge must be in the allowed
    // table — the module-level restatement of zero layering findings.
    AnalysisResult result = analyzeRepo();
    ASSERT_TRUE(result.graph);
    const auto &dag = IncludeGraph::layeringDag();
    for (const IncludeGraph::Edge &e : result.graph->edges()) {
        if (e.to < 0)
            continue;
        const SourceFile &from = *result.graph->files()[e.from];
        const SourceFile &to = *result.graph->files()[e.to];
        auto it = dag.find(from.module);
        if (it == dag.end() || to.module == from.module)
            continue;
        bool allowed = false;
        for (const std::string &d : it->second)
            if (d == to.module)
                allowed = true;
        EXPECT_TRUE(allowed)
            << from.relPath << " -> " << to.relPath << " ("
            << from.module << " -> " << to.module << ")";
    }
}

} // namespace
} // namespace gsku::analyze
