/**
 * @file
 * Determinism-taint tests: heuristic function extraction from the
 * token stream, intra- and cross-file taint chains over the fixture
 * tree, and the vouched-wrapper semantics of a `lint-ok` on the
 * banned line.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/source.h"
#include "analyze/taint.h"

namespace gsku::analyze {
namespace {

const std::string kFixtures = GSKU_TEST_FIXTURES;

const FunctionDef *
byName(const std::vector<FunctionDef> &defs, const std::string &name)
{
    for (const FunctionDef &d : defs)
        if (d.name == name)
            return &d;
    return nullptr;
}

TEST(TaintTest, ExtractsFunctionsAndCallees)
{
    const std::string root = kFixtures + "/findings";
    auto file = loadSource(root + "/src/carbon/taint_chain.cc", root);
    std::vector<FunctionDef> defs = extractFunctions(*file, 0);
    ASSERT_EQ(defs.size(), 3u);

    const FunctionDef *entropy = byName(defs, "entropyBits");
    ASSERT_NE(entropy, nullptr);
    EXPECT_GT(entropy->bodyEndLine, entropy->bodyBeginLine);

    const FunctionDef *jitter = byName(defs, "jitterMs");
    ASSERT_NE(jitter, nullptr);
    EXPECT_NE(std::find(jitter->calls.begin(), jitter->calls.end(),
                        "entropyBits"),
              jitter->calls.end());

    const FunctionDef *slot = byName(defs, "scheduleSlot");
    ASSERT_NE(slot, nullptr);
    EXPECT_NE(std::find(slot->calls.begin(), slot->calls.end(),
                        "jitterMs"),
              slot->calls.end());
}

TEST(TaintTest, IndirectCallersAreReportedWithChains)
{
    AnalyzerOptions opt;
    opt.root = kFixtures + "/findings";
    opt.paths = {opt.root + "/src/carbon"};
    AnalysisResult result = analyze(opt);

    auto taintFor = [&](const std::string &fn) -> const Finding * {
        for (const Finding &f : result.findings)
            if (f.rule == "determinism-taint" &&
                f.message.find("'" + fn + "'") != std::string::npos)
                return &f;
        return nullptr;
    };

    // entropyBits holds the banned call itself: token rule, no taint.
    EXPECT_EQ(taintFor("entropyBits"), nullptr);

    const Finding *jitter = taintFor("jitterMs");
    ASSERT_NE(jitter, nullptr);
    EXPECT_NE(jitter->message.find("jitterMs -> entropyBits"),
              std::string::npos);

    // Two hops, still the shortest chain to the source.
    const Finding *slot = taintFor("scheduleSlot");
    ASSERT_NE(slot, nullptr);
    EXPECT_NE(
        slot->message.find("scheduleSlot -> jitterMs -> entropyBits"),
        std::string::npos);

    // Cross-file: taint_user.cc reaches the chain in taint_chain.cc.
    const Finding *user = taintFor("crossFileUser");
    ASSERT_NE(user, nullptr);
    EXPECT_EQ(user->relPath, "src/carbon/taint_user.cc");
    EXPECT_NE(user->message.find("rng-usage at "
                                 "src/carbon/taint_chain.cc:10"),
              std::string::npos);
}

TEST(TaintTest, SuppressedWrapperDoesNotPropagate)
{
    AnalyzerOptions opt;
    opt.root = kFixtures + "/findings";
    opt.paths = {opt.root + "/src/carbon"};
    AnalysisResult result = analyze(opt);
    for (const Finding &f : result.findings) {
        EXPECT_EQ(f.relPath.find("taint_ok.cc"), std::string::npos)
            << "the lint-ok vouches for sanctionedNoise and its "
               "callers: "
            << f.rule << " " << f.message;
    }
}

TEST(TaintTest, DisablingTheRuleDropsOnlyChains)
{
    AnalyzerOptions opt;
    opt.root = kFixtures + "/findings";
    opt.paths = {opt.root + "/src/carbon"};
    opt.disabledRules = {"determinism-taint"};
    AnalysisResult result = analyze(opt);
    bool sawRng = false;
    for (const Finding &f : result.findings) {
        EXPECT_NE(f.rule, "determinism-taint");
        if (f.rule == "rng-usage")
            sawRng = true;
    }
    EXPECT_TRUE(sawRng);
}

} // namespace
} // namespace gsku::analyze
