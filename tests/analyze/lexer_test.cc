/**
 * @file
 * Lexer unit tests: the token classes the analyzer's rules depend on,
 * with emphasis on the shapes that made tools/lint.py's regexes
 * blind — comments, string/char literals, raw strings, merged
 * `::` / `->` punctuators, and preprocessor directive tracking.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/lexer.h"

namespace gsku::analyze {
namespace {

std::vector<Token>
codeTokens(const std::vector<Token> &tokens)
{
    std::vector<Token> out;
    for (const Token &t : tokens) {
        if (t.kind != TokenKind::LineComment &&
            t.kind != TokenKind::BlockComment) {
            out.push_back(t);
        }
    }
    return out;
}

TEST(LexerTest, IdentifiersNumbersAndPunct)
{
    std::string src = "int x = 1'000 + 0x1p3;";
    auto toks = lex(src);
    ASSERT_EQ(toks.size(), 7u);
    EXPECT_EQ(toks[0].kind, TokenKind::Identifier);
    EXPECT_EQ(toks[0].text, "int");
    EXPECT_EQ(toks[1].text, "x");
    EXPECT_EQ(toks[2].text, "=");
    EXPECT_EQ(toks[3].kind, TokenKind::Number);
    EXPECT_EQ(toks[3].text, "1'000");
    EXPECT_EQ(toks[4].text, "+");
    EXPECT_EQ(toks[5].kind, TokenKind::Number);
    EXPECT_EQ(toks[5].text, "0x1p3");
    EXPECT_EQ(toks[6].text, ";");
}

TEST(LexerTest, ScopeAndArrowAreSingleTokens)
{
    std::string src = "std::rand(); p->detach();";
    auto toks = lex(src);
    ASSERT_GE(toks.size(), 4u);
    EXPECT_EQ(toks[0].text, "std");
    EXPECT_EQ(toks[1].kind, TokenKind::Punct);
    EXPECT_EQ(toks[1].text, "::");
    EXPECT_EQ(toks[2].text, "rand");
    bool sawArrow = false;
    for (const Token &t : toks)
        if (t.kind == TokenKind::Punct && t.text == "->")
            sawArrow = true;
    EXPECT_TRUE(sawArrow);
}

TEST(LexerTest, CommentsAreClassifiedNotCode)
{
    std::string src =
        "// line with rand()\n"
        "/* block with\n   std::thread */\n"
        "int live;\n";
    auto toks = lex(src);
    ASSERT_GE(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, TokenKind::LineComment);
    EXPECT_EQ(toks[1].kind, TokenKind::BlockComment);
    auto code = codeTokens(toks);
    ASSERT_EQ(code.size(), 3u);
    EXPECT_EQ(code[0].text, "int");
    EXPECT_EQ(code[0].line, 4);
}

TEST(LexerTest, StringAndCharLiterals)
{
    std::string src = "const char *s = \"a\\\"b rand()\"; char c = '\\'';";
    auto toks = lex(src);
    bool sawString = false;
    for (const Token &t : toks) {
        if (t.kind == TokenKind::String) {
            sawString = true;
            EXPECT_EQ(literalBody(t), "a\\\"b rand()");
        }
        // The banned identifier only exists inside the literal.
        if (t.kind == TokenKind::Identifier) {
            EXPECT_NE(t.text, "rand");
        }
    }
    EXPECT_TRUE(sawString);
}

TEST(LexerTest, RawStringsWithDelimiters)
{
    std::string src =
        "auto s = R\"doc(line one\nstd::rand() )\" )doc\";\n"
        "auto t = R\"doc(tail)doc\";\n"
        "int after;\n";
    auto toks = lex(src);
    int rawCount = 0;
    for (const Token &t : toks) {
        if (t.kind == TokenKind::RawString)
            ++rawCount;
        if (t.kind == TokenKind::Identifier) {
            EXPECT_NE(t.text, "rand");
        }
    }
    EXPECT_EQ(rawCount, 2);
    EXPECT_EQ(toks.back().text, ";");
}

TEST(LexerTest, EncodingPrefixesGlueToLiterals)
{
    std::string src = "auto a = u8\"x\"; auto b = L\"y\";";
    auto toks = lex(src);
    int strings = 0;
    for (const Token &t : toks) {
        if (t.kind == TokenKind::String) {
            ++strings;
            EXPECT_TRUE(t.text.substr(0, 2) == "u8" ||
                        t.text.substr(0, 1) == "L");
        }
    }
    EXPECT_EQ(strings, 2);
}

TEST(LexerTest, DirectivesAndHeaderNames)
{
    std::string src =
        "#include <vector>\n"
        "#include \"common/error.h\"\n"
        "#pragma once\n"
        "int x;\n";
    auto toks = lex(src);
    ASSERT_GE(toks.size(), 6u);
    EXPECT_EQ(toks[0].kind, TokenKind::Directive);
    EXPECT_EQ(toks[0].text, "include");
    EXPECT_TRUE(toks[0].inDirective);
    EXPECT_EQ(toks[1].kind, TokenKind::HeaderName);
    EXPECT_EQ(toks[2].kind, TokenKind::Directive);
    EXPECT_EQ(toks[3].kind, TokenKind::String);
    EXPECT_EQ(literalBody(toks[3]), "common/error.h");
    EXPECT_TRUE(toks[3].inDirective);
    // The `int x;` line is not part of any directive.
    EXPECT_FALSE(toks.back().inDirective);
}

TEST(LexerTest, MalformedInputNeverThrows)
{
    EXPECT_NO_THROW(lex(std::string("\"unterminated")));
    EXPECT_NO_THROW(lex(std::string("/* open block")));
    EXPECT_NO_THROW(lex(std::string("R\"d(open raw")));
    EXPECT_NO_THROW(lex(std::string("'")));
    EXPECT_NO_THROW(lex(std::string("@ $ ` weird bytes")));
}

TEST(LexerTest, LineAndColumnTracking)
{
    std::string src = "a\n  bb\n";
    auto toks = lex(src);
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[0].col, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[1].col, 3);
}

} // namespace
} // namespace gsku::analyze
