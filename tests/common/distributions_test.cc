/** @file Moment and support checks for the sampling distributions. */
#include <gtest/gtest.h>

#include <cmath>

#include "common/distributions.h"
#include "common/error.h"

namespace gsku {
namespace {

constexpr int kSamples = 100000;

TEST(ExponentialTest, MeanMatchesRate)
{
    Rng rng(1);
    const Exponential d(0.25);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i) {
        sum += d.sample(rng);
    }
    EXPECT_NEAR(sum / kSamples, 4.0, 0.1);
}

TEST(ExponentialTest, SamplesArePositive)
{
    Rng rng(2);
    const Exponential d(3.0);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_GT(d.sample(rng), 0.0);
    }
}

TEST(ExponentialTest, RejectsNonPositiveRate)
{
    EXPECT_THROW(Exponential(0.0), UserError);
    EXPECT_THROW(Exponential(-1.0), UserError);
}

TEST(LogNormalTest, MedianAndMeanMatch)
{
    Rng rng(3);
    const LogNormal d = LogNormal::fromMedianAndSigma(10.0, 0.5);
    EXPECT_DOUBLE_EQ(d.median(), 10.0);
    EXPECT_NEAR(d.mean(), 10.0 * std::exp(0.125), 1e-9);

    int below = 0;
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i) {
        const double x = d.sample(rng);
        below += x < 10.0 ? 1 : 0;
        sum += x;
    }
    EXPECT_NEAR(static_cast<double>(below) / kSamples, 0.5, 0.01);
    EXPECT_NEAR(sum / kSamples, d.mean(), 0.15);
}

TEST(LogNormalTest, RejectsBadParameters)
{
    EXPECT_THROW(LogNormal(0.0, 0.0), UserError);
    EXPECT_THROW(LogNormal::fromMedianAndSigma(-1.0, 0.5), UserError);
}

TEST(BoundedParetoTest, SupportRespected)
{
    Rng rng(4);
    const BoundedPareto d(1.2, 2.0, 50.0);
    for (int i = 0; i < 10000; ++i) {
        const double x = d.sample(rng);
        ASSERT_GE(x, 2.0);
        ASSERT_LE(x, 50.0);
    }
}

TEST(BoundedParetoTest, HeavyTailSkewsLow)
{
    Rng rng(5);
    const BoundedPareto d(1.5, 1.0, 100.0);
    int below_10 = 0;
    for (int i = 0; i < kSamples; ++i) {
        below_10 += d.sample(rng) < 10.0 ? 1 : 0;
    }
    // Most mass near the lower bound for alpha > 1.
    EXPECT_GT(static_cast<double>(below_10) / kSamples, 0.9);
}

TEST(BoundedParetoTest, RejectsBadParameters)
{
    EXPECT_THROW(BoundedPareto(0.0, 1.0, 2.0), UserError);
    EXPECT_THROW(BoundedPareto(1.0, 2.0, 2.0), UserError);
    EXPECT_THROW(BoundedPareto(1.0, -1.0, 2.0), UserError);
}

TEST(DiscreteTest, ProbabilitiesNormalized)
{
    const Discrete d({1.0, 3.0, 6.0});
    EXPECT_DOUBLE_EQ(d.probability(0), 0.1);
    EXPECT_DOUBLE_EQ(d.probability(1), 0.3);
    EXPECT_DOUBLE_EQ(d.probability(2), 0.6);
}

TEST(DiscreteTest, EmpiricalFrequenciesMatch)
{
    Rng rng(6);
    const Discrete d({2.0, 3.0, 5.0});
    std::vector<int> counts(3, 0);
    for (int i = 0; i < kSamples; ++i) {
        ++counts[d.sample(rng)];
    }
    EXPECT_NEAR(counts[0] / double(kSamples), 0.2, 0.01);
    EXPECT_NEAR(counts[1] / double(kSamples), 0.3, 0.01);
    EXPECT_NEAR(counts[2] / double(kSamples), 0.5, 0.01);
}

TEST(DiscreteTest, ZeroWeightNeverSampled)
{
    Rng rng(7);
    const Discrete d({1.0, 0.0, 1.0});
    for (int i = 0; i < 10000; ++i) {
        ASSERT_NE(d.sample(rng), 1u);
    }
}

TEST(DiscreteTest, RejectsInvalidWeights)
{
    EXPECT_THROW(Discrete({}), UserError);
    EXPECT_THROW(Discrete({0.0, 0.0}), UserError);
    EXPECT_THROW(Discrete({1.0, -0.5}), UserError);
}

TEST(DiscreteTest, ProbabilityIndexChecked)
{
    const Discrete d({1.0, 1.0});
    EXPECT_THROW(d.probability(2), UserError);
}

} // namespace
} // namespace gsku
