/** @file Determinism and distribution sanity of the xoshiro256++ RNG. */
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace gsku {
namespace {

TEST(RngTest, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a(), b());
    }
}

TEST(RngTest, DifferentSeedsDifferentStreams)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        equal += a() == b() ? 1 : 0;
    }
    EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += rng.uniform();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(RngTest, UniformRangeRejectsInverted)
{
    Rng rng(17);
    EXPECT_THROW(rng.uniform(5.0, -3.0), UserError);
}

TEST(RngTest, UniformIntCoversRange)
{
    Rng rng(19);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t x = rng.uniformInt(7);
        ASSERT_LT(x, 7u);
        seen.insert(x);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntRejectsZero)
{
    Rng rng(23);
    EXPECT_THROW(rng.uniformInt(0), UserError);
}

TEST(RngTest, NormalMomentsMatch)
{
    Rng rng(29);
    const int n = 200000;
    double sum = 0.0;
    double sumsq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double z = rng.normal();
        sum += z;
        sumsq += z * z;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(RngTest, ForkIsIndependentButDeterministic)
{
    Rng parent1(31);
    Rng parent2(31);
    Rng child1 = parent1.fork();
    Rng child2 = parent2.fork();
    // Same parent seed -> same child stream.
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(child1(), child2());
    }
    // Child differs from parent continuation.
    Rng child3 = parent1.fork();
    EXPECT_NE(child1(), child3());
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator)
{
    static_assert(std::uniform_random_bit_generator<Rng>);
    SUCCEED();
}

} // namespace
} // namespace gsku
