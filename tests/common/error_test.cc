/** @file Error-handling contract: REQUIRE -> UserError, ASSERT -> bug. */
#include <gtest/gtest.h>

#include <string>

#include "common/error.h"

namespace gsku {
namespace {

TEST(ErrorTest, RequireThrowsUserErrorWhenFalse)
{
    EXPECT_THROW(GSKU_REQUIRE(false, "bad input"), UserError);
}

TEST(ErrorTest, RequirePassesWhenTrue)
{
    EXPECT_NO_THROW(GSKU_REQUIRE(true, "never thrown"));
}

TEST(ErrorTest, AssertThrowsInternalErrorWhenFalse)
{
    EXPECT_THROW(GSKU_ASSERT(false, "invariant broken"), InternalError);
}

TEST(ErrorTest, AssertPassesWhenTrue)
{
    EXPECT_NO_THROW(GSKU_ASSERT(true, "never thrown"));
}

TEST(ErrorTest, MessageContainsTextAndLocation)
{
    try {
        GSKU_REQUIRE(false, "specific message");
        FAIL() << "should have thrown";
    } catch (const UserError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("specific message"), std::string::npos);
        EXPECT_NE(what.find("error_test.cc"), std::string::npos);
    }
}

TEST(ErrorTest, UserErrorIsNotInternalError)
{
    try {
        GSKU_REQUIRE(false, "user fault");
        FAIL() << "should have thrown";
    } catch (const InternalError &) {
        FAIL() << "UserError must not be an InternalError";
    } catch (const UserError &) {
        SUCCEED();
    }
}

TEST(ErrorTest, ConditionEvaluatedExactlyOnce)
{
    int calls = 0;
    auto once = [&]() {
        ++calls;
        return true;
    };
    GSKU_REQUIRE(once(), "side effects");
    EXPECT_EQ(calls, 1);
    GSKU_ASSERT(once(), "side effects");
    EXPECT_EQ(calls, 2);
}

} // namespace
} // namespace gsku
