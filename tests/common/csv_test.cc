/** @file CSV writer quoting and shape validation. */
#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.h"
#include "common/error.h"

namespace gsku {
namespace {

TEST(CsvTest, WritesHeaderAndRows)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeHeader({"a", "b"});
    csv.writeRow(std::vector<std::string>{"1", "2"});
    EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(CsvTest, QuotesCommasAndQuotes)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeRow(std::vector<std::string>{"hello, world", "say \"hi\"", "plain"});
    EXPECT_EQ(out.str(), "\"hello, world\",\"say \"\"hi\"\"\",plain\n");
}

TEST(CsvTest, QuotesNewlines)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeRow(std::vector<std::string>{"line1\nline2"});
    EXPECT_EQ(out.str(), "\"line1\nline2\"\n");
}

TEST(CsvTest, DoubleRowsUseFullPrecision)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeRow(std::vector<double>{0.1, 123456.789});
    EXPECT_EQ(out.str(), "0.1,123456.789\n");
}

TEST(CsvTest, RowWidthCheckedAgainstHeader)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeHeader({"a", "b"});
    EXPECT_THROW(csv.writeRow(std::vector<std::string>{"1"}), UserError);
}

TEST(CsvTest, DoubleHeaderRejected)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeHeader({"a"});
    EXPECT_THROW(csv.writeHeader({"b"}), UserError);
}

TEST(CsvTest, RowsWithoutHeaderAllowed)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeRow(std::vector<std::string>{"1", "2"});
    csv.writeRow(std::vector<std::string>{"3"});
    EXPECT_EQ(out.str(), "1,2\n3\n");
}

} // namespace
} // namespace gsku
