/** @file ASCII chart renderer tests. */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/chart.h"
#include "common/error.h"

namespace gsku {
namespace {

ChartSeries
line(const std::string &name, char glyph, double slope, int n = 10)
{
    ChartSeries s;
    s.name = name;
    s.glyph = glyph;
    for (int i = 0; i < n; ++i) {
        s.points.emplace_back(i, slope * i);
    }
    return s;
}

TEST(ChartTest, ContainsGlyphsAxesAndLegend)
{
    const std::string out = renderChart({line("up", '*', 2.0)});
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find('+'), std::string::npos);      // Axis corner.
    EXPECT_NE(out.find("legend:"), std::string::npos);
    EXPECT_NE(out.find("* = up"), std::string::npos);
}

TEST(ChartTest, RowAndColumnCounts)
{
    ChartOptions opts;
    opts.height = 10;
    opts.width = 30;
    const std::string out = renderChart({line("s", '*', 1.0)}, opts);
    int rows = 0;
    for (char c : out) {
        rows += c == '\n' ? 1 : 0;
    }
    // 10 plot rows + axis + x-tick row + legend.
    EXPECT_EQ(rows, 13);
}

TEST(ChartTest, ExtremesLandAtCorners)
{
    ChartOptions opts;
    opts.height = 8;
    opts.width = 20;
    opts.y_from_zero = true;
    ChartSeries s;
    s.glyph = 'x';
    s.name = "corner";
    s.points = {{0.0, 0.0}, {1.0, 1.0}};
    const std::string out = renderChart({s}, opts);

    // Split into lines; top plot row has the max-y point at the right.
    std::vector<std::string> lines;
    std::string cur;
    for (char c : out) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    EXPECT_EQ(lines[0].back(), 'x');                  // (1,1) top-right.
    EXPECT_EQ(lines[7][lines[7].find('|') + 1], 'x'); // (0,0) bottom-left.
}

TEST(ChartTest, SkipsNonFinitePoints)
{
    ChartSeries s = line("sat", '*', 1.0);
    s.points.emplace_back(100.0,
                          std::numeric_limits<double>::infinity());
    const std::string out = renderChart({s});
    // The infinite point must not drag x_max to 100 with an empty tail:
    // the rightmost data column would then be blank. Instead x_max stays
    // at the finite maximum (9).
    EXPECT_NE(out.find("9.0"), std::string::npos);
}

TEST(ChartTest, MarkersDrawnAndLabeled)
{
    ChartOptions opts;
    opts.x_markers = {{5.0, "region A"}};
    const std::string out = renderChart({line("s", '*', 1.0)}, opts);
    EXPECT_NE(out.find('|'), std::string::npos);
    EXPECT_NE(out.find("region A"), std::string::npos);
}

TEST(ChartTest, MultipleSeriesKeepDistinctGlyphs)
{
    const std::string out =
        renderChart({line("a", 'o', 1.0), line("b", '#', 3.0)});
    EXPECT_NE(out.find('o'), std::string::npos);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find("o = a"), std::string::npos);
    EXPECT_NE(out.find("# = b"), std::string::npos);
}

TEST(ChartTest, Validation)
{
    EXPECT_THROW(renderChart({}), UserError);
    ChartSeries empty;
    empty.name = "none";
    EXPECT_THROW(renderChart({empty}), UserError);
    ChartOptions tiny;
    tiny.width = 4;
    EXPECT_THROW(renderChart({line("s", '*', 1.0)}, tiny), UserError);
}

} // namespace
} // namespace gsku
