/**
 * @file
 * Checked full-token numeric parsing: the regression suite for the two
 * std::sto* failure modes the readers hit in production — raw
 * std::invalid_argument escaping past the UserError convention, and
 * trailing junk ("12abc") silently parsing as 12.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/error.h"
#include "common/parse.h"

namespace gsku {
namespace {

TEST(ParseContextTest, DescribeRendersAllParts)
{
    EXPECT_EQ(describe({"trace.csv", 42, "cores"}),
              "trace.csv: line 42: field 'cores': ");
}

TEST(ParseContextTest, DescribeOmitsEmptyParts)
{
    EXPECT_EQ(describe({}), "");
    EXPECT_EQ(describe({"spec", 0, ""}), "spec: ");
    EXPECT_EQ(describe({"", 7, ""}), "line 7: ");
    EXPECT_EQ(describe({"", 0, "ddr5 count"}), "field 'ddr5 count': ");
}

TEST(ParseIntTest, AcceptsFullTokens)
{
    EXPECT_EQ(parseInt("0"), 0);
    EXPECT_EQ(parseInt("-17"), -17);
    EXPECT_EQ(parseInt("2147483647"), 2147483647);
    EXPECT_EQ(parseInt("-2147483648"),
              std::numeric_limits<int>::min());
}

TEST(ParseIntTest, MalformedThrowsUserErrorNotStdException)
{
    // The original bug: std::stoi("abc") throws std::invalid_argument,
    // which escaped past every catch (const UserError &) handler.
    try {
        parseInt("abc");
        FAIL() << "expected UserError";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find("cannot parse 'abc'"),
                  std::string::npos)
            << e.what();
    } catch (const std::invalid_argument &) {
        FAIL() << "raw std::invalid_argument escaped the parser";
    }
}

TEST(ParseIntTest, TrailingJunkRejected)
{
    // The second original bug: std::stoi("12abc") returns 12.
    EXPECT_THROW(parseInt("12abc"), UserError);
    EXPECT_THROW(parseInt("1.5"), UserError);
    EXPECT_THROW(parseInt("7 "), UserError);
    try {
        parseInt("12abc");
        FAIL() << "expected UserError";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find("trailing junk 'abc'"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ParseIntTest, WhitespaceAndEmptyRejected)
{
    EXPECT_THROW(parseInt(""), UserError);
    EXPECT_THROW(parseInt(" 12"), UserError);
    EXPECT_THROW(parseInt("\t12"), UserError);
    EXPECT_THROW(parseInt(" "), UserError);
}

TEST(ParseIntTest, OutOfRangeThrowsUserError)
{
    // Wider than int but fits long: caught by the range check.
    EXPECT_THROW(parseInt("2147483648"), UserError);
    EXPECT_THROW(parseInt("-2147483649"), UserError);
    // Wider than long too: std::out_of_range converted to UserError.
    try {
        parseInt("999999999999999999999999");
        FAIL() << "expected UserError";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find("out of range"),
                  std::string::npos)
            << e.what();
    } catch (const std::out_of_range &) {
        FAIL() << "raw std::out_of_range escaped the parser";
    }
}

TEST(ParseLongTest, RoundTripsWideValues)
{
    EXPECT_EQ(parseLong("9223372036854775807"),
              std::numeric_limits<long>::max());
    EXPECT_EQ(parseLong("-42"), -42L);
    EXPECT_THROW(parseLong("9223372036854775808"), UserError);
    EXPECT_THROW(parseLong("10x"), UserError);
}

TEST(ParseU64Test, AcceptsFullRange)
{
    EXPECT_EQ(parseU64("0"), 0u);
    EXPECT_EQ(parseU64("18446744073709551615"),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64Test, RejectsSigns)
{
    // std::stoull("-1") wraps to 2^64-1; the checked parser must not.
    EXPECT_THROW(parseU64("-1"), UserError);
    EXPECT_THROW(parseU64("+1"), UserError);
    try {
        parseU64("-1");
        FAIL() << "expected UserError";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find("sign not allowed"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ParseDoubleTest, AcceptsFullTokens)
{
    EXPECT_DOUBLE_EQ(parseDouble("0.5"), 0.5);
    EXPECT_DOUBLE_EQ(parseDouble("-1e3"), -1000.0);
    EXPECT_DOUBLE_EQ(parseDouble("3"), 3.0);
}

TEST(ParseDoubleTest, MalformedAndJunkRejected)
{
    EXPECT_THROW(parseDouble("abc"), UserError);
    EXPECT_THROW(parseDouble("1.5x"), UserError);
    EXPECT_THROW(parseDouble("1.5 2.5"), UserError);
    EXPECT_THROW(parseDouble(""), UserError);
    EXPECT_THROW(parseDouble(" 1.5"), UserError);
}

TEST(ParseDoubleTest, ErrorsCarryContext)
{
    try {
        parseDouble("abc", {"csv", 2, "arrival_h"});
        FAIL() << "expected UserError";
    } catch (const UserError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("csv: line 2: field 'arrival_h':"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("cannot parse 'abc' as double"),
                  std::string::npos)
            << what;
    }
}

} // namespace
} // namespace gsku
