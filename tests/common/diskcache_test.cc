/**
 * @file
 * Content-addressed disk cache: roundtrip, every corruption/staleness
 * failure mode (all of which must read as a miss, never an error), LRU
 * eviction order, and journal self-healing.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/diskcache.h"
#include "common/error.h"

namespace fs = std::filesystem;

namespace gsku {
namespace {

constexpr const char *kSchema = "gsku-test-v1";

/** Fresh, empty cache directory per test. */
class DiskCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("gsku_diskcache_test_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string recordPath(const std::string &key) const
    {
        return dir_ + "/" + key + ".rec";
    }

    /** Overwrites a record file with raw bytes (poisoning helper). */
    void writeRaw(const std::string &key, const std::string &bytes)
    {
        std::ofstream out(recordPath(key),
                          std::ios::trunc | std::ios::binary);
        out << bytes;
    }

    std::string readRaw(const std::string &key)
    {
        std::ifstream in(recordPath(key), std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in), {});
    }

    std::string dir_;
};

TEST_F(DiskCacheTest, PutGetRoundTrip)
{
    DiskCache cache(dir_, kSchema, 0);
    const std::string payload = "alpha\nbeta\x00gamma";
    EXPECT_EQ(cache.put("00000000000000aa", payload), 0);
    const CacheGetResult got = cache.get("00000000000000aa");
    ASSERT_TRUE(got.hit());
    EXPECT_EQ(got.payload, payload);
    EXPECT_EQ(cache.size(), 1u);
}

TEST_F(DiskCacheTest, MissOnAbsentKey)
{
    DiskCache cache(dir_, kSchema, 0);
    EXPECT_EQ(cache.get("00000000000000bb").status,
              CacheGetStatus::Miss);
}

TEST_F(DiskCacheTest, InvalidKeyShapesAreMissesAndRejectedPuts)
{
    DiskCache cache(dir_, kSchema, 0);
    for (const char *bad :
         {"", "short", "00000000000000AA", "xyzxyzxyzxyzxyzx",
          "00000000000000aaa", "../../../etc/pass"}) {
        EXPECT_EQ(cache.get(bad).status, CacheGetStatus::Miss) << bad;
        EXPECT_EQ(cache.put(bad, "p"), -1) << bad;
    }
}

TEST_F(DiskCacheTest, EmptyPayloadRoundTrips)
{
    DiskCache cache(dir_, kSchema, 0);
    cache.put("00000000000000cc", "");
    const CacheGetResult got = cache.get("00000000000000cc");
    ASSERT_TRUE(got.hit());
    EXPECT_EQ(got.payload, "");
}

TEST_F(DiskCacheTest, PersistsAcrossInstances)
{
    {
        DiskCache cache(dir_, kSchema, 0);
        cache.put("00000000000000dd", "durable");
    }
    DiskCache reopened(dir_, kSchema, 0);
    const CacheGetResult got = reopened.get("00000000000000dd");
    ASSERT_TRUE(got.hit());
    EXPECT_EQ(got.payload, "durable");
}

TEST_F(DiskCacheTest, SchemaMismatchReadsStale)
{
    {
        DiskCache old(dir_, "gsku-test-v0", 0);
        old.put("00000000000000ee", "old bytes");
    }
    DiskCache cache(dir_, kSchema, 0);
    EXPECT_EQ(cache.get("00000000000000ee").status,
              CacheGetStatus::Stale);
}

TEST_F(DiskCacheTest, TruncatedRecordReadsCorrupt)
{
    DiskCache cache(dir_, kSchema, 0);
    cache.put("00000000000000ff", "twelve bytes");
    const std::string bytes = readRaw("00000000000000ff");
    writeRaw("00000000000000ff", bytes.substr(0, bytes.size() - 4));
    EXPECT_EQ(cache.get("00000000000000ff").status,
              CacheGetStatus::Corrupt);
}

TEST_F(DiskCacheTest, TrailingBytesReadCorrupt)
{
    DiskCache cache(dir_, kSchema, 0);
    cache.put("0000000000000011", "payload");
    writeRaw("0000000000000011", readRaw("0000000000000011") + "x");
    EXPECT_EQ(cache.get("0000000000000011").status,
              CacheGetStatus::Corrupt);
}

TEST_F(DiskCacheTest, KeyMismatchReadsCorrupt)
{
    DiskCache cache(dir_, kSchema, 0);
    cache.put("0000000000000022", "payload");
    // Copy 22's record under 33's name: header key contradicts the
    // file name, which must read as corruption, not a hit.
    writeRaw("0000000000000033", readRaw("0000000000000022"));
    // Adopt the orphan into the journal so get() reaches the record.
    EXPECT_EQ(cache.get("0000000000000033").status,
              CacheGetStatus::Corrupt);
}

TEST_F(DiskCacheTest, GarbageHeaderReadsCorrupt)
{
    DiskCache cache(dir_, kSchema, 0);
    cache.put("0000000000000044", "payload");
    writeRaw("0000000000000044", "not a header at all\npayload");
    EXPECT_EQ(cache.get("0000000000000044").status,
              CacheGetStatus::Corrupt);
    // Empty file: no header line readable.
    writeRaw("0000000000000044", "");
    EXPECT_EQ(cache.get("0000000000000044").status,
              CacheGetStatus::Corrupt);
}

TEST_F(DiskCacheTest, CorruptRecordIsRepairedByRePut)
{
    DiskCache cache(dir_, kSchema, 0);
    cache.put("0000000000000055", "good");
    writeRaw("0000000000000055", "garbage");
    EXPECT_EQ(cache.get("0000000000000055").status,
              CacheGetStatus::Corrupt);
    cache.put("0000000000000055", "good again");
    const CacheGetResult got = cache.get("0000000000000055");
    ASSERT_TRUE(got.hit());
    EXPECT_EQ(got.payload, "good again");
}

TEST_F(DiskCacheTest, EvictsLeastRecentlyUsedFirst)
{
    // Measure one record's on-disk size, then budget for exactly 3.
    const std::string payload(40, 'p');
    std::int64_t record_bytes = 0;
    {
        DiskCache probe(dir_, kSchema, 0);
        probe.put("00000000000000e0", payload);
        record_bytes = static_cast<std::int64_t>(
            fs::file_size(recordPath("00000000000000e0")));
    }
    fs::remove_all(dir_);
    DiskCache cache(dir_, kSchema, 3 * record_bytes);
    cache.put("000000000000000a", payload);
    cache.put("000000000000000b", payload);
    cache.put("000000000000000c", payload);
    EXPECT_EQ(cache.size(), 3u);

    // Touch a so b becomes the LRU victim.
    EXPECT_TRUE(cache.get("000000000000000a").hit());
    cache.put("000000000000000d", payload);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.get("000000000000000b").status,
              CacheGetStatus::Miss);
    EXPECT_TRUE(cache.get("000000000000000a").hit());
    EXPECT_TRUE(cache.get("000000000000000c").hit());
    EXPECT_TRUE(cache.get("000000000000000d").hit());
    EXPECT_FALSE(fs::exists(recordPath("000000000000000b")));
}

TEST_F(DiskCacheTest, NeverEvictsTheJustStoredRecord)
{
    // Budget smaller than a single record: the put must still land
    // (anything else makes a tight budget a cache that stores nothing).
    DiskCache cache(dir_, kSchema, 10);
    cache.put("00000000000000a1", std::string(100, 'q'));
    EXPECT_TRUE(cache.get("00000000000000a1").hit());
    EXPECT_EQ(cache.size(), 1u);

    // The next put evicts the old record but keeps itself.
    cache.put("00000000000000a2", std::string(100, 'r'));
    EXPECT_EQ(cache.get("00000000000000a1").status,
              CacheGetStatus::Miss);
    EXPECT_TRUE(cache.get("00000000000000a2").hit());
}

TEST_F(DiskCacheTest, PutReportsEvictionCount)
{
    const std::string payload(40, 'p');
    std::int64_t record_bytes = 0;
    {
        DiskCache probe(dir_, kSchema, 0);
        probe.put("00000000000000e0", payload);
        record_bytes = static_cast<std::int64_t>(
            fs::file_size(recordPath("00000000000000e0")));
    }
    fs::remove_all(dir_);
    DiskCache cache(dir_, kSchema, record_bytes);
    EXPECT_EQ(cache.put("00000000000000b1", payload), 0);
    EXPECT_EQ(cache.put("00000000000000b2", payload), 1);
}

TEST_F(DiskCacheTest, JournalSelfHealsOrphanRecords)
{
    DiskCache cache(dir_, kSchema, 0);
    cache.put("00000000000000c1", "known");
    // Simulate a crash between record publish and journal publish:
    // drop a record file the journal has never heard of.
    writeRaw("00000000000000c2",
             std::string("{\"schema\": \"") + kSchema +
                 "\", \"key\": \"00000000000000c2\", "
                 "\"payload_bytes\": 6}\norphan");
    EXPECT_EQ(cache.size(), 2u);    // Orphan adopted.
    const CacheGetResult got = cache.get("00000000000000c2");
    ASSERT_TRUE(got.hit());
    EXPECT_EQ(got.payload, "orphan");
    // Orphans join at the LRU (oldest) end: under pressure the orphan
    // is evicted before the journaled, just-touched record.
    EXPECT_TRUE(cache.get("00000000000000c1").hit());
}

TEST_F(DiskCacheTest, JournalDropsEntriesWhoseRecordsVanished)
{
    DiskCache cache(dir_, kSchema, 0);
    cache.put("00000000000000d1", "one");
    cache.put("00000000000000d2", "two");
    fs::remove(recordPath("00000000000000d1"));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.get("00000000000000d1").status,
              CacheGetStatus::Miss);
    EXPECT_TRUE(cache.get("00000000000000d2").hit());
}

TEST_F(DiskCacheTest, EmptyDirThrowsUserError)
{
    EXPECT_THROW(DiskCache("", kSchema, 0), UserError);
}

} // namespace
} // namespace gsku
