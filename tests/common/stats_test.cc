/** @file Statistical accumulator tests, including percentile edge cases. */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace gsku {
namespace {

TEST(OnlineStatsTest, MeanVarianceKnownValues)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.add(x);
    }
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, SingleSampleHasZeroVariance)
{
    OnlineStats s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, EmptyQueriesThrow)
{
    OnlineStats s;
    EXPECT_THROW(s.mean(), UserError);
    EXPECT_THROW(s.min(), UserError);
    EXPECT_THROW(s.max(), UserError);
}

TEST(PercentileTest, MedianOfOddSet)
{
    PercentileEstimator p;
    p.addAll({5.0, 1.0, 3.0});
    EXPECT_DOUBLE_EQ(p.percentile(50.0), 3.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks)
{
    PercentileEstimator p;
    p.addAll({10.0, 20.0, 30.0, 40.0});
    // Rank = 0.5 * 3 = 1.5 -> halfway between 20 and 30.
    EXPECT_DOUBLE_EQ(p.percentile(50.0), 25.0);
    EXPECT_DOUBLE_EQ(p.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(p.percentile(100.0), 40.0);
}

TEST(PercentileTest, MonotoneInP)
{
    PercentileEstimator p;
    for (int i = 0; i < 100; ++i) {
        p.add(static_cast<double>((i * 37) % 100));
    }
    double prev = p.percentile(0.0);
    for (double q = 5.0; q <= 100.0; q += 5.0) {
        const double cur = p.percentile(q);
        ASSERT_GE(cur, prev);
        prev = cur;
    }
}

TEST(PercentileTest, AddAfterQueryReSorts)
{
    PercentileEstimator p;
    p.add(1.0);
    EXPECT_DOUBLE_EQ(p.percentile(50.0), 1.0);
    p.add(0.0);
    p.add(10.0);
    EXPECT_DOUBLE_EQ(p.percentile(50.0), 1.0);
    EXPECT_DOUBLE_EQ(p.percentile(100.0), 10.0);
}

TEST(PercentileTest, GuardsInvalidInput)
{
    PercentileEstimator p;
    EXPECT_THROW(p.percentile(50.0), UserError);
    p.add(1.0);
    EXPECT_THROW(p.percentile(-1.0), UserError);
    EXPECT_THROW(p.percentile(101.0), UserError);
}

TEST(EmpiricalCdfTest, AtAndQuantileAgree)
{
    EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(3.0), 0.6);
    EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.6), 3.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.01), 1.0);
}

TEST(EmpiricalCdfTest, CurveIsMonotone)
{
    EmpiricalCdf cdf({3.0, 1.0, 2.0, 2.0});
    const auto curve = cdf.curve();
    ASSERT_EQ(curve.size(), 4u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        ASSERT_GE(curve[i].first, curve[i - 1].first);
        ASSERT_GT(curve[i].second, curve[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdfTest, RejectsEmptyAndBadQuantile)
{
    EXPECT_THROW(EmpiricalCdf({}), UserError);
    EmpiricalCdf cdf({1.0});
    EXPECT_THROW(cdf.quantile(0.0), UserError);
    EXPECT_THROW(cdf.quantile(1.5), UserError);
}

TEST(MovingAverageTest, WindowSlides)
{
    MovingAverage ma(3);
    EXPECT_DOUBLE_EQ(ma.add(3.0), 3.0);
    EXPECT_DOUBLE_EQ(ma.add(6.0), 4.5);
    EXPECT_DOUBLE_EQ(ma.add(9.0), 6.0);
    EXPECT_TRUE(ma.full());
    // Window drops the 3.0.
    EXPECT_DOUBLE_EQ(ma.add(12.0), 9.0);
}

TEST(MovingAverageTest, GuardsMisuse)
{
    EXPECT_THROW(MovingAverage(0), UserError);
    MovingAverage ma(2);
    EXPECT_THROW(ma.value(), UserError);
}

} // namespace
} // namespace gsku
