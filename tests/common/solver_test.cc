/** @file Root finding and monotone search, including the §VII use shapes. */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/solver.h"

namespace gsku {
namespace {

TEST(BisectTest, FindsSimpleRoot)
{
    const auto r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(r->root, std::sqrt(2.0), 1e-7);
    EXPECT_LE(std::abs(r->residual), 1e-9);
}

TEST(BisectTest, ExactEndpointRoots)
{
    const auto lo = bisect([](double x) { return x; }, 0.0, 1.0);
    ASSERT_TRUE(lo.has_value());
    EXPECT_DOUBLE_EQ(lo->root, 0.0);

    const auto hi = bisect([](double x) { return x - 1.0; }, 0.0, 1.0);
    ASSERT_TRUE(hi.has_value());
    EXPECT_DOUBLE_EQ(hi->root, 1.0);
}

TEST(BisectTest, NoBracketReturnsNullopt)
{
    EXPECT_FALSE(
        bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0).has_value());
}

TEST(BisectTest, DecreasingFunctionWorks)
{
    const auto r = bisect([](double x) { return 5.0 - x; }, 0.0, 10.0);
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(r->root, 5.0, 1e-7);
}

TEST(BisectTest, LargeScaleFunctionNeedsXTolerance)
{
    // Emissions-sized residuals (1e7 kg) with domain in fractions: the
    // regression that motivated separate x/f tolerances.
    const double base = 8.8e7;
    const auto r = bisect(
        [&](double x) { return base * (0.08 - x); }, 0.0, 0.4,
        /*f_tolerance=*/1.0, /*x_tolerance=*/1e-9);
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(r->root, 0.08, 1e-6);
}

TEST(BisectTest, RejectsBadArguments)
{
    auto f = [](double x) { return x; };
    EXPECT_THROW(bisect(f, 1.0, 0.0), UserError);
    EXPECT_THROW(bisect(f, 0.0, 1.0, 0.0), UserError);
    EXPECT_THROW(bisect(f, 0.0, 1.0, 1e-9, 0.0), UserError);
}

TEST(SmallestTrueTest, FindsThreshold)
{
    const auto n = smallestTrue([](long x) { return x >= 37; }, 0, 1000);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 37);
}

TEST(SmallestTrueTest, AllTrueGivesLo)
{
    const auto n = smallestTrue([](long) { return true; }, 5, 100);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 5);
}

TEST(SmallestTrueTest, NoneTrueGivesNullopt)
{
    EXPECT_FALSE(smallestTrue([](long) { return false; }, 0, 10).has_value());
}

TEST(SmallestTrueTest, SinglePointRange)
{
    const auto n = smallestTrue([](long x) { return x == 7; }, 7, 7);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 7);
}

TEST(SmallestTrueTest, EvaluationCountLogarithmic)
{
    int calls = 0;
    const auto n = smallestTrue(
        [&](long x) {
            ++calls;
            return x >= 123456;
        },
        0, 1000000);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 123456);
    EXPECT_LE(calls, 25);
}

TEST(SmallestTrueTest, RejectsInvertedRange)
{
    EXPECT_THROW(smallestTrue([](long) { return true; }, 5, 4), UserError);
}

TEST(GallopingTest, MatchesSmallestTrueEverywhere)
{
    // Exhaustive cross-check on a small domain: for every threshold and
    // every lo, the galloping search answers exactly like the bisection.
    for (long threshold = 0; threshold <= 40; ++threshold) {
        for (long lo = 0; lo <= 20; ++lo) {
            auto pred = [threshold](long x) { return x >= threshold; };
            const auto a = smallestTrue(pred, lo, 40);
            const auto b = smallestTrueGalloping(pred, lo, 40);
            ASSERT_EQ(a.has_value(), b.has_value())
                << "threshold=" << threshold << " lo=" << lo;
            if (a) {
                ASSERT_EQ(*a, *b)
                    << "threshold=" << threshold << " lo=" << lo;
            }
        }
    }
}

TEST(GallopingTest, NoneTrueGivesNullopt)
{
    EXPECT_FALSE(
        smallestTrueGalloping([](long) { return false; }, 0, 100)
            .has_value());
}

TEST(GallopingTest, CheapWhenAnswerIsNearLo)
{
    // The satellite's whole point: when the seed (lo) is close to the
    // answer, probe count is O(log(answer - lo)), independent of hi.
    int calls = 0;
    const auto n = smallestTrueGalloping(
        [&](long x) {
            ++calls;
            return x >= 1005;
        },
        1000, 100000000);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 1005);
    EXPECT_LE(calls, 8);
}

TEST(GallopingTest, AllTrueGivesLoWithOneProbe)
{
    int calls = 0;
    const auto n = smallestTrueGalloping(
        [&](long) {
            ++calls;
            return true;
        },
        7, 1000000);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, 7);
    EXPECT_EQ(calls, 1);
}

TEST(GallopingTest, RejectsInvertedRange)
{
    EXPECT_THROW(smallestTrueGalloping([](long) { return true; }, 5, 4),
                 UserError);
}

TEST(GallopingTest, DegenerateSingletonRange)
{
    // lo == hi: one probe decides everything.
    const auto yes =
        smallestTrueGalloping([](long x) { return x == 9; }, 9, 9);
    ASSERT_TRUE(yes.has_value());
    EXPECT_EQ(*yes, 9);
    EXPECT_FALSE(
        smallestTrueGalloping([](long) { return false; }, 9, 9)
            .has_value());
}

TEST(GallopingTest, TrueOnlyAtHi)
{
    // The gallop must clamp its last overshooting probe to hi exactly
    // and bisect down to it.
    const long hi = 1000;
    const auto n = smallestTrueGalloping(
        [&](long x) { return x >= hi; }, 0, hi);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, hi);
    const auto same = smallestTrue([&](long x) { return x >= hi; }, 0, hi);
    ASSERT_TRUE(same.has_value());
    EXPECT_EQ(*same, *n);
}

TEST(GallopingTest, NearLongMaxBracketsDoNotOverflow)
{
    // Regression for the signed-overflow bug: with hi at LONG_MAX the
    // old `probe + step` / `hi - probe` arithmetic overflowed (UB) as
    // the gallop approached the top. The unsigned bracket helpers must
    // deliver exact answers over the full long range.
    const long max = std::numeric_limits<long>::max();

    // Answer right at the top of the range.
    const auto top = smallestTrueGalloping(
        [&](long x) { return x == max; }, max - 5, max);
    ASSERT_TRUE(top.has_value());
    EXPECT_EQ(*top, max);

    // Huge bracket, answer far from lo: the doubling step saturates
    // without wrapping.
    const long target = max - 12345;
    const auto far = smallestTrueGalloping(
        [&](long x) { return x >= target; }, 0, max);
    ASSERT_TRUE(far.has_value());
    EXPECT_EQ(*far, target);

    // Full-range bracket spanning negative lo: width exceeds LONG_MAX,
    // which only unsigned arithmetic can represent.
    const auto span = smallestTrueGalloping(
        [](long x) { return x >= 42; }, std::numeric_limits<long>::min(),
        max);
    ASSERT_TRUE(span.has_value());
    EXPECT_EQ(*span, 42);
    const auto span_bisect = smallestTrue(
        [](long x) { return x >= 42; }, std::numeric_limits<long>::min(),
        max);
    ASSERT_TRUE(span_bisect.has_value());
    EXPECT_EQ(*span_bisect, 42);

    // All-false over a near-top range stays nullopt (no wraparound
    // probe can accidentally satisfy the predicate).
    EXPECT_FALSE(smallestTrueGalloping([](long) { return false; },
                                       max - 3, max)
                     .has_value());
}

} // namespace
} // namespace gsku
