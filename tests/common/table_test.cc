/** @file Console table rendering contract. */
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/table.h"

namespace gsku {
namespace {

TEST(TableTest, RendersAlignedColumns)
{
    Table t({"Name", "Value"}, {Align::Left, Align::Right});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| Name   |"), std::string::npos);
    EXPECT_NE(out.find("| longer |    22 |"), std::string::npos);
    EXPECT_NE(out.find("| a      |     1 |"), std::string::npos);
}

TEST(TableTest, HeaderRulepresent)
{
    Table t({"X"});
    t.addRow({"y"});
    EXPECT_NE(t.render().find("|---|"), std::string::npos);
}

TEST(TableTest, DefaultsToLeftAlignment)
{
    Table t({"A", "B"});
    t.addRow({"x", "y"});
    EXPECT_NE(t.render().find("| x | y |"), std::string::npos);
}

TEST(TableTest, RowWidthValidated)
{
    Table t({"A", "B"});
    EXPECT_THROW(t.addRow({"only one"}), UserError);
    EXPECT_THROW(t.addRow({"1", "2", "3"}), UserError);
}

TEST(TableTest, ConstructionValidated)
{
    EXPECT_THROW(Table({}), UserError);
    EXPECT_THROW(Table({"A"}, {Align::Left, Align::Right}), UserError);
}

TEST(TableTest, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.0, 0), "3");
    EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(TableTest, PercentFormatsRatios)
{
    EXPECT_EQ(Table::percent(0.28), "28%");
    EXPECT_EQ(Table::percent(0.0756, 1), "7.6%");
    EXPECT_EQ(Table::percent(-0.05), "-5%");
}

TEST(TableTest, RowCountTracks)
{
    Table t({"A"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"x"});
    t.addRow({"y"});
    EXPECT_EQ(t.rowCount(), 2u);
}

} // namespace
} // namespace gsku
