/**
 * @file
 * Worker-pool tests: every index runs exactly once, map results land in
 * index order, serial fallback at one thread, deterministic exception
 * propagation (lowest index), deadlock-free nested parallelism, and the
 * GSKU_THREADS override.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"

namespace gsku {
namespace {

TEST(ParallelTest, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelTest, MapResultsLandInIndexOrder)
{
    ThreadPool pool(4);
    const auto out = pool.parallelMap<std::size_t>(
        257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], i * i);
    }
}

TEST(ParallelTest, SingleThreadPoolRunsSerially)
{
    // With one thread everything runs inline on the caller: the order
    // of side effects is exactly 0..n-1.
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1);
    std::vector<std::size_t> order;
    pool.parallelFor(10, [&](std::size_t i) { order.push_back(i); });
    std::vector<std::size_t> expect(10);
    std::iota(expect.begin(), expect.end(), std::size_t{0});
    EXPECT_EQ(order, expect);
}

TEST(ParallelTest, ThreadCountClampedToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1);
    ThreadPool negative(-3);
    EXPECT_EQ(negative.threads(), 1);
}

TEST(ParallelTest, ZeroTasksIsANoop)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
    EXPECT_TRUE(pool.parallelMap<int>(0, [](std::size_t) { return 1; })
                    .empty());
}

TEST(ParallelTest, LowestIndexExceptionWins)
{
    // Several tasks throw; the rethrown exception must be the one from
    // the lowest task index regardless of scheduling.
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        try {
            pool.parallelFor(64, [&](std::size_t i) {
                if (i % 7 == 3) {       // Lowest thrower is index 3.
                    throw std::runtime_error("task " + std::to_string(i));
                }
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "task 3");
        }
    }
}

TEST(ParallelTest, ExceptionDoesNotPoisonThePool)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(
                     8, [](std::size_t) { throw std::runtime_error("x"); }),
                 std::runtime_error);
    // The pool still works afterwards.
    std::atomic<int> count{0};
    pool.parallelFor(100, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 100);
}

TEST(ParallelTest, NestedParallelForRunsSerialInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    constexpr std::size_t kOuter = 16;
    constexpr std::size_t kInner = 16;
    std::vector<std::atomic<int>> hits(kOuter * kInner);
    pool.parallelFor(kOuter, [&](std::size_t i) {
        // An inner parallelFor from inside a pool task must run
        // serially inline (and in particular must not deadlock waiting
        // for workers that are all busy running outer tasks).
        pool.parallelFor(kInner, [&](std::size_t j) {
            hits[i * kInner + j].fetch_add(1);
        });
    });
    for (const auto &h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelTest, GlobalPoolResetChangesThreadCount)
{
    const int original = ThreadPool::global().threads();
    ThreadPool::resetGlobal(3);
    EXPECT_EQ(ThreadPool::global().threads(), 3);
    std::atomic<int> count{0};
    parallelFor(50, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
    ThreadPool::resetGlobal(original);
}

TEST(ParallelTest, DefaultThreadsHonorsEnvOverride)
{
    ::setenv("GSKU_THREADS", "5", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 5);
    ::setenv("GSKU_THREADS", "0", 1);       // Invalid: fall back.
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
    ::setenv("GSKU_THREADS", "junk", 1);    // Invalid: fall back.
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
    ::unsetenv("GSKU_THREADS");
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
}

TEST(ParallelTest, FreeFunctionsUseGlobalPool)
{
    const auto out =
        parallelMap<int>(10, [](std::size_t i) { return int(i) + 1; });
    ASSERT_EQ(out.size(), 10u);
    EXPECT_EQ(out.front(), 1);
    EXPECT_EQ(out.back(), 10);
}

} // namespace
} // namespace gsku
