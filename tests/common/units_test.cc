/**
 * @file
 * Unit-algebra tests: the typed quantities must behave like the physics
 * they encode, since every carbon number in the library flows through
 * these operators.
 */
#include <gtest/gtest.h>

#include "common/units.h"

namespace gsku {
namespace {

TEST(PowerTest, ConstructorsAgree)
{
    EXPECT_DOUBLE_EQ(Power::watts(1500.0).asKilowatts(), 1.5);
    EXPECT_DOUBLE_EQ(Power::kilowatts(1.5).asWatts(), 1500.0);
}

TEST(PowerTest, ArithmeticWorks)
{
    const Power a = Power::watts(100.0);
    const Power b = Power::watts(250.0);
    EXPECT_DOUBLE_EQ((a + b).asWatts(), 350.0);
    EXPECT_DOUBLE_EQ((b - a).asWatts(), 150.0);
    EXPECT_DOUBLE_EQ((a * 3.0).asWatts(), 300.0);
    EXPECT_DOUBLE_EQ((3.0 * a).asWatts(), 300.0);
    EXPECT_DOUBLE_EQ((b / 2.0).asWatts(), 125.0);
    EXPECT_DOUBLE_EQ(b / a, 2.5);
}

TEST(PowerTest, ComparisonsWork)
{
    EXPECT_LT(Power::watts(10.0), Power::watts(20.0));
    EXPECT_GT(Power::watts(30.0), Power::watts(20.0));
    EXPECT_EQ(Power::watts(20.0), Power::watts(20.0));
}

TEST(PowerTest, CompoundAssignmentWorks)
{
    Power p = Power::watts(10.0);
    p += Power::watts(5.0);
    EXPECT_DOUBLE_EQ(p.asWatts(), 15.0);
    p -= Power::watts(3.0);
    EXPECT_DOUBLE_EQ(p.asWatts(), 12.0);
}

TEST(DurationTest, YearIs8760Hours)
{
    EXPECT_DOUBLE_EQ(Duration::years(1.0).asHours(), 8760.0);
    // The paper's 6-year lifetime is 52,560 hours (§V).
    EXPECT_DOUBLE_EQ(Duration::years(6.0).asHours(), 52560.0);
}

TEST(DurationTest, DaysConvert)
{
    EXPECT_DOUBLE_EQ(Duration::days(2.0).asHours(), 48.0);
    EXPECT_NEAR(Duration::days(365.0).asYears(), 1.0, 1e-12);
}

TEST(EnergyTest, PowerTimesDurationIsEnergy)
{
    const Energy e = Power::kilowatts(2.0) * Duration::hours(3.0);
    EXPECT_DOUBLE_EQ(e.asKilowattHours(), 6.0);
    // Commutes.
    const Energy e2 = Duration::hours(3.0) * Power::kilowatts(2.0);
    EXPECT_DOUBLE_EQ(e2.asKilowattHours(), 6.0);
}

TEST(EnergyTest, MegawattHoursConvert)
{
    EXPECT_DOUBLE_EQ(Energy::megawattHours(1.0).asKilowattHours(), 1000.0);
}

TEST(CarbonMassTest, EnergyTimesIntensityIsCarbon)
{
    const Energy e = Energy::kilowattHours(500.0);
    const CarbonIntensity ci = CarbonIntensity::kgPerKwh(0.1);
    EXPECT_DOUBLE_EQ((e * ci).asKg(), 50.0);
    EXPECT_DOUBLE_EQ((ci * e).asKg(), 50.0);
}

TEST(CarbonMassTest, TonnesConvert)
{
    EXPECT_DOUBLE_EQ(CarbonMass::tonnes(2.0).asKg(), 2000.0);
    EXPECT_DOUBLE_EQ(CarbonMass::kg(1500.0).asTonnes(), 1.5);
}

TEST(CarbonMassTest, WorkedExampleOperationalChain)
{
    // §V: E_op,r = P_r * L * CI with P_r = 6953 W, 6 years, 0.1 kg/kWh.
    const CarbonMass op = Power::watts(6953.0) * Duration::years(6.0) *
                          CarbonIntensity::kgPerKwh(0.1);
    EXPECT_NEAR(op.asKg(), 36547.0, 10.0);
}

TEST(CapacityTest, MemAndStorageConvert)
{
    EXPECT_DOUBLE_EQ(MemCapacity::gb(768.0).asGb(), 768.0);
    EXPECT_DOUBLE_EQ(StorageCapacity::tb(20.0).asTb(), 20.0);
    EXPECT_DOUBLE_EQ(StorageCapacity::gb(500.0).asTb(), 0.5);
}

TEST(QuantityTest, NegationAndRatio)
{
    EXPECT_DOUBLE_EQ((-CarbonMass::kg(5.0)).asKg(), -5.0);
    EXPECT_DOUBLE_EQ(CarbonMass::kg(10.0) / CarbonMass::kg(4.0), 2.5);
}

TEST(CostTest, RoundTripsAndArithmetic)
{
    EXPECT_DOUBLE_EQ(Cost::usd(9500.0).asUsd(), 9500.0);
    EXPECT_DOUBLE_EQ(EnergyPrice::usdPerKwh(0.08).asUsdPerKwh(), 0.08);
    EXPECT_DOUBLE_EQ(MemPrice::usdPerGb(4.0).asUsdPerGb(), 4.0);
    EXPECT_DOUBLE_EQ(StoragePrice::usdPerTb(90.0).asUsdPerTb(), 90.0);

    const Cost total = Cost::usd(100.0) + Cost::usd(50.0) * 2.0;
    EXPECT_DOUBLE_EQ(total.asUsd(), 200.0);
    EXPECT_DOUBLE_EQ(Cost::usd(200.0) / Cost::usd(80.0), 2.5);
    EXPECT_LT(Cost::usd(1.0), Cost::usd(2.0));
}

TEST(CostTest, DimensionalProductsYieldCost)
{
    // Energy x price: 6 years of 400 W at 8 cents/kWh.
    const Energy e = Power::watts(400.0) * Duration::years(6.0);
    const Cost opex = e * EnergyPrice::usdPerKwh(0.08);
    EXPECT_NEAR(opex.asUsd(), 400.0 * 6.0 * 8760.0 / 1000.0 * 0.08, 1e-6);
    // Commutativity across all capacity/price pairs.
    EXPECT_DOUBLE_EQ((EnergyPrice::usdPerKwh(0.08) * e).asUsd(),
                     (e * EnergyPrice::usdPerKwh(0.08)).asUsd());
    EXPECT_DOUBLE_EQ(
        (MemCapacity::gb(768.0) * MemPrice::usdPerGb(4.0)).asUsd(),
        3072.0);
    EXPECT_DOUBLE_EQ(
        (MemPrice::usdPerGb(4.0) * MemCapacity::gb(768.0)).asUsd(),
        3072.0);
    EXPECT_DOUBLE_EQ(
        (StorageCapacity::tb(12.0) * StoragePrice::usdPerTb(90.0)).asUsd(),
        1080.0);
    EXPECT_DOUBLE_EQ(
        (StoragePrice::usdPerTb(90.0) * StorageCapacity::tb(12.0)).asUsd(),
        1080.0);
}

} // namespace
} // namespace gsku
