/**
 * @file
 * Tests for the contract macro layer (common/contracts.h): satisfied
 * contracts are free, violated ones throw InternalError with enough
 * context to debug, and the audit tier activates only at level >= 2.
 */
#include "common/contracts.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace gsku {
namespace {

TEST(ContractsTest, LevelMatchesCompileTimeConfiguration)
{
    EXPECT_EQ(contracts::kLevel, GSKU_CONTRACT_LEVEL);
    EXPECT_EQ(contracts::enabled(), GSKU_CONTRACT_LEVEL >= 1);
    EXPECT_EQ(contracts::auditEnabled(), GSKU_CONTRACT_LEVEL >= 2);
}

TEST(ContractsTest, SatisfiedContractsDoNotThrow)
{
    EXPECT_NO_THROW(GSKU_EXPECT(1 + 1 == 2, "arithmetic works"));
    EXPECT_NO_THROW(GSKU_ENSURE(true, "trivially true"));
    EXPECT_NO_THROW(GSKU_INVARIANT(2 < 3, "ordering holds"));
    EXPECT_NO_THROW(GSKU_AUDIT(true, "audit holds"));
}

TEST(ContractsTest, ViolatedExpectThrowsInternalError)
{
    if (!contracts::enabled()) {
        GTEST_SKIP() << "contracts compiled out (GSKU_CONTRACTS=OFF)";
    }
    EXPECT_THROW(GSKU_EXPECT(false, "precondition broken"), InternalError);
    EXPECT_THROW(GSKU_ENSURE(false, "postcondition broken"), InternalError);
    EXPECT_THROW(GSKU_INVARIANT(false, "invariant broken"), InternalError);
}

TEST(ContractsTest, FailureMessageNamesKindConditionAndHint)
{
    if (!contracts::enabled()) {
        GTEST_SKIP() << "contracts compiled out (GSKU_CONTRACTS=OFF)";
    }
    try {
        GSKU_ENSURE(2 + 2 == 5, "the model conserves carbon");
        FAIL() << "GSKU_ENSURE(false) did not throw";
    } catch (const InternalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("ENSURE"), std::string::npos) << what;
        EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
        EXPECT_NE(what.find("the model conserves carbon"),
                  std::string::npos)
            << what;
    }
}

TEST(ContractsTest, AuditTierOnlyActiveAtLevelTwo)
{
    if (contracts::auditEnabled()) {
        EXPECT_THROW(GSKU_AUDIT(false, "expensive check fails"),
                     InternalError);
    } else {
        EXPECT_NO_THROW(GSKU_AUDIT(false, "compiled out below level 2"));
    }
}

TEST(ContractsTest, ConditionIsNotEvaluatedWhenCompiledOut)
{
    // At any level the macro must evaluate the condition at most once;
    // below the activation level it must not evaluate it at all.
    int evaluations = 0;
    auto probe = [&evaluations]() {
        ++evaluations;
        return true;
    };
    GSKU_EXPECT(probe(), "counts evaluations");
    EXPECT_EQ(evaluations, contracts::enabled() ? 1 : 0);

    evaluations = 0;
    GSKU_AUDIT(probe(), "counts audit evaluations");
    EXPECT_EQ(evaluations, contracts::auditEnabled() ? 1 : 0);
}

TEST(ContractsTest, ContractViolationIsAnInternalNotUserError)
{
    if (!contracts::enabled()) {
        GTEST_SKIP() << "contracts compiled out (GSKU_CONTRACTS=OFF)";
    }
    // Contract failures indicate library bugs, so they must never be
    // catchable as UserError (caller mistakes).
    bool caught_user_error = false;
    try {
        GSKU_INVARIANT(false, "library bug");
    } catch (const UserError &) {
        caught_user_error = true;
    } catch (const InternalError &) {
    }
    EXPECT_FALSE(caught_user_error);
}

} // namespace
} // namespace gsku
