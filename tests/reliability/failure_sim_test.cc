/**
 * @file
 * Fig. 2 failure-simulation tests: the hazard model must produce an
 * initial period of elevated AFRs followed by a flat rate over a 7-year
 * (84-month) horizon — the paper's argument for reusing old DIMMs.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "reliability/failure_sim.h"

namespace gsku::reliability {
namespace {

TEST(HazardTest, InfantMortalityDecaysToBase)
{
    HazardParams h;
    h.base_afr = 0.012;
    h.infant_multiplier = 2.0;
    h.infant_decay_months = 6.0;
    EXPECT_NEAR(h.monthlyHazard(0.0), 2.0 * 0.012 / 12.0, 1e-12);
    // After many decay constants the hazard is the base rate.
    EXPECT_NEAR(h.monthlyHazard(60.0), 0.012 / 12.0, 1e-6);
}

TEST(HazardTest, MonotoneDecreasing)
{
    HazardParams h;
    double prev = h.monthlyHazard(0.0);
    for (int m = 1; m <= 84; ++m) {
        const double cur = h.monthlyHazard(m);
        ASSERT_LE(cur, prev);
        prev = cur;
    }
}

TEST(FailureSimTest, DeterministicForSameSeed)
{
    HazardParams h;
    FleetFailureSimulator a(h, 100000, 7);
    FleetFailureSimulator b(h, 100000, 7);
    const auto ra = a.run(84);
    const auto rb = b.run(84);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        ASSERT_EQ(ra[i].failures, rb[i].failures);
    }
}

TEST(FailureSimTest, RatesFlatAfterInfantPeriod)
{
    // The Fig. 2 claim: after the initial period, failure rates stay
    // constant over 7 years.
    HazardParams h;
    h.base_afr = 0.012;
    FleetFailureSimulator sim(h, 500000, 42);
    const auto stats = sim.run(84, 6);

    // Mean smoothed rate over years 2-4 vs years 5-7 differs by <15%.
    auto mean_rate = [&](int from, int to) {
        double sum = 0.0;
        int n = 0;
        for (const auto &s : stats) {
            if (s.month >= from && s.month < to) {
                sum += s.smoothed_rate;
                ++n;
            }
        }
        return sum / n;
    };
    const double mid = mean_rate(24, 48);
    const double late = mean_rate(60, 84);
    EXPECT_NEAR(late / mid, 1.0, 0.15);
}

TEST(FailureSimTest, EarlyRatesElevated)
{
    HazardParams h;
    h.base_afr = 0.012;
    h.infant_multiplier = 2.0;
    FleetFailureSimulator sim(h, 500000, 42);
    const auto stats = sim.run(84, 3);
    // First months' raw rate is clearly above the steady state.
    EXPECT_GT(stats[0].raw_rate, 1.5 * 0.012);
    EXPECT_NEAR(stats[70].smoothed_rate, 0.012, 0.003);
}

TEST(FailureSimTest, PopulationOnlyShrinks)
{
    HazardParams h;
    h.base_afr = 0.05;
    FleetFailureSimulator sim(h, 10000, 1);
    const auto stats = sim.run(120);
    for (std::size_t i = 1; i < stats.size(); ++i) {
        ASSERT_LE(stats[i].population, stats[i - 1].population);
        ASSERT_EQ(stats[i].population,
                  stats[i - 1].population - stats[i - 1].failures);
    }
}

TEST(FailureSimTest, FailuresNeverExceedPopulation)
{
    HazardParams h;
    h.base_afr = 0.5;      // Aggressive to stress the clamp.
    h.infant_multiplier = 5.0;
    FleetFailureSimulator sim(h, 100, 3);
    for (const auto &s : sim.run(240)) {
        ASSERT_GE(s.failures, 0);
        ASSERT_LE(s.failures, s.population);
    }
}

TEST(FailureTrialsTest, DeterministicForSameSeed)
{
    HazardParams h;
    FleetFailureSimulator a(h, 50000, 11);
    FleetFailureSimulator b(h, 50000, 11);
    const auto ra = a.runTrials(8, 48);
    const auto rb = b.runTrials(8, 48);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        ASSERT_EQ(ra[i].mean_failures, rb[i].mean_failures);
        ASSERT_EQ(ra[i].mean_smoothed_rate, rb[i].mean_smoothed_rate);
    }
}

TEST(FailureTrialsTest, AggregatesAndEnvelopesAreConsistent)
{
    HazardParams h;
    h.base_afr = 0.012;
    FleetFailureSimulator sim(h, 100000, 42);
    const auto stats = sim.runTrials(12, 60);
    ASSERT_FALSE(stats.empty());
    for (const auto &s : stats) {
        EXPECT_EQ(s.trials, 12);        // Large fleets never die out.
        EXPECT_GE(s.mean_failures, 0.0);
        EXPECT_GT(s.mean_population, 0.0);
        EXPECT_LE(s.min_smoothed_rate, s.mean_smoothed_rate);
        EXPECT_GE(s.max_smoothed_rate, s.mean_smoothed_rate);
    }
    // The trial mean reproduces the Fig. 2 shape: elevated early,
    // near-base later.
    EXPECT_GT(stats[0].mean_raw_rate, 1.5 * h.base_afr);
    EXPECT_NEAR(stats[50].mean_smoothed_rate, h.base_afr, 0.004);
}

TEST(FailureTrialsTest, SingleTrialEnvelopeCollapsesToTheMean)
{
    HazardParams h;
    FleetFailureSimulator sim(h, 20000, 5);
    const auto agg = sim.runTrials(1, 36);
    ASSERT_FALSE(agg.empty());
    for (const auto &s : agg) {
        EXPECT_EQ(s.trials, 1);
        EXPECT_EQ(s.min_smoothed_rate, s.mean_smoothed_rate);
        EXPECT_EQ(s.max_smoothed_rate, s.mean_smoothed_rate);
    }
}

TEST(FailureTrialsTest, Validation)
{
    HazardParams h;
    FleetFailureSimulator sim(h, 100);
    EXPECT_THROW(sim.runTrials(0, 12), UserError);
    EXPECT_THROW(sim.runTrials(4, 0), UserError);
}

TEST(FailureSimTest, ParameterValidation)
{
    HazardParams h;
    EXPECT_THROW(FleetFailureSimulator(h, 0), UserError);
    h.base_afr = 0.0;
    EXPECT_THROW(FleetFailureSimulator(h, 10), UserError);
    h = HazardParams{};
    h.infant_multiplier = 0.5;
    EXPECT_THROW(FleetFailureSimulator(h, 10), UserError);
    h = HazardParams{};
    FleetFailureSimulator sim(h, 10);
    EXPECT_THROW(sim.run(0), UserError);
    EXPECT_THROW(h.monthlyHazard(-1.0), UserError);
}

} // namespace
} // namespace gsku::reliability
