/**
 * @file
 * Maintenance-model tests anchored on the §V worked example:
 * baseline AFR 4.8, GreenSKU-Full AFR 7.2; FIP(75%) repair rates 3.0 and
 * 3.6; C_OOS 3.0 vs ~2.98.
 */
#include <gtest/gtest.h>

#include "carbon/sku.h"
#include "common/error.h"
#include "reliability/maintenance.h"

namespace gsku::reliability {
namespace {

class MaintenanceTest : public ::testing::Test
{
  protected:
    MaintenanceModel model_;
    carbon::ServerSku baseline_ = carbon::StandardSkus::baseline();
    carbon::ServerSku full_ = carbon::StandardSkus::greenFull();
};

TEST_F(MaintenanceTest, BaselineAfrIs4Point8)
{
    // 12 DIMMs * 0.1 + 6 SSDs * 0.2 = 2.4; DIMMs+SSDs are half of the
    // server AFR (§V footnote 3) -> 4.8 total.
    const MaintenanceStats s = model_.stats(baseline_);
    EXPECT_NEAR(s.dimm_ssd_afr, 2.4, 1e-9);
    EXPECT_NEAR(s.server_afr, 4.8, 1e-9);
}

TEST_F(MaintenanceTest, GreenFullAfrIs7Point2)
{
    // 20 DIMMs and 14 SSDs (§V): 2.0 + 2.8 + 2.4 = 7.2.
    EXPECT_NEAR(model_.serverAfr(full_), 7.2, 1e-9);
}

TEST_F(MaintenanceTest, FipReducesRepairRatesTo3And3Point6)
{
    EXPECT_NEAR(model_.repairRate(baseline_), 3.0, 1e-9);
    EXPECT_NEAR(model_.repairRate(full_), 3.6, 1e-9);
}

TEST_F(MaintenanceTest, CoosComparisonMatchesWorkedExample)
{
    // C_OOS = 3 * 1 * 1 = 3 (baseline); 3.6 * 0.66 * 1.262 ~= 2.98.
    EXPECT_NEAR(model_.coos(baseline_, {1.0, 1.0}), 3.0, 1e-9);
    EXPECT_NEAR(model_.coos(full_, {0.66, 1.262}), 2.98, 0.03);
}

TEST_F(MaintenanceTest, GreenFullMaintenanceOverheadNegligible)
{
    // §V's conclusion: the GreenSKU's C_OOS does not exceed baseline's.
    EXPECT_LE(model_.coos(full_, {0.66, 1.262}),
              model_.coos(baseline_, {1.0, 1.0}) + 0.01);
}

TEST_F(MaintenanceTest, OosFractionFollowsLittlesLaw)
{
    // repair rate per server-year * repair time in years.
    const double expected =
        3.0 / 100.0 * (14.0 / 365.0);
    EXPECT_NEAR(model_.outOfServiceFraction(baseline_), expected, 1e-6);
}

TEST_F(MaintenanceTest, FipFullyEffectiveLeavesOtherFailures)
{
    AfrParams p;
    p.fip_effectiveness = 1.0;
    const MaintenanceModel model(p);
    EXPECT_NEAR(model.repairRate(full_), p.other_afr, 1e-9);
}

TEST_F(MaintenanceTest, NoFipMeansRepairEqualsAfr)
{
    AfrParams p;
    p.fip_effectiveness = 0.0;
    const MaintenanceModel model(p);
    EXPECT_NEAR(model.repairRate(full_), model.serverAfr(full_), 1e-9);
}

TEST_F(MaintenanceTest, MoreComponentsMeanHigherAfr)
{
    EXPECT_GT(model_.serverAfr(full_), model_.serverAfr(baseline_));
    EXPECT_GT(model_.serverAfr(carbon::StandardSkus::greenCxl()),
              model_.serverAfr(carbon::StandardSkus::greenEfficient()));
}

TEST_F(MaintenanceTest, ParamValidation)
{
    AfrParams p;
    p.fip_effectiveness = 1.5;
    EXPECT_THROW(MaintenanceModel{p}, UserError);
    p = AfrParams{};
    p.dimm_afr = -0.1;
    EXPECT_THROW(MaintenanceModel{p}, UserError);
    p = AfrParams{};
    p.repair_time = Duration::hours(0.0);
    EXPECT_THROW(MaintenanceModel{p}, UserError);
}

TEST_F(MaintenanceTest, CoosInputValidation)
{
    EXPECT_THROW(model_.coos(baseline_, {0.0, 1.0}), UserError);
    EXPECT_THROW(model_.coos(baseline_, {1.0, -1.0}), UserError);
}

} // namespace
} // namespace gsku::reliability
