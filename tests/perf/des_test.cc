/**
 * @file
 * Cross-validation of the analytic M/M/c model against the discrete-
 * event simulator: the latency percentiles behind Figs. 7/8 and every
 * SLO decision must agree with an independent simulation.
 */
#include <gtest/gtest.h>

#include "common/contracts.h"
#include "common/error.h"
#include "perf/des.h"
#include "perf/queueing.h"

namespace gsku::perf {
namespace {

DesConfig
configFor(int servers, double mu, double rho)
{
    DesConfig cfg;
    cfg.servers = servers;
    cfg.service_rate = mu;
    cfg.arrival_rate = rho * servers * mu;
    cfg.measured_requests = 200000;
    return cfg;
}

struct LoadCase
{
    int servers;
    double rho;
};

class DesVsAnalyticTest : public ::testing::TestWithParam<LoadCase>
{
};

TEST_P(DesVsAnalyticTest, P95MatchesClosedForm)
{
    const LoadCase c = GetParam();
    const double mu = 100.0;
    const DesConfig cfg = configFor(c.servers, mu, c.rho);
    const DesResult sim = QueueSimulator(cfg).run(/*seed=*/7);

    const double analytic =
        percentileSojournMs(c.servers, mu, cfg.arrival_rate, 95.0);
    EXPECT_NEAR(sim.p95_ms / analytic, 1.0, 0.05)
        << "c=" << c.servers << " rho=" << c.rho;
}

TEST_P(DesVsAnalyticTest, MeanWaitMatchesErlangC)
{
    const LoadCase c = GetParam();
    const double mu = 100.0;
    const DesConfig cfg = configFor(c.servers, mu, c.rho);
    const DesResult sim = QueueSimulator(cfg).run(/*seed=*/11);

    const double analytic_ms =
        1e3 / mu + meanWaitMs(c.servers, mu, cfg.arrival_rate);
    EXPECT_NEAR(sim.mean_sojourn_ms / analytic_ms, 1.0, 0.05)
        << "c=" << c.servers << " rho=" << c.rho;
}

TEST_P(DesVsAnalyticTest, UtilizationMatchesOfferedLoad)
{
    const LoadCase c = GetParam();
    const DesConfig cfg = configFor(c.servers, 100.0, c.rho);
    const DesResult sim = QueueSimulator(cfg).run(/*seed=*/13);
    EXPECT_NEAR(sim.utilization, c.rho, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Loads, DesVsAnalyticTest,
    ::testing::Values(LoadCase{1, 0.5}, LoadCase{8, 0.3},
                      LoadCase{8, 0.7}, LoadCase{8, 0.9},
                      LoadCase{12, 0.85}, LoadCase{32, 0.8}),
    [](const auto &info) {
        return "C" + std::to_string(info.param.servers) + "Rho" +
               std::to_string(int(info.param.rho * 100));
    });

TEST(DesTest, DeterministicPerSeed)
{
    const DesConfig cfg = configFor(8, 100.0, 0.8);
    const QueueSimulator sim(cfg);
    const DesResult a = sim.run(42);
    const DesResult b = sim.run(42);
    EXPECT_DOUBLE_EQ(a.p95_ms, b.p95_ms);
    EXPECT_DOUBLE_EQ(a.mean_sojourn_ms, b.mean_sojourn_ms);
}

TEST(DesTest, DeterministicServiceCutsTheTail)
{
    // M/D/c has far less latency variance than M/M/c at equal load —
    // quantifying the exponential-service assumption's conservatism.
    DesConfig cfg = configFor(8, 100.0, 0.8);
    cfg.service_scv = 0.0;
    const DesResult deterministic = QueueSimulator(cfg).run(3);
    cfg.service_scv = 1.0;
    const DesResult exponential = QueueSimulator(cfg).run(3);
    EXPECT_LT(deterministic.p95_ms, exponential.p95_ms);
}

TEST(DesTest, HeavyTailedServiceRaisesTheTail)
{
    DesConfig cfg = configFor(8, 100.0, 0.8);
    cfg.service_scv = 4.0;
    const DesResult heavy = QueueSimulator(cfg).run(3);
    cfg.service_scv = 1.0;
    const DesResult exponential = QueueSimulator(cfg).run(3);
    EXPECT_GT(heavy.p95_ms, exponential.p95_ms);
}

TEST(DesTest, ServiceMeansPreservedAcrossScv)
{
    // Whatever the SCV, the mean service time (and so utilization)
    // must not drift.
    for (double scv : {0.0, 0.25, 1.0, 4.0}) {
        DesConfig cfg = configFor(8, 100.0, 0.6);
        cfg.service_scv = scv;
        const DesResult sim = QueueSimulator(cfg).run(17);
        EXPECT_NEAR(sim.utilization, 0.6, 0.02) << "scv " << scv;
    }
}

TEST(DesTest, PercentileOrderingHolds)
{
    const DesConfig cfg = configFor(8, 100.0, 0.85);
    const DesResult sim = QueueSimulator(cfg).run(23);
    EXPECT_LT(sim.p50_ms, sim.p95_ms);
    EXPECT_LT(sim.p95_ms, sim.p99_ms);
    EXPECT_EQ(sim.completed, cfg.measured_requests);
}

TEST(DesTest, ConfigValidation)
{
    DesConfig cfg;
    cfg.arrival_rate = cfg.servers * cfg.service_rate;  // Unstable.
    EXPECT_THROW(QueueSimulator{cfg}, UserError);
    cfg = DesConfig{};
    cfg.servers = 0;
    EXPECT_THROW(QueueSimulator{cfg}, UserError);
    cfg = DesConfig{};
    cfg.measured_requests = 0;
    EXPECT_THROW(QueueSimulator{cfg}, UserError);
}

TEST(DesContractTest, CorruptDesResultViolatesContract)
{
    if (!contracts::enabled()) {
        GTEST_SKIP() << "contracts compiled out (GSKU_CONTRACTS=OFF)";
    }
    DesConfig cfg = configFor(4, 1.0, 0.5);
    cfg.measured_requests = 2000;
    cfg.warmup_requests = 200;
    DesResult r = QueueSimulator(cfg).run(7);
    EXPECT_NO_THROW(r.checkInvariants());

    DesResult unordered = r;
    unordered.p95_ms = unordered.p99_ms + 1.0;
    EXPECT_THROW(unordered.checkInvariants(), InternalError);

    DesResult negative_sojourn = r;
    negative_sojourn.mean_sojourn_ms = -1.0;
    EXPECT_THROW(negative_sojourn.checkInvariants(), InternalError);

    DesResult impossible_utilization = r;
    impossible_utilization.utilization = 1.5;
    EXPECT_THROW(impossible_utilization.checkInvariants(), InternalError);
}

} // namespace
} // namespace gsku::perf
