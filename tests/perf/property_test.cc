/**
 * @file
 * Property tests of the performance model, parameterized over every
 * application: invariants connecting CPU attributes, service times,
 * queueing curves, and scaling factors.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "perf/cpu.h"
#include "perf/model.h"

namespace gsku::perf {
namespace {

class AppPropertyTest : public ::testing::TestWithParam<AppProfile>
{
  protected:
    PerfModel model_;
};

TEST_P(AppPropertyTest, GenerationsGetFasterPerCore)
{
    const AppProfile &app = GetParam();
    const double rome = model_.perCorePerf(app, CpuCatalog::rome());
    const double milan = model_.perCorePerf(app, CpuCatalog::milan());
    const double genoa = model_.perCorePerf(app, CpuCatalog::genoa());
    EXPECT_LT(rome, milan) << app.name;
    EXPECT_LT(milan, genoa) << app.name;
}

TEST_P(AppPropertyTest, BergamoBetweenRomeAndGenoa)
{
    // The efficient core is never faster than the same-IPC,
    // higher-frequency, bigger-cache Genoa; and it beats Gen1 for every
    // app except the strongly LLC-bound ones (Silo — exactly the app
    // whose Table III row is >1.5 even against Gen1).
    const AppProfile &app = GetParam();
    const double bergamo = model_.perCorePerf(app, CpuCatalog::bergamo());
    EXPECT_LE(bergamo, model_.perCorePerf(app, CpuCatalog::genoa()))
        << app.name;
    if (app.llc_sens < 0.9) {
        EXPECT_GT(bergamo, model_.perCorePerf(app, CpuCatalog::rome()))
            << app.name;
    } else {
        EXPECT_LT(bergamo, model_.perCorePerf(app, CpuCatalog::rome()))
            << app.name;
    }
}

TEST_P(AppPropertyTest, ServiceTimeInverseToPerf)
{
    const AppProfile &app = GetParam();
    for (const CpuSpec &cpu :
         {CpuCatalog::rome(), CpuCatalog::milan(), CpuCatalog::genoa(),
          CpuCatalog::bergamo()}) {
        EXPECT_NEAR(model_.serviceMs(app, cpu) *
                        model_.perCorePerf(app, cpu),
                    app.base_service_ms, 1e-9)
            << app.name << " on " << cpu.name;
    }
}

TEST_P(AppPropertyTest, CxlInflatesServiceBySensitivity)
{
    const AppProfile &app = GetParam();
    const CpuSpec green = CpuCatalog::bergamo();
    const double plain = model_.serviceMs(app, green, false);
    const double cxl = model_.serviceMs(app, green, true);
    EXPECT_NEAR(cxl / plain, 1.0 + app.cxl_sens, 1e-9) << app.name;
}

TEST_P(AppPropertyTest, PeakThroughputLinearInCores)
{
    const AppProfile &app = GetParam();
    const CpuSpec cpu = CpuCatalog::genoa();
    const double per_core = model_.peakQps(app, cpu, 1);
    for (int cores : {2, 8, 32}) {
        EXPECT_NEAR(model_.peakQps(app, cpu, cores), per_core * cores,
                    1e-6)
            << app.name;
    }
}

TEST_P(AppPropertyTest, ScalingFactorWellFormed)
{
    const AppProfile &app = GetParam();
    for (const CpuSpec &base :
         {CpuCatalog::rome(), CpuCatalog::milan(), CpuCatalog::genoa()}) {
        const ScalingResult r = model_.scalingFactor(app, base);
        if (r.feasible) {
            EXPECT_GE(r.factor, 1.0) << app.name;
            EXPECT_LE(r.factor, 1.5) << app.name;
            EXPECT_EQ(r.green_cores,
                      static_cast<int>(r.factor * 8.0 + 0.5))
                << app.name;
        } else {
            EXPECT_EQ(r.green_cores, 0) << app.name;
        }
    }
}

TEST_P(AppPropertyTest, LatencyAppsSatisfyTheirOwnSloOnBaseline)
{
    // Sanity of the SLO construction: the baseline at the SLO load meets
    // its own SLO with equality.
    const AppProfile &app = GetParam();
    if (app.throughput_only) {
        GTEST_SKIP() << "throughput-only";
    }
    const SloSpec slo = model_.slo(app, CpuCatalog::genoa());
    const double p95 =
        model_.p95LatencyMs(app, CpuCatalog::genoa(), 8, slo.load_qps);
    EXPECT_NEAR(p95, slo.p95_ms, 1e-9) << app.name;
}

TEST_P(AppPropertyTest, MoreCoresNeverHurtLatency)
{
    const AppProfile &app = GetParam();
    if (app.throughput_only) {
        GTEST_SKIP() << "throughput-only";
    }
    const CpuSpec green = CpuCatalog::bergamo();
    const double qps = 0.7 * model_.peakQps(app, green, 8);
    double prev = std::numeric_limits<double>::infinity();
    for (int cores : {8, 10, 12, 16}) {
        const double p95 = model_.p95LatencyMs(app, green, cores, qps);
        EXPECT_LE(p95, prev + 1e-9) << app.name << " at " << cores;
        prev = p95;
    }
}

TEST_P(AppPropertyTest, LowLoadLatencyBelowSloLatency)
{
    const AppProfile &app = GetParam();
    if (app.throughput_only) {
        GTEST_SKIP() << "throughput-only";
    }
    const SloSpec slo = model_.slo(app, CpuCatalog::genoa());
    // Mean latency at 30% load sits well under the p95 tail at 90%.
    EXPECT_LT(model_.lowLoadLatencyMs(app, CpuCatalog::genoa(), 8),
              slo.p95_ms)
        << app.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppPropertyTest, ::testing::ValuesIn(AppCatalog::all()),
    [](const auto &info) {
        std::string out;
        for (char c : info.param.name) {
            if (std::isalnum(static_cast<unsigned char>(c))) {
                out += c;
            }
        }
        return out;
    });

} // namespace
} // namespace gsku::perf
