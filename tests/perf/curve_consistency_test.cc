/**
 * @file
 * Consistency between the Fig. 7 latency curves and the Table III
 * scaling decisions: wherever the search says k cores suffice, the
 * k-core curve must actually sit under the SLO at the SLO load, the
 * (k-2)-core curve must not, and infeasible apps must violate the SLO
 * even at the largest candidate size. Parameterized over every
 * latency-reporting application.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "perf/cpu.h"
#include "perf/model.h"

namespace gsku::perf {
namespace {

std::vector<AppProfile>
latencyApps()
{
    std::vector<AppProfile> apps;
    for (const auto &app : AppCatalog::all()) {
        if (!app.throughput_only) {
            apps.push_back(app);
        }
    }
    return apps;
}

class CurveConsistencyTest : public ::testing::TestWithParam<AppProfile>
{
  protected:
    PerfModel model_;
    CpuSpec green_ = CpuCatalog::bergamo();
};

TEST_P(CurveConsistencyTest, ChosenSizeMeetsSloOnTheCurve)
{
    const AppProfile &app = GetParam();
    for (const CpuSpec &base :
         {CpuCatalog::rome(), CpuCatalog::milan(), CpuCatalog::genoa()}) {
        const ScalingResult sf = model_.scalingFactor(app, base);
        const SloSpec slo = model_.slo(app, base);
        if (!sf.feasible) {
            // Even 12 cores must miss the SLO.
            const double p95 =
                model_.p95LatencyMs(app, green_, 12, slo.load_qps);
            EXPECT_GT(p95, slo.p95_ms * 1.02)
                << app.name << " vs " << base.name;
            continue;
        }
        const double chosen =
            model_.p95LatencyMs(app, green_, sf.green_cores,
                                slo.load_qps);
        EXPECT_LE(chosen, slo.p95_ms * 1.02)
            << app.name << " vs " << base.name;

        // Minimality: the next-smaller candidate (if any) must fail.
        if (sf.green_cores > 8) {
            const double smaller = model_.p95LatencyMs(
                app, green_, sf.green_cores - 2, slo.load_qps);
            EXPECT_GT(smaller, slo.p95_ms * 1.02)
                << app.name << " vs " << base.name;
        }
    }
}

TEST_P(CurveConsistencyTest, CurvePeaksWhereTheModelSays)
{
    // The rendered curve's last point (99% of saturation) must be
    // finite, and anything past peak must be saturated.
    const AppProfile &app = GetParam();
    const LatencyCurve curve = model_.curve(app, green_, 10, false, 10);
    EXPECT_TRUE(std::isfinite(curve.points.back().p95_ms)) << app.name;
    const double beyond = model_.p95LatencyMs(app, green_, 10,
                                              1.01 * curve.peak_qps);
    EXPECT_TRUE(std::isinf(beyond)) << app.name;
}

TEST_P(CurveConsistencyTest, SloLoadIsBelowGreenPeakWhenFeasible)
{
    // Feasibility implies stability at the SLO load.
    const AppProfile &app = GetParam();
    const ScalingResult sf =
        model_.scalingFactor(app, CpuCatalog::genoa());
    if (!sf.feasible) {
        GTEST_SKIP() << "infeasible vs Gen3";
    }
    const SloSpec slo = model_.slo(app, CpuCatalog::genoa());
    EXPECT_LT(slo.load_qps,
              model_.peakQps(app, green_, sf.green_cores))
        << app.name;
}

INSTANTIATE_TEST_SUITE_P(
    LatencyApps, CurveConsistencyTest,
    ::testing::ValuesIn(latencyApps()), [](const auto &info) {
        std::string out;
        for (char c : info.param.name) {
            if (std::isalnum(static_cast<unsigned char>(c))) {
                out += c;
            }
        }
        return out;
    });

} // namespace
} // namespace gsku::perf
