/**
 * @file
 * Performance-model tests beyond the Table III calibration: Table II
 * build slowdowns, Fig. 7/8 curve structure, SLO construction, low-load
 * latency (§VI), and the Sysbench per-core anchor (§III).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "perf/cpu.h"
#include "perf/model.h"

namespace gsku::perf {
namespace {

class PerfModelTest : public ::testing::Test
{
  protected:
    PerfModel model_;
};

TEST_F(PerfModelTest, GenoaIsTheReferenceCore)
{
    for (const auto &app : AppCatalog::all()) {
        EXPECT_DOUBLE_EQ(model_.perCorePerf(app, CpuCatalog::genoa()), 1.0)
            << app.name;
    }
}

TEST_F(PerfModelTest, SysbenchLikeSlowdownNearTenPercent)
{
    // §III: Bergamo incurs ~10% per-core slowdown vs Genoa and ~6% vs
    // Milan on Sysbench. A moderately frequency-sensitive profile
    // (alpha ~ 0.5, like Masstree's frequency term alone) reproduces it.
    AppProfile sysbench;
    sysbench.name = "sysbench";
    sysbench.freq_sens = 0.5;
    const double bergamo =
        model_.perCorePerf(sysbench, CpuCatalog::bergamo());
    const double milan = model_.perCorePerf(sysbench, CpuCatalog::milan());
    EXPECT_NEAR(1.0 / bergamo, 1.10, 0.02);
    // The paper measures 1.06 vs Milan; our four-attribute per-core
    // model (shared generational IPC) lands at ~1.01-1.05.
    EXPECT_NEAR(milan / bergamo, 1.03, 0.04);
}

TEST_F(PerfModelTest, TableTwoEfficientSlowdowns)
{
    // Table II, GreenSKU-Efficient column: 1.17 / 1.15 / 1.15.
    const CpuSpec green = CpuCatalog::bergamo();
    EXPECT_NEAR(model_.buildSlowdown(AppCatalog::byName("Build-PHP"), green),
                1.17, 0.03);
    EXPECT_NEAR(
        model_.buildSlowdown(AppCatalog::byName("Build-Python"), green),
        1.15, 0.03);
    EXPECT_NEAR(
        model_.buildSlowdown(AppCatalog::byName("Build-Wasm"), green), 1.15,
        0.04);
}

TEST_F(PerfModelTest, TableTwoCxlSlowdowns)
{
    // Table II, GreenSKU-CXL column: 1.38 / 1.21 / 1.28.
    const CpuSpec green = CpuCatalog::bergamo();
    EXPECT_NEAR(
        model_.buildSlowdown(AppCatalog::byName("Build-PHP"), green, true),
        1.38, 0.04);
    EXPECT_NEAR(model_.buildSlowdown(AppCatalog::byName("Build-Python"),
                                     green, true),
                1.21, 0.04);
    EXPECT_NEAR(
        model_.buildSlowdown(AppCatalog::byName("Build-Wasm"), green, true),
        1.28, 0.04);
}

TEST_F(PerfModelTest, TableTwoGenerationSlowdowns)
{
    // Table II rows: Gen1 1.27-1.34, Gen2 1.11-1.19 (tolerance 0.06 for
    // our single-coefficient fit).
    for (const char *name : {"Build-PHP", "Build-Python", "Build-Wasm"}) {
        const AppProfile &app = AppCatalog::byName(name);
        const double g1 = model_.buildSlowdown(app, CpuCatalog::rome());
        const double g2 = model_.buildSlowdown(app, CpuCatalog::milan());
        EXPECT_NEAR(g1, 1.30, 0.09) << name;
        EXPECT_NEAR(g2, 1.14, 0.06) << name;
        // Efficient beats Gen1 for all builds (§VI).
        EXPECT_LT(model_.buildSlowdown(app, CpuCatalog::bergamo()), g1)
            << name;
    }
}

TEST_F(PerfModelTest, BuildSlowdownRejectsLatencyApps)
{
    EXPECT_THROW(model_.buildSlowdown(AppCatalog::byName("Redis"),
                                      CpuCatalog::bergamo()),
                 UserError);
}

TEST_F(PerfModelTest, SloRejectsThroughputOnlyApps)
{
    EXPECT_THROW(model_.slo(AppCatalog::byName("Build-PHP"),
                            CpuCatalog::genoa()),
                 UserError);
}

TEST_F(PerfModelTest, SloSetAt90PercentOfPeak)
{
    const AppProfile &app = AppCatalog::byName("Xapian");
    const SloSpec slo = model_.slo(app, CpuCatalog::genoa());
    const double peak = model_.peakQps(app, CpuCatalog::genoa(), 8);
    EXPECT_NEAR(slo.load_qps, 0.9 * peak, 1e-9);
    EXPECT_GT(slo.p95_ms, 0.0);
}

TEST_F(PerfModelTest, CurveIsMonotoneAndSaturates)
{
    const AppProfile &app = AppCatalog::byName("Moses");
    const LatencyCurve curve =
        model_.curve(app, CpuCatalog::genoa(), 8, false, 30);
    ASSERT_EQ(curve.points.size(), 30u);
    for (std::size_t i = 1; i < curve.points.size(); ++i) {
        ASSERT_GT(curve.points[i].qps, curve.points[i - 1].qps);
        ASSERT_GE(curve.points[i].p95_ms, curve.points[i - 1].p95_ms);
        ASSERT_GE(curve.points[i].p99_ms, curve.points[i].p95_ms);
    }
    // Knee: last point at 99% load is much slower than half load.
    EXPECT_GT(curve.points.back().p95_ms,
              3.0 * curve.points[14].p95_ms);
}

TEST_F(PerfModelTest, MassTreeCannotMatchGen3Peak)
{
    // §VI: "for applications such as Masstree, even with 12 cores,
    // GreenSKU-Efficient cannot match Gen3's peak throughput".
    const AppProfile &app = AppCatalog::byName("Masstree");
    const double gen3_peak = model_.peakQps(app, CpuCatalog::genoa(), 8);
    const double green_peak =
        model_.peakQps(app, CpuCatalog::bergamo(), 12);
    EXPECT_LT(green_peak, gen3_peak);
}

TEST_F(PerfModelTest, MosesSaturatesEarlyUnderCxl)
{
    // Fig. 8: Moses on GreenSKU-CXL saturates well below
    // GreenSKU-Efficient at the same core count.
    const AppProfile &app = AppCatalog::byName("Moses");
    const int cores =
        model_.scalingFactor(app, CpuCatalog::genoa()).green_cores;
    const double plain =
        model_.peakQps(app, CpuCatalog::bergamo(), cores, false);
    const double cxl =
        model_.peakQps(app, CpuCatalog::bergamo(), cores, true);
    EXPECT_LT(cxl, 0.75 * plain);
}

TEST_F(PerfModelTest, HaproxyLosesElevenPercentPeakUnderCxl)
{
    // Fig. 8: HAProxy only faces an 11% peak-throughput reduction.
    const AppProfile &app = AppCatalog::byName("HAProxy");
    const double plain =
        model_.peakQps(app, CpuCatalog::bergamo(), 10, false);
    const double cxl = model_.peakQps(app, CpuCatalog::bergamo(), 10, true);
    EXPECT_NEAR(1.0 - cxl / plain, 0.099, 0.02);
}

TEST_F(PerfModelTest, LowLoadLatencyDominatedByServiceTime)
{
    const AppProfile &app = AppCatalog::byName("Sphinx");
    const double ll =
        model_.lowLoadLatencyMs(app, CpuCatalog::genoa(), 8);
    const double service = model_.serviceMs(app, CpuCatalog::genoa());
    EXPECT_GE(ll, service);
    EXPECT_LT(ll, 1.5 * service);
}

TEST_F(PerfModelTest, MedianLowLoadRatiosOrderedAcrossGenerations)
{
    // §VI: median low-load latency is lower than Gen1 and Gen2, higher
    // than Gen3 (paper: -8.3% / -2% / +16%; our calibrated model
    // reproduces the ordering and the Gen3 direction, see
    // EXPERIMENTS.md for measured magnitudes).
    const double vs_g1 = model_.medianLowLoadRatio(CpuCatalog::rome());
    const double vs_g2 = model_.medianLowLoadRatio(CpuCatalog::milan());
    const double vs_g3 = model_.medianLowLoadRatio(CpuCatalog::genoa());
    EXPECT_LT(vs_g1, 1.0);
    EXPECT_LT(vs_g2, 1.0);
    EXPECT_GT(vs_g3, 1.0);
    EXPECT_LT(vs_g1, vs_g2);
    EXPECT_LT(vs_g2, vs_g3);
}

TEST_F(PerfModelTest, ConfigValidation)
{
    PerfConfig bad;
    bad.baseline_vm_cores = 0;
    EXPECT_THROW(PerfModel{bad}, UserError);
    bad = PerfConfig{};
    bad.green_core_options.clear();
    EXPECT_THROW(PerfModel{bad}, UserError);
    bad = PerfConfig{};
    bad.tail_percentile = 100.0;
    EXPECT_THROW(PerfModel{bad}, UserError);
    bad = PerfConfig{};
    bad.slo_load_fraction = 1.0;
    EXPECT_THROW(PerfModel{bad}, UserError);
}

TEST_F(PerfModelTest, CustomCoreOptionsChangeGranularity)
{
    // WebF-Hot needs 12 cores vs Gen3 (factor 1.5); restricting the
    // candidate set to {8} makes it infeasible, and {8, 12} skips the
    // 10-core option without changing the outcome.
    PerfConfig only8;
    only8.green_core_options = {8};
    EXPECT_FALSE(PerfModel(only8)
                     .scalingFactor(AppCatalog::byName("WebF-Hot"),
                                    CpuCatalog::genoa())
                     .feasible);

    PerfConfig coarse;
    coarse.green_core_options = {8, 12};
    const auto r = PerfModel(coarse).scalingFactor(
        AppCatalog::byName("WebF-Hot"), CpuCatalog::genoa());
    EXPECT_TRUE(r.feasible);
    EXPECT_DOUBLE_EQ(r.factor, 1.5);
}

TEST_F(PerfModelTest, CurveRequiresTwoPoints)
{
    EXPECT_THROW(model_.curve(AppCatalog::byName("Redis"),
                              CpuCatalog::genoa(), 8, false, 1),
                 UserError);
}

} // namespace
} // namespace gsku::perf
