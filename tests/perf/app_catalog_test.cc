/** @file Application catalog integrity against §V / Table III. */
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "perf/app.h"

namespace gsku::perf {
namespace {

TEST(AppCatalogTest, TwentyApplications)
{
    // §V: "we benchmark 20 open-source and closed-source applications".
    // 19 named in Table III plus Traefik listed with the proxies.
    EXPECT_EQ(AppCatalog::all().size(), 19u);
}

TEST(AppCatalogTest, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &a : AppCatalog::all()) {
        EXPECT_TRUE(names.insert(a.name).second) << a.name;
    }
}

TEST(AppCatalogTest, ClassSharesMatchTableIii)
{
    EXPECT_DOUBLE_EQ(fleetCoreHourShare(AppClass::BigData), 0.32);
    EXPECT_DOUBLE_EQ(fleetCoreHourShare(AppClass::WebApp), 0.27);
    EXPECT_DOUBLE_EQ(fleetCoreHourShare(AppClass::RealTimeComms), 0.24);
    EXPECT_DOUBLE_EQ(fleetCoreHourShare(AppClass::MlInference), 0.11);
    EXPECT_DOUBLE_EQ(fleetCoreHourShare(AppClass::WebProxy), 0.04);
    EXPECT_DOUBLE_EQ(fleetCoreHourShare(AppClass::DevOps), 0.01);
}

TEST(AppCatalogTest, ClassMembership)
{
    EXPECT_EQ(AppCatalog::byClass(AppClass::BigData).size(), 4u);
    EXPECT_EQ(AppCatalog::byClass(AppClass::WebApp).size(), 4u);
    EXPECT_EQ(AppCatalog::byClass(AppClass::RealTimeComms).size(), 2u);
    EXPECT_EQ(AppCatalog::byClass(AppClass::MlInference).size(), 1u);
    EXPECT_EQ(AppCatalog::byClass(AppClass::WebProxy).size(), 5u);
    EXPECT_EQ(AppCatalog::byClass(AppClass::DevOps).size(), 3u);
}

TEST(AppCatalogTest, ProductionServicesFlagged)
{
    // Table III marks WebF-* as production applications.
    for (const char *name : {"WebF-Dynamic", "WebF-Hot", "WebF-Cold"}) {
        EXPECT_TRUE(AppCatalog::byName(name).production) << name;
    }
    EXPECT_FALSE(AppCatalog::byName("Redis").production);
}

TEST(AppCatalogTest, OnlyBuildsAreThroughputOnly)
{
    for (const auto &a : AppCatalog::all()) {
        EXPECT_EQ(a.throughput_only, a.cls == AppClass::DevOps) << a.name;
    }
}

TEST(AppCatalogTest, ByNameThrowsForUnknown)
{
    EXPECT_THROW(AppCatalog::byName("Memcached"), UserError);
}

TEST(AppCatalogTest, FleetWeightsSumToClassShares)
{
    double total = 0.0;
    for (const auto &a : AppCatalog::all()) {
        total += AppCatalog::fleetWeight(a);
    }
    // Table III shares sum to 99%.
    EXPECT_NEAR(total, 0.99, 1e-9);
}

TEST(AppCatalogTest, CxlTolerantShareNear20Percent)
{
    // §VI: 20.2% of applications weighted by fleet core-hours do not
    // face significant CXL penalties.
    EXPECT_NEAR(AppCatalog::cxlTolerantCoreHourShare(), 0.202, 0.015);
}

TEST(AppCatalogTest, MosesIsTheMostCxlSensitive)
{
    // Fig. 8: Moses is the "more impacted" application.
    const double moses = AppCatalog::byName("Moses").cxl_sens;
    for (const auto &a : AppCatalog::all()) {
        EXPECT_LE(a.cxl_sens, moses) << a.name;
    }
}

TEST(AppCatalogTest, HaproxyCxlPenaltyNear11Percent)
{
    // Fig. 8: HAProxy sees an 11% peak-throughput reduction under CXL.
    EXPECT_NEAR(AppCatalog::byName("HAProxy").cxl_sens, 0.11, 1e-9);
}

TEST(AppCatalogTest, SensitivitiesAreNonNegative)
{
    for (const auto &a : AppCatalog::all()) {
        EXPECT_GE(a.freq_sens, 0.0) << a.name;
        EXPECT_GE(a.llc_sens, 0.0) << a.name;
        EXPECT_GE(a.bw_sens, 0.0) << a.name;
        EXPECT_GE(a.cxl_sens, 0.0) << a.name;
        EXPECT_GT(a.base_service_ms, 0.0) << a.name;
    }
}

TEST(AppCatalogTest, SiloIsLlcBound)
{
    // Silo's >1.5 scaling on every generation comes from LLC pressure.
    EXPECT_GE(AppCatalog::byName("Silo").llc_sens, 0.9);
}

} // namespace
} // namespace gsku::perf
