/** @file Runtime auto-scaling tests (§VIII future-work feature). */
#include <gtest/gtest.h>

#include "common/error.h"
#include "perf/autoscaler.h"

namespace gsku::perf {
namespace {

class AutoScalerTest : public ::testing::Test
{
  protected:
    PerfModel model_;
    AutoScaler scaler_{model_};
    CpuSpec green_ = CpuCatalog::bergamo();
};

TEST(DiurnalLoadTest, PeakAndTroughCorrect)
{
    DiurnalLoad load;
    load.peak_qps = 1000.0;
    load.trough_fraction = 0.4;
    load.peak_hour = 14.0;
    EXPECT_NEAR(load.qpsAt(14.0), 1000.0, 1e-9);
    EXPECT_NEAR(load.qpsAt(2.0), 400.0, 1e-9);   // 12h opposite.
    EXPECT_THROW(load.qpsAt(-1.0), gsku::UserError);
    EXPECT_THROW(load.qpsAt(25.0), gsku::UserError);
}

TEST(DiurnalLoadTest, AlwaysWithinEnvelope)
{
    DiurnalLoad load;
    for (double h = 0.0; h <= 24.0; h += 0.5) {
        const double q = load.qpsAt(h);
        ASSERT_GE(q, load.peak_qps * load.trough_fraction - 1e-9);
        ASSERT_LE(q, load.peak_qps + 1e-9);
    }
}

TEST_F(AutoScalerTest, CoresForIsMonotoneInLoad)
{
    const auto &app = AppCatalog::byName("Xapian");
    const SloSpec slo = model_.slo(app, CpuCatalog::genoa());
    int prev = 0;
    for (double frac : {0.2, 0.4, 0.6, 0.8, 0.95}) {
        const int cores =
            scaler_.coresFor(app, green_, frac * slo.load_qps, slo);
        ASSERT_GE(cores, prev);
        prev = cores;
    }
}

TEST_F(AutoScalerTest, DaySimulationSavesCoreHours)
{
    const auto &app = AppCatalog::byName("Nginx");
    const SloSpec slo = model_.slo(app, CpuCatalog::genoa());
    DiurnalLoad load;
    load.peak_qps = slo.load_qps;
    load.trough_fraction = 0.35;

    const AutoScaleResult result =
        scaler_.simulateDay(app, green_, load);
    EXPECT_EQ(result.schedule.size(), 24u);
    EXPECT_GT(result.coreHoursSaved(), 0.1);
    EXPECT_LT(result.coreHoursSaved(), 0.7);
    // Static provisioning must never be undercut at the peak interval.
    for (const auto &interval : result.schedule) {
        ASSERT_LE(interval.cores, result.static_cores);
    }
}

TEST_F(AutoScalerTest, SloRespectedEveryInterval)
{
    const auto &app = AppCatalog::byName("Moses");
    const SloSpec slo = model_.slo(app, CpuCatalog::genoa());
    DiurnalLoad load;
    load.peak_qps = slo.load_qps;

    const AutoScaleResult result =
        scaler_.simulateDay(app, green_, load);
    for (const auto &interval : result.schedule) {
        ASSERT_LE(interval.p95_ms, slo.p95_ms * 1.0 + 1e-9)
            << "hour " << interval.hour;
    }
}

TEST_F(AutoScalerTest, FlatLoadNeverScales)
{
    const auto &app = AppCatalog::byName("Caddy");
    const SloSpec slo = model_.slo(app, CpuCatalog::genoa());
    DiurnalLoad load;
    load.peak_qps = 0.5 * slo.load_qps;
    load.trough_fraction = 1.0;     // Constant load.

    const AutoScaleResult result =
        scaler_.simulateDay(app, green_, load);
    EXPECT_NEAR(result.coreHoursSaved(), 0.0, 1e-9);
}

TEST_F(AutoScalerTest, ThroughputOnlyAppsRejected)
{
    DiurnalLoad load;
    EXPECT_THROW(scaler_.simulateDay(AppCatalog::byName("Build-PHP"),
                                     green_, load),
                 gsku::UserError);
}

TEST_F(AutoScalerTest, ConfigValidation)
{
    AutoScaler::Config bad;
    bad.core_options = {8, 4};      // Not sorted.
    EXPECT_THROW(AutoScaler(model_, bad), gsku::UserError);
    bad = AutoScaler::Config{};
    bad.interval_h = 0.0;
    EXPECT_THROW(AutoScaler(model_, bad), gsku::UserError);
    bad = AutoScaler::Config{};
    bad.slo_headroom = 1.5;
    EXPECT_THROW(AutoScaler(model_, bad), gsku::UserError);
}

} // namespace
} // namespace gsku::perf
