/** @file CPU catalog checks against Table I and §III bandwidth figures. */
#include <gtest/gtest.h>

#include "perf/cpu.h"

namespace gsku::perf {
namespace {

TEST(CpuCatalogTest, TableOneCoreCounts)
{
    EXPECT_EQ(CpuCatalog::bergamo().cores_per_socket, 128);
    EXPECT_EQ(CpuCatalog::rome().cores_per_socket, 64);
    EXPECT_EQ(CpuCatalog::milan().cores_per_socket, 64);
    EXPECT_EQ(CpuCatalog::genoa().cores_per_socket, 80);
}

TEST(CpuCatalogTest, TableOneFrequencies)
{
    EXPECT_DOUBLE_EQ(CpuCatalog::bergamo().max_freq_ghz, 3.0);
    EXPECT_DOUBLE_EQ(CpuCatalog::rome().max_freq_ghz, 3.0);
    EXPECT_DOUBLE_EQ(CpuCatalog::milan().max_freq_ghz, 3.7);
    EXPECT_DOUBLE_EQ(CpuCatalog::genoa().max_freq_ghz, 3.7);
}

TEST(CpuCatalogTest, TableOneLlcSizes)
{
    EXPECT_DOUBLE_EQ(CpuCatalog::bergamo().llc_mib, 256.0);
    EXPECT_DOUBLE_EQ(CpuCatalog::rome().llc_mib, 256.0);
    EXPECT_DOUBLE_EQ(CpuCatalog::milan().llc_mib, 256.0);
    EXPECT_DOUBLE_EQ(CpuCatalog::genoa().llc_mib, 384.0);
}

TEST(CpuCatalogTest, LlcPerCoreOrdering)
{
    // Bergamo 2 MiB/core vs Genoa 4.8 MiB/core (§III).
    EXPECT_NEAR(CpuCatalog::bergamo().llcPerCoreMib(), 2.0, 1e-9);
    EXPECT_NEAR(CpuCatalog::genoa().llcPerCoreMib(), 4.8, 1e-9);
    EXPECT_NEAR(CpuCatalog::rome().llcPerCoreMib(), 4.0, 1e-9);
}

TEST(CpuCatalogTest, BandwidthPerCoreMatchesSectionThree)
{
    // §III: Genoa 5.8 GB/s per core; Bergamo (460+100)/128 = 4.4 GB/s.
    EXPECT_NEAR(CpuCatalog::genoa().bwPerCoreGbps(), 5.75, 0.05);
    EXPECT_NEAR(CpuCatalog::bergamo().bwPerCoreGbps(), 4.375, 0.05);
}

TEST(CpuCatalogTest, GenerationMappingRoundTrips)
{
    EXPECT_EQ(CpuCatalog::forGeneration(carbon::Generation::Gen1).name,
              "AMD Rome");
    EXPECT_EQ(CpuCatalog::forGeneration(carbon::Generation::Gen2).name,
              "AMD Milan");
    EXPECT_EQ(CpuCatalog::forGeneration(carbon::Generation::Gen3).name,
              "AMD Genoa");
    EXPECT_EQ(CpuCatalog::forGeneration(carbon::Generation::GreenSku).name,
              "AMD Bergamo");
}

TEST(CpuCatalogTest, IpcGenerationalOrdering)
{
    EXPECT_LT(CpuCatalog::rome().ipc, CpuCatalog::milan().ipc);
    EXPECT_LT(CpuCatalog::milan().ipc, CpuCatalog::genoa().ipc);
    // Zen 4c has Zen 4 IPC (§III: same core, less cache).
    EXPECT_DOUBLE_EQ(CpuCatalog::bergamo().ipc, CpuCatalog::genoa().ipc);
}

} // namespace
} // namespace gsku::perf
