/** @file M/M/c queueing math: known values and structural properties. */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "perf/queueing.h"

namespace gsku::perf {
namespace {

TEST(ErlangCTest, SingleServerEqualsRho)
{
    // For M/M/1, P(wait) = rho.
    EXPECT_NEAR(erlangC(1, 0.5), 0.5, 1e-12);
    EXPECT_NEAR(erlangC(1, 0.9), 0.9, 1e-12);
}

TEST(ErlangCTest, KnownTwoServerValue)
{
    // M/M/2 with a = 1 (rho = 0.5): C = 1/3.
    EXPECT_NEAR(erlangC(2, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(ErlangCTest, ZeroLoadNeverWaits)
{
    EXPECT_DOUBLE_EQ(erlangC(4, 0.0), 0.0);
}

TEST(ErlangCTest, MonotoneInLoad)
{
    double prev = 0.0;
    for (double a = 0.5; a < 8.0; a += 0.5) {
        const double c = erlangC(8, a);
        ASSERT_GT(c, prev);
        prev = c;
    }
}

TEST(ErlangCTest, MoreServersWaitLessAtSameRho)
{
    // Pooling: at equal utilization, larger systems queue less.
    EXPECT_GT(erlangC(2, 2 * 0.8), erlangC(8, 8 * 0.8));
    EXPECT_GT(erlangC(8, 8 * 0.8), erlangC(32, 32 * 0.8));
}

TEST(ErlangCTest, RejectsUnstableLoad)
{
    EXPECT_THROW(erlangC(4, 4.0), UserError);
    EXPECT_THROW(erlangC(4, 5.0), UserError);
    EXPECT_THROW(erlangC(0, 0.5), UserError);
}

namespace {

/**
 * Long-double reference: same recurrence and cancellation-free final
 * form, carried at extended precision so the double implementation can
 * be checked against a strictly more accurate oracle.
 */
double
erlangCReference(int servers, double offered_load)
{
    if (offered_load == 0.0) {
        return 0.0;
    }
    const long double a = offered_load;
    const long double c = servers;
    long double inv_b = 1.0L;
    for (int k = 1; k <= servers; ++k) {
        inv_b = 1.0L + inv_b * static_cast<long double>(k) / a;
        if (inv_b > 1e4000L) {
            return 0.0;
        }
    }
    const long double b = 1.0L / inv_b;
    return static_cast<double>(c * b / ((c - a) + a * b));
}

} // namespace

TEST(ErlangCTest, MatchesLongDoubleReferenceAcrossServerScales)
{
    // Property sweep: servers spanning four orders of magnitude, loads
    // from idle to deep saturation. At every point the probability is
    // in [0, 1] and within a tight relative error of the long-double
    // oracle.
    for (int servers : {1, 2, 5, 10, 100, 1000, 10000}) {
        for (double rho : {0.05, 0.3, 0.5, 0.8, 0.95, 0.999}) {
            const double a = rho * servers;
            const double got = erlangC(servers, a);
            ASSERT_GE(got, 0.0) << servers << " " << rho;
            ASSERT_LE(got, 1.0) << servers << " " << rho;
            const double want = erlangCReference(servers, a);
            if (want > 1e-12) {
                ASSERT_NEAR(got / want, 1.0, 1e-9)
                    << "servers=" << servers << " rho=" << rho;
            } else {
                ASSERT_LE(got, 1e-12)
                    << "servers=" << servers << " rho=" << rho;
            }
        }
    }
}

TEST(ErlangCTest, MonotoneInLoadEverywhere)
{
    // C(c, a) increases in a for every server count — strictly so once
    // it is positive (large-c low-rho points sit at exactly 0 under the
    // underflow guard). The near-saturation steps exercise the
    // cancellation-free final form (the old 1 - rho + rho*B denominator
    // went non-monotone there).
    for (int servers : {1, 3, 8, 64, 512, 10000}) {
        double prev = 0.0;
        for (double rho : {0.1, 0.4, 0.7, 0.9, 0.99, 0.999, 0.99999}) {
            const double c = erlangC(servers, rho * servers);
            ASSERT_GE(c, prev) << "servers=" << servers
                               << " rho=" << rho;
            if (prev > 0.0) {
                ASSERT_GT(c, prev)
                    << "servers=" << servers << " rho=" << rho;
            }
            prev = c;
        }
        ASSERT_GT(prev, 0.0) << servers;    // Saturation end is positive.
    }
}

TEST(ErlangCTest, NearSaturationStaysAccurate)
{
    // Regression for the catastrophic cancellation: as rho -> 1,
    // C -> 1 smoothly from below. The old form lost ~|log10(1-rho)|
    // digits and could exceed 1 or drop in rho.
    for (double eps : {1e-6, 1e-9, 1e-12}) {
        const double c = erlangC(16, 16.0 * (1.0 - eps));
        EXPECT_GT(c, 0.9) << eps;
        EXPECT_LE(c, 1.0) << eps;
        const double want = erlangCReference(16, 16.0 * (1.0 - eps));
        EXPECT_NEAR(c / want, 1.0, 1e-8) << eps;
    }
}

TEST(ErlangCTest, HugeServerCountsNeverOverflow)
{
    // Regression for the inv_b overflow: at low utilization with many
    // servers the inverse Erlang-B blows past double range; the guard
    // must return exactly 0 (not inf/NaN garbage).
    for (int servers : {1000, 5000, 10000}) {
        const double c = erlangC(servers, 0.2 * servers);
        EXPECT_TRUE(std::isfinite(c)) << servers;
        EXPECT_EQ(c, 0.0) << servers;
    }
    // And a mid-scale point that stops just short of the guard still
    // returns a sane probability.
    const double c = erlangC(200, 190.0);
    EXPECT_GT(c, 0.0);
    EXPECT_LE(c, 1.0);
}

TEST(MeanWaitTest, MatchesMm1ClosedForm)
{
    // M/M/1: Wq = rho / (mu - lambda).
    const double mu = 10.0;
    const double lambda = 7.0;
    const double expected_s = (lambda / mu) / (mu - lambda);
    EXPECT_NEAR(meanWaitMs(1, mu, lambda), expected_s * 1e3, 1e-9);
}

TEST(MeanWaitTest, SaturationGivesInfinity)
{
    EXPECT_TRUE(std::isinf(meanWaitMs(4, 10.0, 40.0)));
    EXPECT_TRUE(std::isinf(meanWaitMs(4, 10.0, 50.0)));
}

TEST(PeakThroughputTest, IsServersTimesRate)
{
    EXPECT_DOUBLE_EQ(peakThroughput(8, 125.0), 1000.0);
}

TEST(SojournTest, ZeroLoadIsServicePercentile)
{
    // With no queueing, T = S ~ exp(mu); p-th percentile is
    // -ln(1-p)/mu.
    const double mu = 100.0;
    const double p95 = percentileSojournMs(4, mu, 0.0, 95.0);
    EXPECT_NEAR(p95, -std::log(0.05) / mu * 1e3, 0.01);
}

TEST(SojournTest, MonotoneInLoad)
{
    const double mu = 50.0;
    double prev = 0.0;
    for (double frac = 0.1; frac < 1.0; frac += 0.1) {
        const double t =
            percentileSojournMs(8, mu, frac * 8 * mu, 95.0);
        ASSERT_GT(t, prev);
        prev = t;
    }
}

TEST(SojournTest, HigherPercentilesAreSlower)
{
    const double mu = 50.0;
    const double lambda = 0.8 * 8 * mu;
    const double p50 = percentileSojournMs(8, mu, lambda, 50.0);
    const double p95 = percentileSojournMs(8, mu, lambda, 95.0);
    const double p99 = percentileSojournMs(8, mu, lambda, 99.0);
    EXPECT_LT(p50, p95);
    EXPECT_LT(p95, p99);
}

TEST(SojournTest, SaturatedIsInfinite)
{
    EXPECT_TRUE(std::isinf(percentileSojournMs(8, 50.0, 400.0, 95.0)));
    EXPECT_TRUE(std::isinf(percentileSojournMs(8, 50.0, 500.0, 95.0)));
}

TEST(SojournTest, HockeyStickNearSaturation)
{
    // Fig. 7 shape: latency at 95% load is far above latency at 50%.
    const double mu = 50.0;
    const double low = percentileSojournMs(8, mu, 0.5 * 8 * mu, 95.0);
    const double high = percentileSojournMs(8, mu, 0.95 * 8 * mu, 95.0);
    EXPECT_GT(high, 2.5 * low);
}

TEST(SojournTest, FasterServersScaleLatencyDown)
{
    // Doubling mu at equal utilization halves latency exactly.
    const double t1 = percentileSojournMs(8, 50.0, 0.8 * 400.0, 95.0);
    const double t2 = percentileSojournMs(8, 100.0, 0.8 * 800.0, 95.0);
    EXPECT_NEAR(t1, 2.0 * t2, 1e-6);
}

TEST(SojournTest, DegenerateThetaEqualsMuHandled)
{
    // Pick parameters where c*mu - lambda == mu exactly: c=2, lambda=mu.
    const double mu = 10.0;
    const double t = percentileSojournMs(2, mu, mu, 95.0);
    EXPECT_TRUE(std::isfinite(t));
    EXPECT_GT(t, 0.0);
}

TEST(SojournTest, ArgumentValidation)
{
    EXPECT_THROW(percentileSojournMs(0, 1.0, 0.0, 95.0), UserError);
    EXPECT_THROW(percentileSojournMs(1, 0.0, 0.0, 95.0), UserError);
    EXPECT_THROW(percentileSojournMs(1, 1.0, -1.0, 95.0), UserError);
    EXPECT_THROW(percentileSojournMs(1, 1.0, 0.5, 0.0), UserError);
    EXPECT_THROW(percentileSojournMs(1, 1.0, 0.5, 100.0), UserError);
}

} // namespace
} // namespace gsku::perf
