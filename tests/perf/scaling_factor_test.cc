/**
 * @file
 * Exact reproduction of Table III: GreenSKU-Efficient's performance
 * scaling factor for every application against the Gen1, Gen2, and Gen3
 * baselines. This is the calibration contract of the performance model:
 * the derived per-core performance plus the queueing-based SLO search
 * must land every one of the 57 cells on the paper's value.
 */
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "perf/cpu.h"
#include "perf/model.h"

namespace gsku::perf {
namespace {

struct TableIiiRow
{
    const char *app;
    const char *gen1;
    const char *gen2;
    const char *gen3;
};

constexpr std::array<TableIiiRow, 19> kTableIii = {{
    {"Redis", "1", "1", "1"},
    {"Masstree", "1", "1", ">1.5"},
    {"Silo", ">1.5", ">1.5", ">1.5"},
    {"Shore", "1", "1", "1"},
    {"Xapian", "1", "1", "1.5"},
    {"WebF-Dynamic", "1", "1.25", "1.25"},
    {"WebF-Hot", "1", "1.25", "1.5"},
    {"WebF-Cold", "1", "1", "1"},
    {"Moses", "1", "1", "1.25"},
    {"Sphinx", "1", "1.25", "1.25"},
    {"Img-DNN", "1", "1", "1"},
    {"Nginx", "1", "1", "1.25"},
    {"Caddy", "1", "1", "1"},
    {"Envoy", "1", "1", "1"},
    {"HAProxy", "1", "1", "1.25"},
    {"Traefik", "1", "1", "1.25"},
    {"Build-Python", "1", "1", "1.25"},
    {"Build-Wasm", "1", "1", "1.25"},
    {"Build-PHP", "1", "1", "1.25"},
}};

class ScalingFactorTest : public ::testing::TestWithParam<TableIiiRow>
{
  protected:
    PerfModel model_;
};

TEST_P(ScalingFactorTest, MatchesTableIii)
{
    const TableIiiRow &row = GetParam();
    const AppProfile &app = AppCatalog::byName(row.app);

    EXPECT_EQ(model_.scalingFactor(app, CpuCatalog::rome()).display(),
              row.gen1)
        << row.app << " vs Gen1";
    EXPECT_EQ(model_.scalingFactor(app, CpuCatalog::milan()).display(),
              row.gen2)
        << row.app << " vs Gen2";
    EXPECT_EQ(model_.scalingFactor(app, CpuCatalog::genoa()).display(),
              row.gen3)
        << row.app << " vs Gen3";
}

INSTANTIATE_TEST_SUITE_P(TableIii, ScalingFactorTest,
                         ::testing::ValuesIn(kTableIii),
                         [](const auto &info) {
                             std::string name = info.param.app;
                             for (char &c : name) {
                                 if (c == '-') {
                                     c = '_';
                                 }
                             }
                             return name;
                         });

TEST(ScalingFactorPropertiesTest, FactorsNeverShrinkForNewerBaselines)
{
    // A newer (faster) baseline can only require equal or more scaling.
    PerfModel model;
    auto numeric = [](const ScalingResult &r) {
        return r.feasible ? r.factor : 10.0;
    };
    for (const auto &app : AppCatalog::all()) {
        const double g1 =
            numeric(model.scalingFactor(app, CpuCatalog::rome()));
        const double g2 =
            numeric(model.scalingFactor(app, CpuCatalog::milan()));
        const double g3 =
            numeric(model.scalingFactor(app, CpuCatalog::genoa()));
        EXPECT_LE(g1, g2) << app.name;
        EXPECT_LE(g2, g3) << app.name;
    }
}

TEST(ScalingFactorPropertiesTest, SixAppsNeedNoScalingVsGen3)
{
    // §VI says "for seven applications" GreenSKU-Efficient meets Gen3's
    // SLO without scaling, but Table III's Gen3 column itself contains
    // six factor-1 cells among the 19 named applications (the 20th
    // benchmarked app is not named); we reproduce the table.
    PerfModel model;
    int unscaled = 0;
    for (const auto &app : AppCatalog::all()) {
        const auto r = model.scalingFactor(app, CpuCatalog::genoa());
        if (r.feasible && r.factor == 1.0) {
            ++unscaled;
        }
    }
    EXPECT_EQ(unscaled, 6);
}

TEST(ScalingFactorPropertiesTest, CxlBackingOnlyHurts)
{
    PerfModel model;
    auto numeric = [](const ScalingResult &r) {
        return r.feasible ? r.factor : 10.0;
    };
    for (const auto &app : AppCatalog::all()) {
        const double plain =
            numeric(model.scalingFactor(app, CpuCatalog::genoa(), false));
        const double cxl =
            numeric(model.scalingFactor(app, CpuCatalog::genoa(), true));
        EXPECT_GE(cxl, plain) << app.name;
    }
}

TEST(ScalingFactorPropertiesTest, P99SloGivesSimilarBehavior)
{
    // §VI: "We also measure 99th% latency and notice similar
    // behaviors." The scaling-factor table must be essentially
    // unchanged when the SLO percentile moves from p95 to p99.
    PerfConfig p99;
    p99.tail_percentile = 99.0;
    PerfModel strict(p99);
    PerfModel standard;
    int diffs = 0;
    for (const auto &app : AppCatalog::all()) {
        for (const CpuSpec &base :
             {CpuCatalog::rome(), CpuCatalog::milan(),
              CpuCatalog::genoa()}) {
            if (strict.scalingFactor(app, base).display() !=
                standard.scalingFactor(app, base).display()) {
                ++diffs;
            }
        }
    }
    EXPECT_LE(diffs, 2) << "p99 SLO changed " << diffs
                        << " of 57 Table III cells";
}

TEST(ScalingFactorPropertiesTest, DisplayFormatsAreCanonical)
{
    ScalingResult r;
    EXPECT_EQ(r.display(), ">1.5");
    r.feasible = true;
    r.factor = 1.0;
    EXPECT_EQ(r.display(), "1");
    r.factor = 1.25;
    EXPECT_EQ(r.display(), "1.25");
    r.factor = 1.5;
    EXPECT_EQ(r.display(), "1.5");
    r.factor = 2.0;
    EXPECT_EQ(r.display(), "2.00");
}

} // namespace
} // namespace gsku::perf
