/**
 * @file
 * GSF's maintenance component (§IV-B, §V): server annual failure rates
 * aggregated from component AFRs, Fail-In-Place (FIP) mitigation, the
 * Little's-law out-of-service overhead, and the C_OOS maintenance-carbon
 * comparison of §V.
 *
 * The §V worked example is the validation anchor: a baseline SKU with
 * 12 DIMMs and 6 SSDs has AFR 4.8 (DIMM 0.1, SSD 0.2 each; DIMMs+SSDs are
 * half of server AFR); GreenSKU-Full with 20 DIMMs and 14 SSDs has 7.2.
 * With 75%-effective FIP the repair rates drop to 3.0 and 3.6, and
 * C_OOS = 3.6 * 0.66 * 1.262 = 2.98 vs 3.0 — negligible overhead.
 */
#pragma once

#include "carbon/sku.h"
#include "common/units.h"

namespace gsku::reliability {

/** Component and overhead AFR parameters (per §V footnotes). */
struct AfrParams
{
    /** Annual failure rate of one DIMM, in failures per 100 servers. */
    double dimm_afr = 0.1;

    /** Annual failure rate of one SSD, in failures per 100 servers. */
    double ssd_afr = 0.2;

    /**
     * AFR of everything else (CPU, board, PSU, NIC, fans) per server.
     * 2.4 makes DIMMs+SSDs exactly half of the baseline's server AFR,
     * matching §V footnote 3.
     */
    double other_afr = 2.4;

    /** Fraction of DIMM/SSD failures FIP absorbs without repair (§V). */
    double fip_effectiveness = 0.75;

    /** Mean time to repair an out-of-service server. */
    Duration repair_time = Duration::days(14.0);
};

/** Per-SKU maintenance figures; rates are per 100 servers per year. */
struct MaintenanceStats
{
    double dimm_ssd_afr = 0.0;  ///< AFR from DIMMs and SSDs.
    double server_afr = 0.0;    ///< Total server AFR.
    double repair_rate = 0.0;   ///< AFR after FIP absorption.
    double oos_fraction = 0.0;  ///< Little's law: repair_rate * MTTR.
};

/** Inputs for the §V C_OOS comparison of two SKUs. */
struct CoosInputs
{
    /** Servers of this SKU needed per baseline server (0.66 for
     *  GreenSKU-Full after scaling-factor inflation). */
    double servers_per_baseline = 1.0;

    /** Per-server emissions relative to the baseline SKU (1.262 for
     *  GreenSKU-Full). */
    double per_server_emissions_ratio = 1.0;
};

/** The maintenance model. */
class MaintenanceModel
{
  public:
    explicit MaintenanceModel(AfrParams params = AfrParams{});

    const AfrParams &params() const { return params_; }

    /** Full maintenance figures for a SKU. */
    MaintenanceStats stats(const carbon::ServerSku &sku) const;

    /** Server AFR per 100 servers (component sum + other overhead). */
    double serverAfr(const carbon::ServerSku &sku) const;

    /** Repair rate per 100 servers after FIP (only DIMM/SSD absorb). */
    double repairRate(const carbon::ServerSku &sku) const;

    /**
     * Fraction of servers out of service at any time, via Little's law:
     * (repair rate per server-year) * (repair time in years).
     */
    double outOfServiceFraction(const carbon::ServerSku &sku) const;

    /**
     * Maintenance carbon overhead C_OOS = repair rate x servers-needed x
     * per-server emissions (both normalized to the baseline SKU).
     */
    double coos(const carbon::ServerSku &sku, const CoosInputs &in) const;

  private:
    AfrParams params_;
};

} // namespace gsku::reliability
