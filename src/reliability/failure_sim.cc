#include "reliability/failure_sim.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace gsku::reliability {

double
HazardParams::monthlyHazard(double age_months) const
{
    GSKU_REQUIRE(age_months >= 0.0, "device age must be non-negative");
    const double annual =
        base_afr *
        (1.0 + (infant_multiplier - 1.0) *
                   std::exp(-age_months / infant_decay_months));
    return annual / 12.0;
}

FleetFailureSimulator::FleetFailureSimulator(HazardParams params,
                                             long fleet_size,
                                             std::uint64_t seed)
    : params_(params), fleet_size_(fleet_size), rng_(seed)
{
    GSKU_REQUIRE(fleet_size > 0, "fleet must have devices");
    GSKU_REQUIRE(params.base_afr > 0.0 && params.base_afr < 1.0,
                 "base AFR must be a fraction in (0, 1)");
    GSKU_REQUIRE(params.infant_multiplier >= 1.0,
                 "infant multiplier must be >= 1");
    GSKU_REQUIRE(params.infant_decay_months > 0.0,
                 "infant decay must be positive");
}

std::vector<MonthlyFailureStat>
FleetFailureSimulator::run(int months, std::size_t smoothing_window)
{
    GSKU_REQUIRE(months > 0, "simulation needs at least one month");

    std::vector<MonthlyFailureStat> out;
    out.reserve(static_cast<std::size_t>(months));
    MovingAverage smoother(smoothing_window);

    long alive = fleet_size_;
    for (int m = 0; m < months; ++m) {
        const double hazard =
            params_.monthlyHazard(static_cast<double>(m));
        // Binomial draw via per-device Bernoulli would be O(fleet);
        // a normal approximation is indistinguishable at fleet sizes of
        // 10^4+ and keeps the simulation O(months).
        const double mean = static_cast<double>(alive) * hazard;
        const double sd = std::sqrt(mean * (1.0 - hazard));
        long failures =
            static_cast<long>(std::lround(mean + sd * rng_.normal()));
        failures = std::max(0L, std::min(failures, alive));

        MonthlyFailureStat stat;
        stat.month = m;
        stat.population = alive;
        stat.failures = failures;
        stat.raw_rate =
            alive > 0
                ? static_cast<double>(failures) /
                      static_cast<double>(alive) * 12.0
                : 0.0;
        stat.smoothed_rate = smoother.add(stat.raw_rate);
        out.push_back(stat);

        alive -= failures;
        if (alive == 0) {
            break;
        }
    }
    return out;
}

} // namespace gsku::reliability
