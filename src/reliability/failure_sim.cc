#include "reliability/failure_sim.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace gsku::reliability {

double
HazardParams::monthlyHazard(double age_months) const
{
    GSKU_REQUIRE(age_months >= 0.0, "device age must be non-negative");
    const double annual =
        base_afr *
        (1.0 + (infant_multiplier - 1.0) *
                   std::exp(-age_months / infant_decay_months));
    return annual / 12.0;
}

FleetFailureSimulator::FleetFailureSimulator(HazardParams params,
                                             long fleet_size,
                                             std::uint64_t seed)
    : params_(params), fleet_size_(fleet_size), rng_(seed)
{
    GSKU_REQUIRE(fleet_size > 0, "fleet must have devices");
    GSKU_REQUIRE(params.base_afr > 0.0 && params.base_afr < 1.0,
                 "base AFR must be a fraction in (0, 1)");
    GSKU_REQUIRE(params.infant_multiplier >= 1.0,
                 "infant multiplier must be >= 1");
    GSKU_REQUIRE(params.infant_decay_months > 0.0,
                 "infant decay must be positive");
}

std::vector<MonthlyFailureStat>
FleetFailureSimulator::run(int months, std::size_t smoothing_window)
{
    GSKU_REQUIRE(months > 0, "simulation needs at least one month");

    std::vector<MonthlyFailureStat> out;
    out.reserve(static_cast<std::size_t>(months));
    MovingAverage smoother(smoothing_window);

    long alive = fleet_size_;
    for (int m = 0; m < months; ++m) {
        const double hazard =
            params_.monthlyHazard(static_cast<double>(m));
        // Binomial draw via per-device Bernoulli would be O(fleet);
        // a normal approximation is indistinguishable at fleet sizes of
        // 10^4+ and keeps the simulation O(months).
        const double mean = static_cast<double>(alive) * hazard;
        const double sd = std::sqrt(mean * (1.0 - hazard));
        long failures =
            static_cast<long>(std::lround(mean + sd * rng_.normal()));
        failures = std::max(0L, std::min(failures, alive));

        MonthlyFailureStat stat;
        stat.month = m;
        stat.population = alive;
        stat.failures = failures;
        stat.raw_rate =
            alive > 0
                ? static_cast<double>(failures) /
                      static_cast<double>(alive) * 12.0
                : 0.0;
        stat.smoothed_rate = smoother.add(stat.raw_rate);
        out.push_back(stat);

        alive -= failures;
        if (alive == 0) {
            break;
        }
    }
    return out;
}

std::vector<MonthlyTrialStat>
FleetFailureSimulator::runTrials(int trials, int months,
                                 std::size_t smoothing_window)
{
    GSKU_REQUIRE(trials > 0, "need at least one trial");
    GSKU_REQUIRE(months > 0, "simulation needs at least one month");

    static obs::Counter &trial_count =
        obs::metrics().counter("failure_sim.trials");
    trial_count.inc(static_cast<std::uint64_t>(trials));
    obs::TraceSpan span("failure_sim", "runTrials");
    obs::ProfileScope prof("failure_sim.trials");
    span.arg("trials", static_cast<std::int64_t>(trials))
        .arg("months", static_cast<std::int64_t>(months));

    // Fork one independent stream per trial, serially, before any
    // parallel work: the parent seed fully determines every trial
    // regardless of how the pool schedules them.
    std::vector<Rng> streams;
    streams.reserve(static_cast<std::size_t>(trials));
    for (int i = 0; i < trials; ++i) {
        streams.push_back(rng_.fork());
    }

    const auto runs = parallelMap<std::vector<MonthlyFailureStat>>(
        static_cast<std::size_t>(trials), [&](std::size_t i) {
            // One work unit per Monte-Carlo trial; pool tasks inherit
            // the failure_sim.trials domain (obs/profile.h).
            obs::profileWork("trial");
            FleetFailureSimulator sim(params_, fleet_size_, 0);
            sim.rng_ = streams[i];
            return sim.run(months, smoothing_window);
        });

    // Aggregate per month over the trials that still have population
    // (a trial whose fleet died out stops contributing), accumulating
    // in trial order so sums are bit-reproducible.
    std::vector<MonthlyTrialStat> out;
    for (int m = 0; m < months; ++m) {
        MonthlyTrialStat stat;
        stat.month = m;
        bool first = true;
        for (const auto &run : runs) {
            if (static_cast<std::size_t>(m) >= run.size()) {
                continue;
            }
            const MonthlyFailureStat &s = run[m];
            ++stat.trials;
            stat.mean_failures += static_cast<double>(s.failures);
            stat.mean_population += static_cast<double>(s.population);
            stat.mean_raw_rate += s.raw_rate;
            stat.mean_smoothed_rate += s.smoothed_rate;
            if (first) {
                stat.min_smoothed_rate = s.smoothed_rate;
                stat.max_smoothed_rate = s.smoothed_rate;
                first = false;
            } else {
                stat.min_smoothed_rate =
                    std::min(stat.min_smoothed_rate, s.smoothed_rate);
                stat.max_smoothed_rate =
                    std::max(stat.max_smoothed_rate, s.smoothed_rate);
            }
        }
        if (stat.trials == 0) {
            break;      // Every trial's fleet has died out.
        }
        const double n = static_cast<double>(stat.trials);
        stat.mean_failures /= n;
        stat.mean_population /= n;
        stat.mean_raw_rate /= n;
        stat.mean_smoothed_rate /= n;
        out.push_back(stat);
    }
    return out;
}

} // namespace gsku::reliability
