#include "reliability/maintenance.h"

#include "common/error.h"

namespace gsku::reliability {

MaintenanceModel::MaintenanceModel(AfrParams params) : params_(params)
{
    GSKU_REQUIRE(params_.dimm_afr >= 0.0 && params_.ssd_afr >= 0.0 &&
                     params_.other_afr >= 0.0,
                 "AFRs must be non-negative");
    GSKU_REQUIRE(params_.fip_effectiveness >= 0.0 &&
                     params_.fip_effectiveness <= 1.0,
                 "FIP effectiveness must be in [0, 1]");
    GSKU_REQUIRE(params_.repair_time.asHours() > 0.0,
                 "repair time must be positive");
}

MaintenanceStats
MaintenanceModel::stats(const carbon::ServerSku &sku) const
{
    MaintenanceStats out;
    const int dimms = sku.unitCount(carbon::ComponentKind::Dram);
    const int ssds = sku.unitCount(carbon::ComponentKind::Ssd);
    // §V: reused DIMMs/SSDs show lower-or-equal AFRs than new parts, so
    // the same per-unit AFR applies to both.
    out.dimm_ssd_afr = static_cast<double>(dimms) * params_.dimm_afr +
                       static_cast<double>(ssds) * params_.ssd_afr;
    out.server_afr = out.dimm_ssd_afr + params_.other_afr;
    out.repair_rate = params_.other_afr +
                      (1.0 - params_.fip_effectiveness) * out.dimm_ssd_afr;
    // Rates are per 100 servers per year; convert to per server-year.
    out.oos_fraction =
        out.repair_rate / 100.0 * params_.repair_time.asYears();
    return out;
}

double
MaintenanceModel::serverAfr(const carbon::ServerSku &sku) const
{
    return stats(sku).server_afr;
}

double
MaintenanceModel::repairRate(const carbon::ServerSku &sku) const
{
    return stats(sku).repair_rate;
}

double
MaintenanceModel::outOfServiceFraction(const carbon::ServerSku &sku) const
{
    return stats(sku).oos_fraction;
}

double
MaintenanceModel::coos(const carbon::ServerSku &sku,
                       const CoosInputs &in) const
{
    GSKU_REQUIRE(in.servers_per_baseline > 0.0 &&
                     in.per_server_emissions_ratio > 0.0,
                 "C_OOS inputs must be positive");
    return repairRate(sku) * in.servers_per_baseline *
           in.per_server_emissions_ratio;
}

} // namespace gsku::reliability
