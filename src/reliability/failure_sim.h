/**
 * @file
 * Monte-Carlo fleet failure simulator behind Fig. 2: normalized DDR4 DIMM
 * failure rates over deployment time. The hazard model is
 * "bathtub-without-wearout": an infant-mortality term decaying to a
 * constant base rate, matching the paper's observation that after an
 * initial period of higher AFRs, failure rates stay constant over 7+
 * years (and accelerated-aging studies show flat beyond 12 years).
 */
#pragma once

#include <vector>

#include "common/rng.h"

namespace gsku::reliability {

/** Hazard-rate parameters for one device population. */
struct HazardParams
{
    /** Steady-state annual failure rate (fraction of fleet per year). */
    double base_afr = 0.001;

    /** Infant-mortality multiplier at t=0 (hazard = multiple * base). */
    double infant_multiplier = 2.0;

    /** Decay time constant of infant mortality, months. */
    double infant_decay_months = 6.0;

    /** Monthly hazard rate at a device age in months. */
    double monthlyHazard(double age_months) const;
};

/** One month of the simulated fleet's life. */
struct MonthlyFailureStat
{
    int month = 0;
    long population = 0;        ///< Devices alive at month start.
    long failures = 0;
    double raw_rate = 0.0;      ///< failures / population, annualized.
    double smoothed_rate = 0.0; ///< Trailing moving average (black line).
};

/** One month aggregated across independent Monte-Carlo trials. */
struct MonthlyTrialStat
{
    int month = 0;
    int trials = 0;                  ///< Trials with data for this month.
    double mean_failures = 0.0;
    double mean_population = 0.0;
    double mean_raw_rate = 0.0;
    double mean_smoothed_rate = 0.0;
    double min_smoothed_rate = 0.0;  ///< Envelope across trials.
    double max_smoothed_rate = 0.0;
};

/** Simulates a device fleet and reports monthly (smoothed) AFRs. */
class FleetFailureSimulator
{
  public:
    FleetFailureSimulator(HazardParams params, long fleet_size,
                          std::uint64_t seed = 42);

    /**
     * Run for @p months months; failed devices are not replaced
     * (decommissioned hosts leave the denominator, as in production
     * telemetry). @p smoothing_window is the moving-average width.
     */
    std::vector<MonthlyFailureStat> run(int months,
                                        std::size_t smoothing_window = 6);

    /**
     * Run @p trials independent Monte-Carlo trials and aggregate them
     * per month (mean rates/failures plus the smoothed-rate envelope —
     * the Fig. 2 scatter reduced to bands). Each trial draws from its
     * own RNG stream forked deterministically from this simulator's
     * seed *before* any parallel work, and trials execute on the
     * worker pool (common/parallel.h): results are byte-identical at
     * every thread count. Consumes this simulator's RNG state.
     */
    std::vector<MonthlyTrialStat>
    runTrials(int trials, int months, std::size_t smoothing_window = 6);

  private:
    HazardParams params_;
    long fleet_size_;
    Rng rng_;
};

} // namespace gsku::reliability
