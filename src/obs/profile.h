/**
 * @file
 * Deterministic work-unit profiler (`gsku-profile-v1`): RAII domain
 * scopes plus counted work units, aggregated into a canonical,
 * timestamp-free profile that is byte-identical at 1 vs N pool
 * threads and on any hardware. Wall-clock is the one signal the CI
 * container cannot be trusted to report (one CPU — see CHANGES.md,
 * PR 2), so perf regressions are gated on counted work instead:
 * VM events replayed, placements attempted, sweep jobs, Erlang
 * evaluations, cache probes, DES events, trace records generated.
 *
 * Design rules (same discipline as trace.h):
 *
 *  - Near-zero cost when disabled: a ProfileScope constructor and a
 *    profileWork() tick are each one relaxed atomic load, and no
 *    clock is ever read.
 *  - Enabled either programmatically (startProfile/writeProfile) or
 *    by GSKU_PROFILE=<path>, in which case the profile is written to
 *    <path> (plus <path>.collapsed) automatically at process exit.
 *  - Deterministic: work units land on a global domain-path trie via
 *    commutative relaxed additions, so the aggregate is independent
 *    of pool scheduling. The export sorts domain paths and contains
 *    no timestamps, pids, or thread ids — byte-identical runs give
 *    byte-identical artifacts (tests/gsf/parallel_parity_test.cc).
 *  - Pool tasks inherit the submitting thread's domain path
 *    (common/parallel.cc installs a ProfileTaskScope), so nesting is
 *    the same whether a batch ran inline or on workers.
 *  - Optional volatile lane: GSKU_PROFILE_WALL=1 adds per-domain
 *    wall nanoseconds to the JSON, excluded from the checksum and
 *    the collapsed export. The clock reads stay inside
 *    src/obs/profile.cc, a sanctioned home of the `timing` rule.
 *
 * Artifact: writeProfile(path) emits a gsku-profile-v1 JSON document
 * and a flamegraph-compatible collapsed-stack file at
 * <path>.collapsed (`domain;subdomain;leaf <units>` — feed straight
 * into flamegraph.pl or speedscope). Strict validating reader:
 * common/profile_read.h. Renderer / differ: tools/gsku_prof.cc.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gsku::obs {

namespace profiledetail {
struct ProfileNode;
} // namespace profiledetail

/** True while work units are being recorded. The first call
 *  initializes profiling from the GSKU_PROFILE environment variable. */
bool profileEnabled();

/** Begin recording (idempotent). Resets all accumulated work units so
 *  the next export covers exactly the work since this call. */
void startProfile();

/** Stop recording. Accumulated units are kept for a later export. */
void stopProfile();

/** Record @p program as the "program" field of the next export (the
 *  bench drivers and example CLIs set their own name). */
void setProfileProgram(const std::string &program);

/** One exported domain: the ';'-joined path from the domain-stack
 *  root, its directly-attributed units, and its scope entry count. */
struct ProfileEntry
{
    std::string path;                ///< "evaluator.sweep;sizer.size".
    std::uint64_t self_units = 0;    ///< Units attributed here.
    std::uint64_t total_units = 0;   ///< self + all descendants.
    std::uint64_t scopes = 0;        ///< ProfileScope entries.
    std::uint64_t wall_ns = 0;       ///< Volatile lane (0 unless on).
};

/** Canonical aggregate: entries sorted by path, unique. */
struct ProfileSnapshot
{
    std::vector<ProfileEntry> entries;
    std::uint64_t total_units = 0;   ///< Sum of all self_units.
    bool wall_lane = false;          ///< GSKU_PROFILE_WALL was set.
};

/** Aggregate the current counters into a canonical snapshot. */
ProfileSnapshot snapshotProfile();

/**
 * FNV-1a 64 digest of the deterministic lane: for every entry in
 * path order, the path bytes, a '\n', then self_units and scopes as
 * little-endian u64. The volatile wall lane is excluded, so the
 * checksum is hardware-independent. validate_obs.py --profile
 * recomputes this independently.
 */
std::uint64_t profileChecksum(const ProfileSnapshot &snapshot);

/**
 * Snapshot and write the gsku-profile-v1 JSON to @p path and the
 * collapsed-stack export to <path>.collapsed, each atomically (temp
 * file + rename). Returns false on I/O failure.
 */
bool writeProfile(const std::string &path);

/**
 * RAII domain scope: pushes @p domain onto the calling thread's
 * domain stack; profileWork() ticks between construction and
 * destruction attribute to this path. When profiling is disabled the
 * constructor is a single relaxed load. @p domain must be a string
 * literal (it is keyed by pointer on the hot path).
 */
class ProfileScope
{
  public:
    explicit ProfileScope(const char *domain);
    ~ProfileScope();

    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

  private:
    profiledetail::ProfileNode *node_ = nullptr;
    profiledetail::ProfileNode *saved_ = nullptr;
    std::uint64_t start_ns_ = 0;
};

/** Attribute @p n work units to the innermost open domain (the trie
 *  root when no scope is open). One relaxed load when disabled. Hot
 *  loops should accumulate locally and tick once per batch — the DES
 *  discipline — rather than per event. */
void profileWork(std::uint64_t n = 1);

/** Attribute @p n units to the @p leaf child of the innermost open
 *  domain without pushing a scope (for counted sub-steps like
 *  "probe" or "placements"). @p leaf must be a string literal. */
void profileWork(const char *leaf, std::uint64_t n = 1);

/** Opaque handle to the calling thread's innermost open domain, for
 *  propagation into pool tasks (nullptr when profiling is off). */
profiledetail::ProfileNode *profileCurrentDomain();

/** RAII installer used by common/parallel.cc: makes @p domain the
 *  calling thread's innermost domain for the duration of a pool
 *  task, so tasks nest identically inline and on workers. A nullptr
 *  domain is a no-op. */
class ProfileTaskScope
{
  public:
    explicit ProfileTaskScope(profiledetail::ProfileNode *domain);
    ~ProfileTaskScope();

    ProfileTaskScope(const ProfileTaskScope &) = delete;
    ProfileTaskScope &operator=(const ProfileTaskScope &) = delete;

  private:
    profiledetail::ProfileNode *saved_ = nullptr;
    bool active_ = false;
};

} // namespace gsku::obs
