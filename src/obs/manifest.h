/**
 * @file
 * Run-provenance manifests: every report/bench driver emits a
 * `MANIFEST_<name>.json` alongside its output capturing the run's
 * configuration, RNG seeds, threading, build flags, and the final
 * metrics snapshot — so any two runs are diffable and any number in an
 * artifact is attributable to the exact configuration that produced it
 * (schema in docs/observability.md; validated by tools/validate_obs.py).
 *
 * Manifests deliberately contain no timestamps or hostnames: two runs
 * of the same binary with the same inputs produce byte-identical
 * manifests, so `diff` isolates real configuration drift.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gsku::obs {

/**
 * Builder for one run's manifest. Construct with the program name, add
 * config entries and seeds, then write(); threading, build info, and
 * the current metrics snapshot are captured automatically at write
 * time.
 */
class RunManifest
{
  public:
    explicit RunManifest(std::string program);

    /** Record one configuration entry (kept in insertion order). */
    RunManifest &config(const std::string &key, const std::string &value);
    RunManifest &config(const std::string &key, std::int64_t value);
    RunManifest &config(const std::string &key, double value);
    RunManifest &config(const std::string &key, bool value);

    /** Record one named RNG seed. */
    RunManifest &seed(const std::string &name, std::uint64_t value);

    /** Render the manifest JSON (schema gsku-manifest-v1). */
    std::string toJson() const;

    /** Write toJson() atomically (temp file + rename); false on I/O
     *  failure. */
    bool write(const std::string &path) const;

  private:
    std::string program_;
    std::vector<std::pair<std::string, std::string>> config_;  ///< key -> rendered JSON value.
    std::vector<std::pair<std::string, std::uint64_t>> seeds_;
};

} // namespace gsku::obs
