#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>

namespace gsku::obs {

namespace {

using Clock = std::chrono::steady_clock;

/** Whether spans are currently recorded. */
std::atomic<bool> g_enabled{false};

/**
 * Global tracer state behind the per-thread buffers. Leaked singleton:
 * thread-local buffer destructors (worker threads can outlive main)
 * and the atexit writer must never observe a destroyed tracer.
 */
struct Tracer
{
    std::mutex mutex;
    Clock::time_point epoch = Clock::now();
    std::uint64_t next_tid = 0;
    std::vector<struct ThreadBuffer *> buffers;   ///< Live threads.
    std::vector<TraceEvent> retired;              ///< From dead threads.
    std::string env_path;   ///< GSKU_TRACE target ("" = none).
};

Tracer &
tracer()
{
    static Tracer *t = new Tracer;
    return *t;
}

/** Per-thread event buffer, registered with the tracer on first use. */
struct ThreadBuffer
{
    std::mutex mutex;   ///< Guards events against a concurrent drain.
    std::vector<TraceEvent> events;
    std::uint64_t tid = 0;
    int depth = 0;      ///< Current span nesting depth.

    ThreadBuffer()
    {
        Tracer &t = tracer();
        std::lock_guard<std::mutex> lock(t.mutex);
        tid = t.next_tid++;
        t.buffers.push_back(this);
    }

    ~ThreadBuffer()
    {
        Tracer &t = tracer();
        std::lock_guard<std::mutex> lock(t.mutex);
        {
            std::lock_guard<std::mutex> buffer_lock(mutex);
            t.retired.insert(t.retired.end(),
                             std::make_move_iterator(events.begin()),
                             std::make_move_iterator(events.end()));
            events.clear();
        }
        t.buffers.erase(
            std::remove(t.buffers.begin(), t.buffers.end(), this),
            t.buffers.end());
    }
};

ThreadBuffer &
threadBuffer()
{
    thread_local ThreadBuffer buffer;
    return buffer;
}

void
writeEnvTraceAtExit()
{
    const std::string path = tracer().env_path;
    if (!path.empty()) {
        writeTrace(path);
    }
}

/** One-time init: GSKU_TRACE=<path> enables tracing for the process
 *  and registers an atexit writer for <path>. */
void
initFromEnv()
{
    const char *env = std::getenv("GSKU_TRACE");  // NOLINT(concurrency-mt-unsafe)
    if (env == nullptr || *env == '\0') {
        return;
    }
    {
        Tracer &t = tracer();
        std::lock_guard<std::mutex> lock(t.mutex);
        t.env_path = env;
        t.epoch = Clock::now();
    }
    g_enabled.store(true, std::memory_order_relaxed);
    std::atexit(writeEnvTraceAtExit);
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out + "\"";
}

std::string
jsonNumber(double v)
{
    std::ostringstream s;
    s.precision(std::numeric_limits<double>::max_digits10);
    s << v;
    return s.str();
}

} // namespace

bool
traceEnabled()
{
    static const bool env_checked = [] {
        initFromEnv();
        return true;
    }();
    (void)env_checked;
    return g_enabled.load(std::memory_order_relaxed);
}

void
startTrace()
{
    traceEnabled();     // Ensure env init ran first.
    {
        Tracer &t = tracer();
        std::lock_guard<std::mutex> lock(t.mutex);
        t.epoch = Clock::now();
    }
    g_enabled.store(true, std::memory_order_relaxed);
}

void
stopTrace()
{
    g_enabled.store(false, std::memory_order_relaxed);
    drainTrace();
}

std::vector<TraceEvent>
drainTrace()
{
    Tracer &t = tracer();
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(t.mutex);
        out = std::move(t.retired);
        t.retired.clear();
        for (ThreadBuffer *buffer : t.buffers) {
            std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
            out.insert(out.end(),
                       std::make_move_iterator(buffer->events.begin()),
                       std::make_move_iterator(buffer->events.end()));
            buffer->events.clear();
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.tid != b.tid) {
                      return a.tid < b.tid;
                  }
                  if (a.ts_us != b.ts_us) {
                      return a.ts_us < b.ts_us;
                  }
                  if (a.dur_us != b.dur_us) {
                      return a.dur_us > b.dur_us;
                  }
                  // Tie keys: category then name — zero-duration
                  // spans can share (tid, ts, dur) on coarse clocks.
                  if (a.category != b.category) {
                      return a.category < b.category;
                  }
                  return a.name < b.name;
              });
    return out;
}

bool
writeTrace(const std::string &path)
{
    const std::vector<TraceEvent> events = drainTrace();

    std::ostringstream out;
    out << "{\"traceEvents\": [";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &e = events[i];
        out << (i ? ",\n " : "\n ") << "{\"name\": "
            << jsonQuote(e.name) << ", \"cat\": "
            << jsonQuote(e.category) << ", \"ph\": \"X\", \"ts\": "
            << jsonNumber(e.ts_us) << ", \"dur\": "
            << jsonNumber(e.dur_us) << ", \"pid\": 1, \"tid\": "
            << e.tid;
        if (!e.args_json.empty()) {
            out << ", \"args\": {" << e.args_json << "}";
        }
        out << "}";
    }
    out << "\n], \"displayTimeUnit\": \"ms\"}\n";

    // Atomic publish: a crashed or concurrent reader never sees a
    // truncated trace file.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream file(tmp, std::ios::trunc);
        file << out.str();
        if (!file) {
            return false;
        }
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

TraceSpan::TraceSpan(const char *category, const char *name)
{
    if (!traceEnabled()) {
        return;
    }
    active_ = true;
    category_ = category;
    name_ = name;
    ++threadBuffer().depth;
    start_ = Clock::now();
}

TraceSpan::~TraceSpan()
{
    if (!active_) {
        return;
    }
    const Clock::time_point end = Clock::now();
    Tracer &t = tracer();
    ThreadBuffer &buffer = threadBuffer();

    TraceEvent event;
    event.category = category_;
    event.name = name_;
    event.ts_us =
        std::chrono::duration<double, std::micro>(start_ - t.epoch)
            .count();
    event.dur_us =
        std::chrono::duration<double, std::micro>(end - start_).count();
    event.tid = buffer.tid;
    event.depth = buffer.depth;
    event.args_json = std::move(args_json_);

    {
        std::lock_guard<std::mutex> lock(buffer.mutex);
        buffer.events.push_back(std::move(event));
    }
    --buffer.depth;
}

TraceSpan &
TraceSpan::arg(const char *key, std::int64_t value)
{
    if (active_) {
        args_json_ += (args_json_.empty() ? "" : ", ") +
                      jsonQuote(key) + ": " + std::to_string(value);
    }
    return *this;
}

TraceSpan &
TraceSpan::arg(const char *key, std::uint64_t value)
{
    if (active_) {
        args_json_ += (args_json_.empty() ? "" : ", ") +
                      jsonQuote(key) + ": " + std::to_string(value);
    }
    return *this;
}

TraceSpan &
TraceSpan::arg(const char *key, double value)
{
    if (active_) {
        args_json_ += (args_json_.empty() ? "" : ", ") +
                      jsonQuote(key) + ": " + jsonNumber(value);
    }
    return *this;
}

TraceSpan &
TraceSpan::arg(const char *key, const std::string &value)
{
    if (active_) {
        args_json_ += (args_json_.empty() ? "" : ", ") +
                      jsonQuote(key) + ": " + jsonQuote(value);
    }
    return *this;
}

} // namespace gsku::obs
