// The async-signal-safe half of the flight recorder: the crash handler
// and the raw dump writer. This translation unit is held to strict
// async-signal-safety (analyzer rule `sigsafe`, docs/analysis.md): the
// only calls allowed here are raw syscalls (open/write/close/rename),
// lock-free atomics, and mem/str primitives on fixed buffers — no
// allocation, no iostream/printf, no locks, no C++ exceptions. The
// normal-context side (env init, ring writes) lives in flightrec.cc.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "obs/flightrec_state.h"

namespace gsku::obs::flight {

namespace {

bool
writeAll(int fd, const char *buf, std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::write(fd, buf + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeCStr(int fd, const char *s)
{
    return writeAll(fd, s, std::strlen(s));
}

/** Decimal-format @p v into @p out (>= 21 bytes); returns length. */
std::size_t
formatU64(std::uint64_t v, char *out)
{
    char tmp[20];
    std::size_t n = 0;
    do {
        tmp[n++] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v != 0);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = tmp[n - 1 - i];
    out[n] = '\0';
    return n;
}

bool
writeU64(int fd, std::uint64_t v)
{
    char buf[21];
    return writeAll(fd, buf, formatU64(v, buf));
}

/** Bounded NUL search so a torn slot cannot run past its buffer. */
std::size_t
boundedLen(const char *s, std::size_t cap)
{
    std::size_t n = 0;
    while (n < cap && s[n] != '\0')
        ++n;
    return n;
}

const char *
signalName(int sig)
{
    switch (sig) {
    case SIGABRT: return "SIGABRT";
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS:  return "SIGBUS";
    case SIGFPE:  return "SIGFPE";
    case SIGILL:  return "SIGILL";
    default:      return "signal";
    }
}

// Static (not stack) scratch: the handler may be running on a nearly
// exhausted stack. The crash path dumps once, and on-demand dumps are
// serialized by the callers in practice; a rare race only tears this
// best-effort scratch, never g_state.
char g_tag_scratch[kTagBytes];
char g_text_scratch[kTextBytes];
char g_snap_scratch[kSnapshotBytes];

} // namespace

bool
rawDump(const char *reason)
{
    State &st = g_state;
    if (!st.enabled.load(std::memory_order_acquire) ||
        st.path[0] == '\0') {
        return false;
    }

    const int fd =
        ::open(st.tmp_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;

    bool ok = writeCStr(fd, "gsku-flightrec-v1\n");

    ok = ok && writeCStr(fd, "program ");
    ok = ok && writeCStr(fd, st.program[0] != '\0' ? st.program : "?");
    ok = ok && writeCStr(fd, "\nreason ");
    ok = ok && writeCStr(fd, reason);

    const std::uint64_t head = st.head.load(std::memory_order_acquire);
    ok = ok && writeCStr(fd, "\nevents_total ");
    ok = ok && writeU64(fd, head);

    const std::uint64_t count = head < kSlots ? head : kSlots;
    ok = ok && writeCStr(fd, "\nring_begin ");
    ok = ok && writeU64(fd, count);
    ok = ok && writeCStr(fd, "\n");

    for (std::uint64_t k = head - count; ok && k < head; ++k) {
        Slot &slot = st.slots[k % kSlots];
        const auto expect = static_cast<std::uint32_t>(2 * k + 2);
        if (slot.seq.load(std::memory_order_acquire) != expect)
            continue; // mid-write or already overwritten
        std::memcpy(g_tag_scratch, slot.tag, kTagBytes);
        std::memcpy(g_text_scratch, slot.text, kTextBytes);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) != expect)
            continue; // torn while copying
        ok = ok && writeU64(fd, k);
        ok = ok && writeCStr(fd, " ");
        ok = ok && writeAll(fd, g_tag_scratch,
                            boundedLen(g_tag_scratch, kTagBytes));
        ok = ok && writeCStr(fd, " ");
        ok = ok && writeAll(fd, g_text_scratch,
                            boundedLen(g_text_scratch, kTextBytes));
        ok = ok && writeCStr(fd, "\n");
    }
    ok = ok && writeCStr(fd, "ring_end\n");

    const std::uint32_t snap_seq =
        st.snap_seq.load(std::memory_order_acquire);
    std::memcpy(g_snap_scratch, st.snapshot, kSnapshotBytes);
    std::atomic_thread_fence(std::memory_order_acquire);
    const bool snap_ok =
        snap_seq % 2 == 0 &&
        st.snap_seq.load(std::memory_order_relaxed) == snap_seq;
    ok = ok && writeCStr(fd, "metrics_begin\n");
    if (snap_ok && g_snap_scratch[0] != '\0') {
        const std::size_t len =
            boundedLen(g_snap_scratch, kSnapshotBytes);
        ok = ok && writeAll(fd, g_snap_scratch, len);
        if (len > 0 && g_snap_scratch[len - 1] != '\n')
            ok = ok && writeCStr(fd, "\n");
    }
    ok = ok && writeCStr(fd, "metrics_end\nend gsku-flightrec-v1\n");

    if (::close(fd) != 0)
        ok = false;
    if (ok && ::rename(st.tmp_path, st.path) != 0)
        ok = false;
    return ok;
}

void
crashHandler(int signum)
{
    if (g_state.crash_dumped.exchange(1) == 0)
        rawDump(signalName(signum));
    // SA_RESETHAND restored the default disposition before we ran, so
    // re-raising produces the process's normal death (exit status,
    // core) as if the recorder were never installed.
    ::raise(signum);
}

} // namespace gsku::obs::flight
