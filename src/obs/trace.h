/**
 * @file
 * Scoped tracing: RAII spans recorded into per-thread buffers and
 * exported as Chrome-trace JSON (loadable in chrome://tracing and
 * https://ui.perfetto.dev — see docs/observability.md).
 *
 * Design rules:
 *
 *  - Near-zero cost when disabled: a TraceSpan constructor is one
 *    relaxed atomic load, and no clock is ever read.
 *  - Enabled either programmatically (startTrace/writeTrace) or by
 *    setting GSKU_TRACE=<path> in the environment, in which case the
 *    trace is written to <path> automatically at process exit.
 *  - Observational only: spans record wall time around engine loops and
 *    never feed back into any model, so enabling tracing cannot perturb
 *    results (asserted by tests/gsf/parallel_parity_test.cc).
 *  - Per-thread buffers keep recording contention-free; buffers are
 *    drained under a registry lock only at export time.
 *
 * This file (with bench/harness.h) is the only sanctioned home of
 * direct std::chrono clock reads — the `timing` rule in tools/lint.py
 * bans them elsewhere so all timing is attributable.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace gsku::obs {

/** One completed span, in microseconds relative to the trace epoch. */
struct TraceEvent
{
    std::string category;
    std::string name;
    double ts_us = 0.0;     ///< Start, relative to the trace epoch.
    double dur_us = 0.0;    ///< Duration (>= 0).
    std::uint64_t tid = 0;  ///< Small per-thread id (0 = first seen).
    int depth = 0;          ///< Span nesting depth on its thread.
    std::string args_json;  ///< Pre-rendered `"k": v` pairs, or empty.
};

/** True while spans are being recorded. The first call initializes
 *  tracing from the GSKU_TRACE environment variable. */
bool traceEnabled();

/** Begin recording spans (idempotent). */
void startTrace();

/** Stop recording and discard any buffered events. */
void stopTrace();

/** Move all buffered events out of the per-thread buffers (recording
 *  continues). Events are sorted by (tid, ts, -dur). */
std::vector<TraceEvent> drainTrace();

/**
 * Drain and write a Chrome-trace JSON file ({"traceEvents": [...]})
 * atomically (temp file + rename). Returns false on I/O failure.
 */
bool writeTrace(const std::string &path);

/**
 * RAII span: records (category, name, start, duration) on the current
 * thread from construction to destruction. When tracing is disabled
 * the constructor is a single relaxed load and arg() is a no-op.
 */
class TraceSpan
{
  public:
    TraceSpan(const char *category, const char *name);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach an argument (shown in the trace viewer's span details). */
    TraceSpan &arg(const char *key, std::int64_t value);
    TraceSpan &arg(const char *key, std::uint64_t value);
    TraceSpan &arg(const char *key, double value);
    TraceSpan &arg(const char *key, const std::string &value);

  private:
    bool active_ = false;
    const char *category_ = nullptr;
    const char *name_ = nullptr;
    std::chrono::steady_clock::time_point start_;
    std::string args_json_;
};

} // namespace gsku::obs
