/**
 * @file
 * Shared state between the flight recorder's normal-context side
 * (flightrec.cc: env init, ring writes, handler installation) and its
 * async-signal-safe side (flightrec_handler.cc: the crash handler and
 * the raw dump writer). Everything is plain-old-data with lock-free
 * atomics — the handler TU may not allocate, lock, or format through
 * the C library, so the state it reads must be fixed-size buffers.
 *
 * Internal header: not part of the obs API surface.
 */
#pragma once

#include <atomic>
#include <cstdint>

namespace gsku::obs::flight {

inline constexpr std::size_t kSlots = 256;       ///< Ring capacity.
inline constexpr std::size_t kTagBytes = 24;     ///< Per-slot tag.
inline constexpr std::size_t kTextBytes = 192;   ///< Per-slot payload.
inline constexpr std::size_t kSnapshotBytes = 16384;
inline constexpr std::size_t kPathBytes = 512;
inline constexpr std::size_t kProgramBytes = 64;

/**
 * One ring slot, guarded by a per-slot seqlock: a writer claiming
 * event n stores seq = 2n+1 (odd: in progress), copies tag/text, then
 * stores seq = 2n+2. A reader accepts the slot only when it observes
 * the same even, generation-matching seq before and after copying.
 */
struct Slot
{
    std::atomic<std::uint32_t> seq{0};
    char tag[kTagBytes];
    char text[kTextBytes];
};

struct State
{
    std::atomic<bool> enabled{false};
    std::atomic<std::uint64_t> head{0};  ///< Next event number.
    Slot slots[kSlots];

    /** Prerendered metrics snapshot (seqlock like the slots, with the
     *  writer choosing odd/even values itself). */
    std::atomic<std::uint32_t> snap_seq{0};
    char snapshot[kSnapshotBytes];

    char path[kPathBytes];          ///< Dump destination (NUL-padded).
    char tmp_path[kPathBytes];      ///< path + ".tmp".
    char program[kProgramBytes];

    /** The crash path dumps at most once even if several signals
     *  cascade; on-demand dumps do not set this. */
    std::atomic<std::uint32_t> crash_dumped{0};
};

/** The process-wide recorder state (zero-initialized static). */
extern State g_state;

/**
 * Async-signal-safe dump (defined in flightrec_handler.cc): writes
 * the artifact to tmp_path with raw syscalls and renames it over
 * path. @p reason is a short NUL-terminated literal. Returns false
 * on any I/O failure.
 */
bool rawDump(const char *reason);

/** The installed signal handler (defined in flightrec_handler.cc);
 *  dumps once, then re-raises via SA_RESETHAND default action. */
void crashHandler(int signum);

} // namespace gsku::obs::flight
