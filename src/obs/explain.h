/**
 * @file
 * The gsku_explain engine: turns a decision-provenance ledger
 * (obs/ledger.h) into human-readable answers. Three queries:
 *
 *  - explainWhy:    why does SKU X have the carbon/cost it has? Renders
 *                   the per-component attribution tree and re-verifies
 *                   that the leaf terms sum to the recorded headline
 *                   within 1e-9 kg (the same invariant the emitters
 *                   enforce at write time).
 *  - compareSkus:   term-by-term delta between two SKUs at each carbon
 *                   intensity both were evaluated at, with the dominant
 *                   term (largest absolute delta) highlighted.
 *  - diffLedgers:   what changed between two runs — which decision
 *                   facts appeared, disappeared, or moved, and which
 *                   numeric inputs moved each changed verdict. Two
 *                   ledgers from identical-seed runs diff to zero
 *                   changes.
 *
 * Lives in the obs layer (below src/common), so failures are reported
 * via the result structs' ok/error fields, never exceptions.
 */
#pragma once

#include <string>

#include "obs/ledger.h"

namespace gsku::obs {

/** Outcome of one explain query. */
struct ExplainResult
{
    bool ok = false;
    std::string error;  ///< Why the query failed ("" when ok).
    std::string text;   ///< The rendered report (valid when ok).
};

/** Outcome of a ledger diff. */
struct DiffResult
{
    bool ok = false;
    std::string error;
    std::string text;
    long changes = 0;   ///< Added + removed + changed facts.
};

/**
 * Attribution tree for @p sku: carbon per-component terms (per carbon
 * intensity the ledger saw), TCO terms, adoption outcomes, and
 * evaluator verdicts that involve the SKU. Fails when the ledger holds
 * no carbon.per_core record for @p sku.
 */
ExplainResult explainWhy(const LedgerFile &ledger, const std::string &sku);

/**
 * Term-by-term carbon and cost comparison of @p sku_a vs @p sku_b at
 * every carbon intensity both appear at. Fails when either SKU is
 * absent from the ledger.
 */
ExplainResult compareSkus(const LedgerFile &ledger,
                          const std::string &sku_a,
                          const std::string &sku_b);

/**
 * Diff two ledgers: facts only in @p a (removed), only in @p b (added),
 * and — when a removed and an added fact share their event and string
 * identity — the numeric fields that moved. changes == 0 means the
 * runs made identical decisions.
 */
DiffResult diffLedgers(const LedgerFile &a, const LedgerFile &b);

} // namespace gsku::obs
