#include "obs/ledger.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>

#include "obs/flightrec.h"

namespace gsku::obs {

namespace {

/** Whether decisions are currently recorded. */
std::atomic<bool> g_enabled{false};

/**
 * Global ledger state. Leaked singleton: the atexit writer and entries
 * committed from worker threads that outlive main() must never observe
 * a destroyed store. The std::set both deduplicates (the ledger is a
 * set of facts) and keeps lines sorted, so renders are byte-identical
 * regardless of emission interleaving.
 */
struct Store
{
    std::mutex mutex;
    std::set<std::string> lines;
    std::string env_path;   ///< GSKU_LEDGER target ("" = none).
};

Store &
store()
{
    static Store *s = new Store;
    return *s;
}

void
writeEnvLedgerAtExit()
{
    const std::string path = store().env_path;
    if (!path.empty()) {
        writeLedger(path);
    }
}

/** One-time init: GSKU_LEDGER=<path> enables the ledger for the
 *  process and registers an atexit writer for <path>. */
void
initFromEnv()
{
    const char *env = std::getenv("GSKU_LEDGER");  // NOLINT(concurrency-mt-unsafe)
    if (env == nullptr || *env == '\0') {
        return;
    }
    {
        Store &s = store();
        std::lock_guard<std::mutex> lock(s.mutex);
        s.env_path = env;
    }
    g_enabled.store(true, std::memory_order_relaxed);
    std::atexit(writeEnvLedgerAtExit);
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out + "\"";
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v)) {
        // JSON has no Infinity/NaN literals; record them as strings so
        // saturated latencies stay explicit instead of corrupting the
        // file.
        if (std::isnan(v)) {
            return "\"nan\"";
        }
        return v > 0.0 ? "\"inf\"" : "\"-inf\"";
    }
    std::ostringstream s;
    s.precision(std::numeric_limits<double>::max_digits10);
    s << v;
    return s.str();
}

} // namespace

bool
ledgerEnabled()
{
    static const bool env_checked = [] {
        initFromEnv();
        return true;
    }();
    (void)env_checked;
    return g_enabled.load(std::memory_order_relaxed);
}

void
startLedger()
{
    ledgerEnabled();    // Ensure env init ran first.
    {
        Store &s = store();
        std::lock_guard<std::mutex> lock(s.mutex);
        s.lines.clear();
    }
    g_enabled.store(true, std::memory_order_relaxed);
}

void
stopLedger()
{
    g_enabled.store(false, std::memory_order_relaxed);
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.lines.clear();
}

std::string
renderLedger()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::ostringstream out;
    out << "{\"schema\": " << jsonQuote(kLedgerSchema)
        << ", \"events\": " << s.lines.size() << "}\n";
    for (const std::string &line : s.lines) {
        out << line << '\n';
    }
    return out.str();
}

bool
writeLedger(const std::string &path)
{
    const std::string body = renderLedger();

    // Atomic publish: a crashed or concurrent reader never sees a
    // truncated ledger.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream file(tmp, std::ios::trunc);
        file << body;
        if (!file) {
            return false;
        }
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

LedgerEntry::LedgerEntry(LedgerEvent event)
{
    if (!ledgerEnabled()) {
        return;
    }
    active_ = true;
    line_ = "{\"event\": ";
    line_ += jsonQuote(eventName(event));
}

namespace {

/** Top of the calling thread's capture-scope stack (nullptr = none). */
thread_local LedgerCapture *t_capture_top = nullptr;

} // namespace

/** Append a committed line to every capture scope on this thread. */
void
detailRecordToCaptures(const std::string &line)
{
    // Both commit paths (entry destructors and cache replays) funnel
    // through here, so this is also where every decision fact enters
    // the crash flight recorder's ring (obs/flightrec.h; no-op unless
    // GSKU_FLIGHT is set).
    flightRecordNote("ledger", line);
    for (LedgerCapture *scope = t_capture_top; scope != nullptr;
         scope = scope->prev_) {
        scope->lines_.push_back(line);
    }
}

LedgerCapture::LedgerCapture() : prev_(t_capture_top)
{
    t_capture_top = this;
}

LedgerCapture::~LedgerCapture()
{
    t_capture_top = prev_;
}

bool
ledgerCaptureActive()
{
    return t_capture_top != nullptr;
}

void
replayLedgerLines(const std::vector<std::string> &lines)
{
    if (!ledgerEnabled() || lines.empty()) {
        return;
    }
    for (const std::string &line : lines) {
        detailRecordToCaptures(line);
    }
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.lines.insert(lines.begin(), lines.end());
}

LedgerEntry::~LedgerEntry()
{
    if (!active_) {
        return;
    }
    line_ += "}";
    detailRecordToCaptures(line_);
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.lines.insert(std::move(line_));
}

LedgerEntry &
LedgerEntry::field(const char *key, const char *value)
{
    if (active_) {
        line_ += ", " + jsonQuote(key) + ": " + jsonQuote(value);
    }
    return *this;
}

LedgerEntry &
LedgerEntry::field(const char *key, const std::string &value)
{
    if (active_) {
        line_ += ", " + jsonQuote(key) + ": " + jsonQuote(value);
    }
    return *this;
}

LedgerEntry &
LedgerEntry::field(const char *key, double value)
{
    if (active_) {
        line_ += ", " + jsonQuote(key) + ": " + jsonNumber(value);
    }
    return *this;
}

LedgerEntry &
LedgerEntry::field(const char *key, std::int64_t value)
{
    if (active_) {
        line_ += ", " + jsonQuote(key) + ": " + std::to_string(value);
    }
    return *this;
}

LedgerEntry &
LedgerEntry::field(const char *key, int value)
{
    return field(key, static_cast<std::int64_t>(value));
}

LedgerEntry &
LedgerEntry::field(const char *key, bool value)
{
    if (active_) {
        line_ += ", " + jsonQuote(key) + ": " +
                 (value ? "true" : "false");
    }
    return *this;
}

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

namespace {

/** Minimal parser for the flat JSON objects the ledger writes: string,
 *  number, and boolean values only. Returns false on malformed input
 *  with @p error set. */
bool
parseFlatObject(const std::string &line, LedgerRecord &rec,
                std::string &error)
{
    std::size_t i = 0;
    const std::size_t n = line.size();
    auto skip_ws = [&] {
        while (i < n && (line[i] == ' ' || line[i] == '\t')) {
            ++i;
        }
    };
    auto parse_string = [&](std::string &out) {
        if (i >= n || line[i] != '"') {
            return false;
        }
        ++i;
        out.clear();
        while (i < n && line[i] != '"') {
            if (line[i] == '\\' && i + 1 < n) {
                ++i;
            }
            out += line[i++];
        }
        if (i >= n) {
            return false;
        }
        ++i;    // Closing quote.
        return true;
    };

    skip_ws();
    if (i >= n || line[i] != '{') {
        error = "line does not start with '{'";
        return false;
    }
    ++i;
    skip_ws();
    if (i < n && line[i] == '}') {
        return true;    // Empty object.
    }
    while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) {
            error = "expected a quoted key";
            return false;
        }
        skip_ws();
        if (i >= n || line[i] != ':') {
            error = "expected ':' after key \"" + key + "\"";
            return false;
        }
        ++i;
        skip_ws();
        if (i < n && line[i] == '"') {
            std::string value;
            if (!parse_string(value)) {
                error = "unterminated string for key \"" + key + "\"";
                return false;
            }
            rec.strings[key] = value;
        } else if (line.compare(i, 4, "true") == 0) {
            rec.bools[key] = true;
            i += 4;
        } else if (line.compare(i, 5, "false") == 0) {
            rec.bools[key] = false;
            i += 5;
        } else {
            const std::size_t start = i;
            while (i < n && line[i] != ',' && line[i] != '}') {
                ++i;
            }
            const std::string token =
                line.substr(start, i - start);
            char *end = nullptr;
            // Tolerant read-back of our own JSONL: malformed values
            // report a parse error, not a thrown UserError.
            const double v = std::strtod( // lint-ok: checked-parse
                token.c_str(), &end);
            if (end == token.c_str() || end == nullptr) {
                error = "unparseable value for key \"" + key + "\"";
                return false;
            }
            rec.numbers[key] = v;
        }
        skip_ws();
        if (i < n && line[i] == ',') {
            ++i;
            continue;
        }
        if (i < n && line[i] == '}') {
            return true;
        }
        error = "expected ',' or '}' after value of \"" + key + "\"";
        return false;
    }
}

} // namespace

const std::string &
LedgerRecord::str(const std::string &key) const
{
    static const std::string empty;
    const auto it = strings.find(key);
    return it == strings.end() ? empty : it->second;
}

double
LedgerRecord::num(const std::string &key, double fallback) const
{
    const auto it = numbers.find(key);
    return it == numbers.end() ? fallback : it->second;
}

bool
LedgerRecord::hasNum(const std::string &key) const
{
    return numbers.find(key) != numbers.end();
}

std::vector<const LedgerRecord *>
LedgerFile::of(LedgerEvent event) const
{
    std::vector<const LedgerRecord *> out;
    const std::string name = eventName(event);
    for (const LedgerRecord &rec : records) {
        if (rec.event == name) {
            out.push_back(&rec);
        }
    }
    return out;
}

LedgerFile
parseLedger(std::istream &in)
{
    LedgerFile file;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) {
            continue;
        }
        LedgerRecord rec;
        std::string error;
        if (!parseFlatObject(line, rec, error)) {
            file.error =
                "line " + std::to_string(line_no) + ": " + error;
            return file;
        }
        if (line_no == 1) {
            file.schema = rec.str("schema");
            if (file.schema != kLedgerSchema) {
                file.error = "header schema is \"" + file.schema +
                             "\", expected \"" + kLedgerSchema + "\"";
                return file;
            }
            continue;
        }
        rec.event = rec.str("event");
        if (rec.event.empty()) {
            file.error = "line " + std::to_string(line_no) +
                         ": event line has no \"event\" field";
            return file;
        }
        rec.strings.erase("event");
        rec.raw = line;
        file.records.push_back(std::move(rec));
    }
    if (file.schema.empty()) {
        file.error = "empty file: missing schema header line";
        return file;
    }
    file.ok = true;
    return file;
}

LedgerFile
readLedgerFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        LedgerFile file;
        file.error = "cannot open " + path;
        return file;
    }
    return parseLedger(in);
}

} // namespace gsku::obs
