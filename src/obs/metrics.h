/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket histograms for the GSF engines (docs/observability.md
 * lists the catalog).
 *
 * Design rules:
 *
 *  - Observational only. Metrics never feed back into any model; the
 *    byte-identical-output contract of common/parallel.h holds with
 *    metrics on (they are always on) at every thread count. The *values*
 *    of scheduling-sensitive metrics (e.g. parallel.tasks_run split per
 *    worker) may differ run to run; model outputs never do.
 *  - Hot-path cost is one relaxed atomic add. Look the metric up once
 *    (`static obs::Counter &c = obs::metrics().counter("x");`) and
 *    increment the cached reference inside loops.
 *  - Registered metric objects live forever (the registry is a leaked
 *    singleton), so cached references never dangle — including in
 *    worker threads that outlive main().
 *  - Per-run isolation comes from snapshot() + reset(): drivers reset
 *    at the start of a run and snapshot at the end, so manifests carry
 *    only that run's counts.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gsku::obs {

/** Monotone event count. Increments are relaxed atomics: cheap on hot
 *  paths, exact under concurrency (summed, never sampled). */
class Counter
{
  public:
    void inc(std::uint64_t by = 1)
    {
        value_.fetch_add(by, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written instantaneous value (pool size, config knobs, ...). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations <= bounds[i];
 * one overflow bucket catches the rest. Bounds are fixed at
 * registration, so concurrent observes are just relaxed increments.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    const std::vector<double> &bounds() const { return bounds_; }
    std::vector<std::uint64_t> bucketCounts() const;
    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const { return sum_.load(std::memory_order_relaxed); }

    void reset();

  private:
    std::vector<double> bounds_;    ///< Ascending upper bounds.
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** Point-in-time copy of every registered metric, with exporters. */
struct MetricsSnapshot
{
    struct HistogramValue
    {
        std::vector<double> bounds;
        std::vector<std::uint64_t> buckets;
        std::uint64_t count = 0;
        double sum = 0.0;

        /**
         * Estimate the @p p-th percentile (p in [0, 100]) by linear
         * interpolation inside the bucket holding the target rank,
         * Prometheus-style: the first bucket interpolates from 0, and
         * a rank landing in the overflow bucket reports the last
         * finite bound (the histogram cannot see beyond it). Returns
         * 0.0 on an empty histogram.
         */
        double percentile(double p) const;
    };

    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramValue> histograms;

    std::uint64_t counter(const std::string &name) const;

    /** Human-readable listing, one metric per line. */
    std::string toText() const;

    /** JSON object {"counters": {...}, "gauges": {...},
     *  "histograms": {...}} — embedded verbatim in run manifests. */
    std::string toJson() const;
};

/**
 * The registry: name -> metric, created on first use. Thread-safe;
 * returned references are valid for the life of the process.
 */
class Registry
{
  public:
    /** Find or create the counter named @p name. */
    Counter &counter(const std::string &name);

    /** Find or create the gauge named @p name. */
    Gauge &gauge(const std::string &name);

    /**
     * Find or create a histogram with ascending upper @p bounds. The
     * bounds of an existing histogram win; callers registering the same
     * name must agree on them.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds);

    /** Copy every metric's current value. */
    MetricsSnapshot snapshot() const;

    /** Zero every registered metric (names stay registered). */
    void reset();

    /** The process-wide registry (leaked singleton; never destroyed). */
    static Registry &global();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** Shorthand for Registry::global(). */
inline Registry &
metrics()
{
    return Registry::global();
}

} // namespace gsku::obs
