#include "obs/explain.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

namespace gsku::obs {

namespace {

/** Leaf sums must reproduce the recorded headline to this tolerance. */
constexpr double kSumToleranceKg = 1e-9;

std::string
fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtG(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** Records of @p event whose string field @p key equals @p value. */
std::vector<const LedgerRecord *>
where(const LedgerFile &ledger, LedgerEvent event, const std::string &key,
      const std::string &value)
{
    std::vector<const LedgerRecord *> out;
    for (const LedgerRecord *r : ledger.of(event)) {
        if (r->str(key) == value) {
            out.push_back(r);
        }
    }
    return out;
}

/** One attribution leaf, unified across carbon (op/emb) and TCO
 *  (capex/opex) terms. */
struct Leaf
{
    std::string component;
    double part_a = 0.0;    ///< operational_kg or capex_usd.
    double part_b = 0.0;    ///< embodied_kg or opex_usd.
    double total() const { return part_a + part_b; }
};

std::vector<Leaf>
sortedLeaves(std::vector<Leaf> leaves)
{
    std::sort(leaves.begin(), leaves.end(),
              [](const Leaf &x, const Leaf &y) {
                  if (x.total() != y.total()) {
                      return x.total() > y.total();
                  }
                  return x.component < y.component;
              });
    return leaves;
}

/** Render one attribution table under a recorded headline and append
 *  the leaf-sum check line. Returns the check's residual in units. */
double
renderLeafTable(std::ostringstream &out, const std::vector<Leaf> &leaves,
                double headline_a, double headline_b,
                const char *label_a, const char *label_b,
                const char *unit, int decimals)
{
    out << "    " << std::left << std::setw(26) << "component"
        << std::right << std::setw(14) << (std::string("total ") + unit)
        << std::setw(14) << (std::string(label_a) + " " + unit)
        << std::setw(14) << (std::string(label_b) + " " + unit)
        << std::setw(9) << "share" << "\n";
    const double headline = headline_a + headline_b;
    double sum_a = 0.0;
    double sum_b = 0.0;
    for (const Leaf &leaf : leaves) {
        sum_a += leaf.part_a;
        sum_b += leaf.part_b;
        const double share =
            headline != 0.0 ? 100.0 * leaf.total() / headline : 0.0;
        out << "    " << std::left << std::setw(26) << leaf.component
            << std::right << std::setw(14) << fmt(leaf.total(), decimals)
            << std::setw(14) << fmt(leaf.part_a, decimals)
            << std::setw(14) << fmt(leaf.part_b, decimals)
            << std::setw(8) << fmt(share, 1) << "%\n";
    }
    const double residual = std::max(std::abs(sum_a - headline_a),
                                     std::abs(sum_b - headline_b));
    out << "    leaf-sum check: |sum - headline| = " << fmtG(residual)
        << " " << unit << " (tolerance " << fmtG(kSumToleranceKg) << ") "
        << (residual <= kSumToleranceKg ? "OK" : "FAIL") << "\n";
    return residual;
}

std::vector<Leaf>
carbonLeaves(const LedgerFile &ledger, const std::string &sku, double ci)
{
    std::vector<Leaf> leaves;
    for (const LedgerRecord *c :
         where(ledger, LedgerEvent::CarbonComponent, "sku", sku)) {
        if (c->num("ci_kg_per_kwh") != ci) {
            continue;
        }
        leaves.push_back(Leaf{c->str("component"),
                              c->num("operational_kg"),
                              c->num("embodied_kg")});
    }
    return sortedLeaves(std::move(leaves));
}

std::vector<Leaf>
tcoLeaves(const LedgerFile &ledger, const std::string &sku)
{
    std::vector<Leaf> leaves;
    for (const LedgerRecord *c :
         where(ledger, LedgerEvent::TcoComponent, "sku", sku)) {
        leaves.push_back(Leaf{c->str("component"), c->num("capex_usd"),
                              c->num("opex_usd")});
    }
    return sortedLeaves(std::move(leaves));
}

/** Carbon per-core records for @p sku, ordered by carbon intensity. */
std::vector<const LedgerRecord *>
carbonHeadlines(const LedgerFile &ledger, const std::string &sku)
{
    auto records = where(ledger, LedgerEvent::CarbonPerCore, "sku", sku);
    std::sort(records.begin(), records.end(),
              [](const LedgerRecord *a, const LedgerRecord *b) {
                  const double ci_a = a->num("ci_kg_per_kwh");
                  const double ci_b = b->num("ci_kg_per_kwh");
                  if (ci_a != ci_b) {
                      return ci_a < ci_b;
                  }
                  // Tie key: the raw line (unique in a ledger, which
                  // is a deduplicated set).
                  return a->raw < b->raw;
              });
    return records;
}

/** Compare two leaf sets term by term; returns the rendered table and
 *  reports the dominant term through the out-parameters. */
void
renderLeafDelta(std::ostringstream &out, const std::vector<Leaf> &a,
                const std::vector<Leaf> &b, const char *unit,
                int decimals)
{
    std::map<std::string, std::pair<double, double>> by_component;
    for (const Leaf &leaf : a) {
        by_component[leaf.component].first = leaf.total();
    }
    for (const Leaf &leaf : b) {
        by_component[leaf.component].second = leaf.total();
    }
    out << "    " << std::left << std::setw(26) << "component"
        << std::right << std::setw(14) << "A" << std::setw(14) << "B"
        << std::setw(14) << "delta" << "\n";
    double total_a = 0.0;
    double total_b = 0.0;
    std::string dominant;
    double dominant_delta = 0.0;
    for (const auto &[component, totals] : by_component) {
        const double delta = totals.second - totals.first;
        total_a += totals.first;
        total_b += totals.second;
        if (std::abs(delta) > std::abs(dominant_delta)) {
            dominant = component;
            dominant_delta = delta;
        }
        out << "    " << std::left << std::setw(26) << component
            << std::right << std::setw(14) << fmt(totals.first, decimals)
            << std::setw(14) << fmt(totals.second, decimals)
            << std::setw(14) << fmt(delta, decimals) << "\n";
    }
    const double net = total_b - total_a;
    out << "    " << std::left << std::setw(26) << "total" << std::right
        << std::setw(14) << fmt(total_a, decimals) << std::setw(14)
        << fmt(total_b, decimals) << std::setw(14) << fmt(net, decimals)
        << "\n";
    if (!dominant.empty()) {
        out << "    dominant term: " << dominant << " ("
            << (dominant_delta >= 0.0 ? "+" : "")
            << fmt(dominant_delta, decimals) << " " << unit;
        if (net != 0.0) {
            out << ", " << fmt(100.0 * dominant_delta / net, 1)
                << "% of net delta";
        }
        out << ")\n";
    }
}

/** Identity of a fact for diff pairing: event + every string field. */
std::string
identityOf(const LedgerRecord &record)
{
    std::string id = record.event;
    for (const auto &[key, value] : record.strings) {
        id += "|";
        id += key;
        id += "=";
        id += value;
    }
    return id;
}

/** Human-readable identity (for diff report lines). */
std::string
identityLabel(const LedgerRecord &record)
{
    std::string label = record.event;
    for (const auto &[key, value] : record.strings) {
        label += " ";
        label += key;
        label += "=";
        label += value;
    }
    return label;
}

/** Fields of @p a that differ in @p b, as "key: a -> b" fragments. */
std::vector<std::string>
changedFields(const LedgerRecord &a, const LedgerRecord &b)
{
    std::vector<std::string> changes;
    for (const auto &[key, value] : a.numbers) {
        const auto it = b.numbers.find(key);
        if (it == b.numbers.end()) {
            changes.push_back(key + ": " + fmtG(value) + " -> (absent)");
        } else if (it->second != value) {
            changes.push_back(key + ": " + fmtG(value) + " -> " +
                              fmtG(it->second));
        }
    }
    for (const auto &[key, value] : b.numbers) {
        if (a.numbers.find(key) == a.numbers.end()) {
            changes.push_back(key + ": (absent) -> " + fmtG(value));
        }
    }
    for (const auto &[key, value] : a.bools) {
        const auto it = b.bools.find(key);
        if (it == b.bools.end()) {
            changes.push_back(key + ": " +
                              std::string(value ? "true" : "false") +
                              " -> (absent)");
        } else if (it->second != value) {
            changes.push_back(key + ": " +
                              std::string(value ? "true" : "false") +
                              " -> " + (it->second ? "true" : "false"));
        }
    }
    for (const auto &[key, value] : b.bools) {
        if (a.bools.find(key) == a.bools.end()) {
            changes.push_back(key + ": (absent) -> " +
                              std::string(value ? "true" : "false"));
        }
    }
    return changes;
}

} // namespace

ExplainResult
explainWhy(const LedgerFile &ledger, const std::string &sku)
{
    ExplainResult res;
    if (!ledger.ok) {
        res.error = "ledger not parsed: " + ledger.error;
        return res;
    }
    const auto headlines = carbonHeadlines(ledger, sku);
    if (headlines.empty()) {
        res.error = "no carbon.per_core record for sku '" + sku +
                    "' (was the ledger recorded with this SKU evaluated?)";
        return res;
    }

    std::ostringstream out;
    out << "== why " << sku << " ==\n\n";
    double max_residual = 0.0;

    out << "carbon attribution (per core, DC-amortized)\n";
    for (const LedgerRecord *h : headlines) {
        const double ci = h->num("ci_kg_per_kwh");
        out << "  at CI " << fmt(ci, 3) << " kg/kWh: total "
            << fmt(h->num("total_kg"), 3) << " kg = operational "
            << fmt(h->num("operational_kg"), 3) << " + embodied "
            << fmt(h->num("embodied_kg"), 3) << "\n";
        max_residual = std::max(
            max_residual,
            renderLeafTable(out, carbonLeaves(ledger, sku, ci),
                            h->num("operational_kg"),
                            h->num("embodied_kg"), "oper", "emb", "kg",
                            4));
    }

    const auto tco = where(ledger, LedgerEvent::TcoPerCore, "sku", sku);
    if (!tco.empty()) {
        const LedgerRecord *h = tco.front();
        out << "\ncost attribution (per core, lifetime)\n";
        out << "  total $" << fmt(h->num("total_usd"), 2) << " = capex $"
            << fmt(h->num("capex_usd"), 2) << " + opex $"
            << fmt(h->num("opex_usd"), 2) << "\n";
        max_residual = std::max(
            max_residual,
            renderLeafTable(out, tcoLeaves(ledger, sku),
                            h->num("capex_usd"), h->num("opex_usd"),
                            "capex", "opex", "usd", 4));
    }

    const auto adoptions =
        where(ledger, LedgerEvent::AdoptionDecision, "sku", sku);
    if (!adoptions.empty()) {
        long adopted = 0;
        std::map<std::string, long> reasons;
        for (const LedgerRecord *a : adoptions) {
            adopted += a->bools.count("adopt") && a->bools.at("adopt");
            ++reasons[a->str("reason")];
        }
        out << "\nadoption decisions targeting " << sku << "\n";
        out << "  adopted " << adopted << "/" << adoptions.size()
            << " (app, origin-gen) pairs; reasons:";
        for (const auto &[reason, count] : reasons) {
            out << " " << reason << "=" << count;
        }
        out << "\n";
    }

    const auto verdicts =
        where(ledger, LedgerEvent::EvaluatorVerdict, "sku", sku);
    if (!verdicts.empty()) {
        out << "\nevaluator verdicts for " << sku << "\n";
        out << "  " << std::left << std::setw(22) << "trace"
            << std::right << std::setw(10) << "CI" << std::setw(12)
            << "savings" << std::setw(10) << "verdict" << "\n";
        for (const LedgerRecord *v : verdicts) {
            out << "  " << std::left << std::setw(22) << v->str("trace")
                << std::right << std::setw(10)
                << fmt(v->num("ci_kg_per_kwh"), 3) << std::setw(11)
                << fmt(100.0 * v->num("savings"), 1) << "%"
                << std::setw(10) << v->str("verdict") << "\n";
        }
    }

    const auto gates =
        where(ledger, LedgerEvent::MaintenanceGate, "sku", sku);
    if (!gates.empty()) {
        const LedgerRecord *g = gates.front();
        out << "\nmaintenance gate\n";
        out << "  out-of-service fraction " << fmt(g->num("oos_fraction"), 4)
            << " (every deployment over-provisions by that share)\n";
    }

    res.text = out.str();
    if (max_residual > kSumToleranceKg) {
        res.error = "leaf terms do not reproduce the recorded headline "
                    "(residual " +
                    fmtG(max_residual) + " > " + fmtG(kSumToleranceKg) +
                    ")";
        return res;
    }
    res.ok = true;
    return res;
}

ExplainResult
compareSkus(const LedgerFile &ledger, const std::string &sku_a,
            const std::string &sku_b)
{
    ExplainResult res;
    if (!ledger.ok) {
        res.error = "ledger not parsed: " + ledger.error;
        return res;
    }
    const auto heads_a = carbonHeadlines(ledger, sku_a);
    const auto heads_b = carbonHeadlines(ledger, sku_b);
    if (heads_a.empty() || heads_b.empty()) {
        res.error = "no carbon.per_core record for sku '" +
                    (heads_a.empty() ? sku_a : sku_b) + "'";
        return res;
    }

    std::ostringstream out;
    out << "== compare A=" << sku_a << " vs B=" << sku_b << " ==\n";

    bool any_ci = false;
    for (const LedgerRecord *ha : heads_a) {
        const double ci = ha->num("ci_kg_per_kwh");
        const LedgerRecord *hb = nullptr;
        for (const LedgerRecord *candidate : heads_b) {
            if (candidate->num("ci_kg_per_kwh") == ci) {
                hb = candidate;
                break;
            }
        }
        if (hb == nullptr) {
            continue;
        }
        any_ci = true;
        out << "\ncarbon per core at CI " << fmt(ci, 3)
            << " kg/kWh (delta = B - A)\n";
        renderLeafDelta(out, carbonLeaves(ledger, sku_a, ci),
                        carbonLeaves(ledger, sku_b, ci), "kg", 4);
    }
    if (!any_ci) {
        res.error = "the two SKUs share no carbon intensity in this "
                    "ledger; nothing to compare";
        return res;
    }

    const auto tco_a = where(ledger, LedgerEvent::TcoPerCore, "sku", sku_a);
    const auto tco_b = where(ledger, LedgerEvent::TcoPerCore, "sku", sku_b);
    if (!tco_a.empty() && !tco_b.empty()) {
        out << "\ncost per core (delta = B - A)\n";
        renderLeafDelta(out, tcoLeaves(ledger, sku_a),
                        tcoLeaves(ledger, sku_b), "usd", 4);
    }

    res.ok = true;
    res.text = out.str();
    return res;
}

DiffResult
diffLedgers(const LedgerFile &a, const LedgerFile &b)
{
    DiffResult res;
    if (!a.ok || !b.ok) {
        res.error = "ledger not parsed: " + (a.ok ? b.error : a.error);
        return res;
    }

    // Work on the facts unique to each side; shared facts are unchanged
    // by construction (a fact is its rendered line).
    std::map<std::string, const LedgerRecord *> lines_a;
    std::map<std::string, const LedgerRecord *> lines_b;
    for (const LedgerRecord &r : a.records) {
        lines_a.emplace(r.raw, &r);
    }
    for (const LedgerRecord &r : b.records) {
        lines_b.emplace(r.raw, &r);
    }
    std::map<std::string, std::vector<const LedgerRecord *>> only_a;
    std::map<std::string, std::vector<const LedgerRecord *>> only_b;
    for (const auto &[raw, record] : lines_a) {
        if (lines_b.find(raw) == lines_b.end()) {
            only_a[identityOf(*record)].push_back(record);
        }
    }
    for (const auto &[raw, record] : lines_b) {
        if (lines_a.find(raw) == lines_a.end()) {
            only_b[identityOf(*record)].push_back(record);
        }
    }

    std::ostringstream out;
    out << "== ledger diff ==\n";
    out << "A: " << a.records.size() << " facts, B: " << b.records.size()
        << " facts\n";

    std::vector<std::string> changed;
    std::vector<std::string> removed;
    std::vector<std::string> added;
    for (const auto &[identity, records_a] : only_a) {
        const auto it = only_b.find(identity);
        if (it != only_b.end() &&
            it->second.size() == records_a.size()) {
            // Same identity, same multiplicity: pair positionally (both
            // sides are sorted by their rendered line) and report the
            // fields that moved each fact.
            for (std::size_t i = 0; i < records_a.size(); ++i) {
                std::string line = identityLabel(*records_a[i]) + ": ";
                const auto fields =
                    changedFields(*records_a[i], *it->second[i]);
                for (std::size_t f = 0; f < fields.size(); ++f) {
                    line += (f > 0 ? "; " : "") + fields[f];
                }
                changed.push_back(line);
            }
        } else {
            for (const LedgerRecord *r : records_a) {
                removed.push_back(identityLabel(*r));
            }
        }
    }
    for (const auto &[identity, records_b] : only_b) {
        const auto it = only_a.find(identity);
        if (it != only_a.end() && it->second.size() == records_b.size()) {
            continue;   // Reported as changed above.
        }
        for (const LedgerRecord *r : records_b) {
            added.push_back(identityLabel(*r));
        }
    }

    res.changes = static_cast<long>(changed.size() + removed.size() +
                                    added.size());
    if (res.changes == 0) {
        out << "no differences -- the runs made identical decisions.\n";
    } else {
        if (!changed.empty()) {
            out << "\nchanged (" << changed.size() << "):\n";
            for (const std::string &line : changed) {
                out << "  " << line << "\n";
            }
        }
        if (!removed.empty()) {
            out << "\nonly in A (" << removed.size() << "):\n";
            for (const std::string &line : removed) {
                out << "  " << line << "\n";
            }
        }
        if (!added.empty()) {
            out << "\nonly in B (" << added.size() << "):\n";
            for (const std::string &line : added) {
                out << "  " << line << "\n";
            }
        }
    }

    res.ok = true;
    res.text = out.str();
    return res;
}

} // namespace gsku::obs
