/**
 * @file
 * Decision-provenance ledger: every model-level decision (carbon
 * attribution, TCO terms, adoption gates, SLO margins, sizing probes,
 * allocator outcomes, design and evaluator verdicts) recorded as one
 * structured JSONL fact, so any output number is attributable to the
 * inputs that produced it (docs/observability.md "Decision ledger").
 *
 * Design rules:
 *
 *  - Near-zero cost when disabled: constructing a LedgerEntry is one
 *    relaxed atomic load; emitters compute attribution terms only when
 *    ledgerEnabled() says someone is listening.
 *  - Enabled either programmatically (startLedger/writeLedger) or by
 *    setting GSKU_LEDGER=<path>, in which case the ledger is written
 *    to <path> automatically at process exit — the same publish path
 *    (atomic temp file + rename, no timestamps) as traces/manifests.
 *  - The ledger is a *set of decision facts*, not an execution log:
 *    events are rendered sorted and deduplicated, so repeated identical
 *    decisions (cache replays, repeated probes) collapse to one fact
 *    and the file is byte-identical at every thread count (asserted by
 *    tests/gsf/parallel_parity_test.cc).
 *  - Event names live ONLY in the registry below; emitters spell
 *    eventName(LedgerEvent::X). The `ledger-events` rule in
 *    tools/lint.py bans the string literals elsewhere under src/.
 */
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <vector>

namespace gsku::obs {

/** Every decision point that writes to the ledger. */
enum class LedgerEvent
{
    CarbonPerCore = 0,  ///< DC-amortized per-core emissions of one SKU.
    CarbonComponent,    ///< One per-component leaf of that attribution.
    TcoPerCore,         ///< Per-core lifetime cost of one SKU.
    TcoComponent,       ///< One per-component leaf of that cost.
    AdoptionDecision,   ///< (app, origin gen) adopt/reject + reason.
    PerfSloMargin,      ///< One candidate VM size vs the app's SLO.
    SizingProbe,        ///< One allocator replay tried by the sizer.
    SizingResult,       ///< Final server counts for one (trace, table).
    AllocatorOutcome,   ///< One replay's outcome + first-reject reason.
    DesignVerdict,      ///< Design-space candidate + binding constraint.
    EvaluatorVerdict,   ///< Cluster evaluation: savings verdict.
    MaintenanceGate,    ///< Out-of-service overhead applied to one SKU.
    CacheEntry,         ///< Eval-cache record: the key digest of one
                        ///< cached computation (same fact on store and
                        ///< hit, so cold/warm ledgers dedup identical).
    SearchMove,         ///< One SA move: candidate, verdict, reason
                        ///< (gsf/search.h).
};

/**
 * The event-name registry — the single home of these string literals
 * (tools/lint.py `ledger-events`). Order matches LedgerEvent.
 */
inline constexpr const char *kLedgerEventNames[] = {
    "carbon.per_core",
    "carbon.component",
    "tco.per_core",
    "tco.component",
    "adoption.decision",
    "perf.slo_margin",
    "sizing.probe",
    "sizing.result",
    "allocator.outcome",
    "design.verdict",
    "evaluator.verdict",
    "maintenance.gate",
    "cache.entry",
    "search.move",
};

inline constexpr std::size_t kLedgerEventCount =
    sizeof(kLedgerEventNames) / sizeof(kLedgerEventNames[0]);

/** Wire name of @p event (the "event" field of its JSONL line). */
constexpr const char *
eventName(LedgerEvent event)
{
    return kLedgerEventNames[static_cast<std::size_t>(event)];
}

/** The schema tag on a ledger's header line. */
inline constexpr const char *kLedgerSchema = "gsku-ledger-v1";

/** True while decisions are being recorded. The first call initializes
 *  the ledger from the GSKU_LEDGER environment variable. */
bool ledgerEnabled();

/** Begin recording decisions; clears previously recorded events. */
void startLedger();

/** Stop recording and discard all recorded events. */
void stopLedger();

/**
 * Render the ledger: a `{"schema": ..., "events": N}` header line
 * followed by every recorded event line, sorted lexicographically and
 * deduplicated. Does not clear, so tests can render repeatedly and the
 * GSKU_LEDGER atexit writer still sees the events.
 */
std::string renderLedger();

/** Write renderLedger() atomically (temp file + rename); false on I/O
 *  failure. */
bool writeLedger(const std::string &path);

/**
 * Builder for one event line. Append fields, then let the destructor
 * commit the line to the ledger. When the ledger is disabled every
 * method is a no-op, so emission sites need no guards of their own
 * (guard only the *computation* of expensive fields).
 *
 * Field values keep insertion order; emit identity fields (sku, app,
 * trace) first so sorted lines group naturally. Non-finite doubles are
 * rendered as the JSON strings "inf"/"-inf"/"nan".
 */
class LedgerEntry
{
  public:
    explicit LedgerEntry(LedgerEvent event);
    ~LedgerEntry();

    LedgerEntry(const LedgerEntry &) = delete;
    LedgerEntry &operator=(const LedgerEntry &) = delete;

    LedgerEntry &field(const char *key, const char *value);
    LedgerEntry &field(const char *key, const std::string &value);
    LedgerEntry &field(const char *key, double value);
    LedgerEntry &field(const char *key, std::int64_t value);
    LedgerEntry &field(const char *key, int value);
    LedgerEntry &field(const char *key, bool value);

  private:
    bool active_ = false;
    std::string line_;
};

// ---------------------------------------------------------------------
// Capture — used by the eval cache (gsf/eval_cache.h) to persist the
// decision facts a computation emitted alongside its result, so a
// later cache hit can replay them and a warm ledger stays
// byte-identical to a cold one.
// ---------------------------------------------------------------------

/**
 * RAII capture scope: while alive, every ledger line committed by
 * *this thread* is also appended to the scope's line list (commitment
 * to the global ledger is unchanged). Scopes nest; an inner scope's
 * lines still reach the outer one. Captures nothing while the ledger
 * is disabled (no lines are built at all), which is why the eval
 * cache folds ledgerEnabled() into its keys.
 *
 * Thread model: the scope only sees lines from the thread that
 * created it. Computations that must be captured whole therefore run
 * single-threaded under a scope — the worker pool's serial-inline
 * nesting rule makes that automatic for pool jobs, and
 * ClusterSizer::size drops to serial replays when a capture is
 * active (see sizing.cc).
 */
class LedgerCapture
{
  public:
    LedgerCapture();
    ~LedgerCapture();

    LedgerCapture(const LedgerCapture &) = delete;
    LedgerCapture &operator=(const LedgerCapture &) = delete;

    /** Lines committed on this thread since construction. */
    const std::vector<std::string> &lines() const { return lines_; }

  private:
    friend void detailRecordToCaptures(const std::string &line);

    std::vector<std::string> lines_;
    LedgerCapture *prev_ = nullptr;
};

/** True when the calling thread has a live LedgerCapture scope. */
bool ledgerCaptureActive();

/**
 * Re-commit previously captured lines (a cache hit replaying the
 * decisions of the run that stored the entry). No-op when the ledger
 * is disabled; replayed lines also flow into any active capture
 * scopes, so a hit inside a captured computation stays whole.
 */
void replayLedgerLines(const std::vector<std::string> &lines);

// ---------------------------------------------------------------------
// Reader — used by the gsku_explain engine and the schema tests. Lives
// below src/common, so failures are reported via return values, never
// exceptions.
// ---------------------------------------------------------------------

/** One parsed event line: flat key -> value maps per JSON type. */
struct LedgerRecord
{
    std::string event;                          ///< Wire event name.
    std::map<std::string, std::string> strings;
    std::map<std::string, double> numbers;
    std::map<std::string, bool> bools;
    std::string raw;                            ///< The original line.

    /** String field, or "" when absent. */
    const std::string &str(const std::string &key) const;

    /** Numeric field, or @p fallback when absent. */
    double num(const std::string &key, double fallback = 0.0) const;

    /** True when @p key exists as a number. */
    bool hasNum(const std::string &key) const;
};

/** A fully parsed ledger file. */
struct LedgerFile
{
    bool ok = false;
    std::string error;      ///< First parse error ("" when ok).
    std::string schema;     ///< From the header line.
    std::vector<LedgerRecord> records;

    /** All records with the given event type, in file order. */
    std::vector<const LedgerRecord *> of(LedgerEvent event) const;
};

/** Parse a ledger from a stream (header line + JSONL events). */
LedgerFile parseLedger(std::istream &in);

/** Parse the ledger file at @p path; !ok with error on I/O failure. */
LedgerFile readLedgerFile(const std::string &path);

} // namespace gsku::obs
