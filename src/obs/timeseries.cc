#include "obs/timeseries.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <vector>

#include "obs/flightrec.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"

namespace gsku::obs {

namespace {

constexpr char kMagic[8] = {'G', 'S', 'K', 'U', 'T', 'S', 'B', '1'};
constexpr char kEndMagic[8] = {'G', 'S', 'K', 'U', 'T', 'S', 'B', 'E'};

/** Patch a little-endian u32 into an already-built buffer. */
void
storeU32At(std::string &bytes, std::size_t off, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes[off + static_cast<std::size_t>(i)] =
            static_cast<char>((v >> (8 * i)) & 0xff);
}

/** Parse a decimal u64 env knob; @p fallback on anything malformed. */
std::uint64_t
parseU64Env(const char *s, std::uint64_t fallback)
{
    if (s == nullptr || *s == '\0')
        return fallback;
    std::uint64_t v = 0;
    for (const char *p = s; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return fallback;
        v = v * 10 + static_cast<std::uint64_t>(*p - '0');
    }
    return v;
}

/**
 * Writer state behind one mutex. Leaked singleton (never destroyed)
 * so worker threads and atexit hooks can always reach it. The mutex
 * is uncontended in practice: samples are only taken by a thread
 * outside any parallel region, and while such a thread runs engine
 * code every pool worker is idle (parallelFor blocks its caller).
 */
struct Store
{
    std::mutex mu;
    std::ofstream out;
    bool open = false;
    std::string path;
    std::uint64_t every = kTsdbDefaultSampleEvery;
    bool volatile_lane = false;

    std::uint64_t header_fnv = 0;
    std::uint64_t frames_fnv = tsdb::kFnvOffset;
    std::uint64_t frame_count = 0;
    std::uint64_t sample_count = 0;
    std::uint64_t last_sample_clock = 0;

    std::map<std::string, std::uint32_t> ids;  ///< name -> series id.
    std::vector<bool> is_volatile;             ///< by series id.
    std::vector<bool> have_last;               ///< by series id.
    std::vector<std::uint64_t> last_bits;      ///< by series id.

    std::chrono::steady_clock::time_point start;  ///< Wall lane only.
};

Store &
store()
{
    static Store *s = new Store;
    return *s;
}

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_clock{0};

void
writeFrame(Store &s, std::uint32_t kind, const std::string &payload,
           bool checksummed)
{
    std::string frame;
    tsdb::appendU32(frame, kind);
    tsdb::appendU32(frame, static_cast<std::uint32_t>(payload.size()));
    frame += payload;
    tsdb::padTo8(frame);
    s.out.write(frame.data(),
                static_cast<std::streamsize>(frame.size()));
    ++s.frame_count;
    // The checksum covers the whole frame including padding, but only
    // the deterministic lane: volatile defs/points and wall frames
    // are excluded so the digest is thread-count- and machine-stable.
    if (checksummed)
        s.frames_fnv = tsdb::fnvUpdate(s.frames_fnv, frame);
}

/** Emit one value: define the series on first sight, then write the
 *  point only when the value changed (delta by omission). */
void
emitPoint(Store &s, const std::string &name, bool is_double,
          std::uint64_t bits)
{
    const bool vol = tsdbSeriesIsVolatile(name);
    if (vol && !s.volatile_lane)
        return;
    std::uint32_t id = 0;
    auto it = s.ids.find(name);
    if (it == s.ids.end()) {
        id = static_cast<std::uint32_t>(s.ids.size());
        s.ids.emplace(name, id);
        s.is_volatile.push_back(vol);
        s.have_last.push_back(false);
        s.last_bits.push_back(0);
        std::string def;
        tsdb::appendU32(def, id);
        def.push_back(is_double ? 1 : 0);
        def.push_back(vol ? 1 : 0);
        tsdb::appendU16(def, static_cast<std::uint16_t>(name.size()));
        def += name;
        writeFrame(s, 1, def, !vol);
    } else {
        id = it->second;
    }
    if (s.have_last[id] && s.last_bits[id] == bits)
        return;
    s.have_last[id] = true;
    s.last_bits[id] = bits;
    std::string point;
    tsdb::appendU32(point, id);
    tsdb::appendU32(point, 0);
    tsdb::appendU64(point, bits);
    writeFrame(s, 3, point, !s.is_volatile[id]);
}

void
emitDouble(Store &s, const std::string &name, double v)
{
    emitPoint(s, name, true, tsdb::bitsOfDouble(v));
}

void
sampleLocked(Store &s, std::uint64_t clock)
{
    s.last_sample_clock = clock;
    const MetricsSnapshot snap = metrics().snapshot();

    std::string begin;
    tsdb::appendU64(begin, clock);
    tsdb::appendU64(begin, s.sample_count);
    writeFrame(s, 2, begin, true);

    for (const auto &[name, v] : snap.counters)
        emitPoint(s, name, false, v);
    for (const auto &[name, v] : snap.gauges)
        emitDouble(s, name, v);
    for (const auto &[name, h] : snap.histograms) {
        emitPoint(s, name + ".count", false, h.count);
        emitDouble(s, name + ".sum", h.sum);
        emitDouble(s, name + ".p50", h.percentile(50.0));
        emitDouble(s, name + ".p95", h.percentile(95.0));
        emitDouble(s, name + ".p99", h.percentile(99.0));
    }

    if (s.volatile_lane) {
        for (const WorkerBeat &beat : heartbeatSnapshot()) {
            const std::string prefix =
                "worker." + std::to_string(beat.worker);
            emitPoint(s, prefix + ".busy", false, beat.busy ? 1 : 0);
            emitPoint(s, prefix + ".tasks_completed", false,
                      beat.tasks_completed);
            emitPoint(s, prefix + ".task_index", false,
                      beat.task_index);
            emitDouble(s, prefix + ".busy_seconds",
                       beat.busy_seconds);
        }
        emitPoint(s, "parallel.stall_events", false,
                  stallEventsTotal());
        std::string wall;
        tsdb::appendU64(
            wall, tsdb::bitsOfDouble(std::chrono::duration<double>(
                                         std::chrono::steady_clock::now() -
                                         s.start)
                                         .count()));
        writeFrame(s, 4, wall, false);
    }

    ++s.sample_count;
    s.out.flush();

    if (flightRecorderEnabled()) {
        flightRecordNote("sample",
                         "clock=" + std::to_string(clock) +
                             " seq=" +
                             std::to_string(s.sample_count - 1));
        flightRecordMetricsText(snap.toText());
    }
}

bool
finishLocked(Store &s)
{
    if (!s.open)
        return true;
    // Final sample so the last values always land in the file, no
    // matter where the period boundary fell.
    const std::uint64_t clock =
        g_clock.load(std::memory_order_relaxed);
    if (clock != s.last_sample_clock)
        sampleLocked(s, clock);

    std::string footer;
    tsdb::appendU64(footer, s.frame_count);
    tsdb::appendU64(footer, s.sample_count);
    tsdb::appendU64(footer, s.frames_fnv);
    tsdb::appendU64(footer, s.header_fnv);
    footer.append(kEndMagic, sizeof kEndMagic);
    s.out.write(footer.data(),
                static_cast<std::streamsize>(footer.size()));
    s.out.flush();
    const bool ok = static_cast<bool>(s.out);
    s.out.close();
    s.open = false;
    g_enabled.store(false, std::memory_order_release);
    return ok;
}

void
finishAtExit()
{
    finishTimeseries();
}

/** One-time GSKU_TSDB / GSKU_FLIGHT env activation (ledger pattern). */
bool
ensureEnvInit()
{
    static const bool done = [] {
        const char *path = std::getenv("GSKU_TSDB"); // NOLINT(concurrency-mt-unsafe)
        if (path != nullptr && *path != '\0')
            startTimeseries(path);
        // Piggyback: processes that tick telemetry should also have
        // their crash recorder armed without any other obs call.
        flightRecorderEnabled();
        return true;
    }();
    return done;
}

} // namespace

bool
timeseriesEnabled()
{
    ensureEnvInit();
    return g_enabled.load(std::memory_order_relaxed);
}

void
startTimeseries(const std::string &path, std::uint64_t sample_every)
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mu);
    finishLocked(s);

    s.path = path;
    std::uint64_t every = sample_every;
    if (every == 0) {
        every = parseU64Env(
            std::getenv("GSKU_TSDB_EVERY"), // NOLINT(concurrency-mt-unsafe)
            kTsdbDefaultSampleEvery);
    }
    s.every = every == 0 ? 1 : every;
    const char *vol =
        std::getenv("GSKU_TSDB_VOLATILE"); // NOLINT(concurrency-mt-unsafe)
    s.volatile_lane = vol != nullptr && vol[0] == '1';

    s.out.open(path, std::ios::binary | std::ios::trunc);
    if (!s.out.is_open())
        return; // telemetry is best-effort; never fail the run

    std::string header;
    header.append(kMagic, sizeof kMagic);
    tsdb::appendU32(header, kTsdbVersion);
    tsdb::appendU32(header, 0); // header_size, patched below
    tsdb::appendU64(header, s.every);
    tsdb::appendU32(header, s.volatile_lane ? 1 : 0);
    const std::string name = kTsdbSchema;
    tsdb::appendU32(header, static_cast<std::uint32_t>(name.size()));
    header += name;
    tsdb::padTo8(header);
    storeU32At(header, 12, static_cast<std::uint32_t>(header.size()));

    s.header_fnv = tsdb::fnvUpdate(tsdb::kFnvOffset, header);
    s.frames_fnv = tsdb::kFnvOffset;
    s.frame_count = 0;
    s.sample_count = 0;
    s.last_sample_clock = 0;
    s.ids.clear();
    s.is_volatile.clear();
    s.have_last.clear();
    s.last_bits.clear();
    s.start = std::chrono::steady_clock::now();
    s.out.write(header.data(),
                static_cast<std::streamsize>(header.size()));

    s.open = true;
    g_enabled.store(true, std::memory_order_release);

    static const bool atexit_registered = [] {
        std::atexit(finishAtExit);
        return true;
    }();
    (void)atexit_registered;

    // Baseline sample: the registry state at activation, so every file
    // starts with a full series catalog and a point of reference.
    sampleLocked(s, g_clock.load(std::memory_order_relaxed));
}

bool
finishTimeseries()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mu);
    return finishLocked(s);
}

void
telemetryTick(std::uint64_t units)
{
    ensureEnvInit();
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    const std::uint64_t clock =
        g_clock.fetch_add(units, std::memory_order_relaxed) + units;
    // Inside a parallel region only the clock advances: registry
    // counters are not thread-count deterministic mid-batch, and the
    // serial thread will catch up at the next tick past the period.
    if (inParallelRegion())
        return;
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.open)
        return;
    if (clock - s.last_sample_clock < s.every)
        return;
    sampleLocked(s, clock);
}

std::uint64_t
telemetryClock()
{
    return g_clock.load(std::memory_order_relaxed);
}

bool
tsdbSeriesIsVolatile(const std::string &name)
{
    if (name == "parallel.pool_threads" ||
        name == "parallel.stall_events") {
        return true;
    }
    return name.rfind("worker.", 0) == 0 ||
           name.rfind("wall.", 0) == 0;
}

double
TsdbPoint::asDouble() const
{
    return tsdb::doubleOfBits(bits);
}

const TsdbSeries *
TimeseriesData::findSeries(const std::string &name) const
{
    for (const TsdbSeries &s : series)
        if (s.name == name)
            return &s;
    return nullptr;
}

std::map<std::string, double>
TimeseriesData::finalValues() const
{
    std::map<std::uint32_t, const TsdbSeries *> byId;
    for (const TsdbSeries &s : series)
        byId[s.id] = &s;
    std::map<std::string, double> out;
    for (const TsdbSample &sample : samples) {
        for (const TsdbPoint &p : sample.points) {
            auto it = byId.find(p.series);
            if (it == byId.end())
                continue;
            out[it->second->name] =
                it->second->is_double
                    ? p.asDouble()
                    : static_cast<double>(p.bits);
        }
    }
    return out;
}

} // namespace gsku::obs
