#include "obs/profile.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "obs/timeseries.h"

namespace gsku::obs {

namespace profiledetail {

/** Immutable-once-published cache slots per node: enough for the few
 *  distinct children a domain alternates between (e.g. evalcache
 *  hit/miss/probe); colder lookups fall back to the mutex map. */
inline constexpr int kChildCacheSlots = 4;

/**
 * One node of the global domain-path trie. Unit counters are relaxed
 * atomics: additions are commutative, so the aggregate is independent
 * of which pool thread performed the work. Nodes are never freed
 * (the trie is a leaked singleton, like the tracer's registry), so
 * raw child pointers stay valid for thread-local stacks that outlive
 * a profiling session.
 */
struct ProfileNode
{
    std::string name;                ///< Path component ("" = root).
    ProfileNode *parent = nullptr;

    std::atomic<std::uint64_t> self_units{0};
    std::atomic<std::uint64_t> scopes{0};
    std::atomic<std::uint64_t> wall_ns{0};   ///< Volatile lane.

    /** Lock-free child lookup: slots are written under the profiler
     *  mutex and published by the release store on cached_count;
     *  readers acquire-load the count and pointer-compare keys. */
    const char *cached_key[kChildCacheSlots] = {};
    ProfileNode *cached_node[kChildCacheSlots] = {};
    std::atomic<int> cached_count{0};

    std::map<std::string, ProfileNode *> children;   ///< Mutex-guarded.
};

} // namespace profiledetail

namespace {

using profiledetail::ProfileNode;
using profiledetail::kChildCacheSlots;

/** Whether work units are currently recorded. */
std::atomic<bool> g_enabled{false};

/** Global profiler state. Leaked singleton: thread-local domain
 *  pointers on worker threads and the atexit writer must never
 *  observe a destroyed trie. */
struct Profiler
{
    std::mutex mutex;
    ProfileNode root;
    std::string program;     ///< "program" field of the next export.
    std::string env_path;    ///< GSKU_PROFILE target ("" = none).
    bool wall_lane = false;  ///< GSKU_PROFILE_WALL volatile lane.
};

Profiler &
profiler()
{
    static Profiler *p = new Profiler;
    return *p;
}

/** Innermost open domain of the calling thread (nullptr = root). */
thread_local ProfileNode *tls_current = nullptr;

std::uint64_t
nowNs()
{
    // Volatile-lane clock. src/obs/profile.cc is a sanctioned home of
    // the `timing` rule; the reading never enters the checksum.
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Find or create the @p name child of @p parent. Hot path is a
 *  pointer-compare scan of the published cache slots; misses take the
 *  profiler mutex. */
ProfileNode *
childOf(ProfileNode *parent, const char *name)
{
    const int published =
        parent->cached_count.load(std::memory_order_acquire);
    for (int i = 0; i < published; ++i) {
        if (parent->cached_key[i] == name) {
            return parent->cached_node[i];
        }
    }

    Profiler &p = profiler();
    std::lock_guard<std::mutex> lock(p.mutex);
    // Recheck under the lock: another thread may have published the
    // same literal while we waited.
    const int now_published =
        parent->cached_count.load(std::memory_order_relaxed);
    for (int i = 0; i < now_published; ++i) {
        if (parent->cached_key[i] == name) {
            return parent->cached_node[i];
        }
    }
    ProfileNode *node;
    const auto it = parent->children.find(name);
    if (it != parent->children.end()) {
        node = it->second;
    } else {
        node = new ProfileNode;
        node->name = name;
        node->parent = parent;
        parent->children.emplace(node->name, node);
    }
    if (now_published < kChildCacheSlots) {
        parent->cached_key[now_published] = name;
        parent->cached_node[now_published] = node;
        parent->cached_count.store(now_published + 1,
                                   std::memory_order_release);
    }
    return node;
}

ProfileNode *
currentOrRoot()
{
    return tls_current != nullptr ? tls_current : &profiler().root;
}

void
writeEnvProfileAtExit()
{
    const std::string path = profiler().env_path;
    if (!path.empty()) {
        writeProfile(path);
    }
}

/** One-time init: GSKU_PROFILE=<path> enables profiling for the
 *  process and registers an atexit writer for <path>;
 *  GSKU_PROFILE_WALL=1 turns on the volatile wall lane. */
void
initFromEnv()
{
    Profiler &p = profiler();
    {
        std::lock_guard<std::mutex> lock(p.mutex);
        const char *wall = std::getenv("GSKU_PROFILE_WALL");  // NOLINT(concurrency-mt-unsafe)
        p.wall_lane = wall != nullptr && *wall != '\0' &&
                      std::string(wall) != "0";
    }
    const char *env = std::getenv("GSKU_PROFILE");  // NOLINT(concurrency-mt-unsafe)
    if (env == nullptr || *env == '\0') {
        return;
    }
    {
        std::lock_guard<std::mutex> lock(p.mutex);
        p.env_path = env;
    }
    g_enabled.store(true, std::memory_order_relaxed);
    std::atexit(writeEnvProfileAtExit);
}

/** Zero every counter in the trie (caller holds the mutex). */
void
resetNode(ProfileNode *node)
{
    node->self_units.store(0, std::memory_order_relaxed);
    node->scopes.store(0, std::memory_order_relaxed);
    node->wall_ns.store(0, std::memory_order_relaxed);
    for (const auto &[name, child] : node->children) {
        resetNode(child);
    }
}

/** Depth-first collection in sorted-child order; @p path is the
 *  ';'-joined prefix ("" at the root). Returns the subtree total. */
std::uint64_t
collectNode(const ProfileNode *node, const std::string &path,
            std::vector<ProfileEntry> &out)
{
    ProfileEntry entry;
    entry.path = path;
    entry.self_units = node->self_units.load(std::memory_order_relaxed);
    entry.scopes = node->scopes.load(std::memory_order_relaxed);
    entry.wall_ns = node->wall_ns.load(std::memory_order_relaxed);

    std::uint64_t total = entry.self_units;
    const std::size_t slot = out.size();
    out.push_back(entry);   // Placeholder; total patched below.
    for (const auto &[name, child] : node->children) {
        const std::string child_path =
            path.empty() ? name : path + ";" + name;
        total += collectNode(child, child_path, out);
    }
    out[slot].total_units = total;
    // Trie nodes outlive startProfile() resets; a subtree with no
    // units, no scope entries, and no surviving children since the
    // last reset carries no information, and exporting it would make
    // the artifact depend on what ran before the reset. Prune it
    // (never the root — the caller handles that).
    if (!path.empty() && total == 0 && entry.scopes == 0 &&
        out.size() == slot + 1) {
        out.pop_back();
    }
    return total;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
}

/** Write @p content to @p path atomically (temp file + rename). */
bool
publishFile(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream file(tmp, std::ios::trunc);
        file << content;
        if (!file) {
            return false;
        }
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

} // namespace

bool
profileEnabled()
{
    static const bool env_checked = [] {
        initFromEnv();
        return true;
    }();
    (void)env_checked;
    return g_enabled.load(std::memory_order_relaxed);
}

void
startProfile()
{
    profileEnabled();   // Ensure env init ran first.
    Profiler &p = profiler();
    {
        std::lock_guard<std::mutex> lock(p.mutex);
        resetNode(&p.root);
    }
    g_enabled.store(true, std::memory_order_relaxed);
}

void
stopProfile()
{
    g_enabled.store(false, std::memory_order_relaxed);
}

void
setProfileProgram(const std::string &program)
{
    Profiler &p = profiler();
    std::lock_guard<std::mutex> lock(p.mutex);
    p.program = program;
}

ProfileSnapshot
snapshotProfile()
{
    Profiler &p = profiler();
    ProfileSnapshot snap;
    std::vector<ProfileEntry> raw;
    {
        std::lock_guard<std::mutex> lock(p.mutex);
        snap.wall_lane = p.wall_lane;
        collectNode(&p.root, "", raw);
    }
    // The root's own counters are work recorded outside any scope;
    // export them as a pseudo-leaf so no unit is ever dropped.
    for (ProfileEntry &entry : raw) {
        if (entry.path.empty()) {
            if (entry.self_units == 0 && entry.scopes == 0) {
                continue;
            }
            entry.path = "(unscoped)";
            entry.total_units = entry.self_units;
        }
        snap.total_units += entry.self_units;
        snap.entries.push_back(std::move(entry));
    }
    std::sort(snap.entries.begin(), snap.entries.end(),
              [](const ProfileEntry &a, const ProfileEntry &b) {
                  return a.path < b.path;
              });
    return snap;
}

std::uint64_t
profileChecksum(const ProfileSnapshot &snapshot)
{
    std::string bytes;
    for (const ProfileEntry &entry : snapshot.entries) {
        bytes += entry.path;
        bytes += '\n';
        tsdb::appendU64(bytes, entry.self_units);
        tsdb::appendU64(bytes, entry.scopes);
    }
    return tsdb::fnvUpdate(tsdb::kFnvOffset, bytes);
}

bool
writeProfile(const std::string &path)
{
    const ProfileSnapshot snap = snapshotProfile();
    const std::uint64_t checksum = profileChecksum(snap);
    std::string program;
    {
        Profiler &p = profiler();
        std::lock_guard<std::mutex> lock(p.mutex);
        program = p.program;
    }

    std::ostringstream json;
    json << "{\n"
         << "  \"schema\": \"gsku-profile-v1\",\n"
         << "  \"program\": \"" << program << "\",\n"
         << "  \"wall_lane\": " << (snap.wall_lane ? "true" : "false")
         << ",\n"
         << "  \"total_units\": " << snap.total_units << ",\n"
         << "  \"domains\": [";
    for (std::size_t i = 0; i < snap.entries.size(); ++i) {
        const ProfileEntry &e = snap.entries[i];
        json << (i ? ",\n    " : "\n    ") << "{\"path\": \"" << e.path
             << "\", \"self_units\": " << e.self_units
             << ", \"total_units\": " << e.total_units
             << ", \"scopes\": " << e.scopes;
        if (snap.wall_lane) {
            json << ", \"wall_ns\": " << e.wall_ns;
        }
        json << "}";
    }
    json << "\n  ],\n"
         << "  \"checksum_fnv1a64\": \"" << hex16(checksum) << "\"\n"
         << "}\n";

    std::ostringstream collapsed;
    for (const ProfileEntry &e : snap.entries) {
        if (e.self_units > 0) {
            collapsed << e.path << " " << e.self_units << "\n";
        }
    }

    return publishFile(path, json.str()) &&
           publishFile(path + ".collapsed", collapsed.str());
}

ProfileScope::ProfileScope(const char *domain)
{
    if (!profileEnabled()) {
        return;
    }
    node_ = childOf(currentOrRoot(), domain);
    node_->scopes.fetch_add(1, std::memory_order_relaxed);
    saved_ = tls_current;
    tls_current = node_;
    if (profiler().wall_lane) {
        start_ns_ = nowNs();
    }
}

ProfileScope::~ProfileScope()
{
    if (node_ == nullptr) {
        return;
    }
    if (start_ns_ != 0) {
        node_->wall_ns.fetch_add(nowNs() - start_ns_,
                                 std::memory_order_relaxed);
    }
    tls_current = saved_;
}

void
profileWork(std::uint64_t n)
{
    if (!profileEnabled()) {
        return;
    }
    currentOrRoot()->self_units.fetch_add(n, std::memory_order_relaxed);
}

void
profileWork(const char *leaf, std::uint64_t n)
{
    if (!profileEnabled()) {
        return;
    }
    childOf(currentOrRoot(), leaf)
        ->self_units.fetch_add(n, std::memory_order_relaxed);
}

profiledetail::ProfileNode *
profileCurrentDomain()
{
    if (!profileEnabled()) {
        return nullptr;
    }
    return currentOrRoot();
}

ProfileTaskScope::ProfileTaskScope(profiledetail::ProfileNode *domain)
{
    if (domain == nullptr) {
        return;
    }
    active_ = true;
    saved_ = tls_current;
    tls_current = domain;
}

ProfileTaskScope::~ProfileTaskScope()
{
    if (active_) {
        tls_current = saved_;
    }
}

} // namespace gsku::obs
