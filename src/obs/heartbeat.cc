#include "obs/heartbeat.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/flightrec.h"
#include "obs/timeseries.h"

namespace gsku::obs {

namespace {

/** Seconds since the first heartbeat call, from the steady clock
 *  (src/obs is the sanctioned home for wall-clock reads — the values
 *  only ever feed the volatile telemetry lane, never model output). */
double
nowSeconds()
{
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

struct BeatSlot
{
    std::atomic<std::uint32_t> busy{0};
    std::atomic<std::uint64_t> task_index{0};
    std::atomic<std::uint64_t> started{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> start_bits{0};  ///< f64 nowSeconds().
    std::atomic<std::uint64_t> stall_gen{0};   ///< `started` value
                                               ///< already reported.
};

BeatSlot g_slots[kMaxHeartbeatWorkers];
std::atomic<std::uint64_t> g_stall_events{0};

/** Nesting depth of pool-task bodies on the calling thread. */
thread_local int tls_region_depth = 0;

int
clampWorker(int worker)
{
    if (worker < 0)
        return 0;
    if (worker >= kMaxHeartbeatWorkers)
        return kMaxHeartbeatWorkers - 1;
    return worker;
}

/** Parse "digits[.digits]" seconds; @p fallback on anything else. */
double
parseSecondsEnv(const char *s, double fallback)
{
    if (s == nullptr || *s == '\0')
        return fallback;
    double v = 0.0;
    bool any = false;
    const char *p = s;
    for (; *p >= '0' && *p <= '9'; ++p) {
        v = v * 10.0 + (*p - '0');
        any = true;
    }
    if (*p == '.') {
        ++p;
        double scale = 0.1;
        for (; *p >= '0' && *p <= '9'; ++p) {
            v += (*p - '0') * scale;
            scale *= 0.1;
            any = true;
        }
    }
    return (any && *p == '\0') ? v : fallback;
}

double
defaultStallThreshold()
{
    static const double threshold = parseSecondsEnv(
        std::getenv("GSKU_STALL_SECONDS"), 30.0); // NOLINT(concurrency-mt-unsafe)
    return threshold;
}

} // namespace

void
beatTaskStart(int worker, std::uint64_t task_index)
{
    ++tls_region_depth;
    BeatSlot &slot = g_slots[clampWorker(worker)];
    slot.task_index.store(task_index, std::memory_order_relaxed);
    slot.start_bits.store(tsdb::bitsOfDouble(nowSeconds()),
                          std::memory_order_relaxed);
    slot.started.fetch_add(1, std::memory_order_relaxed);
    slot.busy.store(1, std::memory_order_release);
}

void
beatTaskEnd(int worker)
{
    BeatSlot &slot = g_slots[clampWorker(worker)];
    slot.busy.store(0, std::memory_order_release);
    slot.completed.fetch_add(1, std::memory_order_relaxed);
    --tls_region_depth;
}

bool
inParallelRegion()
{
    return tls_region_depth > 0;
}

std::vector<WorkerBeat>
heartbeatSnapshot()
{
    std::vector<WorkerBeat> out;
    const double now = nowSeconds();
    for (int w = 0; w < kMaxHeartbeatWorkers; ++w) {
        const BeatSlot &slot = g_slots[w];
        const std::uint64_t started =
            slot.started.load(std::memory_order_relaxed);
        if (started == 0)
            continue;
        WorkerBeat beat;
        beat.worker = w;
        beat.busy = slot.busy.load(std::memory_order_acquire) != 0;
        beat.task_index =
            slot.task_index.load(std::memory_order_relaxed);
        beat.tasks_started = started;
        beat.tasks_completed =
            slot.completed.load(std::memory_order_relaxed);
        if (beat.busy) {
            const double start = tsdb::doubleOfBits(
                slot.start_bits.load(std::memory_order_relaxed));
            beat.busy_seconds = now > start ? now - start : 0.0;
        }
        out.push_back(beat);
    }
    return out;
}

std::size_t
stallCheck(double threshold_seconds)
{
    const double threshold = threshold_seconds > 0.0
                                 ? threshold_seconds
                                 : defaultStallThreshold();
    const double now = nowSeconds();
    std::size_t stalled = 0;
    for (int w = 0; w < kMaxHeartbeatWorkers; ++w) {
        BeatSlot &slot = g_slots[w];
        if (slot.busy.load(std::memory_order_acquire) == 0)
            continue;
        const double start = tsdb::doubleOfBits(
            slot.start_bits.load(std::memory_order_relaxed));
        const double stuck = now - start;
        if (stuck < threshold)
            continue;
        ++stalled;
        // Count each (worker, task) at most once: `started` is the
        // task generation, and exchange makes one poller win.
        const std::uint64_t gen =
            slot.started.load(std::memory_order_relaxed);
        if (slot.stall_gen.exchange(gen,
                                    std::memory_order_acq_rel) != gen) {
            g_stall_events.fetch_add(1, std::memory_order_relaxed);
            flightRecordNote(
                "stall",
                "worker " + std::to_string(w) + " stuck on task " +
                    std::to_string(slot.task_index.load(
                        std::memory_order_relaxed)) +
                    " for " + std::to_string(stuck) + "s");
        }
    }
    return stalled;
}

std::uint64_t
stallEventsTotal()
{
    return g_stall_events.load(std::memory_order_relaxed);
}

void
resetHeartbeats()
{
    for (BeatSlot &slot : g_slots) {
        slot.busy.store(0, std::memory_order_relaxed);
        slot.task_index.store(0, std::memory_order_relaxed);
        slot.started.store(0, std::memory_order_relaxed);
        slot.completed.store(0, std::memory_order_relaxed);
        slot.start_bits.store(0, std::memory_order_relaxed);
        slot.stall_gen.store(0, std::memory_order_relaxed);
    }
    g_stall_events.store(0, std::memory_order_relaxed);
}

} // namespace gsku::obs
