#include "obs/manifest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gsku::obs {

namespace {

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out + "\"";
}

std::string
jsonNumber(double v)
{
    std::ostringstream s;
    s.precision(std::numeric_limits<double>::max_digits10);
    s << v;
    return s.str();
}

/** Compile-time build description: compiler, standard, build type,
 *  contract level, sanitizers. */
std::string
buildInfoJson()
{
    std::ostringstream out;
    out << "{\"compiler\": "
#if defined(__VERSION__)
        << jsonQuote(__VERSION__)
#else
        << "\"unknown\""
#endif
        << ", \"cxx_standard\": " << static_cast<long>(__cplusplus)
        << ", \"build_type\": "
#if defined(NDEBUG)
        << "\"optimized\""
#else
        << "\"debug\""
#endif
        << ", \"contract_level\": "
#if defined(GSKU_CONTRACT_LEVEL)
        << GSKU_CONTRACT_LEVEL
#elif defined(NDEBUG)
        << 1    // contracts.h AUTO default for optimized builds.
#else
        << 2    // contracts.h AUTO default for debug builds.
#endif
        << ", \"sanitizers\": [";
    bool first = true;
    (void)first;
#if defined(__SANITIZE_ADDRESS__)
    out << "\"address\"";
    first = false;
#elif defined(__has_feature)
#  if __has_feature(address_sanitizer)
    out << "\"address\"";
    first = false;
#  endif
#endif
#if defined(__SANITIZE_THREAD__)
    out << (first ? "" : ", ") << "\"thread\"";
#elif defined(__has_feature)
#  if __has_feature(thread_sanitizer)
    out << (first ? "" : ", ") << "\"thread\"";
#  endif
#endif
    out << "]}";
    return out.str();
}

/** Runtime threading description: env override, hardware, tracing. */
std::string
threadsJson()
{
    const char *env = std::getenv("GSKU_THREADS");  // NOLINT(concurrency-mt-unsafe)
    const char *trace_env = std::getenv("GSKU_TRACE");  // NOLINT(concurrency-mt-unsafe)
    const unsigned hw = std::thread::hardware_concurrency();
    std::ostringstream out;
    out << "{\"gsku_threads_env\": "
        << (env != nullptr ? jsonQuote(env) : "null")
        << ", \"hardware_concurrency\": " << hw
        << ", \"gsku_trace_env\": "
        << (trace_env != nullptr ? jsonQuote(trace_env) : "null")
        << ", \"trace_enabled\": "
        << (traceEnabled() ? "true" : "false") << "}";
    return out.str();
}

} // namespace

RunManifest::RunManifest(std::string program)
    : program_(std::move(program))
{
}

RunManifest &
RunManifest::config(const std::string &key, const std::string &value)
{
    config_.emplace_back(key, jsonQuote(value));
    return *this;
}

RunManifest &
RunManifest::config(const std::string &key, std::int64_t value)
{
    config_.emplace_back(key, std::to_string(value));
    return *this;
}

RunManifest &
RunManifest::config(const std::string &key, double value)
{
    config_.emplace_back(key, jsonNumber(value));
    return *this;
}

RunManifest &
RunManifest::config(const std::string &key, bool value)
{
    config_.emplace_back(key, value ? "true" : "false");
    return *this;
}

RunManifest &
RunManifest::seed(const std::string &name, std::uint64_t value)
{
    seeds_.emplace_back(name, value);
    return *this;
}

std::string
RunManifest::toJson() const
{
    std::ostringstream out;
    out << "{\"schema\": \"gsku-manifest-v1\", \"program\": "
        << jsonQuote(program_) << ",\n \"config\": {";
    for (std::size_t i = 0; i < config_.size(); ++i) {
        out << (i ? ", " : "") << jsonQuote(config_[i].first) << ": "
            << config_[i].second;
    }
    out << "},\n \"seeds\": {";
    for (std::size_t i = 0; i < seeds_.size(); ++i) {
        out << (i ? ", " : "") << jsonQuote(seeds_[i].first) << ": "
            << seeds_[i].second;
    }
    out << "},\n \"threads\": " << threadsJson() << ",\n \"build\": "
        << buildInfoJson() << ",\n \"metrics\": "
        << metrics().snapshot().toJson() << "}\n";
    return out.str();
}

bool
RunManifest::write(const std::string &path) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream file(tmp, std::ios::trunc);
        file << toJson();
        if (!file) {
            return false;
        }
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

} // namespace gsku::obs
