#include "obs/metrics.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace gsku::obs {

namespace {

/** JSON string escaping for metric names (quotes and backslashes). */
std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out + "\"";
}

std::string
jsonNumber(double v)
{
    std::ostringstream s;
    s.precision(std::numeric_limits<double>::max_digits10);
    s << v;
    return s.str();
}

} // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1])
{
    std::sort(bounds_.begin(), bounds_.end());
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
}

void
Histogram::observe(double v)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const std::size_t bucket =
        static_cast<std::size_t>(it - bounds_.begin());
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> out(bounds_.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
}

void
Histogram::reset()
{
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

double
MetricsSnapshot::HistogramValue::percentile(double p) const
{
    if (count == 0 || bounds.empty()) {
        return 0.0;
    }
    p = std::min(100.0, std::max(0.0, p));
    const double rank = p / 100.0 * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const std::uint64_t in_bucket = buckets[i];
        if (in_bucket == 0) {
            continue;
        }
        const double reached = static_cast<double>(cumulative + in_bucket);
        if (reached < rank) {
            cumulative += in_bucket;
            continue;
        }
        if (i >= bounds.size()) {
            // Overflow bucket: observations above the largest finite
            // bound, with no upper edge to interpolate toward. The
            // histogram's best (and only honest) answer is its largest
            // finite bound — returned explicitly here, so an
            // overflow-only histogram reports it for every percentile.
            return bounds.back();
        }
        if (reached == rank) {
            // Rank lands exactly on this bucket's upper boundary; the
            // value is the boundary itself, no interpolation.
            return bounds[i];
        }
        // Bucket 0 keeps the traditional 0 lower edge for the usual
        // non-negative histograms, but when the first bound is itself
        // negative the edge must clamp to it — interpolating down from
        // 0 walked past the bucket's own upper bound before (p50 of
        // four samples below -10 with bounds {-10, 10} came out -5).
        const double lower =
            i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
        const double upper = bounds[i];
        const double into =
            (rank - static_cast<double>(cumulative)) /
            static_cast<double>(in_bucket);
        return lower + (upper - lower) * std::min(1.0, std::max(0.0, into));
    }
    // Unreachable unless rank rounds above the total count; report the
    // largest finite bound, the histogram's best upper estimate.
    return bounds.back();
}

std::uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

std::string
MetricsSnapshot::toText() const
{
    std::ostringstream out;
    for (const auto &[name, value] : counters) {
        out << name << " " << value << '\n';
    }
    for (const auto &[name, value] : gauges) {
        out << name << " " << jsonNumber(value) << '\n';
    }
    for (const auto &[name, h] : histograms) {
        out << name << " count=" << h.count << " sum="
            << jsonNumber(h.sum) << " p50=" << jsonNumber(h.percentile(50))
            << " p95=" << jsonNumber(h.percentile(95))
            << " p99=" << jsonNumber(h.percentile(99)) << " buckets=[";
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            out << (i ? " " : "") << h.buckets[i];
        }
        out << "]\n";
    }
    return out.str();
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream out;
    out << "{\"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out << (first ? "" : ", ") << jsonQuote(name) << ": " << value;
        first = false;
    }
    out << "}, \"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges) {
        out << (first ? "" : ", ") << jsonQuote(name) << ": "
            << jsonNumber(value);
        first = false;
    }
    out << "}, \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        out << (first ? "" : ", ") << jsonQuote(name)
            << ": {\"bounds\": [";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            out << (i ? ", " : "") << jsonNumber(h.bounds[i]);
        }
        out << "], \"buckets\": [";
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            out << (i ? ", " : "") << h.buckets[i];
        }
        out << "], \"count\": " << h.count << ", \"sum\": "
            << jsonNumber(h.sum) << ", \"p50\": "
            << jsonNumber(h.percentile(50)) << ", \"p95\": "
            << jsonNumber(h.percentile(95)) << ", \"p99\": "
            << jsonNumber(h.percentile(99)) << "}";
        first = false;
    }
    out << "}}";
    return out.str();
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name, std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<Histogram>(std::move(bounds));
    }
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &[name, c] : counters_) {
        snap.counters[name] = c->value();
    }
    for (const auto &[name, g] : gauges_) {
        snap.gauges[name] = g->value();
    }
    for (const auto &[name, h] : histograms_) {
        MetricsSnapshot::HistogramValue v;
        v.bounds = h->bounds();
        v.buckets = h->bucketCounts();
        v.count = h->count();
        v.sum = h->sum();
        snap.histograms[name] = std::move(v);
    }
    return snap;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &entry : counters_) {
        entry.second->reset();
    }
    for (const auto &entry : gauges_) {
        entry.second->reset();
    }
    for (const auto &entry : histograms_) {
        entry.second->reset();
    }
}

Registry &
Registry::global()
{
    // Leaked on purpose: cached metric references in worker threads and
    // atexit trace/manifest writers must never observe a destroyed
    // registry.
    static Registry *registry = new Registry;
    return *registry;
}

} // namespace gsku::obs
