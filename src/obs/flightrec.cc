#include "obs/flightrec.h"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "obs/flightrec_state.h"

namespace gsku::obs {

namespace flight {

// Zero-initialized static storage: safe to read from a signal handler
// at any point after process start, even before any obs call ran.
State g_state;

} // namespace flight

namespace {

/** Bounded copy into a fixed slot buffer, always NUL-terminated. */
void
copyBounded(char *dst, std::size_t cap, const char *src, std::size_t len)
{
    if (len >= cap)
        len = cap - 1;
    std::memcpy(dst, src, len);
    dst[len] = '\0';
}

[[noreturn]] void
terminateHook()
{
    if (flight::g_state.crash_dumped.exchange(1) == 0)
        flight::rawDump("terminate");
    std::abort();
}

/** Install the crash handlers and terminate hook exactly once. */
void
installHandlers()
{
    static const bool installed = [] {
        struct sigaction sa = {};
        sa.sa_handler = flight::crashHandler;
        // One shot: the disposition resets before the handler runs, so
        // re-raising after the dump produces the normal death (core,
        // exit status) the process would have had without us.
        sa.sa_flags = SA_RESETHAND;
        sigemptyset(&sa.sa_mask);
        for (int sig : {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL})
            sigaction(sig, &sa, nullptr);
        std::set_terminate(terminateHook);
        return true;
    }();
    (void)installed;
}

} // namespace

bool
flightRecorderEnabled()
{
    static const bool env_init = [] {
        const char *path = std::getenv("GSKU_FLIGHT"); // NOLINT(concurrency-mt-unsafe)
        if (path != nullptr && *path != '\0')
            startFlightRecorder(path);
        return true;
    }();
    (void)env_init;
    return flight::g_state.enabled.load(std::memory_order_relaxed);
}

void
startFlightRecorder(const std::string &path)
{
    flight::State &st = flight::g_state;
    copyBounded(st.path, flight::kPathBytes, path.data(), path.size());
    const std::string tmp = path + ".tmp";
    copyBounded(st.tmp_path, flight::kPathBytes, tmp.data(), tmp.size());
    installHandlers();
    st.enabled.store(true, std::memory_order_release);
}

void
flightRecordNote(const char *tag, const std::string &text)
{
    flight::State &st = flight::g_state;
    if (!st.enabled.load(std::memory_order_relaxed))
        return;
    const std::uint64_t n =
        st.head.fetch_add(1, std::memory_order_acq_rel);
    flight::Slot &slot = st.slots[n % flight::kSlots];
    const auto open = static_cast<std::uint32_t>(2 * n + 1);
    // Best-effort seqlock: a dumper that observes an odd or mismatched
    // seq drops the slot. A wrap race (two writers kSlots apart) can
    // tear a slot; the seq generation check catches it.
    slot.seq.store(open, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    copyBounded(slot.tag, flight::kTagBytes, tag, std::strlen(tag));
    copyBounded(slot.text, flight::kTextBytes, text.data(), text.size());
    slot.seq.store(open + 1, std::memory_order_release);
}

void
flightRecordProgram(const std::string &name)
{
    copyBounded(flight::g_state.program, flight::kProgramBytes,
                name.data(), name.size());
}

void
flightRecordMetricsText(const std::string &text)
{
    flight::State &st = flight::g_state;
    if (!st.enabled.load(std::memory_order_relaxed))
        return;
    // Single writer in practice (the sampler holds its own mutex), so
    // a plain odd/even bump is enough.
    const std::uint32_t v = st.snap_seq.load(std::memory_order_relaxed);
    st.snap_seq.store(v + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    copyBounded(st.snapshot, flight::kSnapshotBytes, text.data(),
                text.size());
    st.snap_seq.store(v + 2, std::memory_order_release);
}

bool
dumpFlightRecorder(const char *reason)
{
    if (!flightRecorderEnabled())
        return false;
    return flight::rawDump(reason);
}

std::uint64_t
flightRecordCount()
{
    return flight::g_state.head.load(std::memory_order_relaxed);
}

} // namespace gsku::obs
