/**
 * @file
 * Worker heartbeats and stall detection for the deterministic pool.
 *
 * common/parallel.cc brackets every task body — on the pooled path and
 * the serial fast path alike — with beatTaskStart()/beatTaskEnd().
 * That gives obs two things:
 *
 *  - a per-worker heartbeat table (busy flag, last task index, task
 *    counts, busy wall seconds) that feeds the volatile lane of the
 *    tsdb sampler (obs/timeseries.h) and gsku_top's worker view; and
 *  - the parallel-region depth for the calling thread, which the tsdb
 *    sampler uses to take samples only at serial points where registry
 *    counters are thread-count deterministic. The depth lives here,
 *    not in common/parallel.h, because obs is the bottom module of the
 *    layering DAG: common may call into obs, never the reverse.
 *
 * The caller side of a pool batch polls stallCheck() while waiting for
 * stragglers: a worker busy on one task for longer than the threshold
 * (GSKU_STALL_SECONDS, default 30; fractional values accepted) is
 * counted once per task as a stall event and pushed into the flight
 * recorder ring (obs/flightrec.h) so a hung run leaves a trail.
 *
 * Everything here is atomics on fixed-size slots — no allocation, no
 * locks — and none of it touches the metrics registry: heartbeat state
 * is wall-clock- and thread-count-dependent by nature, and registry
 * writes would leak that nondeterminism into run manifests.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace gsku::obs {

/** Heartbeat slots cover workers 0 (the submitting caller) through
 *  kMaxHeartbeatWorkers-1; higher ids share the last slot. */
inline constexpr int kMaxHeartbeatWorkers = 256;

/** Mark @p worker busy on task @p task_index and enter a parallel
 *  region (depth +1 for the calling thread). */
void beatTaskStart(int worker, std::uint64_t task_index);

/** Mark @p worker idle, count the task done, leave the region. */
void beatTaskEnd(int worker);

/** True while the calling thread is inside a pool task body (at any
 *  nesting depth). The tsdb sampler never samples when true. */
bool inParallelRegion();

/** Point-in-time view of one worker's heartbeat slot. */
struct WorkerBeat
{
    int worker = 0;
    bool busy = false;
    std::uint64_t task_index = 0;      ///< Last task started.
    std::uint64_t tasks_started = 0;
    std::uint64_t tasks_completed = 0;
    double busy_seconds = 0.0;         ///< Time on the current task
                                       ///< (0 when idle).
};

/** Every slot that has ever beaten, in worker order. */
std::vector<WorkerBeat> heartbeatSnapshot();

/**
 * Count workers that have been busy on a single task for longer than
 * @p threshold_seconds (<= 0 reads GSKU_STALL_SECONDS / default 30).
 * Each (worker, task) pair is counted as a stall *event* at most once;
 * new events increment stallEventsTotal() and leave a note in the
 * flight recorder. Returns the number of currently stalled workers.
 */
std::size_t stallCheck(double threshold_seconds = 0.0);

/** Total stall events observed since process start (or reset). */
std::uint64_t stallEventsTotal();

/** Zero every slot and the stall counter (tests and bench legs). */
void resetHeartbeats();

} // namespace gsku::obs
