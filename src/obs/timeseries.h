/**
 * @file
 * Live telemetry time series (`gsku-tsdb-v1`): a periodic sampler that
 * snapshots the metrics registry on a deterministic *logical* clock and
 * streams the samples into a compact versioned binary file, modeled on
 * the gsku-trace-v1 container (src/cluster/trace_binary.h).
 *
 * The logical clock advances by `telemetryTick(units)` calls placed at
 * the engines' event loops (trace replay events, generator records,
 * sweep jobs, sizing probes, bench legs) — never by wall time — so a
 * run samples at the same points no matter how fast the machine is or
 * how many pool threads execute it. Ticks issued from inside a
 * parallel region only advance the clock; the sample itself is taken
 * at the next tick on a serial section (obs::inParallelRegion() ==
 * false, see obs/heartbeat.h), where every registry counter is
 * thread-count deterministic (the byte-identity contract of
 * common/parallel.h). The result: the tsdb file is byte-identical at
 * 1 and N threads.
 *
 * On-disk layout (all integers little-endian, doubles by bit pattern):
 *
 *   header   magic "GSKUTSB1" (8) | u32 version=1 | u32 header_size |
 *            u64 sample_every | u32 flags (bit0 = volatile lane) |
 *            u32 name_len | name bytes | zero padding to 8 bytes
 *   frames   8-byte-aligned frames, each `u32 kind | u32 payload_len |
 *            payload | zero padding to 8 bytes`:
 *              kind 1  series-def   u32 series_id | u8 value_type
 *                                   (0 = u64 counter, 1 = f64 gauge) |
 *                                   u8 flags (bit0 = volatile) |
 *                                   u16 name_len | name bytes
 *              kind 2  sample-begin u64 logical_clock | u64 sample_seq
 *              kind 3  point        u32 series_id | u32 zero |
 *                                   u64 value_bits
 *              kind 4  wall-clock   f64 seconds since telemetry start
 *   footer   u64 frame_count | u64 sample_count | u64 frames_fnv |
 *            u64 header_fnv | end magic "GSKUTSBE" (8)
 *
 * Series definitions are in-stream (not in the footer) so a live file
 * can be followed while it grows. A point is emitted only when the
 * series value changed since the last emitted point (delta by
 * omission); histograms expand into `.count`, `.sum`, `.p50`, `.p95`,
 * and `.p99` series.
 *
 * The volatile lane — wall-clock frames plus series whose values are
 * legitimately machine- or thread-count-dependent (worker heartbeats,
 * `parallel.pool_threads`, stall counts) — is excluded from
 * `frames_fnv` and only written at all when `GSKU_TSDB_VOLATILE=1`,
 * so the default file stays byte-reproducible end to end.
 *
 * Activation mirrors the ledger: `GSKU_TSDB=<path>` enables sampling
 * for the process and finalizes the file atexit; drivers can also call
 * startTimeseries()/finishTimeseries() explicitly (the `--tsdb` flag).
 * `GSKU_TSDB_EVERY=<n>` overrides the sample period (default 10000
 * ticks). Telemetry never writes to the metrics registry, so manifests
 * and engine outputs are byte-identical with sampling on or off.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace gsku::obs {

inline constexpr std::uint32_t kTsdbVersion = 1;
inline constexpr std::size_t kTsdbHeaderFixed = 32;
inline constexpr std::size_t kTsdbFooterSize = 40;
inline constexpr std::uint64_t kTsdbDefaultSampleEvery = 10000;

/** Schema string recorded by validate_obs.py and gsku_top. */
inline constexpr const char *kTsdbSchema = "gsku-tsdb-v1";

// ---------------------------------------------------------------------
// Sampler (writer side).
// ---------------------------------------------------------------------

/** True when a tsdb writer is live (GSKU_TSDB or startTimeseries). */
bool timeseriesEnabled();

/**
 * Start streaming samples of the metrics registry to @p path. Replaces
 * any live writer (finalizing it first). @p sample_every <= 0 keeps
 * the GSKU_TSDB_EVERY / default period.
 */
void startTimeseries(const std::string &path,
                     std::uint64_t sample_every = 0);

/** Finalize and close the live tsdb file (writes the footer). Safe to
 *  call when no writer is live. Returns false on I/O failure. */
bool finishTimeseries();

/**
 * Advance the logical telemetry clock by @p units work units, and take
 * a registry sample if a writer is live, the clock crossed the sample
 * period, and the calling thread is not inside a parallel region. A
 * disabled tick is one relaxed atomic load.
 */
void telemetryTick(std::uint64_t units = 1);

/** Current logical clock value (0 when telemetry is disabled). */
std::uint64_t telemetryClock();

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

/** One series declared by a kind-1 frame. */
struct TsdbSeries
{
    std::uint32_t id = 0;
    std::string name;
    bool is_double = false;     ///< value_type 1 (f64 gauge lane).
    bool is_volatile = false;   ///< Excluded from frames_fnv.
};

/** One kind-3 point inside a sample. */
struct TsdbPoint
{
    std::uint32_t series = 0;
    std::uint64_t bits = 0;     ///< u64 value or f64 bit pattern.

    double asDouble() const;
};

/** One sample: a kind-2 frame plus its points and optional wall lane. */
struct TsdbSample
{
    std::uint64_t clock = 0;
    std::uint64_t seq = 0;
    std::vector<TsdbPoint> points;
    bool has_wall = false;
    double wall_seconds = 0.0;
};

/** Parsed tsdb file (or live prefix of one, in tail mode). */
struct TimeseriesData
{
    std::uint64_t sample_every = 0;
    bool volatile_lane = false;
    std::string program;
    std::vector<TsdbSeries> series;
    std::vector<TsdbSample> samples;

    bool complete = false;          ///< Footer present and verified.
    std::uint64_t frame_count = 0;  ///< From the footer (complete only).
    std::size_t bytes_parsed = 0;   ///< Prefix consumed (tail mode).

    const TsdbSeries *findSeries(const std::string &name) const;

    /** Final value of every series (last point wins), as doubles. */
    std::map<std::string, double> finalValues() const;
};

// The validating readers — readTsdb() (strict, throws UserError naming
// the offending byte offset) and readTsdbTail() (tolerant prefix parse
// for following a growing file) — live in common/tsdb_read.h: obs is
// the bottom layer of the module DAG and must not include the error
// machinery, while common may include obs.

/** Name-based volatility classification shared by writer, reader, and
 *  tools: worker heartbeats, wall lane, pool shape, stall counts. */
bool tsdbSeriesIsVolatile(const std::string &name);

// ---------------------------------------------------------------------
// Byte codec shared by the writer (obs) and the reader (common).
// Little-endian byte loops — no reinterpret_cast (byte-cast rule); the
// files are small enough that a plain read beats mmap anyway.
// ---------------------------------------------------------------------

namespace tsdb {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t
fnvUpdate(std::uint64_t h, const std::string &bytes)
{
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    return h;
}

inline std::uint64_t
fnvUpdate(std::uint64_t h, const std::string &bytes, std::size_t begin,
          std::size_t len)
{
    for (std::size_t i = begin; i < begin + len; ++i) {
        h ^= static_cast<unsigned char>(bytes[i]);
        h *= kFnvPrime;
    }
    return h;
}

inline void
appendU16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void
appendU32(std::string &out, std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<char>((v >> shift) & 0xff));
}

inline void
appendU64(std::string &out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((v >> shift) & 0xff));
}

inline std::uint64_t
bitsOfDouble(double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

inline double
doubleOfBits(std::uint64_t bits)
{
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

inline std::uint16_t
loadU16(const std::string &bytes, std::size_t off)
{
    return static_cast<std::uint16_t>(
        static_cast<unsigned char>(bytes[off]) |
        (static_cast<unsigned char>(bytes[off + 1]) << 8));
}

inline std::uint32_t
loadU32(const std::string &bytes, std::size_t off)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
        v = (v << 8) |
            static_cast<unsigned char>(bytes[off + static_cast<std::size_t>(i)]);
    }
    return v;
}

inline std::uint64_t
loadU64(const std::string &bytes, std::size_t off)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) |
            static_cast<unsigned char>(bytes[off + static_cast<std::size_t>(i)]);
    }
    return v;
}

/** Zero-pad @p out to the next 8-byte boundary. */
inline void
padTo8(std::string &out)
{
    while (out.size() % 8 != 0)
        out.push_back('\0');
}

} // namespace tsdb

} // namespace gsku::obs
