/**
 * @file
 * Crash flight recorder: a bounded lock-free ring of recent
 * observability events (ledger facts, tsdb sample marks, stall notes)
 * plus a prerendered copy of the latest metrics snapshot, dumped to a
 * post-mortem text artifact (`gsku-flightrec-v1`) when the process
 * crashes, std::terminate()s, or asks for a dump explicitly.
 *
 * Enabled by `GSKU_FLIGHT=<path>` (the dump destination). Activation
 * installs handlers for SIGABRT/SIGSEGV/SIGBUS/SIGFPE/SIGILL (with
 * SA_RESETHAND, re-raising after the dump so exit status is
 * preserved) and a std::terminate hook. The handler itself lives in
 * flightrec_handler.cc, the one translation unit held to strict
 * async-signal-safety (analyzer rule `sigsafe`): raw open/write/
 * rename/close, hand-rolled integer formatting, no allocation, no
 * locks, no iostream.
 *
 * Recording is a seqlock per ring slot: writers bump the slot
 * sequence odd, copy bounded bytes, bump it even; the dumper skips
 * slots it observes mid-write. Recording never blocks and never
 * allocates after startup, so it is safe to call from ledger commit
 * paths and the tsdb sampler. The ring is best-effort by design — a
 * torn slot under wrap races is dropped, never corrupted.
 *
 * The dump is written to `<path>.tmp` and atomically renamed, so a
 * half-written artifact is never observed. Nothing here touches the
 * metrics registry and nothing is recorded into run outputs: the
 * flight recorder is invisible to the byte-identity contracts.
 */
#pragma once

#include <cstdint>
#include <string>

namespace gsku::obs {

/** Dump schema identifier (first line of the artifact). */
inline constexpr const char *kFlightSchema = "gsku-flightrec-v1";

/** True when a dump path is configured (GSKU_FLIGHT or
 *  startFlightRecorder). Performs one-time env init. */
bool flightRecorderEnabled();

/** Enable recording with @p path as the dump destination; installs
 *  crash handlers and the terminate hook on first use. */
void startFlightRecorder(const std::string &path);

/** Append one note to the ring (truncated to the slot size). @p tag
 *  is a short category like "ledger", "sample", "stall". No-op when
 *  disabled. */
void flightRecordNote(const char *tag, const std::string &text);

/** Record the program name echoed in the dump header. */
void flightRecordProgram(const std::string &name);

/** Replace the prerendered metrics-snapshot block embedded in dumps
 *  (the sampler refreshes this on every tsdb sample). */
void flightRecordMetricsText(const std::string &text);

/**
 * Write the post-mortem artifact now (on-demand flavor; @p reason is
 * echoed in the header, default "on-demand"). Unlike the crash path,
 * this may be called repeatedly — each call rewrites the artifact.
 * Returns false when disabled or on I/O failure.
 */
bool dumpFlightRecorder(const char *reason = "on-demand");

/** Events recorded since startup (monotone; ring keeps the tail). */
std::uint64_t flightRecordCount();

} // namespace gsku::obs
