#include "cluster/trace_binary.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <sstream>
#include <utility>

#include "cluster/trace_io.h"
#include "common/error.h"
#include "obs/metrics.h"
#include "perf/app.h"

namespace gsku::cluster {

namespace {

constexpr char kMagic[8] = {'G', 'S', 'K', 'U', 'T', 'R', 'C', '1'};
constexpr char kEndMagic[8] = {'G', 'S', 'K', 'U', 'T', 'R', 'C', 'E'};

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
fnvBytes(std::uint64_t h, const unsigned char *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t
fnvString(std::uint64_t h, const std::string &s)
{
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    return h;
}

void
storeU16(unsigned char *p, std::uint16_t v)
{
    p[0] = static_cast<unsigned char>(v & 0xffu);
    p[1] = static_cast<unsigned char>((v >> 8) & 0xffu);
}

void
storeU32(unsigned char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        p[i] = static_cast<unsigned char>((v >> (i * 8)) & 0xffu);
    }
}

void
storeU64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        p[i] = static_cast<unsigned char>((v >> (i * 8)) & 0xffu);
    }
}

void
storeF64(unsigned char *p, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    storeU64(p, bits);
}

std::uint16_t
loadU16(const unsigned char *p)
{
    return static_cast<std::uint16_t>(p[0] |
                                      (static_cast<unsigned>(p[1]) << 8));
}

std::uint32_t
loadU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(p[i]) << (i * 8);
    }
    return v;
}

std::uint64_t
loadU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(p[i]) << (i * 8);
    }
    return v;
}

double
loadF64(const unsigned char *p)
{
    const std::uint64_t bits = loadU64(p);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

void
appendU32(std::string &s, std::uint32_t v)
{
    unsigned char buf[4];
    storeU32(buf, v);
    s.append(reinterpret_cast<const char *>(buf), sizeof(buf));
}

void
appendU64(std::string &s, std::uint64_t v)
{
    unsigned char buf[8];
    storeU64(buf, v);
    s.append(reinterpret_cast<const char *>(buf), sizeof(buf));
}

void
appendF64(std::string &s, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    appendU64(s, bits);
}

void
patchU64(std::string &s, std::size_t offset, std::uint64_t v)
{
    unsigned char buf[8];
    storeU64(buf, v);
    s.replace(offset, sizeof(buf),
              reinterpret_cast<const char *>(buf), sizeof(buf));
}

std::uint8_t
encodeGeneration(carbon::Generation gen)
{
    switch (gen) {
      case carbon::Generation::Gen1: return 0;
      case carbon::Generation::Gen2: return 1;
      case carbon::Generation::Gen3: return 2;
      case carbon::Generation::GreenSku:
        break;
    }
    GSKU_REQUIRE(false, "trace VMs must originate on Gen1/2/3");
    GSKU_ASSERT(false, "unreachable");
}

carbon::Generation
decodeGeneration(std::uint8_t code)
{
    switch (code) {
      case 0: return carbon::Generation::Gen1;
      case 1: return carbon::Generation::Gen2;
      case 2: return carbon::Generation::Gen3;
      default: break;
    }
    GSKU_REQUIRE(false, "unknown generation code " + std::to_string(code));
    GSKU_ASSERT(false, "unreachable");
}

obs::Counter &
binaryReadsCounter()
{
    static obs::Counter &c = obs::metrics().counter("trace.binary_reads");
    return c;
}

obs::Counter &
binaryRecordsReadCounter()
{
    static obs::Counter &c =
        obs::metrics().counter("trace.binary_records_read");
    return c;
}

obs::Counter &
binaryWritesCounter()
{
    static obs::Counter &c =
        obs::metrics().counter("trace.binary_writes");
    return c;
}

obs::Counter &
binaryRecordsWrittenCounter()
{
    static obs::Counter &c =
        obs::metrics().counter("trace.binary_records_written");
    return c;
}

} // namespace

// ---------------------------------------------------------------------
// TraceContentHasher
// ---------------------------------------------------------------------

TraceContentHasher::TraceContentHasher(const std::string &name,
                                       double duration_h)
{
    mixU64(static_cast<std::uint64_t>(name.size()));
    hash_ = fnvString(hash_, name);
    mixDouble(duration_h);
}

void
TraceContentHasher::mixU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        hash_ ^= (v >> (i * 8)) & 0xffull;
        hash_ *= kFnvPrime;
    }
}

void
TraceContentHasher::mixDouble(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mixU64(bits);
}

void
TraceContentHasher::addVm(const VmRequest &vm)
{
    mixU64(vm.id);
    mixDouble(vm.arrival_h);
    mixDouble(vm.departure_h);
    mixU64(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(vm.cores)));
    mixDouble(vm.memory_gb);
    mixU64(static_cast<std::uint64_t>(static_cast<std::int64_t>(
        static_cast<int>(vm.origin_generation))));
    mixU64(vm.full_node ? 1 : 0);
    mixU64(static_cast<std::uint64_t>(vm.app_index));
    mixDouble(vm.max_mem_touch_fraction);
    ++count_;
}

std::uint64_t
TraceContentHasher::finish()
{
    mixU64(count_);
    return hash_;
}

std::uint64_t
traceContentDigest(const VmTrace &trace)
{
    TraceContentHasher h(trace.name, trace.duration_h);
    for (const VmRequest &vm : trace.vms) {
        h.addVm(vm);
    }
    return h.finish();
}

// ---------------------------------------------------------------------
// VectorTraceReader
// ---------------------------------------------------------------------

VectorTraceReader::VectorTraceReader(const VmTrace &trace)
    : VectorTraceReader(trace.name, trace.duration_h, trace.vms)
{
}

VectorTraceReader::VectorTraceReader(const std::string &name,
                                     double duration_h,
                                     const std::vector<VmRequest> &vms)
    : name_(name), duration_h_(duration_h), vms_(&vms)
{
}

bool
VectorTraceReader::next(VmRequest *out)
{
    if (pos_ >= vms_->size()) {
        return false;
    }
    *out = (*vms_)[pos_++];
    return true;
}

std::uint64_t
VectorTraceReader::contentDigest()
{
    TraceContentHasher h(name_, duration_h_);
    for (const VmRequest &vm : *vms_) {
        h.addVm(vm);
    }
    return h.finish();
}

// ---------------------------------------------------------------------
// TraceBinaryWriter
// ---------------------------------------------------------------------

TraceBinaryWriter::TraceBinaryWriter(const std::string &path,
                                     const std::string &name,
                                     double duration_h)
    : path_(path),
      prev_arrival_(-std::numeric_limits<double>::infinity()),
      content_(name, duration_h)
{
    GSKU_REQUIRE(std::isfinite(duration_h) && duration_h > 0.0,
                 "trace duration must be positive");
    const auto &apps = perf::AppCatalog::all();
    GSKU_REQUIRE(apps.size() < 65536,
                 "app catalog exceeds the 16-bit trace app id");

    header_.append(kMagic, sizeof(kMagic));
    appendU32(header_, kTraceBinaryVersion);
    appendU32(header_, 0);                   // header_size, patched below.
    appendU64(header_, 0);                   // record count, patched at
                                             // finish().
    appendF64(header_, duration_h);
    appendU32(header_, static_cast<std::uint32_t>(name.size()));
    appendU32(header_, static_cast<std::uint32_t>(apps.size()));
    header_ += name;
    for (const auto &app : apps) {
        appendU32(header_, static_cast<std::uint32_t>(app.name.size()));
        header_ += app.name;
    }
    while (header_.size() % 8 != 0) {
        header_.push_back('\0');
    }
    unsigned char size_buf[4];
    storeU32(size_buf, static_cast<std::uint32_t>(header_.size()));
    header_.replace(12, sizeof(size_buf),
                    reinterpret_cast<const char *>(size_buf),
                    sizeof(size_buf));

    out_.open(path_, std::ios::binary | std::ios::trunc);
    GSKU_REQUIRE(out_.is_open(),
                 "cannot open trace file '" + path_ + "' for writing");
    out_.write(header_.data(),
               static_cast<std::streamsize>(header_.size()));
}

void
TraceBinaryWriter::add(const VmRequest &vm)
{
    GSKU_REQUIRE(!finished_, "trace writer already finished");
    const std::string at =
        "trace '" + path_ + "' record " + std::to_string(count_) + ": ";
    GSKU_REQUIRE(std::isfinite(vm.arrival_h) &&
                     std::isfinite(vm.departure_h),
                 at + "times must be finite");
    GSKU_REQUIRE(vm.arrival_h >= prev_arrival_,
                 at + "records must be sorted by arrival");
    GSKU_REQUIRE(vm.departure_h > vm.arrival_h,
                 at + "departure must follow arrival");
    GSKU_REQUIRE(vm.cores > 0 && vm.memory_gb > 0.0 &&
                     std::isfinite(vm.memory_gb),
                 at + "resources must be positive");
    GSKU_REQUIRE(vm.max_mem_touch_fraction >= 0.0 &&
                     vm.max_mem_touch_fraction <= 1.0,
                 at + "touch fraction must be in [0, 1]");
    GSKU_REQUIRE(vm.app_index < perf::AppCatalog::all().size(),
                 at + "app index outside the catalog");
    const std::uint8_t gen = encodeGeneration(vm.origin_generation);

    unsigned char rec[kTraceBinaryRecordSize];
    storeU64(rec + 0, vm.id);
    storeF64(rec + 8, vm.arrival_h);
    storeF64(rec + 16, vm.departure_h);
    storeF64(rec + 24, vm.memory_gb);
    storeF64(rec + 32, vm.max_mem_touch_fraction);
    storeU32(rec + 40, static_cast<std::uint32_t>(vm.cores));
    storeU16(rec + 44, static_cast<std::uint16_t>(vm.app_index));
    rec[46] = gen;
    rec[47] = vm.full_node ? 1 : 0;

    records_fnv_ = fnvBytes(records_fnv_, rec, sizeof(rec));
    content_.addVm(vm);
    out_.write(reinterpret_cast<const char *>(rec),
               static_cast<std::streamsize>(sizeof(rec)));
    prev_arrival_ = vm.arrival_h;
    ++count_;
}

std::uint64_t
TraceBinaryWriter::finish()
{
    GSKU_REQUIRE(!finished_, "trace writer already finished");
    finished_ = true;
    content_digest_ = content_.finish();
    patchU64(header_, 16, count_);
    const std::uint64_t header_fnv = fnvString(kFnvOffset, header_);

    std::string footer;
    appendU64(footer, records_fnv_);
    appendU64(footer, header_fnv);
    appendU64(footer, content_digest_);
    footer.append(kEndMagic, sizeof(kEndMagic));
    out_.write(footer.data(),
               static_cast<std::streamsize>(footer.size()));

    // Re-publish the header with the final record count.
    out_.seekp(0);
    out_.write(header_.data(),
               static_cast<std::streamsize>(header_.size()));
    out_.flush();
    GSKU_REQUIRE(out_.good(),
                 "failed to write trace file '" + path_ + "'");
    out_.close();
    binaryWritesCounter().inc();
    binaryRecordsWrittenCounter().inc(count_);
    return count_;
}

void
writeTraceBinary(const VmTrace &trace, const std::string &path)
{
    GSKU_REQUIRE(!trace.vms.empty(), "trace contains no VMs");
    // Sort by arrival on the way out (mirroring readTraceCsv on the
    // way in), so both encodings materialize the same VM order.
    std::vector<std::size_t> order(trace.vms.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&trace](std::size_t a, std::size_t b) {
                  // Tie key: VM id (shared arrival order, vm.h).
                  return arrivalBefore(trace.vms[a], trace.vms[b]);
              });
    TraceBinaryWriter writer(path, trace.name, trace.duration_h);
    for (std::size_t i : order) {
        writer.add(trace.vms[i]);
    }
    writer.finish();
}

// ---------------------------------------------------------------------
// BinaryTraceReader
// ---------------------------------------------------------------------

struct BinaryTraceReader::Mapping
{
    const unsigned char *data = nullptr;
    std::size_t size = 0;
    void *base = nullptr;               ///< mmap base; null = fallback.
    std::vector<unsigned char> fallback;

    ~Mapping()
    {
        if (base != nullptr) {
            ::munmap(base, size);
        }
    }
};

BinaryTraceReader::BinaryTraceReader(const std::string &path)
    : path_(path),
      map_(new Mapping),
      prev_arrival_(-std::numeric_limits<double>::infinity())
{
    auto fail = [this](const std::string &msg) {
        GSKU_REQUIRE(false, "trace '" + path_ + "': " + msg);
    };

    const int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0) {
        fail("cannot open file");
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        fail("not a regular file");
    }
    map_->size = static_cast<std::size_t>(st.st_size);
    if (map_->size > 0) {
        void *p = ::mmap(nullptr, map_->size, PROT_READ, MAP_PRIVATE,
                         fd, 0);
        if (p != MAP_FAILED) {
            map_->base = p;
            map_->data = static_cast<const unsigned char *>(p);
        } else {
            // Fallback for filesystems that refuse mmap: buffer it.
            map_->fallback.resize(map_->size);
            std::size_t got = 0;
            while (got < map_->size) {
                const ssize_t n =
                    ::read(fd, map_->fallback.data() + got,
                           map_->size - got);
                if (n <= 0) {
                    break;
                }
                got += static_cast<std::size_t>(n);
            }
            if (got != map_->size) {
                ::close(fd);
                fail("short read while buffering");
            }
            map_->data = map_->fallback.data();
        }
    }
    ::close(fd);

    const unsigned char *d = map_->data;
    const std::size_t size = map_->size;
    if (size < kTraceBinaryHeaderFixed) {
        fail("truncated header at offset " + std::to_string(size) +
             ": need at least " +
             std::to_string(kTraceBinaryHeaderFixed) + " bytes, have " +
             std::to_string(size));
    }
    if (std::memcmp(d, kMagic, sizeof(kMagic)) != 0) {
        fail("bad magic at offset 0: not a gsku-trace-v1 file");
    }
    const std::uint32_t version = loadU32(d + 8);
    if (version != kTraceBinaryVersion) {
        fail("unsupported version " + std::to_string(version) +
             " at offset 8 (this build reads version " +
             std::to_string(kTraceBinaryVersion) + ")");
    }
    const std::uint32_t header_size = loadU32(d + 12);
    record_count_ = loadU64(d + 16);
    duration_h_ = loadF64(d + 24);
    const std::uint32_t name_len = loadU32(d + 32);
    const std::uint32_t app_count = loadU32(d + 36);
    if (header_size < kTraceBinaryHeaderFixed || header_size > size ||
        header_size % 8 != 0) {
        fail("implausible header_size " + std::to_string(header_size) +
             " at offset 12");
    }
    if (!std::isfinite(duration_h_) || duration_h_ <= 0.0) {
        fail("trace duration at offset 24 must be positive");
    }
    if (record_count_ == 0) {
        fail("trace contains no VMs");
    }

    std::size_t cursor = kTraceBinaryHeaderFixed;
    if (cursor + name_len > header_size) {
        fail("trace name overruns header_size at offset " +
             std::to_string(cursor));
    }
    name_.assign(reinterpret_cast<const char *>(d + cursor), name_len);
    cursor += name_len;

    const auto &apps = perf::AppCatalog::all();
    app_remap_.reserve(app_count);
    for (std::uint32_t a = 0; a < app_count; ++a) {
        if (cursor + 4 > header_size) {
            fail("app table overruns header_size at offset " +
                 std::to_string(cursor));
        }
        const std::uint32_t len = loadU32(d + cursor);
        cursor += 4;
        if (cursor + len > header_size) {
            fail("app name overruns header_size at offset " +
                 std::to_string(cursor));
        }
        const std::string app_name(
            reinterpret_cast<const char *>(d + cursor), len);
        cursor += len;
        bool found = false;
        for (std::size_t i = 0; i < apps.size(); ++i) {
            if (apps[i].name == app_name) {
                app_remap_.push_back(i);
                found = true;
                break;
            }
        }
        if (!found) {
            fail("unknown application '" + app_name +
                 "' in the header app table");
        }
    }

    // Structural size: header + records + footer, nothing else.
    const std::uint64_t expected =
        static_cast<std::uint64_t>(header_size) +
        record_count_ * kTraceBinaryRecordSize + kTraceBinaryFooterSize;
    if (size < expected) {
        fail("truncated at offset " + std::to_string(size) +
             ": expected " + std::to_string(expected) + " bytes (" +
             std::to_string(header_size) + " header + " +
             std::to_string(record_count_) + " records x " +
             std::to_string(kTraceBinaryRecordSize) + " + " +
             std::to_string(kTraceBinaryFooterSize) + " footer)");
    }
    if (size > expected) {
        fail("trailing data after offset " + std::to_string(expected));
    }

    records_offset_ = header_size;
    const std::size_t footer_off =
        records_offset_ +
        static_cast<std::size_t>(record_count_ * kTraceBinaryRecordSize);
    const std::uint64_t records_fnv =
        fnvBytes(kFnvOffset, d + records_offset_,
                 footer_off - records_offset_);
    if (records_fnv != loadU64(d + footer_off)) {
        fail("record checksum mismatch at offset " +
             std::to_string(footer_off) + " (file corrupt)");
    }
    const std::uint64_t header_fnv = fnvBytes(kFnvOffset, d, header_size);
    if (header_fnv != loadU64(d + footer_off + 8)) {
        fail("header checksum mismatch at offset " +
             std::to_string(footer_off + 8) + " (file corrupt)");
    }
    content_digest_ = loadU64(d + footer_off + 16);
    if (std::memcmp(d + footer_off + 24, kEndMagic,
                    sizeof(kEndMagic)) != 0) {
        fail("bad end magic at offset " +
             std::to_string(footer_off + 24));
    }
    binaryReadsCounter().inc();
}

BinaryTraceReader::~BinaryTraceReader()
{
    if (undelivered_ > 0) {
        binaryRecordsReadCounter().inc(undelivered_);
    }
}

bool
BinaryTraceReader::next(VmRequest *out)
{
    if (next_record_ >= record_count_) {
        if (undelivered_ > 0) {
            binaryRecordsReadCounter().inc(undelivered_);
            undelivered_ = 0;
        }
        return false;
    }
    const std::size_t off =
        records_offset_ +
        static_cast<std::size_t>(next_record_) * kTraceBinaryRecordSize;
    const unsigned char *p = map_->data + off;
    auto fail = [this, off](const std::string &msg) {
        GSKU_REQUIRE(false, "trace '" + path_ + "': record " +
                                std::to_string(next_record_) +
                                " at offset " + std::to_string(off) +
                                ": " + msg);
    };

    VmRequest vm;
    vm.id = loadU64(p + 0);
    vm.arrival_h = loadF64(p + 8);
    vm.departure_h = loadF64(p + 16);
    vm.memory_gb = loadF64(p + 24);
    vm.max_mem_touch_fraction = loadF64(p + 32);
    const std::uint32_t cores = loadU32(p + 40);
    const std::uint16_t app = loadU16(p + 44);
    const std::uint8_t gen = p[46];
    const std::uint8_t full_node = p[47];

    if (!std::isfinite(vm.arrival_h) || !std::isfinite(vm.departure_h)) {
        fail("times must be finite");
    }
    if (vm.arrival_h < prev_arrival_) {
        fail("records must be sorted by arrival");
    }
    if (vm.departure_h <= vm.arrival_h) {
        fail("departure must follow arrival");
    }
    if (cores == 0 || cores > static_cast<std::uint32_t>(
                                  std::numeric_limits<int>::max())) {
        fail("cores must be a positive int");
    }
    if (!std::isfinite(vm.memory_gb) || vm.memory_gb <= 0.0) {
        fail("resources must be positive");
    }
    if (!(vm.max_mem_touch_fraction >= 0.0 &&
          vm.max_mem_touch_fraction <= 1.0)) {
        fail("touch fraction must be in [0, 1]");
    }
    if (gen > 2) {
        fail("unknown generation code " + std::to_string(gen));
    }
    if (app >= app_remap_.size()) {
        fail("app id " + std::to_string(app) +
             " outside the header app table");
    }
    if (full_node > 1) {
        fail("full_node must be 0 or 1");
    }
    vm.cores = static_cast<int>(cores);
    vm.origin_generation = decodeGeneration(gen);
    vm.app_index = app_remap_[app];
    vm.full_node = full_node == 1;

    prev_arrival_ = vm.arrival_h;
    ++next_record_;
    ++undelivered_;
    *out = vm;
    return true;
}

void
BinaryTraceReader::reset()
{
    next_record_ = 0;
    prev_arrival_ = -std::numeric_limits<double>::infinity();
}

VmTrace
readTraceBinary(const std::string &path)
{
    BinaryTraceReader reader(path);
    VmTrace trace;
    trace.name = reader.name();
    trace.duration_h = reader.durationH();
    trace.vms.reserve(reader.sizeHint());
    VmRequest vm;
    while (reader.next(&vm)) {
        trace.vms.push_back(vm);
    }
    return trace;
}

// ---------------------------------------------------------------------
// CsvTraceReader
// ---------------------------------------------------------------------

CsvTraceReader::CsvTraceReader(const std::string &path,
                               const std::string &fallback_name)
    : path_(path), fallback_name_(fallback_name)
{
    open();
}

void
CsvTraceReader::open()
{
    if (in_.is_open()) {
        in_.close();
    }
    in_.clear();
    in_.open(path_);
    GSKU_REQUIRE(in_.is_open(),
                 "cannot open trace CSV '" + path_ + "'");
    line_no_ = 0;
    const CsvTraceMeta meta = readTraceCsvPrologue(in_, &line_no_);
    name_ = meta.present ? meta.name : fallback_name_;
    has_meta_duration_ = meta.present;
    duration_h_ = meta.present ? meta.duration_h : 1e-6;
    first_data_line_ = line_no_;
    prev_arrival_ = -std::numeric_limits<double>::infinity();
    max_arrival_ = 0.0;
}

bool
CsvTraceReader::next(VmRequest *out)
{
    std::string line;
    while (std::getline(in_, line)) {
        ++line_no_;
        if (line.empty()) {
            continue;
        }
        const VmRequest vm = parseTraceCsvRow(line, line_no_, name_);
        GSKU_REQUIRE(vm.arrival_h >= prev_arrival_,
                     "line " + std::to_string(line_no_) +
                         ": rows must be sorted by arrival for "
                         "streaming reads (readTraceCsv handles "
                         "unsorted archives)");
        prev_arrival_ = vm.arrival_h;
        max_arrival_ = std::max(max_arrival_, vm.arrival_h);
        if (!has_meta_duration_) {
            duration_h_ = max_arrival_ + 1e-6;
        }
        *out = vm;
        return true;
    }
    return false;
}

void
CsvTraceReader::reset()
{
    open();
}

std::uint64_t
CsvTraceReader::contentDigest()
{
    CsvTraceReader pass(path_, fallback_name_);
    VmRequest vm;
    if (!pass.has_meta_duration_) {
        // Legacy files: the duration is only known once every arrival
        // has been seen, and the digest mixes it first — scan twice.
        while (pass.next(&vm)) {
        }
        const double duration = pass.durationH();
        pass.reset();
        pass.duration_h_ = duration;
        pass.has_meta_duration_ = true;
    }
    TraceContentHasher h(pass.name_, pass.duration_h_);
    while (pass.next(&vm)) {
        h.addVm(vm);
    }
    return h.finish();
}

} // namespace gsku::cluster
