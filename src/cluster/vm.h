/**
 * @file
 * The VM workload data model: VM requests with arrival/departure times,
 * resource demands, origin server generation, the application they run
 * (assigned per §V by sampling class core-hour shares), and the
 * Pond-style maximum touched-memory fraction that drives Fig. 10.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "carbon/sku.h"
#include "cluster/demand.h"

namespace gsku::cluster {

using VmId = std::uint64_t;

/** One VM deployment in a trace. */
struct VmRequest
{
    VmId id = 0;
    double arrival_h = 0.0;
    double departure_h = 0.0;
    int cores = 0;
    double memory_gb = 0.0;

    /** Server generation the VM was deployed on in the trace (§V:
     *  pre-defined in production traces). */
    carbon::Generation origin_generation = carbon::Generation::Gen3;

    /** Long-living VM requiring a dedicated baseline server (§V). */
    bool full_node = false;

    /** Index into perf::AppCatalog::all() of the assigned application. */
    std::size_t app_index = 0;

    /**
     * Maximum fraction of allocated memory the VM ever touches over its
     * lifetime (Pond [81]: untouched memory is almost half of a VM's
     * allocation on average).
     */
    double max_mem_touch_fraction = 0.5;

    double lifetimeHours() const { return departure_h - arrival_h; }
};

/**
 * The one arrival order every sort site uses (trace_io, trace_binary,
 * allocator, peakConcurrentDemand): arrival time, ties broken by VM id
 * (unique within a trace). A total order — arrival-only comparators
 * left equal-arrival VMs in stdlib-dependent order, which silently
 * broke the "CSV and binary encodings materialize the same VM order"
 * contract whenever arrivals tied.
 */
inline bool
arrivalBefore(const VmRequest &a, const VmRequest &b)
{
    if (a.arrival_h != b.arrival_h) {
        return a.arrival_h < b.arrival_h;
    }
    return a.id < b.id;
}

/** A VM arrival/departure trace for one cluster. */
struct VmTrace
{
    std::string name;
    double duration_h = 0.0;
    std::vector<VmRequest> vms;     ///< Sorted by arrival time.

    /**
     * Peak simultaneous core demand, memory demand, and live-VM
     * population (no packing effects), computed in a single sweep-line
     * pass shared with the streaming readers (ConcurrentDemandSweep).
     */
    PeakDemand peakConcurrentDemand() const;

    /** Peak simultaneous core demand (no packing effects). */
    int peakConcurrentCores() const;

    /** Peak simultaneous memory demand in GB. */
    double peakConcurrentMemoryGb() const;
};

} // namespace gsku::cluster
