/**
 * @file
 * VM-trace serialization: write traces to CSV and read them back, so
 * workloads can be archived, shared, and replayed bit-exactly — the
 * role Azure's published trace datasets play for the paper's artifact.
 *
 * Format (header required, one VM per row):
 *
 *   id,arrival_h,departure_h,cores,memory_gb,generation,full_node,
 *   app,max_mem_touch_fraction
 *
 * `generation` is Gen1|Gen2|Gen3; `app` is the application name from
 * the catalog (stored by name, resolved to an index on load, so traces
 * stay readable and survive catalog reordering).
 *
 * An optional metadata comment line may precede the header:
 *
 *   # gsku-trace duration_h_bits=<16 hex digits> name=<trace name>
 *
 * writeTraceCsv always emits it; readTraceCsv consumes it when
 * present. It carries what the rows cannot: the trace name and the
 * exact (bit-pattern) duration, so a CSV round trip preserves the
 * trace identically to the binary format (trace_binary.h) and both
 * encodings produce the same eval-cache content digest. Files without
 * the line still load, with the legacy behavior (caller-supplied name,
 * duration inferred from the last arrival).
 */
#pragma once

#include <iosfwd>
#include <string>

#include "cluster/vm.h"

namespace gsku::cluster {

/** Writes @p trace as CSV (metadata line, header, one row per VM). */
void writeTraceCsv(const VmTrace &trace, std::ostream &out);

/**
 * Parses a trace from CSV; throws UserError naming the offending line
 * on any malformed row, unknown application, or inconsistent times.
 * The returned trace is sorted by arrival time. A metadata line, when
 * present, overrides @p name and supplies the exact duration.
 */
VmTrace readTraceCsv(std::istream &in, const std::string &name = "csv");

/** What the optional metadata line carried (or didn't). */
struct CsvTraceMeta
{
    std::string name;           ///< Empty when no metadata line.
    double duration_h = 0.0;
    bool present = false;
};

/**
 * Consumes the optional metadata line and the required column header
 * from @p in, advancing @p line_no past them. Shared by readTraceCsv
 * and the streaming CsvTraceReader (trace_binary.h).
 */
CsvTraceMeta readTraceCsvPrologue(std::istream &in, int *line_no);

/** Parses and validates one CSV data row (shared with the streaming
 *  reader); @p source names the input in error messages. */
VmRequest parseTraceCsvRow(const std::string &line, int line_no,
                           const std::string &source);

} // namespace gsku::cluster
