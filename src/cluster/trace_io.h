/**
 * @file
 * VM-trace serialization: write traces to CSV and read them back, so
 * workloads can be archived, shared, and replayed bit-exactly — the
 * role Azure's published trace datasets play for the paper's artifact.
 *
 * Format (header required, one VM per row):
 *
 *   id,arrival_h,departure_h,cores,memory_gb,generation,full_node,
 *   app,max_mem_touch_fraction
 *
 * `generation` is Gen1|Gen2|Gen3; `app` is the application name from
 * the catalog (stored by name, resolved to an index on load, so traces
 * stay readable and survive catalog reordering).
 */
#pragma once

#include <iosfwd>
#include <string>

#include "cluster/vm.h"

namespace gsku::cluster {

/** Writes @p trace as CSV. */
void writeTraceCsv(const VmTrace &trace, std::ostream &out);

/**
 * Parses a trace from CSV; throws UserError naming the offending line
 * on any malformed row, unknown application, or inconsistent times.
 * The returned trace is sorted by arrival time.
 */
VmTrace readTraceCsv(std::istream &in, const std::string &name = "csv");

} // namespace gsku::cluster
