/**
 * @file
 * Compact binary VM-trace format (`gsku-trace-v1`) and the streaming
 * `TraceReader` abstraction, built for fleet-scale replays (10M+
 * arrival/departure events per cluster-year) where materializing a
 * `std::vector<VmRequest>` per trace is the bottleneck.
 *
 * On-disk layout (all integers little-endian, doubles by bit pattern):
 *
 *   header   magic "GSKUTRC1" (8) | u32 version=1 | u32 header_size |
 *            u64 record_count | f64 duration_h | u32 name_len |
 *            u32 app_count | name bytes | app_count x (u32 len + name)
 *            | zero padding to an 8-byte boundary
 *   records  record_count fixed 48-byte records, sorted by arrival:
 *            u64 id | f64 arrival_h | f64 departure_h | f64 memory_gb |
 *            f64 max_mem_touch_fraction | i32 cores | u16 app |
 *            u8 generation (0=Gen1, 1=Gen2, 2=Gen3) | u8 full_node
 *   footer   u64 fnv(records) | u64 fnv(header) | u64 content_digest |
 *            end magic "GSKUTRCE" (8)
 *
 * Applications are stored by *name* (the full catalog name table lives
 * in the header and records carry indexes into it), so traces survive
 * catalog reordering exactly like the CSV format. Both FNV-1a byte
 * checksums are verified on open; a truncated, corrupted, or
 * version-skewed file is rejected with a UserError naming the offset.
 *
 * `content_digest` is the *semantic* trace hash (name, duration, every
 * VM field, count — see TraceContentHasher). The eval cache keys traces
 * by this digest, so CSV and binary encodings of the same trace share
 * cache entries.
 */
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/vm.h"

namespace gsku::cluster {

inline constexpr std::uint32_t kTraceBinaryVersion = 1;
inline constexpr std::size_t kTraceBinaryRecordSize = 48;
inline constexpr std::size_t kTraceBinaryHeaderFixed = 40;
inline constexpr std::size_t kTraceBinaryFooterSize = 32;

/**
 * FNV-1a accumulator over the semantic content of a trace: mixes the
 * name, the duration, every VM field in arrival order, and finally the
 * record count. Streaming writers and batch hashing produce identical
 * digests, and the digest is encoding-independent (CSV, binary, and
 * in-memory traces with the same content agree).
 */
class TraceContentHasher
{
  public:
    TraceContentHasher(const std::string &name, double duration_h);

    void addVm(const VmRequest &vm);

    /** Mixes the VM count and returns the digest. */
    std::uint64_t finish();

  private:
    void mixU64(std::uint64_t v);
    void mixDouble(double v);

    std::uint64_t hash_ = 0xcbf29ce484222325ull;
    std::uint64_t count_ = 0;
};

/** Semantic content digest of a materialized trace (vms in stored
 *  order; traces are sorted by arrival everywhere in this library). */
std::uint64_t traceContentDigest(const VmTrace &trace);

/**
 * Streams a trace's VMs in arrival order without requiring the whole
 * trace in memory. All implementations deliver VMs with nondecreasing
 * `arrival_h`; `reset()` rewinds to the first VM.
 */
class TraceReader
{
  public:
    virtual ~TraceReader() = default;

    virtual const std::string &name() const = 0;
    virtual double durationH() const = 0;

    /** False only for legacy CSV files without the metadata line,
     *  whose duration is inferred and stabilizes once the stream is
     *  exhausted. Streaming consumers that need the duration *before*
     *  the pass (trace_stats) require this to be true. */
    virtual bool durationKnown() const { return true; }

    /** Exact VM count when known upfront; 0 when unknown (CSV). */
    virtual std::uint64_t sizeHint() const = 0;

    /** Next VM in arrival order; false at end of trace. */
    virtual bool next(VmRequest *out) = 0;

    /** Rewind so the next next() returns the first VM again. */
    virtual void reset() = 0;

    /** Semantic content digest (see TraceContentHasher). O(1) for
     *  binary traces (stored in the footer); one full pass otherwise.
     *  Leaves the read position unchanged. */
    virtual std::uint64_t contentDigest() = 0;
};

/** Reader over an in-memory, arrival-sorted VM vector (non-owning:
 *  the name/vms referenced must outlive the reader). */
class VectorTraceReader final : public TraceReader
{
  public:
    /** The trace's vms must already be sorted by arrival. */
    explicit VectorTraceReader(const VmTrace &trace);
    VectorTraceReader(const std::string &name, double duration_h,
                      const std::vector<VmRequest> &vms);

    const std::string &name() const override { return name_; }
    double durationH() const override { return duration_h_; }
    std::uint64_t sizeHint() const override { return vms_->size(); }
    bool next(VmRequest *out) override;
    void reset() override { pos_ = 0; }
    std::uint64_t contentDigest() override;

  private:
    std::string name_;
    double duration_h_ = 0.0;
    const std::vector<VmRequest> *vms_;
    std::size_t pos_ = 0;
};

/**
 * Streaming reader over a `gsku-trace-v1` file. The file is mapped
 * read-only (mmap, with a buffered-read fallback) and fully validated
 * on open: magic, version, structural sizes, and both FNV-1a byte
 * checksums. Per-record field invariants (the same ones the CSV parser
 * enforces) and arrival ordering are checked as records stream out.
 * Throws UserError naming the byte offset on any violation.
 */
class BinaryTraceReader final : public TraceReader
{
  public:
    explicit BinaryTraceReader(const std::string &path);
    ~BinaryTraceReader() override;

    BinaryTraceReader(const BinaryTraceReader &) = delete;
    BinaryTraceReader &operator=(const BinaryTraceReader &) = delete;

    const std::string &name() const override { return name_; }
    double durationH() const override { return duration_h_; }
    std::uint64_t sizeHint() const override { return record_count_; }
    bool next(VmRequest *out) override;
    void reset() override;
    std::uint64_t contentDigest() override { return content_digest_; }

  private:
    struct Mapping;

    std::string path_;
    std::unique_ptr<Mapping> map_;
    std::string name_;
    double duration_h_ = 0.0;
    std::uint64_t record_count_ = 0;
    std::uint64_t content_digest_ = 0;
    std::size_t records_offset_ = 0;
    std::vector<std::size_t> app_remap_;    ///< File app id -> catalog.
    std::uint64_t next_record_ = 0;
    double prev_arrival_ = 0.0;
    std::uint64_t undelivered_ = 0;         ///< For the read counter.
};

/**
 * Streaming reader over a trace CSV file (the trace_io.h format).
 * Rows must already be sorted by arrival (readTraceCsv sorts on load;
 * unsorted archives must go through the materializing path); an
 * out-of-order row raises UserError. The file's metadata comment line,
 * when present, supplies the trace name and exact duration.
 */
class CsvTraceReader final : public TraceReader
{
  public:
    explicit CsvTraceReader(const std::string &path,
                            const std::string &fallback_name = "csv");

    const std::string &name() const override { return name_; }
    double durationH() const override { return duration_h_; }
    bool durationKnown() const override { return has_meta_duration_; }
    std::uint64_t sizeHint() const override { return 0; }
    bool next(VmRequest *out) override;
    void reset() override;
    std::uint64_t contentDigest() override;

  private:
    void open();

    std::string path_;
    std::string fallback_name_;
    std::string name_;
    double duration_h_ = 0.0;
    bool has_meta_duration_ = false;
    std::ifstream in_;
    int line_no_ = 0;
    int first_data_line_ = 0;
    double prev_arrival_ = 0.0;
    double max_arrival_ = 0.0;
};

/**
 * Streams records into a `gsku-trace-v1` file: header first, each
 * add()ed record appended and folded into the running checksums and
 * content digest, and finish() patches the record count into the
 * header and publishes the footer. Records must arrive sorted by
 * arrival time and satisfy the same field invariants as the CSV
 * format; violations raise UserError. The file is invalid (and will
 * be rejected by BinaryTraceReader) until finish() returns.
 */
class TraceBinaryWriter
{
  public:
    TraceBinaryWriter(const std::string &path, const std::string &name,
                      double duration_h);

    void add(const VmRequest &vm);

    /** Finalizes the file; returns the record count. */
    std::uint64_t finish();

    /** Semantic digest of the written trace; valid after finish(). */
    std::uint64_t contentDigest() const { return content_digest_; }
    std::uint64_t count() const { return count_; }

  private:
    std::string path_;
    std::ofstream out_;
    std::string header_;
    std::uint64_t count_ = 0;
    double prev_arrival_ = 0.0;
    std::uint64_t records_fnv_ = 0xcbf29ce484222325ull;
    TraceContentHasher content_;
    std::uint64_t content_digest_ = 0;
    bool finished_ = false;
};

/** Writes @p trace to @p path in `gsku-trace-v1` (vms are sorted by
 *  arrival on the way out, like readTraceCsv sorts on the way in). */
void writeTraceBinary(const VmTrace &trace, const std::string &path);

/** Materializes a binary trace (validating it fully). */
VmTrace readTraceBinary(const std::string &path);

} // namespace gsku::cluster
