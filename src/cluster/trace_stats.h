/**
 * @file
 * Workload-characterization summary of a VM trace: the per-trace
 * statistics the §V methodology depends on (class mix vs Table III
 * shares, Pond-style touched-memory mean, full-node share, steady-state
 * population), packaged for reporting and for validating synthetic or
 * imported traces before using them in an evaluation.
 */
#pragma once

#include <map>
#include <string>

#include "cluster/vm.h"
#include "common/stats.h"
#include "perf/app.h"

namespace gsku::cluster {

class TraceReader;

/** Aggregate statistics of one trace. */
struct TraceStats
{
    std::string trace_name;
    std::size_t vm_count = 0;
    int full_node_vms = 0;

    OnlineStats cores;
    OnlineStats memory_gb;
    OnlineStats lifetime_h;
    OnlineStats touch_fraction;

    /** VM-count share per application class (sums to 1). */
    std::map<perf::AppClass, double> class_shares;

    /** VM-count share per origin generation. */
    std::map<carbon::Generation, double> generation_shares;

    int peak_concurrent_cores = 0;
    double peak_concurrent_memory_gb = 0.0;

    /** Mean concurrent VM population over the trace duration
     *  (Little's law: arrivals x mean lifetime / duration). */
    double mean_population = 0.0;

    /**
     * Largest absolute deviation between the trace's class shares and
     * the Table III fleet core-hour shares — a sanity metric for
     * synthetic traces (small) and a drift detector for imported ones.
     */
    double classMixDeviation() const;
};

/** Compute the summary; throws UserError on an empty trace. */
TraceStats summarizeTrace(const VmTrace &trace);

/**
 * Streaming summary: one pass over @p reader (rewound first), with the
 * peaks computed by the same ConcurrentDemandSweep the batch overload
 * uses — no materialized VM vector. Requires reader.durationKnown()
 * (the population estimate needs the duration up front); identical to
 * the batch summary on the same content.
 */
TraceStats summarizeTrace(TraceReader &reader);

} // namespace gsku::cluster
