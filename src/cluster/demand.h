/**
 * @file
 * Demand-growth modeling and growth-buffer sizing (§IV-D).
 *
 * A cloud provider holds a *growth buffer* — spare capacity absorbing
 * spikes in VM deployment growth during the server-procurement lead
 * time. The buffer is "sized to trade off the cost of deploying unused
 * capacity with the risk ... of not having enough capacity" (§IV-D);
 * this is the classic newsvendor/safety-stock problem [49], which this
 * module implements:
 *
 *   buffer = z(service_level) * sigma_demand * sqrt(lead_time)
 *
 * The paper's D2 design goal warns that "offering numerous server
 * options can reduce demand multiplexing ... adding many server options
 * may require larger buffers": splitting one demand stream into k
 * independent streams grows the summed safety stock by ~sqrt(k). The
 * fragmentation queries below quantify exactly that effect, and a
 * Monte-Carlo demand simulator validates the analytic sizing.
 */
#pragma once

#include <vector>

#include "common/rng.h"

namespace gsku::cluster {

/** Parameters of the demand-growth process and procurement pipeline. */
struct DemandParams
{
    double mean_cores = 2000.0;         ///< Current steady demand.
    double weekly_growth = 0.003;       ///< Mean growth per week.
    double weekly_sigma = 0.006;        ///< Growth volatility per week.
    double lead_time_weeks = 8.0;       ///< Procure-to-rack lead time.
    double service_level = 0.999;       ///< P(no capacity shortfall).

    // The defaults reproduce the evaluator's 8% buffer fraction:
    // 2000*0.003*8 + z(0.999)*2000*0.006*sqrt(8) ~= 153 cores ~= 7.6%.
};

/** Newsvendor-style buffer sizing. */
class GrowthBufferSizer
{
  public:
    explicit GrowthBufferSizer(DemandParams params = DemandParams{});

    const DemandParams &params() const { return params_; }

    /**
     * Cores of buffer needed so demand growth over one lead time
     * exceeds capacity with probability 1 - service_level.
     */
    double bufferCores() const;

    /** bufferCores() / mean_cores; the evaluator's buffer_fraction. */
    double bufferFraction() const;

    /**
     * Total buffer when demand is split across @p options independent
     * SKU demand streams of equal size (D2 fragmentation): each stream
     * needs its own safety stock, so the sum grows ~sqrt(options).
     */
    double fragmentedBufferCores(int options) const;

    /** fragmentedBufferCores(options) / bufferCores() - 1: the extra
     *  buffer capacity a provider pays for offering more SKU types. */
    double fragmentationPenalty(int options) const;

    /**
     * Monte-Carlo validation: simulate @p trials lead-time windows of
     * the growth process and report the realized shortfall probability
     * with the analytic buffer in place. Should be ~1 - service_level.
     */
    double simulateShortfallProbability(Rng &rng, int trials = 20000) const;

    /** Inverse standard normal CDF (Acklam's rational approximation). */
    static double normalQuantile(double p);

  private:
    DemandParams params_;
};

} // namespace gsku::cluster
