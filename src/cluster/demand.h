/**
 * @file
 * Demand-growth modeling and growth-buffer sizing (§IV-D).
 *
 * A cloud provider holds a *growth buffer* — spare capacity absorbing
 * spikes in VM deployment growth during the server-procurement lead
 * time. The buffer is "sized to trade off the cost of deploying unused
 * capacity with the risk ... of not having enough capacity" (§IV-D);
 * this is the classic newsvendor/safety-stock problem [49], which this
 * module implements:
 *
 *   buffer = z(service_level) * sigma_demand * sqrt(lead_time)
 *
 * The paper's D2 design goal warns that "offering numerous server
 * options can reduce demand multiplexing ... adding many server options
 * may require larger buffers": splitting one demand stream into k
 * independent streams grows the summed safety stock by ~sqrt(k). The
 * fragmentation queries below quantify exactly that effect, and a
 * Monte-Carlo demand simulator validates the analytic sizing.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace gsku::cluster {

/** Result of a concurrent-demand sweep over a trace. */
struct PeakDemand
{
    double cores = 0.0;             ///< Peak simultaneous core demand.
    double memory_gb = 0.0;         ///< Peak simultaneous memory demand.
    std::uint64_t max_live_vms = 0; ///< Peak concurrent VM population.
};

/**
 * Single-pass sweep-line over an arrival-ordered VM stream computing
 * peak concurrent core demand, memory demand, and live-VM population
 * together. Replaces the per-dimension `std::map<double, double>`
 * event rebuild `VmTrace::peakConcurrentCores()` /
 * `peakConcurrentMemoryGb()` used to do on every call, and is the
 * demand accumulator for the streaming trace readers (trace_binary.h),
 * which never materialize the trace.
 *
 * Hot state is struct-of-arrays: the pending-departure min-heap is
 * three parallel flat vectors (time, cores, memory), reserved upfront
 * and bounded by the peak live population, not the trace length.
 *
 * Semantics match the old map-based sweep exactly: all deltas at an
 * identical time are netted before the peak comparison (a VM departing
 * the instant another arrives never counts as overlap inflation), and
 * departures beyond the trace duration still drain.
 */
class ConcurrentDemandSweep
{
  public:
    explicit ConcurrentDemandSweep(std::size_t reserve_hint = 1024);

    /** Feed one VM; arrivals must be nondecreasing and the departure
     *  must follow the arrival (throws UserError otherwise). */
    void add(double arrival_h, double departure_h, double cores,
             double memory_gb);

    /** Drains pending departures and returns the peaks. Call once. */
    PeakDemand finish();

  private:
    void route(double time, double d_cores, double d_mem, long d_live);
    void flushGroup();
    void heapPush(double time, double cores, double mem);
    void heapPop();

    // Pending departures, a binary min-heap on time_ kept as parallel
    // flat vectors (struct-of-arrays).
    std::vector<double> dep_time_;
    std::vector<double> dep_cores_;
    std::vector<double> dep_mem_;

    // Netting group for the current distinct time point.
    double group_time_ = 0.0;
    double group_cores_ = 0.0;
    double group_mem_ = 0.0;
    long group_live_ = 0;
    bool group_open_ = false;

    double cur_cores_ = 0.0;
    double cur_mem_ = 0.0;
    long cur_live_ = 0;
    PeakDemand peak_;
    double prev_arrival_ = 0.0;
    bool any_ = false;
    bool finished_ = false;
};

/** Parameters of the demand-growth process and procurement pipeline. */
struct DemandParams
{
    double mean_cores = 2000.0;         ///< Current steady demand.
    double weekly_growth = 0.003;       ///< Mean growth per week.
    double weekly_sigma = 0.006;        ///< Growth volatility per week.
    double lead_time_weeks = 8.0;       ///< Procure-to-rack lead time.
    double service_level = 0.999;       ///< P(no capacity shortfall).

    // The defaults reproduce the evaluator's 8% buffer fraction:
    // 2000*0.003*8 + z(0.999)*2000*0.006*sqrt(8) ~= 153 cores ~= 7.6%.
};

/** Newsvendor-style buffer sizing. */
class GrowthBufferSizer
{
  public:
    explicit GrowthBufferSizer(DemandParams params = DemandParams{});

    const DemandParams &params() const { return params_; }

    /**
     * Cores of buffer needed so demand growth over one lead time
     * exceeds capacity with probability 1 - service_level.
     */
    double bufferCores() const;

    /** bufferCores() / mean_cores; the evaluator's buffer_fraction. */
    double bufferFraction() const;

    /**
     * Total buffer when demand is split across @p options independent
     * SKU demand streams of equal size (D2 fragmentation): each stream
     * needs its own safety stock, so the sum grows ~sqrt(options).
     */
    double fragmentedBufferCores(int options) const;

    /** fragmentedBufferCores(options) / bufferCores() - 1: the extra
     *  buffer capacity a provider pays for offering more SKU types. */
    double fragmentationPenalty(int options) const;

    /**
     * Monte-Carlo validation: simulate @p trials lead-time windows of
     * the growth process and report the realized shortfall probability
     * with the analytic buffer in place. Should be ~1 - service_level.
     */
    double simulateShortfallProbability(Rng &rng, int trials = 20000) const;

    /** Inverse standard normal CDF (Acklam's rational approximation). */
    static double normalQuantile(double p);

  private:
    DemandParams params_;
};

} // namespace gsku::cluster
