/**
 * @file
 * Synthetic VM trace generator substituting for Azure's proprietary
 * production traces (DESIGN.md §1). The joint distribution of VM size,
 * lifetime, memory:core ratio, and touched-memory fraction follows the
 * published characterizations the paper builds on:
 *
 *  - VM core sizes concentrate on small VMs with a heavy tail
 *    (Resource Central [50]);
 *  - lifetimes are log-normal-ish with many short VMs and a fat tail of
 *    long-living ones;
 *  - applications are assigned by sampling class core-hour shares
 *    (Table III), then uniformly within the class (§V);
 *  - the maximum touched fraction of allocated memory averages ~0.55
 *    (Pond [81]: untouched is almost half);
 *  - a small population of long-living "full-node" VMs requires
 *    dedicated baseline servers (§V).
 *
 * Each of the 35 evaluation traces perturbs load level, memory heaviness,
 * and lifetime scale via per-trace multipliers drawn from the trace seed,
 * mimicking cluster-to-cluster diversity.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cluster/vm.h"
#include "common/rng.h"

namespace gsku::cluster {

/** Generator parameters; defaults model a medium general-purpose cluster. */
struct TraceGenParams
{
    double duration_h = 24.0 * 28.0;        ///< Four weeks.
    double target_concurrent_vms = 600.0;   ///< Steady-state population.
    double mean_lifetime_h = 48.0;

    /** Core-size buckets and weights (Resource Central-like mix). */
    std::vector<int> core_sizes = {2, 4, 8, 16, 24, 32, 48};
    std::vector<double> core_weights = {30, 28, 22, 11, 5, 3, 1};

    /** Memory per core buckets in GB and weights. */
    std::vector<double> mem_per_core = {2.0, 4.0, 8.0};
    std::vector<double> mem_weights = {25, 55, 20};

    /** Origin-generation mix (Gen1, Gen2, Gen3): old generations keep
     *  growing (§II). */
    std::vector<double> generation_weights = {0.25, 0.35, 0.40};

    /** Fraction of arrivals that are full-node VMs. */
    double full_node_fraction = 0.002;

    /** Log-normal sigma of lifetimes (median derived from the mean). */
    double lifetime_sigma = 1.4;

    /** Beta-like touched-fraction spread around the Pond mean. */
    double touch_mean = 0.55;
    double touch_spread = 0.18;

    /** Cross-trace diversity multiplier ranges (sampled per trace). */
    double load_jitter = 0.35;      ///< +/- on target_concurrent_vms.
    double memory_jitter = 0.25;    ///< +/- on memory weights tilt.
};

/** Generates reproducible synthetic traces. */
class TraceGenerator
{
  public:
    explicit TraceGenerator(TraceGenParams params = TraceGenParams{});

    const TraceGenParams &params() const { return params_; }

    /** One trace; the same (params, seed) always yields the same trace. */
    VmTrace generate(std::uint64_t seed) const;

    /**
     * Streams the VMs of trace @p seed into @p sink in arrival order
     * without materializing them. Draws the exact RNG sequence
     * generate() draws, so the streamed VMs are field-identical to
     * `generate(seed).vms` (asserted by trace_binary_test). Returns the
     * VM count.
     */
    std::uint64_t
    generateStream(std::uint64_t seed,
                   const std::function<void(const VmRequest &)> &sink)
        const;

    /** Streams trace @p seed straight into a `gsku-trace-v1` file at
     *  @p path (named "synthetic-<seed>"); returns the VM count. The
     *  10M-event bench path: no in-memory trace is ever built. */
    std::uint64_t generateToBinary(std::uint64_t seed,
                                   const std::string &path) const;

    /** A family of traces with per-trace diversity (the 35 clusters). */
    std::vector<VmTrace> generateFamily(int count,
                                        std::uint64_t base_seed) const;

  private:
    TraceGenParams params_;
};

} // namespace gsku::cluster
