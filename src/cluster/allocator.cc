#include "cluster/allocator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <queue>
#include <set>
#include <utility>

#include "cluster/trace_binary.h"
#include "common/contracts.h"
#include "common/error.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "perf/app.h"

namespace gsku::cluster {

namespace {

std::size_t
generationIndex(carbon::Generation gen)
{
    switch (gen) {
      case carbon::Generation::Gen1: return 0;
      case carbon::Generation::Gen2: return 1;
      case carbon::Generation::Gen3: return 2;
      case carbon::Generation::GreenSku:
        break;
    }
    GSKU_REQUIRE(false, "VM origin generation must be Gen1/2/3");
    GSKU_ASSERT(false, "unreachable");
}

} // namespace

AdoptionTable::AdoptionTable()
    : entries_(perf::AppCatalog::all().size() * 3)
{
}

AdoptionTable
AdoptionTable::none()
{
    return AdoptionTable();
}

std::size_t
AdoptionTable::slot(std::size_t app_index, carbon::Generation gen)
{
    return app_index * 3 + generationIndex(gen);
}

void
AdoptionTable::set(std::size_t app_index, carbon::Generation gen,
                   AdoptionDecision decision)
{
    const std::size_t i = slot(app_index, gen);
    GSKU_REQUIRE(i < entries_.size(), "app index out of range");
    GSKU_REQUIRE(decision.scaling_factor >= 1.0,
                 "scaling factor must be >= 1");
    entries_[i] = decision;
}

AdoptionDecision
AdoptionTable::get(std::size_t app_index, carbon::Generation gen) const
{
    const std::size_t i = slot(app_index, gen);
    GSKU_REQUIRE(i < entries_.size(), "app index out of range");
    return entries_[i];
}

double
AdoptionTable::adoptionRate() const
{
    if (entries_.empty()) {
        return 0.0;
    }
    std::size_t n = 0;
    for (const auto &e : entries_) {
        n += e.adopt ? 1 : 0;
    }
    return static_cast<double>(n) / static_cast<double>(entries_.size());
}

std::uint64_t
AdoptionTable::fingerprint() const
{
    // FNV-1a over (adopt, scaling factor bit pattern) per entry.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (byte * 8)) & 0xffULL;
            h *= 1099511628211ULL;
        }
    };
    for (const AdoptionDecision &e : entries_) {
        mix(e.adopt ? 1 : 0);
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(e.scaling_factor),
                      "scaling factor must be a 64-bit double");
        std::memcpy(&bits, &e.scaling_factor, sizeof(bits));
        mix(bits);
    }
    return h;
}

void
GroupMetrics::checkInvariants() const
{
    GSKU_INVARIANT(servers >= 0 && vms_placed >= 0,
                   "group counts must be non-negative");
    GSKU_INVARIANT(mean_core_packing >= 0.0 && mean_core_packing <= 1.0,
                   "core packing density must lie in [0, 1]");
    GSKU_INVARIANT(mean_mem_packing >= 0.0 && mean_mem_packing <= 1.0,
                   "memory packing density must lie in [0, 1]");
    GSKU_INVARIANT(mean_max_mem_utilization >= 0.0 &&
                       mean_max_mem_utilization <= 1.0 + 1e-9,
                   "touched-memory utilization must lie in [0, 1]");
}

std::string
toString(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::BestFit: return "best-fit";
      case PlacementPolicy::FirstFit: return "first-fit";
      case PlacementPolicy::WorstFit: return "worst-fit";
    }
    GSKU_ASSERT(false, "unhandled PlacementPolicy");
}

VmAllocator::VmAllocator(ReplayOptions options) : options_(options)
{
    GSKU_REQUIRE(options_.snapshot_interval_h > 0.0,
                 "snapshot interval must be positive");
}

namespace {

/** Mutable state of one simulated server. */
struct ServerState
{
    int total_cores = 0;
    double total_mem = 0.0;
    double used_cores = 0.0;
    double used_mem = 0.0;
    int vm_count = 0;
    bool dedicated = false;     ///< Holding a full-node VM.

    double touched_mem = 0.0;   ///< Sum of allocated x touch fraction.
    double max_touched = 0.0;   ///< Lifetime maximum of touched_mem.
    bool ever_used = false;

    /** Free-core key this server is currently filed under in its
     *  group's capacity index (exact erase requires the exact key). */
    double index_key = 0.0;

    double freeCores() const { return total_cores - used_cores; }
    double freeMem() const { return total_mem - used_mem; }
};

/**
 * Per-group free-capacity index. Non-empty, non-dedicated servers are
 * keyed by (free cores, server id); empty servers live in a separate
 * id-ordered set because every empty server of a homogeneous group has
 * identical capacity, making the lowest id the placement winner among
 * them under every policy. Dedicated servers are never placement
 * candidates and are not indexed.
 */
struct GroupIndex
{
    std::set<std::pair<double, std::size_t>> nonempty;
    std::set<std::size_t> empty;
};

/**
 * Struct-of-arrays table of live-VM placements, indexed by a reusable
 * slot id. Bounded by the *peak concurrent* VM count rather than the
 * maximum VM id (the old AoS layout resized a placements vector to
 * `max id + 1`, which for a fleet-year trace with 64-bit ids is
 * unbounded). Freed slots are recycled LIFO.
 */
struct LiveVmTable
{
    std::vector<std::size_t> server;
    std::vector<double> cores;
    std::vector<double> mem;
    std::vector<double> touched;
    std::vector<char> occupied;
    std::vector<std::uint32_t> free_slots;

    std::uint32_t
    acquire(std::size_t srv, double c, double m, double t)
    {
        if (!free_slots.empty()) {
            const std::uint32_t slot = free_slots.back();
            free_slots.pop_back();
            server[slot] = srv;
            cores[slot] = c;
            mem[slot] = m;
            touched[slot] = t;
            occupied[slot] = 1;
            return slot;
        }
        const std::uint32_t slot =
            static_cast<std::uint32_t>(server.size());
        server.push_back(srv);
        cores.push_back(c);
        mem.push_back(m);
        touched.push_back(t);
        occupied.push_back(1);
        return slot;
    }

    void
    release(std::uint32_t slot)
    {
        occupied[slot] = 0;
        free_slots.push_back(slot);
    }
};

/** Pending departure event for the priority queue. */
struct Departure
{
    double time = 0.0;
    std::uint32_t slot = 0;     ///< LiveVmTable slot of the departer.

    bool
    operator>(const Departure &other) const
    {
        return time > other.time;
    }
};

/**
 * Placement with prefer-non-empty: among feasible servers, pick per the
 * policy (best-fit minimizes leftover cores, ties broken by leftover
 * memory), considering non-empty servers before empty ones.
 */
std::optional<std::size_t>
pickServer(const std::vector<ServerState> &servers, std::size_t begin,
           std::size_t end, double cores, double mem, bool need_empty,
           PlacementPolicy policy)
{
    std::optional<std::size_t> best;
    double best_cores = 0.0;
    double best_mem = 0.0;
    bool best_nonempty = false;

    for (std::size_t i = begin; i < end; ++i) {
        const ServerState &s = servers[i];
        if (s.dedicated || s.freeCores() < cores || s.freeMem() < mem) {
            continue;
        }
        const bool nonempty = s.vm_count > 0;
        if (need_empty && nonempty) {
            continue;
        }
        if (policy == PlacementPolicy::FirstFit && nonempty) {
            return i;   // First feasible non-empty server wins outright.
        }
        const double left_cores = s.freeCores() - cores;
        const double left_mem = s.freeMem() - mem;
        bool fit_better;
        switch (policy) {
          case PlacementPolicy::WorstFit:
            fit_better = left_cores > best_cores ||
                         (left_cores == best_cores && left_mem > best_mem);
            break;
          case PlacementPolicy::FirstFit:
            fit_better = false;     // Keep the earliest (empty) server.
            break;
          case PlacementPolicy::BestFit:
          default:
            fit_better = left_cores < best_cores ||
                         (left_cores == best_cores && left_mem < best_mem);
            break;
        }
        const bool better = !best || (nonempty && !best_nonempty) ||
                            (nonempty == best_nonempty && fit_better);
        if (better) {
            best = i;
            best_cores = left_cores;
            best_mem = left_mem;
            best_nonempty = nonempty;
        }
    }
    return best;
}

/**
 * Index-backed placement, equivalent to pickServer bit for bit. The
 * scan's winner is the lexicographic minimum over feasible servers of
 * (empty, leftover cores, leftover memory, id) for BestFit and
 * (empty, -leftover cores, -leftover memory, id) for WorstFit — a total
 * order, so any enumeration finding that minimum matches the scan.
 * Walking the index from lower_bound(cores) (BestFit) or the top
 * (WorstFit) visits servers in monotone leftover-core order; the walk
 * stops as soon as the leftover-core field can no longer tie, and ties
 * are resolved by (leftover memory, id) exactly as the scan does.
 * @p group_cores / @p group_mem are the group's per-server capacity,
 * deciding feasibility for (interchangeable) empty servers.
 */
std::optional<std::size_t>
pickServerIndexed(const std::vector<ServerState> &servers,
                  const GroupIndex &index, double cores, double mem,
                  bool need_empty, double group_cores, double group_mem,
                  PlacementPolicy policy)
{
    auto pick_empty = [&]() -> std::optional<std::size_t> {
        if (index.empty.empty() || group_cores < cores ||
            group_mem < mem) {
            return std::nullopt;
        }
        return *index.empty.begin();
    };
    if (need_empty) {
        return pick_empty();
    }

    std::optional<std::size_t> best;
    double best_left = 0.0;
    double best_mem = 0.0;
    if (policy == PlacementPolicy::BestFit) {
        const auto from =
            index.nonempty.lower_bound({cores, std::size_t{0}});
        for (auto it = from; it != index.nonempty.end(); ++it) {
            const double left_cores = it->first - cores;
            if (best && left_cores > best_left) {
                break;      // Leftover cores can only grow from here.
            }
            const ServerState &s = servers[it->second];
            if (s.freeMem() < mem) {
                continue;
            }
            const double left_mem = s.freeMem() - mem;
            if (!best) {
                best = it->second;
                best_left = left_cores;
                best_mem = left_mem;
            } else if (left_mem < best_mem ||
                       (left_mem == best_mem && it->second < *best)) {
                best = it->second;
                best_mem = left_mem;
            }
        }
    } else {
        GSKU_ASSERT(policy == PlacementPolicy::WorstFit,
                    "FirstFit placement must use the linear scan");
        for (auto it = index.nonempty.rbegin();
             it != index.nonempty.rend(); ++it) {
            if (it->first < cores) {
                break;      // Descending: nothing below here fits.
            }
            const double left_cores = it->first - cores;
            if (best && left_cores < best_left) {
                break;
            }
            const ServerState &s = servers[it->second];
            if (s.freeMem() < mem) {
                continue;
            }
            const double left_mem = s.freeMem() - mem;
            if (!best) {
                best = it->second;
                best_left = left_cores;
                best_mem = left_mem;
            } else if (left_mem > best_mem ||
                       (left_mem == best_mem && it->second < *best)) {
                best = it->second;
                best_mem = left_mem;
            }
        }
    }
    if (best) {
        return best;
    }
    return pick_empty();
}

/** Snapshot-accumulated packing sums for one group. */
struct PackingAccumulator
{
    double core_sum = 0.0;
    double mem_sum = 0.0;
    long samples = 0;

    void
    sample(const std::vector<ServerState> &servers, std::size_t begin,
           std::size_t end)
    {
        double cores_used = 0.0;
        long cores_total = 0;
        double mem_used = 0.0;
        double mem_total = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
            const ServerState &s = servers[i];
            if (s.vm_count == 0) {
                continue;
            }
            cores_used += s.used_cores;
            cores_total += s.total_cores;
            mem_used += s.used_mem;
            mem_total += s.total_mem;
        }
        if (cores_total > 0) {
            core_sum += cores_used / static_cast<double>(cores_total);
            mem_sum += mem_used / mem_total;
            ++samples;
        }
    }

    double coreMean() const { return samples ? core_sum / samples : 0.0; }
    double memMean() const { return samples ? mem_sum / samples : 0.0; }
};

GroupMetrics
finishGroup(const std::vector<ServerState> &servers, std::size_t begin,
            std::size_t end, const PackingAccumulator &acc, long placed)
{
    GroupMetrics m;
    m.servers = static_cast<int>(end - begin);
    m.vms_placed = placed;
    m.mean_core_packing = acc.coreMean();
    m.mean_mem_packing = acc.memMean();

    double util_sum = 0.0;
    long used_servers = 0;
    for (std::size_t i = begin; i < end; ++i) {
        const ServerState &s = servers[i];
        if (!s.ever_used) {
            continue;
        }
        util_sum += s.max_touched / s.total_mem;
        ++used_servers;
    }
    m.mean_max_mem_utilization =
        used_servers ? util_sum / static_cast<double>(used_servers) : 0.0;
    return m;
}

} // namespace

namespace {

MultiClusterSpec
toMultiSpec(const ClusterSpec &cluster, const AdoptionTable &adoption)
{
    GSKU_REQUIRE(cluster.baselines >= 0 && cluster.greens >= 0,
                 "server counts must be non-negative");
    MultiClusterSpec multi;
    multi.baseline_sku = cluster.baseline_sku;
    multi.baselines = cluster.baselines;
    multi.greens.push_back(
        GreenGroupSpec{cluster.green_sku, cluster.greens, adoption});
    return multi;
}

ReplayResult
fromMultiResult(const MultiReplayResult &r)
{
    ReplayResult out;
    out.success = r.success;
    out.placed = r.placed;
    out.rejected = r.rejected;
    out.baseline = r.baseline;
    out.green = r.greens.front();
    out.green_placed = r.green_placed;
    out.green_fallbacks = r.green_fallbacks;
    return out;
}

} // namespace

ReplayResult
VmAllocator::replay(const VmTrace &trace, const ClusterSpec &cluster,
                    const AdoptionTable &adoption) const
{
    return fromMultiResult(replay(trace, toMultiSpec(cluster, adoption)));
}

ReplayResult
VmAllocator::replay(TraceReader &reader, const ClusterSpec &cluster,
                    const AdoptionTable &adoption) const
{
    return fromMultiResult(
        replay(reader, toMultiSpec(cluster, adoption)));
}

MultiReplayResult
VmAllocator::replay(const VmTrace &trace,
                    const MultiClusterSpec &cluster) const
{
    // Same copy + sort readTraceCsv-era callers relied on: traces are
    // not required to arrive pre-sorted through this overload.
    std::vector<VmRequest> vms = trace.vms;
    // Tie key: VM id, via the shared arrival order (cluster/vm.h).
    std::sort(vms.begin(), vms.end(), arrivalBefore);
    VectorTraceReader reader(trace.name, trace.duration_h, vms);
    return replay(reader, cluster);
}

MultiReplayResult
VmAllocator::replay(TraceReader &reader,
                    const MultiClusterSpec &cluster) const
{
    // All replay entry points funnel through this overload, so these
    // metrics count every simulated replay in the process.
    static obs::Counter &replays =
        obs::metrics().counter("allocator.replays");
    static obs::Counter &placements_total =
        obs::metrics().counter("allocator.placements");
    static obs::Counter &rejections_total =
        obs::metrics().counter("allocator.rejections");
    static obs::Counter &fallbacks_total =
        obs::metrics().counter("allocator.green_fallbacks");
    static obs::Counter &evictions_total =
        obs::metrics().counter("allocator.evictions");
    replays.inc();
    obs::TraceSpan span("allocator", "replay");
    span.arg("trace", reader.name()).arg("vms", reader.sizeHint());
    obs::ProfileScope prof("allocator.replay");

    GSKU_REQUIRE(cluster.baselines >= 0,
                 "baseline count must be non-negative");
    cluster.baseline_sku.validate();
    long total_servers = cluster.baselines;
    for (const GreenGroupSpec &group : cluster.greens) {
        GSKU_REQUIRE(group.count >= 0,
                     "green group counts must be non-negative");
        group.sku.validate();
        total_servers += group.count;
    }
    GSKU_REQUIRE(total_servers > 0, "cluster must contain servers");

    // Server layout: [0, n_base) baseline, then each green group's
    // contiguous range in preference order.
    struct GroupRange
    {
        std::size_t begin = 0;
        std::size_t end = 0;
    };
    const std::size_t n_base = static_cast<std::size_t>(cluster.baselines);
    std::vector<GroupRange> green_ranges;
    std::size_t cursor = n_base;
    for (const GreenGroupSpec &group : cluster.greens) {
        GroupRange range;
        range.begin = cursor;
        cursor += static_cast<std::size_t>(group.count);
        range.end = cursor;
        green_ranges.push_back(range);
    }

    std::vector<ServerState> servers(cursor);
    for (std::size_t i = 0; i < n_base; ++i) {
        servers[i].total_cores = cluster.baseline_sku.cores;
        servers[i].total_mem = cluster.baseline_sku.totalMemory().asGb();
    }
    for (std::size_t g = 0; g < cluster.greens.size(); ++g) {
        for (std::size_t i = green_ranges[g].begin;
             i < green_ranges[g].end; ++i) {
            servers[i].total_cores = cluster.greens[g].sku.cores;
            servers[i].total_mem =
                cluster.greens[g].sku.totalMemory().asGb();
        }
    }

    // Per-group free-capacity indexes (O(log n) placement). FirstFit
    // ranks by server id, which the capacity ordering cannot serve, so
    // it stays on the linear scan.
    const bool indexed = options_.use_placement_index &&
                         options_.policy != PlacementPolicy::FirstFit;
    std::vector<std::size_t> group_of(servers.size(), 0);
    std::vector<double> group_cores(1 + cluster.greens.size(), 0.0);
    std::vector<double> group_mem(1 + cluster.greens.size(), 0.0);
    group_cores[0] = static_cast<double>(cluster.baseline_sku.cores);
    group_mem[0] = cluster.baseline_sku.totalMemory().asGb();
    for (std::size_t g = 0; g < cluster.greens.size(); ++g) {
        group_cores[1 + g] =
            static_cast<double>(cluster.greens[g].sku.cores);
        group_mem[1 + g] = cluster.greens[g].sku.totalMemory().asGb();
        for (std::size_t i = green_ranges[g].begin;
             i < green_ranges[g].end; ++i) {
            group_of[i] = 1 + g;
        }
    }
    std::vector<GroupIndex> index(1 + cluster.greens.size());
    if (indexed) {
        for (std::size_t i = 0; i < servers.size(); ++i) {
            index[group_of[i]].empty.insert(i);
        }
    }
    auto index_erase = [&](std::size_t id) {
        if (!indexed) {
            return;
        }
        ServerState &s = servers[id];
        GroupIndex &gi = index[group_of[id]];
        if (s.vm_count == 0) {
            gi.empty.erase(id);
        } else if (!s.dedicated) {
            gi.nonempty.erase({s.index_key, id});
        }
    };
    auto index_insert = [&](std::size_t id) {
        if (!indexed) {
            return;
        }
        ServerState &s = servers[id];
        GroupIndex &gi = index[group_of[id]];
        if (s.vm_count == 0) {
            gi.empty.insert(id);
        } else if (!s.dedicated) {
            s.index_key = s.freeCores();
            gi.nonempty.insert({s.index_key, id});
        }
    };
    auto pick = [&](std::size_t group, std::size_t begin, std::size_t end,
                    double cores, double mem, bool need_empty) {
        if (indexed) {
            return pickServerIndexed(servers, index[group], cores, mem,
                                     need_empty, group_cores[group],
                                     group_mem[group], options_.policy);
        }
        return pickServer(servers, begin, end, cores, mem, need_empty,
                          options_.policy);
    };

    std::priority_queue<Departure, std::vector<Departure>,
                        std::greater<Departure>>
        departures;
    LiveVmTable live;

    // Conservation audit: the per-server accounting must always agree
    // with the ledger of live placements — cores and memory are neither
    // created nor destroyed by placement and release.
    double ledger_cores = 0.0;
    double ledger_mem = 0.0;
    auto audit_conservation = [&]() {
        if (!contracts::auditEnabled()) {
            return;
        }
        double used_cores = 0.0;
        double used_mem = 0.0;
        for (const ServerState &s : servers) {
            used_cores += s.used_cores;
            used_mem += s.used_mem;
        }
        GSKU_AUDIT(std::abs(used_cores - ledger_cores) < 1e-6,
                   "allocated cores leaked or were double-freed");
        GSKU_AUDIT(std::abs(used_mem - ledger_mem) < 1e-6,
                   "allocated memory leaked or was double-freed");
    };

    MultiReplayResult result;
    PackingAccumulator base_acc;
    std::vector<PackingAccumulator> green_accs(cluster.greens.size());
    double next_snapshot = options_.snapshot_interval_h;
    long base_placed = 0;
    std::vector<long> green_placed(cluster.greens.size(), 0);

    // Decision-ledger outcome, shared by both exit paths. The adoption
    // fingerprint ties this replay to the table(s) it packed under.
    const char *first_reject = "none";
    auto ledger_outcome = [&] {
        if (!obs::ledgerEnabled()) {
            return;
        }
        std::uint64_t fp = 1469598103934665603ULL;
        long greens_total = 0;
        for (const GreenGroupSpec &group : cluster.greens) {
            fp ^= group.adoption.fingerprint();
            fp *= 1099511628211ULL;
            greens_total += group.count;
        }
        char fp_hex[17];
        std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                      static_cast<unsigned long long>(fp));
        obs::LedgerEntry(obs::LedgerEvent::AllocatorOutcome)
            .field("trace", reader.name())
            .field("baselines", static_cast<std::int64_t>(n_base))
            .field("greens", static_cast<std::int64_t>(greens_total))
            .field("adoption_fp", fp_hex)
            .field("success", result.rejected == 0)
            .field("placed", static_cast<std::int64_t>(result.placed))
            .field("rejected", static_cast<std::int64_t>(result.rejected))
            .field("green_placed",
                   static_cast<std::int64_t>(result.green_placed))
            .field("green_fallbacks",
                   static_cast<std::int64_t>(result.green_fallbacks))
            .field("first_reject", first_reject);
    };

    auto snapshot_all = [&]() {
        audit_conservation();
        base_acc.sample(servers, 0, n_base);
        for (std::size_t g = 0; g < green_accs.size(); ++g) {
            green_accs[g].sample(servers, green_ranges[g].begin,
                                 green_ranges[g].end);
        }
    };

    long released = 0;
    auto release = [&](const Departure &dep) {
        ++released;
        GSKU_EXPECT(dep.slot < live.occupied.size() &&
                        live.occupied[dep.slot],
                    "departure for unknown VM");
        const std::size_t server_id = live.server[dep.slot];
        ServerState &s = servers[server_id];
        index_erase(server_id);
        s.used_cores -= live.cores[dep.slot];
        s.used_mem -= live.mem[dep.slot];
        s.touched_mem -= live.touched[dep.slot];
        s.vm_count -= 1;
        s.dedicated = false;
        ledger_cores -= live.cores[dep.slot];
        ledger_mem -= live.mem[dep.slot];
        GSKU_INVARIANT(s.used_cores >= -1e-6 && s.used_mem >= -1e-6 &&
                           s.vm_count >= 0,
                       "server resource accounting went negative");
        index_insert(server_id);
        live.release(dep.slot);
    };

    std::uint64_t events_seen = 0;
    VmRequest vm;
    while (reader.next(&vm)) {
        ++events_seen;
        // One logical-clock unit per arrival event: the telemetry
        // sampler snapshots the registry every N units at serial
        // points (obs/timeseries.h), keeping tsdb output independent
        // of wall speed and thread count.
        obs::telemetryTick();
        while (!departures.empty() &&
               departures.top().time <= vm.arrival_h) {
            const Departure dep = departures.top();
            while (next_snapshot <= dep.time) {
                snapshot_all();
                next_snapshot += options_.snapshot_interval_h;
            }
            departures.pop();
            release(dep);
        }
        while (next_snapshot <= vm.arrival_h) {
            snapshot_all();
            next_snapshot += options_.snapshot_interval_h;
        }

        std::optional<std::size_t> target;
        int placed_group = -1;      // -1 = baseline.
        double cores = static_cast<double>(vm.cores);
        double mem = vm.memory_gb;

        if (vm.full_node) {
            // Dedicated baseline server (Sec. V): must be empty.
            target = pick(0, 0, n_base, cores, mem, /*need_empty=*/true);
        } else {
            bool any_adopts = false;
            for (std::size_t g = 0; g < cluster.greens.size(); ++g) {
                const AdoptionDecision decision =
                    cluster.greens[g].adoption.get(vm.app_index,
                                                   vm.origin_generation);
                if (!decision.adopt) {
                    continue;
                }
                any_adopts = true;
                if (cluster.greens[g].count == 0) {
                    continue;
                }
                // Fractional core allocation: the paper multiplies the
                // VM's core count by the scaling factor; rounding up
                // would systematically over-penalize small VMs.
                const double green_cores =
                    static_cast<double>(vm.cores) *
                    decision.scaling_factor;
                const double green_mem =
                    vm.memory_gb * decision.scaling_factor;
                target = pick(1 + g, green_ranges[g].begin,
                              green_ranges[g].end, green_cores,
                              green_mem, false);
                if (target) {
                    placed_group = static_cast<int>(g);
                    cores = green_cores;
                    mem = green_mem;
                    break;
                }
            }
            if (!target && any_adopts) {
                ++result.green_fallbacks;
            }
            if (!target) {
                target = pick(0, 0, n_base, cores, mem, false);
            }
        }

        if (!target) {
            ++result.rejected;
            if (result.rejected == 1) {
                // A full-node VM needs an *empty* baseline server; any
                // other VM is rejected only when no server of any kind
                // has capacity left.
                first_reject = vm.full_node
                                   ? "full_node_needs_empty_baseline"
                                   : "no_capacity";
            }
            if (options_.stop_on_reject) {
                result.greens.resize(cluster.greens.size());
                ledger_outcome();
                // Work units accumulate locally and post once per
                // replay (the DES discipline): per-event shared
                // atomics would contend across pool threads.
                obs::profileWork(events_seen);
                obs::profileWork(
                    "placements",
                    static_cast<std::uint64_t>(result.placed) +
                        static_cast<std::uint64_t>(result.rejected));
                placements_total.inc(
                    static_cast<std::uint64_t>(result.placed));
                rejections_total.inc(
                    static_cast<std::uint64_t>(result.rejected));
                fallbacks_total.inc(
                    static_cast<std::uint64_t>(result.green_fallbacks));
                evictions_total.inc(
                    static_cast<std::uint64_t>(released));
                return result;
            }
            continue;
        }

        ServerState &s = servers[*target];
        index_erase(*target);
        const double touched = vm.memory_gb * vm.max_mem_touch_fraction;
        s.used_cores += cores;
        s.used_mem += mem;
        s.touched_mem += touched;
        s.max_touched = std::max(s.max_touched, s.touched_mem);
        s.vm_count += 1;
        s.ever_used = true;
        s.dedicated = vm.full_node;
        ledger_cores += cores;
        ledger_mem += mem;
        GSKU_INVARIANT(s.used_cores <= s.total_cores + 1e-6 &&
                           s.used_mem <= s.total_mem + 1e-6,
                       "placement oversubscribed a server");
        index_insert(*target);

        const std::uint32_t slot =
            live.acquire(*target, cores, mem, touched);
        departures.push(Departure{vm.departure_h, slot});

        ++result.placed;
        if (placed_group >= 0) {
            ++green_placed[placed_group];
            ++result.green_placed;
        } else {
            ++base_placed;
        }
    }

    // Drain remaining departures for final snapshots. By this point the
    // stream is exhausted, so even inferred (legacy CSV) durations are
    // final.
    const double duration_h = reader.durationH();
    while (!departures.empty()) {
        const Departure dep = departures.top();
        if (dep.time > duration_h) {
            break;
        }
        while (next_snapshot <= dep.time) {
            snapshot_all();
            next_snapshot += options_.snapshot_interval_h;
        }
        departures.pop();
        release(dep);
    }

    audit_conservation();
    result.success = result.rejected == 0;
    result.baseline =
        finishGroup(servers, 0, n_base, base_acc, base_placed);
    for (std::size_t g = 0; g < cluster.greens.size(); ++g) {
        result.greens.push_back(
            finishGroup(servers, green_ranges[g].begin,
                        green_ranges[g].end, green_accs[g],
                        green_placed[g]));
    }
    GSKU_ENSURE(static_cast<std::uint64_t>(result.placed) +
                        static_cast<std::uint64_t>(result.rejected) <=
                    events_seen,
                "placement outcomes exceed the trace size");
    GSKU_ENSURE(result.green_placed <= result.placed,
                "green placements exceed total placements");
    result.baseline.checkInvariants();
    for (const GroupMetrics &g : result.greens) {
        g.checkInvariants();
    }
    ledger_outcome();
    obs::profileWork(events_seen);
    obs::profileWork("placements",
                     static_cast<std::uint64_t>(result.placed) +
                         static_cast<std::uint64_t>(result.rejected));
    placements_total.inc(static_cast<std::uint64_t>(result.placed));
    rejections_total.inc(static_cast<std::uint64_t>(result.rejected));
    fallbacks_total.inc(
        static_cast<std::uint64_t>(result.green_fallbacks));
    evictions_total.inc(static_cast<std::uint64_t>(released));
    return result;
}

} // namespace gsku::cluster
