#include "cluster/trace_stats.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "cluster/trace_binary.h"
#include "common/error.h"

namespace gsku::cluster {

double
TraceStats::classMixDeviation() const
{
    double worst = 0.0;
    for (const perf::AppClass cls :
         {perf::AppClass::BigData, perf::AppClass::WebApp,
          perf::AppClass::RealTimeComms, perf::AppClass::MlInference,
          perf::AppClass::WebProxy, perf::AppClass::DevOps}) {
        const auto it = class_shares.find(cls);
        const double share = it == class_shares.end() ? 0.0 : it->second;
        // Table III shares sum to 0.99; renormalize for comparison.
        const double expected = perf::fleetCoreHourShare(cls) / 0.99;
        worst = std::max(worst, std::abs(share - expected));
    }
    return worst;
}

namespace {

/**
 * Shared per-VM accumulation for the batch and streaming overloads.
 * Counts are kept in flat arrays (one slot per catalog app, three
 * generation slots); the share maps are only built at finish().
 */
class TraceStatsAccumulator
{
  public:
    TraceStatsAccumulator(const std::string &name, double duration_h)
        : duration_h_(duration_h),
          app_counts_(perf::AppCatalog::all().size(), 0)
    {
        GSKU_REQUIRE(duration_h > 0.0,
                     "trace duration must be positive");
        stats_.trace_name = name;
    }

    void
    add(const VmRequest &vm)
    {
        stats_.cores.add(vm.cores);
        stats_.memory_gb.add(vm.memory_gb);
        stats_.lifetime_h.add(vm.lifetimeHours());
        stats_.touch_fraction.add(vm.max_mem_touch_fraction);
        stats_.full_node_vms += vm.full_node ? 1 : 0;
        GSKU_REQUIRE(vm.app_index < app_counts_.size(),
                     "VM app index outside the catalog");
        ++app_counts_[vm.app_index];
        ++gen_counts_[generationSlot(vm.origin_generation)];
        // Clip lifetimes at the trace end for the population estimate.
        vm_hours_ += std::min(vm.departure_h, duration_h_) -
                     vm.arrival_h;
        ++stats_.vm_count;
    }

    TraceStats
    finish(const PeakDemand &peak)
    {
        GSKU_REQUIRE(stats_.vm_count > 0,
                     "cannot summarize an empty trace");
        const double n = static_cast<double>(stats_.vm_count);
        const auto &all = perf::AppCatalog::all();
        std::map<perf::AppClass, std::uint64_t> class_counts;
        for (std::size_t i = 0; i < app_counts_.size(); ++i) {
            if (app_counts_[i] > 0) {
                class_counts[all[i].cls] += app_counts_[i];
            }
        }
        for (const auto &[cls, count] : class_counts) {
            stats_.class_shares[cls] =
                static_cast<double>(count) / n;
        }
        static const carbon::Generation generations[] = {
            carbon::Generation::Gen1,
            carbon::Generation::Gen2,
            carbon::Generation::Gen3,
        };
        for (std::size_t g = 0; g < 3; ++g) {
            if (gen_counts_[g] > 0) {
                stats_.generation_shares[generations[g]] =
                    static_cast<double>(gen_counts_[g]) / n;
            }
        }
        stats_.peak_concurrent_cores = static_cast<int>(peak.cores);
        stats_.peak_concurrent_memory_gb = peak.memory_gb;
        stats_.mean_population = vm_hours_ / duration_h_;
        return std::move(stats_);
    }

  private:
    static std::size_t
    generationSlot(carbon::Generation gen)
    {
        switch (gen) {
          case carbon::Generation::Gen1: return 0;
          case carbon::Generation::Gen2: return 1;
          case carbon::Generation::Gen3: return 2;
          case carbon::Generation::GreenSku:
            break;
        }
        GSKU_REQUIRE(false, "VM origin generation must be Gen1/2/3");
        GSKU_ASSERT(false, "unreachable");
    }

    TraceStats stats_;
    double duration_h_ = 0.0;
    double vm_hours_ = 0.0;
    std::vector<std::uint64_t> app_counts_;
    std::uint64_t gen_counts_[3] = {0, 0, 0};
};

} // namespace

TraceStats
summarizeTrace(const VmTrace &trace)
{
    GSKU_REQUIRE(!trace.vms.empty(), "cannot summarize an empty trace");
    TraceStatsAccumulator acc(trace.name, trace.duration_h);
    for (const VmRequest &vm : trace.vms) {
        acc.add(vm);
    }
    // peakConcurrentDemand sorts internally, so unsorted traces are fine
    // through this overload.
    return acc.finish(trace.peakConcurrentDemand());
}

TraceStats
summarizeTrace(TraceReader &reader)
{
    GSKU_REQUIRE(reader.durationKnown(),
                 "streaming summary needs the trace duration up front "
                 "(legacy CSV without the metadata line: use "
                 "readTraceCsv + the batch overload)");
    reader.reset();
    TraceStatsAccumulator acc(reader.name(), reader.durationH());
    ConcurrentDemandSweep sweep(
        reader.sizeHint() > 0
            ? static_cast<std::size_t>(reader.sizeHint()) / 64 + 16
            : 1024);
    VmRequest vm;
    while (reader.next(&vm)) {
        acc.add(vm);
        sweep.add(vm.arrival_h, vm.departure_h,
                  static_cast<double>(vm.cores), vm.memory_gb);
    }
    return acc.finish(sweep.finish());
}

} // namespace gsku::cluster
