#include "cluster/trace_stats.h"

#include <algorithm>

#include "common/error.h"

namespace gsku::cluster {

double
TraceStats::classMixDeviation() const
{
    double worst = 0.0;
    for (const perf::AppClass cls :
         {perf::AppClass::BigData, perf::AppClass::WebApp,
          perf::AppClass::RealTimeComms, perf::AppClass::MlInference,
          perf::AppClass::WebProxy, perf::AppClass::DevOps}) {
        const auto it = class_shares.find(cls);
        const double share = it == class_shares.end() ? 0.0 : it->second;
        // Table III shares sum to 0.99; renormalize for comparison.
        const double expected = perf::fleetCoreHourShare(cls) / 0.99;
        worst = std::max(worst, std::abs(share - expected));
    }
    return worst;
}

TraceStats
summarizeTrace(const VmTrace &trace)
{
    GSKU_REQUIRE(!trace.vms.empty(), "cannot summarize an empty trace");
    GSKU_REQUIRE(trace.duration_h > 0.0,
                 "trace duration must be positive");

    TraceStats stats;
    stats.trace_name = trace.name;
    stats.vm_count = trace.vms.size();

    std::map<perf::AppClass, int> class_counts;
    std::map<carbon::Generation, int> gen_counts;
    double vm_hours = 0.0;
    for (const VmRequest &vm : trace.vms) {
        stats.cores.add(vm.cores);
        stats.memory_gb.add(vm.memory_gb);
        stats.lifetime_h.add(vm.lifetimeHours());
        stats.touch_fraction.add(vm.max_mem_touch_fraction);
        stats.full_node_vms += vm.full_node ? 1 : 0;
        class_counts[perf::AppCatalog::all().at(vm.app_index).cls]++;
        gen_counts[vm.origin_generation]++;
        // Clip lifetimes at the trace end for the population estimate.
        vm_hours += std::min(vm.departure_h, trace.duration_h) -
                    vm.arrival_h;
    }

    const double n = static_cast<double>(stats.vm_count);
    for (const auto &[cls, count] : class_counts) {
        stats.class_shares[cls] = count / n;
    }
    for (const auto &[gen, count] : gen_counts) {
        stats.generation_shares[gen] = count / n;
    }
    stats.peak_concurrent_cores = trace.peakConcurrentCores();
    stats.peak_concurrent_memory_gb = trace.peakConcurrentMemoryGb();
    stats.mean_population = vm_hours / trace.duration_h;
    return stats;
}

} // namespace gsku::cluster
