/**
 * @file
 * GSF's VM allocation and packing component (§IV-C), implemented as an
 * event-driven simulator of Azure's production placement rules (§V):
 *
 *  1. best-fit placement to reduce resource fragmentation,
 *  2. preference for non-empty servers,
 *  3. placement constraints: full-node VMs take a dedicated baseline
 *     server; a VM may run on the GreenSKU only when its application
 *     adopts it, with its cores and memory inflated by the scaling
 *     factor; when GreenSKU capacity runs out, an adopting VM falls back
 *     to a baseline server (the §V growth-buffer fungibility rule).
 *
 * The replay reports packing densities (Fig. 9) and per-server maximum
 * touched-memory utilization (Fig. 10).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "carbon/sku.h"
#include "cluster/vm.h"

namespace gsku::cluster {

class TraceReader;

/** Whether VMs of one (application, origin-generation) pair move to the
 *  GreenSKU, and at what resource inflation. */
struct AdoptionDecision
{
    bool adopt = false;
    double scaling_factor = 1.0;
};

/** Adoption decisions for every (app, origin generation) pair. */
class AdoptionTable
{
  public:
    /** Builds a table where no VM adopts (the all-baseline cluster). */
    AdoptionTable();

    /** Table sized for the app catalog; entries default to no-adopt. */
    static AdoptionTable none();

    void set(std::size_t app_index, carbon::Generation gen,
             AdoptionDecision decision);
    AdoptionDecision get(std::size_t app_index,
                         carbon::Generation gen) const;

    /** Fraction of catalog (app, gen) pairs that adopt. */
    double adoptionRate() const;

    /**
     * FNV-1a hash over every (adopt, scaling factor) entry: a compact
     * identity for this table in ledger events (sizing probes/results
     * reference the table they sized under without replaying its 57
     * entries per line).
     */
    std::uint64_t fingerprint() const;

  private:
    // 3 origin generations (Gen1/2/3) per app.
    std::vector<AdoptionDecision> entries_;

    static std::size_t slot(std::size_t app_index, carbon::Generation gen);
};

/** The simulated cluster: counts of two homogeneous server groups. */
struct ClusterSpec
{
    carbon::ServerSku baseline_sku;
    carbon::ServerSku green_sku;
    int baselines = 0;
    int greens = 0;
};

/** One homogeneous GreenSKU group in a multi-SKU cluster. */
struct GreenGroupSpec
{
    carbon::ServerSku sku;
    int count = 0;

    /** Adoption decisions for this SKU (per-SKU carbon differs). */
    AdoptionTable adoption;
};

/**
 * A cluster with one baseline group and any number of GreenSKU groups.
 * Groups are in *preference order*: an adopting VM tries each group in
 * turn (first group whose table adopts it and has room) before falling
 * back to the baseline — callers list the lowest-carbon SKU first.
 */
struct MultiClusterSpec
{
    carbon::ServerSku baseline_sku;
    int baselines = 0;
    std::vector<GreenGroupSpec> greens;
};

/** Which feasible server a VM placement picks (rule 1 of §V). */
enum class PlacementPolicy
{
    BestFit,        ///< Minimize leftover cores (the production rule).
    FirstFit,       ///< First feasible server in index order.
    WorstFit,       ///< Maximize leftover cores (anti-consolidation).
};

std::string toString(PlacementPolicy policy);

/** Replay tuning knobs. */
struct ReplayOptions
{
    double snapshot_interval_h = 12.0;  ///< Packing-density sampling.
    bool stop_on_reject = true;         ///< Abort at first rejection.
    PlacementPolicy policy = PlacementPolicy::BestFit;

    /**
     * Place through the per-group free-capacity index (ordered by free
     * cores, tie-broken by server id) instead of the O(servers) linear
     * scan. Placements are bit-identical either way (the winner is the
     * lexicographic minimum of (emptiness, leftover cores, leftover
     * memory, server id) under both paths — asserted by
     * tests/cluster/allocator_index_test.cc); the index makes each
     * placement O(log servers). FirstFit always uses the scan: its
     * winner is ordered by server id, which the index cannot serve.
     */
    bool use_placement_index = true;
};

/** Packing metrics for one server group (baseline or green). */
struct GroupMetrics
{
    int servers = 0;
    long vms_placed = 0;

    /** Snapshot-averaged allocated/allocatable cores on non-empty
     *  servers (Fig. 9 solid lines). */
    double mean_core_packing = 0.0;

    /** Same for memory (Fig. 9 dashed lines). */
    double mean_mem_packing = 0.0;

    /**
     * Mean over servers of the lifetime-maximum touched-memory
     * utilization (Fig. 10): max over time of
     * sum(vm allocated memory x touched fraction) / server capacity.
     */
    double mean_max_mem_utilization = 0.0;

    /**
     * Contract check: counts non-negative and every packing/utilization
     * mean inside [0, 1]. VmAllocator ENSUREs this on every group it
     * reports; throws InternalError on violation.
     */
    void checkInvariants() const;
};

/** Outcome of replaying a trace against a cluster. */
struct ReplayResult
{
    bool success = false;       ///< True when no VM was rejected.
    long placed = 0;
    long rejected = 0;
    GroupMetrics baseline;
    GroupMetrics green;

    /** VMs that adopted and landed on a GreenSKU. */
    long green_placed = 0;

    /** Adopting VMs that fell back to a baseline server. */
    long green_fallbacks = 0;
};

/** Replay outcome for a multi-SKU cluster. */
struct MultiReplayResult
{
    bool success = false;
    long placed = 0;
    long rejected = 0;
    GroupMetrics baseline;
    std::vector<GroupMetrics> greens;   ///< One per green group.
    long green_placed = 0;              ///< Across all green groups.
    long green_fallbacks = 0;
};

/** Event-driven VM placement simulator. */
class VmAllocator
{
  public:
    explicit VmAllocator(ReplayOptions options = ReplayOptions{});

    /**
     * Replay @p trace against @p cluster under @p adoption.
     * Deterministic: identical inputs give identical results.
     */
    ReplayResult replay(const VmTrace &trace, const ClusterSpec &cluster,
                        const AdoptionTable &adoption) const;

    /** Replay against a multi-GreenSKU cluster (see MultiClusterSpec). */
    MultiReplayResult replay(const VmTrace &trace,
                             const MultiClusterSpec &cluster) const;

    /**
     * Streaming replay: consumes VMs from @p reader in arrival order
     * without materializing the trace. Live-VM bookkeeping is a
     * struct-of-arrays slot table bounded by the *peak live* VM count,
     * so a 10M-event year replays in O(peak) memory. Bit-identical to
     * the materializing overloads on the same trace content (asserted
     * by tests/cluster/trace_binary_test.cc and the parity suite).
     */
    MultiReplayResult replay(TraceReader &reader,
                             const MultiClusterSpec &cluster) const;

    /** Streaming replay against a two-group cluster. */
    ReplayResult replay(TraceReader &reader, const ClusterSpec &cluster,
                        const AdoptionTable &adoption) const;

  private:
    ReplayOptions options_;
};

} // namespace gsku::cluster
