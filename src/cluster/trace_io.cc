#include "cluster/trace_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/csv.h"
#include "common/error.h"
#include "common/parse.h"
#include "perf/app.h"

namespace gsku::cluster {

namespace {

const char *const kHeader[] = {
    "id",         "arrival_h", "departure_h",
    "cores",      "memory_gb", "generation",
    "full_node",  "app",       "max_mem_touch_fraction",
};
constexpr std::size_t kColumns = std::size(kHeader);

const char *const kMetaPrefix = "# gsku-trace duration_h_bits=";

std::string
generationName(carbon::Generation gen)
{
    return carbon::toString(gen);
}

carbon::Generation
parseGeneration(const std::string &text, int line)
{
    if (text == "Gen1") {
        return carbon::Generation::Gen1;
    }
    if (text == "Gen2") {
        return carbon::Generation::Gen2;
    }
    if (text == "Gen3") {
        return carbon::Generation::Gen3;
    }
    GSKU_REQUIRE(false, "line " + std::to_string(line) +
                            ": unknown generation '" + text + "'");
    GSKU_ASSERT(false, "unreachable");
}

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    // The trace format never quotes (names contain no commas).
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream in(line);
    while (std::getline(in, cell, ',')) {
        cells.push_back(cell);
    }
    if (!line.empty() && line.back() == ',') {
        cells.emplace_back();
    }
    return cells;
}

std::string
doubleBitsHex(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i) {
        out[15 - i] = digits[(bits >> (i * 4)) & 0xfu];
    }
    return out;
}

bool
parseDoubleBitsHex(const std::string &hex, double *out)
{
    if (hex.size() != 16) {
        return false;
    }
    std::uint64_t bits = 0;
    for (char c : hex) {
        int digit;
        if (c >= '0' && c <= '9') {
            digit = c - '0';
        } else if (c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
        } else {
            return false;
        }
        bits = (bits << 4) | static_cast<std::uint64_t>(digit);
    }
    std::memcpy(out, &bits, sizeof(bits));
    return true;
}

} // namespace

void
writeTraceCsv(const VmTrace &trace, std::ostream &out)
{
    out << kMetaPrefix << doubleBitsHex(trace.duration_h)
        << " name=" << trace.name << '\n';
    CsvWriter csv(out);
    csv.writeHeader(
        std::vector<std::string>(kHeader, kHeader + kColumns));
    for (const VmRequest &vm : trace.vms) {
        const auto &app = perf::AppCatalog::all().at(vm.app_index);
        std::ostringstream arrival;
        std::ostringstream departure;
        std::ostringstream touch;
        arrival.precision(17);
        departure.precision(17);
        touch.precision(17);
        arrival << vm.arrival_h;
        departure << vm.departure_h;
        touch << vm.max_mem_touch_fraction;
        csv.writeRow(std::vector<std::string>{
            std::to_string(vm.id), arrival.str(), departure.str(),
            std::to_string(vm.cores), std::to_string(vm.memory_gb),
            generationName(vm.origin_generation),
            vm.full_node ? "1" : "0", app.name, touch.str()});
    }
}

CsvTraceMeta
readTraceCsvPrologue(std::istream &in, int *line_no)
{
    CsvTraceMeta meta;
    std::string line;
    GSKU_REQUIRE(std::getline(in, line), "trace CSV is empty");
    ++*line_no;
    if (!line.empty() && line.front() == '#') {
        const std::string prefix = kMetaPrefix;
        GSKU_REQUIRE(line.size() > prefix.size() + 16 &&
                         line.compare(0, prefix.size(), prefix) == 0,
                     "line 1: unrecognized trace metadata comment");
        const std::string bits = line.substr(prefix.size(), 16);
        GSKU_REQUIRE(parseDoubleBitsHex(bits, &meta.duration_h),
                     "line 1: malformed duration_h_bits '" + bits + "'");
        const std::string name_tag = " name=";
        const std::size_t name_at = prefix.size() + 16;
        GSKU_REQUIRE(line.compare(name_at, name_tag.size(), name_tag) ==
                         0,
                     "line 1: trace metadata is missing 'name='");
        meta.name = line.substr(name_at + name_tag.size());
        GSKU_REQUIRE(meta.duration_h > 0.0,
                     "line 1: trace duration must be positive");
        meta.present = true;
        GSKU_REQUIRE(std::getline(in, line),
                     "trace CSV ends after the metadata line");
        ++*line_no;
    }
    const auto header = splitCsvLine(line);
    GSKU_REQUIRE(header.size() == kColumns,
                 "trace CSV header has " + std::to_string(header.size()) +
                     " columns, expected " + std::to_string(kColumns));
    for (std::size_t i = 0; i < kColumns; ++i) {
        GSKU_REQUIRE(header[i] == kHeader[i],
                     "trace CSV header column " + std::to_string(i + 1) +
                         " is '" + header[i] + "', expected '" +
                         kHeader[i] + "'");
    }
    return meta;
}

VmRequest
parseTraceCsvRow(const std::string &line, int line_no,
                 const std::string &source)
{
    const auto cells = splitCsvLine(line);
    GSKU_REQUIRE(cells.size() == kColumns,
                 "line " + std::to_string(line_no) + ": expected " +
                     std::to_string(kColumns) + " cells, got " +
                     std::to_string(cells.size()));
    VmRequest vm;
    auto ctx = [&](const char *field) {
        return ParseContext{source, line_no, field};
    };
    vm.id = parseU64(cells[0], ctx("id"));
    vm.arrival_h = parseDouble(cells[1], ctx("arrival_h"));
    vm.departure_h = parseDouble(cells[2], ctx("departure_h"));
    vm.cores = parseInt(cells[3], ctx("cores"));
    vm.memory_gb = parseDouble(cells[4], ctx("memory_gb"));
    vm.max_mem_touch_fraction =
        parseDouble(cells[8], ctx("max_mem_touch_fraction"));
    vm.origin_generation = parseGeneration(cells[5], line_no);
    GSKU_REQUIRE(cells[6] == "0" || cells[6] == "1",
                 "line " + std::to_string(line_no) +
                     ": full_node must be 0 or 1");
    vm.full_node = cells[6] == "1";

    const auto &apps = perf::AppCatalog::all();
    bool found = false;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        if (apps[i].name == cells[7]) {
            vm.app_index = i;
            found = true;
            break;
        }
    }
    GSKU_REQUIRE(found, "line " + std::to_string(line_no) +
                            ": unknown application '" + cells[7] + "'");
    GSKU_REQUIRE(vm.departure_h > vm.arrival_h,
                 "line " + std::to_string(line_no) +
                     ": departure must follow arrival");
    GSKU_REQUIRE(vm.cores > 0 && vm.memory_gb > 0.0,
                 "line " + std::to_string(line_no) +
                     ": resources must be positive");
    GSKU_REQUIRE(vm.max_mem_touch_fraction >= 0.0 &&
                     vm.max_mem_touch_fraction <= 1.0,
                 "line " + std::to_string(line_no) +
                     ": touch fraction must be in [0, 1]");
    return vm;
}

VmTrace
readTraceCsv(std::istream &in, const std::string &name)
{
    VmTrace trace;
    trace.name = name;

    int line_no = 0;
    const CsvTraceMeta meta = readTraceCsvPrologue(in, &line_no);
    if (meta.present) {
        trace.name = meta.name;
    }

    std::string line;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) {
            continue;
        }
        trace.vms.push_back(parseTraceCsvRow(line, line_no, trace.name));
    }
    GSKU_REQUIRE(!trace.vms.empty(), "trace CSV contains no VMs");

    // Tie key: VM id, via the shared arrival order (cluster/vm.h).
    std::sort(trace.vms.begin(), trace.vms.end(), arrivalBefore);
    if (meta.present) {
        trace.duration_h = meta.duration_h;
    } else {
        double end = 0.0;
        for (const VmRequest &vm : trace.vms) {
            end = std::max(end, vm.arrival_h);
        }
        trace.duration_h = end + 1e-6;
    }
    return trace;
}

} // namespace gsku::cluster
