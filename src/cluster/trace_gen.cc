#include "cluster/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "cluster/trace_binary.h"
#include "common/distributions.h"
#include "common/error.h"
#include "obs/profile.h"
#include "obs/timeseries.h"
#include "perf/app.h"

namespace gsku::cluster {

TraceGenerator::TraceGenerator(TraceGenParams params)
    : params_(std::move(params))
{
    GSKU_REQUIRE(params_.duration_h > 0.0, "trace duration must be positive");
    GSKU_REQUIRE(params_.target_concurrent_vms > 0.0,
                 "target VM population must be positive");
    GSKU_REQUIRE(params_.mean_lifetime_h > 0.0,
                 "mean lifetime must be positive");
    GSKU_REQUIRE(params_.core_sizes.size() == params_.core_weights.size(),
                 "core size/weight vectors must align");
    GSKU_REQUIRE(params_.mem_per_core.size() == params_.mem_weights.size(),
                 "memory size/weight vectors must align");
    GSKU_REQUIRE(params_.generation_weights.size() == 3,
                 "need weights for Gen1/2/3");
    GSKU_REQUIRE(params_.full_node_fraction >= 0.0 &&
                     params_.full_node_fraction < 1.0,
                 "full-node fraction must be in [0, 1)");
    GSKU_REQUIRE(params_.touch_mean > 0.0 && params_.touch_mean < 1.0,
                 "touch mean must be in (0, 1)");
}

namespace {

/** Sample an application index per §V: class by core-hour share, then
 *  uniform within the class. */
std::size_t
sampleApp(Rng &rng, const Discrete &class_dist)
{
    using perf::AppClass;
    static const AppClass classes[] = {
        AppClass::BigData,     AppClass::WebApp,
        AppClass::RealTimeComms, AppClass::MlInference,
        AppClass::WebProxy,    AppClass::DevOps,
    };
    const AppClass cls = classes[class_dist.sample(rng)];

    // Map back to indices in the flat catalog.
    std::vector<std::size_t> members;
    const auto &all = perf::AppCatalog::all();
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (all[i].cls == cls) {
            members.push_back(i);
        }
    }
    GSKU_ASSERT(!members.empty(), "application class has no members");
    return members[rng.uniformInt(members.size())];
}

} // namespace

std::uint64_t
TraceGenerator::generateStream(
    std::uint64_t seed,
    const std::function<void(const VmRequest &)> &sink) const
{
    obs::ProfileScope prof("trace_gen.generate");
    Rng rng(seed);

    // Per-trace diversity: load level, memory tilt, lifetime scale.
    const double load_mult =
        1.0 + params_.load_jitter * (2.0 * rng.uniform() - 1.0);
    const double mem_tilt =
        1.0 + params_.memory_jitter * (2.0 * rng.uniform() - 1.0);
    const double lifetime_mult = 0.7 + 0.6 * rng.uniform();

    const double mean_lifetime = params_.mean_lifetime_h * lifetime_mult;
    const double concurrent = params_.target_concurrent_vms * load_mult;
    // Little's law: arrival rate sustaining the target population.
    const double arrival_rate = concurrent / mean_lifetime;

    const Exponential interarrival(arrival_rate);
    // Log-normal with the requested mean: mean = exp(mu + sigma^2/2).
    const double sigma = params_.lifetime_sigma;
    const LogNormal lifetime(std::log(mean_lifetime) - 0.5 * sigma * sigma,
                             sigma);

    // Tilt memory weights toward heavier buckets for memory-heavy traces.
    std::vector<double> mem_weights = params_.mem_weights;
    for (std::size_t i = 0; i < mem_weights.size(); ++i) {
        const double tilt = static_cast<double>(i) -
                            static_cast<double>(mem_weights.size() - 1) / 2.0;
        mem_weights[i] *= std::pow(mem_tilt, tilt);
    }

    const Discrete core_dist(params_.core_weights);
    const Discrete mem_dist(mem_weights);
    const Discrete gen_dist(params_.generation_weights);
    const Discrete class_dist({
        perf::fleetCoreHourShare(perf::AppClass::BigData),
        perf::fleetCoreHourShare(perf::AppClass::WebApp),
        perf::fleetCoreHourShare(perf::AppClass::RealTimeComms),
        perf::fleetCoreHourShare(perf::AppClass::MlInference),
        perf::fleetCoreHourShare(perf::AppClass::WebProxy),
        perf::fleetCoreHourShare(perf::AppClass::DevOps),
    });

    static const carbon::Generation generations[] = {
        carbon::Generation::Gen1,
        carbon::Generation::Gen2,
        carbon::Generation::Gen3,
    };

    double t = 0.0;
    VmId next_id = 1;
    while (true) {
        t += interarrival.sample(rng);
        if (t >= params_.duration_h) {
            break;
        }
        VmRequest vm;
        vm.id = next_id++;
        vm.arrival_h = t;
        vm.origin_generation = generations[gen_dist.sample(rng)];
        vm.app_index = sampleApp(rng, class_dist);
        vm.full_node = rng.uniform() < params_.full_node_fraction;

        if (vm.full_node) {
            // Full-node VMs take a whole baseline server and live long.
            vm.cores = 80;
            vm.memory_gb = 768.0;
            vm.departure_h =
                t + std::max(lifetime.sample(rng), 3.0 * mean_lifetime);
        } else {
            vm.cores = params_.core_sizes[core_dist.sample(rng)];
            vm.memory_gb = static_cast<double>(vm.cores) *
                           params_.mem_per_core[mem_dist.sample(rng)];
            vm.departure_h = t + std::max(0.05, lifetime.sample(rng));
        }

        // Touched-memory fraction, clamped to (0.05, 1.0).
        const double touch =
            params_.touch_mean + params_.touch_spread * rng.normal();
        vm.max_mem_touch_fraction = std::clamp(touch, 0.05, 1.0);

        sink(vm);
        // One telemetry clock unit per generated record, so live runs
        // of bench_fleet sample during generation too.
        obs::telemetryTick();
    }
    GSKU_REQUIRE(next_id > 1,
                 "generated an empty trace; increase duration or load");
    // One work unit per generated record, posted once per stream (the
    // DES discipline — no shared atomics inside the loop).
    obs::profileWork(static_cast<std::uint64_t>(next_id - 1));
    return next_id - 1;
}

VmTrace
TraceGenerator::generate(std::uint64_t seed) const
{
    VmTrace trace;
    trace.name = "synthetic-" + std::to_string(seed);
    trace.duration_h = params_.duration_h;
    generateStream(seed, [&trace](const VmRequest &vm) {
        trace.vms.push_back(vm);
    });
    return trace;
}

std::uint64_t
TraceGenerator::generateToBinary(std::uint64_t seed,
                                 const std::string &path) const
{
    TraceBinaryWriter writer(path, "synthetic-" + std::to_string(seed),
                             params_.duration_h);
    generateStream(seed, [&writer](const VmRequest &vm) {
        writer.add(vm);
    });
    return writer.finish();
}

std::vector<VmTrace>
TraceGenerator::generateFamily(int count, std::uint64_t base_seed) const
{
    GSKU_REQUIRE(count > 0, "family must contain at least one trace");
    Rng seeder(base_seed);
    std::vector<VmTrace> traces;
    traces.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        traces.push_back(generate(seeder()));
        traces.back().name =
            "cluster-" + std::to_string(i + 1);
    }
    return traces;
}

} // namespace gsku::cluster
