#include "cluster/demand.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.h"

namespace gsku::cluster {

ConcurrentDemandSweep::ConcurrentDemandSweep(std::size_t reserve_hint)
{
    const std::size_t reserve = std::max<std::size_t>(reserve_hint, 16);
    dep_time_.reserve(reserve);
    dep_cores_.reserve(reserve);
    dep_mem_.reserve(reserve);
}

void
ConcurrentDemandSweep::heapPush(double time, double cores, double mem)
{
    dep_time_.push_back(time);
    dep_cores_.push_back(cores);
    dep_mem_.push_back(mem);
    std::size_t i = dep_time_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (dep_time_[parent] <= dep_time_[i]) {
            break;
        }
        std::swap(dep_time_[parent], dep_time_[i]);
        std::swap(dep_cores_[parent], dep_cores_[i]);
        std::swap(dep_mem_[parent], dep_mem_[i]);
        i = parent;
    }
}

void
ConcurrentDemandSweep::heapPop()
{
    const std::size_t last = dep_time_.size() - 1;
    dep_time_[0] = dep_time_[last];
    dep_cores_[0] = dep_cores_[last];
    dep_mem_[0] = dep_mem_[last];
    dep_time_.pop_back();
    dep_cores_.pop_back();
    dep_mem_.pop_back();
    std::size_t i = 0;
    const std::size_t n = dep_time_.size();
    while (true) {
        const std::size_t left = 2 * i + 1;
        const std::size_t right = left + 1;
        std::size_t smallest = i;
        if (left < n && dep_time_[left] < dep_time_[smallest]) {
            smallest = left;
        }
        if (right < n && dep_time_[right] < dep_time_[smallest]) {
            smallest = right;
        }
        if (smallest == i) {
            break;
        }
        std::swap(dep_time_[smallest], dep_time_[i]);
        std::swap(dep_cores_[smallest], dep_cores_[i]);
        std::swap(dep_mem_[smallest], dep_mem_[i]);
        i = smallest;
    }
}

void
ConcurrentDemandSweep::flushGroup()
{
    if (!group_open_) {
        return;
    }
    cur_cores_ += group_cores_;
    cur_mem_ += group_mem_;
    cur_live_ += group_live_;
    peak_.cores = std::max(peak_.cores, cur_cores_);
    peak_.memory_gb = std::max(peak_.memory_gb, cur_mem_);
    if (cur_live_ > 0) {
        peak_.max_live_vms = std::max(
            peak_.max_live_vms, static_cast<std::uint64_t>(cur_live_));
    }
    group_open_ = false;
}

void
ConcurrentDemandSweep::route(double time, double d_cores, double d_mem,
                             long d_live)
{
    if (group_open_ && time != group_time_) {
        flushGroup();
    }
    if (!group_open_) {
        group_time_ = time;
        group_cores_ = 0.0;
        group_mem_ = 0.0;
        group_live_ = 0;
        group_open_ = true;
    }
    group_cores_ += d_cores;
    group_mem_ += d_mem;
    group_live_ += d_live;
}

void
ConcurrentDemandSweep::add(double arrival_h, double departure_h,
                           double cores, double memory_gb)
{
    GSKU_REQUIRE(!finished_, "sweep already finished");
    GSKU_REQUIRE(!any_ || arrival_h >= prev_arrival_,
                 "VMs must be added in arrival order");
    GSKU_REQUIRE(departure_h > arrival_h,
                 "departure must follow arrival");
    prev_arrival_ = arrival_h;
    any_ = true;

    while (!dep_time_.empty() && dep_time_.front() <= arrival_h) {
        route(dep_time_.front(), -dep_cores_.front(), -dep_mem_.front(),
              -1);
        heapPop();
    }
    route(arrival_h, cores, memory_gb, 1);
    heapPush(departure_h, cores, memory_gb);
}

PeakDemand
ConcurrentDemandSweep::finish()
{
    GSKU_REQUIRE(!finished_, "sweep already finished");
    finished_ = true;
    while (!dep_time_.empty()) {
        route(dep_time_.front(), -dep_cores_.front(), -dep_mem_.front(),
              -1);
        heapPop();
    }
    flushGroup();
    return peak_;
}

GrowthBufferSizer::GrowthBufferSizer(DemandParams params) : params_(params)
{
    GSKU_REQUIRE(params_.mean_cores > 0.0, "mean demand must be positive");
    GSKU_REQUIRE(params_.weekly_sigma >= 0.0,
                 "volatility must be non-negative");
    GSKU_REQUIRE(params_.lead_time_weeks > 0.0,
                 "lead time must be positive");
    GSKU_REQUIRE(params_.service_level > 0.5 &&
                     params_.service_level < 1.0,
                 "service level must be in (0.5, 1)");
}

double
GrowthBufferSizer::normalQuantile(double p)
{
    GSKU_REQUIRE(p > 0.0 && p < 1.0, "quantile p must be in (0, 1)");
    // Acklam's rational approximation (|relative error| < 1.15e-9).
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};
    const double p_low = 0.02425;
    double q;
    double r;
    if (p < p_low) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                    q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= 1.0 - p_low) {
        q = p - 0.5;
        r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) *
                    r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) *
                    r +
                1.0);
    }
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double
GrowthBufferSizer::bufferCores() const
{
    const double z = normalQuantile(params_.service_level);
    const double mean_growth = params_.mean_cores *
                               params_.weekly_growth *
                               params_.lead_time_weeks;
    const double sigma = params_.mean_cores * params_.weekly_sigma *
                         std::sqrt(params_.lead_time_weeks);
    return mean_growth + z * sigma;
}

double
GrowthBufferSizer::bufferFraction() const
{
    return bufferCores() / params_.mean_cores;
}

double
GrowthBufferSizer::fragmentedBufferCores(int options) const
{
    GSKU_REQUIRE(options >= 1, "need at least one SKU option");
    // Splitting demand into `options` equal streams reduces customer
    // multiplexing within each stream (§IV-D), so per-stream *relative*
    // volatility grows by sqrt(options) — the usual independent-
    // portfolio aggregation run in reverse. Each stream then holds its
    // own safety stock, and the summed z-term grows by sqrt(options)
    // while the deterministic mean-growth part is unchanged.
    GrowthBufferSizer per_stream(params_);
    per_stream.params_.mean_cores = params_.mean_cores / options;
    per_stream.params_.weekly_sigma =
        params_.weekly_sigma * std::sqrt(static_cast<double>(options));
    return per_stream.bufferCores() * options;
}

double
GrowthBufferSizer::fragmentationPenalty(int options) const
{
    return fragmentedBufferCores(options) / bufferCores() - 1.0;
}

double
GrowthBufferSizer::simulateShortfallProbability(Rng &rng, int trials) const
{
    GSKU_REQUIRE(trials > 0, "need at least one trial");
    const double buffer = bufferCores();
    const int weeks =
        static_cast<int>(std::ceil(params_.lead_time_weeks));
    int shortfalls = 0;
    for (int t = 0; t < trials; ++t) {
        double demand = params_.mean_cores;
        for (int w = 0; w < weeks; ++w) {
            const double span =
                std::min(1.0, params_.lead_time_weeks - w);
            const double drift =
                params_.mean_cores * params_.weekly_growth * span;
            const double shock = params_.mean_cores *
                                 params_.weekly_sigma *
                                 std::sqrt(span) * rng.normal();
            demand += drift + shock;
        }
        shortfalls += demand > params_.mean_cores + buffer ? 1 : 0;
    }
    return static_cast<double>(shortfalls) /
           static_cast<double>(trials);
}

} // namespace gsku::cluster
