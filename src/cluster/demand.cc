#include "cluster/demand.h"

#include <cmath>

#include "common/error.h"

namespace gsku::cluster {

GrowthBufferSizer::GrowthBufferSizer(DemandParams params) : params_(params)
{
    GSKU_REQUIRE(params_.mean_cores > 0.0, "mean demand must be positive");
    GSKU_REQUIRE(params_.weekly_sigma >= 0.0,
                 "volatility must be non-negative");
    GSKU_REQUIRE(params_.lead_time_weeks > 0.0,
                 "lead time must be positive");
    GSKU_REQUIRE(params_.service_level > 0.5 &&
                     params_.service_level < 1.0,
                 "service level must be in (0.5, 1)");
}

double
GrowthBufferSizer::normalQuantile(double p)
{
    GSKU_REQUIRE(p > 0.0 && p < 1.0, "quantile p must be in (0, 1)");
    // Acklam's rational approximation (|relative error| < 1.15e-9).
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};
    const double p_low = 0.02425;
    double q;
    double r;
    if (p < p_low) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                    q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= 1.0 - p_low) {
        q = p - 0.5;
        r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) *
                    r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) *
                    r +
                1.0);
    }
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double
GrowthBufferSizer::bufferCores() const
{
    const double z = normalQuantile(params_.service_level);
    const double mean_growth = params_.mean_cores *
                               params_.weekly_growth *
                               params_.lead_time_weeks;
    const double sigma = params_.mean_cores * params_.weekly_sigma *
                         std::sqrt(params_.lead_time_weeks);
    return mean_growth + z * sigma;
}

double
GrowthBufferSizer::bufferFraction() const
{
    return bufferCores() / params_.mean_cores;
}

double
GrowthBufferSizer::fragmentedBufferCores(int options) const
{
    GSKU_REQUIRE(options >= 1, "need at least one SKU option");
    // Splitting demand into `options` equal streams reduces customer
    // multiplexing within each stream (§IV-D), so per-stream *relative*
    // volatility grows by sqrt(options) — the usual independent-
    // portfolio aggregation run in reverse. Each stream then holds its
    // own safety stock, and the summed z-term grows by sqrt(options)
    // while the deterministic mean-growth part is unchanged.
    GrowthBufferSizer per_stream(params_);
    per_stream.params_.mean_cores = params_.mean_cores / options;
    per_stream.params_.weekly_sigma =
        params_.weekly_sigma * std::sqrt(static_cast<double>(options));
    return per_stream.bufferCores() * options;
}

double
GrowthBufferSizer::fragmentationPenalty(int options) const
{
    return fragmentedBufferCores(options) / bufferCores() - 1.0;
}

double
GrowthBufferSizer::simulateShortfallProbability(Rng &rng, int trials) const
{
    GSKU_REQUIRE(trials > 0, "need at least one trial");
    const double buffer = bufferCores();
    const int weeks =
        static_cast<int>(std::ceil(params_.lead_time_weeks));
    int shortfalls = 0;
    for (int t = 0; t < trials; ++t) {
        double demand = params_.mean_cores;
        for (int w = 0; w < weeks; ++w) {
            const double span =
                std::min(1.0, params_.lead_time_weeks - w);
            const double drift =
                params_.mean_cores * params_.weekly_growth * span;
            const double shock = params_.mean_cores *
                                 params_.weekly_sigma *
                                 std::sqrt(span) * rng.normal();
            demand += drift + shock;
        }
        shortfalls += demand > params_.mean_cores + buffer ? 1 : 0;
    }
    return static_cast<double>(shortfalls) /
           static_cast<double>(trials);
}

} // namespace gsku::cluster
