#include "cluster/vm.h"

#include <algorithm>
#include <map>

namespace gsku::cluster {

namespace {

/** Sweep arrivals/departures accumulating a demand dimension. */
template <typename Getter>
double
peakDemand(const std::vector<VmRequest> &vms, Getter get)
{
    // time -> delta of demand at that time.
    std::map<double, double> deltas;
    for (const auto &vm : vms) {
        deltas[vm.arrival_h] += get(vm);
        deltas[vm.departure_h] -= get(vm);
    }
    double current = 0.0;
    double peak = 0.0;
    for (const auto &[t, d] : deltas) {
        current += d;
        peak = std::max(peak, current);
    }
    return peak;
}

} // namespace

int
VmTrace::peakConcurrentCores() const
{
    return static_cast<int>(peakDemand(
        vms, [](const VmRequest &vm) {
            return static_cast<double>(vm.cores);
        }));
}

double
VmTrace::peakConcurrentMemoryGb() const
{
    return peakDemand(vms,
                      [](const VmRequest &vm) { return vm.memory_gb; });
}

} // namespace gsku::cluster
