#include "cluster/vm.h"

#include <algorithm>
#include <numeric>

namespace gsku::cluster {

PeakDemand
VmTrace::peakConcurrentDemand() const
{
    // One arrival-sorted index pass through the shared sweep; the old
    // implementation rebuilt a std::map<double, double> of time deltas
    // per dimension on every call.
    std::vector<std::size_t> order(vms.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                  // Tie key: VM id (shared arrival order, vm.h).
                  return arrivalBefore(vms[a], vms[b]);
              });
    ConcurrentDemandSweep sweep(vms.size());
    for (std::size_t i : order) {
        const VmRequest &vm = vms[i];
        sweep.add(vm.arrival_h, vm.departure_h,
                  static_cast<double>(vm.cores), vm.memory_gb);
    }
    return sweep.finish();
}

int
VmTrace::peakConcurrentCores() const
{
    return static_cast<int>(peakConcurrentDemand().cores);
}

double
VmTrace::peakConcurrentMemoryGb() const
{
    return peakConcurrentDemand().memory_gb;
}

} // namespace gsku::cluster
