#include "gsf/adoption.h"

#include "common/error.h"
#include "obs/ledger.h"
#include "perf/cpu.h"

namespace gsku::gsf {

AdoptionModel::AdoptionModel(const perf::PerfModel &perf,
                             const carbon::CarbonModel &carbon)
    : perf_(perf), carbon_(carbon)
{
}

cluster::AdoptionDecision
AdoptionModel::decide(const perf::AppProfile &app,
                      carbon::Generation origin_gen,
                      const carbon::ServerSku &baseline,
                      const carbon::ServerSku &green,
                      CarbonIntensity ci) const
{
    const perf::CpuSpec base_cpu = perf::CpuCatalog::forGeneration(origin_gen);
    const perf::ScalingResult sf = perf_.scalingFactor(app, base_cpu);

    cluster::AdoptionDecision decision;
    if (!sf.feasible) {
        // Performance goals unreachable within the candidate sizes.
        obs::LedgerEntry(obs::LedgerEvent::AdoptionDecision)
            .field("app", app.name)
            .field("origin_gen", carbon::toString(origin_gen))
            .field("sku", green.name)
            .field("baseline", baseline.name)
            .field("ci_kg_per_kwh", ci.asKgPerKwh())
            .field("reason", "infeasible_scaling")
            .field("adopt", false);
        return decision;
    }

    const double base_cores =
        static_cast<double>(perf_.config().baseline_vm_cores);
    const double green_cores = static_cast<double>(sf.green_cores);

    const CarbonMass base_carbon =
        carbon_.perCore(baseline, ci).total() * base_cores;
    const CarbonMass green_carbon =
        carbon_.perCore(green, ci).total() * green_cores;

    if (green_carbon < base_carbon) {
        decision.adopt = true;
        decision.scaling_factor = sf.factor;
    }
    obs::LedgerEntry(obs::LedgerEvent::AdoptionDecision)
        .field("app", app.name)
        .field("origin_gen", carbon::toString(origin_gen))
        .field("sku", green.name)
        .field("baseline", baseline.name)
        .field("ci_kg_per_kwh", ci.asKgPerKwh())
        .field("reason", decision.adopt ? "adopted" : "carbon_worse")
        .field("adopt", decision.adopt)
        .field("scaling_factor", sf.factor)
        .field("base_carbon_kg", base_carbon.asKg())
        .field("green_carbon_kg", green_carbon.asKg())
        .field("margin_kg", base_carbon.asKg() - green_carbon.asKg());
    return decision;
}

cluster::AdoptionTable
AdoptionModel::buildTable(const carbon::ServerSku &baseline,
                          const carbon::ServerSku &green,
                          CarbonIntensity ci) const
{
    cluster::AdoptionTable table;
    const carbon::Generation gens[] = {carbon::Generation::Gen1,
                                       carbon::Generation::Gen2,
                                       carbon::Generation::Gen3};
    const auto &apps = perf::AppCatalog::all();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        for (carbon::Generation gen : gens) {
            table.set(i, gen, decide(apps[i], gen, baseline, green, ci));
        }
    }
    return table;
}

double
AdoptionModel::adoptedCoreHourShare(const carbon::ServerSku &baseline,
                                    const carbon::ServerSku &green,
                                    carbon::Generation origin_gen,
                                    CarbonIntensity ci) const
{
    double share = 0.0;
    for (const auto &app : perf::AppCatalog::all()) {
        if (decide(app, origin_gen, baseline, green, ci).adopt) {
            share += perf::AppCatalog::fleetWeight(app);
        }
    }
    return share;
}

} // namespace gsku::gsf
