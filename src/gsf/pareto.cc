#include "gsf/pareto.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.h"

namespace gsku::gsf {

namespace {

std::string
hexBits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[bits & 0xfull];
        bits >>= 4;
    }
    return out;
}

/** The canonical total order: carbon asc, tco asc, margin desc, name
 *  asc. Names are unique in an archive, so this never reports
 *  equivalence between distinct points. */
bool
pointLess(const ParetoPoint &a, const ParetoPoint &b)
{
    if (a.objectives.carbon_per_core_kg != b.objectives.carbon_per_core_kg) {
        return a.objectives.carbon_per_core_kg <
               b.objectives.carbon_per_core_kg;
    }
    if (a.objectives.tco_per_core_usd != b.objectives.tco_per_core_usd) {
        return a.objectives.tco_per_core_usd < b.objectives.tco_per_core_usd;
    }
    if (a.objectives.slo_margin != b.objectives.slo_margin) {
        return a.objectives.slo_margin > b.objectives.slo_margin;
    }
    return a.name < b.name;
}

} // namespace

bool
ParetoArchive::dominates(const SearchObjectives &a,
                         const SearchObjectives &b)
{
    const bool no_worse = a.carbon_per_core_kg <= b.carbon_per_core_kg &&
                          a.tco_per_core_usd <= b.tco_per_core_usd &&
                          a.slo_margin >= b.slo_margin;
    const bool better = a.carbon_per_core_kg < b.carbon_per_core_kg ||
                        a.tco_per_core_usd < b.tco_per_core_usd ||
                        a.slo_margin > b.slo_margin;
    return no_worse && better;
}

bool
ParetoArchive::insert(const ParetoPoint &point)
{
    GSKU_REQUIRE(std::isfinite(point.objectives.carbon_per_core_kg) &&
                     std::isfinite(point.objectives.tco_per_core_usd) &&
                     std::isfinite(point.objectives.slo_margin),
                 "Pareto objectives must be finite");
    for (const ParetoPoint &held : points_) {
        if (held.name == point.name) {
            return false;   // Same design offered twice.
        }
        if (dominates(held.objectives, point.objectives)) {
            return false;
        }
    }
    // The newcomer survives: evict everything it dominates. (A point it
    // dominates cannot dominate it back, so eviction is safe after the
    // survival check.)
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [&](const ParetoPoint &held) {
                                     return dominates(point.objectives,
                                                      held.objectives);
                                 }),
                  points_.end());
    points_.push_back(point);
    return true;
}

void
ParetoArchive::merge(const ParetoArchive &other)
{
    for (const ParetoPoint &point : other.points_) {
        insert(point);
    }
}

std::vector<ParetoPoint>
ParetoArchive::points() const
{
    std::vector<ParetoPoint> out = points_;
    // Tie key: name (unique), after the three objectives.
    std::sort(out.begin(), out.end(), pointLess);
    return out;
}

std::string
ParetoArchive::render() const
{
    std::string out;
    for (const ParetoPoint &p : points()) {
        out += p.name;
        out += ' ';
        out += hexBits(p.objectives.carbon_per_core_kg);
        out += ' ';
        out += hexBits(p.objectives.tco_per_core_usd);
        out += ' ';
        out += hexBits(p.objectives.slo_margin);
        out += ' ';
        out += hexBits(p.savings.total_savings);
        out += '\n';
    }
    return out;
}

} // namespace gsku::gsf
