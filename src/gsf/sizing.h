/**
 * @file
 * GSF's cluster-sizing component (§IV-D, §V): how many baseline SKUs and
 * GreenSKUs are required to serve a cluster's VM workload.
 *
 * Procedure per §V: first right-size a baseline-only cluster (the minimum
 * number of baseline servers hosting the trace with no rejection), then
 * replace baseline servers with GreenSKUs until no further baseline can
 * be removed — i.e. find the minimum number of baselines needed for the
 * VMs that cannot adopt, and the minimum number of GreenSKUs that then
 * hosts the adopters. Both searches are monotone and run by bisection
 * over allocator replays.
 */
#pragma once

#include "cluster/allocator.h"
#include "cluster/vm.h"

namespace gsku::gsf {

/** Output of the sizing search for one trace. */
struct SizingResult
{
    int baseline_only_servers = 0;  ///< Right-sized all-baseline cluster.
    int mixed_baselines = 0;        ///< Baselines left after replacement.
    int mixed_greens = 0;           ///< GreenSKUs in the mixed cluster.

    /** Replay of the trace against the final clusters (for Figs. 9/10). */
    cluster::ReplayResult baseline_only_replay;
    cluster::ReplayResult mixed_replay;

    /**
     * Contract check: server counts are non-negative, the mixed cluster
     * never needs more baselines than the baseline-only cluster, and
     * both final replays succeeded. ClusterSizer ENSUREs this on every
     * result; throws InternalError on violation.
     */
    void checkInvariants() const;
};

/** Sizing search driver. */
class ClusterSizer
{
  public:
    explicit ClusterSizer(
        cluster::ReplayOptions options = cluster::ReplayOptions{});

    /** Minimum baseline-only cluster hosting @p trace. */
    int rightSizeBaselineOnly(const cluster::VmTrace &trace,
                              const carbon::ServerSku &baseline) const;

    /**
     * Full §V procedure; @p adoption decides which VMs can move.
     * Implemented with bisection (both searches are monotone). When the
     * persistent evaluation cache is enabled (gsf/eval_cache.h), the
     * result is served from disk under its input-closure key; a hit
     * replays the sizing's decision-ledger facts, so cached and fresh
     * runs produce byte-identical ledgers.
     */
    SizingResult size(const cluster::VmTrace &trace,
                      const carbon::ServerSku &baseline,
                      const carbon::ServerSku &green,
                      const cluster::AdoptionTable &adoption) const;

    /**
     * The paper's procedure verbatim (§V): "incrementally replace each
     * baseline SKU with enough GreenSKU servers until no VM is
     * rejected. We repeat this process until we can no longer replace
     * baseline SKUs." O(baselines x greens) replays — provided as the
     * methodological reference; size() reaches the same answer in
     * O(log) replays (tests/gsf/sizing_test.cc asserts agreement).
     */
    SizingResult sizeIncremental(const cluster::VmTrace &trace,
                                 const carbon::ServerSku &baseline,
                                 const carbon::ServerSku &green,
                                 const cluster::AdoptionTable &adoption)
        const;

  private:
    cluster::ReplayOptions options_;

    /** The actual search; size() wraps this in the eval-cache
     *  fetch/compute/store cycle. */
    SizingResult sizeUncached(const cluster::VmTrace &trace,
                              const carbon::ServerSku &baseline,
                              const carbon::ServerSku &green,
                              const cluster::AdoptionTable &adoption) const;

    /** One allocator replay; @p phase names the search that asked for
     *  it in sizing.probe ledger events. */
    bool fits(const cluster::VmTrace &trace,
              const cluster::ClusterSpec &spec,
              const cluster::AdoptionTable &adoption,
              const char *phase) const;
};

} // namespace gsku::gsf
