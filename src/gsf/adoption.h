/**
 * @file
 * GSF's adoption component (§IV-C, §V): decides, per application and per
 * origin server generation, whether VMs should move to a GreenSKU.
 *
 * A VM adopts when the carbon to serve its application on the GreenSKU —
 * the scaling-factor-inflated core count times the GreenSKU's
 * CO2e-per-core — is below the carbon of serving it on the baseline SKU
 * with 8 cores at the baseline's CO2e-per-core. Applications whose
 * scaling factor the performance component reports as infeasible (">1.5",
 * e.g. Silo) never adopt.
 */
#pragma once

#include "carbon/model.h"
#include "carbon/sku.h"
#include "cluster/allocator.h"
#include "perf/model.h"

namespace gsku::gsf {

/** Builds per-(app, generation) adoption tables for the allocator. */
class AdoptionModel
{
  public:
    /** Both models are borrowed; they must outlive the AdoptionModel. */
    AdoptionModel(const perf::PerfModel &perf,
                  const carbon::CarbonModel &carbon);

    /**
     * Decision for one application whose VM originated on @p origin_gen,
     * against @p green evaluated at carbon intensity @p ci.
     */
    cluster::AdoptionDecision
    decide(const perf::AppProfile &app, carbon::Generation origin_gen,
           const carbon::ServerSku &baseline, const carbon::ServerSku &green,
           CarbonIntensity ci) const;

    /** Full table over the app catalog and Gen1/2/3 origins. */
    cluster::AdoptionTable
    buildTable(const carbon::ServerSku &baseline,
               const carbon::ServerSku &green, CarbonIntensity ci) const;

    /**
     * Fraction of fleet core-hours (Table III weights) whose application
     * adopts the GreenSKU for VMs originating on @p origin_gen.
     */
    double adoptedCoreHourShare(const carbon::ServerSku &baseline,
                                const carbon::ServerSku &green,
                                carbon::Generation origin_gen,
                                CarbonIntensity ci) const;

  private:
    const perf::PerfModel &perf_;
    const carbon::CarbonModel &carbon_;
};

} // namespace gsku::gsf
