#include "gsf/tco.h"

#include "carbon/model.h"
#include "common/error.h"

namespace gsku::gsf {

TcoModel::TcoModel(TcoParams tco_params, carbon::ModelParams carbon_params)
    : tco_(std::move(tco_params)), carbon_params_(carbon_params)
{
    GSKU_REQUIRE(tco_.energy_usd_per_kwh >= 0.0,
                 "energy price must be non-negative");
}

double
TcoModel::componentPrice(const carbon::Component &component) const
{
    // Capacity-priced kinds first.
    if (component.name == "DDR5 DIMM") {
        return component.tdp.asWatts() / 0.37 * tco_.ddr5_usd_per_gb;
    }
    if (component.name == "Reused DDR4 DIMM (CXL)") {
        return component.tdp.asWatts() / 0.46 * tco_.reused_ddr4_usd_per_gb;
    }
    if (component.name == "E1.S NVMe SSD") {
        return component.tdp.asWatts() / 5.6 * tco_.new_ssd_usd_per_tb;
    }
    const auto it = tco_.component_price_usd.find(component.name);
    GSKU_REQUIRE(it != tco_.component_price_usd.end(),
                 "no price for component: " + component.name);
    return it->second;
}

double
TcoModel::serverCapexUsd(const carbon::ServerSku &sku) const
{
    double total = 0.0;
    for (const auto &slot : sku.slots) {
        total += componentPrice(slot.component) *
                 static_cast<double>(slot.count);
    }
    return total;
}

double
TcoModel::serverOpexUsd(const carbon::ServerSku &sku) const
{
    const carbon::CarbonModel model(carbon_params_);
    const Energy lifetime_energy =
        model.serverPower(sku) * carbon_params_.lifetime;
    return lifetime_energy.asKilowattHours() * tco_.energy_usd_per_kwh *
           carbon_params_.pue;
}

PerCoreCost
TcoModel::perCore(const carbon::ServerSku &sku) const
{
    const carbon::CarbonModel model(carbon_params_);
    const carbon::RackFootprint rack = model.rackFootprint(sku);
    const double n = static_cast<double>(rack.servers_per_rack);
    const double cores = static_cast<double>(rack.cores_per_rack);

    PerCoreCost cost;
    cost.capex_usd = (n * serverCapexUsd(sku) + tco_.rack_usd +
                      tco_.dc_facility_usd_per_rack) /
                     cores;
    const double rack_energy_usd =
        (carbon_params_.rack_misc_power * carbon_params_.lifetime)
            .asKilowattHours() *
        tco_.energy_usd_per_kwh * carbon_params_.pue;
    cost.opex_usd = (n * serverOpexUsd(sku) + rack_energy_usd) / cores;
    return cost;
}

double
TcoModel::relativeCost(const carbon::ServerSku &reference,
                       const carbon::ServerSku &sku) const
{
    const double ref = perCore(reference).total();
    GSKU_ASSERT(ref > 0.0, "reference cost must be positive");
    return perCore(sku).total() / ref;
}

} // namespace gsku::gsf
