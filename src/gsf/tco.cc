#include "gsf/tco.h"

#include <cmath>
#include <map>

#include "carbon/model.h"
#include "common/contracts.h"
#include "common/error.h"
#include "obs/ledger.h"

namespace gsku::gsf {

void
PerCoreCost::checkInvariants() const
{
    GSKU_INVARIANT(capex.asUsd() >= 0.0 && std::isfinite(capex.asUsd()),
                   "per-core capex must be non-negative and finite");
    GSKU_INVARIANT(opex.asUsd() >= 0.0 && std::isfinite(opex.asUsd()),
                   "per-core opex must be non-negative and finite");
}

TcoModel::TcoModel(TcoParams tco_params, carbon::ModelParams carbon_params)
    : tco_(std::move(tco_params)), carbon_params_(carbon_params)
{
    GSKU_REQUIRE(tco_.energy_price.asUsdPerKwh() >= 0.0,
                 "energy price must be non-negative");
    GSKU_REQUIRE(tco_.ddr5_price.asUsdPerGb() >= 0.0 &&
                     tco_.reused_ddr4_price.asUsdPerGb() >= 0.0 &&
                     tco_.new_ssd_price.asUsdPerTb() >= 0.0,
                 "capacity prices must be non-negative");
    GSKU_REQUIRE(tco_.rack_cost.asUsd() >= 0.0 &&
                     tco_.dc_facility_cost.asUsd() >= 0.0,
                 "rack and facility costs must be non-negative");
    for (const auto &[name, cost] : tco_.component_cost) {
        GSKU_REQUIRE(cost.asUsd() >= 0.0,
                     "component price must be non-negative: " + name);
    }
}

Cost
TcoModel::componentPrice(const carbon::Component &component) const
{
    // Capacity-priced kinds first: recover the capacity from the
    // per-unit power density the catalog encodes.
    if (component.name == "DDR5 DIMM") {
        const MemCapacity gb =
            MemCapacity::gb(component.tdp.asWatts() / 0.37);
        return gb * tco_.ddr5_price;
    }
    if (component.name == "Reused DDR4 DIMM (CXL)") {
        const MemCapacity gb =
            MemCapacity::gb(component.tdp.asWatts() / 0.46);
        return gb * tco_.reused_ddr4_price;
    }
    if (component.name == "E1.S NVMe SSD") {
        const StorageCapacity tb =
            StorageCapacity::tb(component.tdp.asWatts() / 5.6);
        return tb * tco_.new_ssd_price;
    }
    const auto it = tco_.component_cost.find(component.name);
    GSKU_REQUIRE(it != tco_.component_cost.end(),
                 "no price for component: " + component.name);
    return it->second;
}

Cost
TcoModel::serverCapex(const carbon::ServerSku &sku) const
{
    Cost total;
    for (const auto &slot : sku.slots) {
        total += componentPrice(slot.component) *
                 static_cast<double>(slot.count);
    }
    GSKU_ENSURE(total.asUsd() >= 0.0, "server capex must be non-negative");
    return total;
}

Cost
TcoModel::serverOpex(const carbon::ServerSku &sku) const
{
    const carbon::CarbonModel model(carbon_params_);
    const Energy lifetime_energy =
        model.serverPower(sku) * carbon_params_.lifetime;
    const Cost opex =
        lifetime_energy * tco_.energy_price * carbon_params_.pue;
    GSKU_ENSURE(opex.asUsd() >= 0.0, "server opex must be non-negative");
    return opex;
}

PerCoreCost
TcoModel::perCore(const carbon::ServerSku &sku) const
{
    const carbon::CarbonModel model(carbon_params_);
    const carbon::RackFootprint rack = model.rackFootprint(sku);
    const double n = static_cast<double>(rack.servers_per_rack);
    const double cores = static_cast<double>(rack.cores_per_rack);
    GSKU_EXPECT(cores > 0.0, "rack fit produced no cores");

    PerCoreCost cost;
    cost.capex = (n * serverCapex(sku) + tco_.rack_cost +
                  tco_.dc_facility_cost) /
                 cores;
    const Cost rack_energy =
        (carbon_params_.rack_misc_power * carbon_params_.lifetime) *
        tco_.energy_price * carbon_params_.pue;
    cost.opex = (n * serverOpex(sku) + rack_energy) / cores;
    cost.checkInvariants();
    if (obs::ledgerEnabled()) {
        const PerCoreCostAttribution attribution = attributePerCore(sku);
        obs::LedgerEntry(obs::LedgerEvent::TcoPerCore)
            .field("sku", sku.name)
            .field("capex_usd", attribution.per_core.capex.asUsd())
            .field("opex_usd", attribution.per_core.opex.asUsd())
            .field("total_usd", attribution.per_core.total().asUsd());
        for (const PerCoreCostTerm &term : attribution.terms) {
            obs::LedgerEntry(obs::LedgerEvent::TcoComponent)
                .field("sku", sku.name)
                .field("component", term.component)
                .field("capex_usd", term.capex.asUsd())
                .field("opex_usd", term.opex.asUsd());
        }
    }
    return cost;
}

PerCoreCostAttribution
TcoModel::attributePerCore(const carbon::ServerSku &sku) const
{
    const carbon::CarbonModel model(carbon_params_);
    const carbon::RackFootprint rack = model.rackFootprint(sku);
    const double n = static_cast<double>(rack.servers_per_rack);
    const double cores = static_cast<double>(rack.cores_per_rack);

    PerCoreCostAttribution out;
    out.per_core.capex = (n * serverCapex(sku) + tco_.rack_cost +
                          tco_.dc_facility_cost) /
                         cores;
    const Cost rack_energy =
        (carbon_params_.rack_misc_power * carbon_params_.lifetime) *
        tco_.energy_price * carbon_params_.pue;
    out.per_core.opex = (n * serverOpex(sku) + rack_energy) / cores;

    // Per-kind leaves: prices aggregated by component kind (aligning
    // with the carbon attribution's leaves), energy from the carbon
    // model's per-kind power split.
    std::map<carbon::ComponentKind, Cost> capex_by_kind;
    for (const auto &slot : sku.slots) {
        capex_by_kind[slot.component.kind] +=
            componentPrice(slot.component) *
            static_cast<double>(slot.count);
    }
    const carbon::PowerBreakdown power = model.serverPowerByKind(sku);
    for (const auto &[kind, kind_capex] : capex_by_kind) {
        PerCoreCostTerm term;
        term.component = carbon::toString(kind);
        term.capex = n * kind_capex / cores;
        const auto p = power.find(kind);
        if (p != power.end()) {
            term.opex = n * ((p->second * carbon_params_.lifetime) *
                             tco_.energy_price * carbon_params_.pue) /
                        cores;
        }
        out.terms.push_back(std::move(term));
    }

    PerCoreCostTerm rack_infra;
    rack_infra.component = "rack_infra";
    rack_infra.capex =
        (tco_.rack_cost + tco_.dc_facility_cost) / cores;
    rack_infra.opex = rack_energy / cores;
    out.terms.push_back(std::move(rack_infra));

    Cost capex_sum;
    Cost opex_sum;
    for (const PerCoreCostTerm &term : out.terms) {
        capex_sum += term.capex;
        opex_sum += term.opex;
    }
    GSKU_ENSURE(
        std::abs(capex_sum.asUsd() - out.per_core.capex.asUsd()) < 1e-9 &&
            std::abs(opex_sum.asUsd() - out.per_core.opex.asUsd()) < 1e-9,
        "per-core cost leaves must sum to the headline cost");
    return out;
}

double
TcoModel::relativeCost(const carbon::ServerSku &reference,
                       const carbon::ServerSku &sku) const
{
    const Cost ref = perCore(reference).total();
    GSKU_EXPECT(ref.asUsd() > 0.0, "reference cost must be positive");
    return perCore(sku).total() / ref;
}

} // namespace gsku::gsf
