#include "gsf/hetero.h"

#include <cmath>

#include "common/error.h"
#include "perf/cpu.h"

namespace gsku::gsf {

AcceleratorSpec
AcceleratorSpec::newInferenceCard()
{
    return AcceleratorSpec{"Inference card (new)", Power::watts(75.0),
                           CarbonMass::kg(45.0), 12.0, false};
}

AcceleratorSpec
AcceleratorSpec::reusedInferenceCard()
{
    return AcceleratorSpec{"Inference card (reused)", Power::watts(80.0),
                           CarbonMass::kg(0.0), 8.0, true};
}

bool
HeteroDecision::offloads() const
{
    return options[best].accelerators > 0;
}

HeteroAdoptionModel::HeteroAdoptionModel(const perf::PerfModel &perf,
                                         const carbon::CarbonModel &carbon)
    : perf_(perf), carbon_(carbon)
{
}

CarbonMass
HeteroAdoptionModel::acceleratorCarbon(const AcceleratorSpec &accel,
                                       CarbonIntensity ci) const
{
    const carbon::ModelParams &params = carbon_.params();
    const Energy lifetime_energy =
        accel.tdp * params.derate * params.lifetime;
    return accel.embodied + lifetime_energy * ci * params.pue;
}

HeteroDecision
HeteroAdoptionModel::decide(
    const perf::AppProfile &app, carbon::Generation origin_gen,
    const carbon::ServerSku &baseline, const carbon::ServerSku &green,
    const std::vector<AcceleratorSpec> &accelerators, CarbonIntensity ci,
    double host_cores) const
{
    GSKU_REQUIRE(app.cls == perf::AppClass::MlInference,
                 "accelerator offload modeled for ML inference apps: " +
                     app.name);
    GSKU_REQUIRE(host_cores >= 0.0, "host cores must be non-negative");

    const perf::CpuSpec base_cpu =
        perf::CpuCatalog::forGeneration(origin_gen);
    const perf::CpuSpec green_cpu = perf::CpuCatalog::bergamo();
    const double base_cores =
        static_cast<double>(perf_.config().baseline_vm_cores);

    // Demand: the baseline VM's aggregate throughput, in Genoa-core
    // units of this application.
    const double demand =
        base_cores * perf_.perCorePerf(app, base_cpu);

    HeteroDecision decision;

    // Option 1: stay on the baseline SKU.
    {
        HeteroOption opt;
        opt.label = "baseline CPU";
        opt.feasible = true;
        opt.carbon = carbon_.perCore(baseline, ci).total() * base_cores;
        decision.options.push_back(opt);
    }

    // Option 2: GreenSKU CPU cores via the scaling factor.
    {
        HeteroOption opt;
        opt.label = "GreenSKU CPU";
        const perf::ScalingResult sf =
            perf_.scalingFactor(app, base_cpu);
        if (sf.feasible) {
            opt.feasible = true;
            opt.green_cores = static_cast<double>(sf.green_cores);
            opt.carbon =
                carbon_.perCore(green, ci).total() * opt.green_cores;
        }
        decision.options.push_back(opt);
    }

    // Option 3+: GreenSKU host slice + accelerators.
    for (const AcceleratorSpec &accel : accelerators) {
        GSKU_REQUIRE(accel.relative_throughput > 0.0,
                     "accelerator throughput must be positive");
        HeteroOption opt;
        opt.label = "GreenSKU host + " + accel.name;
        const double host_throughput =
            host_cores * perf_.perCorePerf(app, green_cpu);
        const double residual = demand - host_throughput;
        opt.accelerators =
            residual <= 0.0
                ? 0
                : static_cast<int>(
                      std::ceil(residual / accel.relative_throughput));
        opt.green_cores = host_cores;
        opt.feasible = true;
        opt.carbon =
            carbon_.perCore(green, ci).total() * host_cores +
            acceleratorCarbon(accel, ci) *
                static_cast<double>(opt.accelerators);
        decision.options.push_back(opt);
    }

    decision.best = 0;
    for (std::size_t i = 1; i < decision.options.size(); ++i) {
        const HeteroOption &opt = decision.options[i];
        if (opt.feasible &&
            opt.carbon < decision.options[decision.best].carbon) {
            decision.best = i;
        }
    }
    return decision;
}

} // namespace gsku::gsf
