/**
 * @file
 * Pond-style memory tiering (§III): decide how much of a VM's memory can
 * be backed by CXL-attached reused DDR4 without a slowdown, and predict
 * the residual slowdown otherwise.
 *
 * The paper's mechanism, which this model reproduces:
 *  - hardware counters identify applications that can run *entirely*
 *    from CXL without facing a slowdown (low memory-latency
 *    sensitivity);
 *  - for other applications, Pond's prediction model finds *untouched*
 *    memory (on average almost half of a VM's allocation) and exposes it
 *    as a zero-compute NUMA node backed by CXL; untouched memory is
 *    never accessed, so it causes no slowdown;
 *  - only the *touched* spill beyond local DDR5 capacity incurs the CXL
 *    latency penalty, scaled by the application's sensitivity.
 *
 * Target anchor: "this approach ensures that 98% of applications incur
 * <5% slowdown with CXL" (§III).
 */
#pragma once

#include "carbon/sku.h"
#include "perf/app.h"
#include "perf/model.h"

namespace gsku::gsf {

/** How a VM's memory is split across tiers, and the predicted cost. */
struct TieringDecision
{
    /** Fraction of the VM's allocation backed by CXL DDR4. */
    double cxl_fraction = 0.0;

    /** Fraction of *touched* memory that ended up on CXL. */
    double touched_on_cxl = 0.0;

    /** Predicted service-time slowdown (1.0 = none). */
    double slowdown = 1.0;

    /** True when the VM runs entirely from CXL (sensitivity-exempt). */
    bool fully_cxl = false;
};

/** Tuning knobs of the tiering policy. */
struct TieringConfig
{
    /** Apps at or below this latency sensitivity run fully from CXL
     *  without a "significant" slowdown (§III / §VI's 20.2%). */
    double full_cxl_sensitivity_threshold = 0.05;

    /** Safety margin on the untouched-memory prediction: the predictor
     *  claims only this fraction of the untouched memory (Pond's
     *  predictions are deliberately conservative). */
    double untouched_claim_fraction = 0.9;

    /** Relative CXL latency penalty (280 vs 140 ns; §III). */
    double cxl_latency_penalty = 1.0;
};

/**
 * The tiering policy: pure function of application profile, the VM's
 * touched fraction, and the SKU's CXL memory share.
 */
class MemoryTieringPolicy
{
  public:
    explicit MemoryTieringPolicy(TieringConfig config = TieringConfig{});

    const TieringConfig &config() const { return config_; }

    /**
     * Split a VM's memory between local DDR5 and CXL DDR4 on @p sku.
     *
     * @param app the application running in the VM
     * @param touched_fraction the VM's maximum touched-memory fraction
     * @param sku the server (its cxlMemoryFraction() is the CXL share)
     */
    TieringDecision decide(const perf::AppProfile &app,
                           double touched_fraction,
                           const carbon::ServerSku &sku) const;

    /**
     * Fraction of fleet core-hours whose predicted slowdown stays below
     * @p slowdown_threshold, integrating each application over a
     * normal touched-fraction distribution (Pond-like: mean ~0.55).
     * The §III anchor: ~98% of applications incur <5% slowdown.
     */
    double fleetShareBelowSlowdown(const carbon::ServerSku &sku,
                                   double slowdown_threshold = 1.05,
                                   double mean_touched = 0.55,
                                   double sigma_touched = 0.18) const;

  private:
    TieringConfig config_;
};

} // namespace gsku::gsf
