#include "gsf/evaluator.h"

#include <cmath>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/parallel.h"
#include "gsf/eval_cache.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace gsku::gsf {

GsfEvaluator::GsfEvaluator(Options options)
    : options_(options),
      carbon_(options_.carbon_params),
      perf_(options_.perf_config),
      maintenance_(options_.afr_params),
      adoption_(perf_, carbon_),
      sizer_(options_.replay)
{
    GSKU_REQUIRE(options_.buffer.buffer_fraction >= 0.0 &&
                     options_.buffer.buffer_fraction < 1.0,
                 "buffer fraction must be in [0, 1)");
}

CarbonMass
GsfEvaluator::deploymentEmissions(const carbon::ServerSku &sku, int servers,
                                  CarbonIntensity ci) const
{
    GSKU_REQUIRE(servers >= 0, "server count must be non-negative");
    const carbon::PerCoreEmissions per_core = carbon_.perCore(sku, ci);
    // Out-of-service servers must be over-provisioned to deliver the
    // nominal capacity (§IV-B maintenance component).
    const double oos = maintenance_.outOfServiceFraction(sku);
    const double effective = static_cast<double>(servers) * (1.0 + oos);
    if (obs::ledgerEnabled()) {
        obs::LedgerEntry(obs::LedgerEvent::MaintenanceGate)
            .field("sku", sku.name)
            .field("ci_kg_per_kwh", ci.asKgPerKwh())
            .field("servers", servers)
            .field("oos_fraction", oos)
            .field("effective_servers", effective);
    }
    return per_core.total() * (effective * static_cast<double>(sku.cores));
}

namespace {

/** Buffer servers (baseline SKU) covering a fraction of core capacity. */
int
bufferServers(double core_capacity, double fraction, int baseline_cores)
{
    return static_cast<int>(std::ceil(
        core_capacity * fraction / static_cast<double>(baseline_cores)));
}

} // namespace

ClusterEvaluation
GsfEvaluator::evaluateCluster(const cluster::VmTrace &trace,
                              const carbon::ServerSku &baseline,
                              const carbon::ServerSku &green,
                              CarbonIntensity ci) const
{
    EvalCache *cache = evalCache();
    if (cache == nullptr) {
        return evaluateClusterUncached(trace, baseline, green, ci);
    }
    const std::string key =
        clusterEvalCacheKey(trace, baseline, green, ci, options_);
    if (auto payload = cache->fetch(key, "cluster_eval")) {
        // Hit vs miss cost split: decode-and-replay work lands under
        // evalcache.hit, the full recompute under evalcache.miss, so
        // a cache key that silently stops hitting shows up as a
        // work-unit drift in the profile.
        obs::ProfileScope prof("evalcache.hit");
        ClusterEvaluation eval;
        std::vector<std::string> captured;
        if (decodeClusterEvaluation(*payload, &eval, &captured)) {
            eval.sizing.checkInvariants();
            obs::profileWork();
            obs::replayLedgerLines(captured);
            return eval;
        }
        cache->noteUndecodable();    // Undecodable payload: recompute.
    }
    obs::ProfileScope prof("evalcache.miss");
    obs::profileWork();
    obs::LedgerCapture capture;
    ClusterEvaluation eval =
        evaluateClusterUncached(trace, baseline, green, ci);
    cache->store(key, "cluster_eval",
                 encodeClusterEvaluation(eval, capture.lines()));
    return eval;
}

ClusterEvaluation
GsfEvaluator::evaluateClusterUncached(const cluster::VmTrace &trace,
                                      const carbon::ServerSku &baseline,
                                      const carbon::ServerSku &green,
                                      CarbonIntensity ci) const
{
    static obs::Counter &cluster_evals =
        obs::metrics().counter("evaluator.cluster_evals");
    cluster_evals.inc();
    obs::TraceSpan span("evaluator", "evaluateCluster");
    span.arg("trace", trace.name).arg("sku", green.name);

    const cluster::AdoptionTable adoption =
        adoption_.buildTable(baseline, green, ci);
    const SizingResult sizing = sizer_.size(trace, baseline, green, adoption);

    ClusterEvaluation eval;
    eval.trace_name = trace.name;
    eval.sizing = sizing;

    // Growth buffers: baseline SKUs only (§V workaround), sized from each
    // scenario's core capacity.
    const double base_cores =
        static_cast<double>(sizing.baseline_only_servers * baseline.cores);
    const double mixed_cores =
        static_cast<double>(sizing.mixed_baselines * baseline.cores +
                            sizing.mixed_greens * green.cores);
    eval.baseline_scenario_buffer = bufferServers(
        base_cores, options_.buffer.buffer_fraction, baseline.cores);
    eval.mixed_scenario_buffer = bufferServers(
        mixed_cores, options_.buffer.buffer_fraction, baseline.cores);

    eval.baseline_scenario_emissions = deploymentEmissions(
        baseline,
        sizing.baseline_only_servers + eval.baseline_scenario_buffer, ci);
    eval.mixed_scenario_emissions =
        deploymentEmissions(baseline,
                            sizing.mixed_baselines +
                                eval.mixed_scenario_buffer,
                            ci) +
        deploymentEmissions(green, sizing.mixed_greens, ci);

    GSKU_ASSERT(eval.baseline_scenario_emissions.asKg() > 0.0,
                "baseline scenario must have emissions");
    eval.savings = 1.0 - eval.mixed_scenario_emissions /
                             eval.baseline_scenario_emissions;
    if (obs::ledgerEnabled()) {
        obs::LedgerEntry(obs::LedgerEvent::EvaluatorVerdict)
            .field("trace", trace.name)
            .field("baseline", baseline.name)
            .field("sku", green.name)
            .field("ci_kg_per_kwh", ci.asKgPerKwh())
            .field("baseline_servers", sizing.baseline_only_servers)
            .field("baseline_buffer", eval.baseline_scenario_buffer)
            .field("mixed_baselines", sizing.mixed_baselines)
            .field("mixed_greens", sizing.mixed_greens)
            .field("mixed_buffer", eval.mixed_scenario_buffer)
            .field("baseline_kg", eval.baseline_scenario_emissions.asKg())
            .field("mixed_kg", eval.mixed_scenario_emissions.asKg())
            .field("savings", eval.savings)
            .field("verdict", eval.savings > 0.0 ? "saves" : "costs");
    }
    return eval;
}

IntensitySweep
GsfEvaluator::sweep(const std::vector<cluster::VmTrace> &traces,
                    const carbon::ServerSku &baseline,
                    const carbon::ServerSku &green,
                    const std::vector<double> &intensities) const
{
    GSKU_REQUIRE(!traces.empty(), "sweep needs at least one trace");
    GSKU_REQUIRE(!intensities.empty(), "sweep needs intensities");

    static obs::Counter &sweeps =
        obs::metrics().counter("evaluator.sweeps");
    sweeps.inc();
    obs::TraceSpan span("evaluator", "sweep");
    obs::ProfileScope prof("evaluator.sweep");
    span.arg("sku", green.name)
        .arg("traces", static_cast<std::uint64_t>(traces.size()))
        .arg("intensities",
             static_cast<std::uint64_t>(intensities.size()));

    IntensitySweep out;
    out.sku_name = green.name;
    out.intensities = intensities;

    // Sizing depends on CI only through the adoption table; sizing
    // results are shared per (trace, table signature). The sweep runs
    // in three phases so the expensive phase parallelizes without
    // duplicating cache entries across threads:
    //   1. serial: adoption table + signature per CI (cheap model
    //      evaluations);
    //   2. pooled: one sizing task per *distinct* (trace, signature)
    //      pair — the per-adoption-table cache, with each entry
    //      computed exactly once and tasks ordered by first
    //      appearance so results are thread-count independent;
    //   3. serial: per-CI emissions from the cached sizings (cheap),
    //      accumulated in trace order for bit-identical sums.
    auto signature = [](const cluster::AdoptionTable &table) {
        std::ostringstream sig;
        const auto &apps = perf::AppCatalog::all();
        const carbon::Generation gens[] = {carbon::Generation::Gen1,
                                           carbon::Generation::Gen2,
                                           carbon::Generation::Gen3};
        for (std::size_t i = 0; i < apps.size(); ++i) {
            for (carbon::Generation g : gens) {
                const auto d = table.get(i, g);
                sig << (d.adopt ? 'a' : '-') << d.scaling_factor << ';';
            }
        }
        return sig.str();
    };

    // Phase 1: adoption tables and their signatures.
    std::vector<cluster::AdoptionTable> tables;
    std::vector<std::string> sigs;
    tables.reserve(intensities.size());
    sigs.reserve(intensities.size());
    for (double ci_value : intensities) {
        const CarbonIntensity ci = CarbonIntensity::kgPerKwh(ci_value);
        tables.push_back(adoption_.buildTable(baseline, green, ci));
        sigs.push_back(signature(tables.back()));
    }

    // Phase 2: distinct sizing jobs, keyed by (trace, signature).
    struct SizingJob
    {
        std::size_t trace = 0;
        std::size_t table = 0;      ///< First CI index with this table.
    };
    static obs::Counter &cache_hits =
        obs::metrics().counter("evaluator.cache_hits");
    static obs::Counter &cache_misses =
        obs::metrics().counter("evaluator.cache_misses");
    std::map<std::pair<std::size_t, std::string>, std::size_t> job_of;
    std::vector<SizingJob> jobs;
    for (std::size_t c = 0; c < intensities.size(); ++c) {
        for (std::size_t t = 0; t < traces.size(); ++t) {
            const auto key = std::make_pair(t, sigs[c]);
            if (job_of.emplace(key, jobs.size()).second) {
                cache_misses.inc();
                jobs.push_back(SizingJob{t, c});
            } else {
                cache_hits.inc();
            }
        }
    }
    const std::vector<SizingResult> sized =
        parallelMap<SizingResult>(jobs.size(), [&](std::size_t j) {
            // One work unit per distinct sizing job; pool tasks
            // inherit the evaluator.sweep domain (obs/profile.h).
            obs::profileWork("jobs");
            return sizer_.size(traces[jobs[j].trace], baseline, green,
                               tables[jobs[j].table]);
        });
    // One telemetry unit per distinct sizing job, ticked after the
    // barrier where the registry is thread-count deterministic again.
    obs::telemetryTick(jobs.size());

    // Phase 3: emissions per CI from the cached sizings.
    for (std::size_t c = 0; c < intensities.size(); ++c) {
        const CarbonIntensity ci =
            CarbonIntensity::kgPerKwh(intensities[c]);
        double sum = 0.0;
        for (std::size_t t = 0; t < traces.size(); ++t) {
            const SizingResult &sizing =
                sized[job_of.at(std::make_pair(t, sigs[c]))];

            const double base_cores = static_cast<double>(
                sizing.baseline_only_servers * baseline.cores);
            const double mixed_cores = static_cast<double>(
                sizing.mixed_baselines * baseline.cores +
                sizing.mixed_greens * green.cores);
            const int buffer_base = bufferServers(
                base_cores, options_.buffer.buffer_fraction, baseline.cores);
            const int buffer_mixed = bufferServers(
                mixed_cores, options_.buffer.buffer_fraction,
                baseline.cores);
            const CarbonMass base_em = deploymentEmissions(
                baseline, sizing.baseline_only_servers + buffer_base, ci);
            const CarbonMass mixed_em =
                deploymentEmissions(
                    baseline, sizing.mixed_baselines + buffer_mixed, ci) +
                deploymentEmissions(green, sizing.mixed_greens, ci);
            const double savings = 1.0 - mixed_em / base_em;
            if (obs::ledgerEnabled()) {
                obs::LedgerEntry(obs::LedgerEvent::EvaluatorVerdict)
                    .field("trace", traces[t].name)
                    .field("baseline", baseline.name)
                    .field("sku", green.name)
                    .field("ci_kg_per_kwh", ci.asKgPerKwh())
                    .field("baseline_servers",
                           sizing.baseline_only_servers)
                    .field("baseline_buffer", buffer_base)
                    .field("mixed_baselines", sizing.mixed_baselines)
                    .field("mixed_greens", sizing.mixed_greens)
                    .field("mixed_buffer", buffer_mixed)
                    .field("baseline_kg", base_em.asKg())
                    .field("mixed_kg", mixed_em.asKg())
                    .field("savings", savings)
                    .field("verdict", savings > 0.0 ? "saves" : "costs");
            }
            sum += savings;
        }
        out.mean_savings.push_back(sum /
                                   static_cast<double>(traces.size()));
    }
    return out;
}

double
GsfEvaluator::meanSavings(const IntensitySweep &sweep)
{
    GSKU_REQUIRE(!sweep.mean_savings.empty(), "sweep has no points");
    double sum = 0.0;
    for (double s : sweep.mean_savings) {
        sum += s;
    }
    return sum / static_cast<double>(sweep.mean_savings.size());
}

} // namespace gsku::gsf
