#include "gsf/search.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <unordered_map>

#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "gsf/eval_cache.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "perf/app.h"
#include "perf/cpu.h"

namespace gsku::gsf {

namespace {

/** The typed move set: one lattice dimension stepped by one range
 *  index. Table order is part of the deterministic contract — the rng
 *  indexes it, and the quench scans it front to back. */
struct Move
{
    const char *name;
    int dim;        ///< 0 ddr5, 1 cxl_ddr4, 2 new_ssd, 3 reused_ssd.
    int delta;      ///< ±1 range-index step.
};

constexpr Move kMoves[] = {
    {"ddr5+", 0, +1},       {"ddr5-", 0, -1},
    {"cxl_ddr4+", 1, +1},   {"cxl_ddr4-", 1, -1},
    {"new_ssd+", 2, +1},    {"new_ssd-", 2, -1},
    {"reused_ssd+", 3, +1}, {"reused_ssd-", 3, -1},
};

constexpr std::size_t kMoveCount = sizeof(kMoves) / sizeof(kMoves[0]);

/** Lattice position: one index per DesignRange dimension. */
struct LatticeState
{
    std::array<std::size_t, 4> idx = {0, 0, 0, 0};
};

std::size_t
dimSize(const DesignRange &range, int dim)
{
    switch (dim) {
    case 0: return range.ddr5_dimms.size();
    case 1: return range.cxl_ddr4_dimms.size();
    case 2: return range.new_ssds.size();
    default: return range.reused_ssds.size();
    }
}

/** Component counts at a lattice position. */
struct Counts
{
    int ddr5 = 0;
    int cxl_ddr4 = 0;
    int new_ssd = 0;
    int reused_ssd = 0;
};

Counts
countsAt(const DesignRange &range, const LatticeState &s)
{
    return Counts{range.ddr5_dimms[s.idx[0]],
                  range.cxl_ddr4_dimms[s.idx[1]],
                  range.new_ssds[s.idx[2]],
                  range.reused_ssds[s.idx[3]]};
}

/** Mirrors DesignSpaceExplorer::buildCandidate's naming scheme (pinned
 *  by tests/gsf/search_test.cc) so search.move facts join with
 *  design.verdict facts on the "candidate" field even for infeasible
 *  candidates, which have no SKU object to take the name from. */
std::string
candidateName(const Counts &c)
{
    std::ostringstream name;
    name << "B/" << c.ddr5 << "x64/" << c.cxl_ddr4 << "x32cxl/"
         << c.new_ssd << "+" << c.reused_ssd << "ssd";
    return name.str();
}

/** The explore() ordering: savings desc, then name asc — the SA "best"
 *  uses the same total order, so agreement with explore()'s rank-1 is
 *  exact even under savings ties. */
bool
betterDesign(const carbon::SavingsRow &a, const std::string &a_name,
             const carbon::SavingsRow &b, const std::string &b_name)
{
    if (a.total_savings != b.total_savings) {
        return a.total_savings > b.total_savings;
    }
    return a_name < b_name;
}

/** One search.move fact. (restart, step) is the uniqueness key within
 *  the ledger's deduplicated fact set. */
void
noteMove(int restart, int step, const char *move,
         const std::string &candidate, bool accepted, const char *reason)
{
    obs::LedgerEntry(obs::LedgerEvent::SearchMove)
        .field("restart", restart)
        .field("step", step)
        .field("move", move)
        .field("candidate", candidate)
        .field("accepted", accepted)
        .field("reason", reason);
}

struct SearchCounters
{
    obs::Counter &moves;
    obs::Counter &accepted;
    obs::Counter &rejected;
    obs::Counter &evals;
    obs::Counter &restarts;
};

SearchCounters &
counters()
{
    static SearchCounters c{
        obs::metrics().counter("search.moves"),
        obs::metrics().counter("search.accepted"),
        obs::metrics().counter("search.rejected"),
        obs::metrics().counter("search.evals"),
        obs::metrics().counter("search.restarts"),
    };
    return c;
}

/** Everything one restart reports back for the index-ordered merge. */
struct RestartOutcome
{
    bool found = false;
    RankedDesign best;
    SearchObjectives best_objectives;
    LatticeState best_state;
    std::vector<ParetoPoint> points;    ///< First-visit order.
    SearchStats stats;
};

/**
 * One restart: anneal from a random lattice position, then quench with
 * deterministic steepest-ascent until no neighbor improves. The whole
 * trajectory is a pure function of @p rng's stream and the (cached or
 * fresh — bit-identical either way) evaluation results.
 */
RestartOutcome
runRestart(const SkuSearch &search, const DesignSpaceExplorer &explorer,
           const carbon::ServerSku &baseline,
           const SearchOptions &options, int restart, Rng rng)
{
    const DesignRange &range = options.range;
    RestartOutcome out;

    // Per-restart memo: SA revisits neighbors constantly; one cache
    // probe per distinct candidate keeps probe counts — and with them
    // the work-unit profile — deterministic at every thread count.
    std::unordered_map<std::string, SearchEval> memo;
    const bool ledger = obs::ledgerEnabled();
    int step = 0;

    // Evaluate the candidate at @p s (memoized); nullptr when it
    // violates the deployability constraints. First visits update the
    // restart's best design and Pareto point list.
    auto visit = [&](const LatticeState &s,
                     std::string *name) -> const SearchEval * {
        const Counts c = countsAt(range, s);
        *name = candidateName(c);
        auto it = memo.find(*name);
        if (it != memo.end()) {
            return &it->second;
        }
        const auto sku = explorer.buildCandidate(c.ddr5, c.cxl_ddr4,
                                                 c.new_ssd, c.reused_ssd);
        if (!sku) {
            return nullptr;
        }
        const SearchEval eval = search.evaluate(baseline, *sku);
        ++out.stats.evaluations;
        out.points.push_back(
            ParetoPoint{*name, eval.objectives, eval.savings});
        if (!out.found ||
            betterDesign(eval.savings, *name, out.best.savings,
                         out.best.sku.name)) {
            out.found = true;
            out.best = RankedDesign{*sku, eval.savings};
            out.best_objectives = eval.objectives;
            out.best_state = s;
        }
        return &memo.emplace(*name, eval).first->second;
    };

    // Rejection-sample a feasible start: the feasible region is a
    // minority of the lattice (~19% on the default range), and an
    // infeasible start can never move — every move is only accepted
    // into feasibility, so the walk would probe the start's neighbors
    // until the step budget ran out.
    constexpr int kStartAttempts = 128;
    LatticeState cur;
    bool started = false;
    for (int attempt = 0; attempt < kStartAttempts && !started;
         ++attempt) {
        for (int d = 0; d < 4; ++d) {
            cur.idx[static_cast<std::size_t>(d)] =
                rng.uniformInt(dimSize(range, d));
        }
        const Counts c = countsAt(range, cur);
        started = explorer
                      .buildCandidate(c.ddr5, c.cxl_ddr4, c.new_ssd,
                                      c.reused_ssd)
                      .has_value();
    }
    double cur_savings = -std::numeric_limits<double>::infinity();
    {
        obs::profileWork("sa_moves");
        ++out.stats.moves;
        std::string name;
        const SearchEval *eval =
            started ? visit(cur, &name) : nullptr;
        if (eval != nullptr) {
            cur_savings = eval->savings.total_savings;
            ++out.stats.accepted;
            if (ledger) {
                noteMove(restart, step, "start", name, true, "start");
            }
        } else {
            // No feasible start found: the restart contributes nothing
            // (the range is all-infeasible or nearly so).
            ++out.stats.rejected;
            ++out.stats.infeasible;
            if (ledger) {
                noteMove(restart, step, "start",
                         candidateName(countsAt(range, cur)), false,
                         "infeasible");
            }
            return out;
        }
    }

    // Annealing: geometric cooling, Metropolis acceptance on the
    // total-savings energy (the explore() ranking objective).
    double temp = options.initial_temperature;
    for (int s = 0; s < options.steps; ++s, temp *= options.cooling) {
        ++step;
        obs::profileWork("sa_moves");
        ++out.stats.moves;
        const Move &mv =
            kMoves[rng.uniformInt(static_cast<std::uint64_t>(kMoveCount))];
        const std::size_t dim = static_cast<std::size_t>(mv.dim);
        const std::size_t at = cur.idx[dim];
        if ((mv.delta < 0 && at == 0) ||
            (mv.delta > 0 && at + 1 >= dimSize(range, mv.dim))) {
            ++out.stats.rejected;
            if (ledger) {
                noteMove(restart, step, mv.name,
                         candidateName(countsAt(range, cur)), false,
                         "bounds");
            }
            continue;
        }
        LatticeState next = cur;
        next.idx[dim] = mv.delta > 0 ? at + 1 : at - 1;
        std::string name;
        const SearchEval *eval = visit(next, &name);
        if (eval == nullptr) {
            ++out.stats.rejected;
            ++out.stats.infeasible;
            if (ledger) {
                noteMove(restart, step, mv.name, name, false,
                         "infeasible");
            }
            continue;
        }
        const double delta = eval->savings.total_savings - cur_savings;
        bool take = delta >= 0.0;
        const char *reason = "improve";
        if (!take) {
            // Metropolis: accept a worsening move with p = e^(Δ/T).
            reason = "metropolis";
            take = rng.uniform() < std::exp(delta / temp);
        }
        if (take) {
            cur = next;
            cur_savings = eval->savings.total_savings;
            ++out.stats.accepted;
        } else {
            ++out.stats.rejected;
        }
        if (ledger) {
            noteMove(restart, step, mv.name, name, take, reason);
        }
    }

    // Quench: deterministic steepest-ascent from the restart's best
    // state until no neighbor improves, so every restart ends on a
    // local optimum of (total_savings desc, name asc).
    if (out.found) {
        LatticeState q = out.best_state;
        carbon::SavingsRow q_savings = out.best.savings;
        std::string q_name = out.best.sku.name;
        for (;;) {
            const SearchEval *chosen = nullptr;
            LatticeState chosen_state;
            std::string chosen_name;
            const char *chosen_move = nullptr;
            for (const Move &mv : kMoves) {     // Fixed scan order.
                const std::size_t dim = static_cast<std::size_t>(mv.dim);
                const std::size_t at = q.idx[dim];
                if ((mv.delta < 0 && at == 0) ||
                    (mv.delta > 0 && at + 1 >= dimSize(range, mv.dim))) {
                    continue;
                }
                LatticeState n = q;
                n.idx[dim] = mv.delta > 0 ? at + 1 : at - 1;
                std::string name;
                const SearchEval *eval = visit(n, &name);
                if (eval == nullptr) {
                    continue;
                }
                if (chosen == nullptr ||
                    betterDesign(eval->savings, name, chosen->savings,
                                 chosen_name)) {
                    chosen = eval;
                    chosen_state = n;
                    chosen_name = name;
                    chosen_move = mv.name;
                }
            }
            if (chosen == nullptr ||
                !betterDesign(chosen->savings, chosen_name, q_savings,
                              q_name)) {
                break;      // Local optimum: no strictly-better step.
            }
            ++step;
            obs::profileWork("sa_moves");
            ++out.stats.moves;
            ++out.stats.accepted;
            if (ledger) {
                noteMove(restart, step, chosen_move, chosen_name, true,
                         "quench");
            }
            q = chosen_state;
            q_savings = chosen->savings;
            q_name = chosen_name;
        }
    }
    return out;
}

} // namespace

SkuSearch::SkuSearch(carbon::ModelParams carbon_params,
                     TcoParams tco_params, perf::PerfConfig perf_config,
                     DesignConstraints constraints)
    : carbon_params_(carbon_params), tco_params_(tco_params),
      perf_config_(perf_config), constraints_(constraints),
      model_(carbon_params_), tco_(tco_params_, carbon_params_),
      perf_(perf_config_), explorer_(model_, constraints_)
{
}

SearchEval
SkuSearch::evaluateUncached(const carbon::ServerSku &baseline,
                            const carbon::ServerSku &candidate) const
{
    SearchEval eval;
    eval.savings = model_.savingsVs(baseline, candidate);
    eval.objectives.carbon_per_core_kg =
        model_.perCore(candidate).total().asKg();
    eval.objectives.tco_per_core_usd =
        tco_.perCore(candidate).total().asUsd();

    // SLO margin: worst-case relative p95 headroom across the
    // latency-reporting apps, each at the VM size its scaling factor
    // selected. The candidate's one perf-relevant attribute is whether
    // its memory is CXL-backed (§III latency penalty).
    const bool cxl_backed = candidate.cxl_memory.asGb() > 0.0;
    const perf::CpuSpec baseline_cpu =
        perf::CpuCatalog::forGeneration(baseline.generation);
    const perf::CpuSpec green = perf::CpuCatalog::bergamo();
    double margin = std::numeric_limits<double>::infinity();
    for (const perf::AppProfile &app : perf::AppCatalog::all()) {
        if (app.throughput_only) {
            continue;
        }
        // Apps that cannot meet their SLO even on a DDR5-only design
        // (Masstree/Silo-class, §III) are undeployable on *every*
        // candidate in this space; keeping them would pin the margin
        // at -1 for all designs and erase the objective.
        const perf::ScalingResult reference =
            perf_.scalingFactor(app, baseline_cpu,
                                /*cxl_backed=*/false);
        if (!reference.feasible) {
            continue;
        }
        const perf::ScalingResult scaling =
            cxl_backed
                ? perf_.scalingFactor(app, baseline_cpu, true)
                : reference;
        double app_margin = -1.0;   // No candidate VM size meets SLO.
        if (scaling.feasible) {
            const perf::SloSpec slo = perf_.slo(app, baseline_cpu);
            const double p95 = perf_.p95LatencyMs(
                app, green, scaling.green_cores, slo.load_qps,
                cxl_backed);
            app_margin = (slo.p95_ms - p95) / slo.p95_ms;
        }
        margin = std::min(margin, app_margin);
    }
    // An empty latency-app catalog leaves no SLO to violate.
    eval.objectives.slo_margin = std::isfinite(margin) ? margin : 0.0;
    return eval;
}

SearchEval
SkuSearch::evaluate(const carbon::ServerSku &baseline,
                    const carbon::ServerSku &candidate) const
{
    EvalCache *cache = evalCache();
    if (cache == nullptr) {
        return evaluateUncached(baseline, candidate);
    }
    const std::string key = searchEvalCacheKey(
        baseline, candidate, carbon_params_, tco_params_, perf_config_);
    if (auto payload = cache->fetch(key, "search_eval")) {
        // Hit vs miss cost split (see evaluator.cc).
        obs::ProfileScope hit("evalcache.hit");
        SearchEval eval;
        std::vector<std::string> captured;
        if (decodeSearchEval(*payload, &eval, &captured)) {
            obs::profileWork();
            obs::replayLedgerLines(captured);
            return eval;
        }
        cache->noteUndecodable();   // Undecodable payload: recompute.
    }
    obs::ProfileScope miss("evalcache.miss");
    obs::profileWork();
    obs::LedgerCapture capture;
    const SearchEval eval = evaluateUncached(baseline, candidate);
    cache->store(key, "search_eval",
                 encodeSearchEval(eval, capture.lines()));
    return eval;
}

SearchResult
SkuSearch::anneal(const carbon::ServerSku &baseline,
                  const SearchOptions &options) const
{
    obs::ProfileScope prof("search.anneal");
    obs::TraceSpan span("search", "anneal");
    GSKU_REQUIRE(options.restarts > 0 && options.steps > 0,
                 "search needs at least one restart and one step");
    GSKU_REQUIRE(options.initial_temperature > 0.0 &&
                     options.cooling > 0.0 && options.cooling < 1.0,
                 "cooling schedule must be geometric with T0 > 0");
    GSKU_REQUIRE(!options.range.ddr5_dimms.empty() &&
                     !options.range.cxl_ddr4_dimms.empty() &&
                     !options.range.new_ssds.empty() &&
                     !options.range.reused_ssds.empty(),
                 "search range must not be empty");

    // Pre-fork every restart's stream from the master seed NOW, in
    // restart order: the seed alone determines each trajectory, no
    // matter which worker runs it.
    Rng master(options.seed);
    std::vector<Rng> streams;
    streams.reserve(static_cast<std::size_t>(options.restarts));
    for (int r = 0; r < options.restarts; ++r) {
        streams.push_back(master.fork());
    }

    auto run_restart = [&](std::size_t r) -> RestartOutcome {
        return runRestart(*this, explorer_, baseline, options,
                          static_cast<int>(r), streams[r]);
    };
    // With a ledger capture live on this thread (a caller is recording
    // an eval-cache payload), run restarts serially: captures are
    // thread-local, and facts emitted on pool workers would escape it.
    std::vector<RestartOutcome> outcomes;
    if (obs::ledgerCaptureActive()) {
        outcomes.reserve(static_cast<std::size_t>(options.restarts));
        for (std::size_t r = 0;
             r < static_cast<std::size_t>(options.restarts); ++r) {
            outcomes.push_back(run_restart(r));
        }
    } else {
        outcomes = parallelMap<RestartOutcome>(
            static_cast<std::size_t>(options.restarts), run_restart);
    }

    // Merge in restart-index order (deterministic at any thread
    // count); the archive's dominance filter is order-independent, so
    // the frontier is a pure function of the union of points.
    SearchResult result;
    for (const RestartOutcome &out : outcomes) {
        if (out.found &&
            (!result.found ||
             betterDesign(out.best.savings, out.best.sku.name,
                          result.best.savings, result.best.sku.name))) {
            result.found = true;
            result.best = out.best;
            result.best_objectives = out.best_objectives;
        }
        for (const ParetoPoint &p : out.points) {
            result.archive.insert(p);
        }
        result.stats.moves += out.stats.moves;
        result.stats.accepted += out.stats.accepted;
        result.stats.rejected += out.stats.rejected;
        result.stats.infeasible += out.stats.infeasible;
        result.stats.evaluations += out.stats.evaluations;
    }

    counters().moves.inc(static_cast<std::uint64_t>(result.stats.moves));
    counters().accepted.inc(
        static_cast<std::uint64_t>(result.stats.accepted));
    counters().rejected.inc(
        static_cast<std::uint64_t>(result.stats.rejected));
    counters().evals.inc(
        static_cast<std::uint64_t>(result.stats.evaluations));
    counters().restarts.inc(static_cast<std::uint64_t>(options.restarts));
    span.arg("moves", static_cast<std::uint64_t>(result.stats.moves))
        .arg("archive",
             static_cast<std::uint64_t>(result.archive.size()));
    return result;
}

} // namespace gsku::gsf
