#include "gsf/design_space.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "carbon/catalog.h"
#include "common/error.h"
#include "common/parallel.h"
#include "gsf/eval_cache.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace gsku::gsf {

DesignSpaceExplorer::DesignSpaceExplorer(const carbon::CarbonModel &model,
                                         DesignConstraints constraints)
    : model_(model), constraints_(constraints)
{
    GSKU_REQUIRE(constraints_.min_mem_per_core > 0.0 &&
                     constraints_.min_mem_per_core <=
                         constraints_.max_mem_per_core,
                 "memory:core bounds must be ordered and positive");
    GSKU_REQUIRE(constraints_.max_cxl_fraction >= 0.0 &&
                     constraints_.max_cxl_fraction <= 1.0,
                 "CXL fraction bound must be in [0, 1]");
    GSKU_REQUIRE(constraints_.max_cxl_cards >= 0 &&
                     constraints_.max_ssd_units >= 0,
                 "capacity bounds must be non-negative");
}

std::optional<carbon::ServerSku>
DesignSpaceExplorer::buildCandidate(int ddr5_dimms, int cxl_ddr4_dimms,
                                    int new_ssds, int reused_ssds) const
{
    GSKU_REQUIRE(ddr5_dimms >= 0 && cxl_ddr4_dimms >= 0 &&
                     new_ssds >= 0 && reused_ssds >= 0,
                 "component counts must be non-negative");
    using carbon::Catalog;

    const double local_gb = ddr5_dimms * 64.0;
    const double cxl_gb = cxl_ddr4_dimms * 32.0;
    const double total_gb = local_gb + cxl_gb;
    const double storage_tb = new_ssds * 4.0 + reused_ssds * 1.0;
    const int cxl_cards = (cxl_ddr4_dimms + 3) / 4;

    const double mem_per_core = total_gb / 128.0;
    const double cxl_fraction = total_gb > 0.0 ? cxl_gb / total_gb : 0.0;

    std::ostringstream name;
    name << "B/" << ddr5_dimms << "x64/" << cxl_ddr4_dimms << "x32cxl/"
         << new_ssds << "+" << reused_ssds << "ssd";

    // Check deployability constraints one at a time so the verdict can
    // name the first (binding) violation and its margin.
    const char *violated = nullptr;
    double value = 0.0;
    double limit = 0.0;
    if (mem_per_core < constraints_.min_mem_per_core) {
        violated = "min_mem_per_core";
        value = mem_per_core;
        limit = constraints_.min_mem_per_core;
    } else if (mem_per_core > constraints_.max_mem_per_core) {
        violated = "max_mem_per_core";
        value = mem_per_core;
        limit = constraints_.max_mem_per_core;
    } else if (cxl_fraction > constraints_.max_cxl_fraction) {
        violated = "max_cxl_fraction";
        value = cxl_fraction;
        limit = constraints_.max_cxl_fraction;
    } else if (cxl_cards > constraints_.max_cxl_cards) {
        violated = "max_cxl_cards";
        value = cxl_cards;
        limit = constraints_.max_cxl_cards;
    } else if (new_ssds + reused_ssds > constraints_.max_ssd_units) {
        violated = "max_ssd_units";
        value = new_ssds + reused_ssds;
        limit = constraints_.max_ssd_units;
    } else if (storage_tb < constraints_.min_storage_tb) {
        violated = "min_storage_tb";
        value = storage_tb;
        limit = constraints_.min_storage_tb;
    }
    if (obs::ledgerEnabled()) {
        obs::LedgerEntry entry(obs::LedgerEvent::DesignVerdict);
        entry.field("candidate", name.str())
            .field("feasible", violated == nullptr)
            .field("constraint", violated != nullptr ? violated : "none");
        if (violated != nullptr) {
            entry.field("value", value).field("limit", limit);
        }
    }
    if (violated != nullptr) {
        return std::nullopt;
    }

    carbon::ServerSku sku;
    sku.name = name.str();
    sku.generation = carbon::Generation::GreenSku;
    sku.cores = 128;
    sku.local_memory = MemCapacity::gb(local_gb);
    sku.cxl_memory = MemCapacity::gb(cxl_gb);
    sku.storage = StorageCapacity::tb(storage_tb);
    sku.slots = {{Catalog::bergamoCpu(), 1}, {Catalog::serverMisc(), 1}};
    if (ddr5_dimms > 0) {
        sku.slots.push_back({Catalog::ddr5Dimm(64.0), ddr5_dimms});
    }
    if (cxl_ddr4_dimms > 0) {
        sku.slots.push_back(
            {Catalog::reusedDdr4Dimm(32.0), cxl_ddr4_dimms});
        sku.slots.push_back({Catalog::cxlController(), cxl_cards});
    }
    if (new_ssds > 0) {
        sku.slots.push_back({Catalog::newSsd(4.0), new_ssds});
    }
    if (reused_ssds > 0) {
        sku.slots.push_back({Catalog::reusedSsd(1.0), reused_ssds});
    }
    sku.validate();
    return sku;
}

std::vector<RankedDesign>
DesignSpaceExplorer::explore(const carbon::ServerSku &baseline,
                             const DesignRange &range,
                             long *considered) const
{
    obs::ProfileScope prof("design_space.explore");
    EvalCache *cache = evalCache();
    if (cache == nullptr) {
        return exploreUncached(baseline, range, considered);
    }
    const std::string key = designSpaceCacheKey(
        baseline, range, constraints_, model_.params());
    if (auto payload = cache->fetch(key, "design_space")) {
        // Hit vs miss cost split (see evaluator.cc).
        obs::ProfileScope hit("evalcache.hit");
        std::vector<RankedDesign> designs;
        long cached_considered = 0;
        std::vector<std::string> captured;
        if (decodeRankedDesigns(*payload, &designs, &cached_considered,
                                &captured)) {
            obs::profileWork();
            obs::replayLedgerLines(captured);
            if (considered != nullptr) {
                *considered = cached_considered;
            }
            return designs;
        }
        cache->noteUndecodable();    // Undecodable payload: recompute.
    }
    obs::ProfileScope miss("evalcache.miss");
    obs::profileWork();
    obs::LedgerCapture capture;
    long fresh_considered = 0;
    std::vector<RankedDesign> designs =
        exploreUncached(baseline, range, &fresh_considered);
    cache->store(key, "design_space",
                 encodeRankedDesigns(designs, fresh_considered,
                                     capture.lines()));
    if (considered != nullptr) {
        *considered = fresh_considered;
    }
    return designs;
}

std::vector<RankedDesign>
DesignSpaceExplorer::exploreUncached(const carbon::ServerSku &baseline,
                                     const DesignRange &range,
                                     long *considered) const
{
    GSKU_REQUIRE(!range.ddr5_dimms.empty() &&
                     !range.cxl_ddr4_dimms.empty() &&
                     !range.new_ssds.empty() &&
                     !range.reused_ssds.empty(),
                 "design range must not be empty");
    obs::TraceSpan span("design_space", "explore");
    // Enumerate combinations up front (cheap), evaluate candidates on
    // the worker pool, then collect survivors in enumeration order so
    // the result is identical at every thread count.
    struct Combo
    {
        int ddr5 = 0;
        int ddr4 = 0;
        int new_ssd = 0;
        int reused_ssd = 0;
    };
    std::vector<Combo> combos;
    combos.reserve(range.ddr5_dimms.size() *
                   range.cxl_ddr4_dimms.size() * range.new_ssds.size() *
                   range.reused_ssds.size());
    for (int ddr5 : range.ddr5_dimms) {
        for (int ddr4 : range.cxl_ddr4_dimms) {
            for (int new_ssd : range.new_ssds) {
                for (int reused_ssd : range.reused_ssds) {
                    combos.push_back(
                        Combo{ddr5, ddr4, new_ssd, reused_ssd});
                }
            }
        }
    }

    auto evaluate_one =
        [&](std::size_t i) -> std::optional<RankedDesign> {
        // One work unit per candidate SKU evaluated.
        obs::profileWork("candidates");
        const Combo &c = combos[i];
        const auto sku =
            buildCandidate(c.ddr5, c.ddr4, c.new_ssd, c.reused_ssd);
        if (!sku) {
            return std::nullopt;
        }
        return RankedDesign{*sku, model_.savingsVs(baseline, *sku)};
    };
    // With a ledger capture live (an eval-cache store in progress),
    // evaluate on THIS thread: captures are thread-local, and
    // design.verdict facts emitted on pool workers would escape the
    // payload being recorded.
    std::vector<std::optional<RankedDesign>> evaluated;
    if (obs::ledgerCaptureActive()) {
        evaluated.reserve(combos.size());
        for (std::size_t i = 0; i < combos.size(); ++i) {
            evaluated.push_back(evaluate_one(i));
        }
    } else {
        evaluated = parallelMap<std::optional<RankedDesign>>(
            combos.size(), evaluate_one);
    }

    std::vector<RankedDesign> designs;
    for (const auto &d : evaluated) {
        if (d) {
            designs.push_back(*d);
        }
    }
    static obs::Counter &candidates =
        obs::metrics().counter("design_space.candidates");
    static obs::Counter &feasible =
        obs::metrics().counter("design_space.feasible");
    candidates.inc(static_cast<std::uint64_t>(combos.size()));
    feasible.inc(static_cast<std::uint64_t>(designs.size()));
    span.arg("candidates", static_cast<std::uint64_t>(combos.size()))
        .arg("feasible", static_cast<std::uint64_t>(designs.size()));
    if (considered != nullptr) {
        *considered = static_cast<long>(combos.size());
    }
    std::sort(designs.begin(), designs.end(), rankedDesignLess);
    return designs;
}

bool
rankedDesignLess(const RankedDesign &a, const RankedDesign &b)
{
    if (a.savings.total_savings != b.savings.total_savings) {
        return a.savings.total_savings > b.savings.total_savings;
    }
    // Tie key: sku.name (unique per candidate), so equal-savings
    // candidates rank deterministically on every standard library.
    return a.sku.name < b.sku.name;
}

std::size_t
DesignSpaceExplorer::rankOf(const std::vector<RankedDesign> &designs,
                            const carbon::SavingsRow &savings)
{
    GSKU_REQUIRE(std::isfinite(savings.total_savings),
                 "rankOf needs finite savings");
    // Competition ranking: 1 + count of strictly-greater entries, so
    // ties share the best rank (see the header contract).
    std::size_t rank = 1;
    for (const RankedDesign &d : designs) {
        GSKU_REQUIRE(std::isfinite(d.savings.total_savings),
                     "rankOf needs finite savings");
        if (d.savings.total_savings > savings.total_savings) {
            ++rank;
        }
    }
    return rank;
}

} // namespace gsku::gsf
