/**
 * @file
 * Dominance-filtered Pareto archive over the three design objectives
 * the SA search engine (gsf/search.h) trades off: lifetime carbon per
 * core, lifetime TCO per core, and perf-SLO margin. §VIII of the paper
 * anticipates a search framework that "could ... repeatedly run GSF to
 * evaluate emissions"; a single scalar verdict cannot express the
 * carbon/cost/performance tension, so the search reports the whole
 * non-dominated frontier instead.
 *
 * Determinism contract: the archive is a *set* — the non-dominated
 * subset of everything inserted — so its contents are independent of
 * insertion order, and points() renders them in one canonical order
 * (carbon asc, tco asc, margin desc, name asc). Byte-identical at any
 * thread count when fed byte-identical points (asserted by
 * tests/gsf/search_test.cc and parallel_parity_test.cc).
 */
#pragma once

#include <string>
#include <vector>

#include "carbon/model.h"

namespace gsku::gsf {

/** The three search objectives of one evaluated design. */
struct SearchObjectives
{
    /** DC-amortized lifetime emissions per core, kgCO2e (minimize). */
    double carbon_per_core_kg = 0.0; // lint-ok: raw-double-units per-core ratio; raw bits are the dominance/render surface

    /** Rack-amortized lifetime cost per core, USD (minimize). */
    double tco_per_core_usd = 0.0; // lint-ok: raw-double-units per-core ratio; raw bits are the dominance/render surface

    /**
     * Worst-case relative p95 headroom against the baseline-derived
     * SLO across latency-reporting apps (maximize). Apps that cannot
     * meet their SLO even on a DDR5-only design are excluded (they are
     * undeployable on every candidate, so they differentiate nothing);
     * -1 when a remaining app cannot meet its SLO on this design at
     * any candidate VM size (the CXL latency penalty, §III).
     */
    double slo_margin = 0.0;
};

/** One non-dominated design: identity, objectives, and the savings row
 *  the carbon model produced for it. */
struct ParetoPoint
{
    std::string name;               ///< Candidate SKU name (unique).
    SearchObjectives objectives;
    carbon::SavingsRow savings;
};

/**
 * The archive. insert() keeps the set non-dominated: a new point is
 * dropped when an existing point dominates it, and evicts every point
 * it dominates. Points with identical objectives all survive (neither
 * dominates), except exact name duplicates, which collapse to one.
 */
class ParetoArchive
{
  public:
    /** True iff @p a dominates @p b: no worse in every objective and
     *  strictly better in at least one. */
    static bool dominates(const SearchObjectives &a,
                          const SearchObjectives &b);

    /** Offer @p point; true iff it joined the archive. */
    bool insert(const ParetoPoint &point);

    /** Insert every point of @p other (archive merge). */
    void merge(const ParetoArchive &other);

    /** Number of points currently held. */
    std::size_t size() const { return points_.size(); }

    /** The frontier in canonical order: carbon asc, then tco asc, then
     *  margin desc, then name asc (a total order — names are unique). */
    std::vector<ParetoPoint> points() const;

    /**
     * Canonical text rendering, one `name carbonbits tcobits marginbits
     * savingsbits` line per point in points() order, doubles as 16-hex
     * bit patterns — the byte-identity surface the parity tests and
     * bench_search checksums compare.
     */
    std::string render() const;

  private:
    std::vector<ParetoPoint> points_;   ///< Unordered working set.
};

} // namespace gsku::gsf
