/**
 * @file
 * Heterogeneous-compute extension of GSF (§VIII): "Extending GSF to
 * study GreenSKUs with heterogeneous accelerators ... the adoption
 * model's 'scaling factor' may need to reflect scaling out across CPUs
 * and/or accelerators. Such extensions can help study accelerator-reuse
 * for less compute-intensive ML models."
 *
 * This module generalizes the adoption comparison to three ways of
 * serving an ML-inference workload's baseline-equivalent throughput:
 *
 *  1. the baseline SKU's CPU cores (the status quo),
 *  2. GreenSKU CPU cores scaled by the performance component's factor,
 *  3. a small GreenSKU host slice plus inference accelerator cards —
 *     either new cards, or reused previous-generation cards
 *     (second-life, zero embodied, lower throughput, worse perf/W).
 *
 * The decision picks the lowest-carbon feasible option, exactly like
 * the homogeneous adoption component.
 */
#pragma once

#include <string>
#include <vector>

#include "carbon/model.h"
#include "carbon/sku.h"
#include "perf/model.h"

namespace gsku::gsf {

/** An inference accelerator card as the carbon model sees it. */
struct AcceleratorSpec
{
    std::string name;
    Power tdp;
    CarbonMass embodied;

    /**
     * Sustained inference throughput of one card relative to one Genoa
     * core running the same model (cards serve many streams).
     */
    double relative_throughput = 10.0;

    bool reused = false;

    /** A current-generation 75 W inference card (new). */
    static AcceleratorSpec newInferenceCard();

    /** A reused previous-generation card: zero embodied, ~2/3 the
     *  throughput, worse perf/W (§VIII's accelerator-reuse candidate). */
    static AcceleratorSpec reusedInferenceCard();
};

/** One way of serving the workload, with its carbon price. */
struct HeteroOption
{
    std::string label;
    bool feasible = false;
    double green_cores = 0.0;       ///< GreenSKU host cores used.
    int accelerators = 0;
    CarbonMass carbon;              ///< Lifetime CO2e for the deployment.
};

/** The chosen option plus all candidates (for reporting). */
struct HeteroDecision
{
    std::vector<HeteroOption> options;  ///< Baseline first.
    std::size_t best = 0;               ///< Index of the winner.

    const HeteroOption &chosen() const { return options[best]; }

    /** True when an accelerator option wins. */
    bool offloads() const;
};

/** The generalized adoption model. */
class HeteroAdoptionModel
{
  public:
    HeteroAdoptionModel(const perf::PerfModel &perf,
                        const carbon::CarbonModel &carbon);

    /**
     * Lifetime carbon attributable to one accelerator card at @p ci
     * (embodied + derated power over the server lifetime with PUE).
     */
    CarbonMass acceleratorCarbon(const AcceleratorSpec &accel,
                                 CarbonIntensity ci) const;

    /**
     * Compare serving @p app's baseline 8-core-equivalent throughput on
     * (1) the baseline SKU, (2) GreenSKU CPU cores, (3) GreenSKU host +
     * each accelerator in @p accelerators.
     *
     * @param host_cores GreenSKU cores kept for pre/post-processing in
     *        the accelerated options.
     */
    HeteroDecision
    decide(const perf::AppProfile &app, carbon::Generation origin_gen,
           const carbon::ServerSku &baseline,
           const carbon::ServerSku &green,
           const std::vector<AcceleratorSpec> &accelerators,
           CarbonIntensity ci, double host_cores = 2.0) const;

  private:
    const perf::PerfModel &perf_;
    const carbon::CarbonModel &carbon_;
};

} // namespace gsku::gsf
