#include "gsf/lifetime.h"

#include <cmath>

#include "common/error.h"

namespace gsku::gsf {

LifetimeExtensionModel::LifetimeExtensionModel(
    carbon::ModelParams carbon_params, reliability::AfrParams afr_params,
    LifetimeParams lifetime_params)
    : carbon_params_(carbon_params), afr_params_(afr_params),
      lifetime_params_(lifetime_params)
{
    GSKU_REQUIRE(lifetime_params_.wearout_onset_years > 0.0,
                 "wear-out onset must be positive");
    GSKU_REQUIRE(lifetime_params_.afr_growth_per_year >= 0.0,
                 "AFR growth must be non-negative");
    GSKU_REQUIRE(lifetime_params_.generational_perf_per_year >= 0.0,
                 "generational improvement must be non-negative");
    GSKU_REQUIRE(lifetime_params_.repair_carbon_fraction >= 0.0,
                 "repair carbon fraction must be non-negative");
}

double
LifetimeExtensionModel::afrAtAge(const carbon::ServerSku &sku,
                                 double years) const
{
    GSKU_REQUIRE(years >= 0.0, "age must be non-negative");
    const reliability::MaintenanceModel maintenance(afr_params_);
    const double base = maintenance.serverAfr(sku);
    const double past =
        std::max(0.0, years - lifetime_params_.wearout_onset_years);
    return base * (1.0 + lifetime_params_.afr_growth_per_year * past);
}

LifetimePoint
LifetimeExtensionModel::evaluate(const carbon::ServerSku &sku,
                                 double years) const
{
    GSKU_REQUIRE(years > 0.0, "lifetime must be positive");

    const carbon::CarbonModel model(carbon_params_);
    const double cores = static_cast<double>(sku.cores);

    LifetimePoint point;
    point.years = years;
    point.afr = afrAtAge(sku, years);

    // Embodied amortizes over the whole lifetime.
    point.embodied_per_core_year =
        model.serverEmbodied(sku) / (cores * years);

    // Operational per delivered-core-year: the server's power is
    // constant, but each year of age forgoes generational per-core
    // performance, so the *effective* (delivered-work-normalized) core
    // count of an old server shrinks relative to the current fleet.
    // Average the per-effective-core energy over the lifetime.
    const CarbonMass op_per_year =
        model.serverPower(sku) * Duration::years(1.0) *
        carbon_params_.carbon_intensity * carbon_params_.pue;
    double inflation_sum = 0.0;
    const int steps = std::max(1, static_cast<int>(std::ceil(years)));
    for (int y = 0; y < steps; ++y) {
        const double span =
            std::min(1.0, years - static_cast<double>(y));
        const double mid_age = static_cast<double>(y) + span / 2.0;
        inflation_sum +=
            span *
            std::pow(1.0 + lifetime_params_.generational_perf_per_year,
                     mid_age);
    }
    point.operational_per_core_year =
        op_per_year * (inflation_sum / years) / cores;

    // Maintenance: repairs per year (FIP-mitigated), each costing a
    // fraction of annual operational emissions; averaged over life.
    const reliability::MaintenanceModel maintenance(afr_params_);
    const double flat_repairs = maintenance.repairRate(sku) / 100.0;
    double repair_sum = 0.0;
    for (int y = 0; y < steps; ++y) {
        const double span =
            std::min(1.0, years - static_cast<double>(y));
        const double mid_age = static_cast<double>(y) + span / 2.0;
        const double aging =
            afrAtAge(sku, mid_age) / maintenance.serverAfr(sku);
        repair_sum += span * flat_repairs * aging;
    }
    point.maintenance_per_core_year =
        op_per_year * lifetime_params_.repair_carbon_fraction *
        (repair_sum / years) / cores;

    return point;
}

std::vector<LifetimePoint>
LifetimeExtensionModel::sweep(const carbon::ServerSku &sku,
                              double from_years, double to_years,
                              double step_years) const
{
    GSKU_REQUIRE(from_years > 0.0 && from_years <= to_years,
                 "invalid lifetime range");
    GSKU_REQUIRE(step_years > 0.0, "step must be positive");
    std::vector<LifetimePoint> points;
    for (double y = from_years; y <= to_years + 1e-9; y += step_years) {
        points.push_back(evaluate(sku, y));
    }
    return points;
}

double
LifetimeExtensionModel::optimalLifetimeYears(const carbon::ServerSku &sku,
                                             double lo, double hi) const
{
    GSKU_REQUIRE(0.0 < lo && lo < hi, "invalid search range");
    // Golden-section search; the objective is unimodal (embodied
    // amortization is convex-decreasing, aging penalties increasing).
    const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
    double a = lo;
    double b = hi;
    double x1 = b - phi * (b - a);
    double x2 = a + phi * (b - a);
    double f1 = evaluate(sku, x1).total().asKg();
    double f2 = evaluate(sku, x2).total().asKg();
    for (int i = 0; i < 80 && (b - a) > 1e-6; ++i) {
        if (f1 < f2) {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - phi * (b - a);
            f1 = evaluate(sku, x1).total().asKg();
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + phi * (b - a);
            f2 = evaluate(sku, x2).total().asKg();
        }
    }
    return 0.5 * (a + b);
}

} // namespace gsku::gsf
