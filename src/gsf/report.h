/**
 * @file
 * One-call reproduction report: runs the whole GSF pipeline — carbon
 * tables, scaling factors, maintenance, tiering, cluster sweep, DC
 * chain, and the §VII alternatives — and gathers every headline number
 * into a single struct. This is the programmatic equivalent of running
 * all bench binaries; downstream users embed it for regression tracking
 * against the paper.
 */
#pragma once

#include <string>
#include <vector>

#include "carbon/model.h"
#include "gsf/evaluator.h"

namespace gsku::gsf {

/** Everything the paper's evaluation headlines, in one place. */
struct ReproductionReport
{
    // §V worked example.
    Power example_server_power;                 ///< Paper: 403 W.
    CarbonMass example_server_embodied;         ///< Paper: 1644 kg.
    int example_servers_per_rack = 0;           ///< Paper: 16.
    CarbonMass example_rack_per_core;           ///< Paper: 31 kg.

    // Table VIII (per-core savings vs baseline).
    std::vector<carbon::SavingsRow> savings_table;

    // Table III digest.
    int scaling_cells_feasible = 0;             ///< Of 57 cells.
    int scaling_cells_unscaled = 0;             ///< Factor-1 cells.

    // §V maintenance.
    double baseline_afr = 0.0;                  ///< Paper: 4.8.
    double green_full_afr = 0.0;                ///< Paper: 7.2.
    double baseline_repair_rate = 0.0;          ///< Paper: 3.0.
    double green_full_repair_rate = 0.0;        ///< Paper: 3.6.

    // §III / §VI CXL claims.
    double tiering_share_under_5pct = 0.0;      ///< Paper: 0.98.
    double cxl_tolerant_core_hours = 0.0;       ///< Paper: 0.202.

    // §VI cluster evaluation (GreenSKU-Full).
    double cluster_savings_at_mean_ci = 0.0;    ///< At CI = 0.1.
    double mean_cluster_savings = 0.0;          ///< Over the CI sweep.
    double dc_savings = 0.0;                    ///< Paper: ~0.07-0.08.

    // §VII-B alternatives.
    double lifetime_equivalent_years = 0.0;     ///< Paper: 13.
    double efficiency_equivalent = 0.0;         ///< Paper: 0.28.
    double renewables_equivalent_pp = 0.0;      ///< Paper: 0.026.

    /** Render as a human-readable summary. */
    std::string render() const;
};

/** Report generation knobs (defaults match the bench binaries). */
struct ReportOptions
{
    GsfEvaluator::Options evaluator;
    int traces = 6;
    std::uint64_t trace_seed = 11;
    double trace_concurrent_vms = 450.0;
    std::vector<double> ci_grid = {0.0,  0.05, 0.1, 0.15, 0.2,
                                   0.25, 0.3,  0.35, 0.4, 0.45};
};

/** Run the full pipeline and gather the report. */
ReproductionReport generateReport(const ReportOptions &options = {});

} // namespace gsku::gsf
