/**
 * @file
 * Total-Cost-of-Ownership variant of the carbon model (§VII-A): GSF's
 * structure with the carbon model swapped for a cost model. Component
 * prices are public list-price estimates (the paper's TCO data is
 * sensitive); the query of interest is relative cost between SKUs, e.g.
 * the paper's "a cost-efficient SKU is only 5% less costly than our
 * carbon-efficient GreenSKU".
 *
 * All monetary quantities use the strong types in common/units.h
 * (Cost, EnergyPrice, MemPrice, StoragePrice) so dollars can never be
 * silently mixed with kgCO2e or kWh.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "carbon/catalog.h"
#include "carbon/sku.h"
#include "common/units.h"

namespace gsku::gsf {

/** Cost parameters: component prices plus energy and facility costs. */
struct TcoParams
{
    /** Price per component, keyed by component name as in the catalog. */
    std::map<std::string, Cost> component_cost = {
        {"AMD Bergamo 128c", Cost::usd(9500.0)},
        {"AMD Genoa 80c", Cost::usd(7200.0)},
        {"AMD Milan 64c", Cost::usd(4200.0)},
        {"AMD Rome 64c", Cost::usd(2500.0)},
        {"DDR5 DIMM", Cost::usd(0.0)},             // priced per GB below
        {"Reused DDR4 DIMM (CXL)", Cost::usd(0.0)},
        {"E1.S NVMe SSD", Cost::usd(0.0)},         // priced per TB below
        {"Reused m.2 SSD", Cost::usd(80.0)},       // requalification/drive
        {"CXL controller", Cost::usd(450.0)},
        {"NIC/fans/board/PSU", Cost::usd(1400.0)},
    };

    MemPrice ddr5_price = MemPrice::usdPerGb(4.0);
    /** Requalification/handling cost of reused DDR4, per GB. */
    MemPrice reused_ddr4_price = MemPrice::usdPerGb(1.5);
    StoragePrice new_ssd_price = StoragePrice::usdPerTb(90.0);

    /** Electricity price. */
    EnergyPrice energy_price = EnergyPrice::usdPerKwh(0.08);

    /** Rack + facility cost amortized per rack over one lifetime. */
    Cost rack_cost = Cost::usd(3000.0);
    Cost dc_facility_cost = Cost::usd(20000.0);
};

/** Per-core lifetime cost, mirroring PerCoreEmissions. */
struct PerCoreCost
{
    Cost capex;
    Cost opex;

    Cost total() const { return capex + opex; }

    /** Contract check: costs are finite and non-negative; throws
     *  InternalError on violation (a sign error in the model). */
    void checkInvariants() const;
};

/**
 * One leaf of the per-core cost attribution: a catalog component name,
 * or the synthetic "rack_infra" leaf (rack + facility capex and the
 * empty rack's energy). Mirrors carbon::PerCoreTerm; leaves sum to
 * PerCoreCost within 1e-9 USD (attributePerCore() ENSUREs it).
 */
struct PerCoreCostTerm
{
    std::string component;
    Cost capex;
    Cost opex;

    Cost total() const { return capex + opex; }
};

/** Full per-core cost attribution: the headline plus its leaves. */
struct PerCoreCostAttribution
{
    PerCoreCost per_core;
    std::vector<PerCoreCostTerm> terms;
};

/**
 * The TCO model: same aggregation (server -> rack -> per-core, server
 * counts from the carbon model's rack fit) with dollars instead of
 * kgCO2e — demonstrating GSF's model-swap flexibility (§VII-A).
 */
class TcoModel
{
  public:
    TcoModel(TcoParams tco_params = TcoParams{},
             carbon::ModelParams carbon_params = carbon::ModelParams{});

    /** Server bill of materials. */
    Cost serverCapex(const carbon::ServerSku &sku) const;

    /** Lifetime energy cost of one server (including PUE). */
    Cost serverOpex(const carbon::ServerSku &sku) const;

    /** Rack-amortized per-core lifetime cost. */
    PerCoreCost perCore(const carbon::ServerSku &sku) const;

    /**
     * perCore() decomposed into per-component leaves (aggregated by
     * catalog component name, plus "rack_infra") — the cost half of
     * `gsku_explain --why` and the tco.per_core / tco.component ledger
     * events.
     */
    PerCoreCostAttribution
    attributePerCore(const carbon::ServerSku &sku) const;

    /** Cost of @p sku relative to @p reference (1.0 = equal). */
    double relativeCost(const carbon::ServerSku &reference,
                        const carbon::ServerSku &sku) const;

  private:
    TcoParams tco_;
    carbon::ModelParams carbon_params_;

    Cost componentPrice(const carbon::Component &component) const;
};

} // namespace gsku::gsf
