/**
 * @file
 * Total-Cost-of-Ownership variant of the carbon model (§VII-A): GSF's
 * structure with the carbon model swapped for a cost model. Component
 * prices are public list-price estimates (the paper's TCO data is
 * sensitive); the query of interest is relative cost between SKUs, e.g.
 * the paper's "a cost-efficient SKU is only 5% less costly than our
 * carbon-efficient GreenSKU".
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "carbon/catalog.h"
#include "carbon/sku.h"

namespace gsku::gsf {

/** Cost parameters: component prices plus energy and facility costs. */
struct TcoParams
{
    /** USD per component, keyed by component name as in the catalog. */
    std::map<std::string, double> component_price_usd = {
        {"AMD Bergamo 128c", 9500.0},
        {"AMD Genoa 80c", 7200.0},
        {"AMD Milan 64c", 4200.0},
        {"AMD Rome 64c", 2500.0},
        {"DDR5 DIMM", 0.0},             // priced per GB below
        {"Reused DDR4 DIMM (CXL)", 0.0},
        {"E1.S NVMe SSD", 0.0},         // priced per TB below
        {"Reused m.2 SSD", 80.0},       // requalification cost per drive
        {"CXL controller", 450.0},
        {"NIC/fans/board/PSU", 1400.0},
    };

    double ddr5_usd_per_gb = 4.0;
    /** Requalification/handling cost of reused DDR4, per GB. */
    double reused_ddr4_usd_per_gb = 1.5;
    double new_ssd_usd_per_tb = 90.0;

    /** Electricity price, USD per kWh. */
    double energy_usd_per_kwh = 0.08;

    /** Rack + facility cost amortized per rack over one lifetime. */
    double rack_usd = 3000.0;
    double dc_facility_usd_per_rack = 20000.0;
};

/** Per-core lifetime cost, mirroring PerCoreEmissions. */
struct PerCoreCost
{
    double capex_usd = 0.0;
    double opex_usd = 0.0;

    double total() const { return capex_usd + opex_usd; }
};

/**
 * The TCO model: same aggregation (server -> rack -> per-core, server
 * counts from the carbon model's rack fit) with dollars instead of
 * kgCO2e — demonstrating GSF's model-swap flexibility (§VII-A).
 */
class TcoModel
{
  public:
    TcoModel(TcoParams tco_params = TcoParams{},
             carbon::ModelParams carbon_params = carbon::ModelParams{});

    /** Server bill of materials, USD. */
    double serverCapexUsd(const carbon::ServerSku &sku) const;

    /** Lifetime energy cost of one server, USD. */
    double serverOpexUsd(const carbon::ServerSku &sku) const;

    /** Rack-amortized per-core lifetime cost. */
    PerCoreCost perCore(const carbon::ServerSku &sku) const;

    /** Cost of @p sku relative to @p reference (1.0 = equal). */
    double relativeCost(const carbon::ServerSku &reference,
                        const carbon::ServerSku &sku) const;

  private:
    TcoParams tco_;
    carbon::ModelParams carbon_params_;

    double componentPrice(const carbon::Component &component) const;
};

} // namespace gsku::gsf
