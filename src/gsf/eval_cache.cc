#include "gsf/eval_cache.h"

#include <cstdlib>
#include <mutex>

#include "cluster/trace_binary.h"
#include "common/error.h"
#include "common/parse.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace gsku::gsf {

namespace {

constexpr std::int64_t kDefaultMaxBytes = 256ll * 1024 * 1024;

const char kHexDigits[] = "0123456789abcdef";

std::string
toHex16(std::uint64_t v)
{
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kHexDigits[v & 0xfull];
        v >>= 4;
    }
    return out;
}

/** Strict 16-hex-digit decode; the payload format writes nothing else,
 *  so anything looser is corruption. */
bool
fromHex16(const std::string &s, std::uint64_t *out)
{
    if (s.size() != 16) {
        return false;
    }
    std::uint64_t v = 0;
    for (char c : s) {
        std::uint64_t nibble = 0;
        if (c >= '0' && c <= '9') {
            nibble = static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            nibble = static_cast<std::uint64_t>(c - 'a') + 10;
        } else {
            return false;
        }
        v = (v << 4) | nibble;
    }
    *out = v;
    return true;
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsToDouble(std::uint64_t bits)
{
    double v = 0.0;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
}

} // namespace

// ---------------------------------------------------------------------
// EvalKeyHasher
// ---------------------------------------------------------------------

EvalKeyHasher &
EvalKeyHasher::mix(std::uint64_t v)
{
    // FNV-1a over the 8 bytes, fixed little-endian order so the digest
    // is identical on every platform.
    for (int i = 0; i < 8; ++i) {
        hash_ ^= (v >> (8 * i)) & 0xffull;
        hash_ *= 0x100000001b3ull;
    }
    return *this;
}

EvalKeyHasher &
EvalKeyHasher::mix(std::int64_t v)
{
    return mix(static_cast<std::uint64_t>(v));
}

EvalKeyHasher &
EvalKeyHasher::mix(int v)
{
    return mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
}

EvalKeyHasher &
EvalKeyHasher::mix(bool v)
{
    return mix(static_cast<std::uint64_t>(v ? 1 : 0));
}

EvalKeyHasher &
EvalKeyHasher::mix(double v)
{
    return mix(doubleBits(v));
}

EvalKeyHasher &
EvalKeyHasher::mix(const std::string &s)
{
    // Length prefix keeps concatenated strings unambiguous
    // ("ab"+"c" != "a"+"bc").
    mix(static_cast<std::uint64_t>(s.size()));
    for (char c : s) {
        hash_ ^= static_cast<unsigned char>(c);
        hash_ *= 0x100000001b3ull;
    }
    return *this;
}

std::string
EvalKeyHasher::hex() const
{
    return toHex16(hash_);
}

// ---------------------------------------------------------------------
// Ingredient mixers
// ---------------------------------------------------------------------

void
mixTrace(EvalKeyHasher &h, const cluster::VmTrace &trace)
{
    // Delegate to the shared semantic trace digest (trace_binary.h):
    // the same digest a gsku-trace-v1 file stores in its footer, so a
    // replay keyed on a binary trace shares cache entries with a replay
    // keyed on the CSV (or in-memory) encoding of the same content.
    h.mix(cluster::traceContentDigest(trace));
}

void
mixSku(EvalKeyHasher &h, const carbon::ServerSku &sku)
{
    h.mix(sku.name);
    h.mix(static_cast<int>(sku.generation));
    h.mix(sku.cores);
    h.mix(sku.form_factor_u);
    h.mix(sku.local_memory.asGb());
    h.mix(sku.cxl_memory.asGb());
    h.mix(sku.storage.asTb());
    h.mix(static_cast<std::uint64_t>(sku.slots.size()));
    for (const carbon::ComponentSlot &slot : sku.slots) {
        h.mix(slot.component.name);
        h.mix(static_cast<int>(slot.component.kind));
        h.mix(slot.component.tdp.asWatts());
        h.mix(slot.component.embodied.asKg());
        h.mix(slot.component.reused);
        h.mix(slot.component.derate_override);
        h.mix(slot.count);
    }
}

void
mixReplayOptions(EvalKeyHasher &h, const cluster::ReplayOptions &options)
{
    h.mix(options.snapshot_interval_h);
    h.mix(options.stop_on_reject);
    h.mix(static_cast<int>(options.policy));
    // use_placement_index is deliberately NOT mixed: placements are
    // bit-identical with and without the index (the allocator's
    // contract, asserted by allocator_index_test), so both paths may
    // share cache entries.
}

namespace {

void
mixModelParams(EvalKeyHasher &h, const carbon::ModelParams &p)
{
    h.mix(p.carbon_intensity.asKgPerKwh());
    h.mix(p.lifetime.asHours());
    h.mix(p.derate);
    h.mix(p.cpu_vr_loss);
    h.mix(p.rack_space_u);
    h.mix(p.rack_power_capacity.asWatts());
    h.mix(p.rack_misc_power.asWatts());
    h.mix(p.rack_misc_embodied.asKg());
    h.mix(p.dc_embodied_per_rack.asKg());
    h.mix(p.pue);
}

void
mixPerfConfig(EvalKeyHasher &h, const perf::PerfConfig &c)
{
    h.mix(c.baseline_vm_cores);
    h.mix(static_cast<std::uint64_t>(c.green_core_options.size()));
    for (int cores : c.green_core_options) {
        h.mix(cores);
    }
    h.mix(c.tail_percentile);
    h.mix(c.slo_load_fraction);
    h.mix(c.low_load_fraction);
    h.mix(c.tolerance);
    h.mix(c.throughput_tolerance);
    h.mix(c.cxl_latency_penalty);
}

void
mixTcoParams(EvalKeyHasher &h, const TcoParams &p)
{
    // std::map iterates in key order, so the digest is stable.
    h.mix(static_cast<std::uint64_t>(p.component_cost.size()));
    for (const auto &[name, cost] : p.component_cost) {
        h.mix(name);
        h.mix(cost.asUsd());
    }
    h.mix(p.ddr5_price.asUsdPerGb());
    h.mix(p.reused_ddr4_price.asUsdPerGb());
    h.mix(p.new_ssd_price.asUsdPerTb());
    h.mix(p.energy_price.asUsdPerKwh());
    h.mix(p.rack_cost.asUsd());
    h.mix(p.dc_facility_cost.asUsd());
}

void
mixAfrParams(EvalKeyHasher &h, const reliability::AfrParams &p)
{
    h.mix(p.dimm_afr);
    h.mix(p.ssd_afr);
    h.mix(p.other_afr);
    h.mix(p.fip_effectiveness);
    h.mix(p.repair_time.asHours());
}

/** The closure ingredients every key shares: the record kind (so the
 *  three key spaces can never collide), the model-code version, and
 *  whether the ledger records (payloads embed captured ledger lines,
 *  so ledger-off payloads must never serve ledger-on runs). */
void
mixCommon(EvalKeyHasher &h, const char *kind,
          std::uint64_t model_version)
{
    h.mix(std::string(kind));
    h.mix(model_version);
    h.mix(obs::ledgerEnabled());
}

} // namespace

// ---------------------------------------------------------------------
// Key builders
// ---------------------------------------------------------------------

std::string
sizingCacheKey(const cluster::VmTrace &trace,
               const carbon::ServerSku &baseline,
               const carbon::ServerSku &green,
               const cluster::AdoptionTable &adoption,
               const cluster::ReplayOptions &options,
               std::uint64_t model_version)
{
    EvalKeyHasher h;
    mixCommon(h, "sizing", model_version);
    mixTrace(h, trace);
    mixSku(h, baseline);
    mixSku(h, green);
    h.mix(adoption.fingerprint());
    mixReplayOptions(h, options);
    return h.hex();
}

std::string
designSpaceCacheKey(const carbon::ServerSku &baseline,
                    const DesignRange &range,
                    const DesignConstraints &constraints,
                    const carbon::ModelParams &model_params,
                    std::uint64_t model_version)
{
    EvalKeyHasher h;
    mixCommon(h, "design_space", model_version);
    mixSku(h, baseline);
    auto mix_ints = [&h](const std::vector<int> &vs) {
        h.mix(static_cast<std::uint64_t>(vs.size()));
        for (int v : vs) {
            h.mix(v);
        }
    };
    mix_ints(range.ddr5_dimms);
    mix_ints(range.cxl_ddr4_dimms);
    mix_ints(range.new_ssds);
    mix_ints(range.reused_ssds);
    h.mix(constraints.min_mem_per_core);
    h.mix(constraints.max_mem_per_core);
    h.mix(constraints.max_cxl_fraction);
    h.mix(constraints.max_cxl_cards);
    h.mix(constraints.max_ssd_units);
    h.mix(constraints.min_storage_tb);
    mixModelParams(h, model_params);
    return h.hex();
}

std::string
searchEvalCacheKey(const carbon::ServerSku &baseline,
                   const carbon::ServerSku &candidate,
                   const carbon::ModelParams &model_params,
                   const TcoParams &tco_params,
                   const perf::PerfConfig &perf_config,
                   std::uint64_t model_version)
{
    EvalKeyHasher h;
    mixCommon(h, "search_eval", model_version);
    mixSku(h, baseline);
    mixSku(h, candidate);
    mixModelParams(h, model_params);
    mixTcoParams(h, tco_params);
    mixPerfConfig(h, perf_config);
    return h.hex();
}

std::string
clusterEvalCacheKey(const cluster::VmTrace &trace,
                    const carbon::ServerSku &baseline,
                    const carbon::ServerSku &green, CarbonIntensity ci,
                    const GsfEvaluator::Options &options,
                    std::uint64_t model_version)
{
    // The adoption table is *derived inside* the cached computation
    // (from the perf config and the SKUs), so unlike sizingCacheKey the
    // closure here is the evaluator's full Options — everything the
    // adoption model, carbon model, maintenance model, and sizer read.
    EvalKeyHasher h;
    mixCommon(h, "cluster_eval", model_version);
    mixTrace(h, trace);
    mixSku(h, baseline);
    mixSku(h, green);
    h.mix(ci.asKgPerKwh());
    mixModelParams(h, options.carbon_params);
    mixPerfConfig(h, options.perf_config);
    mixAfrParams(h, options.afr_params);
    h.mix(options.buffer.buffer_fraction);
    mixReplayOptions(h, options.replay);
    return h.hex();
}

// ---------------------------------------------------------------------
// Payload writer / reader
// ---------------------------------------------------------------------

PayloadWriter &
PayloadWriter::u64(std::uint64_t v)
{
    out_ += toHex16(v);
    out_ += '\n';
    return *this;
}

PayloadWriter &
PayloadWriter::i64(std::int64_t v)
{
    return u64(static_cast<std::uint64_t>(v));
}

PayloadWriter &
PayloadWriter::f64(double v)
{
    return u64(doubleBits(v));
}

PayloadWriter &
PayloadWriter::boolean(bool v)
{
    return u64(v ? 1 : 0);
}

PayloadWriter &
PayloadWriter::line(const std::string &s)
{
    GSKU_ASSERT(s.find('\n') == std::string::npos,
                "payload line must not contain newlines");
    out_ += s;
    out_ += '\n';
    return *this;
}

PayloadWriter &
PayloadWriter::lines(const std::vector<std::string> &ls)
{
    u64(static_cast<std::uint64_t>(ls.size()));
    for (const std::string &l : ls) {
        line(l);
    }
    return *this;
}

PayloadReader::PayloadReader(const std::string &payload)
    : payload_(payload)
{
}

bool
PayloadReader::nextLine(std::string *out)
{
    if (pos_ >= payload_.size()) {
        return false;
    }
    const std::size_t nl = payload_.find('\n', pos_);
    if (nl == std::string::npos) {
        return false;   // Unterminated final line: truncation.
    }
    *out = payload_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return true;
}

bool
PayloadReader::u64(std::uint64_t *out)
{
    std::string l;
    return nextLine(&l) && fromHex16(l, out);
}

bool
PayloadReader::i64(std::int64_t *out)
{
    std::uint64_t v = 0;
    if (!u64(&v)) {
        return false;
    }
    *out = static_cast<std::int64_t>(v);
    return true;
}

bool
PayloadReader::f64(double *out)
{
    std::uint64_t v = 0;
    if (!u64(&v)) {
        return false;
    }
    *out = bitsToDouble(v);
    return true;
}

bool
PayloadReader::boolean(bool *out)
{
    std::uint64_t v = 0;
    if (!u64(&v) || v > 1) {
        return false;
    }
    *out = v == 1;
    return true;
}

bool
PayloadReader::line(std::string *out)
{
    return nextLine(out);
}

bool
PayloadReader::lines(std::vector<std::string> *out)
{
    std::uint64_t n = 0;
    if (!u64(&n) || n > payload_.size()) {
        return false;   // A count the payload cannot possibly hold.
    }
    out->clear();
    out->reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string l;
        if (!nextLine(&l)) {
            return false;
        }
        out->push_back(std::move(l));
    }
    return true;
}

// ---------------------------------------------------------------------
// EvalCache
// ---------------------------------------------------------------------

namespace {

struct EvalCacheCounters
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &stale;
    obs::Counter &corrupt;
    obs::Counter &undecodable;
    obs::Counter &stores;
    obs::Counter &store_failures;
    obs::Counter &evictions;
};

EvalCacheCounters &
counters()
{
    static EvalCacheCounters c{
        obs::metrics().counter("evalcache.hits"),
        obs::metrics().counter("evalcache.misses"),
        obs::metrics().counter("evalcache.stale"),
        obs::metrics().counter("evalcache.corrupt"),
        obs::metrics().counter("evalcache.undecodable"),
        obs::metrics().counter("evalcache.stores"),
        obs::metrics().counter("evalcache.store_failures"),
        obs::metrics().counter("evalcache.evictions"),
    };
    return c;
}

/** The provenance fact for one cached computation. Emitted with the
 *  SAME fields on store and on every later hit: the ledger is a
 *  deduplicated set, so cold and warm runs render identical files. */
void
noteCacheEntry(const char *kind, const std::string &key)
{
    obs::LedgerEntry(obs::LedgerEvent::CacheEntry)
        .field("kind", kind)
        .field("key", key);
}

} // namespace

EvalCache::EvalCache(const std::string &dir, std::int64_t max_bytes)
    : disk_(dir, kEvalCacheSchema, max_bytes)
{
}

std::optional<std::string>
EvalCache::fetch(const std::string &key, const char *kind)
{
    // One work unit per cache probe, attributed to the caller's
    // domain: probe volume drifting is itself a perf signal.
    obs::profileWork("evalcache.probe");
    CacheGetResult result = disk_.get(key);
    switch (result.status) {
    case CacheGetStatus::Hit:
        counters().hits.inc();
        noteCacheEntry(kind, key);
        return std::move(result.payload);
    case CacheGetStatus::Miss:
        counters().misses.inc();
        return std::nullopt;
    case CacheGetStatus::Stale:
        counters().stale.inc();
        return std::nullopt;
    case CacheGetStatus::Corrupt:
        counters().corrupt.inc();
        return std::nullopt;
    }
    return std::nullopt;
}

void
EvalCache::store(const std::string &key, const char *kind,
                 const std::string &payload)
{
    const int evicted = disk_.put(key, payload);
    if (evicted < 0) {
        counters().store_failures.inc();
        return;
    }
    counters().stores.inc();
    counters().evictions.inc(static_cast<std::uint64_t>(evicted));
    noteCacheEntry(kind, key);
}

void
EvalCache::noteUndecodable()
{
    counters().undecodable.inc();
}

// ---------------------------------------------------------------------
// Global configuration
// ---------------------------------------------------------------------

namespace {

std::mutex g_config_mutex;
EvalCache *g_cache = nullptr;
bool g_configured = false;

std::int64_t
envMaxBytes()
{
    const char *env = std::getenv("GSKU_EVAL_CACHE_MAX_BYTES");  // NOLINT(concurrency-mt-unsafe)
    if (env == nullptr || *env == '\0') {
        return kDefaultMaxBytes;
    }
    return parseLong(env, ParseContext{"GSKU_EVAL_CACHE_MAX_BYTES "
                                       "environment variable",
                                       0, ""});
}

} // namespace

EvalCache *
evalCache()
{
    std::lock_guard<std::mutex> lock(g_config_mutex);
    if (!g_configured) {
        g_configured = true;
        const char *dir = std::getenv("GSKU_EVAL_CACHE");  // NOLINT(concurrency-mt-unsafe)
        if (dir != nullptr && *dir != '\0') {
            g_cache = new EvalCache(dir, envMaxBytes());
        }
    }
    return g_cache;
}

void
configureEvalCache(const std::string &dir, std::int64_t max_bytes)
{
    std::lock_guard<std::mutex> lock(g_config_mutex);
    g_configured = true;
    if (dir.empty()) {
        g_cache = nullptr;  // Old instance (if any) leaks by design.
        return;
    }
    g_cache = new EvalCache(dir,
                            max_bytes > 0 ? max_bytes : envMaxBytes());
}

// ---------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------

namespace {

void
encodeGroupMetrics(PayloadWriter &w, const cluster::GroupMetrics &g)
{
    w.i64(g.servers)
        .i64(g.vms_placed)
        .f64(g.mean_core_packing)
        .f64(g.mean_mem_packing)
        .f64(g.mean_max_mem_utilization);
}

bool
decodeGroupMetrics(PayloadReader &r, cluster::GroupMetrics *g)
{
    std::int64_t servers = 0;
    return r.i64(&servers) &&
           (g->servers = static_cast<int>(servers), true) &&
           r.i64(&g->vms_placed) && r.f64(&g->mean_core_packing) &&
           r.f64(&g->mean_mem_packing) &&
           r.f64(&g->mean_max_mem_utilization);
}

void
encodeReplayResult(PayloadWriter &w, const cluster::ReplayResult &rr)
{
    w.boolean(rr.success).i64(rr.placed).i64(rr.rejected);
    encodeGroupMetrics(w, rr.baseline);
    encodeGroupMetrics(w, rr.green);
    w.i64(rr.green_placed).i64(rr.green_fallbacks);
}

bool
decodeReplayResult(PayloadReader &r, cluster::ReplayResult *rr)
{
    return r.boolean(&rr->success) && r.i64(&rr->placed) &&
           r.i64(&rr->rejected) && decodeGroupMetrics(r, &rr->baseline) &&
           decodeGroupMetrics(r, &rr->green) && r.i64(&rr->green_placed) &&
           r.i64(&rr->green_fallbacks);
}

void
encodeSizing(PayloadWriter &w, const SizingResult &s)
{
    w.i64(s.baseline_only_servers)
        .i64(s.mixed_baselines)
        .i64(s.mixed_greens);
    encodeReplayResult(w, s.baseline_only_replay);
    encodeReplayResult(w, s.mixed_replay);
}

bool
decodeSizing(PayloadReader &r, SizingResult *s)
{
    std::int64_t b_only = 0;
    std::int64_t mixed_b = 0;
    std::int64_t mixed_g = 0;
    if (!r.i64(&b_only) || !r.i64(&mixed_b) || !r.i64(&mixed_g)) {
        return false;
    }
    s->baseline_only_servers = static_cast<int>(b_only);
    s->mixed_baselines = static_cast<int>(mixed_b);
    s->mixed_greens = static_cast<int>(mixed_g);
    return decodeReplayResult(r, &s->baseline_only_replay) &&
           decodeReplayResult(r, &s->mixed_replay);
}

void
encodeSku(PayloadWriter &w, const carbon::ServerSku &sku)
{
    w.line(sku.name)
        .i64(static_cast<int>(sku.generation))
        .i64(sku.cores)
        .i64(sku.form_factor_u)
        .f64(sku.local_memory.asGb())
        .f64(sku.cxl_memory.asGb())
        .f64(sku.storage.asTb())
        .u64(static_cast<std::uint64_t>(sku.slots.size()));
    for (const carbon::ComponentSlot &slot : sku.slots) {
        w.line(slot.component.name)
            .i64(static_cast<int>(slot.component.kind))
            .f64(slot.component.tdp.asWatts())
            .f64(slot.component.embodied.asKg())
            .boolean(slot.component.reused)
            .f64(slot.component.derate_override)
            .i64(slot.count);
    }
}

bool
decodeSku(PayloadReader &r, carbon::ServerSku *sku)
{
    std::int64_t generation = 0;
    std::int64_t cores = 0;
    std::int64_t form_factor = 0;
    double local_gb = 0.0;
    double cxl_gb = 0.0;
    double storage_tb = 0.0;
    std::uint64_t slot_count = 0;
    if (!r.line(&sku->name) || !r.i64(&generation) || !r.i64(&cores) ||
        !r.i64(&form_factor) || !r.f64(&local_gb) || !r.f64(&cxl_gb) ||
        !r.f64(&storage_tb) || !r.u64(&slot_count) ||
        generation < 0 ||
        generation > static_cast<int>(carbon::Generation::GreenSku) ||
        slot_count > 4096) {
        return false;
    }
    sku->generation = static_cast<carbon::Generation>(generation);
    sku->cores = static_cast<int>(cores);
    sku->form_factor_u = static_cast<int>(form_factor);
    sku->local_memory = MemCapacity::gb(local_gb);
    sku->cxl_memory = MemCapacity::gb(cxl_gb);
    sku->storage = StorageCapacity::tb(storage_tb);
    sku->slots.clear();
    sku->slots.reserve(static_cast<std::size_t>(slot_count));
    for (std::uint64_t i = 0; i < slot_count; ++i) {
        carbon::ComponentSlot slot;
        std::int64_t kind = 0;
        std::int64_t count = 0;
        double tdp_w = 0.0;
        double embodied_kg = 0.0;
        if (!r.line(&slot.component.name) || !r.i64(&kind) ||
            !r.f64(&tdp_w) || !r.f64(&embodied_kg) ||
            !r.boolean(&slot.component.reused) ||
            !r.f64(&slot.component.derate_override) || !r.i64(&count) ||
            kind < 0 ||
            kind > static_cast<int>(carbon::ComponentKind::Misc)) {
            return false;
        }
        slot.component.kind = static_cast<carbon::ComponentKind>(kind);
        slot.component.tdp = Power::watts(tdp_w);
        slot.component.embodied = CarbonMass::kg(embodied_kg);
        slot.count = static_cast<int>(count);
        sku->slots.push_back(std::move(slot));
    }
    return true;
}

} // namespace

std::string
encodeSizingResult(const SizingResult &result,
                   const std::vector<std::string> &ledger)
{
    PayloadWriter w;
    encodeSizing(w, result);
    w.lines(ledger);
    return w.str();
}

bool
decodeSizingResult(const std::string &payload, SizingResult *result,
                   std::vector<std::string> *ledger)
{
    PayloadReader r(payload);
    return decodeSizing(r, result) && r.lines(ledger) && r.atEnd();
}

std::string
encodeClusterEvaluation(const ClusterEvaluation &eval,
                        const std::vector<std::string> &ledger)
{
    PayloadWriter w;
    w.line(eval.trace_name);
    encodeSizing(w, eval.sizing);
    w.i64(eval.baseline_scenario_buffer)
        .i64(eval.mixed_scenario_buffer)
        .f64(eval.baseline_scenario_emissions.asKg())
        .f64(eval.mixed_scenario_emissions.asKg())
        .f64(eval.savings);
    w.lines(ledger);
    return w.str();
}

bool
decodeClusterEvaluation(const std::string &payload,
                        ClusterEvaluation *eval,
                        std::vector<std::string> *ledger)
{
    PayloadReader r(payload);
    if (!r.line(&eval->trace_name) || !decodeSizing(r, &eval->sizing)) {
        return false;
    }
    std::int64_t base_buffer = 0;
    std::int64_t mixed_buffer = 0;
    double base_kg = 0.0;
    double mixed_kg = 0.0;
    if (!r.i64(&base_buffer) || !r.i64(&mixed_buffer) ||
        !r.f64(&base_kg) || !r.f64(&mixed_kg) || !r.f64(&eval->savings)) {
        return false;
    }
    eval->baseline_scenario_buffer = static_cast<int>(base_buffer);
    eval->mixed_scenario_buffer = static_cast<int>(mixed_buffer);
    eval->baseline_scenario_emissions = CarbonMass::kg(base_kg);
    eval->mixed_scenario_emissions = CarbonMass::kg(mixed_kg);
    return r.lines(ledger) && r.atEnd();
}

std::string
encodeRankedDesigns(const std::vector<RankedDesign> &designs,
                    long considered,
                    const std::vector<std::string> &ledger)
{
    PayloadWriter w;
    w.i64(considered);
    w.u64(static_cast<std::uint64_t>(designs.size()));
    for (const RankedDesign &d : designs) {
        encodeSku(w, d.sku);
        w.line(d.savings.sku_name)
            .f64(d.savings.per_core.operational.asKg())
            .f64(d.savings.per_core.embodied.asKg())
            .f64(d.savings.operational_savings)
            .f64(d.savings.embodied_savings)
            .f64(d.savings.total_savings);
    }
    w.lines(ledger);
    return w.str();
}

bool
decodeRankedDesigns(const std::string &payload,
                    std::vector<RankedDesign> *designs, long *considered,
                    std::vector<std::string> *ledger)
{
    PayloadReader r(payload);
    std::int64_t considered64 = 0;
    std::uint64_t count = 0;
    if (!r.i64(&considered64) || !r.u64(&count) ||
        count > payload.size()) {
        return false;
    }
    designs->clear();
    designs->reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        RankedDesign d;
        double op_kg = 0.0;
        double emb_kg = 0.0;
        if (!decodeSku(r, &d.sku) || !r.line(&d.savings.sku_name) ||
            !r.f64(&op_kg) || !r.f64(&emb_kg) ||
            !r.f64(&d.savings.operational_savings) ||
            !r.f64(&d.savings.embodied_savings) ||
            !r.f64(&d.savings.total_savings)) {
            return false;
        }
        d.savings.per_core.operational = CarbonMass::kg(op_kg);
        d.savings.per_core.embodied = CarbonMass::kg(emb_kg);
        designs->push_back(std::move(d));
    }
    if (!r.lines(ledger) || !r.atEnd()) {
        return false;
    }
    *considered = static_cast<long>(considered64);
    return true;
}

std::string
encodeSearchEval(const SearchEval &eval,
                 const std::vector<std::string> &ledger)
{
    PayloadWriter w;
    w.line(eval.savings.sku_name)
        .f64(eval.savings.per_core.operational.asKg())
        .f64(eval.savings.per_core.embodied.asKg())
        .f64(eval.savings.operational_savings)
        .f64(eval.savings.embodied_savings)
        .f64(eval.savings.total_savings)
        .f64(eval.objectives.carbon_per_core_kg)
        .f64(eval.objectives.tco_per_core_usd)
        .f64(eval.objectives.slo_margin);
    w.lines(ledger);
    return w.str();
}

bool
decodeSearchEval(const std::string &payload, SearchEval *eval,
                 std::vector<std::string> *ledger)
{
    PayloadReader r(payload);
    double op_kg = 0.0;
    double emb_kg = 0.0;
    if (!r.line(&eval->savings.sku_name) || !r.f64(&op_kg) ||
        !r.f64(&emb_kg) || !r.f64(&eval->savings.operational_savings) ||
        !r.f64(&eval->savings.embodied_savings) ||
        !r.f64(&eval->savings.total_savings) ||
        !r.f64(&eval->objectives.carbon_per_core_kg) ||
        !r.f64(&eval->objectives.tco_per_core_usd) ||
        !r.f64(&eval->objectives.slo_margin)) {
        return false;
    }
    eval->savings.per_core.operational = CarbonMass::kg(op_kg);
    eval->savings.per_core.embodied = CarbonMass::kg(emb_kg);
    return r.lines(ledger) && r.atEnd();
}

} // namespace gsku::gsf
