/**
 * @file
 * Persistent cross-run evaluation cache (schema `gsku-evalcache-v1`).
 *
 * The per-process memo in GsfEvaluator::sweep dies with the process,
 * so paper-scale experiments (Fig. 11 sweeps, ablation grids, the full
 * report) redo identical cluster sizings run after run. This layer
 * makes those results durable: each expensive computation is stored on
 * disk under a content-addressed key — an FNV-1a digest of the *full
 * input closure* (trace content, SKU serialization, adoption
 * signature, replay options, model-code version stamp, and whether the
 * decision ledger is recording) — so a warm run replays the stored
 * result byte-for-byte and any single-ingredient perturbation forces a
 * recompute.
 *
 * Cached record kinds (see docs/performance.md for the key closures):
 *
 *   sizing        ClusterSizer::size — a full SizingResult.
 *   cluster_eval  GsfEvaluator::evaluateCluster — per-CI emissions.
 *   design_space  DesignSpaceExplorer::explore — ranked designs.
 *   search_eval   SkuSearch::evaluate — one candidate's savings row
 *                 and Pareto objectives (SA revisits neighbors
 *                 constantly, so warm searches are nearly all hits).
 *
 * Safety model (proved by tests/gsf/eval_cache_test.cc and the
 * cold-vs-warm parity legs of parallel_parity_test):
 *
 *  - Payloads carry every double as its exact 64-bit pattern, so a
 *    warm result is bit-identical to the cold one.
 *  - Each payload also carries the decision-ledger lines the cold
 *    computation emitted (captured via obs::LedgerCapture); a hit
 *    replays them, so cold and warm ledgers render byte-identical.
 *    Whether the ledger records is folded into the key, so a payload
 *    captured with the ledger off can never serve a ledger-on run.
 *  - A truncated, corrupted, version-skewed, or undecodable record is
 *    a miss, never an error: the evaluator silently recomputes.
 *
 * Enabled by `GSKU_EVAL_CACHE=<dir>` (or `--eval-cache <dir>` in the
 * CLIs); `GSKU_EVAL_CACHE_MAX_BYTES` caps the on-disk size with LRU
 * eviction (default 256 MiB). Disabled (the default), every call site
 * compiles down to one null-pointer check.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "carbon/sku.h"
#include "cluster/allocator.h"
#include "cluster/vm.h"
#include "common/diskcache.h"
#include "gsf/design_space.h"
#include "gsf/evaluator.h"
#include "gsf/search.h"
#include "gsf/sizing.h"

namespace gsku::gsf {

/**
 * Model-code version stamp folded into every cache key. Bump when a
 * change to the carbon/perf/sizing/allocator models alters outputs:
 * every key changes, so stale results can never be replayed. (The
 * bench_compare checksum gate catches forgotten bumps: a warm run
 * replaying outdated numbers drifts from the fresh baseline.)
 */
inline constexpr std::uint64_t kEvalCacheModelVersion = 1;

/** On-disk record schema tag; a record with any other tag reads as
 *  stale and is treated as a miss. */
inline constexpr const char *kEvalCacheSchema = "gsku-evalcache-v1";

/**
 * FNV-1a accumulator for cache keys. Every ingredient is mixed as
 * exact bytes (doubles by bit pattern), so "same key" means "same
 * input closure to the last bit".
 */
class EvalKeyHasher
{
  public:
    EvalKeyHasher &mix(std::uint64_t v);
    EvalKeyHasher &mix(std::int64_t v);
    EvalKeyHasher &mix(int v);
    EvalKeyHasher &mix(bool v);
    EvalKeyHasher &mix(double v);           ///< Exact bit pattern.
    EvalKeyHasher &mix(const std::string &s);

    /** The digest as 16 lowercase hex digits (DiskCache key shape). */
    std::string hex() const;

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/** Content hash of a trace: mixes cluster::traceContentDigest, the
 *  encoding-independent digest a gsku-trace-v1 file carries in its
 *  footer — CSV and binary encodings share cache entries. */
void mixTrace(EvalKeyHasher &h, const cluster::VmTrace &trace);

/** Full SKU serialization: capacities, generation, and every
 *  component slot (name, kind, TDP, embodied, reuse, derate, count). */
void mixSku(EvalKeyHasher &h, const carbon::ServerSku &sku);

/** Replay knobs that change packing outcomes. */
void mixReplayOptions(EvalKeyHasher &h,
                      const cluster::ReplayOptions &options);

/**
 * Sequential payload writer. The wire format is line-oriented text:
 * numbers as 16-hex-digit 64-bit patterns (doubles keep their exact
 * bits), strings as raw lines. PayloadReader consumes the same
 * stream; any deviation reads as corruption (a miss).
 */
class PayloadWriter
{
  public:
    PayloadWriter &u64(std::uint64_t v);
    PayloadWriter &i64(std::int64_t v);
    PayloadWriter &f64(double v);
    PayloadWriter &boolean(bool v);
    PayloadWriter &line(const std::string &s);  ///< Must not contain \n.
    PayloadWriter &lines(const std::vector<std::string> &ls);

    const std::string &str() const { return out_; }

  private:
    std::string out_;
};

/** Sequential payload reader; every read returns false on any
 *  malformation and never throws (corruption is a miss). */
class PayloadReader
{
  public:
    explicit PayloadReader(const std::string &payload);

    bool u64(std::uint64_t *out);
    bool i64(std::int64_t *out);
    bool f64(double *out);
    bool boolean(bool *out);
    bool line(std::string *out);
    bool lines(std::vector<std::string> *out);

    /** True when the payload was consumed exactly. */
    bool atEnd() const { return pos_ == payload_.size(); }

  private:
    bool nextLine(std::string *out);

    const std::string &payload_;
    std::size_t pos_ = 0;
};

/**
 * The process-wide persistent cache. fetch/store count the
 * `evalcache.*` metrics and emit one `cache.entry` ledger fact per
 * key — the *same* fact on store and on hit, so cold and warm ledgers
 * dedup to identical files.
 */
class EvalCache
{
  public:
    /** @p max_bytes <= 0 means unlimited. Throws UserError when the
     *  directory cannot be created. */
    EvalCache(const std::string &dir, std::int64_t max_bytes);

    /**
     * Look up @p key. Returns the payload on a verified hit (counting
     * evalcache.hits and emitting the cache.entry fact); nullopt on
     * miss / stale schema / corrupt record, each counted separately.
     */
    std::optional<std::string> fetch(const std::string &key,
                                     const char *kind);

    /** Store @p payload under @p key, evicting LRU records past the
     *  byte budget; emits the cache.entry fact. I/O failure only
     *  counts (the entry is simply not stored). */
    void store(const std::string &key, const char *kind,
               const std::string &payload);

    /** Count a payload that fetched cleanly but failed to decode
     *  (callers then recompute — a decode failure is a miss too). */
    void noteUndecodable();

    const std::string &dir() const { return disk_.dir(); }

  private:
    DiskCache disk_;
};

/**
 * The global cache: configured from `GSKU_EVAL_CACHE` on first use, or
 * explicitly via configureEvalCache (CLI `--eval-cache`). Returns
 * nullptr when disabled. The returned instance lives for the process
 * (reconfiguration leaks the old one — instances are tiny).
 */
EvalCache *evalCache();

/** Enable the cache rooted at @p dir ("" disables). @p max_bytes <= 0
 *  means "use GSKU_EVAL_CACHE_MAX_BYTES, else the 256 MiB default". */
void configureEvalCache(const std::string &dir,
                        std::int64_t max_bytes = 0);

// ---------------------------------------------------------------------
// Key builders — one per record kind; each folds in the full input
// closure plus the model version stamp and the ledger-recording flag.
// @p model_version is overridable so tests can prove a version bump
// forces a miss.
// ---------------------------------------------------------------------

std::string
sizingCacheKey(const cluster::VmTrace &trace,
               const carbon::ServerSku &baseline,
               const carbon::ServerSku &green,
               const cluster::AdoptionTable &adoption,
               const cluster::ReplayOptions &options,
               std::uint64_t model_version = kEvalCacheModelVersion);

std::string
clusterEvalCacheKey(const cluster::VmTrace &trace,
                    const carbon::ServerSku &baseline,
                    const carbon::ServerSku &green, CarbonIntensity ci,
                    const GsfEvaluator::Options &options,
                    std::uint64_t model_version = kEvalCacheModelVersion);

std::string
designSpaceCacheKey(const carbon::ServerSku &baseline,
                    const DesignRange &range,
                    const DesignConstraints &constraints,
                    const carbon::ModelParams &model_params,
                    std::uint64_t model_version = kEvalCacheModelVersion);

/** Per-candidate search evaluation. Deliberately excludes the search
 *  options and constraints: a feasible candidate's evaluation depends
 *  only on the two SKUs and the three model parameterizations, so
 *  every restart, seed, and range shares entries. */
std::string
searchEvalCacheKey(const carbon::ServerSku &baseline,
                   const carbon::ServerSku &candidate,
                   const carbon::ModelParams &model_params,
                   const TcoParams &tco_params,
                   const perf::PerfConfig &perf_config,
                   std::uint64_t model_version = kEvalCacheModelVersion);

// ---------------------------------------------------------------------
// Payload codecs. Encoders append the captured ledger lines last;
// decoders return false on any malformation (callers recompute).
// ---------------------------------------------------------------------

std::string encodeSizingResult(const SizingResult &result,
                               const std::vector<std::string> &ledger);
bool decodeSizingResult(const std::string &payload, SizingResult *result,
                        std::vector<std::string> *ledger);

std::string
encodeClusterEvaluation(const ClusterEvaluation &eval,
                        const std::vector<std::string> &ledger);
bool decodeClusterEvaluation(const std::string &payload,
                             ClusterEvaluation *eval,
                             std::vector<std::string> *ledger);

std::string
encodeRankedDesigns(const std::vector<RankedDesign> &designs,
                    long considered,
                    const std::vector<std::string> &ledger);
bool decodeRankedDesigns(const std::string &payload,
                         std::vector<RankedDesign> *designs,
                         long *considered,
                         std::vector<std::string> *ledger);

std::string encodeSearchEval(const SearchEval &eval,
                             const std::vector<std::string> &ledger);
bool decodeSearchEval(const std::string &payload, SearchEval *eval,
                      std::vector<std::string> *ledger);

} // namespace gsku::gsf
