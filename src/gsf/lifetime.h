/**
 * @file
 * Server-lifetime-extension evaluation (§VII-B): the paper notes that
 * GSF "can evaluate server lifetime extension by considering such
 * extension's impact on maintenance, performance, and emissions". This
 * component implements that evaluation:
 *
 *  - embodied emissions amortize over more service years (the benefit);
 *  - maintenance grows with age — components leave their flat-AFR
 *    regime and repairs become costlier ("maintenance can become cost
 *    prohibitive over this time frame" [88][89]);
 *  - older servers deliver fewer effective cores per watt relative to
 *    the current generation, so per-delivered-core operational
 *    emissions grow with each forgone refresh ("older servers tend to
 *    have higher per-core operational emissions" [64][75]).
 *
 * The headline query is the carbon-optimal lifetime and the shape of
 * per-core-year emissions vs lifetime.
 */
#pragma once

#include <vector>

#include "carbon/model.h"
#include "carbon/sku.h"
#include "reliability/maintenance.h"

namespace gsku::gsf {

/** Aging model parameters. */
struct LifetimeParams
{
    /** Years of flat AFR before wear-out raises failure rates (the
     *  paper's telemetry is flat to 7 y; accelerated aging to 12 y). */
    double wearout_onset_years = 12.0;

    /** Fractional AFR growth per year past the onset. */
    double afr_growth_per_year = 0.25;

    /**
     * Annual per-core performance improvement of the newest generation
     * (the FSP treadmill, ~15% per ~2.5-year generation): keeping a
     * server one more year forgoes this much delivered work per watt.
     */
    double generational_perf_per_year = 0.06;

    /** Emissions attributed to one repair visit, as a fraction of the
     *  server's annual operational emissions (truck roll, spares). */
    double repair_carbon_fraction = 0.02;
};

/** Emissions picture at one candidate lifetime. */
struct LifetimePoint
{
    double years = 0.0;
    double afr = 0.0;                   ///< Per 100 servers, at that age.
    CarbonMass embodied_per_core_year;
    CarbonMass operational_per_core_year;
    CarbonMass maintenance_per_core_year;

    CarbonMass
    total() const
    {
        return embodied_per_core_year + operational_per_core_year +
               maintenance_per_core_year;
    }
};

/** Lifetime-extension evaluator. */
class LifetimeExtensionModel
{
  public:
    LifetimeExtensionModel(carbon::ModelParams carbon_params,
                           reliability::AfrParams afr_params,
                           LifetimeParams lifetime_params = LifetimeParams{});

    /** AFR (per 100 servers) of @p sku at a given age. */
    double afrAtAge(const carbon::ServerSku &sku, double years) const;

    /** Per-core-year emissions when @p sku serves for @p years. */
    LifetimePoint evaluate(const carbon::ServerSku &sku,
                           double years) const;

    /** evaluate() across a lifetime grid (the ablation curve). */
    std::vector<LifetimePoint> sweep(const carbon::ServerSku &sku,
                                     double from_years, double to_years,
                                     double step_years) const;

    /** Lifetime minimizing per-core-year emissions, within [lo, hi]. */
    double optimalLifetimeYears(const carbon::ServerSku &sku,
                                double lo = 2.0, double hi = 20.0) const;

  private:
    carbon::ModelParams carbon_params_;
    reliability::AfrParams afr_params_;
    LifetimeParams lifetime_params_;
};

} // namespace gsku::gsf
