/**
 * @file
 * The end-to-end GSF evaluation (§IV, Fig. 6): wires the carbon model,
 * performance model, maintenance model, adoption component, VM allocation
 * simulator, cluster sizing, and growth buffer into the paper's headline
 * outputs — cluster-level carbon savings as a function of grid carbon
 * intensity (Figs. 11/12), and net data-center savings.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "carbon/datacenter.h"
#include "carbon/model.h"
#include "cluster/trace_gen.h"
#include "gsf/adoption.h"
#include "gsf/sizing.h"
#include "perf/model.h"
#include "reliability/maintenance.h"

namespace gsku::gsf {

/**
 * Growth-buffer parameters (§IV-D, §V): extra capacity to absorb
 * deployment-growth spikes. Per the §V workaround the buffer consists of
 * baseline SKUs only (their demand history exists), so in a mixed
 * cluster the buffer is carbon-inefficient — a cost the evaluator counts.
 */
struct GrowthBufferParams
{
    /** Buffer capacity as a fraction of the cluster's core capacity. */
    double buffer_fraction = 0.08;
};

/** One evaluated cluster scenario (one trace, one GreenSKU design). */
struct ClusterEvaluation
{
    std::string trace_name;
    SizingResult sizing;
    int baseline_scenario_buffer = 0;   ///< Buffer servers, all-baseline.
    int mixed_scenario_buffer = 0;      ///< Buffer servers, mixed cluster.

    /** Carbon of the all-baseline scenario at the evaluation CI. */
    CarbonMass baseline_scenario_emissions;

    /** Carbon of the mixed (GreenSKU + baseline) scenario. */
    CarbonMass mixed_scenario_emissions;

    /** Cluster-level savings fraction (Figs. 11/12 y-axis). */
    double savings = 0.0;
};

/** A savings-vs-carbon-intensity series for one GreenSKU design. */
struct IntensitySweep
{
    std::string sku_name;
    std::vector<double> intensities;    ///< kgCO2e/kWh.
    std::vector<double> mean_savings;   ///< Mean over traces, fraction.
};

/** Everything the evaluator needs, owned in one place. */
class GsfEvaluator
{
  public:
    struct Options
    {
        carbon::ModelParams carbon_params;
        perf::PerfConfig perf_config;
        reliability::AfrParams afr_params;
        GrowthBufferParams buffer;
        cluster::ReplayOptions replay;
    };

    explicit GsfEvaluator(Options options = Options{});

    const carbon::CarbonModel &carbonModel() const { return carbon_; }
    const perf::PerfModel &perfModel() const { return perf_; }
    const AdoptionModel &adoptionModel() const { return adoption_; }

    /**
     * Evaluate one GreenSKU design on one trace at carbon intensity
     * @p ci. Sizes both scenarios, adds growth buffers and the
     * maintenance out-of-service overhead, and compares emissions.
     * Served from the persistent evaluation cache when enabled
     * (gsf/eval_cache.h); the key covers the trace content, both SKUs,
     * the CI, and every Options field, so any input change recomputes.
     */
    ClusterEvaluation evaluateCluster(const cluster::VmTrace &trace,
                                      const carbon::ServerSku &baseline,
                                      const carbon::ServerSku &green,
                                      CarbonIntensity ci) const;

    /**
     * Figs. 11/12: mean cluster savings across @p traces for each CI in
     * @p intensities. Sizing results are cached per distinct adoption
     * table, so the sweep re-simulates only when adoption flips. The
     * distinct sizing jobs run on the worker pool (common/parallel.h);
     * results are byte-identical at every thread count (see
     * docs/performance.md).
     */
    IntensitySweep sweep(const std::vector<cluster::VmTrace> &traces,
                         const carbon::ServerSku &baseline,
                         const carbon::ServerSku &green,
                         const std::vector<double> &intensities) const;

    /** Mean savings over a sweep's CI grid (the paper's "average
     *  cluster-level savings of 14%"). */
    static double meanSavings(const IntensitySweep &sweep);

    /**
     * Lifetime emissions attributed to a deployment of @p servers
     * servers of @p sku at @p ci, including the maintenance
     * out-of-service overhead (out-of-service servers are extra servers
     * that must exist to deliver the same capacity).
     */
    CarbonMass deploymentEmissions(const carbon::ServerSku &sku,
                                   int servers, CarbonIntensity ci) const;

  private:
    /** The actual evaluation; evaluateCluster() wraps this in the
     *  eval-cache fetch/compute/store cycle. */
    ClusterEvaluation
    evaluateClusterUncached(const cluster::VmTrace &trace,
                            const carbon::ServerSku &baseline,
                            const carbon::ServerSku &green,
                            CarbonIntensity ci) const;

    Options options_;
    carbon::CarbonModel carbon_;
    perf::PerfModel perf_;
    reliability::MaintenanceModel maintenance_;
    AdoptionModel adoption_;
    ClusterSizer sizer_;
};

} // namespace gsku::gsf
