#include "gsf/tiering.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace gsku::gsf {

MemoryTieringPolicy::MemoryTieringPolicy(TieringConfig config)
    : config_(config)
{
    GSKU_REQUIRE(config_.full_cxl_sensitivity_threshold >= 0.0,
                 "sensitivity threshold must be non-negative");
    GSKU_REQUIRE(config_.untouched_claim_fraction >= 0.0 &&
                     config_.untouched_claim_fraction <= 1.0,
                 "untouched claim fraction must be in [0, 1]");
    GSKU_REQUIRE(config_.cxl_latency_penalty >= 0.0,
                 "CXL latency penalty must be non-negative");
}

TieringDecision
MemoryTieringPolicy::decide(const perf::AppProfile &app,
                            double touched_fraction,
                            const carbon::ServerSku &sku) const
{
    GSKU_REQUIRE(touched_fraction >= 0.0 && touched_fraction <= 1.0,
                 "touched fraction must be in [0, 1]");
    const double cxl_share = sku.cxlMemoryFraction();

    TieringDecision out;
    if (cxl_share <= 0.0) {
        return out;             // No CXL memory on this SKU.
    }

    if (app.cxl_sens <= config_.full_cxl_sensitivity_threshold) {
        // Hardware counters say this app runs from CXL without a
        // significant slowdown; back it entirely with reused DDR4.
        out.fully_cxl = true;
        out.cxl_fraction = 1.0;
        out.touched_on_cxl = 1.0;
        out.slowdown = 1.0 + app.cxl_sens * config_.cxl_latency_penalty;
        return out;
    }

    // Place (a conservative fraction of) the predicted-untouched memory
    // on CXL, up to the SKU's CXL share. Untouched memory never faces
    // the latency penalty.
    const double untouched = 1.0 - touched_fraction;
    const double untouched_on_cxl =
        std::min(cxl_share, untouched * config_.untouched_claim_fraction);

    // Any remaining CXL capacity must hold touched memory, which *does*
    // slow the app down in proportion to the touched share on CXL.
    const double touched_spill =
        std::max(0.0, cxl_share - untouched_on_cxl);
    out.cxl_fraction = cxl_share;
    out.touched_on_cxl =
        touched_fraction > 0.0
            ? std::min(1.0, touched_spill / touched_fraction)
            : 0.0;
    out.slowdown = 1.0 + app.cxl_sens * config_.cxl_latency_penalty *
                             out.touched_on_cxl;
    return out;
}

double
MemoryTieringPolicy::fleetShareBelowSlowdown(const carbon::ServerSku &sku,
                                             double slowdown_threshold,
                                             double mean_touched,
                                             double sigma_touched) const
{
    GSKU_REQUIRE(slowdown_threshold >= 1.0,
                 "slowdown threshold must be >= 1");
    GSKU_REQUIRE(sigma_touched > 0.0, "touched sigma must be positive");

    // Probability a N(mean, sigma) touched fraction (clamped to [0,1])
    // keeps this app's slowdown under the threshold. decide() is
    // monotone non-decreasing in the touched fraction, so we integrate
    // by probing the normal quantiles.
    auto normal_cdf = [&](double x) {
        return 0.5 * std::erfc(-(x - mean_touched) /
                               (sigma_touched * std::sqrt(2.0)));
    };
    auto share_ok = [&](const perf::AppProfile &app) {
        if (decide(app, 1.0, sku).slowdown <= slowdown_threshold) {
            return 1.0;
        }
        if (decide(app, 0.0, sku).slowdown > slowdown_threshold) {
            return 0.0;
        }
        // Bisect the largest touched fraction still under threshold.
        double lo = 0.0;
        double hi = 1.0;
        for (int i = 0; i < 50; ++i) {
            const double mid = 0.5 * (lo + hi);
            if (decide(app, mid, sku).slowdown <= slowdown_threshold) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        return normal_cdf(lo);
    };

    double share = 0.0;
    double total = 0.0;
    for (const auto &app : perf::AppCatalog::all()) {
        const double weight = perf::AppCatalog::fleetWeight(app);
        total += weight;
        share += weight * share_ok(app);
    }
    GSKU_ASSERT(total > 0.0, "fleet weights must be positive");
    return share / total;
}

} // namespace gsku::gsf
