#include "gsf/portfolio.h"

#include <cmath>

#include "common/error.h"

namespace gsku::gsf {

PortfolioAnalysis::PortfolioAnalysis(carbon::ModelParams carbon_params,
                                     cluster::DemandParams demand_params,
                                     double total_demand_cores)
    : carbon_params_(carbon_params), demand_params_(demand_params),
      total_demand_cores_(total_demand_cores)
{
    GSKU_REQUIRE(total_demand_cores > 0.0,
                 "total demand must be positive");
}

CarbonMass
PortfolioAnalysis::serveEmissions(const carbon::ServerSku &sku,
                                  double cores, double sf,
                                  CarbonIntensity ci) const
{
    GSKU_REQUIRE(sf >= 1.0, "scaling factor must be >= 1");
    const carbon::CarbonModel model(carbon_params_);
    return model.perCore(sku, ci).total() * (cores * sf);
}

PortfolioResult
PortfolioAnalysis::evaluate(const carbon::ServerSku &baseline,
                            const std::vector<PortfolioSlice> &slices,
                            CarbonIntensity ci,
                            const std::string &label) const
{
    double green_share = 0.0;
    for (const PortfolioSlice &slice : slices) {
        GSKU_REQUIRE(slice.demand_share >= 0.0, "shares must be >= 0");
        green_share += slice.demand_share;
    }
    GSKU_REQUIRE(green_share <= 1.0 + 1e-9,
                 "demand shares exceed the total demand");

    PortfolioResult result;
    result.label = label;
    result.sku_types = 1 + static_cast<int>(slices.size());

    // Demand-serving emissions: each slice on its SKU, rest on baseline.
    const double base_cores =
        total_demand_cores_ * (1.0 - green_share);
    result.demand_emissions =
        serveEmissions(baseline, base_cores, 1.0, ci);
    for (const PortfolioSlice &slice : slices) {
        result.demand_emissions += serveEmissions(
            slice.sku, total_demand_cores_ * slice.demand_share,
            slice.mean_scaling, ci);
    }

    // Growth buffers: one per SKU type (the D2 cost). Per-stream
    // relative volatility grows with the number of independent streams;
    // buffers are built from the stream's own SKU.
    const int streams = result.sku_types;
    const carbon::CarbonModel model(carbon_params_);
    auto buffer_for = [&](const carbon::ServerSku &sku, double cores,
                          double sf) {
        if (cores <= 0.0) {
            return CarbonMass::kg(0.0);
        }
        cluster::DemandParams p = demand_params_;
        p.mean_cores = cores * sf;
        p.weekly_sigma = demand_params_.weekly_sigma *
                         std::sqrt(static_cast<double>(streams));
        const cluster::GrowthBufferSizer sizer(p);
        return model.perCore(sku, ci).total() * sizer.bufferCores();
    };
    result.buffer_emissions = buffer_for(baseline, base_cores, 1.0);
    for (const PortfolioSlice &slice : slices) {
        result.buffer_emissions +=
            buffer_for(slice.sku,
                       total_demand_cores_ * slice.demand_share,
                       slice.mean_scaling);
    }
    return result;
}

std::vector<PortfolioResult>
PortfolioAnalysis::sweepPortfolioSizes(
    const carbon::ServerSku &baseline,
    const std::vector<PortfolioSlice> &menu, CarbonIntensity ci) const
{
    GSKU_REQUIRE(!menu.empty(), "menu must contain GreenSKU candidates");
    double adoptable = 0.0;
    for (const PortfolioSlice &slice : menu) {
        adoptable += slice.demand_share;
    }
    GSKU_REQUIRE(adoptable > 0.0 && adoptable <= 1.0,
                 "menu demand shares must sum into (0, 1]");

    std::vector<PortfolioResult> results;
    for (std::size_t k = 0; k <= menu.size(); ++k) {
        std::vector<PortfolioSlice> slices(menu.begin(),
                                           menu.begin() + k);
        // The adoptable demand splits equally across deployed types.
        for (PortfolioSlice &slice : slices) {
            slice.demand_share = adoptable / static_cast<double>(k);
        }
        const std::string label =
            k == 0 ? "baseline only"
                   : std::to_string(k) + " GreenSKU type(s)";
        results.push_back(evaluate(baseline, slices, ci, label));
    }
    const double reference = results.front().total().asKg();
    for (PortfolioResult &r : results) {
        r.savings = 1.0 - r.total().asKg() / reference;
    }
    return results;
}

} // namespace gsku::gsf
