#include "gsf/alternatives.h"

#include "common/error.h"
#include "common/solver.h"

namespace gsku::gsf {

AlternativesAnalysis::AlternativesAnalysis(carbon::ModelParams params,
                                           carbon::FleetComposition fleet)
    : params_(params), fleet_(fleet)
{
}

double
AlternativesAnalysis::requiredRenewableIncrease(double dc_savings) const
{
    GSKU_REQUIRE(dc_savings > 0.0 && dc_savings < 1.0,
                 "savings fraction must be in (0, 1)");
    const carbon::DataCenterModel dc(params_);
    const double base_total = dc.breakdown(fleet_).total().asKg();
    const double target = base_total * (1.0 - dc_savings);

    const double headroom = 1.0 - fleet_.renewable_fraction;
    const auto root = bisect(
        [&](double delta) {
            carbon::FleetComposition shifted = fleet_;
            shifted.renewable_fraction += delta;
            return dc.breakdown(shifted).total().asKg() - target;
        },
        0.0, headroom, 1e-6 * base_total, 1e-9);
    GSKU_REQUIRE(root.has_value(),
                 "no renewable increase within headroom matches the target "
                 "savings");
    return root->root;
}

double
AlternativesAnalysis::requiredEfficiencyGain(double dc_savings) const
{
    GSKU_REQUIRE(dc_savings > 0.0 && dc_savings < 1.0,
                 "savings fraction must be in (0, 1)");
    const carbon::DataCenterModel dc(params_);
    const double base_total = dc.breakdown(fleet_).total().asKg();
    const double target = base_total * (1.0 - dc_savings);

    // Efficiency gain x scales every compute-server component's power by
    // 1/(1+x); embodied emissions are optimistically unchanged (§VII-B).
    auto total_with_gain = [&](double x) {
        carbon::FleetComposition scaled = fleet_;
        for (auto &slot : scaled.compute_sku.slots) {
            slot.component.tdp = slot.component.tdp / (1.0 + x);
        }
        return dc.breakdown(scaled).total().asKg();
    };

    const auto root = bisect(
        [&](double x) { return total_with_gain(x) - target; }, 0.0, 20.0,
        1e-6 * base_total, 1e-9);
    GSKU_REQUIRE(root.has_value(),
                 "no efficiency gain matches the target savings");
    return root->root;
}

double
AlternativesAnalysis::requiredLifetimeYears(
    const carbon::ServerSku &baseline, double per_core_savings) const
{
    GSKU_REQUIRE(per_core_savings > 0.0 && per_core_savings < 1.0,
                 "savings fraction must be in (0, 1)");
    const carbon::CarbonModel model(params_);
    const carbon::PerCoreEmissions base = model.perCore(baseline);

    // Per core and year of service: operational is constant per year;
    // embodied amortizes over the lifetime L (years).
    const double base_years = params_.lifetime.asYears();
    const double op_per_year = base.operational.asKg() / base_years;
    const double emb_per_core = base.embodied.asKg();

    const double base_per_year = op_per_year + emb_per_core / base_years;
    const double target = base_per_year * (1.0 - per_core_savings);

    // op_per_year alone is a floor; infeasible when the target is below.
    GSKU_REQUIRE(target > op_per_year,
                 "target savings exceed what lifetime extension can give");
    const auto root = bisect(
        [&](double years) {
            return op_per_year + emb_per_core / years - target;
        },
        base_years, 100.0 * base_years, 1e-9, 1e-9);
    GSKU_REQUIRE(root.has_value(), "no lifetime matches the target savings");
    return root->root;
}

} // namespace gsku::gsf
