#include "gsf/report.h"

#include <functional>
#include <sstream>
#include <vector>

#include "carbon/datacenter.h"
#include "cluster/trace_gen.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/table.h"
#include "gsf/alternatives.h"
#include "gsf/tiering.h"
#include "obs/trace.h"
#include "perf/cpu.h"
#include "reliability/maintenance.h"

namespace gsku::gsf {

ReproductionReport
generateReport(const ReportOptions &options)
{
    GSKU_REQUIRE(options.traces > 0, "report needs at least one trace");
    GSKU_REQUIRE(!options.ci_grid.empty(), "report needs a CI grid");

    obs::TraceSpan span("report", "generateReport");
    span.arg("traces", static_cast<std::int64_t>(options.traces));

    ReproductionReport report;
    const carbon::CarbonModel carbon(options.evaluator.carbon_params);
    const carbon::ServerSku baseline = carbon::StandardSkus::baseline();
    const carbon::ServerSku full = carbon::StandardSkus::greenFull();

    // The cheap model sections are independent and write disjoint
    // report fields: run them as pool tasks. The cluster sweep below
    // stays at the top level so its (much larger) internal task set
    // gets the whole pool.
    const std::vector<std::function<void()>> sections = {
        [&] {
            // §V worked example.
            const carbon::ServerSku example =
                carbon::StandardSkus::paperExampleCxl();
            const carbon::RackFootprint rack =
                carbon.rackFootprint(example);
            report.example_server_power = rack.server_power;
            report.example_server_embodied = carbon.serverEmbodied(example);
            report.example_servers_per_rack = rack.servers_per_rack;
            report.example_rack_per_core = rack.perCore();
        },
        [&] {
            // Table VIII.
            report.savings_table =
                carbon.savingsTable(carbon::StandardSkus::tableFourRows());
        },
        [&] {
            // Table III digest.
            const perf::PerfModel perf(options.evaluator.perf_config);
            for (const perf::CpuSpec &base :
                 {perf::CpuCatalog::rome(), perf::CpuCatalog::milan(),
                  perf::CpuCatalog::genoa()}) {
                for (const auto &row : perf.scalingTable(base)) {
                    report.scaling_cells_feasible += row.feasible ? 1 : 0;
                    report.scaling_cells_unscaled +=
                        row.feasible && row.factor == 1.0 ? 1 : 0;
                }
            }
        },
        [&] {
            // Maintenance.
            const reliability::MaintenanceModel maintenance(
                options.evaluator.afr_params);
            report.baseline_afr = maintenance.serverAfr(baseline);
            report.green_full_afr = maintenance.serverAfr(full);
            report.baseline_repair_rate = maintenance.repairRate(baseline);
            report.green_full_repair_rate = maintenance.repairRate(full);
        },
        [&] {
            // CXL claims.
            report.tiering_share_under_5pct =
                MemoryTieringPolicy{}.fleetShareBelowSlowdown(
                    carbon::StandardSkus::greenCxl());
            report.cxl_tolerant_core_hours =
                perf::AppCatalog::cxlTolerantCoreHourShare();
        },
    };
    parallelFor(sections.size(),
                [&](std::size_t i) { sections[i](); });

    // Cluster sweep + DC chain.
    {
        obs::TraceSpan sweep_span("report", "clusterSweep");
        cluster::TraceGenParams params;
        params.target_concurrent_vms = options.trace_concurrent_vms;
        params.duration_h = 24.0 * 14.0;
        const auto traces = cluster::TraceGenerator(params).generateFamily(
            options.traces, options.trace_seed);
        const GsfEvaluator evaluator(options.evaluator);
        const IntensitySweep sweep =
            evaluator.sweep(traces, baseline, full, options.ci_grid);
        report.mean_cluster_savings = GsfEvaluator::meanSavings(sweep);
        for (std::size_t i = 0; i < sweep.intensities.size(); ++i) {
            if (std::abs(sweep.intensities[i] - 0.1) < 1e-9) {
                report.cluster_savings_at_mean_ci = sweep.mean_savings[i];
            }
        }
        const carbon::DataCenterModel dc(options.evaluator.carbon_params);
        report.dc_savings = dc.dcSavings(carbon::FleetComposition{},
                                         report.mean_cluster_savings);
    }

    // §VII-B alternatives.
    {
        const AlternativesAnalysis alternatives(
            options.evaluator.carbon_params, carbon::FleetComposition{});
        const double per_core =
            report.savings_table.back().total_savings;
        report.lifetime_equivalent_years =
            alternatives.requiredLifetimeYears(baseline, per_core);
        const double dc_target =
            report.dc_savings > 0.01 ? report.dc_savings : 0.08;
        report.efficiency_equivalent =
            alternatives.requiredEfficiencyGain(dc_target);
        report.renewables_equivalent_pp =
            alternatives.requiredRenewableIncrease(dc_target);
    }
    return report;
}

std::string
ReproductionReport::render() const
{
    std::ostringstream out;
    out << "GreenSKU / GSF reproduction report\n";
    out << "==================================\n\n";

    out << "Sec. V worked example: P_s = "
        << Table::num(example_server_power.asWatts(), 1) << " W (paper 403), "
        << "E_emb,s = " << Table::num(example_server_embodied.asKg(), 0)
        << " kg (1644), " << example_servers_per_rack
        << " servers/rack (16), "
        << Table::num(example_rack_per_core.asKg(), 1) << " kg/core (31)\n\n";

    out << "Table VIII per-core savings vs baseline:\n";
    for (std::size_t i = 1; i < savings_table.size(); ++i) {
        const auto &row = savings_table[i];
        out << "  " << row.sku_name << ": op "
            << Table::percent(row.operational_savings) << ", emb "
            << Table::percent(row.embodied_savings) << ", total "
            << Table::percent(row.total_savings) << '\n';
    }

    out << "\nTable III digest: " << scaling_cells_feasible
        << "/57 cells feasible, " << scaling_cells_unscaled
        << " need no scaling\n";
    out << "Maintenance: AFR " << Table::num(baseline_afr, 1) << " -> "
        << Table::num(green_full_afr, 1) << " (paper 4.8 -> 7.2); FIP "
        << Table::num(baseline_repair_rate, 1) << " / "
        << Table::num(green_full_repair_rate, 1) << " (3.0 / 3.6)\n";
    out << "CXL: tiering keeps "
        << Table::percent(tiering_share_under_5pct, 1)
        << " of core-hours under 5% slowdown (98%); "
        << Table::percent(cxl_tolerant_core_hours, 1)
        << " fully CXL-tolerant (20.2%)\n\n";

    out << "Cluster (GreenSKU-Full): "
        << Table::percent(cluster_savings_at_mean_ci, 1)
        << " at CI = 0.1; sweep mean "
        << Table::percent(mean_cluster_savings, 1)
        << " (paper open data ~14%); DC "
        << Table::percent(dc_savings, 1) << " (~7%)\n\n";

    out << "Sec. VII-B equivalents: lifetime 6 -> "
        << Table::num(lifetime_equivalent_years, 1)
        << " y (13); compute efficiency +"
        << Table::percent(efficiency_equivalent) << " (28%); renewables +"
        << Table::num(renewables_equivalent_pp * 100.0, 1)
        << " pp (2.6)\n";
    return out.str();
}

} // namespace gsku::gsf
