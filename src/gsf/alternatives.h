/**
 * @file
 * The §VII-B comparisons: how much of each alternative carbon-reduction
 * strategy — more renewables, better energy efficiency, longer server
 * lifetimes — is needed to match the GreenSKUs' savings. Each is a
 * root-finding problem on a monotone emissions function.
 */
#pragma once

#include "carbon/datacenter.h"
#include "carbon/model.h"
#include "carbon/sku.h"

namespace gsku::gsf {

/** Solver outputs; see each query for units. */
class AlternativesAnalysis
{
  public:
    AlternativesAnalysis(carbon::ModelParams params,
                         carbon::FleetComposition fleet);

    /**
     * Percentage-point increase in the renewable fraction of the
     * average data center that matches a given data-center-wide savings
     * fraction (paper: 2.6 pp for GreenSKU-Full's DC-wide savings).
     */
    double requiredRenewableIncrease(double dc_savings) const;

    /**
     * Uniform energy-efficiency improvement (perf/W gain; power scales
     * by 1/(1+x)) required of all *compute-server* components to match a
     * given DC-wide savings fraction (paper: 28%).
     */
    double requiredEfficiencyGain(double dc_savings) const;

    /**
     * Server lifetime (years) whose embodied amortization matches a
     * given per-core total-savings fraction on the baseline SKU
     * (paper: 6 -> 13 years for GreenSKU-Full's per-core savings),
     * assuming extension does not change operational emissions.
     */
    double requiredLifetimeYears(const carbon::ServerSku &baseline,
                                 double per_core_savings) const;

  private:
    carbon::ModelParams params_;
    carbon::FleetComposition fleet_;
};

} // namespace gsku::gsf
