#include "gsf/sizing.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "common/contracts.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/solver.h"
#include "gsf/eval_cache.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace gsku::gsf {

void
SizingResult::checkInvariants() const
{
    GSKU_INVARIANT(baseline_only_servers >= 1,
                   "a non-empty trace needs at least one baseline server");
    GSKU_INVARIANT(mixed_baselines >= 0 && mixed_greens >= 0,
                   "mixed-cluster server counts must be non-negative");
    GSKU_INVARIANT(mixed_baselines <= baseline_only_servers,
                   "replacement cannot increase the baseline count");
    GSKU_INVARIANT(baseline_only_replay.success && mixed_replay.success,
                   "right-sized clusters must host the trace");
}

ClusterSizer::ClusterSizer(cluster::ReplayOptions options)
    : options_(options)
{
}

bool
ClusterSizer::fits(const cluster::VmTrace &trace,
                   const cluster::ClusterSpec &spec,
                   const cluster::AdoptionTable &adoption,
                   const char *phase) const
{
    static obs::Counter &replays =
        obs::metrics().counter("sizer.replays");
    replays.inc();
    // One telemetry unit per sizing probe (the replay inside adds one
    // per trace event on top); one profiled probe unit likewise.
    obs::telemetryTick();
    obs::profileWork("probe");
    cluster::VmAllocator allocator(options_);
    const bool success = allocator.replay(trace, spec, adoption).success;
    if (obs::ledgerEnabled()) {
        char fp_hex[17];
        std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                      static_cast<unsigned long long>(
                          adoption.fingerprint()));
        obs::LedgerEntry(obs::LedgerEvent::SizingProbe)
            .field("trace", trace.name)
            .field("phase", phase)
            .field("adoption_fp", fp_hex)
            .field("baselines", spec.baselines)
            .field("greens", spec.greens)
            .field("fits", success);
    }
    return success;
}

int
ClusterSizer::rightSizeBaselineOnly(const cluster::VmTrace &trace,
                                    const carbon::ServerSku &baseline) const
{
    GSKU_REQUIRE(!trace.vms.empty(), "trace is empty");

    obs::TraceSpan span("sizer", "rightSizeBaselineOnly");
    span.arg("trace", trace.name);

    // Lower bound: servers must at least cover the trace's peak
    // concurrent core demand (the cluster::TraceStats
    // peak_concurrent_cores statistic) — no packing can beat that.
    // Upper bound: every VM on its own server always fits. The answer
    // sits near the lower bound, so gallop up from it instead of
    // bisecting the whole [1, |vms|+1] range: identical result, far
    // fewer full-trace replays per sizing call.
    const long lo = std::max(
        1L, static_cast<long>(std::ceil(
                static_cast<double>(trace.peakConcurrentCores()) /
                static_cast<double>(baseline.cores))));
    const long hi = static_cast<long>(trace.vms.size()) + 1;
    const auto n = smallestTrueGalloping(
        [&](long servers) {
            cluster::ClusterSpec spec{baseline, baseline,
                                      static_cast<int>(servers), 0};
            return fits(trace, spec, cluster::AdoptionTable::none(),
                        "baseline_gallop");
        },
        std::min(lo, hi), hi);
    GSKU_ASSERT(n.has_value(), "one server per VM must always fit");
    return static_cast<int>(*n);
}

SizingResult
ClusterSizer::size(const cluster::VmTrace &trace,
                   const carbon::ServerSku &baseline,
                   const carbon::ServerSku &green,
                   const cluster::AdoptionTable &adoption) const
{
    obs::ProfileScope prof("sizer.size");
    EvalCache *cache = evalCache();
    if (cache == nullptr) {
        return sizeUncached(trace, baseline, green, adoption);
    }
    const std::string key =
        sizingCacheKey(trace, baseline, green, adoption, options_);
    if (auto payload = cache->fetch(key, "sizing")) {
        // Hit vs miss cost split (see evaluator.cc): decode work
        // nests under evalcache.hit, recompute under evalcache.miss.
        obs::ProfileScope hit("evalcache.hit");
        SizingResult result;
        std::vector<std::string> captured;
        if (decodeSizingResult(*payload, &result, &captured)) {
            result.checkInvariants();
            obs::profileWork();
            obs::replayLedgerLines(captured);
            return result;
        }
        cache->noteUndecodable();    // Undecodable payload: recompute.
    }
    obs::ProfileScope miss("evalcache.miss");
    obs::profileWork();
    obs::LedgerCapture capture;
    SizingResult result = sizeUncached(trace, baseline, green, adoption);
    cache->store(key, "sizing",
                 encodeSizingResult(result, capture.lines()));
    return result;
}

SizingResult
ClusterSizer::sizeUncached(const cluster::VmTrace &trace,
                           const carbon::ServerSku &baseline,
                           const carbon::ServerSku &green,
                           const cluster::AdoptionTable &adoption) const
{
    static obs::Counter &sizings =
        obs::metrics().counter("sizer.sizings");
    sizings.inc();
    obs::TraceSpan span("sizer", "size");
    span.arg("trace", trace.name);

    SizingResult result;
    result.baseline_only_servers = rightSizeBaselineOnly(trace, baseline);

    // Generous GreenSKU cap: every baseline's cores re-hosted at the
    // maximum scaling factor (1.5) plus slack absorbs any packing loss.
    const int green_cap = static_cast<int>(std::ceil(
        static_cast<double>(result.baseline_only_servers) *
        static_cast<double>(baseline.cores) * 1.5 /
        static_cast<double>(green.cores))) + 4;

    // Fewest baselines able to host the non-adopters (monotone in b).
    const auto b_min = smallestTrue(
        [&](long b) {
            cluster::ClusterSpec spec{baseline, green,
                                      static_cast<int>(b), green_cap};
            return fits(trace, spec, adoption, "mixed_baselines");
        },
        0, result.baseline_only_servers);
    GSKU_ASSERT(b_min.has_value(),
                "mixed cluster must fit with all baselines present");
    result.mixed_baselines = static_cast<int>(*b_min);

    // Fewest GreenSKUs at that baseline count (monotone in g).
    const auto g_min = smallestTrue(
        [&](long g) {
            cluster::ClusterSpec spec{baseline, green,
                                      result.mixed_baselines,
                                      static_cast<int>(g)};
            return fits(trace, spec, adoption, "mixed_greens");
        },
        0, green_cap);
    GSKU_ASSERT(g_min.has_value(), "green cap must fit");
    result.mixed_greens = static_cast<int>(*g_min);

    // The two scenario replays are independent: run them through the
    // worker pool (serial inline when nested inside a pooled sweep).
    // When a ledger capture is live, run them on THIS thread instead:
    // captures are thread-local, and allocator.outcome facts emitted on
    // a pool worker would escape the eval-cache payload being recorded.
    auto replay_one = [&](std::size_t i) {
        cluster::VmAllocator allocator(options_);
        if (i == 0) {
            return allocator.replay(
                trace,
                cluster::ClusterSpec{baseline, green,
                                     result.baseline_only_servers, 0},
                cluster::AdoptionTable::none());
        }
        return allocator.replay(
            trace,
            cluster::ClusterSpec{baseline, green, result.mixed_baselines,
                                 result.mixed_greens},
            adoption);
    };
    std::vector<cluster::ReplayResult> replays;
    if (obs::ledgerCaptureActive()) {
        replays.push_back(replay_one(0));
        replays.push_back(replay_one(1));
    } else {
        replays = parallelMap<cluster::ReplayResult>(2, replay_one);
    }
    result.baseline_only_replay = std::move(replays[0]);
    result.mixed_replay = std::move(replays[1]);
    result.checkInvariants();
    if (obs::ledgerEnabled()) {
        char fp_hex[17];
        std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                      static_cast<unsigned long long>(
                          adoption.fingerprint()));
        obs::LedgerEntry(obs::LedgerEvent::SizingResult)
            .field("trace", trace.name)
            .field("baseline", baseline.name)
            .field("green", green.name)
            .field("adoption_fp", fp_hex)
            .field("baseline_only_servers", result.baseline_only_servers)
            .field("mixed_baselines", result.mixed_baselines)
            .field("mixed_greens", result.mixed_greens);
    }
    return result;
}

SizingResult
ClusterSizer::sizeIncremental(const cluster::VmTrace &trace,
                              const carbon::ServerSku &baseline,
                              const carbon::ServerSku &green,
                              const cluster::AdoptionTable &adoption) const
{
    SizingResult result;
    result.baseline_only_servers = rightSizeBaselineOnly(trace, baseline);

    int baselines = result.baseline_only_servers;
    int greens = 0;
    // Replace one baseline at a time, adding GreenSKUs until the trace
    // fits again; stop when no replacement works within a generous
    // per-step budget (a removed 80-core baseline never needs more
    // than a couple of 128-core GreenSKUs even at 1.5x scaling).
    const int per_step_budget = 3;
    while (baselines > 0) {
        const int candidate_baselines = baselines - 1;
        int added = -1;
        for (int extra = 0; extra <= per_step_budget; ++extra) {
            cluster::ClusterSpec spec{baseline, green,
                                      candidate_baselines,
                                      greens + extra};
            if (fits(trace, spec, adoption, "incremental")) {
                added = extra;
                break;
            }
        }
        if (added < 0) {
            break;      // This baseline cannot be replaced.
        }
        baselines = candidate_baselines;
        greens += added;
    }
    // Trim surplus GreenSKUs the incremental walk may have accumulated.
    while (greens > 0) {
        cluster::ClusterSpec spec{baseline, green, baselines, greens - 1};
        if (!fits(trace, spec, adoption, "incremental_trim")) {
            break;
        }
        --greens;
    }
    result.mixed_baselines = baselines;
    result.mixed_greens = greens;

    cluster::VmAllocator allocator(options_);
    result.baseline_only_replay = allocator.replay(
        trace,
        cluster::ClusterSpec{baseline, green,
                             result.baseline_only_servers, 0},
        cluster::AdoptionTable::none());
    result.mixed_replay = allocator.replay(
        trace,
        cluster::ClusterSpec{baseline, green, result.mixed_baselines,
                             result.mixed_greens},
        adoption);
    result.checkInvariants();
    return result;
}

} // namespace gsku::gsf
